// Command simulate reads a system configuration from XML, constructs the
// NSA instance (Algorithm 1), interprets it over one hyperperiod and
// reports the schedulability verdict, per-task response-time statistics
// and, optionally, the full trace and an ASCII Gantt chart.
//
// Usage:
//
//	simulate -config system.xml [-trace] [-gantt] [-scale N] [-observers]
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		showTrace  = flag.Bool("trace", false, "print the full system operation trace")
		showGantt  = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		scale      = flag.Int64("scale", 1, "Gantt ticks per column")
		observers  = flag.Bool("observers", false, "check the §3 correctness requirements during the run")
		jsonOut    = flag.String("json", "", "write the trace and analysis as JSON to this file")
		csvOut     = flag.String("csv", "", "write the trace as CSV to this file")
	)
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath, *showTrace, *showGantt, *scale, *observers, *jsonOut, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(path string, showTrace, showGantt bool, scale int64, withObservers bool, jsonOut, csvOut string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		return err
	}
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	fmt.Printf("system %q: %d cores, %d partitions, %d tasks, %d messages, L=%d, %d jobs\n",
		sys.Name, len(sys.Cores), len(sys.Partitions), sys.TaskCount(), len(sys.Messages),
		sys.Hyperperiod(), sys.JobCount())

	if withObservers {
		violations, err := observer.VerifyRun(m)
		if err != nil {
			return err
		}
		if len(violations) == 0 {
			fmt.Println("observers: all §3 requirements satisfied on this run")
		} else {
			for _, v := range violations {
				fmt.Println("observer violation:", v)
			}
		}
		// Rebuild for a clean run below.
		m, err = model.Build(sys)
		if err != nil {
			return err
		}
	}

	tr, res, err := m.Simulate()
	if err != nil {
		return err
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		return err
	}
	fmt.Printf("run: %d actions, %d delays, stopped at t=%d\n", res.Actions, res.Delays, res.Time)
	fmt.Print(a.Summary(sys))
	if showGantt {
		fmt.Print(trace.Gantt(sys, tr, scale))
	}
	if showTrace {
		fmt.Print(tr.Format(sys))
	}
	if jsonOut != "" {
		w, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := trace.WriteJSON(w, sys, tr, a); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	if csvOut != "" {
		w, err := os.Create(csvOut)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(w, sys); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	if !a.Schedulable {
		os.Exit(3)
	}
	return nil
}

// Command simulate reads a system configuration from XML, constructs the
// NSA instance (Algorithm 1), interprets it over one hyperperiod and
// reports the schedulability verdict, per-task response-time statistics
// and, optionally, the full trace and an ASCII Gantt chart.
//
// The run honours the shared resource-limit flags and maps failures onto
// the exit-code scheme documented in internal/diag: 0 schedulable,
// 1 operational error, 2 usage, 3 not schedulable, 4 budget exhausted or
// interrupted, 5 model diagnostic (timelock/livelock/semantics), 6 invalid
// configuration.
//
// Usage:
//
//	simulate -config system.xml [-trace] [-gantt] [-scale N] [-observers]
//	         [-check-engine] [-max-steps N] [-timeout D] [-max-mem-mb N]
//	         [-report out.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		showTrace  = flag.Bool("trace", false, "print the full system operation trace")
		showGantt  = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		scale      = flag.Int64("scale", 1, "Gantt ticks per column")
		observers  = flag.Bool("observers", false, "check the §3 correctness requirements during the run")
		jsonOut    = flag.String("json", "", "write the trace and analysis as JSON to this file")
		csvOut     = flag.String("csv", "", "write the trace as CSV to this file")
		report     = flag.String("report", "", "write a JSON error/diagnostic report to this file on failure")
		checkEng   = flag.Bool("check-engine", false, "differentially verify the event-driven engine against naive re-enumeration at every step (slow)")
	)
	budget := diag.BudgetFlags()
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(diag.ExitUsage)
	}
	ctx, stop := diag.SignalContext()
	defer stop()
	run(ctx, *configPath, *showTrace, *showGantt, *scale, *observers, *jsonOut, *csvOut, *report, budget(), *checkEng)
}

// fail routes any error through the diag classifier (printing, optional
// JSON report, exit code) and is a no-op on nil.
func fail(err error, net *nsa.Network, reportPath string) {
	diag.Exit("simulate", err, net, reportPath)
}

func run(ctx context.Context, path string, showTrace, showGantt bool, scale int64, withObservers bool, jsonOut, csvOut, reportPath string, b nsa.Budget, checkEngine bool) {
	f, err := os.Open(path)
	if err != nil {
		fail(err, nil, reportPath)
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		fail(err, nil, reportPath)
	}
	m, err := model.Build(sys)
	if err != nil {
		fail(err, nil, reportPath)
	}
	fmt.Printf("system %q: %d cores, %d partitions, %d tasks, %d messages, L=%d, %d jobs\n",
		sys.Name, len(sys.Cores), len(sys.Partitions), sys.TaskCount(), len(sys.Messages),
		sys.Hyperperiod(), sys.JobCount())

	if withObservers {
		violations, err := observer.VerifyRunContext(ctx, m, b)
		if err != nil {
			fail(err, m.Net, reportPath)
		}
		if len(violations) == 0 {
			fmt.Println("observers: all §3 requirements satisfied on this run")
		} else {
			for _, v := range violations {
				fmt.Println("observer violation:", v)
			}
		}
		// Rebuild for a clean run below.
		m, err = model.Build(sys)
		if err != nil {
			fail(err, nil, reportPath)
		}
	}

	tr, res, err := m.SimulateEngine(ctx, nsa.Options{Budget: b, CheckEngine: checkEngine})
	if err != nil {
		fail(err, m.Net, reportPath)
	}
	if checkEngine {
		fmt.Println("check-engine: optimized and naive interpretations agreed at every step")
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		fail(err, m.Net, reportPath)
	}
	fmt.Printf("run: %d actions, %d delays, stopped at t=%d\n", res.Actions, res.Delays, res.Time)
	fmt.Print(a.Summary(sys))
	if showGantt {
		fmt.Print(trace.Gantt(sys, tr, scale))
	}
	if showTrace {
		fmt.Print(tr.Format(sys))
	}
	if jsonOut != "" {
		w, err := os.Create(jsonOut)
		if err != nil {
			fail(err, m.Net, reportPath)
		}
		if err := trace.WriteJSON(w, sys, tr, a); err != nil {
			w.Close()
			fail(err, m.Net, reportPath)
		}
		if err := w.Close(); err != nil {
			fail(err, m.Net, reportPath)
		}
	}
	if csvOut != "" {
		w, err := os.Create(csvOut)
		if err != nil {
			fail(err, m.Net, reportPath)
		}
		if err := tr.WriteCSV(w, sys); err != nil {
			w.Close()
			fail(err, m.Net, reportPath)
		}
		if err := w.Close(); err != nil {
			fail(err, m.Net, reportPath)
		}
	}
	if !a.Schedulable {
		os.Exit(diag.ExitVerdict)
	}
}

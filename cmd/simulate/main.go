// Command simulate reads a system configuration from XML, constructs the
// NSA instance (Algorithm 1), interprets it over one hyperperiod and
// reports the schedulability verdict, per-task response-time statistics
// and, optionally, the full trace and an ASCII Gantt chart.
//
// The run honours the shared resource-limit flags and maps failures onto
// the exit-code scheme documented in internal/diag: 0 schedulable,
// 1 operational error, 2 usage, 3 not schedulable, 4 budget exhausted or
// interrupted, 5 model diagnostic (timelock/livelock/semantics), 6 invalid
// configuration.
//
// Every run is probed and phase-timed: -report writes a JSON document with
// the structured diagnostics (on failure) or a success record, either way
// embedding the telemetry RunReport (phase durations, engine hot-path
// counters). -profile cpu|mem|trace writes a standard pprof/trace file
// over the run. -log-level debug logs every fired transition with the
// chooser seed and chosen candidate index, so a -check-engine divergence
// is reproducible from the log alone.
//
// Usage:
//
//	simulate -config system.xml [-trace] [-gantt] [-scale N] [-observers]
//	         [-backend event|compiled|naive]
//	         [-check-engine] [-seed N] [-max-steps N] [-timeout D]
//	         [-max-mem-mb N] [-report out.json] [-profile cpu|mem|trace]
//	         [-log-level info] [-log-format text]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		showTrace  = flag.Bool("trace", false, "print the full system operation trace")
		showGantt  = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		scale      = flag.Int64("scale", 1, "Gantt ticks per column")
		observers  = flag.Bool("observers", false, "check the §3 correctness requirements during the run")
		jsonOut    = flag.String("json", "", "write the trace and analysis as JSON to this file")
		csvOut     = flag.String("csv", "", "write the trace as CSV to this file")
		report     = flag.String("report", "", "write a JSON report (diagnostics + telemetry) to this file")
		backendStr = flag.String("backend", "event", "engine backend: event, compiled or naive")
		checkEng   = flag.Bool("check-engine", false, "differentially verify the optimized engine at every step (slow); with -backend compiled this chains all three backends")
		seed       = flag.Int64("seed", -1, "resolve nondeterminism with a seeded random chooser (default: first in canonical order)")
	)
	budget := diag.BudgetFlags()
	logger := obs.LogFlags()
	profile := obs.ProfileFlags()
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(diag.ExitUsage)
	}
	backend, err := nsa.ParseBackend(*backendStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(diag.ExitUsage)
	}
	ctx, stop := diag.SignalContext()
	defer stop()
	r := runner{
		lg:         logger(),
		tl:         obs.NewTimeline(),
		probe:      &obs.Probe{},
		reportPath: *report,
	}
	stopProf, err := profile()
	if err != nil {
		r.fail(err, nil)
	}
	r.run(ctx, *configPath, *showTrace, *showGantt, *scale, *observers, *jsonOut, *csvOut, budget(), backend, *checkEng, *seed)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
	}
}

// runner carries the run's telemetry so failures at any pipeline stage can
// attach the phases and counters collected so far.
type runner struct {
	lg         *slog.Logger
	tl         *obs.Timeline
	probe      *obs.Probe
	reportPath string
}

// fail routes any error through the diag classifier (printing, JSON report
// with telemetry, exit code) and is a no-op on nil.
func (r *runner) fail(err error, net *nsa.Network) {
	if err == nil {
		return
	}
	diag.ExitWith("simulate", err, net, r.reportPath, r.tl.Report("simulate", r.probe))
}

func (r *runner) run(ctx context.Context, path string, showTrace, showGantt bool, scale int64, withObservers bool, jsonOut, csvOut string, b nsa.Budget, backend nsa.Backend, checkEngine bool, seed int64) {
	sp := r.tl.Start(obs.PhaseParse)
	f, err := os.Open(path)
	if err != nil {
		r.fail(err, nil)
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	sp.End()
	if err != nil {
		r.fail(err, nil)
	}
	sp = r.tl.Start(obs.PhaseBuild)
	m, err := model.Build(sys)
	sp.End()
	if err != nil {
		r.fail(err, nil)
	}
	fmt.Printf("system %q: %d cores, %d partitions, %d tasks, %d messages, L=%d, %d jobs\n",
		sys.Name, len(sys.Cores), len(sys.Partitions), sys.TaskCount(), len(sys.Messages),
		sys.Hyperperiod(), sys.JobCount())

	if withObservers {
		violations, err := observer.VerifyRunContext(ctx, m, b)
		if err != nil {
			r.fail(err, m.Net)
		}
		if len(violations) == 0 {
			fmt.Println("observers: all §3 requirements satisfied on this run")
		} else {
			for _, v := range violations {
				fmt.Println("observer violation:", v)
			}
		}
		// Rebuild for a clean run below.
		m, err = model.Build(sys)
		if err != nil {
			r.fail(err, nil)
		}
	}

	opts := nsa.Options{Budget: b, Backend: backend, CheckEngine: checkEngine, Probe: r.probe, Logger: r.lg}
	if seed >= 0 {
		opts.Chooser = nsa.NewRandomChooser(seed)
	}
	sp = r.tl.Start(obs.PhaseInterpret)
	tr, res, err := m.SimulateEngine(ctx, opts)
	sp.End()
	if err != nil {
		r.fail(err, m.Net)
	}
	if checkEngine {
		if backend == nsa.BackendCompiled {
			fmt.Println("check-engine: compiled, event-driven and naive interpretations agreed at every step")
		} else {
			fmt.Println("check-engine: optimized and naive interpretations agreed at every step")
		}
	}
	sp = r.tl.Start(obs.PhaseCheck)
	a, err := trace.Analyze(sys, tr)
	sp.End()
	if err != nil {
		r.fail(err, m.Net)
	}
	fmt.Printf("run: %d actions, %d delays, stopped at t=%d\n", res.Actions, res.Delays, res.Time)
	fmt.Print(a.Summary(sys))
	if showGantt {
		fmt.Print(trace.Gantt(sys, tr, scale))
	}
	if showTrace {
		fmt.Print(tr.Format(sys))
	}
	if jsonOut != "" || csvOut != "" {
		sp = r.tl.Start(obs.PhaseExport)
		if jsonOut != "" {
			w, err := os.Create(jsonOut)
			if err != nil {
				r.fail(err, m.Net)
			}
			if err := trace.WriteJSON(w, sys, tr, a); err != nil {
				w.Close()
				r.fail(err, m.Net)
			}
			if err := w.Close(); err != nil {
				r.fail(err, m.Net)
			}
		}
		if csvOut != "" {
			w, err := os.Create(csvOut)
			if err != nil {
				r.fail(err, m.Net)
			}
			if err := tr.WriteCSV(w, sys); err != nil {
				w.Close()
				r.fail(err, m.Net)
			}
			if err := w.Close(); err != nil {
				r.fail(err, m.Net)
			}
		}
		sp.End()
	}
	if err := diag.WriteSuccess("simulate", r.reportPath, r.tl.Report("simulate", r.probe)); err != nil {
		fmt.Fprintln(os.Stderr, "simulate: writing report:", err)
	}
	if !a.Schedulable {
		os.Exit(diag.ExitVerdict)
	}
}

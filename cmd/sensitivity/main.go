// Command sensitivity performs WCET sensitivity analysis on a
// configuration with the stopwatch-automata model as the oracle on every
// probe — the same use-the-model-as-a-subroutine pattern as the §4
// scheduling tool. Two modes:
//
//   - Binary search (default): the largest percentage by which every WCET
//     can be scaled while the configuration stays schedulable.
//   - Grid sweep (-sweep lo:hi:step or -points a,b,c): evaluate every
//     scaling point, fanned across a bounded worker pool (-parallel N)
//     with a content-addressed result cache, so an 8-point sweep on four
//     cores takes roughly two serial runs of wall clock instead of eight.
//
// Exit codes follow internal/diag: 0 the unscaled configuration is
// schedulable, 1 operational error, 2 usage, 3 the unscaled configuration
// is not schedulable, 4 budget exhausted or interrupted, 5 model
// diagnostic, 6 invalid configuration.
//
// Usage:
//
//	sensitivity -config system.xml [-max 400] [-sweep lo:hi:step]
//	            [-points 60,80,120] [-parallel N] [-json out.json]
//	            [-max-steps N] [-timeout D] [-max-mem-mb N]
//	            [-report out.json]
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"flag"

	"stopwatchsim/internal/analysis"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		maxPct     = flag.Int64("max", 400, "upper bound of the binary search, in percent")
		sweep      = flag.String("sweep", "", "evaluate a lo:hi:step percentage grid instead of binary search")
		points     = flag.String("points", "", "comma-separated percentage points to evaluate")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "concurrent analysis runs in sweep mode")
		jsonOut    = flag.String("json", "", "write the analysis result as JSON to this file")
		report     = flag.String("report", "", "write a JSON error/diagnostic report to this file on failure")
	)
	budget := diag.BudgetFlags()
	logger := obs.LogFlags()
	flag.Parse()
	logger() // install the structured default logger (-log-level, -log-format)
	if *configPath == "" || (*sweep != "" && *points != "") {
		flag.Usage()
		os.Exit(diag.ExitUsage)
	}
	ctx, stop := diag.SignalContext()
	defer stop()
	run(ctx, *configPath, *maxPct, *sweep, *points, *parallel, *jsonOut, *report, budget())
}

// resultDoc is the -json output: the verdict document of one sensitivity
// analysis.
type resultDoc struct {
	System      string                `json:"system"`
	Fingerprint string                `json:"fingerprint"`
	Baseline    bool                  `json:"baseline_schedulable"`
	CriticalPct int64                 `json:"critical_pct"`
	MaxPct      int64                 `json:"max_pct,omitempty"`
	Parallel    int                   `json:"parallel,omitempty"`
	Points      []analysis.SweepPoint `json:"points,omitempty"`
	ElapsedMS   int64                 `json:"elapsed_ms"`
}

// fail routes err through the diag classifier and terminates; no-op on nil.
func fail(err error, reportPath string) {
	diag.Exit("sensitivity", err, nil, reportPath)
}

func run(ctx context.Context, path string, maxPct int64, sweepSpec, pointsSpec string, parallel int, jsonOut, reportPath string, b nsa.Budget) {
	f, err := os.Open(path)
	if err != nil {
		fail(err, reportPath)
	}
	sys, err := config.ReadXML(f)
	f.Close()
	if err != nil {
		fail(err, reportPath)
	}
	doc := resultDoc{System: sys.Name, Fingerprint: sys.Fingerprint(), MaxPct: maxPct}
	start := time.Now()

	if sweepSpec != "" || pointsSpec != "" {
		grid, err := parseGrid(sweepSpec, pointsSpec)
		if err != nil {
			fail(err, reportPath)
		}
		// The unscaled configuration anchors the verdict (and the exit
		// code); evaluate it as part of the grid so the pool caches it.
		if !contains(grid, 100) {
			grid = append([]int64{100}, grid...)
		}
		sweep, err := analysis.SweepWCET(ctx, sys, grid, parallel, b)
		if err != nil {
			fail(err, reportPath)
		}
		doc.Parallel = parallel
		doc.Points = sweep
		doc.CriticalPct = analysis.CriticalFromSweep(sweep)
		fmt.Printf("sweep of %d points, %d parallel workers (%v):\n", len(sweep), parallel, time.Since(start).Round(time.Millisecond))
		for _, p := range sweep {
			mark := "not schedulable"
			if p.Schedulable {
				mark = "schedulable"
			}
			cached := ""
			if p.CacheHit {
				cached = " (cached)"
			}
			fmt.Printf("  %4d%%  %-15s %8s%s\n", p.Pct, mark, p.Elapsed.Round(time.Microsecond), cached)
			if p.Pct == 100 {
				doc.Baseline = p.Schedulable
			}
		}
		fmt.Printf("largest schedulable point: %d%%\n", doc.CriticalPct)
	} else {
		base, err := analysis.Schedulable(sys)
		if err != nil {
			fail(err, reportPath)
		}
		doc.Baseline = base
		fmt.Printf("baseline (100%%): schedulable=%t\n", base)
		pct, err := analysis.CriticalScaling(sys, maxPct)
		if err != nil {
			fail(err, reportPath)
		}
		doc.CriticalPct = pct
		fmt.Printf("critical WCET scaling: %d%% (search bound %d%%, %v)\n",
			pct, maxPct, time.Since(start).Round(time.Millisecond))
		switch {
		case pct == 0:
			fmt.Println("the configuration is unschedulable even with minimal WCETs")
		case pct < 100:
			fmt.Println("the configuration is overloaded: WCETs must shrink to fit")
		default:
			fmt.Printf("WCET headroom: ×%.2f before a deadline miss\n", float64(pct)/100)
		}
	}
	doc.ElapsedMS = time.Since(start).Milliseconds()

	if jsonOut != "" {
		if err := writeResult(jsonOut, &doc); err != nil {
			fail(err, reportPath)
		}
	}
	if !doc.Baseline {
		os.Exit(diag.ExitVerdict)
	}
}

// parseGrid turns -sweep lo:hi:step or -points a,b,c into the point list.
func parseGrid(sweepSpec, pointsSpec string) ([]int64, error) {
	if sweepSpec != "" {
		parts := strings.Split(sweepSpec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("sensitivity: -sweep wants lo:hi:step, got %q", sweepSpec)
		}
		var v [3]int64
		for i, p := range parts {
			n, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sensitivity: -sweep %q: %w", sweepSpec, err)
			}
			v[i] = n
		}
		return analysis.SweepRange(v[0], v[1], v[2])
	}
	var pts []int64
	for _, p := range strings.Split(pointsSpec, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sensitivity: -points %q: %w", pointsSpec, err)
		}
		pts = append(pts, n)
	}
	return pts, nil
}

func contains(pts []int64, v int64) bool {
	for _, p := range pts {
		if p == v {
			return true
		}
	}
	return false
}

func writeResult(path string, doc *resultDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

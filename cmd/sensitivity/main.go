// Command sensitivity performs WCET sensitivity analysis on a
// configuration: the largest percentage by which every task's WCET can be
// scaled while the configuration stays schedulable, found by binary search
// with the stopwatch-automata model as the oracle on every probe — the
// same use-the-model-as-a-subroutine pattern as the §4 scheduling tool.
//
// Usage:
//
//	sensitivity -config system.xml [-max 400]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stopwatchsim/internal/analysis"
	"stopwatchsim/internal/config"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		maxPct     = flag.Int64("max", 400, "upper bound of the search, in percent")
	)
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath, *maxPct); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}

func run(path string, maxPct int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		return err
	}
	base, err := analysis.Schedulable(sys)
	if err != nil {
		return err
	}
	fmt.Printf("baseline (100%%): schedulable=%t\n", base)
	start := time.Now()
	pct, err := analysis.CriticalScaling(sys, maxPct)
	if err != nil {
		return err
	}
	fmt.Printf("critical WCET scaling: %d%% (search bound %d%%, %v)\n",
		pct, maxPct, time.Since(start).Round(time.Millisecond))
	switch {
	case pct == 0:
		fmt.Println("the configuration is unschedulable even with minimal WCETs")
	case pct < 100:
		fmt.Println("the configuration is overloaded: WCETs must shrink to fit")
	default:
		fmt.Printf("WCET headroom: ×%.2f before a deadline miss\n", float64(pct)/100)
	}
	return nil
}

// Command campaign runs design-space exploration campaigns locally: a
// campaign spec (JSON) fans configurations through an in-process analysis
// pool, checkpointing every completed point to a crash-safe on-disk
// artifact store. A campaign killed at any instant — crash, OOM, kill -9 —
// resumes from its last checkpoint, skipping every point whose
// configuration fingerprint is already on disk.
//
// Subcommands:
//
//	campaign run    -spec spec.json -store DIR [-base system.xml] [-workers N] [-report out.json]
//	campaign resume -store DIR [-workers N]
//	campaign status -store DIR [-id ID]
//	campaign export -store DIR -id ID [-o out.json]
//	campaign spec   -spec spec.json [-base system.xml]
//
// run starts (or resumes, when the spec's fingerprint matches a stored
// checkpoint) the campaign and waits for it; -base injects a base system
// from an XML configuration file into the spec, so specs stay small;
// -report writes the final summary JSON (the `campaign export` document)
// so scripted callers need no second invocation.
// resume relaunches every interrupted campaign in the store and waits for
// all of them. status lists checkpointed campaigns; export writes the
// summary JSON (schema campaign/summary/v1, the same document the service
// serves at /v1/campaigns/{id}/result). spec validates a spec, merges
// -base into it, and prints the self-contained result — the exact body
// POST /v1/campaigns accepts, since the HTTP API takes no -base flag.
//
// Exit codes follow internal/diag: 0 success, 1 operational error, 2
// usage, 4 interrupted (progress checkpointed; rerun resume to continue).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(diag.ExitUsage)
	}
	var code int
	switch os.Args[1] {
	case "run":
		code = cmdRun(os.Args[2:])
	case "resume":
		code = cmdResume(os.Args[2:])
	case "status":
		code = cmdStatus(os.Args[2:])
	case "export":
		code = cmdExport(os.Args[2:])
	case "spec":
		code = cmdSpec(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n", os.Args[1])
		usage()
		code = diag.ExitUsage
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  campaign run    -spec spec.json -store DIR [-base system.xml] [-workers N] [-report out.json]
  campaign resume -store DIR [-workers N]
  campaign status -store DIR [-id ID]
  campaign export -store DIR -id ID [-o out.json]
  campaign spec   -spec spec.json [-base system.xml]
`)
}

// openStore opens the artifact store with the campaign checkpoint kind
// pinned (exempt from GC).
func openStore(dir string) (*store.Store, error) {
	return store.Open(dir, store.Options{PinnedKinds: []string{campaign.StoreKind()}})
}

// fail prints the error and returns its diag exit code.
func fail(err error) int {
	rep := diag.FromError("campaign", err, nil)
	fmt.Fprintln(os.Stderr, "campaign:", rep.Message)
	return rep.ExitCode
}

// loadSpec reads the spec file, injecting the base system from basePath
// (XML) when the spec carries none of its own.
func loadSpec(specPath, basePath string) (*campaign.Spec, error) {
	f, err := os.Open(specPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return campaign.ParseSpecBase(f, func() (*config.System, error) {
		if basePath == "" {
			return nil, nil
		}
		bf, err := os.Open(basePath)
		if err != nil {
			return nil, err
		}
		defer bf.Close()
		return config.ReadXML(bf)
	})
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON (required)")
	storeDir := fs.String("store", "", "artifact store directory (required)")
	basePath := fs.String("base", "", "base system XML to inject into the spec")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent analysis runs")
	report := fs.String("report", "", "write the final summary JSON (campaign/summary/v1) to this file")
	logger := obs.LogFlagsFor(fs)
	fs.Parse(args)
	lg := logger()
	if *specPath == "" || *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}

	spec, err := loadSpec(*specPath, *basePath)
	if err != nil {
		return fail(err)
	}

	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: *workers, Tool: "campaign", Logger: lg, Store: st})
	defer pool.Close()
	eng := campaign.NewEngine(pool, st, lg)

	started, err := eng.Start(spec)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "campaign %s (%s, %s): %d points checkpointed\n",
		started.ID[:12], started.Name, started.Strategy, len(started.Points))
	code := awaitCampaigns(eng, st, []string{started.ID})
	if *report != "" && code != diag.ExitBudget {
		if final, ok := eng.Get(started.ID); ok {
			if err := writeSummary(*report, final); err != nil {
				return fail(err)
			}
		}
	}
	return code
}

// writeSummary writes a state's summary JSON — the exact document
// `campaign export` produces — to path. The point counts it carries
// (computed vs cache tiers) are what synth-vs-grid comparisons read.
func writeSummary(path string, state campaign.State) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(state.Summarize()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdResume(args []string) int {
	fs := flag.NewFlagSet("campaign resume", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent analysis runs")
	logger := obs.LogFlagsFor(fs)
	fs.Parse(args)
	lg := logger()
	if *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}

	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: *workers, Tool: "campaign", Logger: lg, Store: st})
	defer pool.Close()
	eng := campaign.NewEngine(pool, st, lg)

	resumed := eng.ResumeAll()
	if len(resumed) == 0 {
		fmt.Fprintln(os.Stderr, "campaign: nothing to resume")
		return diag.ExitOK
	}
	fmt.Fprintf(os.Stderr, "campaign: resuming %d campaign(s)\n", len(resumed))
	return awaitCampaigns(eng, st, resumed)
}

// awaitCampaigns waits for the campaigns to finish, printing each final
// state. On SIGINT/SIGTERM it exits without canceling: the checkpoints
// still say "running", so `campaign resume` picks the work back up.
func awaitCampaigns(eng *campaign.Engine, st *store.Store, ids []string) int {
	ctx, stop := diag.SignalContext()
	defer stop()
	code := diag.ExitOK
	for _, id := range ids {
		final, err := eng.Wait(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "campaign: interrupted; progress is checkpointed, run `campaign resume -store %s` to continue\n", st.Dir())
				return diag.ExitBudget
			}
			return fail(err)
		}
		printState(final)
		if final.Status != campaign.StatusDone {
			code = diag.ExitError
		}
	}
	return code
}

func printState(st campaign.State) {
	sum := st.Summarize()
	fmt.Fprintf(os.Stderr, "campaign %s (%s): %s — %d points (%d computed, %d memory, %d disk, %d checkpoint, %d failed)\n",
		st.ID[:12], st.Name, st.Status, sum.Points.Total, sum.Points.Computed,
		sum.Points.CacheMemory, sum.Points.CacheDisk, sum.Points.Checkpoint, sum.Points.Failed)
	if sum.Critical != nil {
		fmt.Fprintf(os.Stderr, "  critical %s = %g\n", st.Spec.Axes[0].Param, *sum.Critical)
	}
	if b := sum.Bracket; b != nil && b.Feasible != nil && b.Infeasible != nil {
		fmt.Fprintf(os.Stderr, "  bracket: %g schedulable, %g unschedulable\n", *b.Feasible, *b.Infeasible)
	}
	for _, row := range sum.Frontier {
		if row.Critical != nil {
			fmt.Fprintf(os.Stderr, "  frontier %s=%g → critical %s = %g (%d evaluations)\n",
				st.Spec.Axes[0].Param, row.Row, st.Spec.Axes[1].Param, *row.Critical, row.Evaluations)
		} else {
			fmt.Fprintf(os.Stderr, "  frontier %s=%g → nothing schedulable (%d evaluations)\n",
				st.Spec.Axes[0].Param, row.Row, row.Evaluations)
		}
	}
	if st.Trace != "" {
		fmt.Fprintf(os.Stderr, "  trace %s\n", st.Trace)
	}
	for _, sl := range st.Stragglers {
		fmt.Fprintf(os.Stderr, "  straggler %s: %s", sl.Point.Key(), time.Duration(sl.ElapsedNS))
		if sl.Trace != "" {
			fmt.Fprintf(os.Stderr, "  trace %s", sl.Trace)
		}
		fmt.Fprintln(os.Stderr)
	}
}

// cmdSpec validates a spec, merges -base into it, and prints the
// self-contained spec JSON — suitable as the body of POST /v1/campaigns.
func cmdSpec(args []string) int {
	fs := flag.NewFlagSet("campaign spec", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON (required)")
	basePath := fs.String("base", "", "base system XML to inject into the spec")
	fs.Parse(args)
	if *specPath == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	spec, err := loadSpec(*specPath, *basePath)
	if err != nil {
		return fail(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "campaign: spec fingerprint %s\n", spec.Fingerprint())
	return diag.ExitOK
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	id := fs.String("id", "", "show one campaign in full")
	fs.Parse(args)
	if *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	// A pool is required by the engine but no jobs run under status.
	pool := jobs.New(jobs.Options{Workers: 1, Tool: "campaign"})
	defer pool.Close()
	eng := campaign.NewEngine(pool, st, nil)
	eng.RegisterAll()

	if *id != "" {
		state, ok := eng.Get(*id)
		if !ok {
			return fail(fmt.Errorf("unknown campaign %q", *id))
		}
		printState(state)
		return diag.ExitOK
	}
	all := eng.List()
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "campaign: store holds no campaigns")
		return diag.ExitOK
	}
	for _, state := range all {
		fmt.Fprintf(os.Stdout, "%s  %-8s  %-8s  %4d points  %s\n",
			state.ID[:12], state.Strategy, state.Status, len(state.Points), state.Name)
	}
	return diag.ExitOK
}

func cmdExport(args []string) int {
	fs := flag.NewFlagSet("campaign export", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	id := fs.String("id", "", "campaign ID (required; prefix accepted)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *storeDir == "" || *id == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: 1, Tool: "campaign"})
	defer pool.Close()
	eng := campaign.NewEngine(pool, st, nil)
	eng.RegisterAll()

	state, ok := eng.Get(*id)
	if !ok {
		// Accept an unambiguous ID prefix, as git does.
		var matches []campaign.State
		for _, s := range eng.List() {
			if len(*id) >= 4 && len(*id) <= len(s.ID) && s.ID[:len(*id)] == *id {
				matches = append(matches, s)
			}
		}
		if len(matches) != 1 {
			return fail(fmt.Errorf("unknown campaign %q", *id))
		}
		state = matches[0]
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(state.Summarize()); err != nil {
		return fail(err)
	}
	return diag.ExitOK
}

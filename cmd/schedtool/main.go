// Command schedtool demonstrates the §4 integration: the configuration
// search tool (the paper's ref [8] substrate) uses the parametric model as
// its schedulability test on every iteration. It reads a design problem as
// an XML configuration whose bindings/windows are treated as a baseline,
// strips them, searches candidate bindings with synthesized window
// schedules, and prints the best schedulable configuration found.
//
// Usage:
//
//	schedtool -config system.xml [-candidates N] [-seed S] [-o best.xml]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/sched"
)

func main() {
	var (
		configPath = flag.String("config", "", "baseline configuration XML (required)")
		candidates = flag.Int("candidates", 32, "bindings to try")
		seed       = flag.Int64("seed", 1, "random binding seed")
		out        = flag.String("o", "", "write the best configuration XML here")
	)
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath, *candidates, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "schedtool:", err)
		os.Exit(1)
	}
}

func run(path string, candidates int, seed int64, out string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		return err
	}

	p := &sched.Problem{
		Name:      sys.Name + "-opt",
		CoreTypes: sys.CoreTypes,
		Cores:     sys.Cores,
		Messages:  sys.Messages,
	}
	for i := range sys.Partitions {
		part := &sys.Partitions[i]
		p.Partitions = append(p.Partitions, sched.PartitionSpec{
			Name: part.Name, Tasks: part.Tasks, Policy: part.Policy,
		})
	}

	start := time.Now()
	res, err := sched.Search(p, sched.Options{Candidates: candidates, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("searched %d candidate configurations (%d schedulable) in %v\n",
		res.Tried, res.Schedulable, time.Since(start))
	if res.Best == nil {
		fmt.Println("no schedulable configuration found")
		os.Exit(3)
	}
	fmt.Printf("best binding (partition -> core): %v, min relative slack %.3f\n",
		res.Best.Binding, -res.Best.Score)
	fmt.Print(res.Best.Analysis.Summary(res.Best.Sys))
	if out != "" {
		w, err := os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
		if err := res.Best.Sys.WriteXML(w); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	return nil
}

// Command benchtable regenerates the paper's experimental results:
//
//   - -table1 prints Table 1 (execution time of Model Checking vs the
//     proposed single-run interpretation, for 10–18 jobs);
//   - -scale runs the §4 industrial-scale experiment (~12 500 jobs) and
//     reports construction and interpretation time;
//   - -engine runs the engine micro-benchmarks: steady-state throughput
//     (one persistent engine, Reset+Run per op — the compiled backend's
//     zero-allocation regime) and the expression-evaluation kernel;
//   - -compose measures compositional vs global analysis on a 16-module
//     distributed system: the summed per-module interpretations against
//     one global-product interpretation (the ComposeVsGlobal rows, the
//     compositional one guarded by the CI bench gate).
//
// -backend selects the engine backend for every measured interpretation
// (default "compiled", the production configuration).
//
// Absolute times depend on the host; the reproduced result is the shape:
// Model Checking roughly doubles per added job while the proposed approach
// stays flat, and an industrial-scale configuration simulates in seconds.
//
// The shared resource-limit flags bound the Model Checking runs (they grow
// exponentially with the job count); a column whose exploration exceeds the
// budget is reported as "n/a" instead of hanging the table.
//
// -json <path> additionally writes the measurements as a machine-readable
// report (name, ns/op, allocs/op, events/sec); "-json auto" names the file
// BENCH_<date>.json, the convention the CI bench job archives and that
// BENCH_baseline.json (the committed pre-optimization snapshot) follows.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/trace"
)

// probe collects the engine hot-path counters across every measured
// interpretation; the aggregate lands in the -json report so CI can assert
// the instrumented engine actually counted (nonzero steps, consistent
// action/delay split).
var probe = &obs.Probe{}

// benchRow is one machine-readable measurement in the -json report,
// mirroring the columns of `go test -bench` plus the engine's own
// throughput metric.
type benchRow struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsOp is always emitted (no omitempty): an explicit 0 is the
	// compiled backend's headline number, and the CI bench-regression job
	// fails on any allocs increase, so the column must be present to diff.
	AllocsOp  uint64  `json:"allocs_per_op"`
	EventsSec float64 `json:"events_per_sec,omitempty"`
}

// benchReport is the top-level -json document; the file name defaults to
// BENCH_<date>.json so CI can archive one artifact per run.
type benchReport struct {
	Date   string     `json:"date"`
	GoOS   string     `json:"goos"`
	GoArch string     `json:"goarch"`
	Rows   []benchRow `json:"rows"`

	// EngineCounters aggregates the probe over every measured
	// interpretation run.
	EngineCounters obs.Counters `json:"engine_counters"`
}

var report *benchReport

// mallocs samples the process-wide cumulative allocation counter; pairs of
// samples around a run yield its allocs/op.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// addRow records one measurement when -json reporting is active. events is
// the number of engine actions fired during the run (0 omits the
// throughput column).
func addRow(name string, elapsed time.Duration, allocs uint64, events int) {
	if report == nil {
		return
	}
	row := benchRow{
		Name:     name,
		NsPerOp:  float64(elapsed.Nanoseconds()),
		AllocsOp: allocs,
	}
	if events > 0 && elapsed > 0 {
		row.EventsSec = float64(events) / elapsed.Seconds()
	}
	report.Rows = append(report.Rows, row)
}

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		scale      = flag.Bool("scale", false, "run the industrial-scale experiment")
		engineMB   = flag.Bool("engine", false, "run the engine micro-benchmarks (steady-state throughput, expression eval)")
		composeMB  = flag.Bool("compose", false, "run the compositional-vs-global experiment (16-module system)")
		backendStr = flag.String("backend", "compiled", "engine backend for measured interpretations: compiled, event or naive")
		minJ       = flag.Int("min", 10, "Table 1 minimum job count")
		maxJ       = flag.Int("max", 18, "Table 1 maximum job count")
		maxStates  = flag.Int("max-states", 0, "state bound per Model Checking run (0 = default bound)")
		jsonOut    = flag.String("json", "", `write measurements as JSON ("auto" = BENCH_<date>.json)`)
	)
	budget := diag.BudgetFlags()
	profile := obs.ProfileFlags()
	flag.Parse()
	if !*table1 && !*scale && !*engineMB && !*composeMB {
		*table1, *scale, *engineMB, *composeMB = true, true, true, true
	}
	backend, err := nsa.ParseBackend(*backendStr)
	if err != nil {
		diag.Exit("benchtable", err, nil, "")
	}
	ctx, stop := diag.SignalContext()
	defer stop()
	stopProf, err := profile()
	if err != nil {
		diag.Exit("benchtable", err, nil, "")
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtable:", err)
		}
	}()
	b := budget()
	b.MaxStates = *maxStates
	if *jsonOut != "" {
		report = &benchReport{
			Date:   time.Now().UTC().Format("2006-01-02"),
			GoOS:   runtime.GOOS,
			GoArch: runtime.GOARCH,
		}
	}
	if *table1 {
		if err := runTable1(ctx, *minJ, *maxJ, b, backend); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
	}
	if *scale {
		if err := runScale(ctx, b, backend); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
	}
	if *engineMB {
		if err := runEngine(ctx, b, backend); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
	}
	if *composeMB {
		if err := runCompose(ctx, b, backend); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
	}
	if report != nil {
		report.EngineCounters = probe.Snapshot()
		path := *jsonOut
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", report.Date)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
		fmt.Printf("wrote %s (%d measurements)\n", path, len(report.Rows))
	}
}

func runTable1(ctx context.Context, minJ, maxJ int, b nsa.Budget, backend nsa.Backend) error {
	fmt.Println("Table 1. Execution times for various number of jobs")
	fmt.Printf("%-28s", "Number of jobs")
	for j := minJ; j <= maxJ; j++ {
		fmt.Printf(" %9d", j)
	}
	fmt.Println()

	mcTimes := make([]time.Duration, 0, maxJ-minJ+1) // -1 marks a budget abort
	simTimes := make([]time.Duration, 0, maxJ-minJ+1)
	for j := minJ; j <= maxJ; j++ {
		sys := gen.Table1Config(j)

		m, err := model.Build(sys)
		if err != nil {
			return err
		}
		a0 := mallocs()
		start := time.Now()
		okMC, _, err := mc.CheckSchedulabilityContext(ctx, m, b)
		var rerr *nsa.RunError
		aborted := errors.As(err, &rerr)
		if aborted {
			if rerr.Reason == nsa.StopCanceled {
				return err
			}
			mcTimes = append(mcTimes, -1)
		} else if err != nil {
			return err
		} else {
			d := time.Since(start)
			mcTimes = append(mcTimes, d)
			addRow(fmt.Sprintf("Table1/ModelChecking/jobs=%d", j), d, mallocs()-a0, 0)
		}

		a0 = mallocs()
		start = time.Now()
		m2, err := model.Build(sys)
		if err != nil {
			return err
		}
		tr, res, err := m2.SimulateEngine(ctx, nsa.Options{Budget: b, Probe: probe, Backend: backend})
		if err != nil {
			return err
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			return err
		}
		d := time.Since(start)
		simTimes = append(simTimes, d)
		addRow(fmt.Sprintf("Table1/Proposed/jobs=%d", j), d, mallocs()-a0, res.Actions)
		if !aborted && okMC != a.Schedulable {
			return fmt.Errorf("jobs=%d: MC verdict %t != simulation verdict %t", j, okMC, a.Schedulable)
		}
	}
	fmt.Printf("%-28s", "Model Checking (seconds)")
	for _, d := range mcTimes {
		if d < 0 {
			fmt.Printf(" %9s", "n/a")
		} else {
			fmt.Printf(" %9.3f", d.Seconds())
		}
	}
	fmt.Println()
	fmt.Printf("%-28s", "Proposed Approach (seconds)")
	for _, d := range simTimes {
		fmt.Printf(" %9.3f", d.Seconds())
	}
	fmt.Println()
	return nil
}

func runScale(ctx context.Context, b nsa.Budget, backend nsa.Backend) error {
	sys := gen.IndustrialConfig()
	fmt.Printf("\nIndustrial-scale experiment (§4): %d jobs, %d tasks, %d partitions, %d cores, L=%d\n",
		sys.JobCount(), sys.TaskCount(), len(sys.Partitions), len(sys.Cores), sys.Hyperperiod())

	a0 := mallocs()
	start := time.Now()
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	build := time.Since(start)
	addRow("IndustrialScale/construction", build, mallocs()-a0, 0)

	a0 = mallocs()
	start = time.Now()
	tr, res, err := m.SimulateEngine(ctx, nsa.Options{Budget: b, Probe: probe, Backend: backend})
	if err != nil {
		return err
	}
	interp := time.Since(start)
	addRow("IndustrialScale/interpretation", interp, mallocs()-a0, res.Actions)

	a, err := trace.Analyze(sys, tr)
	if err != nil {
		return err
	}
	fmt.Printf("model instance construction: %v\n", build)
	fmt.Printf("model interpretation (%s): %v (%d actions, %d delays)\n", backend, interp, res.Actions, res.Delays)
	fmt.Printf("schedulability analysis:     %d jobs, schedulable=%t\n", len(a.Jobs), a.Schedulable)
	fmt.Printf("total:                       %v (paper: \"about 11 seconds for a configuration with 12500 jobs\")\n",
		build+interp)
	return nil
}

// runEngine measures the engine micro-benchmarks. EngineThroughput is the
// steady-state regime: one persistent engine over the mid-size benchmark
// configuration, Reset+Run per op after two warm-up runs, so the compiled
// backend's zero-allocation property is directly visible in the allocs/op
// column. ExprEval times the tree-walking expression evaluator on the
// reference guard.
func runEngine(ctx context.Context, b nsa.Budget, backend nsa.Backend) error {
	sys := gen.Random(21, gen.RandomParams{
		MaxCores: 2, MaxPartitions: 3, MaxTasks: 3,
		Periods: []int64{20, 40, 80}, MaxUtil: 0.9, Messages: 2,
	})
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Budget: b, Backend: backend, Probe: probe})
	res, err := eng.RunContext(ctx)
	if err != nil {
		return err
	}
	// Second warm-up: lazily grown scratch reaches its fixed point.
	eng.Reset()
	if _, err := eng.RunContext(ctx); err != nil {
		return err
	}

	const minWall = 200 * time.Millisecond
	iters := 0
	a0 := mallocs()
	start := time.Now()
	for time.Since(start) < minWall {
		eng.Reset()
		if _, err := eng.RunContext(ctx); err != nil {
			return err
		}
		iters++
	}
	perOp := time.Since(start) / time.Duration(iters)
	allocs := (mallocs() - a0) / uint64(iters)
	addRow("EngineThroughput", perOp, allocs, res.Actions)
	fmt.Printf("\nEngine steady state (%s backend): %v/run, %d allocs/run, %d actions/run over %d runs\n",
		backend, perOp, allocs, res.Actions, iters)

	// The same regime with the flight recorder armed: the observability
	// hot path's cost, pinned as its own row so the CI bench gate catches
	// a tracing-path regression (>15% ns/op over this row) separately
	// from the untraced baseline above.
	eng.SetFlight(obs.NewFlightRecorder(obs.DefaultFlightDepth))
	eng.Reset()
	if _, err := eng.RunContext(ctx); err != nil {
		return err
	}
	fiters := 0
	fa0 := mallocs()
	fstart := time.Now()
	for time.Since(fstart) < minWall {
		eng.Reset()
		if _, err := eng.RunContext(ctx); err != nil {
			return err
		}
		fiters++
	}
	fPerOp := time.Since(fstart) / time.Duration(fiters)
	fAllocs := (mallocs() - fa0) / uint64(fiters)
	eng.SetFlight(nil)
	addRow("EngineThroughput/flight", fPerOp, fAllocs, res.Actions)
	fmt.Printf("Engine steady state, flight recorder armed: %v/run, %d allocs/run over %d runs\n",
		fPerOp, fAllocs, fiters)

	sc := expr.MapScope{
		"x": {Kind: expr.SymVar, Index: 0},
		"t": {Kind: expr.SymClock, Index: 0},
	}
	n := expr.MustParseResolve("t <= 10 && x * 3 + 1 > 2", sc, expr.TypeBool)
	// Pre-box the interface: converting the env struct per call would
	// charge the evaluator one spurious alloc/op.
	var env expr.Env = evalEnv{vars: []int64{4}, clocks: []int64{5}}
	const evalIters = 1_000_000
	ea0 := mallocs()
	estart := time.Now()
	for i := 0; i < evalIters; i++ {
		if !n.EvalBool(env) {
			return fmt.Errorf("ExprEval: reference guard evaluated to false")
		}
	}
	evalOp := time.Since(estart) / evalIters
	addRow("ExprEval", evalOp, (mallocs()-ea0)/evalIters, 0)
	fmt.Printf("Expression eval: %v/op\n", evalOp)
	return nil
}

// runCompose measures the compositional decomposition against the global
// product on a deterministic 16-module distributed system: every module's
// sub-System (local tasks + environment stubs) is built and interpreted
// inline — single-threaded, so the allocs/op column is deterministic and
// the CI bench gate can guard it — and the summed cost is compared to one
// interpretation of the whole product. The gap is the point: local
// hyperperiods divide the global one, so the per-module runs fire far
// fewer transitions in total.
func runCompose(ctx context.Context, b nsa.Budget, backend nsa.Backend) error {
	sys := gen.MultiModule(16, 7)
	plan, err := compose.NewPlan(sys)
	if err != nil {
		return err
	}
	if plan.Fallback != "" {
		return fmt.Errorf("ComposeVsGlobal: benchmark system fell back: %s", plan.Fallback)
	}

	a0 := mallocs()
	start := time.Now()
	var actions int
	for _, mod := range plan.Modules {
		m, err := model.Build(mod.Sub)
		if err != nil {
			return err
		}
		tr, res, err := m.SimulateEngine(ctx, nsa.Options{Budget: b, Probe: probe, Backend: backend})
		if err != nil {
			return err
		}
		a, err := trace.Analyze(mod.Sub, tr)
		if err != nil {
			return err
		}
		if !a.Schedulable {
			return fmt.Errorf("ComposeVsGlobal: module %d unschedulable", mod.ID)
		}
		actions += res.Actions
	}
	compTime := time.Since(start)
	addRow("ComposeVsGlobal/compositional", compTime, mallocs()-a0, actions)

	a0 = mallocs()
	start = time.Now()
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	tr, res, err := m.SimulateEngine(ctx, nsa.Options{Budget: b, Probe: probe, Backend: backend})
	if err != nil {
		return err
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		return err
	}
	if !a.Schedulable {
		return fmt.Errorf("ComposeVsGlobal: global product unschedulable")
	}
	globTime := time.Since(start)
	addRow("ComposeVsGlobal/global", globTime, mallocs()-a0, res.Actions)

	fmt.Printf("\nCompositional vs global (16 modules, %d contracts): %v compositional, %v global (%.2fx)\n",
		len(plan.Contracts), compTime, globTime, float64(globTime)/float64(compTime))
	fmt.Printf("actions fired: %d compositional vs %d global\n", actions, res.Actions)
	return nil
}

type evalEnv struct {
	vars   []int64
	clocks []int64
}

func (e evalEnv) Var(i int) int64   { return e.vars[i] }
func (e evalEnv) Clock(i int) int64 { return e.clocks[i] }

// Command benchtable regenerates the paper's experimental results:
//
//   - -table1 prints Table 1 (execution time of Model Checking vs the
//     proposed single-run interpretation, for 10–18 jobs);
//   - -scale runs the §4 industrial-scale experiment (~12 500 jobs) and
//     reports construction and interpretation time.
//
// Absolute times depend on the host; the reproduced result is the shape:
// Model Checking roughly doubles per added job while the proposed approach
// stays flat, and an industrial-scale configuration simulates in seconds.
//
// The shared resource-limit flags bound the Model Checking runs (they grow
// exponentially with the job count); a column whose exploration exceeds the
// budget is reported as "n/a" instead of hanging the table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"time"

	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1")
		scale     = flag.Bool("scale", false, "run the industrial-scale experiment")
		minJ      = flag.Int("min", 10, "Table 1 minimum job count")
		maxJ      = flag.Int("max", 18, "Table 1 maximum job count")
		maxStates = flag.Int("max-states", 0, "state bound per Model Checking run (0 = default bound)")
	)
	budget := diag.BudgetFlags()
	flag.Parse()
	if !*table1 && !*scale {
		*table1, *scale = true, true
	}
	ctx, stop := diag.SignalContext()
	defer stop()
	b := budget()
	b.MaxStates = *maxStates
	if *table1 {
		if err := runTable1(ctx, *minJ, *maxJ, b); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
	}
	if *scale {
		if err := runScale(ctx, b); err != nil {
			diag.Exit("benchtable", err, nil, "")
		}
	}
}

func runTable1(ctx context.Context, minJ, maxJ int, b nsa.Budget) error {
	fmt.Println("Table 1. Execution times for various number of jobs")
	fmt.Printf("%-28s", "Number of jobs")
	for j := minJ; j <= maxJ; j++ {
		fmt.Printf(" %9d", j)
	}
	fmt.Println()

	mcTimes := make([]time.Duration, 0, maxJ-minJ+1) // -1 marks a budget abort
	simTimes := make([]time.Duration, 0, maxJ-minJ+1)
	for j := minJ; j <= maxJ; j++ {
		sys := gen.Table1Config(j)

		m, err := model.Build(sys)
		if err != nil {
			return err
		}
		start := time.Now()
		okMC, _, err := mc.CheckSchedulabilityContext(ctx, m, b)
		var rerr *nsa.RunError
		aborted := errors.As(err, &rerr)
		if aborted {
			if rerr.Reason == nsa.StopCanceled {
				return err
			}
			mcTimes = append(mcTimes, -1)
		} else if err != nil {
			return err
		} else {
			mcTimes = append(mcTimes, time.Since(start))
		}

		start = time.Now()
		m2, err := model.Build(sys)
		if err != nil {
			return err
		}
		tr, _, err := m2.SimulateContext(ctx, nil, b)
		if err != nil {
			return err
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			return err
		}
		simTimes = append(simTimes, time.Since(start))
		if !aborted && okMC != a.Schedulable {
			return fmt.Errorf("jobs=%d: MC verdict %t != simulation verdict %t", j, okMC, a.Schedulable)
		}
	}
	fmt.Printf("%-28s", "Model Checking (seconds)")
	for _, d := range mcTimes {
		if d < 0 {
			fmt.Printf(" %9s", "n/a")
		} else {
			fmt.Printf(" %9.3f", d.Seconds())
		}
	}
	fmt.Println()
	fmt.Printf("%-28s", "Proposed Approach (seconds)")
	for _, d := range simTimes {
		fmt.Printf(" %9.3f", d.Seconds())
	}
	fmt.Println()
	return nil
}

func runScale(ctx context.Context, b nsa.Budget) error {
	sys := gen.IndustrialConfig()
	fmt.Printf("\nIndustrial-scale experiment (§4): %d jobs, %d tasks, %d partitions, %d cores, L=%d\n",
		sys.JobCount(), sys.TaskCount(), len(sys.Partitions), len(sys.Cores), sys.Hyperperiod())

	start := time.Now()
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	build := time.Since(start)

	start = time.Now()
	tr, res, err := m.SimulateContext(ctx, nil, b)
	if err != nil {
		return err
	}
	interp := time.Since(start)

	a, err := trace.Analyze(sys, tr)
	if err != nil {
		return err
	}
	fmt.Printf("model instance construction: %v\n", build)
	fmt.Printf("model interpretation:        %v (%d actions, %d delays)\n", interp, res.Actions, res.Delays)
	fmt.Printf("schedulability analysis:     %d jobs, schedulable=%t\n", len(a.Jobs), a.Schedulable)
	fmt.Printf("total:                       %v (paper: \"about 11 seconds for a configuration with 12500 jobs\")\n",
		build+interp)
	return nil
}

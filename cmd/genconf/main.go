// Command genconf generates system configurations: the Table 1 family, the
// §4 industrial-scale configuration, or randomized workloads, written as
// XML for the other tools.
//
// Usage:
//
//	genconf -kind table1 -jobs 14 > t14.xml
//	genconf -kind industrial > big.xml
//	genconf -kind random -seed 7 > r7.xml
//	genconf -modules 8 -seed 3 > mm8.xml
//	genconf -kind distributed -seed 11 > d11.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/gen"
)

func main() {
	var (
		kind    = flag.String("kind", "random", "table1 | industrial | random | distributed")
		jobs    = flag.Int("jobs", 10, "job count for -kind table1")
		seed    = flag.Int64("seed", 1, "seed for randomized kinds")
		modules = flag.Int("modules", 0, "generate an N-module system with a cross-module message chain (overrides -kind)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*kind, *jobs, *seed, *modules, *out); err != nil {
		fmt.Fprintln(os.Stderr, "genconf:", err)
		os.Exit(1)
	}
}

func run(kind string, jobs int, seed int64, modules int, out string) error {
	var sys *config.System
	switch {
	case modules > 0:
		sys = gen.MultiModule(modules, seed)
	case kind == "table1":
		sys = gen.Table1Config(jobs)
	case kind == "industrial":
		sys = gen.IndustrialConfig()
	case kind == "random":
		sys = gen.Random(seed, gen.DefaultRandomParams())
	case kind == "distributed":
		sys = gen.RandomDistributed(seed, gen.DefaultRandomParams())
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sys.WriteXML(w)
}

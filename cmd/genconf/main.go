// Command genconf generates system configurations: the Table 1 family, the
// §4 industrial-scale configuration, or randomized workloads, written as
// XML for the other tools.
//
// Usage:
//
//	genconf -kind table1 -jobs 14 > t14.xml
//	genconf -kind industrial > big.xml
//	genconf -kind random -seed 7 > r7.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/gen"
)

func main() {
	var (
		kind = flag.String("kind", "random", "table1 | industrial | random")
		jobs = flag.Int("jobs", 10, "job count for -kind table1")
		seed = flag.Int64("seed", 1, "seed for -kind random")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*kind, *jobs, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "genconf:", err)
		os.Exit(1)
	}
}

func run(kind string, jobs int, seed int64, out string) error {
	var sys *config.System
	switch kind {
	case "table1":
		sys = gen.Table1Config(jobs)
	case "industrial":
		sys = gen.IndustrialConfig()
	case "random":
		sys = gen.Random(seed, gen.DefaultRandomParams())
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sys.WriteXML(w)
}

// Command benchdiff compares two benchtable -json reports and fails on
// performance regressions. It is the CI bench-regression gate: for every
// guarded row (-rows, default the engine steady-state throughput — bare
// and with the flight recorder armed — the §4 industrial-scale
// interpretation, and the compositional half of the 16-module
// compositional-vs-global experiment) the current report must stay
// within -max-regress of
// the baseline's ns/op (default 0.15 = +15%) and must not increase
// allocs/op: exactly for rows whose baseline is zero — the compiled
// runtime's zero-allocation property is a hard invariant, not a soft
// target — and beyond 1% for the rest, absorbing the ±1 process-wide
// malloc-counter jitter single-shot measurements carry.
//
// Non-guarded rows present in both reports are printed for context but
// never fail the run: Table 1's Model Checking columns are exponential and
// noisy, and construction cost is tracked by its own benchmark.
//
// Exit codes: 0 no regression, 1 regression or guarded row missing,
// 2 usage.
//
// Usage:
//
//	benchdiff -baseline BENCH_old.json -current BENCH_new.json
//	          [-max-regress 0.15]
//	          [-rows EngineThroughput,EngineThroughput/flight,IndustrialScale/interpretation,ComposeVsGlobal/compositional]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type benchRow struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  uint64  `json:"allocs_per_op"`
	EventsSec float64 `json:"events_per_sec"`
}

type benchReport struct {
	Date string     `json:"date"`
	Rows []benchRow `json:"rows"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func index(r *benchReport) map[string]benchRow {
	m := make(map[string]benchRow, len(r.Rows))
	for _, row := range r.Rows {
		m[row.Name] = row
	}
	return m
}

func main() {
	var (
		basePath   = flag.String("baseline", "", "baseline benchtable -json report (required)")
		curPath    = flag.String("current", "", "current benchtable -json report (required)")
		maxRegress = flag.Float64("max-regress", 0.15, "allowed ns/op growth on guarded rows (0.15 = +15%)")
		rowsFlag   = flag.String("rows", "EngineThroughput,EngineThroughput/flight,IndustrialScale/interpretation,ComposeVsGlobal/compositional",
			"comma-separated guarded row names")
	)
	flag.Parse()
	if *basePath == "" || *curPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	bi, ci := index(base), index(cur)

	guarded := make(map[string]bool)
	for _, name := range strings.Split(*rowsFlag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			guarded[name] = true
		}
	}

	fmt.Printf("baseline %s (%s)  vs  current %s (%s)\n",
		*basePath, base.Date, *curPath, cur.Date)
	fmt.Printf("%-42s %14s %14s %8s %12s %12s\n",
		"row", "base ns/op", "cur ns/op", "Δ%", "base allocs", "cur allocs")

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL: "+format+"\n", args...)
	}

	// Guarded rows must exist in both reports: a renamed or dropped
	// benchmark silently disarming the gate is itself a regression.
	for name := range guarded {
		if _, ok := bi[name]; !ok {
			fail("guarded row %q missing from baseline %s", name, *basePath)
		}
		if _, ok := ci[name]; !ok {
			fail("guarded row %q missing from current %s", name, *curPath)
		}
	}

	for _, row := range cur.Rows {
		b, ok := bi[row.Name]
		if !ok {
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (row.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		mark := ""
		if guarded[row.Name] {
			mark = " *"
			if b.NsPerOp > 0 && row.NsPerOp > b.NsPerOp*(1+*maxRegress) {
				fail("%s: ns/op %.0f exceeds baseline %.0f by more than %.0f%%",
					row.Name, row.NsPerOp, b.NsPerOp, *maxRegress*100)
			}
			// Zero-baseline rows are exact (the zero-allocation invariant);
			// nonzero ones get 1% slack for malloc-counter sampling jitter.
			if allowed := b.AllocsOp + b.AllocsOp/100; row.AllocsOp > allowed {
				fail("%s: allocs/op grew %d -> %d (allowed at most %d)",
					row.Name, b.AllocsOp, row.AllocsOp, allowed)
			}
		}
		fmt.Printf("%-42s %14.0f %14.0f %+7.1f%% %12d %12d%s\n",
			row.Name, b.NsPerOp, row.NsPerOp, delta, b.AllocsOp, row.AllocsOp, mark)
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regression on guarded rows")
}

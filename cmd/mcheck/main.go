// Command mcheck decides schedulability by exhaustive Model Checking — the
// baseline the paper compares against in Table 1. It explores every run of
// the NSA instance and reports the verdict with exploration statistics, so
// its cost can be compared directly against cmd/simulate on the same
// configuration.
//
// Exit codes follow internal/diag: 0 schedulable, 1 operational error,
// 2 usage, 3 not schedulable, 4 budget exhausted or interrupted (verdict
// partial), 5 model diagnostic, 6 invalid configuration.
//
// Usage:
//
//	mcheck -config system.xml [-max-states N] [-max-steps N] [-timeout D]
//	       [-max-mem-mb N] [-report out.json]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		maxStates  = flag.Int("max-states", 0, "abort after this many states (0 = default bound)")
		report     = flag.String("report", "", "write a JSON error/diagnostic report to this file on failure")
	)
	budget := diag.BudgetFlags()
	logger := obs.LogFlags()
	flag.Parse()
	logger() // install the structured default logger (-log-level, -log-format)
	if *configPath == "" {
		flag.Usage()
		os.Exit(diag.ExitUsage)
	}

	f, err := os.Open(*configPath)
	if err != nil {
		diag.Exit("mcheck", err, nil, *report)
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		diag.Exit("mcheck", err, nil, *report)
	}
	m, err := model.Build(sys)
	if err != nil {
		diag.Exit("mcheck", err, nil, *report)
	}

	ctx, stop := diag.SignalContext()
	defer stop()
	b := budget()
	b.MaxStates = *maxStates

	start := time.Now()
	ok, res, err := mc.CheckSchedulabilityContext(ctx, m, b)
	elapsed := time.Since(start)
	var rerr *nsa.RunError
	if errors.As(err, &rerr) {
		fmt.Printf("explored %d states, %d transitions, %d leaves in %v\n",
			res.States, res.Transitions, res.Leaves, elapsed)
		fmt.Println("exploration stopped by the resource budget; verdict is partial")
		diag.Exit("mcheck", err, m.Net, *report)
	}
	if err != nil {
		diag.Exit("mcheck", err, m.Net, *report)
	}
	fmt.Printf("explored %d states, %d transitions, %d leaves in %v\n",
		res.States, res.Transitions, res.Leaves, elapsed)
	if ok {
		fmt.Println("SCHEDULABLE (no run reaches a deadline failure)")
		return
	}
	fmt.Printf("NOT SCHEDULABLE: %s\n", res.Bad)
	os.Exit(diag.ExitVerdict)
}

// Command mcheck decides schedulability by exhaustive Model Checking — the
// baseline the paper compares against in Table 1. It explores every run of
// the NSA instance and reports the verdict with exploration statistics, so
// its cost can be compared directly against cmd/simulate on the same
// configuration.
//
// Usage:
//
//	mcheck -config system.xml [-max-states N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
)

func main() {
	var (
		configPath = flag.String("config", "", "system configuration XML (required)")
		maxStates  = flag.Int("max-states", 0, "abort after this many states (0 = default bound)")
	)
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath, *maxStates); err != nil {
		fmt.Fprintln(os.Stderr, "mcheck:", err)
		os.Exit(1)
	}
}

func run(path string, maxStates int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		return err
	}
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	start := time.Now()
	ok, res, err := mc.CheckSchedulability(m, maxStates)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("explored %d states, %d transitions, %d leaves in %v\n",
		res.States, res.Transitions, res.Leaves, elapsed)
	if !res.Complete {
		fmt.Println("exploration ABORTED at the state bound; verdict is partial")
	}
	if ok {
		fmt.Println("SCHEDULABLE (no run reaches a deadline failure)")
		return nil
	}
	fmt.Printf("NOT SCHEDULABLE: %s\n", res.Bad)
	os.Exit(3)
	return nil
}

// Command xtasim compiles a model written in the XTA-like automata
// language (see internal/xta) and interprets it, printing the
// synchronization trace — the front end the paper's architecture uses to
// bring user-defined component models into the simulation library.
//
// Usage:
//
//	xtasim -model file.xta -horizon 100 [-trace]
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
	"stopwatchsim/internal/xta"
)

func main() {
	var (
		path    = flag.String("model", "", "XTA model file (required)")
		horizon = flag.Int64("horizon", 1000, "model-time horizon")
		show    = flag.Bool("trace", true, "print the synchronization trace")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*path, *horizon, *show); err != nil {
		fmt.Fprintln(os.Stderr, "xtasim:", err)
		os.Exit(1)
	}
}

func run(path string, horizon int64, show bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := xta.Compile(string(src))
	if err != nil {
		return err
	}
	fmt.Printf("compiled %d automata, %d channels, %d variables, %d clocks\n",
		len(m.Net.Automata), len(m.Net.Chans), len(m.Net.Vars), len(m.Net.Clocks))

	tr, res, err := nsa.Simulate(m.Net, horizon)
	if err != nil {
		return err
	}
	if show {
		for _, ev := range tr.Events {
			switch ev.Kind {
			case nsa.Internal:
				fmt.Printf("%6d  %s (internal)\n", ev.Time, m.Net.Automata[ev.Parts[0].Aut].Name)
			default:
				fmt.Printf("%6d  %s:", ev.Time, m.Net.ChanName(sa.ChanID(ev.Chan)))
				for _, p := range ev.Parts {
					fmt.Printf(" %s", m.Net.Automata[p.Aut].Name)
				}
				fmt.Println()
			}
		}
	}
	fmt.Printf("run: %d actions, %d delays, stopped at t=%d (quiescent=%t)\n",
		res.Actions, res.Delays, res.Time, res.Quiescent)

	// Final variable values, a convenient way to read results off a model.
	fmt.Println("final variables:")
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: horizon})
	if _, err := eng.Run(); err != nil {
		return err
	}
	for i, v := range m.Net.Vars {
		fmt.Printf("  %-24s = %d\n", v.Name, eng.State().Vars[i])
	}
	return nil
}

// Command xtasim compiles a model written in the XTA-like automata
// language (see internal/xta) and interprets it, printing the
// synchronization trace — the front end the paper's architecture uses to
// bring user-defined component models into the simulation library.
//
// Exit codes follow internal/diag: 0 clean run, 1 operational error,
// 2 usage, 4 budget exhausted or interrupted, 5 model diagnostic
// (timelock, livelock, semantics error).
//
// Usage:
//
//	xtasim -model file.xta -horizon 100 [-trace] [-max-steps N]
//	       [-timeout D] [-max-mem-mb N] [-report out.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/sa"
	"stopwatchsim/internal/xta"
)

func main() {
	var (
		path    = flag.String("model", "", "XTA model file (required)")
		horizon = flag.Int64("horizon", 1000, "model-time horizon")
		show    = flag.Bool("trace", true, "print the synchronization trace")
		report  = flag.String("report", "", "write a JSON error/diagnostic report to this file on failure")
	)
	budget := diag.BudgetFlags()
	logger := obs.LogFlags()
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(diag.ExitUsage)
	}
	lg := logger()

	src, err := os.ReadFile(*path)
	if err != nil {
		diag.Exit("xtasim", err, nil, *report)
	}
	m, err := xta.Compile(string(src))
	if err != nil {
		diag.Exit("xtasim", err, nil, *report)
	}
	fmt.Printf("compiled %d automata, %d channels, %d variables, %d clocks\n",
		len(m.Net.Automata), len(m.Net.Chans), len(m.Net.Vars), len(m.Net.Clocks))

	ctx, stop := diag.SignalContext()
	defer stop()
	tr := &nsa.SyncTrace{}
	mainEng := nsa.NewEngine(m.Net, nsa.Options{
		Horizon:   *horizon,
		Listeners: []nsa.Listener{tr},
		Budget:    budget(),
		Logger:    lg, // -log-level debug logs every fired transition
	})
	res, err := mainEng.RunContext(ctx)
	if err != nil {
		diag.Exit("xtasim", err, m.Net, *report)
	}
	if *show {
		for _, ev := range tr.Events {
			switch ev.Kind {
			case nsa.Internal:
				fmt.Printf("%6d  %s (internal)\n", ev.Time, m.Net.Automata[ev.Parts[0].Aut].Name)
			default:
				fmt.Printf("%6d  %s:", ev.Time, m.Net.ChanName(sa.ChanID(ev.Chan)))
				for _, p := range ev.Parts {
					fmt.Printf(" %s", m.Net.Automata[p.Aut].Name)
				}
				fmt.Println()
			}
		}
	}
	fmt.Printf("run: %d actions, %d delays, stopped at t=%d (quiescent=%t)\n",
		res.Actions, res.Delays, res.Time, res.Quiescent)

	// Final variable values, a convenient way to read results off a model.
	fmt.Println("final variables:")
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: *horizon, Budget: budget()})
	if _, err := eng.RunContext(ctx); err != nil {
		diag.Exit("xtasim", err, m.Net, *report)
	}
	for i, v := range m.Net.Vars {
		fmt.Printf("  %-24s = %d\n", v.Name, eng.State().Vars[i])
	}
}

package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
)

// The soak test re-executes its own test binary as the chaos child so the
// mid-run SIGKILL lands on a disposable process: the child runs `chaos
// run -kill-after-points N` and dies mid-campaign, then the parent
// resumes the same store in-process and checks the healed result against
// a fault-free reference.

const (
	childEnv = "CHAOS_SOAK_CHILD"
	argsEnv  = "CHAOS_SOAK_ARGS"
	argsSep  = "\n"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Exit(cmdRun(strings.Split(os.Getenv(argsEnv), argsSep)))
	}
	os.Exit(m.Run())
}

// runChild executes `chaos run args...` in a subprocess and reports how
// it ended.
func runChild(t *testing.T, args ...string) error {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnv+"=1", argsEnv+"="+strings.Join(args, argsSep))
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

// TestSoakKillResumeMatchesCleanRun is the chaos-soak acceptance run: a
// 500-point campaign at 5% fault injection, SIGKILLed mid-run, resumed to
// completion, must agree with a fault-free run on every non-quarantined
// point's verdict.
func TestSoakKillResumeMatchesCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run; skipped with -short")
	}
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	gotPath := filepath.Join(dir, "got.json")
	const points = 500

	// Fault-free reference, in-process.
	if code := cmdRun([]string{
		"-store", filepath.Join(dir, "clean"), "-points", strconv.Itoa(points),
		"-o", refPath, "-log-level", "error",
	}); code != 0 {
		t.Fatalf("reference run exit %d", code)
	}

	// Chaos run in a child process, SIGKILLed once 150 points are in.
	chaosStore := filepath.Join(dir, "chaos")
	err := runChild(t,
		"-store", chaosStore, "-points", strconv.Itoa(points),
		"-rate", "0.05", "-seed", "7", "-kill-after-points", "150",
		"-o", gotPath, "-log-level", "error")
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child was not killed: err=%v", err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child ended %v, want SIGKILL", ee)
	}

	// Resume the torn store in-process, faults still armed (different
	// seed: the fault schedule need not repeat for recovery to hold).
	if code := cmdRun([]string{
		"-store", chaosStore, "-resume", "-rate", "0.05", "-seed", "8",
		"-o", gotPath, "-log-level", "error",
	}); code != 0 {
		t.Fatalf("resume run exit %d", code)
	}

	ref, err := loadReport(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Summary.Points.Total != points || got.Summary.Points.Total != points {
		t.Fatalf("totals: ref=%d got=%d, want %d", ref.Summary.Points.Total, got.Summary.Points.Total, points)
	}
	if ref.Summary.Points.Failed != 0 {
		t.Fatalf("reference run quarantined %d points", ref.Summary.Points.Failed)
	}
	quarantined, mismatches := comparePoints(ref, got)
	for _, m := range mismatches {
		t.Error(m)
	}
	for _, q := range quarantined {
		t.Log(q)
	}
	t.Logf("chaos run: %d/%d points quarantined, %d faults injected, resilience %+v",
		len(quarantined), points, got.Summary.Points.Failed, got.Resilience)
	if !got.Resumed {
		t.Error("got report does not mark the resumed run")
	}
}

// TestZeroRateRunIsExactNoop: with the injector armed at rate 0 it must
// change nothing — two independent fault-free runs of the same spec
// produce byte-identical summary documents and inject zero faults.
func TestZeroRateRunIsExactNoop(t *testing.T) {
	dir := t.TempDir()
	var reps [2]*report
	for i := range reps {
		out := filepath.Join(dir, "run"+strconv.Itoa(i)+".json")
		if code := cmdRun([]string{
			"-store", filepath.Join(dir, "store"+strconv.Itoa(i)),
			"-points", "60", "-rate", "0", "-o", out, "-log-level", "error",
		}); code != 0 {
			t.Fatalf("run %d exit %d", i, code)
		}
		rep, err := loadReport(out)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	a, _ := json.Marshal(reps[0].Summary)
	b, _ := json.Marshal(reps[1].Summary)
	if string(a) != string(b) {
		t.Errorf("summaries differ:\n%s\n%s", a, b)
	}
	for i, rep := range reps {
		if rep.Summary.Points.Failed != 0 {
			t.Errorf("run %d quarantined %d points, want 0", i, rep.Summary.Points.Failed)
		}
		for site, st := range rep.Faults {
			if st.Injected != 0 {
				t.Errorf("run %d: site %s injected %d faults at rate 0", i, site, st.Injected)
			}
		}
	}
}

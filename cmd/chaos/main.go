// Command chaos is the fault-injection soak harness: it runs a real
// design-space campaign against the crash-safe store with the
// deterministic fault injector armed, optionally SIGKILLs itself mid-run,
// and writes a machine-readable report of every point's verdict plus the
// resilience counters. A second invocation compares two reports, proving
// the self-healing contract: under any injected fault mix, every point
// that is not quarantined must carry exactly the verdict a fault-free run
// computes.
//
// Subcommands:
//
//	chaos run     -store DIR [-points N] [-rate F | -faults PLAN] [-seed N]
//	              [-workers N] [-kill-after-points N] [-resume] [-o report.json]
//	chaos compare -ref clean.json -got chaos.json [-exact] [-require-clean]
//
// run starts (or, with -resume, resumes) the built-in N-point breakdown
// sweep. -rate arms the canonical randomized chaos plan at that rate;
// -faults arms an explicit rule list (see internal/fault.ParsePlan); rate
// 0 with no plan runs fault-free — the reference run. -kill-after-points
// hard-kills the process (SIGKILL, no cleanup) once that many points are
// checkpointed, simulating a crash for the resume path to absorb.
//
// compare checks the got report against the fault-free reference: every
// non-quarantined point must match the reference verdict exactly.
// -require-clean additionally fails if anything was quarantined (the 0%%
// injection soak must be spotless); -exact demands byte-identical summary
// documents (used to verify that an armed-but-empty injector is a no-op).
//
// Exit codes follow internal/diag: 0 success/match, 1 mismatch or
// operational error, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"syscall"
	"time"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(diag.ExitUsage)
	}
	var code int
	switch os.Args[1] {
	case "run":
		code = cmdRun(os.Args[2:])
	case "compare":
		code = cmdCompare(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown subcommand %q\n", os.Args[1])
		usage()
		code = diag.ExitUsage
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  chaos run     -store DIR [-points N] [-rate F | -faults PLAN] [-seed N]
                [-workers N] [-kill-after-points N] [-resume] [-o report.json]
  chaos compare -ref clean.json -got chaos.json [-exact] [-require-clean]
`)
}

// soakSpec is the built-in campaign: an n-point breakdown sweep of one
// task's WCET scale. Every point is an independent, deterministic oracle
// run, so the sweep exercises the full store/pool/campaign stack while
// its expected verdicts stay trivially checkable (schedulable iff
// wcet_pct truncates within the deadline).
func soakSpec(points int) *campaign.Spec {
	return &campaign.Spec{
		Name:     "chaos-soak",
		Strategy: campaign.StrategyGrid,
		Base: &config.System{
			Name:      "soak",
			CoreTypes: []string{"cpu"},
			Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
			Partitions: []config.Partition{{
				Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "T", Priority: 1, WCET: []int64{10}, Period: 40, Deadline: 40},
				},
				Windows: []config.Window{{Start: 0, End: 40}},
			}},
		},
		Axes: []campaign.Axis{{
			Param: campaign.ParamWCETPct,
			Min:   100, Max: float64(100 + points - 1), Step: 1,
		}},
		Parallel:       8,
		MaxPoints:      points,
		RetryBackoffMS: 5, // keep soak retries brisk; correctness is timing-independent
	}
}

// pointVerdict is one point's outcome in the report, keyed by Point.Key().
// Trace and Postmortem carry the point's traceparent and flight-recorder
// dump key, so a compare mismatch names the evidence to pull.
type pointVerdict struct {
	Schedulable bool   `json:"schedulable"`
	Failed      bool   `json:"failed"`
	Source      string `json:"source"`
	Trace       string `json:"trace,omitempty"`
	Postmortem  string `json:"postmortem,omitempty"`
}

// report is the soak run's machine-readable result document.
type report struct {
	Rate       float64                        `json:"rate"`
	Seed       int64                          `json:"seed"`
	Resumed    bool                           `json:"resumed"`
	Summary    *campaign.Summary              `json:"summary"`
	Points     map[string]pointVerdict        `json:"points"`
	Resilience obs.ResilienceCounters         `json:"resilience"`
	Faults     map[fault.Site]fault.SiteStats `json:"faults,omitempty"`
}

func fail(err error) int {
	rep := diag.FromError("chaos", err, nil)
	fmt.Fprintln(os.Stderr, "chaos:", rep.Message)
	return rep.ExitCode
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("chaos run", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	points := fs.Int("points", 500, "grid points in the built-in sweep")
	rate := fs.Float64("rate", 0, "randomized chaos plan rate (0 disables)")
	faults := fs.String("faults", "", "explicit fault plan (overrides -rate; see internal/fault)")
	seed := fs.Int64("seed", 1, "fault injection RNG seed")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent analysis runs")
	killAfter := fs.Int("kill-after-points", 0, "SIGKILL this process once N points are checkpointed (0 disables)")
	resume := fs.Bool("resume", false, "resume the interrupted campaign instead of starting one")
	out := fs.String("o", "", "report output file (default stdout)")
	stuckAfter := fs.Duration("stuck-after", 0, "watchdog deadline for wedged runs (0 disables)")
	logger := obs.LogFlagsFor(fs)
	fs.Parse(args)
	lg := logger()
	if *storeDir == "" || *points < 1 {
		fs.Usage()
		return diag.ExitUsage
	}

	plan := fault.ChaosPlan(*seed, *rate)
	if *faults != "" {
		var err error
		plan, err = fault.ParsePlan(*faults, *seed)
		if err != nil {
			return fail(err)
		}
	}
	inj := fault.New(plan)

	st, err := store.Open(*storeDir, store.Options{
		PinnedKinds: []string{campaign.StoreKind()},
		Faults:      inj,
	})
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	// Tracing and flight recording are always on in the soak harness: a
	// mismatch or quarantine is exactly the moment the trace and the
	// postmortem dump are wanted.
	pool := jobs.New(jobs.Options{
		Workers:     *workers,
		Tool:        "chaos",
		Logger:      lg,
		Store:       st,
		Faults:      inj,
		StuckAfter:  *stuckAfter,
		Tracer:      obs.NewTracer(obs.DefaultTraceSpans, nil),
		FlightDepth: obs.DefaultFlightDepth,
	})
	defer pool.Close()
	eng := campaign.NewEngine(pool, st, lg)

	var id string
	if *resume {
		ids := eng.ResumeAll()
		if len(ids) != 1 {
			return fail(fmt.Errorf("resume found %d interrupted campaigns, want exactly 1", len(ids)))
		}
		id = ids[0]
	} else {
		started, err := eng.Start(soakSpec(*points))
		if err != nil {
			return fail(err)
		}
		id = started.ID
	}

	if *killAfter > 0 {
		go func(n int) {
			for {
				if cs, ok := eng.Get(id); ok && len(cs.Points) >= n {
					// A real crash, not a drain: no checkpoint flush, no
					// store close, no deferred anything.
					syscall.Kill(os.Getpid(), syscall.SIGKILL)
				}
				time.Sleep(time.Millisecond)
			}
		}(*killAfter)
	}

	ctx, stop := diag.SignalContext()
	defer stop()
	final, err := eng.Wait(ctx, id)
	if err != nil {
		return fail(err)
	}
	if final.Status != campaign.StatusDone {
		return fail(fmt.Errorf("campaign %s finished %s: %s", id[:12], final.Status, final.Error))
	}

	rep := &report{
		Rate:       *rate,
		Seed:       *seed,
		Resumed:    *resume,
		Summary:    final.Summarize(),
		Points:     make(map[string]pointVerdict, len(final.Points)),
		Resilience: pool.Resilience().Snapshot(),
		Faults:     inj.Stats(),
	}
	for _, p := range final.Points {
		rep.Points[p.Point.Key()] = pointVerdict{
			Schedulable: p.Schedulable,
			Failed:      p.Source == campaign.SourceFailed,
			Source:      p.Source,
			Trace:       p.Trace,
			Postmortem:  p.Postmortem,
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "chaos: campaign %s done — %d points, %d quarantined, %d injected faults\n",
		id[:12], rep.Summary.Points.Total, rep.Summary.Points.Failed, inj.TotalInjected())
	return diag.ExitOK
}

func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &rep, nil
}

// evidence names the observability artifacts a suspect point left
// behind: the trace (follow it at /v1/traces/{id}) and the
// flight-recorder postmortem dump key in the artifact store.
func evidence(v pointVerdict) string {
	s := ""
	if v.Trace != "" {
		s += " trace=" + v.Trace
	}
	if v.Postmortem != "" {
		s += " postmortem=" + v.Postmortem
	}
	return s
}

// comparePoints checks got against the fault-free reference ref: every
// point present in both and not quarantined in got must carry the
// reference verdict. It returns the quarantined (skipped) points'
// descriptions — each with its trace and dump key — and the list of
// mismatch descriptions.
func comparePoints(ref, got *report) (quarantined, mismatches []string) {
	for key, rv := range ref.Points {
		if rv.Failed {
			mismatches = append(mismatches, fmt.Sprintf("reference point %s is itself failed — reference run was not clean%s", key, evidence(rv)))
			continue
		}
		gv, ok := got.Points[key]
		switch {
		case !ok:
			mismatches = append(mismatches, fmt.Sprintf("point %s missing from chaos run", key))
		case gv.Failed:
			quarantined = append(quarantined, fmt.Sprintf("point %s quarantined%s", key, evidence(gv)))
		case gv.Schedulable != rv.Schedulable:
			mismatches = append(mismatches, fmt.Sprintf("point %s: chaos verdict schedulable=%v, reference %v%s",
				key, gv.Schedulable, rv.Schedulable, evidence(gv)))
		}
	}
	for key := range got.Points {
		if _, ok := ref.Points[key]; !ok {
			mismatches = append(mismatches, fmt.Sprintf("point %s present only in chaos run", key))
		}
	}
	return quarantined, mismatches
}

func cmdCompare(args []string) int {
	fs := flag.NewFlagSet("chaos compare", flag.ExitOnError)
	refPath := fs.String("ref", "", "fault-free reference report (required)")
	gotPath := fs.String("got", "", "chaos run report (required)")
	exact := fs.Bool("exact", false, "require byte-identical summary documents")
	requireClean := fs.Bool("require-clean", false, "fail if any point was quarantined")
	fs.Parse(args)
	if *refPath == "" || *gotPath == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	ref, err := loadReport(*refPath)
	if err != nil {
		return fail(err)
	}
	got, err := loadReport(*gotPath)
	if err != nil {
		return fail(err)
	}

	if *exact {
		rb, _ := json.Marshal(ref.Summary)
		gb, _ := json.Marshal(got.Summary)
		if string(rb) != string(gb) {
			fmt.Fprintf(os.Stderr, "chaos: summaries differ\n  ref: %s\n  got: %s\n", rb, gb)
			return diag.ExitError
		}
	}
	quarantined, mismatches := comparePoints(ref, got)
	for _, m := range mismatches {
		fmt.Fprintln(os.Stderr, "chaos: MISMATCH:", m)
	}
	for _, q := range quarantined {
		fmt.Fprintln(os.Stderr, "chaos: QUARANTINED:", q)
	}
	if len(mismatches) > 0 {
		return diag.ExitError
	}
	if *requireClean && len(quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d points quarantined but -require-clean is set\n", len(quarantined))
		return diag.ExitError
	}
	fmt.Fprintf(os.Stderr, "chaos: %d points match (%d quarantined, skipped)\n",
		len(ref.Points)-len(quarantined), len(quarantined))
	return diag.ExitOK
}

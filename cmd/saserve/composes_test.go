package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
	"stopwatchsim/internal/synth"
)

// postCompose submits a JSON configuration to /v1/compose.
func postCompose(t *testing.T, ts *httptest.Server, body, query string) (int, compose.Result) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/compose"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var res compose.Result
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode, res
}

func multiModuleJSON(t *testing.T, modules int, seed int64) string {
	t.Helper()
	var buf bytes.Buffer
	if err := gen.MultiModule(modules, seed).WriteJSONConfig(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestComposeEndpoint(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 2})

	code, res := postCompose(t, ts, multiModuleJSON(t, 4, 1), "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !res.Compositional || res.Verdict != jobs.VerdictSchedulable {
		t.Fatalf("result = %+v, want compositional schedulable", res)
	}
	if len(res.Modules) != 4 || len(res.Contracts) != 3 {
		t.Fatalf("modules = %d contracts = %d, want 4/3", len(res.Modules), len(res.Contracts))
	}
	for _, c := range res.Contracts {
		if !c.Refined {
			t.Errorf("contract %s not refined", c.Name)
		}
	}

	// A single-module XML submission falls back to the global product but
	// still answers with a verdict.
	resp, err := http.Post(ts.URL+"/v1/compose", "application/xml", strings.NewReader(quickstartXML))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("XML submission status = %d: %s", resp.StatusCode, raw)
	}
	var fb compose.Result
	if err := json.Unmarshal(raw, &fb); err != nil {
		t.Fatal(err)
	}
	if fb.Compositional || fb.Fallback == "" || fb.Verdict != jobs.VerdictSchedulable {
		t.Fatalf("single-module result = %+v, want flagged fallback with a verdict", fb)
	}

	// Bad submissions are rejected, not analyzed.
	if code, _ := postCompose(t, ts, "{not json", ""); code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage submission status = %d, want 422", code)
	}
	resp, err = http.Post(ts.URL+"/v1/compose", "application/x-xta", strings.NewReader(counterXTA))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("XTA submission status = %d, want 415", resp.StatusCode)
	}

	// No store behind this server: status lookups answer 404.
	if code, _ := postCompose(t, ts, multiModuleJSON(t, 4, 1), "?status=true"); code != http.StatusNotFound {
		t.Fatalf("status lookup without a store = %d, want 404", code)
	}

	// The analyzer counters surface on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"saserve_compose_runs_total 2",
		"saserve_compose_compositional_total 1",
		"saserve_compose_fallbacks_total 1",
		"saserve_compose_modules_analyzed_total 4",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestComposeEndpointIncremental drives the store-backed path over HTTP:
// a re-submitted system is served from per-module documents, and
// ?status=true answers without computing.
func TestComposeEndpointIncremental(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{PinnedKinds: []string{compose.StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.New(jobs.Options{Workers: 2, Tool: "saserve", Store: st})
	ts := httptest.NewServer(newMux(pool, campaign.NewEngine(pool, st, nil), synth.NewEngine(pool, st, nil), compose.New(pool, st, nil), false))
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
		st.Close()
	})

	body := multiModuleJSON(t, 3, 9)
	code, first := postCompose(t, ts, body, "")
	if code != http.StatusOK || first.ModulesAnalyzed != 3 {
		t.Fatalf("first run: status %d analyzed %d, want 200/3", code, first.ModulesAnalyzed)
	}
	code, again := postCompose(t, ts, body, "")
	if code != http.StatusOK || again.ModulesCached != 3 || again.ModulesAnalyzed != 0 {
		t.Fatalf("second run: status %d analyzed %d cached %d, want 200/0/3", code, again.ModulesAnalyzed, again.ModulesCached)
	}
	code, status := postCompose(t, ts, body, "?status=true")
	if code != http.StatusOK || status.Fingerprint != first.Fingerprint {
		t.Fatalf("status lookup: %d %q, want 200 and fingerprint %q", code, status.Fingerprint, first.Fingerprint)
	}
}

package main

import (
	"io"
	"net/http"

	"stopwatchsim/internal/campaign"
)

// campaignDoc is the list/status wire form: the campaign state with the
// point list elided from listings (it can be large) but kept in the
// per-campaign view.
type campaignDoc struct {
	campaign.State
	PointsDone int `json:"points_done"`
}

func toCampaignDoc(st campaign.State, withPoints bool) campaignDoc {
	d := campaignDoc{State: st, PointsDone: len(st.Points)}
	if !withPoints {
		d.Points = nil
	}
	return d
}

// campaignStart parses a campaign spec (application/json) and starts it.
// Campaigns are content-addressed: re-posting the same spec returns the
// existing (possibly completed) campaign instead of launching a duplicate.
// ?wait=true blocks until the campaign reaches a terminal state.
func (s *server) campaignStart(w http.ResponseWriter, r *http.Request) {
	spec, err := campaign.ParseSpec(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	st, err := s.camps.Start(spec)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		final, err := s.camps.Wait(r.Context(), st.ID)
		if err != nil {
			httpError(w, http.StatusGatewayTimeout, "waiting for %s: %v", st.ID, err)
			return
		}
		writeJSON(w, http.StatusOK, toCampaignDoc(final, true))
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+st.ID)
	code := http.StatusAccepted
	if st.Status != campaign.StatusRunning {
		code = http.StatusOK // content-addressed replay of a finished campaign
	}
	writeJSON(w, code, toCampaignDoc(st, false))
}

func (s *server) campaignList(w http.ResponseWriter, r *http.Request) {
	all := s.camps.List()
	docs := make([]campaignDoc, len(all))
	for i, st := range all {
		docs[i] = toCampaignDoc(st, false)
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *server) campaignStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.camps.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, toCampaignDoc(st, true))
}

func (s *server) campaignCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.camps.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	if !s.camps.Cancel(id) {
		httpError(w, http.StatusConflict, "campaign %s already %s", id, st.Status)
		return
	}
	st, _ = s.camps.Get(id)
	writeJSON(w, http.StatusOK, toCampaignDoc(st, false))
}

// campaignResult serves the export summary: point accounting, critical
// point or frontier table, convergence counters. Available at any time —
// a running campaign reports its progress so far.
func (s *server) campaignResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.camps.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st.Summarize())
}

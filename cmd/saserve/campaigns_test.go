package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
	"stopwatchsim/internal/synth"
)

// newStoreServer builds a server over a persistent store, returning the
// pieces so tests can simulate restarts.
func newStoreServer(t *testing.T, dir string) (*httptest.Server, *jobs.Pool, *campaign.Engine, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{PinnedKinds: []string{campaign.StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.New(jobs.Options{Workers: 2, Tool: "saserve", Store: st})
	eng := campaign.NewEngine(pool, st, nil)
	eng.ResumeAll()
	ts := httptest.NewServer(newMux(pool, eng, synth.NewEngine(pool, nil, nil), compose.New(pool, nil, nil), false))
	return ts, pool, eng, st
}

func campaignSpecJSON(t *testing.T) []byte {
	t.Helper()
	sys, err := config.ReadXML(strings.NewReader(quickstartXML))
	if err != nil {
		t.Fatal(err)
	}
	spec := &campaign.Spec{
		Name:     "http-grid",
		Strategy: campaign.StrategyGrid,
		Base:     sys,
		Axes: []campaign.Axis{
			{Param: campaign.ParamWCETPct, Min: 100, Max: 200, Step: 50},
		},
		Parallel: 2,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestCampaignEndpoints(t *testing.T) {
	ts, pool, _, st := newStoreServer(t, t.TempDir())
	defer func() { ts.Close(); pool.Close(); st.Close() }()

	// Malformed specs are rejected with a diagnosis.
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"name":"x","strategy":"anneal"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec: status %d", resp.StatusCode)
	}

	// Start and wait.
	raw := campaignSpecJSON(t)
	resp, err = http.Post(ts.URL+"/v1/campaigns?wait=true", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var doc campaignDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || doc.Status != campaign.StatusDone {
		t.Fatalf("wait=true: status %d, campaign %s", resp.StatusCode, doc.Status)
	}
	if doc.PointsDone != 3 || len(doc.Points) != 3 {
		t.Fatalf("points_done = %d, points = %d, want 3", doc.PointsDone, len(doc.Points))
	}

	// List elides the point bodies but keeps the count.
	resp, err = http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []campaignDoc
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != doc.ID || list[0].PointsDone != 3 || len(list[0].Points) != 0 {
		t.Fatalf("list = %+v", list)
	}

	// Status view includes the points.
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	var one campaignDoc
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if one.Status != campaign.StatusDone || len(one.Points) != 3 {
		t.Fatalf("status view = %+v", one)
	}

	// Result summary carries the pinned schema version and point counts.
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + doc.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var sum campaign.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sum.SchemaVersion != "campaign/summary/v1" || sum.Points.Total != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	// Quickstart's WCET headroom is 166%: 100 and 150 are schedulable,
	// 200 is not.
	if sum.Points.Schedulable != 2 || sum.Points.Unschedulable != 1 {
		t.Fatalf("verdict counts = %+v", sum.Points)
	}

	// Re-posting the same spec replays the finished campaign (200, not 202).
	resp, err = http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status = %d, want 200", resp.StatusCode)
	}

	// Canceling a finished campaign conflicts; unknown IDs 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+doc.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done: status %d, want 409", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d, want 404", resp.StatusCode)
	}

	// Metrics expose the campaign and store families.
	body := getText(t, ts, "/metrics", http.StatusOK)
	for _, want := range []string{
		"saserve_campaign_started_total 1",
		"saserve_campaign_done_total 1",
		"saserve_store_puts_total",
		"saserve_store_objects",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRestartServesFromDisk is the service-level persistence contract: a
// restarted server (fresh pool and memory cache, same store directory)
// answers a previously computed configuration from the disk tier, and its
// interrupted campaigns resume to completion.
func TestRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	ts1, pool1, _, st1 := newStoreServer(t, dir)
	code, first := postConfig(t, ts1, quickstartXML, "application/xml", "?wait=true")
	if code != http.StatusOK || first.CacheHit {
		t.Fatalf("first run: %d %+v", code, first)
	}
	raw := campaignSpecJSON(t)
	resp, err := http.Post(ts1.URL+"/v1/campaigns?wait=true", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var camp campaignDoc
	json.NewDecoder(resp.Body).Decode(&camp)
	resp.Body.Close()
	if camp.Status != campaign.StatusDone {
		t.Fatalf("campaign %s", camp.Status)
	}
	ts1.Close()
	pool1.Close()
	st1.Close()

	// "Restart": everything rebuilt over the same directory.
	ts2, pool2, _, st2 := newStoreServer(t, dir)
	defer func() { ts2.Close(); pool2.Close(); st2.Close() }()

	code, again := postConfig(t, ts2, quickstartXML, "application/xml", "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("resubmit: %d", code)
	}
	if !again.CacheHit || !again.DiskHit {
		t.Fatalf("resubmit not served from disk: %+v", again)
	}
	if again.Verdict != first.Verdict || again.System != "quickstart" ||
		again.JobsTotal != first.JobsTotal {
		t.Fatalf("disk-served doc diverges: %+v vs %+v", again, first)
	}

	// Traces are not persisted; the API says so rather than 500ing.
	resp, err = http.Get(ts2.URL + "/v1/jobs/" + again.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("trace of disk-served job: status %d, want 410", resp.StatusCode)
	}

	// The finished campaign is queryable after restart without re-running.
	resp, err = http.Get(ts2.URL + "/v1/campaigns/" + camp.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var sum campaign.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sum.Status != campaign.StatusDone || sum.Points.Total != 3 {
		t.Fatalf("restarted campaign result: %d %+v", resp.StatusCode, sum)
	}
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/synth"
)

const quickstartXML = `
<system name="quickstart">
  <coreType name="cpu"/>
  <module id="1">
    <core name="c1" type="cpu"/>
  </module>
  <partition name="P1" core="c1" policy="FPPS">
    <task name="control" priority="2" period="10" deadline="10" wcet="2"/>
    <task name="logging" priority="1" period="20" deadline="20" wcet="9"/>
    <window start="0" end="20"/>
  </partition>
</system>
`

const quickstartJSON = `{
  "Name": "quickstart",
  "CoreTypes": ["cpu"],
  "Cores": [{"Name": "c1", "Type": 0, "Module": 1}],
  "Partitions": [{
    "Name": "P1", "Core": 0, "Policy": "FPPS", "Quantum": 0,
    "Tasks": [
      {"Name": "control", "Priority": 2, "WCET": [2], "Period": 10, "Deadline": 10},
      {"Name": "logging", "Priority": 1, "WCET": [9], "Period": 20, "Deadline": 20}
    ],
    "Windows": [{"Start": 0, "End": 20}]
  }],
  "Messages": null,
  "Net": null
}`

const counterXTA = `
const int PERIOD = 3;
int count = 0;
chan tick;

process Emitter() {
    clock t;
    state W { t <= PERIOD };
    init W;
    trans W -> W { guard t == PERIOD; sync tick!; assign t := 0; };
}

process Counter() {
    state C;
    init C;
    trans C -> C { sync tick?; assign count := count + 1; };
}

system Emitter(), Counter();
`

func newTestServer(t *testing.T, opts jobs.Options) *httptest.Server {
	t.Helper()
	if opts.Tool == "" {
		opts.Tool = "saserve"
	}
	pool := jobs.New(opts)
	ts := httptest.NewServer(newMux(pool, campaign.NewEngine(pool, nil, nil), synth.NewEngine(pool, nil, nil), compose.New(pool, nil, nil), false))
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})
	return ts
}

func postConfig(t *testing.T, ts *httptest.Server, body, contentType, query string) (int, jobDoc) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc jobDoc
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return resp.StatusCode, doc
}

func TestSubmitWaitAndCacheHit(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 2})

	code, doc := postConfig(t, ts, quickstartXML, "application/xml", "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("status = %d, doc = %+v", code, doc)
	}
	if doc.Status != "done" || doc.Verdict != "schedulable" {
		t.Fatalf("doc = %+v, want done/schedulable", doc)
	}
	if doc.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	if doc.System != "quickstart" || doc.JobsTotal != 3 || doc.JobsLate != 0 {
		t.Fatalf("analysis summary wrong: %+v", doc)
	}
	if doc.Fingerprint == "" {
		t.Fatal("no fingerprint")
	}

	// Identical resubmission: cached verdict, no re-run.
	code, again := postConfig(t, ts, quickstartXML, "application/xml", "?wait=true")
	if code != http.StatusOK || !again.CacheHit {
		t.Fatalf("resubmission not cached: %d %+v", code, again)
	}
	if again.Fingerprint != doc.Fingerprint || again.Verdict != "schedulable" {
		t.Fatalf("cached doc diverges: %+v vs %+v", again, doc)
	}

	// The JSON form of the same configuration is the same content.
	code, jd := postConfig(t, ts, quickstartJSON, "application/json", "?wait=true")
	if code != http.StatusOK {
		t.Fatalf("JSON submit: %d %+v", code, jd)
	}
	if jd.Fingerprint != doc.Fingerprint || !jd.CacheHit {
		t.Fatalf("JSON submission did not hit the XML run's cache entry: %+v", jd)
	}

	// Metrics reflect two hits and one miss.
	body := getText(t, ts, "/metrics", http.StatusOK)
	for _, want := range []string{
		"saserve_cache_hits_total 2",
		"saserve_cache_misses_total 1",
		"saserve_jobs_done_total 3",
		"saserve_jobs_failed_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestAsyncSubmitPollTraceGantt(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})
	code, doc := postConfig(t, ts, quickstartXML, "application/xml", "")
	if code != http.StatusAccepted {
		t.Fatalf("status = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur jobDoc
		getJSON(t, ts, "/v1/jobs/"+doc.ID, http.StatusOK, &cur)
		if cur.Status == "done" {
			break
		}
		if cur.Status == "failed" || cur.Status == "canceled" {
			t.Fatalf("job ended %s: %+v", cur.Status, cur)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var rep struct {
		System      string `json:"system"`
		Schedulable bool   `json:"schedulable"`
		Events      []any  `json:"events"`
	}
	getJSON(t, ts, "/v1/jobs/"+doc.ID+"/trace", http.StatusOK, &rep)
	if rep.System != "quickstart" || !rep.Schedulable || len(rep.Events) == 0 {
		t.Fatalf("trace report = %+v", rep)
	}

	csv := getText(t, ts, "/v1/jobs/"+doc.ID+"/trace?format=csv", http.StatusOK)
	if !strings.HasPrefix(csv, "time,event,partition,task,job") {
		t.Fatalf("csv header missing:\n%s", csv)
	}
	text := getText(t, ts, "/v1/jobs/"+doc.ID+"/trace?format=text", http.StatusOK)
	if !strings.Contains(text, "P1.control") {
		t.Fatalf("text trace missing task:\n%s", text)
	}
	gantt := getText(t, ts, "/v1/jobs/"+doc.ID+"/gantt", http.StatusOK)
	if !strings.Contains(gantt, "A=P1.control") {
		t.Fatalf("gantt legend missing:\n%s", gantt)
	}

	// Unknown and invalid requests.
	getText(t, ts, "/v1/jobs/j999999", http.StatusNotFound)
	getText(t, ts, "/v1/jobs/"+doc.ID+"/trace?format=yaml", http.StatusBadRequest)
	getText(t, ts, "/v1/jobs/"+doc.ID+"/gantt?scale=0", http.StatusBadRequest)
}

func TestSubmitXTA(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})
	code, doc := postConfig(t, ts, counterXTA, "application/x-xta", "?wait=true&horizon=9")
	if code != http.StatusOK || doc.Verdict != "completed" {
		t.Fatalf("XTA run: %d %+v", code, doc)
	}
	text := getText(t, ts, "/v1/jobs/"+doc.ID+"/trace?format=text", http.StatusOK)
	if !strings.Contains(text, "tick") {
		t.Fatalf("sync trace missing channel:\n%s", text)
	}
	// No Gantt for raw NSA runs.
	getText(t, ts, "/v1/jobs/"+doc.ID+"/gantt", http.StatusConflict)
}

func TestSubmitRejectsBadInput(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})
	if code, _ := postConfig(t, ts, "<system", "application/xml", ""); code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed XML accepted: %d", code)
	}
	if code, _ := postConfig(t, ts, `{"Name":"x"}`, "application/json", ""); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid JSON config accepted: %d", code)
	}
	if code, _ := postConfig(t, ts, quickstartXML, "application/xml", "?max-steps=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad budget accepted: %d", code)
	}
	if code, _ := postConfig(t, ts, counterXTA, "application/x-xta", "?horizon=-1"); code != http.StatusBadRequest {
		t.Fatalf("bad horizon accepted: %d", code)
	}
}

func TestSubmitBudgetExhaustion(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})
	code, doc := postConfig(t, ts, quickstartXML, "application/xml", "?wait=true&max-steps=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if doc.Status != "failed" || doc.Report == nil || doc.Report.Kind != "budget-exhausted" {
		t.Fatalf("doc = %+v, want failed with budget report", doc)
	}
}

func TestCancelEndpoint(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 4})
	// A long horizon keeps the XTA run busy; queue a second job behind it.
	code, running := postConfig(t, ts, counterXTA, "application/x-xta", "?horizon=100000000")
	if code != http.StatusAccepted {
		t.Fatalf("status = %d", code)
	}
	code, queued := postConfig(t, ts, quickstartXML, "application/xml", "")
	if code != http.StatusAccepted {
		t.Fatalf("status = %d", code)
	}
	del := func(id string) (int, jobDoc) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc jobDoc
		json.NewDecoder(resp.Body).Decode(&doc)
		return resp.StatusCode, doc
	}
	if code, doc := del(queued.ID); code != http.StatusOK || doc.Status != "canceled" {
		t.Fatalf("cancel queued: %d %+v", code, doc)
	}
	if code, _ := del(running.ID); code != http.StatusOK {
		t.Fatalf("cancel running: %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur jobDoc
		getJSON(t, ts, "/v1/jobs/"+running.ID, http.StatusOK, &cur)
		if cur.Status == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job not canceled: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := del("j999999"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: %d", code)
	}
}

func TestQueueBackpressure429(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 1})
	// Fill: one running (long horizon), one queued.
	if code, _ := postConfig(t, ts, counterXTA, "application/x-xta", "?horizon=100000000"); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	waitForRunning(t, ts)
	if code, _ := postConfig(t, ts, quickstartXML, "application/xml", ""); code != http.StatusAccepted {
		t.Fatal("second submit rejected")
	}
	code, _ := postConfig(t, ts, counterXTA, "application/x-xta", "?horizon=99999999")
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", code)
	}
}

func TestListAndHealth(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})
	postConfig(t, ts, quickstartXML, "application/xml", "?wait=true")
	var docs []jobDoc
	getJSON(t, ts, "/v1/jobs", http.StatusOK, &docs)
	if len(docs) != 1 || docs[0].Status != "done" {
		t.Fatalf("list = %+v", docs)
	}
	var h map[string]string
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h["status"] != "ok" {
		t.Fatalf("health = %v", h)
	}
}

// waitForRunning polls /metrics until a job is running.
func waitForRunning(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(getText(t, ts, "/metrics", http.StatusOK), "saserve_jobs_running 1") {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no job started running")
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantCode int, v any) {
	t.Helper()
	raw := getText(t, ts, path, wantCode)
	if err := json.Unmarshal([]byte(raw), v); err != nil {
		t.Fatalf("decoding %s: %v\n%s", path, err, raw)
	}
}

func getText(t *testing.T, ts *httptest.Server, path string, wantCode int) string {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d\n%s", path, resp.StatusCode, wantCode, body)
	}
	return string(body)
}

// TestJobReportEndpoint checks GET /v1/jobs/{id}/report returns a
// well-formed RunReport: named phases, consistent engine counters.
func TestJobReportEndpoint(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})

	code, doc := postConfig(t, ts, quickstartXML, "application/xml", "?wait=true")
	if code != http.StatusOK || doc.Status != "done" {
		t.Fatalf("submit: %d %+v", code, doc)
	}
	var run obs.RunReport
	getJSON(t, ts, "/v1/jobs/"+doc.ID+"/report", http.StatusOK, &run)
	if run.Tool == "" {
		t.Error("report missing tool name")
	}
	if len(run.Phases) == 0 {
		t.Fatal("report has no phase spans")
	}
	names := make(map[string]bool)
	for _, ph := range run.Phases {
		names[ph.Name] = true
		if ph.DurNS < 0 {
			t.Errorf("phase %s has negative duration", ph.Name)
		}
	}
	for _, want := range []string{obs.PhaseBuild, obs.PhaseInterpret, obs.PhaseCheck} {
		if !names[want] {
			t.Errorf("report missing phase %q (got %v)", want, names)
		}
	}
	c := run.Counters
	if c.Steps == 0 {
		t.Fatal("report counters all zero")
	}
	if c.Steps != c.Actions+c.Delays {
		t.Errorf("Steps %d != Actions %d + Delays %d", c.Steps, c.Actions, c.Delays)
	}
	if run.TotalNS <= 0 {
		t.Errorf("TotalNS = %d, want > 0", run.TotalNS)
	}

	// Unknown job and non-terminal status map to 404.
	getText(t, ts, "/v1/jobs/zzz/report", http.StatusNotFound)
}

// TestMetricsEngineCountersAndPhases checks the /metrics exposition grows
// the engine counter families and per-phase latency histograms after a
// completed run.
func TestMetricsEngineCountersAndPhases(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1})
	if code, doc := postConfig(t, ts, quickstartXML, "application/xml", "?wait=true"); code != http.StatusOK {
		t.Fatalf("submit: %d %+v", code, doc)
	}
	body := getText(t, ts, "/metrics", http.StatusOK)
	for _, family := range []string{
		"saserve_engine_steps_total",
		"saserve_engine_actions_total",
		"saserve_engine_delays_total",
		"saserve_engine_guard_evals_total",
		"saserve_engine_enabled_calls_total",
		"saserve_engine_heap_pushes_total",
		"saserve_run_latency_seconds{quantile=\"0.9\"}",
		"saserve_phase_latency_seconds_bucket{phase=\"interpret\",le=\"+Inf\"}",
		"saserve_phase_latency_seconds_count{phase=\"build\"}",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("metrics missing %q", family)
		}
	}
	// The quickstart run fires transitions, so steps must be nonzero.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "saserve_engine_steps_total ") {
			if strings.TrimPrefix(line, "saserve_engine_steps_total ") == "0" {
				t.Errorf("engine steps counter is zero after a completed run")
			}
			return
		}
	}
	t.Error("saserve_engine_steps_total sample line not found")
}

// TestPprofOptIn checks the /debug/pprof/ routes exist only when enabled.
func TestPprofOptIn(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1, Tool: "saserve"})
	defer pool.Close()
	on := httptest.NewServer(newMux(pool, campaign.NewEngine(pool, nil, nil), synth.NewEngine(pool, nil, nil), compose.New(pool, nil, nil), true))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}

	off := httptest.NewServer(newMux(pool, campaign.NewEngine(pool, nil, nil), synth.NewEngine(pool, nil, nil), compose.New(pool, nil, nil), false))
	defer off.Close()
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
	"stopwatchsim/internal/synth"
)

// TestBackpressureSetsRetryAfter: the 429 on a full queue carries the
// documented Retry-After header so clients know backpressure is
// transient.
func TestBackpressureSetsRetryAfter(t *testing.T) {
	ts := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 1})
	if code, _ := postConfig(t, ts, counterXTA, "application/x-xta", "?horizon=100000000"); code != http.StatusAccepted {
		t.Fatal("first submit rejected")
	}
	waitForRunning(t, ts)
	if code, _ := postConfig(t, ts, quickstartXML, "application/xml", ""); code != http.StatusAccepted {
		t.Fatal("second submit rejected")
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/x-xta",
		strings.NewReader(counterXTA))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
}

// TestReadyzTracksDegradedMode: /readyz answers 200 while the store tier
// is healthy and 503 once persistent failures trip the breaker, with the
// degraded gauge and resilience counters visible on /metrics.
func TestReadyzTracksDegradedMode(t *testing.T) {
	// One injector shared by the store and the pool, as main.go wires it.
	inj := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Site: fault.SiteStoreJournalAppend, Kind: fault.KindError, Every: 1},
	}})
	st, err := store.Open(t.TempDir(), store.Options{
		PinnedKinds: []string{campaign.StoreKind()},
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{
		Workers:          1,
		Store:            st,
		Faults:           inj,
		BreakerThreshold: 1,
		Tool:             "saserve",
	})
	ts := httptest.NewServer(newMux(pool, campaign.NewEngine(pool, st, nil), synth.NewEngine(pool, st, nil), compose.New(pool, st, nil), false))
	t.Cleanup(func() {
		ts.Close()
		pool.Close()
	})

	var h map[string]string
	getJSON(t, ts, "/readyz", http.StatusOK, &h)
	if h["status"] != "ok" {
		t.Fatalf("ready = %v", h)
	}

	// A completed run tries to persist its outcome; every journal append
	// is injected to fail, so the retries exhaust and the breaker trips.
	// The put (and its retry backoff) runs after the job completes, so
	// poll for the flip.
	if code, doc := postConfig(t, ts, quickstartXML, "application/xml", "?wait=true"); code != http.StatusOK {
		t.Fatalf("submit = %d %+v", code, doc)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped; /readyz stayed 200")
		}
		time.Sleep(5 * time.Millisecond)
	}
	getJSON(t, ts, "/readyz", http.StatusServiceUnavailable, &h)
	if h["status"] != "degraded" {
		t.Fatalf("ready = %v, want degraded", h)
	}
	// Liveness is unaffected: a degraded service still answers.
	getJSON(t, ts, "/healthz", http.StatusOK, &h)

	metrics := getText(t, ts, "/metrics", http.StatusOK)
	for _, want := range []string{
		"saserve_degraded 1",
		"saserve_resilience_breaker_trips_total 1",
		"saserve_resilience_store_retries_total",
		`saserve_fault_injected_total{site="store.journal.append"}`,
		"saserve_store_journal_repairs_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Command saserve runs the schedulability analysis service: an HTTP API
// over a bounded worker pool with a content-addressed result cache. The
// paper's central property — one deterministic NSA interpretation decides
// a configuration — makes the service shape natural: runs are pure
// functions of the submitted configuration, so they batch, parallelize
// and cache like any content-addressed computation.
//
//	POST   /v1/jobs          submit XML/JSON configuration or XTA model
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     status, verdict, structured diagnostics
//	DELETE /v1/jobs/{id}     cancel
//	GET    /v1/jobs/{id}/trace  trace export (json, csv, text)
//	GET    /v1/jobs/{id}/gantt  ASCII Gantt chart
//	GET    /v1/jobs/{id}/report telemetry RunReport of a completed run
//	GET    /v1/jobs/{id}/postmortem flight-recorder dump of a dump-worthy failure
//	GET    /v1/traces/{id}   span tree of a trace (ingress → pool → store → engine)
//	POST   /v1/campaigns     start (or resume) a design-space campaign
//	GET    /v1/campaigns     list campaigns
//	GET    /v1/campaigns/{id}        campaign state and progress
//	DELETE /v1/campaigns/{id}        cancel a running campaign
//	GET    /v1/campaigns/{id}/result campaign summary (frontier table)
//	GET    /v1/campaigns/{id}/events live SSE event stream (points, coverage, ETA)
//	POST   /v1/synth         start (or resume) a region synthesis
//	GET    /v1/synth         list syntheses
//	GET    /v1/synth/{id}        synthesis state and progress
//	DELETE /v1/synth/{id}        cancel a running synthesis
//	GET    /v1/synth/{id}/region region export (box cover and witnesses)
//	GET    /v1/synth/{id}/events live SSE event stream (points, budget, ETA)
//	POST   /v1/compose       compositional per-module analysis (?status=true)
//	GET    /metrics          Prometheus-style metrics
//	GET    /healthz          liveness
//	GET    /readyz           readiness (503 while the store tier is degraded)
//	GET    /debug/pprof/*    runtime profiles (only with -pprof)
//
// With -store DIR, results, campaign checkpoints and synthesis
// checkpoints persist in a crash-safe on-disk artifact store: completed
// outcomes form a second cache tier under the in-memory LRU (memory miss
// → disk hit → compute), and campaigns and syntheses interrupted by a
// crash resume on restart, skipping every point whose configuration
// fingerprint is already on disk.
//
// Per-job resource budgets come from the shared flags (-max-steps,
// -timeout, -max-mem-mb) as defaults, overridable per submission with
// ?max-steps= and ?timeout= query parameters. SIGINT/SIGTERM drains the
// pool and exits. Logging is structured (-log-level, -log-format); every
// job-lifecycle record carries the job ID and configuration fingerprint.
//
// Usage:
//
//	saserve [-addr :8080] [-workers N] [-queue N] [-cache N] [-pprof]
//	        [-engine-backend compiled|event|naive]
//	        [-store DIR] [-store-max-mb N] [-stuck-after D]
//	        [-breaker-threshold N] [-faults PLAN] [-fault-seed N]
//	        [-trace-spans N] [-trace-export FILE.jsonl] [-flight-depth N]
//	        [-log-level info] [-log-format text]
//	        [-max-steps N] [-timeout D] [-max-mem-mb N]
//
// Self-healing is always on: transient store failures are retried with
// backoff, a persistently failing store trips a circuit breaker
// (-breaker-threshold consecutive failures, default 5) into memory-only
// degraded mode (visible on /readyz and the saserve_degraded gauge)
// until a probe succeeds, and -stuck-after arms a watchdog that
// kills and requeues wedged runs. -faults arms the deterministic fault
// injector (chaos testing): either the canonical randomized plan
// ("chaos:0.05") or an explicit rule list
// ("store.journal.sync:p=0.05;jobs.worker.run:every=97,kind=panic").
//
// Cross-layer tracing and the flight recorder are on by default
// (-trace-spans 0 and -flight-depth 0 disable them): every request gets
// a W3C traceparent (honoured inbound, echoed as a response header),
// its spans land in a bounded in-memory collector served by /v1/traces,
// and dump-worthy failures (deadlock, stuck, panic, injected fault)
// persist a flight-recorder post-mortem retrievable even after a crash.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
	"stopwatchsim/internal/synth"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", runtime.NumCPU(), "concurrent analysis runs")
		queue      = flag.Int("queue", 256, "bounded job queue depth (backpressure beyond)")
		cache      = flag.Int("cache", 1024, "result cache entries (negative disables)")
		pprofFlag  = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")
		storeDir   = flag.String("store", "", "persistent artifact store directory (empty disables)")
		storeMaxMB = flag.Int64("store-max-mb", 0, "artifact store size bound in MiB before GC (0 = unbounded)")
		faults     = flag.String("faults", "", "fault injection plan: 'chaos:RATE' or 'site:k=v,...;site:k=v,...' (chaos testing only)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault injection RNG seed (deterministic per seed)")
		stuckAfter = flag.Duration("stuck-after", 0, "watchdog deadline: kill and requeue jobs running longer than this (0 disables)")
		breakAfter = flag.Int("breaker-threshold", 0, "consecutive store failures before the disk tier degrades to memory-only (0 = default 5)")
		backendStr = flag.String("engine-backend", "compiled", "engine backend for analysis runs: compiled, event or naive")

		traceSpans  = flag.Int("trace-spans", obs.DefaultTraceSpans, "in-memory span collector capacity (0 disables tracing)")
		traceExport = flag.String("trace-export", "", "append finished spans as JSON lines to this file (requires tracing)")
		flightDepth = flag.Int("flight-depth", obs.DefaultFlightDepth, "flight recorder ring depth per worker and for service events (0 disables)")
	)
	budget := diag.BudgetFlags()
	logger := obs.LogFlags()
	flag.Parse()
	lg := logger()

	backend, err := nsa.ParseBackend(*backendStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saserve:", err)
		os.Exit(diag.ExitUsage)
	}

	// Fault injection is opt-in and loud: a service deliberately running
	// under chaos should say so on every startup line it owns.
	var inj *fault.Injector
	if *faults != "" {
		var plan fault.Plan
		if rs, ok := strings.CutPrefix(*faults, "chaos:"); ok {
			rate, err := strconv.ParseFloat(rs, 64)
			if err != nil || rate < 0 || rate > 1 {
				fmt.Fprintf(os.Stderr, "saserve: bad chaos rate %q (want 0..1)\n", rs)
				os.Exit(diag.ExitUsage)
			}
			plan = fault.ChaosPlan(*faultSeed, rate)
		} else {
			var err error
			plan, err = fault.ParsePlan(*faults, *faultSeed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "saserve:", err)
				os.Exit(diag.ExitUsage)
			}
		}
		inj = fault.New(plan)
		lg.Warn("fault injection armed", "plan", *faults, "seed", *faultSeed)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{
			MaxBytes:    *storeMaxMB << 20,
			PinnedKinds: []string{campaign.StoreKind(), synth.StoreKind(), compose.StoreKind()},
			Faults:      inj,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "saserve:", err)
			os.Exit(diag.ExitUsage)
		}
		defer st.Close()
		stats := st.Stats()
		lg.Info("store open", "dir", *storeDir, "objects", stats.Objects, "bytes", stats.Bytes,
			"recovered_records", stats.RecoveredRecords, "truncated_bytes", stats.TruncatedBytes)
	}

	// Tracing and flight recording are on by default: the collector is a
	// fixed ring and the hot paths pay one branch per site, so the ops
	// value costs nothing measurable. -trace-spans 0 / -flight-depth 0
	// turn them off entirely.
	var tracer *obs.Tracer
	if *traceSpans > 0 {
		var export *os.File
		if *traceExport != "" {
			var err error
			export, err = os.OpenFile(*traceExport, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "saserve:", err)
				os.Exit(diag.ExitUsage)
			}
			defer export.Close()
		}
		if export != nil {
			tracer = obs.NewTracer(*traceSpans, export)
		} else {
			tracer = obs.NewTracer(*traceSpans, nil)
		}
	} else if *traceExport != "" {
		fmt.Fprintln(os.Stderr, "saserve: -trace-export requires tracing (-trace-spans > 0)")
		os.Exit(diag.ExitUsage)
	}

	pool := jobs.New(jobs.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		Budget:           budget(),
		Tool:             "saserve",
		Logger:           lg,
		Store:            st,
		Faults:           inj,
		StuckAfter:       *stuckAfter,
		BreakerThreshold: *breakAfter,
		Backend:          backend,
		Tracer:           tracer,
		FlightDepth:      *flightDepth,
	})
	camps := campaign.NewEngine(pool, st, lg)
	if resumed := camps.ResumeAll(); len(resumed) > 0 {
		lg.Info("campaigns resumed", "count", len(resumed), "ids", resumed)
	}
	synths := synth.NewEngine(pool, st, lg)
	if resumed := synths.ResumeAll(); len(resumed) > 0 {
		lg.Info("syntheses resumed", "count", len(resumed), "ids", resumed)
	}
	comp := compose.New(pool, st, lg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(pool, camps, synths, comp, *pprofFlag),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := diag.SignalContext()
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	lg.Info("listening", "addr", *addr, "workers", *workers,
		"queue", *queue, "cache", *cache, "store", *storeDir,
		"backend", backend.String(), "pprof", *pprofFlag)

	select {
	case err := <-errc:
		lg.Error("serve failed", "error", err)
		os.Exit(diag.ExitError)
	case <-ctx.Done():
	}
	lg.Info("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "saserve: shutdown:", err)
	}
	pool.Close()
}

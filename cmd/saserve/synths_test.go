package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
	"stopwatchsim/internal/synth"
)

// newSynthServer builds a server whose synth engine checkpoints to a
// persistent store, returning the pieces so tests can simulate restarts.
func newSynthServer(t *testing.T, dir string) (*httptest.Server, *jobs.Pool, *synth.Engine, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{PinnedKinds: []string{synth.StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.New(jobs.Options{Workers: 2, Tool: "saserve", Store: st})
	eng := synth.NewEngine(pool, st, nil)
	eng.ResumeAll()
	ts := httptest.NewServer(newMux(pool, campaign.NewEngine(pool, st, nil), eng, compose.New(pool, st, nil), false))
	return ts, pool, eng, st
}

// synthSpaceJSON is a 1-D breakdown space over the quickstart system:
// varying the logging task's WCET across [1, 16] with control fixed.
func synthSpaceJSON(t *testing.T) []byte {
	t.Helper()
	sys, err := config.ReadXML(strings.NewReader(quickstartXML))
	if err != nil {
		t.Fatal(err)
	}
	space := &synth.Space{
		Name: "http-breakdown",
		Base: sys,
		Dims: []synth.Dim{
			{Target: "wcet:P1.logging", Min: 1, Max: 16},
		},
		Parallel: 2,
	}
	raw, err := json.Marshal(space)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestSynthEndpoints(t *testing.T) {
	ts, pool, _, st := newSynthServer(t, t.TempDir())
	defer func() { ts.Close(); pool.Close(); st.Close() }()

	// Malformed spaces are rejected with a diagnosis.
	resp, err := http.Post(ts.URL+"/v1/synth", "application/json",
		strings.NewReader(`{"name":"x","dims":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad space: status %d", resp.StatusCode)
	}

	// Start and wait.
	raw := synthSpaceJSON(t)
	resp, err = http.Post(ts.URL+"/v1/synth?wait=true", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var doc synthDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || doc.Status != synth.StatusDone {
		t.Fatalf("wait=true: status %d, synthesis %s (%s)", resp.StatusCode, doc.Status, doc.Error)
	}
	if doc.Region == nil || doc.PointsDone == 0 || len(doc.Points) != doc.PointsDone {
		t.Fatalf("done synthesis: region=%v points_done=%d points=%d",
			doc.Region != nil, doc.PointsDone, len(doc.Points))
	}

	// List elides the point bodies but keeps the count.
	resp, err = http.Get(ts.URL + "/v1/synth")
	if err != nil {
		t.Fatal(err)
	}
	var list []synthDoc
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != doc.ID || list[0].PointsDone != doc.PointsDone || len(list[0].Points) != 0 {
		t.Fatalf("list = %+v", list)
	}

	// Region export carries the pinned schema version and a full cover.
	resp, err = http.Get(ts.URL + "/v1/synth/" + doc.ID + "/region")
	if err != nil {
		t.Fatal(err)
	}
	var region synth.Region
	if err := json.NewDecoder(resp.Body).Decode(&region); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if region.SchemaVersion != "synth/region/v1" {
		t.Fatalf("region schema = %q", region.SchemaVersion)
	}
	var cells int64
	for _, b := range region.Boxes {
		cells += b.Cells
	}
	if cells != region.TotalCells || region.TotalCells != 15 {
		t.Fatalf("region covers %d of %d cells, want 15 of 15", cells, region.TotalCells)
	}

	// Re-posting the same space is a content-addressed replay: 200, same
	// ID, no second synthesis.
	resp, err = http.Post(ts.URL+"/v1/synth", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var replay synthDoc
	if err := json.NewDecoder(resp.Body).Decode(&replay); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || replay.ID != doc.ID || replay.Status != synth.StatusDone {
		t.Fatalf("replay: status %d id %s state %s", resp.StatusCode, replay.ID[:12], replay.Status)
	}

	// Canceling a finished synthesis conflicts; unknown IDs are 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/synth/"+doc.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/synth/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}

	// Metrics expose the synth counter family.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"saserve_synth_started_total 1", "saserve_synth_done_total 1", "saserve_synth_points_computed_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSynthServedAcrossRestart: a completed synthesis survives a service
// restart — the fresh engine registers the checkpoint and serves state and
// region without re-running anything.
func TestSynthServedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ts, pool, _, st := newSynthServer(t, dir)

	raw := synthSpaceJSON(t)
	resp, err := http.Post(ts.URL+"/v1/synth?wait=true", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var doc synthDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Status != synth.StatusDone {
		t.Fatalf("first run: %s (%s)", doc.Status, doc.Error)
	}
	ts.Close()
	pool.Close()
	st.Close()

	ts2, pool2, eng2, st2 := newSynthServer(t, dir)
	defer func() { ts2.Close(); pool2.Close(); st2.Close() }()
	// ResumeAll relaunches nothing (the synthesis is done)…
	if m := eng2.Metrics(); m.Resumed != 0 || m.Started != 0 {
		t.Fatalf("restart relaunched: %+v", m)
	}
	// …but POSTing the space again serves the stored result.
	resp, err = http.Post(ts2.URL+"/v1/synth", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var again synthDoc
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.ID != doc.ID || again.Status != synth.StatusDone {
		t.Fatalf("restart replay: status %d id %s state %s", resp.StatusCode, again.ID[:12], again.Status)
	}
	resp, err = http.Get(ts2.URL + "/v1/synth/" + doc.ID + "/region")
	if err != nil {
		t.Fatal(err)
	}
	var region synth.Region
	if err := json.NewDecoder(resp.Body).Decode(&region); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if region.Status != synth.StatusDone || len(region.Boxes) == 0 {
		t.Fatalf("restart region = %+v", region)
	}
	if m := eng2.Metrics(); m.PointsComputed != 0 {
		t.Errorf("restart recomputed %d points", m.PointsComputed)
	}
}

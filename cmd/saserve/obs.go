package main

// Observability endpoints: the span-tree view of one trace, the
// flight-recorder postmortem of a failed job, and the live SSE event
// streams of campaigns and syntheses.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"stopwatchsim/internal/obs"
)

// spanTree serves GET /v1/traces/{id}: the recorded spans of one trace,
// reassembled into parent/child tree form. The id is either the 32-hex
// trace ID or a full W3C traceparent (as returned in the Traceparent
// response header and carried by campaign/synth points), so callers can
// paste either without reformatting.
func (s *server) spanTree(w http.ResponseWriter, r *http.Request) {
	tr := s.pool.Tracer()
	if tr == nil {
		httpError(w, http.StatusNotFound, "tracing disabled (-trace-spans 0)")
		return
	}
	id := r.PathValue("id")
	if tc, ok := obs.ParseTraceparent(id); ok {
		id = tc.TraceString()
	}
	spans := tr.Trace(strings.ToLower(id))
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "no spans for trace %q (unknown, or evicted from the ring)", id)
		return
	}
	writeJSON(w, http.StatusOK, obs.SpanTree(spans))
}

// postmortem serves GET /v1/jobs/{id}/postmortem: the flight-recorder
// dump a dump-worthy failure (deadlock, stuck-run kill, panic, injected
// fault) left behind — from the registry while the job is live, from the
// artifact store after a restart.
func (s *server) postmortem(w http.ResponseWriter, r *http.Request) {
	pm, ok := s.pool.Postmortem(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no postmortem for job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, pm)
}

// campaignEvents serves GET /v1/campaigns/{id}/events: a live SSE stream
// of point settlements, quarantines and the terminal status, each with
// coverage and ETA. The first record is always a synthetic status
// snapshot, so subscribers to an already-finished campaign are answered
// instead of hanging.
func (s *server) campaignEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	first, ok := s.camps.StatusEvent(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	ch, cancel, ok := s.camps.Subscribe(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	serveSSE(w, r, first, ch, cancel)
}

// synthEvents serves GET /v1/synth/{id}/events, the synthesis mirror of
// campaignEvents.
func (s *server) synthEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	first, ok := s.synths.StatusEvent(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown synthesis %q", id)
		return
	}
	ch, cancel, ok := s.synths.Subscribe(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown synthesis %q", id)
		return
	}
	serveSSE(w, r, first, ch, cancel)
}

// serveSSE writes first and then every subscribed event as SSE data
// records until the client disconnects. The subscription is best-effort
// by construction (the hub drops on a full buffer), so a slow client
// loses events rather than stalling the exploration.
func serveSSE(w http.ResponseWriter, r *http.Request, first any, ch <-chan any, cancel func()) {
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev any) {
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", b)
		fl.Flush()
	}
	write(first)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			write(ev)
		}
	}
}

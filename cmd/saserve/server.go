package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/synth"
	"stopwatchsim/internal/trace"
)

// maxBodyBytes bounds submitted configurations.
const maxBodyBytes = 8 << 20

// defaultXTAHorizon is the model-time horizon of XTA submissions that do
// not pass ?horizon=N.
const defaultXTAHorizon = 1000

// server holds the HTTP handlers over one jobs.Pool, one
// campaign.Engine and one synth.Engine.
type server struct {
	pool    *jobs.Pool
	camps   *campaign.Engine
	synths  *synth.Engine
	comp    *compose.Analyzer
	started time.Time
}

// newMux wires the REST API:
//
//	POST   /v1/jobs          submit a configuration (XML/JSON) or XTA model
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status, verdict and diagnostics
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET    /v1/jobs/{id}/trace  stream the trace (json, csv, text)
//	GET    /v1/jobs/{id}/gantt  ASCII Gantt chart
//	GET    /v1/jobs/{id}/report telemetry RunReport of a completed run
//	GET    /v1/jobs/{id}/postmortem flight-recorder dump of a dump-worthy failure
//	GET    /v1/traces/{id}   span tree of one trace (ID or full traceparent)
//	POST   /v1/campaigns     start (or resume) a design-space campaign
//	GET    /v1/campaigns     list campaigns
//	GET    /v1/campaigns/{id}        campaign state and progress
//	DELETE /v1/campaigns/{id}        cancel a running campaign
//	GET    /v1/campaigns/{id}/result campaign summary (frontier table)
//	GET    /v1/campaigns/{id}/events live SSE event stream
//	POST   /v1/synth         start (or resume) a region synthesis
//	GET    /v1/synth         list syntheses
//	GET    /v1/synth/{id}        synthesis state and progress
//	DELETE /v1/synth/{id}        cancel a running synthesis
//	GET    /v1/synth/{id}/region region export (box cover and witnesses)
//	GET    /v1/synth/{id}/events live SSE event stream
//	POST   /v1/compose       compositional analysis of a configuration
//	                         (?status=true answers from the store only)
//	GET    /metrics          Prometheus-style counters
//	GET    /healthz          liveness
//	GET    /readyz           readiness (503 while the store tier is degraded)
//
// enablePprof additionally mounts the runtime profiling handlers under
// /debug/pprof/ (opt-in: profiles expose internals, so they are off unless
// the operator asks).
func newMux(pool *jobs.Pool, camps *campaign.Engine, synths *synth.Engine, comp *compose.Analyzer, enablePprof bool) *http.ServeMux {
	s := &server{pool: pool, camps: camps, synths: synths, comp: comp, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("GET /v1/jobs/{id}/gantt", s.gantt)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.report)
	mux.HandleFunc("GET /v1/jobs/{id}/postmortem", s.postmortem)
	mux.HandleFunc("GET /v1/traces/{id}", s.spanTree)
	mux.HandleFunc("POST /v1/campaigns", s.campaignStart)
	mux.HandleFunc("GET /v1/campaigns", s.campaignList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.campaignStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.campaignCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.campaignResult)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.campaignEvents)
	mux.HandleFunc("POST /v1/synth", s.synthStart)
	mux.HandleFunc("GET /v1/synth", s.synthList)
	mux.HandleFunc("GET /v1/synth/{id}", s.synthStatus)
	mux.HandleFunc("DELETE /v1/synth/{id}", s.synthCancel)
	mux.HandleFunc("GET /v1/synth/{id}/region", s.synthRegion)
	mux.HandleFunc("GET /v1/synth/{id}/events", s.synthEvents)
	mux.HandleFunc("POST /v1/compose", s.composeRun)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /readyz", s.ready)
	if enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// jobDoc is the JSON wire form of a job snapshot.
type jobDoc struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Status      string `json:"status"`
	CacheHit    bool   `json:"cache_hit"`
	// DiskHit marks cache hits served by the persistent store tier.
	DiskHit   bool   `json:"disk_hit,omitempty"`
	Submitted string `json:"submitted"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`

	// Completed runs.
	Verdict   string `json:"verdict,omitempty"`
	System    string `json:"system,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Actions   int    `json:"engine_actions,omitempty"`
	JobsTotal int    `json:"jobs_total,omitempty"`
	JobsLate  int    `json:"jobs_unschedulable,omitempty"`

	// Trace is the job's W3C traceparent when the service traces;
	// Postmortem names the flight-recorder dump a dump-worthy failure left
	// behind (GET /v1/jobs/{id}/postmortem).
	Trace      string `json:"traceparent,omitempty"`
	Postmortem string `json:"postmortem,omitempty"`

	// Failed or canceled runs.
	Report *diag.Report `json:"report,omitempty"`
}

func toDoc(jb jobs.Job) jobDoc {
	d := jobDoc{
		ID:          jb.ID,
		Fingerprint: jb.Key,
		Status:      string(jb.Status),
		CacheHit:    jb.CacheHit,
		DiskHit:     jb.DiskHit,
		Submitted:   jb.Submitted.UTC().Format(time.RFC3339Nano),
		Postmortem:  jb.PostmortemKey,
		Report:      jb.Report,
	}
	if jb.Trace.Valid() {
		d.Trace = jb.Trace.Traceparent()
	}
	if !jb.Started.IsZero() {
		d.Started = jb.Started.UTC().Format(time.RFC3339Nano)
	}
	if !jb.Finished.IsZero() {
		d.Finished = jb.Finished.UTC().Format(time.RFC3339Nano)
	}
	if out := jb.Outcome; out != nil {
		d.Verdict = string(out.Verdict)
		d.ElapsedMS = out.Elapsed.Milliseconds()
		d.Actions = out.Engine.Actions
		if out.Sys != nil {
			d.System = out.Sys.Name
		}
		if out.Analysis != nil {
			d.JobsTotal = len(out.Analysis.Jobs)
			d.JobsLate = len(out.Analysis.Unschedulable)
		}
		// Disk-served outcomes carry a compact summary instead of the
		// full trace and analysis.
		if p := out.Persisted; p != nil {
			d.System = p.System
			d.JobsTotal = p.JobsTotal
			d.JobsLate = p.JobsLate
		}
	}
	return d
}

// submit accepts a system configuration (application/xml or
// application/json) or an XTA model (application/x-xta, ?horizon=N) and
// enqueues the analysis. ?wait=true blocks until the run completes.
// Budget overrides: ?max-steps=N and ?timeout=30s bound the run.
func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "configuration exceeds %d bytes", maxBodyBytes)
		return
	}
	budget, err := budgetFromQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	var runner jobs.Runner
	switch ct {
	case "application/json":
		sys, err := config.ReadJSON(bytesReader(body))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		runner = jobs.ConfigRun{Sys: sys}
	case "application/x-xta", "text/x-xta":
		horizon := int64(defaultXTAHorizon)
		if hs := r.URL.Query().Get("horizon"); hs != "" {
			horizon, err = strconv.ParseInt(hs, 10, 64)
			if err != nil || horizon <= 0 {
				httpError(w, http.StatusBadRequest, "bad horizon %q", hs)
				return
			}
		}
		runner = jobs.XTARun{Src: string(body), Horizon: horizon}
	default: // XML is the default and the documented Content-Type: application/xml
		sys, err := config.ReadXML(bytesReader(body))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		runner = jobs.ConfigRun{Sys: sys}
	}

	// Trace propagation: adopt the caller's W3C traceparent when one is
	// sent, mint a fresh trace otherwise, and record the ingress span when
	// the submission settles. The response echoes the context in a
	// Traceparent header so callers can follow /v1/traces/{trace-id}.
	var tc obs.TraceContext
	var parentSpan [8]byte
	if tr := s.pool.Tracer(); tr != nil {
		if rtc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			parentSpan = rtc.SpanID
			tc = rtc.Child()
		} else {
			tc = obs.NewTrace()
		}
		w.Header().Set("Traceparent", tc.Traceparent())
		ingress := time.Now()
		defer func() {
			tr.Record(tc, parentSpan, "http.ingress", "POST /v1/jobs",
				ingress.UnixNano(), time.Since(ingress).Nanoseconds())
		}()
	}

	bud := budget
	if bud.IsZero() { // no per-job override: inherit the pool default
		bud = s.pool.DefaultBudget()
	}
	jb, err := s.pool.SubmitTraced(runner, bud, tc)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// Backpressure is transient by construction (the queue drains at
		// worker speed); tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	case errors.Is(err, jobs.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	if r.URL.Query().Get("wait") == "true" {
		done, err := s.pool.Wait(r.Context(), jb.ID)
		if err != nil {
			httpError(w, http.StatusGatewayTimeout, "waiting for %s: %v", jb.ID, err)
			return
		}
		writeJSON(w, http.StatusOK, toDoc(done))
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+jb.ID)
	writeJSON(w, http.StatusAccepted, toDoc(jb))
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	all := s.pool.List()
	docs := make([]jobDoc, len(all))
	for i, jb := range all {
		docs[i] = toDoc(jb)
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, toDoc(jb))
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.pool.Get(id); !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !s.pool.Cancel(id) {
		httpError(w, http.StatusConflict, "job %s already terminal", id)
		return
	}
	jb, _ := s.pool.Get(id)
	writeJSON(w, http.StatusOK, toDoc(jb))
}

// completedOutcome fetches the job and requires a completed run.
func (s *server) completedOutcome(w http.ResponseWriter, r *http.Request) *jobs.Outcome {
	jb, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return nil
	}
	if jb.Status != jobs.StatusDone || jb.Outcome == nil {
		httpError(w, http.StatusConflict, "job %s is %s, not done", jb.ID, jb.Status)
		return nil
	}
	return jb.Outcome
}

// trace streams the completed run's trace: for configuration runs the
// system operation trace as JSON (default), CSV or rendered text; for XTA
// runs the synchronization trace as JSON or text.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	out := s.completedOutcome(w, r)
	if out == nil {
		return
	}
	if out.Persisted != nil {
		httpError(w, http.StatusGone, "outcome was restored from the persistent store; traces are not retained on disk")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if out.Trace == nil { // XTA run: synchronization trace only
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, out.Sync)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, ev := range out.Sync {
				fmt.Fprintf(w, "t=%-6d %s\n", ev.Time, ev.Event)
			}
		default:
			httpError(w, http.StatusBadRequest, "format %q not available for XTA runs", format)
		}
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteJSON(w, out.Sys, out.Trace, out.Analysis); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := out.Trace.WriteCSV(w, out.Sys); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, out.Trace.Format(out.Sys))
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (json, csv, text)", format)
	}
}

// gantt renders the ASCII Gantt chart of a completed configuration run;
// ?scale=N sets ticks per column.
func (s *server) gantt(w http.ResponseWriter, r *http.Request) {
	out := s.completedOutcome(w, r)
	if out == nil {
		return
	}
	if out.Persisted != nil {
		httpError(w, http.StatusGone, "outcome was restored from the persistent store; traces are not retained on disk")
		return
	}
	if out.Trace == nil {
		httpError(w, http.StatusConflict, "job has no system trace (XTA run)")
		return
	}
	scale := int64(1)
	if ss := r.URL.Query().Get("scale"); ss != "" {
		v, err := strconv.ParseInt(ss, 10, 64)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "bad scale %q", ss)
			return
		}
		scale = v
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, trace.Gantt(out.Sys, out.Trace, scale))
}

// report returns the telemetry RunReport of a terminal job: phase
// durations plus the engine hot-path counters of the run. Failed runs that
// produced telemetry up to the failure serve it from their diag report.
func (s *server) report(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.pool.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !jb.Status.Terminal() {
		httpError(w, http.StatusConflict, "job %s is %s; report available once terminal", jb.ID, jb.Status)
		return
	}
	var run *obs.RunReport
	switch {
	case jb.Outcome != nil && jb.Outcome.Telemetry != nil:
		run = jb.Outcome.Telemetry
	case jb.Report != nil && jb.Report.Telemetry != nil:
		run = jb.Report.Telemetry
	default:
		httpError(w, http.StatusNotFound, "job %s has no telemetry (cached outcome predating probes?)", jb.ID)
		return
	}
	writeJSON(w, http.StatusOK, run)
}

// metrics exposes pool counters in the Prometheus text format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	m := s.pool.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP saserve_%s %s\n# TYPE saserve_%s counter\nsaserve_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP saserve_%s %s\n# TYPE saserve_%s gauge\nsaserve_%s %g\n", name, help, name, name, v)
	}
	counter("jobs_submitted_total", "Jobs accepted for analysis.", m.Submitted)
	gauge("jobs_queued", "Jobs waiting for a worker.", float64(m.Queued))
	gauge("jobs_running", "Jobs currently interpreting.", float64(m.Running))
	counter("jobs_done_total", "Jobs completed successfully.", m.Done)
	counter("jobs_failed_total", "Jobs failed (diagnostics or budget).", m.Failed)
	counter("jobs_canceled_total", "Jobs canceled.", m.Canceled)
	counter("cache_hits_total", "Submissions served from the result cache.", m.CacheHits)
	counter("cache_misses_total", "Submissions that required a run.", m.CacheMisses)
	gauge("cache_hit_rate", "Cache hits over all keyed submissions.", m.CacheHitRate)
	counter("postmortems_total", "Flight-recorder dumps written for dump-worthy failures.", m.Postmortems)

	// Span collector accounting (present only with tracing enabled).
	if tr := s.pool.Tracer(); tr != nil {
		rec, drop := tr.Stats()
		counter("trace_spans_total", "Spans recorded by the in-memory collector.", int64(rec))
		counter("trace_spans_dropped_total", "Spans overwritten in the ring before being read.", int64(drop))
	}

	// Persistent store tier (present only when -store is set).
	if st := s.pool.Store(); st != nil {
		ss := st.Stats()
		counter("store_hits_total", "Memory-cache misses served by the persistent store tier.", m.StoreHits)
		counter("store_gets_hit_total", "Store reads that found the object.", ss.Hits)
		counter("store_gets_miss_total", "Store reads that missed.", ss.Misses)
		counter("store_puts_total", "Objects written to the store.", ss.Puts)
		counter("store_deletes_total", "Objects deleted from the store.", ss.Deletes)
		counter("store_evictions_total", "Objects evicted by the size-bound GC.", ss.Evictions)
		counter("store_recovered_records_total", "Journal records replayed at open.", ss.RecoveredRecords)
		counter("store_truncated_bytes_total", "Torn journal tail bytes truncated at open.", ss.TruncatedBytes)
		counter("store_dropped_entries_total", "Journal entries dropped (missing object files).", ss.DroppedEntries)
		counter("store_orphans_swept_total", "Unreferenced object files removed at open.", ss.OrphansSwept)
		counter("store_journal_repairs_total", "Torn journal tails truncated back to the last acked record.", ss.JournalRepairs)
		gauge("store_objects", "Objects currently in the store.", float64(ss.Objects))
		gauge("store_bytes", "Bytes currently in the store.", float64(ss.Bytes))
	}

	// Campaign engine counters.
	cm := s.camps.Metrics()
	counter("campaign_started_total", "Campaigns started fresh.", cm.Started)
	counter("campaign_resumed_total", "Campaigns resumed from a checkpoint.", cm.Resumed)
	counter("campaign_done_total", "Campaigns completed.", cm.Done)
	counter("campaign_failed_total", "Campaigns failed.", cm.Failed)
	counter("campaign_canceled_total", "Campaigns canceled.", cm.Canceled)
	counter("campaign_points_computed_total", "Campaign points answered by a fresh run.", cm.PointsComputed)
	counter("campaign_points_cache_memory_total", "Campaign points answered by the memory cache.", cm.PointsCacheMemory)
	counter("campaign_points_cache_disk_total", "Campaign points answered by the persistent tier.", cm.PointsCacheDisk)
	counter("campaign_points_checkpoint_total", "Campaign points answered by resumed checkpoints.", cm.PointsCheckpoint)
	counter("campaign_points_failed_total", "Campaign points whose runs failed.", cm.PointsFailed)
	counter("campaign_bisect_iterations_total", "Interior bisection iterations across campaigns.", cm.BisectIterations)
	counter("campaign_frontier_rows_total", "Frontier rows completed across campaigns.", cm.FrontierRows)
	counter("campaign_bracket_reuses_total", "Frontier rows whose bisection bracket was seeded adaptively.", cm.BracketReuses)

	// Region synthesis engine counters.
	sm := s.synths.Metrics()
	counter("synth_started_total", "Syntheses started fresh.", sm.Started)
	counter("synth_resumed_total", "Syntheses resumed from a checkpoint.", sm.Resumed)
	counter("synth_done_total", "Syntheses completed.", sm.Done)
	counter("synth_failed_total", "Syntheses failed.", sm.Failed)
	counter("synth_canceled_total", "Syntheses canceled.", sm.Canceled)
	counter("synth_points_computed_total", "Synthesis points answered by a fresh run.", sm.PointsComputed)
	counter("synth_points_cache_memory_total", "Synthesis points answered by the memory cache.", sm.PointsCacheMemory)
	counter("synth_points_cache_disk_total", "Synthesis points answered by the persistent tier.", sm.PointsCacheDisk)
	counter("synth_points_checkpoint_total", "Synthesis points answered by resumed checkpoints.", sm.PointsCheckpoint)
	counter("synth_boxes_classified_total", "Region boxes classified across syntheses.", sm.BoxesClassified)
	counter("synth_splits_total", "Box splits across syntheses.", sm.Splits)
	counter("synth_bisect_iterations_total", "1-D bisection iterations across syntheses.", sm.BisectIterations)

	// Compositional analyzer counters.
	km := s.comp.Metrics()
	counter("compose_runs_total", "Compositional analyses started.", km.Runs)
	counter("compose_compositional_total", "Analyses concluded from the per-module verdicts.", km.Compositional)
	counter("compose_fallbacks_total", "Analyses that fell back to the global product.", km.Fallbacks)
	counter("compose_interface_violations_total", "Fallbacks caused by a failed refinement check.", km.InterfaceViolations)
	counter("compose_modules_analyzed_total", "Modules answered by a fresh engine run.", km.ModulesAnalyzed)
	counter("compose_module_cache_hits_total", "Modules served from compose documents or pool cache tiers.", km.ModuleCacheHits)
	counter("compose_global_runs_total", "Global-product runs issued by the compositional analyzer.", km.GlobalRuns)

	// Resilience: what the self-healing machinery absorbed.
	res := m.Resilience
	counter("resilience_store_retries_total", "Store operations retried after transient failures.", res.StoreRetries)
	counter("resilience_breaker_trips_total", "Store circuit breaker trips into degraded mode.", res.BreakerTrips)
	counter("resilience_breaker_resets_total", "Store circuit breaker recoveries.", res.BreakerResets)
	counter("resilience_breaker_short_circuits_total", "Store operations skipped while the breaker was open.", res.BreakerShortCircuits)
	counter("resilience_watchdog_requeues_total", "Stuck jobs killed and requeued by the watchdog.", res.WatchdogRequeues)
	counter("resilience_panics_recovered_total", "Worker panics contained by the panic fence.", res.PanicsRecovered)
	counter("resilience_point_retries_total", "Campaign point attempts retried before settling.", res.PointRetries)
	counter("resilience_points_quarantined_total", "Campaign points quarantined after exhausting retries.", res.PointsQuarantined)
	gauge("degraded", "1 while the persistent tier is suspended (breaker open), 0 otherwise.", float64(res.Degraded))

	// Fault injection (chaos runs only; absent without -faults).
	if inj := s.pool.Faults(); inj != nil {
		stats := inj.Stats()
		sites := make([]string, 0, len(stats))
		for site := range stats {
			sites = append(sites, string(site))
		}
		sort.Strings(sites)
		fmt.Fprintf(w, "# HELP saserve_fault_injected_total Faults injected per site.\n# TYPE saserve_fault_injected_total counter\n")
		for _, site := range sites {
			fmt.Fprintf(w, "saserve_fault_injected_total{site=%q} %d\n", site, stats[fault.Site(site)].Injected)
		}
	}
	fmt.Fprintf(w, "# HELP saserve_run_latency_seconds Run latency quantiles over recent runs.\n# TYPE saserve_run_latency_seconds summary\n")
	fmt.Fprintf(w, "saserve_run_latency_seconds{quantile=\"0.5\"} %g\n", m.LatencyP50.Seconds())
	fmt.Fprintf(w, "saserve_run_latency_seconds{quantile=\"0.9\"} %g\n", m.LatencyP90.Seconds())
	fmt.Fprintf(w, "saserve_run_latency_seconds{quantile=\"0.99\"} %g\n", m.LatencyP99.Seconds())
	gauge("engine_events_per_second", "Interpretation throughput: transitions fired per second of engine wall time.", m.EventsPerSec)

	// Engine hot-path counters aggregated over every completed run.
	c := m.Engine
	counter("engine_steps_total", "Interpretation steps (action + delay transitions).", c.Steps)
	counter("engine_actions_total", "Action transitions fired.", c.Actions)
	counter("engine_delays_total", "Delay transitions taken.", c.Delays)
	counter("engine_sync_internal_total", "Internal (non-synchronizing) transitions fired.", c.SyncInternal)
	counter("engine_sync_binary_total", "Binary channel synchronizations fired.", c.SyncBinary)
	counter("engine_sync_broadcast_total", "Broadcast synchronizations fired.", c.SyncBroadcast)
	counter("engine_guard_evals_total", "Guard evaluations on the enumeration hot path.", c.GuardEvals)
	counter("engine_guard_compiled_total", "Guard evaluations through compiled closures.", c.GuardCompiled)
	counter("engine_guard_opaque_total", "Guard evaluations through the opaque interface path.", c.GuardOpaque)
	counter("engine_enabled_calls_total", "Enabled-set queries.", c.EnabledCalls)
	counter("engine_recomputes_total", "Per-automaton enabled-set recomputations (dirty).", c.Recomputes)
	counter("engine_cache_reuses_total", "Per-automaton enabled-set cache reuses (clean).", c.CacheReuses)
	counter("engine_heap_pushes_total", "Deadline heap pushes.", c.HeapPushes)
	counter("engine_heap_pops_total", "Stale deadline entries popped lazily.", c.HeapPops)
	counter("engine_heap_stale_total", "Stale deadline entries dropped by compaction.", c.HeapStale)

	// Compiled-backend counters (zero under the event backend).
	counter("engine_guard_bytecode_total", "Guard evaluations through bytecode or inlined comparisons.", c.GuardBytecode)
	counter("engine_deadline_recomputes_total", "Per-automaton deadline recomputations (compiled runtime).", c.DeadlineRecomputes)
	counter("engine_enabled_unchanged_total", "Enabled-set recomputations that found no change (surgery skipped).", c.EnabledUnchanged)
	counter("engine_first_fast_total", "Enabled-set queries served by the first-transition fast path.", c.FirstFast)

	// Info metric: which engine backend this service stamps onto runs.
	fmt.Fprintf(w, "# HELP saserve_engine_backend Engine backend in use (info metric, value always 1).\n# TYPE saserve_engine_backend gauge\nsaserve_engine_backend{backend=%q} 1\n",
		s.pool.Backend().String())

	// Per-phase latency histograms (windowed, Prometheus cumulative form).
	phases := s.pool.PhaseLatencies()
	if len(phases) > 0 {
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP saserve_phase_latency_seconds Pipeline phase latency over recent runs.\n# TYPE saserve_phase_latency_seconds histogram\n")
		for _, name := range names {
			h := phases[name]
			for i, b := range h.Bounds {
				fmt.Fprintf(w, "saserve_phase_latency_seconds_bucket{phase=%q,le=%q} %d\n",
					name, strconv.FormatFloat(b.Seconds(), 'g', -1, 64), h.Cumulative[i])
			}
			fmt.Fprintf(w, "saserve_phase_latency_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", name, h.Cumulative[len(h.Cumulative)-1])
			fmt.Fprintf(w, "saserve_phase_latency_seconds_sum{phase=%q} %g\n", name, h.Sum.Seconds())
			fmt.Fprintf(w, "saserve_phase_latency_seconds_count{phase=%q} %d\n", name, h.Count)
		}
	}
	gauge("uptime_seconds", "Seconds since the service started.", time.Since(s.started).Seconds())
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ready is the readiness probe: it reports 503 while the persistent tier
// is degraded (the store circuit breaker is open and outcomes are served
// memory-only), so orchestrators can shed traffic to healthier replicas
// while this one's breaker probes its way back. Liveness (/healthz) stays
// green throughout: a degraded service still answers correctly, just
// without durability.
func (s *server) ready(w http.ResponseWriter, r *http.Request) {
	if s.pool.Degraded() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": "store circuit breaker open; persistent tier suspended",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// budgetFromQuery assembles a per-job budget from ?max-steps and ?timeout.
func budgetFromQuery(r *http.Request) (nsa.Budget, error) {
	var b nsa.Budget
	q := r.URL.Query()
	if v := q.Get("max-steps"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return b, fmt.Errorf("bad max-steps %q", v)
		}
		b.MaxSteps = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return b, fmt.Errorf("bad timeout %q", v)
		}
		b.MaxWallTime = d
	}
	return b, nil
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

package main

import (
	"io"
	"mime"
	"net/http"

	"stopwatchsim/internal/config"
)

// composeSystem parses the submitted configuration with the same
// content-type dispatch as job submissions: application/json or the
// documented default, application/xml. XTA models have no module
// structure and are not accepted here.
func composeSystem(w http.ResponseWriter, r *http.Request) *config.System {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil
	}
	if len(body) > maxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "configuration exceeds %d bytes", maxBodyBytes)
		return nil
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	var sys *config.System
	switch ct {
	case "application/json":
		sys, err = config.ReadJSON(bytesReader(body))
	case "application/x-xta", "text/x-xta":
		httpError(w, http.StatusUnsupportedMediaType, "XTA models have no module structure; submit a system configuration")
		return nil
	default:
		sys, err = config.ReadXML(bytesReader(body))
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return nil
	}
	return sys
}

// composeRun accepts a system configuration and analyzes it
// compositionally: per-module verification against derived interface
// contracts, refinement check, global-product fallback when the
// decomposition is unsound for the system. The run is synchronous (the
// per-module jobs go through the pool's cache tiers, so repeated and
// incremental submissions are cheap) and returns the compose/result/v1
// document. ?status=true answers from the persisted result instead,
// computing nothing (404 when the store holds none).
func (s *server) composeRun(w http.ResponseWriter, r *http.Request) {
	sys := composeSystem(w, r)
	if sys == nil {
		return
	}
	if r.URL.Query().Get("status") == "true" {
		res, ok, err := s.comp.Status(sys)
		switch {
		case err != nil:
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
		case !ok:
			httpError(w, http.StatusNotFound, "no persisted compositional result for %q", sys.Name)
		default:
			writeJSON(w, http.StatusOK, res)
		}
		return
	}
	res, err := s.comp.Run(r.Context(), sys)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

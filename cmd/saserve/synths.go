package main

import (
	"io"
	"net/http"

	"stopwatchsim/internal/synth"
)

// synthDoc is the list/status wire form: the synthesis state with the
// point list elided from listings (it can be large) but kept in the
// per-synthesis view.
type synthDoc struct {
	synth.State
	PointsDone int `json:"points_done"`
}

func toSynthDoc(st synth.State, withPoints bool) synthDoc {
	d := synthDoc{State: st, PointsDone: len(st.Points)}
	if !withPoints {
		d.Points = nil
	}
	return d
}

// synthStart parses a synthesis space (application/json) and starts it.
// Syntheses are content-addressed: re-posting the same space returns the
// existing (possibly completed) synthesis instead of launching a
// duplicate. ?wait=true blocks until the synthesis reaches a terminal
// state.
func (s *server) synthStart(w http.ResponseWriter, r *http.Request) {
	space, err := synth.ParseSpace(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	st, err := s.synths.Start(space)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if r.URL.Query().Get("wait") == "true" {
		final, err := s.synths.Wait(r.Context(), st.ID)
		if err != nil {
			httpError(w, http.StatusGatewayTimeout, "waiting for %s: %v", st.ID, err)
			return
		}
		writeJSON(w, http.StatusOK, toSynthDoc(final, true))
		return
	}
	w.Header().Set("Location", "/v1/synth/"+st.ID)
	code := http.StatusAccepted
	if st.Status != synth.StatusRunning {
		code = http.StatusOK // content-addressed replay of a finished synthesis
	}
	writeJSON(w, code, toSynthDoc(st, false))
}

func (s *server) synthList(w http.ResponseWriter, r *http.Request) {
	all := s.synths.List()
	docs := make([]synthDoc, len(all))
	for i, st := range all {
		docs[i] = toSynthDoc(st, false)
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *server) synthStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.synths.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown synthesis %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, toSynthDoc(st, true))
}

func (s *server) synthCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.synths.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown synthesis %q", id)
		return
	}
	if !s.synths.Cancel(id) {
		httpError(w, http.StatusConflict, "synthesis %s already %s", id, st.Status)
		return
	}
	st, _ = s.synths.Get(id)
	writeJSON(w, http.StatusOK, toSynthDoc(st, false))
}

// synthRegion serves the region export (schema synth/region/v1): the box
// cover, coverage fraction and boundary witnesses. Unlike the campaign
// result, a region only exists once the synthesis is terminal — a partial
// cover would misrepresent the boundary — so running syntheses answer 409.
func (s *server) synthRegion(w http.ResponseWriter, r *http.Request) {
	st, ok := s.synths.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown synthesis %q", r.PathValue("id"))
		return
	}
	if st.Region == nil {
		httpError(w, http.StatusConflict, "synthesis %s is %s and has no region yet", st.ID, st.Status)
		return
	}
	writeJSON(w, http.StatusOK, st.Region)
}

// Command verify reproduces the paper's §3 verification: it checks that
// the "bad" locations of the correctness-requirement observers are
// unreachable in every run of the component models. Without -config it
// sweeps a grid of parametric instantiations (policies × task parameters),
// mirroring the paper's non-deterministic parameter choice by enumeration;
// with -config it verifies one concrete configuration exhaustively.
//
// Usage:
//
//	verify [-config system.xml] [-max-states N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/observer"
)

func main() {
	var (
		configPath = flag.String("config", "", "verify this configuration instead of the parametric sweep")
		maxStates  = flag.Int("max-states", 5_000_000, "state bound per exploration")
		seeds      = flag.Int("sweep", 24, "number of random parametric instantiations in sweep mode")
	)
	flag.Parse()
	if err := run(*configPath, *maxStates, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
}

func run(path string, maxStates, seeds int) error {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sys, err := config.ReadXML(f)
		if err != nil {
			return err
		}
		return verifyOne(sys, maxStates)
	}

	// Parametric sweep over random small configurations.
	p := gen.DefaultRandomParams()
	failures := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		sys := gen.Random(seed, p)
		m, err := model.Build(sys)
		if err != nil {
			return err
		}
		start := time.Now()
		bad, res, err := observer.VerifyAllRuns(m, maxStates)
		if err != nil {
			return err
		}
		status := "OK"
		if bad != "" {
			status = "VIOLATION: " + bad
			failures++
		} else if !res.Complete {
			status = "incomplete (state bound)"
		}
		fmt.Printf("seed %3d: %4d tasks-states %8d states %8v  %s\n",
			seed, sys.TaskCount(), res.States, time.Since(start).Round(time.Millisecond), status)
	}
	if failures > 0 {
		fmt.Printf("%d instantiations violated a requirement\n", failures)
		os.Exit(3)
	}
	fmt.Printf("all %d instantiations satisfy every §3 requirement in every run\n", seeds)
	return nil
}

func verifyOne(sys *config.System, maxStates int) error {
	m, err := model.Build(sys)
	if err != nil {
		return err
	}
	start := time.Now()
	bad, res, err := observer.VerifyAllRuns(m, maxStates)
	if err != nil {
		return err
	}
	fmt.Printf("explored %d states in %v\n", res.States, time.Since(start))
	if bad != "" {
		fmt.Println("VIOLATION:", bad)
		os.Exit(3)
	}
	if !res.Complete {
		fmt.Println("incomplete exploration (state bound reached); no violation found so far")
		return nil
	}
	fmt.Println("all §3 requirements hold in every run")
	return nil
}

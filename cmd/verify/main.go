// Command verify reproduces the paper's §3 verification: it checks that
// the "bad" locations of the correctness-requirement observers are
// unreachable in every run of the component models. Without -config it
// sweeps a grid of parametric instantiations (policies × task parameters),
// mirroring the paper's non-deterministic parameter choice by enumeration;
// with -config it verifies one concrete configuration exhaustively.
//
// Exit codes follow internal/diag: 0 all requirements hold, 1 operational
// error, 2 usage, 3 violation found, 4 budget exhausted or interrupted
// before a verdict, 5 model diagnostic, 6 invalid configuration.
//
// Usage:
//
//	verify [-config system.xml] [-max-states N] [-max-steps N] [-timeout D]
//	       [-max-mem-mb N] [-report out.json]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/observer"
)

func main() {
	var (
		configPath = flag.String("config", "", "verify this configuration instead of the parametric sweep")
		maxStates  = flag.Int("max-states", 5_000_000, "state bound per exploration")
		seeds      = flag.Int("sweep", 24, "number of random parametric instantiations in sweep mode")
		report     = flag.String("report", "", "write a JSON error/diagnostic report to this file on failure")
	)
	budget := diag.BudgetFlags()
	logger := obs.LogFlags()
	flag.Parse()
	logger() // install the structured default logger (-log-level, -log-format)
	ctx, stop := diag.SignalContext()
	defer stop()
	b := budget()
	b.MaxStates = *maxStates
	if *configPath != "" {
		verifyOne(ctx, *configPath, b, *report)
		return
	}
	sweep(ctx, *seeds, b, *report)
}

func sweep(ctx context.Context, seeds int, b nsa.Budget, report string) {
	p := gen.DefaultRandomParams()
	failures, incomplete := 0, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		sys := gen.Random(seed, p)
		m, err := model.Build(sys)
		if err != nil {
			diag.Exit("verify", err, nil, report)
		}
		start := time.Now()
		bad, res, err := observer.VerifyAllRunsContext(ctx, m, b)
		var rerr *nsa.RunError
		stopped := errors.As(err, &rerr)
		if err != nil && !stopped {
			diag.Exit("verify", err, m.Net, report)
		}
		status := "OK"
		switch {
		case bad != "":
			status = "VIOLATION: " + bad
			failures++
		case stopped:
			status = "incomplete (" + rerr.Reason.String() + ")"
			incomplete++
		case !res.Complete:
			status = "incomplete (state bound)"
			incomplete++
		}
		fmt.Printf("seed %3d: %4d tasks-states %8d states %8v  %s\n",
			seed, sys.TaskCount(), res.States, time.Since(start).Round(time.Millisecond), status)
		if stopped && rerr.Reason == nsa.StopCanceled {
			diag.Exit("verify", err, m.Net, report)
		}
	}
	if failures > 0 {
		fmt.Printf("%d instantiations violated a requirement\n", failures)
		os.Exit(diag.ExitVerdict)
	}
	if incomplete > 0 {
		fmt.Printf("%d of %d instantiations not fully explored; the rest satisfy every §3 requirement\n",
			incomplete, seeds)
		os.Exit(diag.ExitBudget)
	}
	fmt.Printf("all %d instantiations satisfy every §3 requirement in every run\n", seeds)
}

func verifyOne(ctx context.Context, path string, b nsa.Budget, report string) {
	f, err := os.Open(path)
	if err != nil {
		diag.Exit("verify", err, nil, report)
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		diag.Exit("verify", err, nil, report)
	}
	m, err := model.Build(sys)
	if err != nil {
		diag.Exit("verify", err, nil, report)
	}
	start := time.Now()
	bad, res, err := observer.VerifyAllRunsContext(ctx, m, b)
	var rerr *nsa.RunError
	stopped := errors.As(err, &rerr)
	if err != nil && !stopped {
		diag.Exit("verify", err, m.Net, report)
	}
	fmt.Printf("explored %d states in %v\n", res.States, time.Since(start))
	if bad != "" {
		fmt.Println("VIOLATION:", bad)
		os.Exit(diag.ExitVerdict)
	}
	if stopped {
		fmt.Println("exploration stopped by the resource budget; no violation found so far")
		diag.Exit("verify", err, m.Net, report)
	}
	if !res.Complete {
		fmt.Println("incomplete exploration (state bound reached); no violation found so far")
		os.Exit(diag.ExitBudget)
	}
	fmt.Println("all §3 requirements hold in every run")
}

// Command synth synthesizes feasible parameter regions locally: a space
// spec (JSON) names 1–3 configuration fields as symbolic dimensions over
// a base system, and the synthesis covers their bounding box with
// verdict-labelled sub-boxes, running the NSA interpretation only at the
// lattice points the cover needs. Every evaluated point checkpoints to
// the crash-safe artifact store, so a synthesis killed at any instant —
// crash, OOM, kill -9 — resumes from its last checkpoint and re-derives
// the deterministic refinement without re-running recorded points.
//
// Subcommands:
//
//	synth run    -space space.json -store DIR [-base system.xml] [-workers N] [-report out.json]
//	synth resume -store DIR [-workers N]
//	synth status -store DIR [-id ID]
//	synth export -store DIR -id ID [-o out.json]
//	synth space  -space space.json [-base system.xml]
//
// run starts (or resumes, when the space's fingerprint matches a stored
// checkpoint) the synthesis and waits for it; -base injects a base system
// from an XML configuration file into the space, so spaces stay small;
// -report writes the final region JSON (the `synth export` document,
// schema synth/region/v1) so scripted callers need no second invocation —
// its counts block carries the evaluation/engine-run accounting that
// synth-vs-grid comparisons read.
// resume relaunches every interrupted synthesis in the store and waits
// for all of them. status lists checkpointed syntheses; export writes the
// region JSON (the same document the service serves at
// /v1/synth/{id}/region). space validates a space, merges -base into it,
// and prints the self-contained result — the exact body POST /v1/synth
// accepts, since the HTTP API takes no -base flag.
//
// Exit codes follow internal/diag: 0 success, 1 operational error, 2
// usage, 4 interrupted (progress checkpointed; rerun resume to continue).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
	"stopwatchsim/internal/synth"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(diag.ExitUsage)
	}
	var code int
	switch os.Args[1] {
	case "run":
		code = cmdRun(os.Args[2:])
	case "resume":
		code = cmdResume(os.Args[2:])
	case "status":
		code = cmdStatus(os.Args[2:])
	case "export":
		code = cmdExport(os.Args[2:])
	case "space":
		code = cmdSpace(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "synth: unknown subcommand %q\n", os.Args[1])
		usage()
		code = diag.ExitUsage
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  synth run    -space space.json -store DIR [-base system.xml] [-workers N] [-report out.json]
  synth resume -store DIR [-workers N]
  synth status -store DIR [-id ID]
  synth export -store DIR -id ID [-o out.json]
  synth space  -space space.json [-base system.xml]
`)
}

// openStore opens the artifact store with the synthesis checkpoint kind
// pinned (exempt from GC).
func openStore(dir string) (*store.Store, error) {
	return store.Open(dir, store.Options{PinnedKinds: []string{synth.StoreKind()}})
}

// fail prints the error and returns its diag exit code.
func fail(err error) int {
	rep := diag.FromError("synth", err, nil)
	fmt.Fprintln(os.Stderr, "synth:", rep.Message)
	return rep.ExitCode
}

// loadSpace reads the space file, injecting the base system from basePath
// (XML) when the space carries none of its own.
func loadSpace(spacePath, basePath string) (*synth.Space, error) {
	f, err := os.Open(spacePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return synth.ParseSpaceBase(f, func() (*config.System, error) {
		if basePath == "" {
			return nil, nil
		}
		bf, err := os.Open(basePath)
		if err != nil {
			return nil, err
		}
		defer bf.Close()
		return config.ReadXML(bf)
	})
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("synth run", flag.ExitOnError)
	spacePath := fs.String("space", "", "synthesis space JSON (required)")
	storeDir := fs.String("store", "", "artifact store directory (required)")
	basePath := fs.String("base", "", "base system XML to inject into the space")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent analysis runs")
	report := fs.String("report", "", "write the final region JSON (synth/region/v1) to this file")
	logger := obs.LogFlagsFor(fs)
	fs.Parse(args)
	lg := logger()
	if *spacePath == "" || *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}

	space, err := loadSpace(*spacePath, *basePath)
	if err != nil {
		return fail(err)
	}

	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: *workers, Tool: "synth", Logger: lg, Store: st})
	defer pool.Close()
	eng := synth.NewEngine(pool, st, lg)

	started, err := eng.Start(space)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "synth %s (%s, %d dims): %d points checkpointed\n",
		started.ID[:12], started.Name, len(started.Space.Dims), len(started.Points))
	code := awaitSyntheses(eng, st, []string{started.ID})
	if *report != "" && code != diag.ExitBudget {
		if final, ok := eng.Get(started.ID); ok && final.Region != nil {
			if err := writeRegion(*report, final.Region); err != nil {
				return fail(err)
			}
		}
	}
	return code
}

// writeRegion writes a region JSON — the exact document `synth export`
// produces — to path.
func writeRegion(path string, r *synth.Region) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdResume(args []string) int {
	fs := flag.NewFlagSet("synth resume", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent analysis runs")
	logger := obs.LogFlagsFor(fs)
	fs.Parse(args)
	lg := logger()
	if *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}

	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: *workers, Tool: "synth", Logger: lg, Store: st})
	defer pool.Close()
	eng := synth.NewEngine(pool, st, lg)

	resumed := eng.ResumeAll()
	if len(resumed) == 0 {
		fmt.Fprintln(os.Stderr, "synth: nothing to resume")
		return diag.ExitOK
	}
	fmt.Fprintf(os.Stderr, "synth: resuming %d synthesis(es)\n", len(resumed))
	return awaitSyntheses(eng, st, resumed)
}

// awaitSyntheses waits for the syntheses to finish, printing each final
// state. On SIGINT/SIGTERM it exits without canceling: the checkpoints
// still say "running", so `synth resume` picks the work back up.
func awaitSyntheses(eng *synth.Engine, st *store.Store, ids []string) int {
	ctx, stop := diag.SignalContext()
	defer stop()
	code := diag.ExitOK
	for _, id := range ids {
		final, err := eng.Wait(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "synth: interrupted; progress is checkpointed, run `synth resume -store %s` to continue\n", st.Dir())
				return diag.ExitBudget
			}
			return fail(err)
		}
		printState(final)
		if final.Status != synth.StatusDone {
			code = diag.ExitError
		}
	}
	return code
}

func printState(st synth.State) {
	c := st.Counts
	fmt.Fprintf(os.Stderr, "synth %s (%s): %s — %d points (%d computed, %d memory, %d disk, %d checkpoint)\n",
		st.ID[:12], st.Name, st.Status, c.Evaluations, c.EngineRuns,
		c.CacheMemory, c.CacheDisk, c.Checkpoint)
	if r := st.Region; r != nil {
		fmt.Fprintf(os.Stderr, "  region: %d boxes (%d feasible, %d infeasible, %d boundary), coverage %.4f\n",
			len(r.Boxes), c.BoxesFeasible, c.BoxesInfeasible, c.BoxesBoundary, r.Coverage)
	}
	if st.Trace != "" {
		fmt.Fprintf(os.Stderr, "  trace %s\n", st.Trace)
	}
	for _, sl := range st.Stragglers {
		fmt.Fprintf(os.Stderr, "  straggler %v: %s", sl.Values, time.Duration(sl.ElapsedNS))
		if sl.Trace != "" {
			fmt.Fprintf(os.Stderr, "  trace %s", sl.Trace)
		}
		fmt.Fprintln(os.Stderr)
	}
}

// cmdSpace validates a space, merges -base into it, and prints the
// self-contained space JSON — suitable as the body of POST /v1/synth.
func cmdSpace(args []string) int {
	fs := flag.NewFlagSet("synth space", flag.ExitOnError)
	spacePath := fs.String("space", "", "synthesis space JSON (required)")
	basePath := fs.String("base", "", "base system XML to inject into the space")
	fs.Parse(args)
	if *spacePath == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	space, err := loadSpace(*spacePath, *basePath)
	if err != nil {
		return fail(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(space); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "synth: space fingerprint %s\n", space.Fingerprint())
	return diag.ExitOK
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("synth status", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	id := fs.String("id", "", "show one synthesis in full")
	fs.Parse(args)
	if *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	// A pool is required by the engine but no jobs run under status.
	pool := jobs.New(jobs.Options{Workers: 1, Tool: "synth"})
	defer pool.Close()
	eng := synth.NewEngine(pool, st, nil)
	eng.RegisterAll()

	if *id != "" {
		state, ok := eng.Get(*id)
		if !ok {
			return fail(fmt.Errorf("unknown synthesis %q", *id))
		}
		printState(state)
		return diag.ExitOK
	}
	all := eng.List()
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "synth: store holds no syntheses")
		return diag.ExitOK
	}
	for _, state := range all {
		fmt.Fprintf(os.Stdout, "%s  %d dims  %-8s  %4d points  %s\n",
			state.ID[:12], len(state.Space.Dims), state.Status, len(state.Points), state.Name)
	}
	return diag.ExitOK
}

func cmdExport(args []string) int {
	fs := flag.NewFlagSet("synth export", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	id := fs.String("id", "", "synthesis ID (required; prefix accepted)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *storeDir == "" || *id == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	st, err := openStore(*storeDir)
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: 1, Tool: "synth"})
	defer pool.Close()
	eng := synth.NewEngine(pool, st, nil)
	eng.RegisterAll()

	state, ok := eng.Get(*id)
	if !ok {
		// Accept an unambiguous ID prefix, as git does.
		var matches []synth.State
		for _, s := range eng.List() {
			if len(*id) >= 4 && len(*id) <= len(s.ID) && s.ID[:len(*id)] == *id {
				matches = append(matches, s)
			}
		}
		if len(matches) != 1 {
			return fail(fmt.Errorf("unknown synthesis %q", *id))
		}
		state = matches[0]
	}
	if state.Region == nil {
		return fail(fmt.Errorf("synthesis %s is %s and has no region yet", state.ID[:12], state.Status))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(state.Region); err != nil {
		return fail(err)
	}
	return diag.ExitOK
}

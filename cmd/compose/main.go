// Command compose runs compositional assume-guarantee schedulability
// analysis: the system is decomposed by hardware module, every module is
// verified standalone against interface contracts derived from its
// senders' task parameters, and a refinement check composes the verdict.
// Systems the decomposition is unsound for (arrival-sensitive receivers,
// module dependency cycles, switched networks) fall back to one global-
// product run with the reason flagged.
//
// Per-module results are content-addressed in the artifact store, so
// re-running after a local change re-analyzes only the modules whose
// content (or assumed interfaces) actually changed.
//
// Subcommands:
//
//	compose run    -c system.xml [-store DIR] [-workers N] [-compare] [-report out.json]
//	compose status -c system.xml -store DIR
//	compose export -c system.xml -store DIR [-o out.json]
//
// run analyzes the configuration and prints the per-module breakdown;
// -compare additionally runs the global product and reports the step
// ratio; -report writes the result JSON (compose/result/v1). status and
// export answer from the store without computing anything.
//
// Exit codes follow internal/diag: 0 schedulable, 1 operational error,
// 2 usage, 3 unschedulable, 6 configuration rejected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(diag.ExitUsage)
	}
	var code int
	switch os.Args[1] {
	case "run":
		code = cmdRun(os.Args[2:])
	case "status":
		code = cmdStatus(os.Args[2:])
	case "export":
		code = cmdExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "compose: unknown subcommand %q\n", os.Args[1])
		usage()
		code = diag.ExitUsage
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  compose run    -c system.xml [-store DIR] [-workers N] [-compare] [-report out.json]
  compose status -c system.xml -store DIR
  compose export -c system.xml -store DIR [-o out.json]
`)
}

func fail(err error) int {
	rep := diag.FromError("compose", err, nil)
	fmt.Fprintln(os.Stderr, "compose:", rep.Message)
	return rep.ExitCode
}

func loadSystem(path string) (*config.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return config.ReadXML(f)
}

// openStore opens the artifact store with the compose document kind
// pinned (exempt from GC).
func openStore(dir string) (*store.Store, error) {
	return store.Open(dir, store.Options{PinnedKinds: []string{compose.StoreKind()}})
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("compose run", flag.ExitOnError)
	confPath := fs.String("c", "", "system configuration XML (required)")
	storeDir := fs.String("store", "", "artifact store directory (enables incremental re-analysis)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent module analyses")
	compare := fs.Bool("compare", false, "also run the global product and report the step ratio")
	report := fs.String("report", "", "write the result JSON (compose/result/v1) to this file")
	logger := obs.LogFlagsFor(fs)
	fs.Parse(args)
	lg := logger()
	if *confPath == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	sys, err := loadSystem(*confPath)
	if err != nil {
		return fail(err)
	}

	var st *store.Store
	if *storeDir != "" {
		if st, err = openStore(*storeDir); err != nil {
			return fail(err)
		}
		defer st.Close()
	}
	pool := jobs.New(jobs.Options{
		Workers: *workers, Tool: "compose", Logger: lg,
		Store: st, Backend: nsa.BackendCompiled,
	})
	defer pool.Close()
	a := compose.New(pool, st, lg)

	ctx, stop := diag.SignalContext()
	defer stop()
	res, err := a.Run(ctx, sys)
	if err != nil {
		return fail(err)
	}
	if *compare && res.Compositional {
		jb, err := pool.Submit(jobs.ConfigRun{Sys: sys})
		if err == nil {
			jb, err = pool.Wait(ctx, jb.ID)
		}
		if err != nil {
			return fail(err)
		}
		if jb.Status == jobs.StatusDone && jb.Outcome.Telemetry != nil {
			res.GlobalSteps = jb.Outcome.Telemetry.Counters.Steps
		}
	}
	printResult(res)
	if *report != "" {
		if err := writeResult(*report, res); err != nil {
			return fail(err)
		}
	}
	if res.Verdict != jobs.VerdictSchedulable {
		return diag.ExitVerdict
	}
	return diag.ExitOK
}

func printResult(res *compose.Result) {
	mode := "compositional"
	if !res.Compositional {
		mode = "global fallback"
	}
	fmt.Fprintf(os.Stderr, "compose %s: %s (%s) in %s\n",
		res.System, res.Verdict, mode, time.Duration(res.ElapsedNS))
	if res.Fallback != "" {
		fmt.Fprintf(os.Stderr, "  fallback: %s\n", res.Fallback)
	}
	for i := range res.Modules {
		m := &res.Modules[i]
		src := "engine"
		switch {
		case m.DocHit:
			src = "store"
		case m.DiskHit:
			src = "disk"
		case m.CacheHit:
			src = "cache"
		}
		fmt.Fprintf(os.Stderr, "  module %d: %s  %d tasks +%d stubs  %d steps  (%s)\n",
			m.Module, m.Verdict, m.Tasks, m.Stubs, m.Steps, src)
	}
	if len(res.Modules) > 0 {
		fmt.Fprintf(os.Stderr, "  modules: %d analyzed, %d cached; %d total steps\n",
			res.ModulesAnalyzed, res.ModulesCached, res.TotalSteps)
	}
	for i := range res.Contracts {
		c := &res.Contracts[i]
		ok := "refined"
		if !c.Refined {
			ok = "VIOLATED"
		}
		fmt.Fprintf(os.Stderr, "  contract %s: %s -> %s  guarantee %d <= assumed %d  %s\n",
			c.Name, c.SenderName, c.ReceiverName, c.Guarantee, c.LatestOffset, ok)
	}
	if res.GlobalSteps > 0 && res.TotalSteps > 0 {
		fmt.Fprintf(os.Stderr, "  global product: %d steps (compositional/global = %.3f)\n",
			res.GlobalSteps, float64(res.TotalSteps)/float64(res.GlobalSteps))
	}
	if res.Trace != "" {
		fmt.Fprintf(os.Stderr, "  trace %s\n", res.Trace)
	}
}

func writeResult(path string, res *compose.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// statusResult loads the persisted result for the configuration at
// confPath from storeDir.
func statusResult(confPath, storeDir string) (*compose.Result, int) {
	sys, err := loadSystem(confPath)
	if err != nil {
		return nil, fail(err)
	}
	st, err := openStore(storeDir)
	if err != nil {
		return nil, fail(err)
	}
	defer st.Close()
	pool := jobs.New(jobs.Options{Workers: 1, Tool: "compose"})
	defer pool.Close()
	res, ok, err := compose.New(pool, st, nil).Status(sys)
	if err != nil {
		return nil, fail(err)
	}
	if !ok {
		return nil, fail(fmt.Errorf("store holds no result for %s (fingerprint %s)", sys.Name, sys.Fingerprint()[:12]))
	}
	return res, diag.ExitOK
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("compose status", flag.ExitOnError)
	confPath := fs.String("c", "", "system configuration XML (required)")
	storeDir := fs.String("store", "", "artifact store directory (required)")
	fs.Parse(args)
	if *confPath == "" || *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	res, code := statusResult(*confPath, *storeDir)
	if res == nil {
		return code
	}
	printResult(res)
	return diag.ExitOK
}

func cmdExport(args []string) int {
	fs := flag.NewFlagSet("compose export", flag.ExitOnError)
	confPath := fs.String("c", "", "system configuration XML (required)")
	storeDir := fs.String("store", "", "artifact store directory (required)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *confPath == "" || *storeDir == "" {
		fs.Usage()
		return diag.ExitUsage
	}
	res, code := statusResult(*confPath, *storeDir)
	if res == nil {
		return code
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return fail(err)
	}
	return diag.ExitOK
}

// custom-model: extending the component library with a user-defined model,
// the workflow the paper's Fig. 3 architecture supports. A token-passing
// bus arbiter and its clients are written in the XTA-like automata language
// (internal/xta), compiled into the same NSA structures as the built-in
// library, and interpreted by the same engine.
package main

import (
	"fmt"
	"log"

	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
	"stopwatchsim/internal/xta"
)

const busModel = `
// A TDMA-like bus: the arbiter grants the bus to each client in turn for
// SLOT ticks; a client transmits only while holding the grant. The grant
// clock g is a stopwatch: it does not advance while the bus is paused.
const int SLOT = 4;
const int CLIENTS = 3;
int next = 0;
int owner = -1;
int sent[3] = 0;
chan grant;
chan release;

process Arbiter() {
    clock g;
    state Idle, Granted { g <= SLOT };
    stopwatch g in Idle;
    init Idle;
    trans
        Idle -> Granted { sync grant!; assign owner := next, next := (next + 1) % CLIENTS, g := 0; },
        Granted -> Idle { guard g == SLOT; sync release!; assign owner := -1; };
}

process Client(const int id) {
    clock w;
    int budget = 0;
    state Wait, Hold, Pause { w <= 1 };
    init Wait;
    trans
        Wait -> Hold { guard next == id; sync grant?; assign budget := SLOT; },
        Hold -> Pause { guard owner == id && budget > 0; assign w := 0; },
        Pause -> Hold { guard w == 1; assign sent[id] := sent[id] + 1, budget := budget - 1; },
        Hold -> Wait { sync release?; };
}

system Arbiter(), Client(0), Client(1), Client(2);
`

func main() {
	m, err := xta.Compile(busModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled user model: %d automata, %d channels, %d variables\n",
		len(m.Net.Automata), len(m.Net.Chans), len(m.Net.Vars))

	tr, res, err := nsa.Simulate(m.Net, 36)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range tr.Events {
		if ev.Kind == nsa.Internal {
			continue
		}
		fmt.Printf("%4d  %-8s", ev.Time, m.Net.ChanName(sa.ChanID(ev.Chan)))
		for _, p := range ev.Parts {
			fmt.Printf(" %s", m.Net.Automata[p.Aut].Name)
		}
		fmt.Println()
	}
	fmt.Printf("run: %d actions over %d time units\n", res.Actions, res.Time)

	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 36})
	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	base := int(m.Vars["sent"])
	for id := 0; id < 3; id++ {
		fmt.Printf("client %d transmitted %d units\n", id, eng.State().Vars[base+id])
	}
}

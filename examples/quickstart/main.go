// Quickstart: define a one-core IMA configuration in code, build the NSA
// instance, interpret it over one hyperperiod and check schedulability.
package main

import (
	"fmt"
	"log"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

func main() {
	// One core, one partition, two fixed-priority tasks.
	sys := &config.System{
		Name:      "quickstart",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name:   "P1",
				Core:   0,
				Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "control", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
					{Name: "logging", Priority: 1, WCET: []int64{9}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 20}},
			},
		},
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	// Algorithm 1: configuration → NSA instance.
	m, err := model.Build(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NSA instance: %d automata over L=%d ticks\n", len(m.Net.Automata), m.Horizon)

	// One deterministic interpretation yields the system operation trace.
	tr, _, err := m.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tr.Format(sys))

	// The §2.1 schedulability criterion over the trace.
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(a.Summary(sys))
	fmt.Print(trace.Gantt(sys, tr, 1))
}

// Avionics: a two-module IMA system in the style of the paper's motivating
// domain — a sensor partition feeds a fusion partition on another module
// through a switched-network virtual link, while a display partition shares
// the second core under a window schedule. The example checks the §3
// correctness requirements on the run and reports end-to-end timing.
//
// avionics.xml in this directory is the same system in the XML config
// format; `go run ./cmd/compose run -c examples/avionics/avionics.xml`
// demonstrates the compositional analyzer's sound fallback path (the
// fusion partition schedules under EDF, so its cross-module receiver
// fails the safe-receiver gate and the global product answers instead).
package main

import (
	"fmt"
	"log"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
)

func buildSystem() *config.System {
	return &config.System{
		Name:      "avionics-demo",
		CoreTypes: []string{"ppc", "arm"},
		Cores: []config.Core{
			{Name: "m1c1", Type: 0, Module: 1}, // sensor module
			{Name: "m2c1", Type: 1, Module: 2}, // fusion/display module
		},
		Partitions: []config.Partition{
			{
				Name: "sensors", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "imu", Priority: 3, WCET: []int64{2, 3}, Period: 25, Deadline: 10},
					{Name: "gps", Priority: 2, WCET: []int64{3, 4}, Period: 50, Deadline: 30},
					{Name: "baro", Priority: 1, WCET: []int64{2, 3}, Period: 50, Deadline: 50},
				},
				Windows: []config.Window{
					{Start: 0, End: 15}, {Start: 25, End: 40},
				},
			},
			{
				Name: "fusion", Core: 1, Policy: config.EDF,
				Tasks: []config.Task{
					{Name: "ekf", Priority: 1, WCET: []int64{5, 6}, Period: 25, Deadline: 25},
					{Name: "nav", Priority: 1, WCET: []int64{4, 5}, Period: 50, Deadline: 40},
				},
				Windows: []config.Window{
					{Start: 10, End: 25}, {Start: 35, End: 50},
				},
			},
			{
				Name: "display", Core: 1, Policy: config.FPNPS,
				Tasks: []config.Task{
					{Name: "hud", Priority: 1, WCET: []int64{3, 4}, Period: 50, Deadline: 50},
				},
				Windows: []config.Window{{Start: 25, End: 35}},
			},
		},
		Messages: []config.Message{
			// Same-period sensor → fusion flows across modules (network).
			{Name: "imu2ekf", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 3},
			{Name: "gps2nav", SrcPart: 0, SrcTask: 1, DstPart: 1, DstTask: 1, MemDelay: 1, NetDelay: 4},
			// Fusion → display within module 2 (memory).
			{Name: "nav2hud", SrcPart: 1, SrcTask: 1, DstPart: 2, DstTask: 0, MemDelay: 2, NetDelay: 6},
		},
	}
}

func main() {
	sys := buildSystem()
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	m, err := model.Build(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d automata, hyperperiod %d, %d jobs\n",
		sys.Name, len(m.Net.Automata), m.Horizon, sys.JobCount())

	// Check the §3 requirements on a run, then simulate for analysis.
	violations, err := observer.VerifyRun(model.MustBuild(sys))
	if err != nil {
		log.Fatal(err)
	}
	if len(violations) == 0 {
		fmt.Println("observers: all correctness requirements satisfied")
	} else {
		fmt.Println("observer violations:", violations)
	}
	tr, _, err := m.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	a, err := trace.Analyze(sys, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(a.Summary(sys))
	fmt.Print(trace.Gantt(sys, tr, 1))

	// End-to-end: sensor completion → network delay → fusion start.
	fmt.Println("\nper-job view of the imu → ekf flow (network delay 3):")
	for i := range a.Jobs {
		j := &a.Jobs[i]
		if j.Job.Part == 1 && j.Job.Task == 0 { // ekf
			fmt.Printf("  ekf#%d: released %d, started %d, finished %d (response %d)\n",
				j.Job.Job, j.Release, j.Start, j.Finish, j.ResponseTime())
		}
	}
}

// edf-vs-fpps: the same workload under the three scheduler models in the
// component library (FPPS, FPNPS, EDF). The task set has a short-deadline
// low-priority task, so fixed priorities miss a deadline that EDF meets —
// the trace makes the difference visible.
package main

import (
	"fmt"
	"log"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

func system(policy config.Policy) *config.System {
	return &config.System{
		Name:      "policy-" + policy.String(),
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name: "app", Core: 0, Policy: policy,
				Tasks: []config.Task{
					// "urgent" has a later priority but the earliest deadline.
					{Name: "heavy", Priority: 3, WCET: []int64{6}, Period: 20, Deadline: 18},
					{Name: "urgent", Priority: 1, WCET: []int64{3}, Period: 20, Deadline: 6},
					{Name: "steady", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 20}},
			},
		},
	}
}

func main() {
	for _, policy := range []config.Policy{config.FPPS, config.FPNPS, config.EDF} {
		sys := system(policy)
		if err := sys.Validate(); err != nil {
			log.Fatal(err)
		}
		m, err := model.Build(sys)
		if err != nil {
			log.Fatal(err)
		}
		tr, _, err := m.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", policy)
		fmt.Print(a.Summary(sys))
		fmt.Print(trace.Gantt(sys, tr, 1))
		fmt.Println()
	}
	fmt.Println("EDF runs the earliest-deadline job first and meets the 6-tick deadline;")
	fmt.Println("both fixed-priority policies serve 'heavy' first and kill 'urgent' at t=6.")
}

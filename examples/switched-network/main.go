// switched-network: the paper's future-work extension in action. Two
// sensor modules feed a fusion module over an AFDX-like switched network;
// the shared switch output port serializes their frames, so the second
// message's end-to-end latency includes queueing behind the first — which
// a fixed worst-case virtual link would hide. The example contrasts the
// same system with and without contention.
package main

import (
	"fmt"
	"log"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

func system(sharedPort bool) *config.System {
	s := &config.System{
		Name:      "afdx-demo",
		CoreTypes: []string{"cpu"},
		Cores: []config.Core{
			{Name: "sensorA", Type: 0, Module: 1},
			{Name: "sensorB", Type: 0, Module: 2},
			{Name: "fusion", Type: 0, Module: 3},
		},
		Partitions: []config.Partition{
			{Name: "PA", Core: 0, Policy: config.FPPS,
				Tasks:   []config.Task{{Name: "camA", Priority: 1, WCET: []int64{2}, Period: 50, Deadline: 50}},
				Windows: []config.Window{{Start: 0, End: 50}}},
			{Name: "PB", Core: 1, Policy: config.FPPS,
				Tasks:   []config.Task{{Name: "camB", Priority: 1, WCET: []int64{2}, Period: 50, Deadline: 50}},
				Windows: []config.Window{{Start: 0, End: 50}}},
			{Name: "PF", Core: 2, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "fuseA", Priority: 2, WCET: []int64{3}, Period: 50, Deadline: 30},
					{Name: "fuseB", Priority: 1, WCET: []int64{3}, Period: 50, Deadline: 30},
				},
				Windows: []config.Window{{Start: 0, End: 50}}},
		},
		Messages: []config.Message{
			{Name: "vlA", SrcPart: 0, SrcTask: 0, DstPart: 2, DstTask: 0, TxTime: 5},
			{Name: "vlB", SrcPart: 1, SrcTask: 0, DstPart: 2, DstTask: 1, TxTime: 5},
		},
	}
	if sharedPort {
		// Both virtual links traverse the same switch output port.
		s.Net = &config.Topology{
			Ports:  []config.Port{{Name: "swOut"}},
			Routes: [][]int{{0}, {0}},
		}
	} else {
		s.Net = &config.Topology{
			Ports:  []config.Port{{Name: "swOutA"}, {Name: "swOutB"}},
			Routes: [][]int{{0}, {1}},
		}
	}
	return s
}

func report(label string, s *config.System) {
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}
	m, err := model.Build(s)
	if err != nil {
		log.Fatal(err)
	}
	var deliveries []string
	rec := nsa.ListenerFunc(func(time int64, tr *nsa.Transition, _ *nsa.Network, _ *nsa.State) {
		if tr.Kind != nsa.Internal && m.ChanInfos[tr.Chan].Role == model.RoleReceive {
			deliveries = append(deliveries,
				fmt.Sprintf("%s@%d", s.Messages[m.ChanInfos[tr.Chan].Link].Name, time))
		}
	})
	tb := m.NewTraceBuilder()
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Listeners: []nsa.Listener{tb, rec}})
	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	a, err := trace.Analyze(s, tb.Trace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("deliveries: %v\n", deliveries)
	fmt.Print(a.Summary(s))
	fmt.Println()
}

func main() {
	report("dedicated switch ports (no contention)", system(false))
	report("shared switch port (frames serialize)", system(true))
	fmt.Println("with the shared port, the second frame queues for 5 extra ticks,")
	fmt.Println("which the fixed-delay virtual-link model of the base paper cannot express.")
}

// configsearch: the §4 workflow — a design problem (partitions without
// bindings or windows) is fed to the configuration-search tool, which uses
// the stopwatch-automata model as its schedulability test on every
// candidate and returns the best schedulable configuration.
package main

import (
	"fmt"
	"log"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/sched"
	"stopwatchsim/internal/trace"
)

func main() {
	problem := &sched.Problem{
		Name:      "flight-control",
		CoreTypes: []string{"cpu"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 1},
		},
		Partitions: []sched.PartitionSpec{
			{Name: "actuation", Policy: config.FPPS, Tasks: []config.Task{
				{Name: "servo", Priority: 3, WCET: []int64{3}, Period: 20, Deadline: 20},
				{Name: "mixer", Priority: 2, WCET: []int64{4}, Period: 40, Deadline: 40},
			}},
			{Name: "guidance", Policy: config.EDF, Tasks: []config.Task{
				{Name: "path", Priority: 1, WCET: []int64{6}, Period: 40, Deadline: 40},
			}},
			{Name: "telemetry", Policy: config.FPNPS, Tasks: []config.Task{
				{Name: "tm", Priority: 1, WCET: []int64{5}, Period: 40, Deadline: 40},
				{Name: "tc", Priority: 2, WCET: []int64{2}, Period: 20, Deadline: 20},
			}},
			{Name: "health", Policy: config.FPPS, Tasks: []config.Task{
				{Name: "bit", Priority: 1, WCET: []int64{4}, Period: 40, Deadline: 40},
			}},
		},
	}

	res, err := sched.Search(problem, sched.Options{Candidates: 48, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidates tried: %d, schedulable: %d\n", res.Tried, res.Schedulable)
	if res.Best == nil {
		fmt.Println("no schedulable configuration found")
		os.Exit(1)
	}
	best := res.Best
	fmt.Printf("best binding (partition -> core): %v\n", best.Binding)
	for i := range best.Sys.Partitions {
		p := &best.Sys.Partitions[i]
		fmt.Printf("  %-10s -> %s, %d windows, first %v\n",
			p.Name, best.Sys.Cores[p.Core].Name, len(p.Windows), p.Windows[0])
	}
	fmt.Printf("minimum relative slack: %.3f\n", -best.Score)
	fmt.Print(best.Analysis.Summary(best.Sys))
	tr, _, err := model.MustBuild(best.Sys).Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Gantt(best.Sys, tr, 1))
}

module stopwatchsim

go 1.22

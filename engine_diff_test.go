package stopwatchsim

import (
	"fmt"
	"testing"

	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

// TestEngineDifferential is the property test backing the event-driven
// runtime: across a spread of random configurations — fixed-priority and
// round-robin schedulers, data-flow messages (broadcast send/receive
// channels), switched networks with port FIFOs, and stopwatch execution
// clocks throughout — the optimized engine must produce a SyncTrace
// byte-identical to the naive full-re-enumeration engine, end in the same
// state, and report the same result.
func TestEngineDifferential(t *testing.T) {
	paramSets := []gen.RandomParams{
		gen.DefaultRandomParams(),
		{MaxCores: 2, MaxPartitions: 3, MaxTasks: 3,
			Periods: []int64{20, 40, 80}, MaxUtil: 0.9, Messages: 3},
		{MaxCores: 1, MaxPartitions: 2, MaxTasks: 4,
			Periods: []int64{10, 20}, MaxUtil: 0.95, Messages: 2},
	}
	const seeds = 20 // 20 seeds × 3 param sets = 60 configurations
	for si, params := range paramSets {
		for seed := int64(0); seed < seeds; seed++ {
			name := fmt.Sprintf("params=%d/seed=%d", si, seed)
			sys := gen.Random(seed, params)
			if seed%2 == 1 {
				// Odd seeds route messages through switch ports,
				// covering the port automata's guard functions and
				// wake hints.
				sys = gen.RandomSwitched(seed, params)
			}
			m, err := model.Build(sys)
			if err != nil {
				t.Fatalf("%s: build: %v", name, err)
			}

			run := func(naive bool) (*nsa.SyncTrace, *nsa.State, nsa.Result, error) {
				tr := &nsa.SyncTrace{}
				eng := nsa.NewEngine(m.Net, nsa.Options{
					Horizon:   m.Horizon,
					Listeners: []nsa.Listener{tr},
					Naive:     naive,
					// Every third configuration also runs the per-step
					// differential check inside the engine itself.
					CheckEngine: !naive && seed%3 == 0,
				})
				res, err := eng.Run()
				return tr, eng.State(), res, err
			}
			wantTr, wantS, wantRes, wantErr := run(true)
			gotTr, gotS, gotRes, gotErr := run(false)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: naive err %v, optimized err %v", name, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("%s: err mismatch:\n naive:     %v\n optimized: %v", name, wantErr, gotErr)
				}
				continue
			}
			if gotRes != wantRes {
				t.Errorf("%s: result %+v, naive %+v", name, gotRes, wantRes)
			}
			diffTraces(t, name, wantTr, gotTr)
			diffStates(t, name, wantS, gotS)
		}
	}
}

func diffTraces(t *testing.T, name string, want, got *nsa.SyncTrace) {
	t.Helper()
	if len(got.Events) != len(want.Events) {
		t.Errorf("%s: %d events, naive %d", name, len(got.Events), len(want.Events))
		return
	}
	for i := range want.Events {
		w, g := &want.Events[i], &got.Events[i]
		if w.Time != g.Time || w.Kind != g.Kind || w.Chan != g.Chan || len(w.Parts) != len(g.Parts) {
			t.Errorf("%s: event %d: got %+v, naive %+v", name, i, *g, *w)
			return
		}
		for j := range w.Parts {
			if w.Parts[j] != g.Parts[j] {
				t.Errorf("%s: event %d part %d: got %+v, naive %+v",
					name, i, j, g.Parts[j], w.Parts[j])
				return
			}
		}
	}
}

func diffStates(t *testing.T, name string, want, got *nsa.State) {
	t.Helper()
	if got.Time != want.Time {
		t.Errorf("%s: final time %d, naive %d", name, got.Time, want.Time)
	}
	for i := range want.Locs {
		if got.Locs[i] != want.Locs[i] {
			t.Errorf("%s: aut %d final loc %d, naive %d", name, i, got.Locs[i], want.Locs[i])
		}
	}
	for i := range want.Clocks {
		if got.Clocks[i] != want.Clocks[i] {
			t.Errorf("%s: clock %d = %d, naive %d", name, i, got.Clocks[i], want.Clocks[i])
		}
	}
	for i := range want.Vars {
		if got.Vars[i] != want.Vars[i] {
			t.Errorf("%s: var %d = %d, naive %d", name, i, got.Vars[i], want.Vars[i])
		}
	}
}

package stopwatchsim

import (
	"fmt"
	"os"
	"testing"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

// runBackend interprets a built model on one engine backend and returns
// everything the differential compares: the synchronization trace, the final
// state, the run result and the error.
func runBackend(m *model.Model, b nsa.Backend, check bool) (*nsa.SyncTrace, *nsa.State, nsa.Result, error) {
	tr := &nsa.SyncTrace{}
	eng := nsa.NewEngine(m.Net, nsa.Options{
		Horizon:     m.Horizon,
		Listeners:   []nsa.Listener{tr},
		Backend:     b,
		CheckEngine: check,
	})
	res, err := eng.Run()
	return tr, eng.State(), res, err
}

// diffBackends runs one configuration on all three backends — naive
// re-enumeration as the oracle, the event-driven runtime, and the compiled
// runtime — and requires byte-identical traces, final states and results.
// When check is true the compiled run additionally enables CheckEngine,
// chaining all three backends inside a single run (compiled primary, shadow
// event-driven runtime, per-step naive comparison).
func diffBackends(t *testing.T, name string, m *model.Model, check bool) {
	t.Helper()
	wantTr, wantS, wantRes, wantErr := runBackend(m, nsa.BackendNaive, false)
	for _, b := range []nsa.Backend{nsa.BackendEvent, nsa.BackendCompiled} {
		gotTr, gotS, gotRes, gotErr := runBackend(m, b, b == nsa.BackendCompiled && check)
		bname := fmt.Sprintf("%s/%s", name, b)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: naive err %v, %s err %v", bname, wantErr, b, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s: err mismatch:\n naive: %v\n %s: %v", bname, wantErr, b, gotErr)
			}
			continue
		}
		if gotRes != wantRes {
			t.Errorf("%s: result %+v, naive %+v", bname, gotRes, wantRes)
		}
		diffTraces(t, bname, wantTr, gotTr)
		diffStates(t, bname, wantS, gotS)
	}
}

// TestEngineDifferential is the property test backing both optimized
// runtimes: across a spread of random configurations — fixed-priority and
// round-robin schedulers, data-flow messages (broadcast send/receive
// channels), switched networks with port FIFOs, and stopwatch execution
// clocks throughout — the event-driven and the compiled engines must each
// produce a SyncTrace byte-identical to the naive full-re-enumeration
// engine, end in the same state, and report the same result. Every third
// seed additionally runs the compiled backend under CheckEngine, which
// chains all three backends per step inside one run.
func TestEngineDifferential(t *testing.T) {
	paramSets := []gen.RandomParams{
		gen.DefaultRandomParams(),
		{MaxCores: 2, MaxPartitions: 3, MaxTasks: 3,
			Periods: []int64{20, 40, 80}, MaxUtil: 0.9, Messages: 3},
		{MaxCores: 1, MaxPartitions: 2, MaxTasks: 4,
			Periods: []int64{10, 20}, MaxUtil: 0.95, Messages: 2},
	}
	const seeds = 20 // 20 seeds × 3 param sets = 60 configurations
	for si, params := range paramSets {
		for seed := int64(0); seed < seeds; seed++ {
			name := fmt.Sprintf("params=%d/seed=%d", si, seed)
			sys := gen.Random(seed, params)
			if seed%2 == 1 {
				// Odd seeds route messages through switch ports,
				// covering the port automata's guard functions and
				// wake hints.
				sys = gen.RandomSwitched(seed, params)
			}
			m, err := model.Build(sys)
			if err != nil {
				t.Fatalf("%s: build: %v", name, err)
			}
			diffBackends(t, name, m, seed%3 == 0)
		}
	}
}

// TestEngineDifferentialQuickstart runs the three-way differential over the
// shipped quickstart example and the campaign points its grid spec would
// materialize from it, so the checked corpus includes hand-written
// configurations alongside the random ones.
func TestEngineDifferentialQuickstart(t *testing.T) {
	f, err := os.Open("examples/quickstart/quickstart.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	diffBackends(t, "quickstart", m, true)

	sf, err := os.Open("examples/quickstart/campaign-grid.json")
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	spec, err := campaign.ParseSpecBase(sf, func() (*config.System, error) { return sys, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range []float64{100, 200, 300} {
		pt := campaign.Point{campaign.ParamWCETPct: pct}
		psys, err := campaign.Materialize(spec, pt)
		if err != nil {
			t.Fatalf("%s: %v", pt.Key(), err)
		}
		pm, err := model.Build(psys)
		if err != nil {
			t.Fatalf("%s: build: %v", pt.Key(), err)
		}
		diffBackends(t, "quickstart/"+pt.Key(), pm, true)
	}
}

func diffTraces(t *testing.T, name string, want, got *nsa.SyncTrace) {
	t.Helper()
	if len(got.Events) != len(want.Events) {
		t.Errorf("%s: %d events, naive %d", name, len(got.Events), len(want.Events))
		return
	}
	for i := range want.Events {
		w, g := &want.Events[i], &got.Events[i]
		if w.Time != g.Time || w.Kind != g.Kind || w.Chan != g.Chan || len(w.Parts) != len(g.Parts) {
			t.Errorf("%s: event %d: got %+v, naive %+v", name, i, *g, *w)
			return
		}
		for j := range w.Parts {
			if w.Parts[j] != g.Parts[j] {
				t.Errorf("%s: event %d part %d: got %+v, naive %+v",
					name, i, j, g.Parts[j], w.Parts[j])
				return
			}
		}
	}
}

func diffStates(t *testing.T, name string, want, got *nsa.State) {
	t.Helper()
	if got.Time != want.Time {
		t.Errorf("%s: final time %d, naive %d", name, got.Time, want.Time)
	}
	for i := range want.Locs {
		if got.Locs[i] != want.Locs[i] {
			t.Errorf("%s: aut %d final loc %d, naive %d", name, i, got.Locs[i], want.Locs[i])
		}
	}
	for i := range want.Clocks {
		if got.Clocks[i] != want.Clocks[i] {
			t.Errorf("%s: clock %d = %d, naive %d", name, i, got.Clocks[i], want.Clocks[i])
		}
	}
	for i := range want.Vars {
		if got.Vars[i] != want.Vars[i] {
			t.Errorf("%s: var %d = %d, naive %d", name, i, got.Vars[i], want.Vars[i])
		}
	}
}

package stopwatchsim

import (
	"testing"

	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
)

// TestEngineSteadyStateZeroAlloc pins the compiled backend's headline
// property: after the first run has sized every arena, heap and cache, a
// Reset+Run cycle over the EngineThroughput configuration allocates nothing.
// Any regression here shows up as a fractional allocs-per-run and fails
// loudly with the count.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	sys := gen.Random(21, gen.RandomParams{
		MaxCores: 2, MaxPartitions: 3, MaxTasks: 3,
		Periods: []int64{20, 40, 80}, MaxUtil: 0.9, Messages: 2,
	})
	m, err := model.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Backend: nsa.BackendCompiled})
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want.Actions == 0 {
		t.Fatal("benchmark configuration fired no actions")
	}
	// A second warm-up run lets lazily grown scratch (heap spill, arena
	// growth on a path the first run missed) reach its fixed point.
	eng.Reset()
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	avg := testing.AllocsPerRun(20, func() {
		eng.Reset()
		got, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("steady-state run diverged: %+v, first run %+v", got, want)
		}
	})
	if avg != 0 {
		t.Fatalf("compiled engine steady state allocates %.2f objects per run, want 0", avg)
	}
}

// TestEngineSteadyStateZeroAllocWithFlight pins the flight recorder's
// contract on the same configuration: an armed recorder (its ring is
// preallocated and labels on the engine hot path are constants) adds
// zero allocations to the steady-state Reset+Run cycle.
func TestEngineSteadyStateZeroAllocWithFlight(t *testing.T) {
	sys := gen.Random(21, gen.RandomParams{
		MaxCores: 2, MaxPartitions: 3, MaxTasks: 3,
		Periods: []int64{20, 40, 80}, MaxUtil: 0.9, Messages: 2,
	})
	m, err := model.Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Backend: nsa.BackendCompiled})
	fl := obs.NewFlightRecorder(obs.DefaultFlightDepth)
	eng.SetFlight(fl)
	want, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want.Actions == 0 {
		t.Fatal("benchmark configuration fired no actions")
	}
	eng.Reset()
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	avg := testing.AllocsPerRun(20, func() {
		eng.Reset()
		got, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("steady-state run diverged: %+v, first run %+v", got, want)
		}
	})
	if avg != 0 {
		t.Fatalf("flight-armed engine steady state allocates %.2f objects per run, want 0", avg)
	}
	if evs := fl.Snapshot(); len(evs) == 0 {
		t.Fatal("flight recorder captured no events across the runs")
	}
}

// Package stopwatchsim reproduces "Stopwatch Automata-Based Model for
// Efficient Schedulability Analysis of Modular Computer Systems"
// (Glonina & Bahmurov, PACT 2017): a parametric Network of Stopwatch
// Automata modeling IMA system operation, whose single deterministic
// interpretation yields the system operation trace used for schedulability
// analysis — exponentially cheaper than Model Checking, which explores all
// interleavings.
//
// The implementation lives under internal/: the expression language (expr),
// stopwatch automata (sa), network composition and interpretation (nsa),
// the XTA-like front end (xta), system configurations (config), the
// concrete component model library and Algorithm 1 (model), system traces
// and the schedulability criterion (trace), the Model Checking baseline
// (mc), the §3 correctness observers (observer), analytic cross-validation
// oracles (analysis), workload generation (gen) and the configuration
// search tool (sched). Command-line tools are under cmd/, runnable
// examples under examples/.
//
// The benchmarks in this package regenerate the paper's experiments; see
// EXPERIMENTS.md for the mapping and cmd/benchtable for the full Table 1
// row range.
package stopwatchsim

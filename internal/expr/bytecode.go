package expr

import "fmt"

// Register-based expression bytecode: the third evaluation tier after the
// tree walkers (ast.go) and the closure chains (compile.go). A resolved
// expression compiles once into a flat instruction slice evaluated by a
// single switch loop over an int64 register file, so the interpretation hot
// path pays no per-node closure calls and no interface dispatch. The
// dominant guard shapes (clock cmp const, var cmp const) compile to single
// superinstructions.
//
// Compilation is conservative: CompileBoolProg / CompileIntProg /
// CompileUpdateProg return nil for any node they cannot prove well-typed
// (unresolved identifiers, type confusion), and callers fall back to the
// closure compiler, which preserves the tree walkers' canonical
// *RuntimeError for malformed nodes. For everything the bytecode does
// accept, its dynamic semantics — including panic messages for division and
// modulo by zero, array indices out of range and domain violations, and the
// evaluation order that determines which panic fires first — match the tree
// walkers exactly; bytecode_fuzz_test.go holds the two tiers to that
// contract.

// opCode enumerates the bytecode instructions. A/B/C are register or index
// operands, K an inline constant (see instr).
type opCode uint8

const (
	opRet   opCode = iota // return R[A]
	opConst               // R[A] = K
	opVar                 // R[A] = vars[B]
	opClock               // R[A] = clocks[B]
	opDyn                 // R[A] = vars[B+R[C]]; panics unless 0 ≤ R[C] < K

	opAdd // R[A] = R[B] + R[C]
	opSub
	opMul
	opDiv // panics when R[C] == 0
	opMod
	opNeg // R[A] = -R[B]
	opNot // R[A] = R[B] ^ 1 (booleans are 0/1 by construction)

	opLT // R[A] = R[B] < R[C] (as 0/1)
	opLE
	opGT
	opGE
	opEQ
	opNE

	// Superinstructions for the guard shapes that dominate interpretation.
	opVarLTK // R[A] = vars[B] < K
	opVarLEK
	opVarGTK
	opVarGEK
	opVarEQK
	opVarNEK
	opClkLTK // R[A] = clocks[B] < K
	opClkLEK
	opClkGTK
	opClkGEK
	opClkEQK
	opClkNEK

	opJmp // pc = A
	opJz  // if R[B] == 0 { pc = A }
	opJnz // if R[B] != 0 { pc = A }

	// Update statements (CompileUpdateProg only).
	opCheckIdx   // panics unless 0 ≤ R[B] < K (array target index check)
	opStoreVar   // vars[A] = R[B], enforcing domains[A]
	opStoreClock // clocks[A] = R[B]
	opStoreDyn   // vars[B+R[C]] = R[A], enforcing domains[B+R[C]]
)

// instr is one bytecode instruction. The operand meaning depends on Op; K
// carries inline constants and array lengths so there is no constant pool.
type instr struct {
	Op      opCode
	A, B, C int32
	K       int64
}

// VarDomain is the declared domain of one variable, consulted by update
// stores. The zero value (Bounded false) admits every int64.
type VarDomain struct {
	Name     string
	Min, Max int64
	Bounded  bool
}

// Prog is a compiled expression or update program. A Prog is immutable
// after compilation and safe for concurrent evaluation as long as each
// evaluation uses its own register slice.
type Prog struct {
	code []instr
	// src[i] is the AST node instruction i reports in *RuntimeError panics
	// (nil for instructions that cannot fail).
	src  []Node
	nreg int
}

// NumRegs is the register count an evaluation needs; callers pass a scratch
// slice of at least this length.
func (p *Prog) NumRegs() int { return p.nreg }

// Len returns the instruction count (diagnostics and tests).
func (p *Prog) Len() int { return len(p.code) }

// EvalBool evaluates a program compiled by CompileBoolProg.
func (p *Prog) EvalBool(vars, clocks, regs []int64) bool {
	return p.run(vars, clocks, regs, nil) != 0
}

// EvalInt evaluates a program compiled by CompileIntProg.
func (p *Prog) EvalInt(vars, clocks, regs []int64) int64 {
	return p.run(vars, clocks, regs, nil)
}

// Exec runs a program compiled by CompileUpdateProg, mutating vars and
// clocks in place. domains, when non-nil, is indexed by global variable
// index and enforced on every store exactly as a bounds-checking
// MutableEnv would (panicking with the identical *RuntimeError).
func (p *Prog) Exec(vars, clocks, regs []int64, domains []VarDomain) {
	p.run(vars, clocks, regs, domains)
}

func (p *Prog) run(vars, clocks, regs []int64, domains []VarDomain) int64 {
	code := p.code
	for pc := 0; pc < len(code); {
		in := &code[pc]
		pc++
		switch in.Op {
		case opRet:
			return regs[in.A]
		case opConst:
			regs[in.A] = in.K
		case opVar:
			regs[in.A] = vars[in.B]
		case opClock:
			regs[in.A] = clocks[in.B]
		case opDyn:
			i := regs[in.C]
			if i < 0 || i >= in.K {
				rtErr(p.src[pc-1], "array index %d out of range [0,%d)", i, in.K)
			}
			regs[in.A] = vars[in.B+int32(i)]
		case opAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
		case opSub:
			regs[in.A] = regs[in.B] - regs[in.C]
		case opMul:
			regs[in.A] = regs[in.B] * regs[in.C]
		case opDiv:
			d := regs[in.C]
			if d == 0 {
				rtErr(p.src[pc-1], "division by zero")
			}
			regs[in.A] = regs[in.B] / d
		case opMod:
			d := regs[in.C]
			if d == 0 {
				rtErr(p.src[pc-1], "modulo by zero")
			}
			regs[in.A] = regs[in.B] % d
		case opNeg:
			regs[in.A] = -regs[in.B]
		case opNot:
			regs[in.A] = regs[in.B] ^ 1
		case opLT:
			regs[in.A] = b2i(regs[in.B] < regs[in.C])
		case opLE:
			regs[in.A] = b2i(regs[in.B] <= regs[in.C])
		case opGT:
			regs[in.A] = b2i(regs[in.B] > regs[in.C])
		case opGE:
			regs[in.A] = b2i(regs[in.B] >= regs[in.C])
		case opEQ:
			regs[in.A] = b2i(regs[in.B] == regs[in.C])
		case opNE:
			regs[in.A] = b2i(regs[in.B] != regs[in.C])
		case opVarLTK:
			regs[in.A] = b2i(vars[in.B] < in.K)
		case opVarLEK:
			regs[in.A] = b2i(vars[in.B] <= in.K)
		case opVarGTK:
			regs[in.A] = b2i(vars[in.B] > in.K)
		case opVarGEK:
			regs[in.A] = b2i(vars[in.B] >= in.K)
		case opVarEQK:
			regs[in.A] = b2i(vars[in.B] == in.K)
		case opVarNEK:
			regs[in.A] = b2i(vars[in.B] != in.K)
		case opClkLTK:
			regs[in.A] = b2i(clocks[in.B] < in.K)
		case opClkLEK:
			regs[in.A] = b2i(clocks[in.B] <= in.K)
		case opClkGTK:
			regs[in.A] = b2i(clocks[in.B] > in.K)
		case opClkGEK:
			regs[in.A] = b2i(clocks[in.B] >= in.K)
		case opClkEQK:
			regs[in.A] = b2i(clocks[in.B] == in.K)
		case opClkNEK:
			regs[in.A] = b2i(clocks[in.B] != in.K)
		case opJmp:
			pc = int(in.A)
		case opJz:
			if regs[in.B] == 0 {
				pc = int(in.A)
			}
		case opJnz:
			if regs[in.B] != 0 {
				pc = int(in.A)
			}
		case opCheckIdx:
			i := regs[in.B]
			if i < 0 || i >= in.K {
				rtErr(p.src[pc-1], "array index %d out of range [0,%d)", i, in.K)
			}
		case opStoreVar:
			storeVar(vars, domains, int(in.A), regs[in.B])
		case opStoreClock:
			clocks[in.A] = regs[in.B]
		case opStoreDyn:
			storeVar(vars, domains, int(in.B)+int(regs[in.C]), regs[in.A])
		}
	}
	return 0
}

// storeVar assigns vars[i] = v under the declared domain, panicking with
// the exact *RuntimeError a bounds-checking environment raises.
func storeVar(vars []int64, domains []VarDomain, i int, v int64) {
	if domains != nil {
		d := &domains[i]
		if d.Bounded && (v < d.Min || v > d.Max) {
			panic(DomainError(v, d.Min, d.Max, d.Name))
		}
	}
	vars[i] = v
}

// DomainError is the *RuntimeError a bounds-checking store raises for a
// value outside a variable's declared domain; shared between the bytecode
// VM and the engine's mutable environments so the messages stay
// byte-identical across backends.
func DomainError(v, min, max int64, name string) *RuntimeError {
	return &RuntimeError{
		Msg:  fmt.Sprintf("value %d outside domain [%d,%d]", v, min, max),
		Expr: name,
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// CompileBoolProg compiles a resolved bool-typed node to bytecode. It
// returns nil when the node is not provably well-typed; callers then fall
// back to the closure path.
func CompileBoolProg(n Node) *Prog {
	b := &progBuilder{ok: true}
	b.compileBool(n, 0)
	b.emit(instr{Op: opRet, A: 0}, nil)
	return b.finish()
}

// CompileIntProg compiles a resolved int-typed node to bytecode, or nil.
func CompileIntProg(n Node) *Prog {
	b := &progBuilder{ok: true}
	b.compileInt(n, 0)
	b.emit(instr{Op: opRet, A: 0}, nil)
	return b.finish()
}

// CompileUpdateProg compiles an assignment list to bytecode, or nil. The
// program preserves StmtList.Apply's evaluation order: per statement, an
// array target's index expression evaluates (and range-checks) before the
// value; scalar targets evaluate the value directly.
func CompileUpdateProg(l StmtList) *Prog {
	b := &progBuilder{ok: true}
	for _, s := range l {
		switch t := s.Target.(type) {
		case *VarRef:
			b.compileInt(s.Value, 0)
			b.emit(instr{Op: opStoreVar, A: int32(t.Index), B: 0}, nil)
		case *ClockRef:
			b.compileInt(s.Value, 0)
			b.emit(instr{Op: opStoreClock, A: int32(t.Index), B: 0}, nil)
		case *DynVarRef:
			b.compileInt(t.Index, 0)
			b.emit(instr{Op: opCheckIdx, B: 0, K: int64(t.Len)}, t)
			b.compileInt(s.Value, 1)
			b.emit(instr{Op: opStoreDyn, A: 1, B: int32(t.Base), C: 0}, nil)
		default:
			b.ok = false
		}
	}
	return b.finish()
}

type progBuilder struct {
	code []instr
	src  []Node
	nreg int
	ok   bool
}

func (b *progBuilder) finish() *Prog {
	if !b.ok {
		return nil
	}
	return &Prog{code: b.code, src: b.src, nreg: b.nreg}
}

func (b *progBuilder) emit(in instr, src Node) int {
	b.code = append(b.code, in)
	b.src = append(b.src, src)
	return len(b.code) - 1
}

// patch sets the jump target of instruction i to the current end of code.
func (b *progBuilder) patch(i int) { b.code[i].A = int32(len(b.code)) }

func (b *progBuilder) reg(r int32) {
	if int(r)+1 > b.nreg {
		b.nreg = int(r) + 1
	}
}

// compileBool emits code leaving the 0/1 value of n in register dst.
func (b *progBuilder) compileBool(n Node, dst int32) {
	if !b.ok {
		return
	}
	b.reg(dst)
	switch n := n.(type) {
	case *BoolLit:
		b.emit(instr{Op: opConst, A: dst, K: b2i(n.Val)}, nil)
	case *Unary:
		if n.Op != OpNot {
			b.ok = false
			return
		}
		b.compileBool(n.X, dst)
		b.emit(instr{Op: opNot, A: dst, B: dst}, nil)
	case *Binary:
		switch n.Op {
		case OpAnd:
			b.compileBool(n.X, dst)
			j := b.emit(instr{Op: opJz, B: dst}, nil)
			b.compileBool(n.Y, dst)
			b.patch(j)
		case OpOr:
			b.compileBool(n.X, dst)
			j := b.emit(instr{Op: opJnz, B: dst}, nil)
			b.compileBool(n.Y, dst)
			b.patch(j)
		case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
			b.compileCmp(n, dst)
		default:
			b.ok = false
		}
	case *Cond:
		b.compileBool(n.C, dst)
		jz := b.emit(instr{Op: opJz, B: dst}, nil)
		b.compileBool(n.A, dst)
		jmp := b.emit(instr{Op: opJmp}, nil)
		b.patch(jz)
		b.compileBool(n.B, dst)
		b.patch(jmp)
	default:
		b.ok = false
	}
}

// cmpOp maps a comparison operator onto the register-register opcode; the
// superinstruction variants are derived by fixed offsets from this base.
func cmpOp(op Op) (opCode, bool) {
	switch op {
	case OpLT:
		return opLT, true
	case OpLE:
		return opLE, true
	case OpGT:
		return opGT, true
	case OpGE:
		return opGE, true
	case OpEQ:
		return opEQ, true
	case OpNE:
		return opNE, true
	}
	return 0, false
}

func (b *progBuilder) compileCmp(n *Binary, dst int32) {
	op, okOp := cmpOp(n.Op)
	if !okOp {
		b.ok = false
		return
	}
	if n.X.Type() == TypeBool || n.Y.Type() == TypeBool {
		// == and != over booleans; other operators are type errors the
		// closure fallback reports canonically.
		if (n.Op != OpEQ && n.Op != OpNE) || n.X.Type() != TypeBool || n.Y.Type() != TypeBool {
			b.ok = false
			return
		}
		b.compileBool(n.X, dst)
		b.compileBool(n.Y, dst+1)
		b.emit(instr{Op: op, A: dst, B: dst, C: dst + 1}, nil)
		b.reg(dst + 1)
		return
	}
	// Superinstruction shapes: clock/var cmp const, possibly mirrored.
	x, y, sop := n.X, n.Y, n.Op
	if _, isLit := x.(*IntLit); isLit {
		if m, okM := mirrorCmp(sop); okM {
			x, y, sop = y, x, m
		}
	}
	if lit, okLit := y.(*IntLit); okLit {
		base, _ := cmpOp(sop)
		off := int32(base - opLT)
		switch r := x.(type) {
		case *ClockRef:
			b.emit(instr{Op: opClkLTK + opCode(off), A: dst, B: int32(r.Index), K: lit.Val}, nil)
			return
		case *VarRef:
			b.emit(instr{Op: opVarLTK + opCode(off), A: dst, B: int32(r.Index), K: lit.Val}, nil)
			return
		}
	}
	b.compileInt(n.X, dst)
	b.compileInt(n.Y, dst+1)
	b.emit(instr{Op: op, A: dst, B: dst, C: dst + 1}, nil)
	b.reg(dst + 1)
}

// compileInt emits code leaving the value of n in register dst.
func (b *progBuilder) compileInt(n Node, dst int32) {
	if !b.ok {
		return
	}
	b.reg(dst)
	switch n := n.(type) {
	case *IntLit:
		b.emit(instr{Op: opConst, A: dst, K: n.Val}, nil)
	case *VarRef:
		b.emit(instr{Op: opVar, A: dst, B: int32(n.Index)}, nil)
	case *ClockRef:
		b.emit(instr{Op: opClock, A: dst, B: int32(n.Index)}, nil)
	case *DynVarRef:
		b.compileInt(n.Index, dst)
		b.emit(instr{Op: opDyn, A: dst, B: int32(n.Base), C: dst, K: int64(n.Len)}, n)
	case *Unary:
		if n.Op != OpNeg {
			b.ok = false
			return
		}
		b.compileInt(n.X, dst)
		b.emit(instr{Op: opNeg, A: dst, B: dst}, nil)
	case *Binary:
		var op opCode
		var src Node
		switch n.Op {
		case OpAdd:
			op = opAdd
		case OpSub:
			op = opSub
		case OpMul:
			op = opMul
		case OpDiv:
			op, src = opDiv, n
		case OpMod:
			op, src = opMod, n
		default:
			b.ok = false
			return
		}
		b.compileInt(n.X, dst)
		b.compileInt(n.Y, dst+1)
		b.emit(instr{Op: op, A: dst, B: dst, C: dst + 1}, src)
		b.reg(dst + 1)
	case *Cond:
		b.compileBool(n.C, dst)
		jz := b.emit(instr{Op: opJz, B: dst}, nil)
		b.compileInt(n.A, dst)
		jmp := b.emit(instr{Op: opJmp}, nil)
		b.patch(jz)
		b.compileInt(n.B, dst)
		b.patch(jmp)
	default:
		b.ok = false
	}
}

// MatchCmpConst matches n as a comparison of a bare variable or clock
// against an integer literal, in either orientation (mirrored comparisons
// are normalized so the variable or clock is on the left). This is the
// dominant guard shape in interpretation; backends use the match to inline
// such guards without any call or dispatch at all.
func MatchCmpConst(n Node) (isClock bool, idx int, op Op, k int64, ok bool) {
	b, isBin := n.(*Binary)
	if !isBin {
		return false, 0, 0, 0, false
	}
	switch b.Op {
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
	default:
		return false, 0, 0, 0, false
	}
	x, y, bop := b.X, b.Y, b.Op
	if _, isLit := x.(*IntLit); isLit {
		m, mok := mirrorCmp(bop)
		if !mok {
			return false, 0, 0, 0, false
		}
		x, y, bop = y, x, m
	}
	lit, isLit := y.(*IntLit)
	if !isLit {
		return false, 0, 0, 0, false
	}
	switch ref := x.(type) {
	case *VarRef:
		return false, ref.Index, bop, lit.Val, true
	case *ClockRef:
		return true, ref.Index, bop, lit.Val, true
	}
	return false, 0, 0, 0, false
}

// CmpConst is one flattened conjunct of a MatchCmpList match: a variable or
// clock compared against a constant.
type CmpConst struct {
	IsClock bool
	Idx     int32
	Op      Op
	K       int64
}

// MatchCmpList matches n as a conjunction (an && tree) of two or more
// MatchCmpConst leaves, appending the conjuncts to dst in evaluation order.
// Evaluating the list left to right with early-false exit is exactly &&'s
// short-circuit semantics, because compare-const leaves cannot fault; the
// compiled backend uses the match to run such guards as a tight compare loop
// with no interpreter dispatch. On failure dst is returned unchanged.
func MatchCmpList(n Node, dst []CmpConst) ([]CmpConst, bool) {
	mark := len(dst)
	dst, ok := appendCmpList(n, dst)
	if !ok || len(dst)-mark < 2 {
		return dst[:mark], false
	}
	return dst, true
}

func appendCmpList(n Node, dst []CmpConst) ([]CmpConst, bool) {
	if b, isBin := n.(*Binary); isBin && b.Op == OpAnd {
		dst, ok := appendCmpList(b.X, dst)
		if !ok {
			return dst, false
		}
		return appendCmpList(b.Y, dst)
	}
	isClock, idx, op, k, ok := MatchCmpConst(n)
	if !ok {
		return dst, false
	}
	return append(dst, CmpConst{IsClock: isClock, Idx: int32(idx), Op: op, K: k}), true
}

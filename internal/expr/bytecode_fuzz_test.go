package expr

import (
	"fmt"
	"testing"
)

// treeGen deterministically grows resolved, well-typed expression trees
// from a byte stream, so the fuzzer explores tree shapes rather than
// parser input. The vocabulary matches testScope: vars x(0), y(1),
// arr(2..4), clocks t(0), u(1).
type treeGen struct {
	data []byte
	pos  int
}

func (g *treeGen) next() byte {
	if g.pos >= len(g.data) {
		g.pos++
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *treeGen) intNode(depth int) Node {
	b := g.next()
	if depth <= 0 {
		switch b % 3 {
		case 0:
			return &IntLit{Val: int64(g.next()%17) - 5}
		case 1:
			return &VarRef{Index: int(g.next() % 5), Name: "v"}
		default:
			return &ClockRef{Index: int(g.next() % 2), Name: "c"}
		}
	}
	switch b % 8 {
	case 0:
		return &IntLit{Val: int64(g.next()%17) - 5}
	case 1:
		return &VarRef{Index: int(g.next() % 5), Name: "v"}
	case 2:
		return &ClockRef{Index: int(g.next() % 2), Name: "c"}
	case 3:
		return &DynVarRef{Base: 2, Len: 3, Index: g.intNode(depth - 1), Name: "arr"}
	case 4:
		return &Unary{Op: OpNeg, X: g.intNode(depth - 1)}
	case 5:
		ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &Binary{Op: ops[g.next()%5], X: g.intNode(depth - 1), Y: g.intNode(depth - 1)}
	case 6:
		return &Cond{C: g.boolNode(depth - 1), A: g.intNode(depth - 1), B: g.intNode(depth - 1)}
	default:
		return &VarRef{Index: int(g.next() % 5), Name: "v"}
	}
}

func (g *treeGen) boolNode(depth int) Node {
	b := g.next()
	if depth <= 0 {
		return &BoolLit{Val: b%2 == 0}
	}
	switch b % 7 {
	case 0:
		return &BoolLit{Val: g.next()%2 == 0}
	case 1:
		ops := []Op{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}
		return &Binary{Op: ops[g.next()%6], X: g.intNode(depth - 1), Y: g.intNode(depth - 1)}
	case 2:
		return &Unary{Op: OpNot, X: g.boolNode(depth - 1)}
	case 3:
		return &Binary{Op: OpAnd, X: g.boolNode(depth - 1), Y: g.boolNode(depth - 1)}
	case 4:
		return &Binary{Op: OpOr, X: g.boolNode(depth - 1), Y: g.boolNode(depth - 1)}
	case 5:
		ops := []Op{OpEQ, OpNE}
		return &Binary{Op: ops[g.next()%2], X: g.boolNode(depth - 1), Y: g.boolNode(depth - 1)}
	default:
		return &Cond{C: g.boolNode(depth - 1), A: g.boolNode(depth - 1), B: g.boolNode(depth - 1)}
	}
}

// run evaluates f, mapping a *RuntimeError panic to its message so outcomes
// compare as plain strings ("ok:<value>" or "panic:<message>").
func runOutcome(f func() string) (out string) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*RuntimeError)
			if !ok {
				panic(r)
			}
			out = "panic:" + re.Error()
		}
	}()
	return "ok:" + f()
}

// FuzzBytecodeVM holds the bytecode VM to the closure tier's semantics:
// any resolved, well-typed tree must produce the identical value — or the
// identical *RuntimeError — through both, including the evaluation order
// that decides which of several possible faults surfaces first.
func FuzzBytecodeVM(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0xff, 0x00, 0x5a, 0x13, 0x44, 0x91, 0x02, 0x77})
	f.Add([]byte("divide and conquer"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &treeGen{data: data}
		wantBool := g.next()%2 == 0
		depth := int(g.next()%4) + 1
		vars := make([]int64, 5)
		clocks := make([]int64, 2)
		for i := range vars {
			vars[i] = int64(g.next()%21) - 10
		}
		for i := range clocks {
			clocks[i] = int64(g.next() % 16)
		}

		if wantBool {
			n := g.boolNode(depth)
			prog := CompileBoolProg(n)
			if prog == nil {
				t.Fatalf("well-typed bool tree rejected: %s", n)
			}
			closure := CompileBool(n)
			regs := make([]int64, prog.NumRegs())
			c := runOutcome(func() string { return fmt.Sprint(closure(vars, clocks)) })
			v := runOutcome(func() string { return fmt.Sprint(prog.EvalBool(vars, clocks, regs)) })
			if c != v {
				t.Errorf("bool tree %s: closure=%s vm=%s", n, c, v)
			}
		} else {
			n := g.intNode(depth)
			prog := CompileIntProg(n)
			if prog == nil {
				t.Fatalf("well-typed int tree rejected: %s", n)
			}
			closure := CompileInt(n)
			regs := make([]int64, prog.NumRegs())
			c := runOutcome(func() string { return fmt.Sprint(closure(vars, clocks)) })
			v := runOutcome(func() string { return fmt.Sprint(prog.EvalInt(vars, clocks, regs)) })
			if c != v {
				t.Errorf("int tree %s: closure=%s vm=%s", n, c, v)
			}
		}
	})
}

package expr

import "fmt"

// Parser is a precedence-climbing (Pratt) expression parser producing
// unresolved ASTs: identifiers stay Ident nodes until Resolve binds them to
// variables, clocks or constants.
type Parser struct {
	lex *Lexer
	tok Token
	src string
}

// NewParser returns a parser over src positioned at the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Src: p.src, Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) error {
	if p.tok.Kind != k {
		return p.errf("expected %s, found %s", k, p.tok.Kind)
	}
	return p.advance()
}

// binding powers per operator, higher binds tighter.
func bindingPower(k TokenKind) int {
	switch k {
	case TokOr:
		return 1
	case TokAnd:
		return 2
	case TokEQ, TokNE:
		return 3
	case TokLT, TokLE, TokGT, TokGE:
		return 4
	case TokPlus, TokMinus:
		return 5
	case TokStar, TokSlash, TokPercent:
		return 6
	}
	return 0
}

func binOp(k TokenKind) Op {
	switch k {
	case TokOr:
		return OpOr
	case TokAnd:
		return OpAnd
	case TokEQ:
		return OpEQ
	case TokNE:
		return OpNE
	case TokLT:
		return OpLT
	case TokLE:
		return OpLE
	case TokGT:
		return OpGT
	case TokGE:
		return OpGE
	case TokPlus:
		return OpAdd
	case TokMinus:
		return OpSub
	case TokStar:
		return OpMul
	case TokSlash:
		return OpDiv
	}
	return OpMod
}

// parseExpr parses an expression with the ternary conditional at the lowest
// precedence level.
func (p *Parser) parseExpr() (Node, error) {
	c, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokQuestion {
		return c, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(TokColon); err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, A: a, B: b}, nil
}

func (p *Parser) parseBinary(minBP int) (Node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		bp := bindingPower(p.tok.Kind)
		if bp < minBP || bp == 0 {
			return lhs, nil
		}
		op := binOp(p.tok.Kind)
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinary(bp + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Node, error) {
	switch p.tok.Kind {
	case TokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so MinInt64-adjacent literals behave.
		if lit, ok := x.(*IntLit); ok {
			return &IntLit{Val: -lit.Val}, nil
		}
		return &Unary{Op: OpNeg, X: x}, nil
	case TokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Node, error) {
	switch p.tok.Kind {
	case TokInt:
		n := &IntLit{Val: p.tok.Val}
		return n, p.advance()
	case TokTrue:
		return &BoolLit{Val: true}, p.advance()
	case TokFalse:
		return &BoolLit{Val: false}, p.advance()
	case TokIdent:
		id := &Ident{Name: p.tok.Text, Pos: p.tok.Pos}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLBracket {
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			id.Index = idx
		}
		return id, nil
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return n, p.expect(TokRParen)
	}
	return nil, p.errf("unexpected %s", p.tok.Kind)
}

// Parse parses a single expression. The result is unresolved: identifiers
// are Ident nodes and Type() is not yet meaningful for them.
func Parse(src string) (Node, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after expression", p.tok.Kind)
	}
	return n, nil
}

// ParseUpdate parses a comma- or semicolon-separated list of assignments,
// e.g. "x := 0, n := n + 1". An empty source yields an empty list.
func ParseUpdate(src string) (StmtList, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var list StmtList
	if p.tok.Kind == TokEOF {
		return list, nil
	}
	for {
		if p.tok.Kind != TokIdent {
			return nil, p.errf("expected assignment target, found %s", p.tok.Kind)
		}
		target := &Ident{Name: p.tok.Text, Pos: p.tok.Pos}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLBracket {
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			target.Index = idx
		}
		if err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, Stmt{Target: target, Value: val})
		switch p.tok.Kind {
		case TokComma, TokSemi:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokEOF { // trailing separator
				return list, nil
			}
		case TokEOF:
			return list, nil
		default:
			return nil, p.errf("expected ',' or end of update, found %s", p.tok.Kind)
		}
	}
}

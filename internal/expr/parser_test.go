package expr

import (
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	// Parse then String; re-parsing the String must produce the same String
	// (fixed-point), which checks precedence handling.
	srcs := []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"a && b || c",
		"a || b && c",
		"!(a && b)",
		"x < 10 && y >= 2",
		"c ? 1 : 0",
		"a == b != c", // (a==b) != c where a,b int and c bool — shape only here
		"-x + 3",
		"arr[i + 1] * 2",
		"1 - 2 - 3", // left associativity
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		s1 := n1.String()
		n2, err := Parse(s1)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", s1, err)
			continue
		}
		if s2 := n2.String(); s1 != s2 {
			t.Errorf("Parse(%q): not a fixed point: %q then %q", src, s1, s2)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	env := testEnv{}
	sc := MapScope{}
	check := func(src string, want int64) {
		t.Helper()
		n := MustParseResolve(src, sc, TypeInt)
		if got := n.EvalInt(env); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
	check("1 + 2 * 3", 7)
	check("(1 + 2) * 3", 9)
	check("10 - 4 - 3", 3)
	check("10 - (4 - 3)", 9)
	check("7 / 2", 3)
	check("7 % 2", 1)
	check("-7 / 2", -3)
	check("2 * 3 % 4", 2)
	check("1 + 2 == 3 ? 10 : 20", 10)
	check("true ? 1 : 2", 1)
	check("false ? 1 : 2", 2)
	check("true ? false ? 1 : 2 : 3", 2) // nested ternary associates right

	checkB := func(src string, want bool) {
		t.Helper()
		n := MustParseResolve(src, sc, TypeBool)
		if got := n.EvalBool(env); got != want {
			t.Errorf("%q = %t, want %t", src, got, want)
		}
	}
	checkB("true || false && false", true) // && binds tighter
	checkB("(true || false) && false", false)
	checkB("!true || true", true)
	checkB("1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3", true)
	checkB("1 == 1 != false", true)
	checkB("not false", true)
	checkB("true and not false or false", true)
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "a[", "a[1", "* 2", "1 2", "a ? b", "a ? b :",
		"a &&", "][", "1 + @",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseUpdateBasics(t *testing.T) {
	l, err := ParseUpdate("x := 1, y := x + 2; arr[0] := 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 {
		t.Fatalf("len = %d, want 3", len(l))
	}
	if l[0].String() != "x := 1" {
		t.Errorf("stmt 0 = %q", l[0].String())
	}
	if l[2].Target.(*Ident).Name != "arr" {
		t.Errorf("stmt 2 target = %v", l[2].Target)
	}
}

func TestParseUpdateEmpty(t *testing.T) {
	l, err := ParseUpdate("   ")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 0 {
		t.Errorf("len = %d, want 0", len(l))
	}
}

func TestParseUpdateTrailingComma(t *testing.T) {
	l, err := ParseUpdate("x := 1,")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 1 {
		t.Errorf("len = %d, want 1", len(l))
	}
}

func TestParseUpdateErrors(t *testing.T) {
	for _, src := range []string{
		"x", "x 1", "1 := 2", "x := ", "x := 1 y := 2", "x[ := 1",
	} {
		if _, err := ParseUpdate(src); err == nil {
			t.Errorf("ParseUpdate(%q): expected error", src)
		}
	}
}

func TestNegativeLiteralFold(t *testing.T) {
	n, err := Parse("-5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := n.(*IntLit)
	if !ok || lit.Val != -5 {
		t.Errorf("Parse(-5) = %#v, want IntLit{-5}", n)
	}
}

package expr

// Compiled evaluation: resolved ASTs are flattened into closure chains that
// read the raw variable and clock arrays directly, bypassing both the
// interface dispatch of Node.EvalBool/EvalInt and the Env indirection. The
// interpretation hot loop evaluates the same small guard expressions millions
// of times, so the dominant shapes (clock cmp const, var cmp const) get
// dedicated single-closure fast paths.
//
// Compiled functions preserve the dynamic semantics of the tree walkers
// exactly, including *RuntimeError panics for division/modulo by zero and
// array indices out of range.

// BoolFn is a compiled boolean expression, evaluated against the raw
// variable and clock value arrays (the backing slices of a network state).
type BoolFn func(vars, clocks []int64) bool

// IntFn is a compiled integer expression.
type IntFn func(vars, clocks []int64) int64

// CompileBool compiles a resolved bool-typed node. The returned function
// panics with *RuntimeError exactly where EvalBool would.
func CompileBool(n Node) BoolFn {
	switch n := n.(type) {
	case *BoolLit:
		v := n.Val
		return func([]int64, []int64) bool { return v }
	case *Unary:
		if n.Op == OpNot {
			x := CompileBool(n.X)
			return func(vars, clocks []int64) bool { return !x(vars, clocks) }
		}
	case *Binary:
		switch n.Op {
		case OpAnd:
			x, y := CompileBool(n.X), CompileBool(n.Y)
			return func(vars, clocks []int64) bool { return x(vars, clocks) && y(vars, clocks) }
		case OpOr:
			x, y := CompileBool(n.X), CompileBool(n.Y)
			return func(vars, clocks []int64) bool { return x(vars, clocks) || y(vars, clocks) }
		case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
			if n.X.Type() == TypeBool {
				x, y := CompileBool(n.X), CompileBool(n.Y)
				if n.Op == OpEQ {
					return func(vars, clocks []int64) bool { return x(vars, clocks) == y(vars, clocks) }
				}
				return func(vars, clocks []int64) bool { return x(vars, clocks) != y(vars, clocks) }
			}
			return compileCmp(n)
		}
	case *Cond:
		c, a, b := CompileBool(n.C), CompileBool(n.A), CompileBool(n.B)
		return func(vars, clocks []int64) bool {
			if c(vars, clocks) {
				return a(vars, clocks)
			}
			return b(vars, clocks)
		}
	}
	// Ident and mistyped nodes: defer to the tree walker, which raises the
	// canonical *RuntimeError for them.
	nn := n
	return func([]int64, []int64) bool { return nn.EvalBool(nopEnv{}) }
}

// compileCmp compiles an integer comparison, with fast paths for the guard
// shapes that dominate interpretation: clock cmp const and var cmp const.
func compileCmp(n *Binary) BoolFn {
	// clock cmp const / const cmp clock.
	if cr, ok := n.X.(*ClockRef); ok {
		if lit, ok := n.Y.(*IntLit); ok {
			return clockConstCmp(n.Op, cr.Index, lit.Val)
		}
	}
	if lit, ok := n.X.(*IntLit); ok {
		if cr, ok := n.Y.(*ClockRef); ok {
			if op, ok := mirrorCmp(n.Op); ok {
				return clockConstCmp(op, cr.Index, lit.Val)
			}
		}
	}
	// var cmp const / const cmp var.
	if vr, ok := n.X.(*VarRef); ok {
		if lit, ok := n.Y.(*IntLit); ok {
			return varConstCmp(n.Op, vr.Index, lit.Val)
		}
	}
	if lit, ok := n.X.(*IntLit); ok {
		if vr, ok := n.Y.(*VarRef); ok {
			if op, ok := mirrorCmp(n.Op); ok {
				return varConstCmp(op, vr.Index, lit.Val)
			}
		}
	}
	x, y := CompileInt(n.X), CompileInt(n.Y)
	switch n.Op {
	case OpLT:
		return func(vars, clocks []int64) bool { return x(vars, clocks) < y(vars, clocks) }
	case OpLE:
		return func(vars, clocks []int64) bool { return x(vars, clocks) <= y(vars, clocks) }
	case OpGT:
		return func(vars, clocks []int64) bool { return x(vars, clocks) > y(vars, clocks) }
	case OpGE:
		return func(vars, clocks []int64) bool { return x(vars, clocks) >= y(vars, clocks) }
	case OpEQ:
		return func(vars, clocks []int64) bool { return x(vars, clocks) == y(vars, clocks) }
	default: // OpNE
		return func(vars, clocks []int64) bool { return x(vars, clocks) != y(vars, clocks) }
	}
}

// mirrorCmp maps "const op x" onto the equivalent "x op' const".
func mirrorCmp(op Op) (Op, bool) {
	switch op {
	case OpLT:
		return OpGT, true
	case OpLE:
		return OpGE, true
	case OpGT:
		return OpLT, true
	case OpGE:
		return OpLE, true
	case OpEQ, OpNE:
		return op, true
	}
	return op, false
}

func clockConstCmp(op Op, i int, k int64) BoolFn {
	switch op {
	case OpLT:
		return func(_, clocks []int64) bool { return clocks[i] < k }
	case OpLE:
		return func(_, clocks []int64) bool { return clocks[i] <= k }
	case OpGT:
		return func(_, clocks []int64) bool { return clocks[i] > k }
	case OpGE:
		return func(_, clocks []int64) bool { return clocks[i] >= k }
	case OpEQ:
		return func(_, clocks []int64) bool { return clocks[i] == k }
	default: // OpNE
		return func(_, clocks []int64) bool { return clocks[i] != k }
	}
}

func varConstCmp(op Op, i int, k int64) BoolFn {
	switch op {
	case OpLT:
		return func(vars, _ []int64) bool { return vars[i] < k }
	case OpLE:
		return func(vars, _ []int64) bool { return vars[i] <= k }
	case OpGT:
		return func(vars, _ []int64) bool { return vars[i] > k }
	case OpGE:
		return func(vars, _ []int64) bool { return vars[i] >= k }
	case OpEQ:
		return func(vars, _ []int64) bool { return vars[i] == k }
	default: // OpNE
		return func(vars, _ []int64) bool { return vars[i] != k }
	}
}

// CompileInt compiles a resolved int-typed node. The returned function
// panics with *RuntimeError exactly where EvalInt would.
func CompileInt(n Node) IntFn {
	switch n := n.(type) {
	case *IntLit:
		v := n.Val
		return func([]int64, []int64) int64 { return v }
	case *VarRef:
		i := n.Index
		return func(vars, _ []int64) int64 { return vars[i] }
	case *ClockRef:
		i := n.Index
		return func(_, clocks []int64) int64 { return clocks[i] }
	case *DynVarRef:
		idx := CompileInt(n.Index)
		base, length, node := n.Base, int64(n.Len), n
		return func(vars, clocks []int64) int64 {
			i := idx(vars, clocks)
			if i < 0 || i >= length {
				rtErr(node, "array index %d out of range [0,%d)", i, length)
			}
			return vars[base+int(i)]
		}
	case *Unary:
		if n.Op == OpNeg {
			x := CompileInt(n.X)
			return func(vars, clocks []int64) int64 { return -x(vars, clocks) }
		}
	case *Binary:
		x, y := CompileInt(n.X), CompileInt(n.Y)
		switch n.Op {
		case OpAdd:
			return func(vars, clocks []int64) int64 { return x(vars, clocks) + y(vars, clocks) }
		case OpSub:
			return func(vars, clocks []int64) int64 { return x(vars, clocks) - y(vars, clocks) }
		case OpMul:
			return func(vars, clocks []int64) int64 { return x(vars, clocks) * y(vars, clocks) }
		case OpDiv:
			node := n
			return func(vars, clocks []int64) int64 {
				// Evaluate left-to-right like EvalInt so a faulting
				// numerator panics before the zero-divisor check.
				a := x(vars, clocks)
				d := y(vars, clocks)
				if d == 0 {
					rtErr(node, "division by zero")
				}
				return a / d
			}
		case OpMod:
			node := n
			return func(vars, clocks []int64) int64 {
				a := x(vars, clocks)
				d := y(vars, clocks)
				if d == 0 {
					rtErr(node, "modulo by zero")
				}
				return a % d
			}
		}
	case *Cond:
		c := CompileBool(n.C)
		a, b := CompileInt(n.A), CompileInt(n.B)
		return func(vars, clocks []int64) int64 {
			if c(vars, clocks) {
				return a(vars, clocks)
			}
			return b(vars, clocks)
		}
	}
	nn := n
	return func([]int64, []int64) int64 { return nn.EvalInt(nopEnv{}) }
}

// nopEnv backs the compile fallbacks for malformed nodes, whose evaluation
// raises a *RuntimeError before touching the environment.
type nopEnv struct{}

func (nopEnv) Var(int) int64   { return 0 }
func (nopEnv) Clock(int) int64 { return 0 }

// Vars appends the global indices of all variables n may read to dst and
// returns it; duplicates are possible. A DynVarRef contributes its whole
// array range, since the element read is only known at evaluation time.
func Vars(n Node, dst []int) []int {
	switch n := n.(type) {
	case *VarRef:
		return append(dst, n.Index)
	case *DynVarRef:
		for i := 0; i < n.Len; i++ {
			dst = append(dst, n.Base+i)
		}
		return Vars(n.Index, dst)
	case *Unary:
		return Vars(n.X, dst)
	case *Binary:
		return Vars(n.Y, Vars(n.X, dst))
	case *Cond:
		return Vars(n.B, Vars(n.A, Vars(n.C, dst)))
	}
	return dst
}

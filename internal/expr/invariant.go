package expr

import (
	"fmt"
	"math"
)

// NoBound is returned by MaxDelay when the invariant places no upper bound
// on time progress.
const NoBound = int64(math.MaxInt64)

// InvariantError reports that an expression is not a valid location
// invariant. Invariants are conjunctions of atoms; every atom referencing a
// clock must be an upper bound of the form clock <= e, clock < e (or the
// mirrored e >= clock, e > clock) with a clock-free right-hand side, matching
// the UPPAAL restriction. Clock-free atoms are allowed freely.
type InvariantError struct {
	Expr string
	Msg  string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("expr: invalid invariant %q: %s", e.Expr, e.Msg)
}

// invAtom is a normalized invariant atom.
type invAtom struct {
	clock  int  // clock index; -1 for clock-free atoms
	strict bool // clock < bound rather than clock <= bound
	bound  Node // clock-free int expression (nil for clock-free atoms)
	free   Node // the original clock-free boolean atom

	boundFn IntFn  // compiled bound (clock atoms)
	freeFn  BoolFn // compiled free atom (clock-free atoms)
}

// Invariant is a checked location invariant supporting both satisfaction
// tests and maximum-delay computation.
type Invariant struct {
	src   string
	atoms []invAtom
}

// True is the trivial invariant (always satisfied, no time bound).
var True = &Invariant{src: "true"}

// CompileInvariant validates a resolved boolean expression as a location
// invariant and compiles it into atom form.
func CompileInvariant(n Node) (*Invariant, error) {
	inv := &Invariant{src: n.String()}
	if err := inv.collect(n); err != nil {
		return nil, err
	}
	return inv, nil
}

// MustCompileInvariant is CompileInvariant panicking on error.
func MustCompileInvariant(n Node) *Invariant {
	inv, err := CompileInvariant(n)
	if err != nil {
		panic(err)
	}
	return inv
}

// ParseInvariant parses, resolves and compiles src as an invariant.
func ParseInvariant(src string, sc Scope) (*Invariant, error) {
	n, err := Parse(src)
	if err != nil {
		return nil, err
	}
	r, err := Resolve(n, sc, TypeBool)
	if err != nil {
		return nil, err
	}
	return CompileInvariant(r)
}

func (inv *Invariant) collect(n Node) error {
	if b, ok := n.(*Binary); ok && b.Op == OpAnd {
		if err := inv.collect(b.X); err != nil {
			return err
		}
		return inv.collect(b.Y)
	}
	if lit, ok := n.(*BoolLit); ok && lit.Val {
		return nil // "true" conjunct
	}
	clocks := Clocks(n, nil)
	if len(clocks) == 0 {
		inv.atoms = append(inv.atoms, invAtom{clock: -1, free: n, freeFn: CompileBool(n)})
		return nil
	}
	b, ok := n.(*Binary)
	if !ok {
		return &InvariantError{Expr: inv.src, Msg: fmt.Sprintf("clock atom %q is not a comparison", n)}
	}
	var clockSide, boundSide Node
	var strict bool
	switch b.Op {
	case OpLE, OpLT:
		clockSide, boundSide, strict = b.X, b.Y, b.Op == OpLT
	case OpGE, OpGT:
		clockSide, boundSide, strict = b.Y, b.X, b.Op == OpGT
	case OpEQ, OpNE, OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return &InvariantError{Expr: inv.src, Msg: fmt.Sprintf("clock atom %q must be an upper bound (<=, <)", n)}
	default:
		return &InvariantError{Expr: inv.src, Msg: fmt.Sprintf("clock atom %q is not a comparison", n)}
	}
	cr, ok := clockSide.(*ClockRef)
	if !ok {
		return &InvariantError{Expr: inv.src, Msg: fmt.Sprintf("clock atom %q must be an upper bound (<=, <) with a bare clock on the bounded side", n)}
	}
	if len(Clocks(boundSide, nil)) != 0 {
		return &InvariantError{Expr: inv.src, Msg: fmt.Sprintf("bound of clock atom %q must be clock-free", n)}
	}
	inv.atoms = append(inv.atoms, invAtom{clock: cr.Index, strict: strict, bound: boundSide, boundFn: CompileInt(boundSide)})
	return nil
}

// String returns the source form of the invariant.
func (inv *Invariant) String() string { return inv.src }

// Holds reports whether the invariant is satisfied in env.
func (inv *Invariant) Holds(env Env) bool {
	for _, a := range inv.atoms {
		if a.clock < 0 {
			if !a.free.EvalBool(env) {
				return false
			}
			continue
		}
		c := env.Clock(a.clock)
		b := a.bound.EvalInt(env)
		if a.strict {
			if c >= b {
				return false
			}
		} else if c > b {
			return false
		}
	}
	return true
}

// MaxDelay returns the largest d ≥ 0 such that the invariant still holds
// after all clocks for which running(clock) is true advance by d. It returns
// NoBound when unconstrained. The invariant must hold in env; callers check
// Holds first (MaxDelay may return a negative value otherwise).
func (inv *Invariant) MaxDelay(env Env, running func(clock int) bool) int64 {
	d := NoBound
	for _, a := range inv.atoms {
		if a.clock < 0 || !running(a.clock) {
			continue // variables and stopped clocks do not change under delay
		}
		c := env.Clock(a.clock)
		b := a.bound.EvalInt(env)
		room := b - c
		if a.strict {
			room--
		}
		if room < d {
			d = room
		}
	}
	return d
}

// HoldsRaw is Holds evaluated directly against the raw variable and clock
// arrays through the compiled atom functions.
func (inv *Invariant) HoldsRaw(vars, clocks []int64) bool {
	for i := range inv.atoms {
		a := &inv.atoms[i]
		if a.clock < 0 {
			if !a.freeFn(vars, clocks) {
				return false
			}
			continue
		}
		c := clocks[a.clock]
		b := a.boundFn(vars, clocks)
		if a.strict {
			if c >= b {
				return false
			}
		} else if c > b {
			return false
		}
	}
	return true
}

// MaxDelayRaw is MaxDelay evaluated against the raw arrays, with the running
// status of each clock given as a stopped bitmap (stopped[c] true means clock
// c does not advance under delay).
func (inv *Invariant) MaxDelayRaw(vars, clocks []int64, stopped []bool) int64 {
	d := NoBound
	for i := range inv.atoms {
		a := &inv.atoms[i]
		if a.clock < 0 || stopped[a.clock] {
			continue
		}
		c := clocks[a.clock]
		b := a.boundFn(vars, clocks)
		room := b - c
		if a.strict {
			room--
		}
		if room < d {
			d = room
		}
	}
	return d
}

// AppendDeps appends the global indices of the variables and clocks the
// invariant reads to vars and clocks (duplicates possible) and returns both.
// Bound expressions are clock-free by construction, so the only clocks are
// the bounded ones.
func (inv *Invariant) AppendDeps(vars, clocks []int) ([]int, []int) {
	for i := range inv.atoms {
		a := &inv.atoms[i]
		if a.clock < 0 {
			vars = Vars(a.free, vars)
			continue
		}
		clocks = append(clocks, a.clock)
		vars = Vars(a.bound, vars)
	}
	return vars, clocks
}

// InvariantAtom is the read-only view of one normalized invariant atom,
// exposed so backend compilers can flatten invariants into their own
// representations. For clock atoms (Clock >= 0) Bound/BoundFn give the
// clock-free upper bound; for clock-free atoms (Clock == -1) Free/FreeFn
// give the boolean conjunct.
type InvariantAtom struct {
	Clock   int
	Strict  bool
	Bound   Node
	Free    Node
	BoundFn IntFn
	FreeFn  BoolFn
}

// AtomList returns the invariant's normalized atoms.
func (inv *Invariant) AtomList() []InvariantAtom {
	out := make([]InvariantAtom, len(inv.atoms))
	for i := range inv.atoms {
		a := &inv.atoms[i]
		out[i] = InvariantAtom{
			Clock:   a.clock,
			Strict:  a.strict,
			Bound:   a.bound,
			Free:    a.free,
			BoundFn: a.boundFn,
			FreeFn:  a.freeFn,
		}
	}
	return out
}

// HasClockBound reports whether the invariant constrains at least one clock.
func (inv *Invariant) HasClockBound() bool {
	for _, a := range inv.atoms {
		if a.clock >= 0 {
			return true
		}
	}
	return false
}

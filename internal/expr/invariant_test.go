package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestInvariantHoldsAndMaxDelay(t *testing.T) {
	sc := testScope()
	allRunning := func(int) bool { return true }

	inv, err := ParseInvariant("t <= 10", sc)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv{vars: make([]int64, 5), clocks: []int64{3, 0}}
	if !inv.Holds(env) {
		t.Error("t<=10 should hold at t=3")
	}
	if d := inv.MaxDelay(env, allRunning); d != 7 {
		t.Errorf("MaxDelay = %d, want 7", d)
	}

	inv2, err := ParseInvariant("t < 10", sc)
	if err != nil {
		t.Fatal(err)
	}
	if d := inv2.MaxDelay(env, allRunning); d != 6 {
		t.Errorf("strict MaxDelay = %d, want 6", d)
	}

	// Stopped clock contributes no bound.
	stopped := func(c int) bool { return c != 0 }
	if d := inv.MaxDelay(env, stopped); d != NoBound {
		t.Errorf("stopped MaxDelay = %d, want NoBound", d)
	}

	// Conjunction takes the minimum.
	inv3, err := ParseInvariant("t <= 10 && u <= 4", sc)
	if err != nil {
		t.Fatal(err)
	}
	env3 := testEnv{vars: make([]int64, 5), clocks: []int64{3, 1}}
	if d := inv3.MaxDelay(env3, allRunning); d != 3 {
		t.Errorf("conjunction MaxDelay = %d, want 3", d)
	}

	// Mirrored form e >= clock.
	inv4, err := ParseInvariant("10 >= t", sc)
	if err != nil {
		t.Fatal(err)
	}
	if d := inv4.MaxDelay(env, allRunning); d != 7 {
		t.Errorf("mirrored MaxDelay = %d, want 7", d)
	}

	// Variable bound.
	inv5, err := ParseInvariant("t <= x + 1", sc)
	if err != nil {
		t.Fatal(err)
	}
	env5 := testEnv{vars: []int64{9, 0, 0, 0, 0}, clocks: []int64{3, 0}}
	if d := inv5.MaxDelay(env5, allRunning); d != 7 {
		t.Errorf("variable-bound MaxDelay = %d, want 7", d)
	}

	// Clock-free atoms must hold but never bound time.
	inv6, err := ParseInvariant("x >= 0 && t <= 5", sc)
	if err != nil {
		t.Fatal(err)
	}
	envBad := testEnv{vars: []int64{-1, 0, 0, 0, 0}, clocks: []int64{0, 0}}
	if inv6.Holds(envBad) {
		t.Error("x>=0 && t<=5 should fail at x=-1")
	}
	envOK := testEnv{vars: []int64{1, 0, 0, 0, 0}, clocks: []int64{2, 0}}
	if d := inv6.MaxDelay(envOK, allRunning); d != 3 {
		t.Errorf("mixed MaxDelay = %d, want 3", d)
	}
}

func TestTrueInvariant(t *testing.T) {
	env := testEnv{}
	if !True.Holds(env) {
		t.Error("True must hold")
	}
	if d := True.MaxDelay(env, func(int) bool { return true }); d != NoBound {
		t.Errorf("True.MaxDelay = %d, want NoBound", d)
	}
	if True.HasClockBound() {
		t.Error("True has no clock bound")
	}
}

func TestTrueLiteralConjunct(t *testing.T) {
	sc := testScope()
	inv, err := ParseInvariant("true && t <= 5", sc)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.HasClockBound() {
		t.Error("want a clock bound")
	}
}

func TestInvalidInvariants(t *testing.T) {
	sc := testScope()
	cases := []struct{ src, sub string }{
		{"t >= 1", "upper bound"},
		{"t == 5", "upper bound"},
		{"t != 5", "upper bound"},
		{"t <= u", "clock-free"},
		{"t + 1 <= 5", "bare clock"},
		{"t <= 5 || x > 0", "not a comparison"},
		{"!(t <= 5)", "not a comparison"},
	}
	for _, c := range cases {
		_, err := ParseInvariant(c.src, sc)
		if err == nil {
			t.Errorf("ParseInvariant(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("ParseInvariant(%q): error %q lacks %q", c.src, err, c.sub)
		}
	}
}

// Property: MaxDelay is exactly the largest admissible delay — the invariant
// holds after advancing running clocks by MaxDelay and (when bounded) fails
// after MaxDelay+1.
func TestQuickMaxDelayTight(t *testing.T) {
	sc := MapScope{
		"c1": {Kind: SymClock, Index: 0},
		"c2": {Kind: SymClock, Index: 1},
	}
	f := func(c1, c2 uint8, b1, b2 uint8, strict bool) bool {
		op := "<="
		if strict {
			op = "<"
		}
		src := "c1 " + op + " " + itoa(int64(b1)) + " && c2 <= " + itoa(int64(b2))
		inv, err := ParseInvariant(src, sc)
		if err != nil {
			return false
		}
		env := testEnv{clocks: []int64{int64(c1), int64(c2)}}
		all := func(int) bool { return true }
		if !inv.Holds(env) {
			return true // precondition of MaxDelay not met; nothing to check
		}
		d := inv.MaxDelay(env, all)
		if d == NoBound {
			return false // both atoms bound running clocks
		}
		after := testEnv{clocks: []int64{int64(c1) + d, int64(c2) + d}}
		if !inv.Holds(after) {
			return false
		}
		beyond := testEnv{clocks: []int64{int64(c1) + d + 1, int64(c2) + d + 1}}
		return !inv.Holds(beyond)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package expr

import "fmt"

// Symbol describes what a name resolves to.
type Symbol struct {
	Kind  SymbolKind
	Index int   // global variable/clock index (element 0 for arrays)
	Len   int   // array length; 0 for scalars
	Const int64 // value for SymConst
}

// SymbolKind enumerates resolvable entity kinds.
type SymbolKind uint8

// Symbol kinds.
const (
	SymVar SymbolKind = iota
	SymClock
	SymConst
)

// Scope resolves names to symbols. Implementations are provided by the
// network builder (global variable/clock tables) and by the XTA front end
// (template parameters and local declarations shadowing globals).
type Scope interface {
	Lookup(name string) (Symbol, bool)
}

// MapScope is a Scope backed by a map, convenient for tests and small models.
type MapScope map[string]Symbol

// Lookup implements Scope.
func (m MapScope) Lookup(name string) (Symbol, bool) {
	s, ok := m[name]
	return s, ok
}

// ResolveError reports a name-resolution or type error.
type ResolveError struct {
	Name string
	Msg  string
}

func (e *ResolveError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("expr: %s: %s", e.Name, e.Msg)
	}
	return "expr: " + e.Msg
}

func resErrf(name, format string, args ...any) error {
	return &ResolveError{Name: name, Msg: fmt.Sprintf(format, args...)}
}

// Resolve binds identifiers in n against sc and type checks the result.
// It returns a new tree; n is not modified. want is the required result type
// (TypeInvalid to accept either).
func Resolve(n Node, sc Scope, want Type) (Node, error) {
	r, err := resolve(n, sc)
	if err != nil {
		return nil, err
	}
	if want != TypeInvalid && r.Type() != want {
		return nil, resErrf("", "expression %q has type %s, want %s", r, r.Type(), want)
	}
	return r, nil
}

func resolve(n Node, sc Scope) (Node, error) {
	switch n := n.(type) {
	case *IntLit, *BoolLit, *VarRef, *ClockRef:
		return n, nil
	case *DynVarRef:
		return n, nil
	case *Ident:
		sym, ok := sc.Lookup(n.Name)
		if !ok {
			return nil, resErrf(n.Name, "undefined name")
		}
		if n.Index == nil {
			switch sym.Kind {
			case SymConst:
				return &IntLit{Val: sym.Const}, nil
			case SymClock:
				return &ClockRef{Index: sym.Index, Name: n.Name}, nil
			default:
				if sym.Len > 0 {
					return nil, resErrf(n.Name, "array used without index")
				}
				return &VarRef{Index: sym.Index, Name: n.Name}, nil
			}
		}
		// Indexed access.
		if sym.Kind != SymVar || sym.Len == 0 {
			return nil, resErrf(n.Name, "indexed access to non-array")
		}
		idx, err := resolve(n.Index, sc)
		if err != nil {
			return nil, err
		}
		if idx.Type() != TypeInt {
			return nil, resErrf(n.Name, "array index must be int, got %s", idx.Type())
		}
		if lit, ok := idx.(*IntLit); ok {
			if lit.Val < 0 || lit.Val >= int64(sym.Len) {
				return nil, resErrf(n.Name, "constant index %d out of range [0,%d)", lit.Val, sym.Len)
			}
			return &VarRef{Index: sym.Index + int(lit.Val), Name: fmt.Sprintf("%s[%d]", n.Name, lit.Val)}, nil
		}
		return &DynVarRef{Base: sym.Index, Len: sym.Len, Index: idx, Name: n.Name}, nil
	case *Unary:
		x, err := resolve(n.X, sc)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpNeg:
			if x.Type() != TypeInt {
				return nil, resErrf("", "operand of unary - must be int, got %s in %q", x.Type(), x)
			}
		case OpNot:
			if x.Type() != TypeBool {
				return nil, resErrf("", "operand of ! must be bool, got %s in %q", x.Type(), x)
			}
		}
		return &Unary{Op: n.Op, X: x}, nil
	case *Binary:
		x, err := resolve(n.X, sc)
		if err != nil {
			return nil, err
		}
		y, err := resolve(n.Y, sc)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLT, OpLE, OpGT, OpGE:
			if x.Type() != TypeInt || y.Type() != TypeInt {
				return nil, resErrf("", "operands of %s must be int in %q", n.Op, n)
			}
		case OpAnd, OpOr:
			if x.Type() != TypeBool || y.Type() != TypeBool {
				return nil, resErrf("", "operands of %s must be bool in %q", n.Op, n)
			}
		case OpEQ, OpNE:
			if x.Type() != y.Type() {
				return nil, resErrf("", "mismatched operand types %s and %s in %q", x.Type(), y.Type(), n)
			}
		}
		return foldBinary(&Binary{Op: n.Op, X: x, Y: y}), nil
	case *Cond:
		c, err := resolve(n.C, sc)
		if err != nil {
			return nil, err
		}
		if c.Type() != TypeBool {
			return nil, resErrf("", "condition of ?: must be bool in %q", n)
		}
		a, err := resolve(n.A, sc)
		if err != nil {
			return nil, err
		}
		b, err := resolve(n.B, sc)
		if err != nil {
			return nil, err
		}
		if a.Type() != b.Type() {
			return nil, resErrf("", "branches of ?: have different types in %q", n)
		}
		return &Cond{C: c, A: a, B: b}, nil
	}
	return nil, resErrf("", "unknown node %T", n)
}

// foldBinary performs constant folding over int-literal operands so that
// e.g. template parameters substituted as constants collapse into literals.
func foldBinary(b *Binary) Node {
	x, xok := b.X.(*IntLit)
	y, yok := b.Y.(*IntLit)
	if !xok || !yok {
		return b
	}
	switch b.Op {
	case OpAdd:
		return &IntLit{Val: x.Val + y.Val}
	case OpSub:
		return &IntLit{Val: x.Val - y.Val}
	case OpMul:
		return &IntLit{Val: x.Val * y.Val}
	case OpDiv:
		if y.Val != 0 {
			return &IntLit{Val: x.Val / y.Val}
		}
	case OpMod:
		if y.Val != 0 {
			return &IntLit{Val: x.Val % y.Val}
		}
	}
	return b
}

// ResolveUpdate resolves every assignment in list against sc, checking that
// targets are variables or clocks and values are int-typed.
func ResolveUpdate(list StmtList, sc Scope) (StmtList, error) {
	out := make(StmtList, 0, len(list))
	for _, s := range list {
		id, ok := s.Target.(*Ident)
		if !ok {
			// Already resolved.
			out = append(out, s)
			continue
		}
		target, err := resolve(id, sc)
		if err != nil {
			return nil, err
		}
		switch target.(type) {
		case *VarRef, *ClockRef, *DynVarRef:
		case *IntLit:
			return nil, resErrf(id.Name, "cannot assign to constant")
		default:
			return nil, resErrf(id.Name, "invalid assignment target")
		}
		val, err := resolve(s.Value, sc)
		if err != nil {
			return nil, err
		}
		if val.Type() != TypeInt {
			return nil, resErrf(id.Name, "assigned value must be int, got %s", val.Type())
		}
		out = append(out, Stmt{Target: target, Value: val})
	}
	return out, nil
}

// Clocks appends the global indices of all clocks referenced by n to dst and
// returns it. Duplicates are possible.
func Clocks(n Node, dst []int) []int {
	switch n := n.(type) {
	case *ClockRef:
		return append(dst, n.Index)
	case *Unary:
		return Clocks(n.X, dst)
	case *Binary:
		return Clocks(n.Y, Clocks(n.X, dst))
	case *Cond:
		return Clocks(n.B, Clocks(n.A, Clocks(n.C, dst)))
	case *DynVarRef:
		return Clocks(n.Index, dst)
	}
	return dst
}

// MustParseResolve is a test/model-construction helper combining Parse and
// Resolve; it panics on error.
func MustParseResolve(src string, sc Scope, want Type) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	r, err := Resolve(n, sc, want)
	if err != nil {
		panic(err)
	}
	return r
}

// MustParseResolveUpdate is the update-list analogue of MustParseResolve.
func MustParseResolveUpdate(src string, sc Scope) StmtList {
	l, err := ParseUpdate(src)
	if err != nil {
		panic(err)
	}
	r, err := ResolveUpdate(l, sc)
	if err != nil {
		panic(err)
	}
	return r
}

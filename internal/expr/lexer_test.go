package expr

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexAllBasics(t *testing.T) {
	tests := []struct {
		src  string
		want []TokenKind
	}{
		{"", []TokenKind{TokEOF}},
		{"   \t\n", []TokenKind{TokEOF}},
		{"42", []TokenKind{TokInt, TokEOF}},
		{"x", []TokenKind{TokIdent, TokEOF}},
		{"x1_y", []TokenKind{TokIdent, TokEOF}},
		{"true false", []TokenKind{TokTrue, TokFalse, TokEOF}},
		{"a+b", []TokenKind{TokIdent, TokPlus, TokIdent, TokEOF}},
		{"a - b * c / d % e", []TokenKind{TokIdent, TokMinus, TokIdent, TokStar, TokIdent, TokSlash, TokIdent, TokPercent, TokIdent, TokEOF}},
		{"(x)", []TokenKind{TokLParen, TokIdent, TokRParen, TokEOF}},
		{"a[3]", []TokenKind{TokIdent, TokLBracket, TokInt, TokRBracket, TokEOF}},
		{"< <= > >= == !=", []TokenKind{TokLT, TokLE, TokGT, TokGE, TokEQ, TokNE, TokEOF}},
		{"! && ||", []TokenKind{TokNot, TokAnd, TokOr, TokEOF}},
		{"not x and y or z", []TokenKind{TokNot, TokIdent, TokAnd, TokIdent, TokOr, TokIdent, TokEOF}},
		{"x := 1", []TokenKind{TokIdent, TokAssign, TokInt, TokEOF}},
		{"x = 1", []TokenKind{TokIdent, TokAssign, TokInt, TokEOF}},
		{"c ? a : b", []TokenKind{TokIdent, TokQuestion, TokIdent, TokColon, TokIdent, TokEOF}},
		{"a, b; c", []TokenKind{TokIdent, TokComma, TokIdent, TokSemi, TokIdent, TokEOF}},
	}
	for _, tt := range tests {
		toks, err := LexAll(tt.src)
		if err != nil {
			t.Errorf("LexAll(%q): unexpected error %v", tt.src, err)
			continue
		}
		got := kinds(toks)
		if len(got) != len(tt.want) {
			t.Errorf("LexAll(%q) = %v, want %v", tt.src, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("LexAll(%q)[%d] = %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestLexIntValue(t *testing.T) {
	toks, err := LexAll("12345")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 12345 {
		t.Errorf("value = %d, want 12345", toks[0].Val)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"@", "#", "1x", "&", "|", "99999999999999999999999999",
	} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q): expected error, got none", src)
		} else if !strings.Contains(err.Error(), "expr:") {
			t.Errorf("LexAll(%q): error %q lacks package prefix", src, err)
		}
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := LexAll("ab + @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T", err)
	}
	if se.Pos != 5 {
		t.Errorf("Pos = %d, want 5", se.Pos)
	}
}

func TestTokenKindString(t *testing.T) {
	if TokLE.String() != "'<='" {
		t.Errorf("TokLE.String() = %q", TokLE.String())
	}
	if got := TokenKind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
}

package expr

import (
	"fmt"
	"strings"
)

// Type is the static type of an expression: integer or boolean.
type Type uint8

// Expression types.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeBool
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Op enumerates unary and binary operators.
type Op uint8

// Operators.
const (
	OpAdd Op = iota // +
	OpSub           // -
	OpMul           // *
	OpDiv           // /
	OpMod           // %
	OpLT            // <
	OpLE            // <=
	OpGT            // >
	OpGE            // >=
	OpEQ            // ==
	OpNE            // !=
	OpAnd           // &&
	OpOr            // ||
	OpNeg           // unary -
	OpNot           // unary !
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "==", OpNE: "!=",
	OpAnd: "&&", OpOr: "||", OpNeg: "-", OpNot: "!",
}

func (o Op) String() string { return opNames[o] }

// Env provides variable and clock values during evaluation. Indices are the
// global indices assigned at resolution time (see Scope).
type Env interface {
	Var(index int) int64
	Clock(index int) int64
}

// MutableEnv additionally allows updates to variables and clocks; it is the
// environment updates (assignments) run against.
type MutableEnv interface {
	Env
	SetVar(index int, v int64)
	SetClock(index int, v int64)
}

// RuntimeError is panicked by evaluation on dynamic errors such as division
// by zero. Engine code recovers it at step boundaries.
type RuntimeError struct {
	Msg  string
	Expr string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("expr: runtime error in %q: %s", e.Expr, e.Msg)
}

func rtErr(n Node, format string, args ...any) {
	panic(&RuntimeError{Msg: fmt.Sprintf(format, args...), Expr: n.String()})
}

// Node is an expression AST node. Before Resolve, identifier nodes are
// Ident; after Resolve every node has a valid Type and can be evaluated.
type Node interface {
	// Type reports the static type; TypeInvalid before resolution.
	Type() Type
	// EvalInt evaluates an int-typed node. It panics with *RuntimeError on
	// dynamic errors and must only be called on resolved int-typed nodes.
	EvalInt(env Env) int64
	// EvalBool evaluates a bool-typed node, with the same caveats.
	EvalBool(env Env) bool
	fmt.Stringer
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// BoolLit is a boolean literal.
type BoolLit struct{ Val bool }

// Ident is an unresolved identifier, optionally with an index expression
// (name[idx]) for array accesses. Resolve replaces it with VarRef, ClockRef
// or IntLit (for constants).
type Ident struct {
	Name  string
	Index Node // nil for scalars
	Pos   int
}

// VarRef is a resolved reference to the variable with the given global index.
type VarRef struct {
	Index int
	Name  string // for diagnostics and String
}

// ClockRef is a resolved reference to the clock with the given global index.
type ClockRef struct {
	Index int
	Name  string
}

// DynVarRef is a resolved array element reference whose index is computed at
// evaluation time: the referenced variable index is Base + value(Index).
type DynVarRef struct {
	Base  int  // global index of element 0
	Len   int  // array length, for bounds checking
	Index Node // int-typed
	Name  string
}

// Unary is a unary operation (OpNeg or OpNot).
type Unary struct {
	Op Op
	X  Node
}

// Binary is a binary operation.
type Binary struct {
	Op   Op
	X, Y Node
}

// Cond is the ternary conditional operator c ? a : b.
type Cond struct {
	C, A, B Node
}

func (n *IntLit) Type() Type    { return TypeInt }
func (n *BoolLit) Type() Type   { return TypeBool }
func (n *Ident) Type() Type     { return TypeInvalid }
func (n *VarRef) Type() Type    { return TypeInt }
func (n *ClockRef) Type() Type  { return TypeInt }
func (n *DynVarRef) Type() Type { return TypeInt }

func (n *Unary) Type() Type {
	if n.Op == OpNot {
		return TypeBool
	}
	return TypeInt
}

func (n *Binary) Type() Type {
	switch n.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return TypeInt
	default:
		return TypeBool
	}
}

func (n *Cond) Type() Type { return n.A.Type() }

func (n *IntLit) EvalInt(Env) int64       { return n.Val }
func (n *IntLit) EvalBool(Env) bool       { rtErr(n, "int literal evaluated as bool"); return false }
func (n *BoolLit) EvalInt(Env) int64      { rtErr(n, "bool literal evaluated as int"); return 0 }
func (n *BoolLit) EvalBool(Env) bool      { return n.Val }
func (n *Ident) EvalInt(Env) int64        { rtErr(n, "unresolved identifier"); return 0 }
func (n *Ident) EvalBool(Env) bool        { rtErr(n, "unresolved identifier"); return false }
func (n *VarRef) EvalInt(env Env) int64   { return env.Var(n.Index) }
func (n *VarRef) EvalBool(Env) bool       { rtErr(n, "variable evaluated as bool"); return false }
func (n *ClockRef) EvalInt(env Env) int64 { return env.Clock(n.Index) }
func (n *ClockRef) EvalBool(Env) bool     { rtErr(n, "clock evaluated as bool"); return false }

func (n *DynVarRef) EvalInt(env Env) int64 {
	i := n.Index.EvalInt(env)
	if i < 0 || i >= int64(n.Len) {
		rtErr(n, "array index %d out of range [0,%d)", i, n.Len)
	}
	return env.Var(n.Base + int(i))
}
func (n *DynVarRef) EvalBool(Env) bool { rtErr(n, "array element evaluated as bool"); return false }

func (n *Unary) EvalInt(env Env) int64 {
	if n.Op != OpNeg {
		rtErr(n, "unary %s evaluated as int", n.Op)
	}
	return -n.X.EvalInt(env)
}

func (n *Unary) EvalBool(env Env) bool {
	if n.Op != OpNot {
		rtErr(n, "unary %s evaluated as bool", n.Op)
	}
	return !n.X.EvalBool(env)
}

func (n *Binary) EvalInt(env Env) int64 {
	x := n.X.EvalInt(env)
	y := n.Y.EvalInt(env)
	switch n.Op {
	case OpAdd:
		return x + y
	case OpSub:
		return x - y
	case OpMul:
		return x * y
	case OpDiv:
		if y == 0 {
			rtErr(n, "division by zero")
		}
		return x / y
	case OpMod:
		if y == 0 {
			rtErr(n, "modulo by zero")
		}
		return x % y
	}
	rtErr(n, "binary %s evaluated as int", n.Op)
	return 0
}

func (n *Binary) EvalBool(env Env) bool {
	switch n.Op {
	case OpAnd:
		return n.X.EvalBool(env) && n.Y.EvalBool(env)
	case OpOr:
		return n.X.EvalBool(env) || n.Y.EvalBool(env)
	}
	if n.X.Type() == TypeBool {
		// == and != over booleans.
		x, y := n.X.EvalBool(env), n.Y.EvalBool(env)
		switch n.Op {
		case OpEQ:
			return x == y
		case OpNE:
			return x != y
		}
		rtErr(n, "operator %s applied to booleans", n.Op)
	}
	x := n.X.EvalInt(env)
	y := n.Y.EvalInt(env)
	switch n.Op {
	case OpLT:
		return x < y
	case OpLE:
		return x <= y
	case OpGT:
		return x > y
	case OpGE:
		return x >= y
	case OpEQ:
		return x == y
	case OpNE:
		return x != y
	}
	rtErr(n, "binary %s evaluated as bool", n.Op)
	return false
}

func (n *Cond) EvalInt(env Env) int64 {
	if n.C.EvalBool(env) {
		return n.A.EvalInt(env)
	}
	return n.B.EvalInt(env)
}

func (n *Cond) EvalBool(env Env) bool {
	if n.C.EvalBool(env) {
		return n.A.EvalBool(env)
	}
	return n.B.EvalBool(env)
}

func (n *IntLit) String() string  { return fmt.Sprintf("%d", n.Val) }
func (n *BoolLit) String() string { return fmt.Sprintf("%t", n.Val) }

func (n *Ident) String() string {
	if n.Index != nil {
		return fmt.Sprintf("%s[%s]", n.Name, n.Index)
	}
	return n.Name
}

func (n *VarRef) String() string   { return n.Name }
func (n *ClockRef) String() string { return n.Name }
func (n *DynVarRef) String() string {
	return fmt.Sprintf("%s[%s]", n.Name, n.Index)
}

func (n *Unary) String() string { return fmt.Sprintf("%s%s", n.Op, paren(n.X)) }

func (n *Binary) String() string {
	return fmt.Sprintf("%s %s %s", paren(n.X), n.Op, paren(n.Y))
}

func (n *Cond) String() string {
	return fmt.Sprintf("%s ? %s : %s", paren(n.C), paren(n.A), paren(n.B))
}

func paren(n Node) string {
	switch n.(type) {
	case *Binary, *Cond:
		return "(" + n.String() + ")"
	}
	return n.String()
}

// Stmt is an assignment statement target := value, the unit of updates.
type Stmt struct {
	// Target is the resolved assignment target (VarRef, ClockRef or
	// DynVarRef), or an Ident before resolution.
	Target Node
	Value  Node
}

func (s Stmt) String() string { return fmt.Sprintf("%s := %s", s.Target, s.Value) }

// Apply executes the assignment against env. It panics with *RuntimeError on
// dynamic errors (unresolved targets, bad indices, type confusion).
func (s Stmt) Apply(env MutableEnv) {
	switch t := s.Target.(type) {
	case *VarRef:
		env.SetVar(t.Index, s.Value.EvalInt(env))
	case *ClockRef:
		env.SetClock(t.Index, s.Value.EvalInt(env))
	case *DynVarRef:
		i := t.Index.EvalInt(env)
		if i < 0 || i >= int64(t.Len) {
			rtErr(t, "array index %d out of range [0,%d)", i, t.Len)
		}
		env.SetVar(t.Base+int(i), s.Value.EvalInt(env))
	default:
		rtErr(s.Target, "invalid assignment target")
	}
}

// StmtList is a sequence of assignments applied in order.
type StmtList []Stmt

func (l StmtList) String() string {
	parts := make([]string, len(l))
	for i, s := range l {
		parts[i] = s.String()
	}
	return strings.Join(parts, ", ")
}

// Apply executes all assignments in order.
func (l StmtList) Apply(env MutableEnv) {
	for _, s := range l {
		s.Apply(env)
	}
}

package expr

import (
	"testing"
)

// evalTiers evaluates a bool node through all three tiers (tree walker,
// closure chain, bytecode VM) and checks they agree, returning the value.
func evalBoolTiers(t *testing.T, src string, vars, clocks []int64) bool {
	t.Helper()
	n := MustParseResolve(src, testScope(), TypeBool)
	tree := n.EvalBool(testEnv{vars: vars, clocks: clocks})
	closure := CompileBool(n)(vars, clocks)
	prog := CompileBoolProg(n)
	if prog == nil {
		t.Fatalf("%q: CompileBoolProg returned nil", src)
	}
	vm := prog.EvalBool(vars, clocks, make([]int64, prog.NumRegs()))
	if tree != closure || tree != vm {
		t.Fatalf("%q: tree=%t closure=%t vm=%t", src, tree, closure, vm)
	}
	return tree
}

func evalIntTiers(t *testing.T, src string, vars, clocks []int64) int64 {
	t.Helper()
	n := MustParseResolve(src, testScope(), TypeInt)
	tree := n.EvalInt(testEnv{vars: vars, clocks: clocks})
	closure := CompileInt(n)(vars, clocks)
	prog := CompileIntProg(n)
	if prog == nil {
		t.Fatalf("%q: CompileIntProg returned nil", src)
	}
	vm := prog.EvalInt(vars, clocks, make([]int64, prog.NumRegs()))
	if tree != closure || tree != vm {
		t.Fatalf("%q: tree=%d closure=%d vm=%d", src, tree, closure, vm)
	}
	return tree
}

func TestBytecodeBoolParity(t *testing.T) {
	exprs := []string{
		"true", "false",
		"t <= 10", "t < 10", "t >= 3", "t > 3", "t == 5", "t != 5",
		"5 >= t", "5 > t", "5 <= t", "5 < t", "5 == t", "5 != t",
		"x <= 4", "x < 4", "x >= 4", "x > 4", "x == 4", "x != 4",
		"4 == x", "4 != x",
		"!(x > 0)",
		"x > 0 && y > 0", "x > 0 || y > 0",
		"x != 0 && 10 / x > 1",   // short circuit must protect the division
		"x == 0 || 10 / x > 1",   // likewise for ||
		"(x > 0) == (y > 0)",     // bool equality
		"(x > 0) != (y > 0)",     // bool inequality
		"t - u >= x + y",         // reg-reg comparison
		"x + y * 2 - arr[1] / (y + 3) % 3 > t - u",
		"x > 0 ? t <= 10 : t > 10", // bool-valued conditional
	}
	envs := [][2][]int64{
		{{4, -2, 7, 8, 9}, {5, 0}},
		{{0, 1, 1, 2, 3}, {10, 4}},
		{{-3, 0, 0, 0, 0}, {3, 3}},
		{{5, 5, -1, -2, -3}, {11, 7}},
	}
	for _, src := range exprs {
		for _, e := range envs {
			evalBoolTiers(t, src, e[0], e[1])
		}
	}
	// Dynamic array access needs x-3 in [0,3).
	for _, e := range [][2][]int64{
		{{4, -2, 7, 8, 9}, {5, 0}},
		{{3, 1, 1, 2, 3}, {10, 4}},
	} {
		evalBoolTiers(t, "arr[x - 3] >= 8 || false", e[0], e[1])
	}
}

func TestBytecodeIntParity(t *testing.T) {
	exprs := []string{
		"7", "x", "y", "t", "u", "N", "-x", "x + y", "x - y", "x * y",
		"x / (y + 3)", "x % (y + 3)", "arr[0]", "arr[2]", "arr[x - 3]",
		"x > y ? x : y", "N * 2 + x", "t - u + arr[1]",
	}
	envs := [][2][]int64{
		{{4, -2, 7, 8, 9}, {5, 0}},
		{{3, 1, 1, 2, 3}, {10, 4}},
	}
	for _, src := range exprs {
		for _, e := range envs {
			evalIntTiers(t, src, e[0], e[1])
		}
	}
}

// TestBytecodeSuperinstructions pins that the dominant guard shapes compile
// to a single comparison instruction plus the return.
func TestBytecodeSuperinstructions(t *testing.T) {
	for _, src := range []string{"t <= 10", "t < 10", "5 > t", "x == 4", "10 <= x", "u != 0"} {
		n := MustParseResolve(src, testScope(), TypeBool)
		prog := CompileBoolProg(n)
		if prog == nil {
			t.Fatalf("%q: not compiled", src)
		}
		if prog.Len() != 2 {
			t.Errorf("%q compiled to %d instructions, want 2 (cmp + ret)", src, prog.Len())
		}
	}
}

// capture runs f and returns the message of the *RuntimeError it panics
// with ("" when it returns normally).
func capture(t *testing.T, f func()) (msg string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*RuntimeError)
			if !ok {
				t.Fatalf("panic %v (%T), want *RuntimeError", r, r)
			}
			msg = re.Error()
		}
	}()
	f()
	return ""
}

func TestBytecodePanicParity(t *testing.T) {
	cases := []struct {
		src  string
		vars []int64
	}{
		{"x / y", []int64{4, 0, 0, 0, 0}},      // division by zero
		{"x % y", []int64{4, 0, 0, 0, 0}},      // modulo by zero
		{"arr[x]", []int64{5, 0, 0, 0, 0}},     // index out of range (high)
		{"arr[y]", []int64{0, -1, 0, 0, 0}},    // index out of range (negative)
		{"arr[x] / y", []int64{9, 0, 0, 0, 0}}, // index panic fires before the division
	}
	clocks := []int64{0, 0}
	for _, c := range cases {
		n := MustParseResolve(c.src, testScope(), TypeInt)
		closureMsg := capture(t, func() { CompileInt(n)(c.vars, clocks) })
		prog := CompileIntProg(n)
		if prog == nil {
			t.Fatalf("%q: not compiled", c.src)
		}
		regs := make([]int64, prog.NumRegs())
		vmMsg := capture(t, func() { prog.EvalInt(c.vars, clocks, regs) })
		if closureMsg == "" || closureMsg != vmMsg {
			t.Errorf("%q: closure panic %q, vm panic %q", c.src, closureMsg, vmMsg)
		}
	}
}

// boundedEnv mirrors the engine's state environment: stores enforce
// declared domains with the shared DomainError.
type boundedEnv struct {
	vars, clocks []int64
	domains      []VarDomain
}

func (e *boundedEnv) Var(i int) int64   { return e.vars[i] }
func (e *boundedEnv) Clock(i int) int64 { return e.clocks[i] }
func (e *boundedEnv) SetVar(i int, v int64) {
	d := &e.domains[i]
	if d.Bounded && (v < d.Min || v > d.Max) {
		panic(DomainError(v, d.Min, d.Max, d.Name))
	}
	e.vars[i] = v
}
func (e *boundedEnv) SetClock(i int, v int64) { e.clocks[i] = v }

func testDomains() []VarDomain {
	return []VarDomain{
		{Name: "x", Min: -10, Max: 10, Bounded: true},
		{Name: "y"},
		{Name: "arr[0]", Min: 0, Max: 100, Bounded: true},
		{Name: "arr[1]", Min: 0, Max: 100, Bounded: true},
		{Name: "arr[2]", Min: 0, Max: 100, Bounded: true},
	}
}

func TestBytecodeUpdateParity(t *testing.T) {
	updates := []string{
		"x = x + 1",
		"t = 0",
		"x = y * 2, y = x", // sequential: second stmt sees first's write
		"arr[x - 3] = arr[0] + 5",
		"arr[2] = arr[2] + 1, u = t + 1",
		"x = y != 0 ? x / y : 0",
	}
	for _, src := range updates {
		l := MustParseResolveUpdate(src, testScope())
		vars1 := []int64{4, 2, 7, 8, 9}
		clocks1 := []int64{5, 1}
		l.Apply(&boundedEnv{vars: vars1, clocks: clocks1, domains: testDomains()})

		prog := CompileUpdateProg(l)
		if prog == nil {
			t.Fatalf("%q: CompileUpdateProg returned nil", src)
		}
		vars2 := []int64{4, 2, 7, 8, 9}
		clocks2 := []int64{5, 1}
		prog.Exec(vars2, clocks2, make([]int64, prog.NumRegs()), testDomains())

		for i := range vars1 {
			if vars1[i] != vars2[i] {
				t.Errorf("%q: vars[%d] env=%d vm=%d", src, i, vars1[i], vars2[i])
			}
		}
		for i := range clocks1 {
			if clocks1[i] != clocks2[i] {
				t.Errorf("%q: clocks[%d] env=%d vm=%d", src, i, clocks1[i], clocks2[i])
			}
		}
	}
}

func TestBytecodeUpdatePanicParity(t *testing.T) {
	cases := []struct {
		src  string
		vars []int64
	}{
		{"x = x * 100", []int64{4, 0, 0, 0, 0}},  // domain violation on x
		{"arr[y] = 1", []int64{0, 7, 0, 0, 0}},   // target index out of range
		{"arr[y] = 1 / x", []int64{0, 7, 0, 0, 0}}, // index panic fires before value eval
		{"x = 1 / y", []int64{4, 0, 0, 0, 0}},    // value panic before store
		{"arr[0] = -1", []int64{0, 0, 5, 0, 0}},  // domain violation through array
	}
	for _, c := range cases {
		l := MustParseResolveUpdate(c.src, testScope())
		vars1 := append([]int64(nil), c.vars...)
		clocks1 := []int64{0, 0}
		envMsg := capture(t, func() {
			l.Apply(&boundedEnv{vars: vars1, clocks: clocks1, domains: testDomains()})
		})

		prog := CompileUpdateProg(l)
		if prog == nil {
			t.Fatalf("%q: not compiled", c.src)
		}
		vars2 := append([]int64(nil), c.vars...)
		clocks2 := []int64{0, 0}
		vmMsg := capture(t, func() {
			prog.Exec(vars2, clocks2, make([]int64, prog.NumRegs()), testDomains())
		})
		if envMsg == "" || envMsg != vmMsg {
			t.Errorf("%q: env panic %q, vm panic %q", c.src, envMsg, vmMsg)
		}
	}
}

// TestBytecodeRejectsOpaque pins that the compiler bails (returns nil) on
// nodes it cannot prove well-typed, leaving them to the closure fallback.
func TestBytecodeRejectsOpaque(t *testing.T) {
	if CompileBoolProg(&Ident{Name: "z"}) != nil {
		t.Error("unresolved identifier compiled")
	}
	if CompileIntProg(&Ident{Name: "z"}) != nil {
		t.Error("unresolved int identifier compiled")
	}
	// Type confusion: int op over a bool operand.
	if CompileIntProg(&Binary{Op: OpAdd, X: &BoolLit{Val: true}, Y: &IntLit{Val: 1}}) != nil {
		t.Error("bool-operand addition compiled")
	}
	// && over an int operand (EvalBool would raise a type error).
	if CompileBoolProg(&Binary{Op: OpAnd, X: &VarRef{Index: 0, Name: "x"}, Y: &BoolLit{Val: true}}) != nil {
		t.Error("int-operand conjunction compiled")
	}
	if CompileUpdateProg(StmtList{{Target: &IntLit{Val: 1}, Value: &IntLit{Val: 2}}}) != nil {
		t.Error("invalid assignment target compiled")
	}
	// One bad statement poisons the whole program.
	l := MustParseResolveUpdate("x = 1", testScope())
	l = append(l, Stmt{Target: &IntLit{Val: 1}, Value: &IntLit{Val: 2}})
	if CompileUpdateProg(l) != nil {
		t.Error("update list with invalid tail compiled")
	}
}

func TestBytecodeZeroAllocEval(t *testing.T) {
	n := MustParseResolve("t <= 10 && x * 3 + 1 > 2 && arr[x - 3] >= 0", testScope(), TypeBool)
	prog := CompileBoolProg(n)
	if prog == nil {
		t.Fatal("not compiled")
	}
	vars := []int64{4, 0, 1, 2, 3}
	clocks := []int64{5, 0}
	regs := make([]int64, prog.NumRegs())
	allocs := testing.AllocsPerRun(100, func() {
		prog.EvalBool(vars, clocks, regs)
	})
	if allocs != 0 {
		t.Errorf("EvalBool allocates %v/op, want 0", allocs)
	}
}

// Package expr implements the expression language used for guards, updates
// and invariants of stopwatch automata: a small C-like language over bounded
// integer variables, constants and clocks.
//
// The pipeline is the classical one: Lex → Parse (precedence climbing) →
// Resolve (name resolution against a Scope + type checking) → Eval.
// Resolved expressions additionally support invariant analysis: extracting
// the maximum delay permitted by clock upper bounds (see Expr and MaxDelay).
package expr

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind uint8

// Token kinds.
const (
	TokEOF      TokenKind = iota
	TokInt                // integer literal
	TokIdent              // identifier
	TokTrue               // "true"
	TokFalse              // "false"
	TokPlus               // +
	TokMinus              // -
	TokStar               // *
	TokSlash              // /
	TokPercent            // %
	TokLParen             // (
	TokRParen             // )
	TokLBracket           // [
	TokRBracket           // ]
	TokLT                 // <
	TokLE                 // <=
	TokGT                 // >
	TokGE                 // >=
	TokEQ                 // ==
	TokNE                 // !=
	TokNot                // !
	TokAnd                // &&
	TokOr                 // ||
	TokAssign             // := or =
	TokComma              // ,
	TokQuestion           // ?
	TokColon              // :
	TokSemi               // ;
)

var tokenNames = map[TokenKind]string{
	TokEOF: "end of input", TokInt: "integer", TokIdent: "identifier",
	TokTrue: "'true'", TokFalse: "'false'",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'", TokPercent: "'%'",
	TokLParen: "'('", TokRParen: "')'", TokLBracket: "'['", TokRBracket: "']'",
	TokLT: "'<'", TokLE: "'<='", TokGT: "'>'", TokGE: "'>='", TokEQ: "'=='", TokNE: "'!='",
	TokNot: "'!'", TokAnd: "'&&'", TokOr: "'||'", TokAssign: "':='", TokComma: "','",
	TokQuestion: "'?'", TokColon: "':'", TokSemi: "';'",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Token is a lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // identifier or literal text
	Val  int64  // value for TokInt
	Pos  int
}

// SyntaxError reports a lexical or parse error with a byte offset into the
// source expression.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d in %q: %s", e.Pos, e.Src, e.Msg)
}

// Lexer splits an expression source string into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

func (l *Lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		var v int64
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			d := int64(l.src[l.pos] - '0')
			if v > (1<<62)/10 {
				return Token{}, l.errf(start, "integer literal overflows int64")
			}
			v = v*10 + d
			l.pos++
		}
		if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
			return Token{}, l.errf(start, "malformed number")
		}
		return Token{Kind: TokInt, Val: v, Text: l.src[start:l.pos], Pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		switch text {
		case "true":
			return Token{Kind: TokTrue, Text: text, Pos: start}, nil
		case "false":
			return Token{Kind: TokFalse, Text: text, Pos: start}, nil
		case "and":
			return Token{Kind: TokAnd, Text: text, Pos: start}, nil
		case "or":
			return Token{Kind: TokOr, Text: text, Pos: start}, nil
		case "not":
			return Token{Kind: TokNot, Text: text, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	}
	l.pos++
	two := func(next byte, k2, k1 TokenKind) (Token, error) {
		if l.pos < len(l.src) && l.src[l.pos] == next {
			l.pos++
			return Token{Kind: k2, Text: l.src[start:l.pos], Pos: start}, nil
		}
		return Token{Kind: k1, Text: l.src[start:l.pos], Pos: start}, nil
	}
	switch c {
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: start}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: start}, nil
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case '/':
		return Token{Kind: TokSlash, Text: "/", Pos: start}, nil
	case '%':
		return Token{Kind: TokPercent, Text: "%", Pos: start}, nil
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: start}, nil
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: start}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case '?':
		return Token{Kind: TokQuestion, Text: "?", Pos: start}, nil
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: start}, nil
	case '<':
		return two('=', TokLE, TokLT)
	case '>':
		return two('=', TokGE, TokGT)
	case '!':
		return two('=', TokNE, TokNot)
	case '=':
		return two('=', TokEQ, TokAssign) // bare '=' accepted as assignment
	case ':':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokAssign, Text: ":=", Pos: start}, nil
		}
		return Token{Kind: TokColon, Text: ":", Pos: start}, nil
	case '&':
		if l.pos < len(l.src) && l.src[l.pos] == '&' {
			l.pos++
			return Token{Kind: TokAnd, Text: "&&", Pos: start}, nil
		}
		return Token{}, l.errf(start, "unexpected '&' (did you mean '&&'?)")
	case '|':
		if l.pos < len(l.src) && l.src[l.pos] == '|' {
			l.pos++
			return Token{Kind: TokOr, Text: "||", Pos: start}, nil
		}
		return Token{}, l.errf(start, "unexpected '|' (did you mean '||'?)")
	}
	return Token{}, l.errf(start, "unexpected character %q", c)
}

// LexAll tokenizes the whole source, for testing and diagnostics.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

package expr

import "testing"

// fuzzScope mirrors the symbol kinds a real model exposes: scalars, an
// array, clocks and a constant, so resolution exercises every lookup path.
func fuzzScope() MapScope {
	return MapScope{
		"x":   {Kind: SymVar, Index: 0},
		"y":   {Kind: SymVar, Index: 1},
		"arr": {Kind: SymVar, Index: 2, Len: 3},
		"t":   {Kind: SymClock, Index: 0},
		"N":   {Kind: SymConst, Const: 10},
	}
}

// FuzzParseResolve asserts the expression front end never panics: any input
// either parses and resolves or is rejected with an error.
func FuzzParseResolve(f *testing.F) {
	for _, seed := range []string{
		"x + y * 2",
		"t <= 10 && x == 0",
		"arr[x % 3] - N",
		"-(x / (y + 1))",
		"!(x > 0) || t == N",
		"x<y?x:-y", // not in the grammar; must error, not panic
		"((((x))))",
		"1 +",
		"arr[",
		"x & y | 3",
		"\x00\xff",
		"999999999999999999999999999999",
	} {
		f.Add(seed)
	}
	sc := fuzzScope()
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		// Resolution of a syntactically valid expression may fail (unknown
		// names, type errors) but must never panic.
		for _, want := range []Type{TypeInt, TypeBool} {
			if _, err := Resolve(n, sc, want); err != nil {
				continue
			}
		}
	})
}

// FuzzParseUpdate covers the statement-list grammar (comma-separated
// assignments) and its resolver.
func FuzzParseUpdate(f *testing.F) {
	for _, seed := range []string{
		"x := 1",
		"x := x + 1, y := 0",
		"arr[x] := arr[y] + N, t := 0",
		"x := y / (x - x)",
		"x :=",
		":= 3",
		"x := 1,",
	} {
		f.Add(seed)
	}
	sc := fuzzScope()
	f.Fuzz(func(t *testing.T, src string) {
		list, err := ParseUpdate(src)
		if err != nil {
			return
		}
		if _, err := ResolveUpdate(list, sc); err != nil {
			return
		}
	})
}

// FuzzParseInvariant covers the invariant sub-grammar (conjunctions of
// clock bounds) used by location invariants.
func FuzzParseInvariant(f *testing.F) {
	for _, seed := range []string{
		"t <= 10",
		"t <= N && t <= x + 1",
		"t < 2",
		"t >= 3", // wrong direction for an upper bound; must error cleanly
		"x <= 10",
		"t <=",
		"true",
	} {
		f.Add(seed)
	}
	sc := fuzzScope()
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := ParseInvariant(src, sc); err != nil {
			return
		}
	})
}

package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// testEnv is a simple Env over slices; zero value has no variables.
type testEnv struct {
	vars   []int64
	clocks []int64
}

func (e testEnv) Var(i int) int64   { return e.vars[i] }
func (e testEnv) Clock(i int) int64 { return e.clocks[i] }

type mutEnv struct {
	vars   []int64
	clocks []int64
}

func (e *mutEnv) Var(i int) int64         { return e.vars[i] }
func (e *mutEnv) Clock(i int) int64       { return e.clocks[i] }
func (e *mutEnv) SetVar(i int, v int64)   { e.vars[i] = v }
func (e *mutEnv) SetClock(i int, v int64) { e.clocks[i] = v }

func testScope() MapScope {
	return MapScope{
		"x":   {Kind: SymVar, Index: 0},
		"y":   {Kind: SymVar, Index: 1},
		"arr": {Kind: SymVar, Index: 2, Len: 3},
		"t":   {Kind: SymClock, Index: 0},
		"u":   {Kind: SymClock, Index: 1},
		"N":   {Kind: SymConst, Const: 10},
	}
}

func TestResolveAndEval(t *testing.T) {
	sc := testScope()
	env := testEnv{vars: []int64{4, -2, 7, 8, 9}, clocks: []int64{5, 0}}
	check := func(src string, want int64) {
		t.Helper()
		n := MustParseResolve(src, sc, TypeInt)
		if got := n.EvalInt(env); got != want {
			t.Errorf("%q = %d, want %d", src, got, want)
		}
	}
	check("x", 4)
	check("y", -2)
	check("arr[0]", 7)
	check("arr[2]", 9)
	check("arr[x - 3]", 8) // dynamic index 1
	check("t", 5)
	check("N", 10)
	check("N * 2 + x", 24)
	check("x + y", 2)
	check("t - u", 5)
	check("x > 0 ? x : -x", 4)

	checkB := func(src string, want bool) {
		t.Helper()
		n := MustParseResolve(src, sc, TypeBool)
		if got := n.EvalBool(env); got != want {
			t.Errorf("%q = %t, want %t", src, got, want)
		}
	}
	checkB("t <= N", true)
	checkB("t < 5", false)
	checkB("x == 4 && y != 0", true)
	checkB("arr[1] >= 8 || false", true)
}

func TestConstantIndexResolvesToVarRef(t *testing.T) {
	sc := testScope()
	n := MustParseResolve("arr[1]", sc, TypeInt)
	vr, ok := n.(*VarRef)
	if !ok {
		t.Fatalf("arr[1] resolved to %T, want *VarRef", n)
	}
	if vr.Index != 3 {
		t.Errorf("index = %d, want 3", vr.Index)
	}
}

func TestConstantFolding(t *testing.T) {
	sc := testScope()
	n := MustParseResolve("N * 2 + 1", sc, TypeInt)
	lit, ok := n.(*IntLit)
	if !ok || lit.Val != 21 {
		t.Errorf("N*2+1 resolved to %v (%T), want IntLit{21}", n, n)
	}
}

func TestResolveErrors(t *testing.T) {
	sc := testScope()
	cases := []struct {
		src  string
		want Type
		sub  string
	}{
		{"zz", TypeInt, "undefined"},
		{"arr", TypeInt, "array used without index"},
		{"x[0]", TypeInt, "non-array"},
		{"arr[true]", TypeInt, "index must be int"},
		{"arr[5]", TypeInt, "out of range"},
		{"arr[-1]", TypeInt, "out of range"},
		{"-true", TypeInt, "must be int"},
		{"!x", TypeBool, "must be bool"},
		{"x && y", TypeBool, "must be bool"},
		{"x + true", TypeInt, "must be int"},
		{"x == true", TypeBool, "mismatched"},
		{"true ? 1 : false", TypeInt, "different types"},
		{"x ? 1 : 2", TypeInt, "must be bool"},
		{"x + 1", TypeBool, "want bool"},
		{"x > 1", TypeInt, "want int"},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		_, err = Resolve(n, sc, c.want)
		if err == nil {
			t.Errorf("Resolve(%q): expected error containing %q", c.src, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Resolve(%q): error %q does not contain %q", c.src, err, c.sub)
		}
	}
}

func TestResolveUpdateAndApply(t *testing.T) {
	sc := testScope()
	upd := MustParseResolveUpdate("x := x + 1, t := 0, arr[y + 1] := x", sc)
	env := &mutEnv{vars: []int64{4, 0, 7, 8, 9}, clocks: []int64{5, 0}}
	upd.Apply(env)
	if env.vars[0] != 5 {
		t.Errorf("x = %d, want 5", env.vars[0])
	}
	if env.clocks[0] != 0 {
		t.Errorf("t = %d, want 0", env.clocks[0])
	}
	if env.vars[3] != 5 { // arr[1] gets new x (sequential semantics)
		t.Errorf("arr[1] = %d, want 5", env.vars[3])
	}
}

func TestResolveUpdateErrors(t *testing.T) {
	sc := testScope()
	for _, src := range []string{
		"zz := 1", "N := 1", "x := true", "arr := 1",
	} {
		l, err := ParseUpdate(src)
		if err != nil {
			t.Fatalf("ParseUpdate(%q): %v", src, err)
		}
		if _, err := ResolveUpdate(l, sc); err == nil {
			t.Errorf("ResolveUpdate(%q): expected error", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	sc := testScope()
	env := testEnv{vars: []int64{0, 0, 0, 0, 0}, clocks: []int64{0, 0}}
	for _, src := range []string{"1 / x", "1 % x", "arr[x + 4]"} {
		n := MustParseResolve(src, sc, TypeInt)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%q: expected panic", src)
					return
				}
				if _, ok := r.(*RuntimeError); !ok {
					t.Errorf("%q: panic value %T, want *RuntimeError", src, r)
				}
			}()
			n.EvalInt(env)
		}()
	}
}

func TestClocksCollection(t *testing.T) {
	sc := testScope()
	n := MustParseResolve("t <= 5 && x > 0 && u < N", sc, TypeBool)
	got := Clocks(n, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Clocks = %v, want [0 1]", got)
	}
}

// Property: for random int expressions built from +,-,*, evaluation is
// homomorphic with a reference big-step evaluator.
func TestQuickEvalMatchesReference(t *testing.T) {
	type refNode struct {
		op   int // 0: lit, 1..3: + - *
		val  int64
		l, r *refNode
	}
	var build func(r *rand.Rand, depth int) *refNode
	build = func(r *rand.Rand, depth int) *refNode {
		if depth <= 0 || r.Intn(3) == 0 {
			return &refNode{op: 0, val: int64(r.Intn(201) - 100)}
		}
		return &refNode{op: 1 + r.Intn(3), l: build(r, depth-1), r: build(r, depth-1)}
	}
	var render func(n *refNode) string
	var eval func(n *refNode) int64
	render = func(n *refNode) string {
		switch n.op {
		case 0:
			if n.val < 0 {
				return "(" + itoa(n.val) + ")"
			}
			return itoa(n.val)
		case 1:
			return "(" + render(n.l) + " + " + render(n.r) + ")"
		case 2:
			return "(" + render(n.l) + " - " + render(n.r) + ")"
		default:
			return "(" + render(n.l) + " * " + render(n.r) + ")"
		}
	}
	eval = func(n *refNode) int64 {
		switch n.op {
		case 0:
			return n.val
		case 1:
			return eval(n.l) + eval(n.r)
		case 2:
			return eval(n.l) - eval(n.r)
		default:
			return eval(n.l) * eval(n.r)
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := build(r, 5)
		src := render(n)
		got := MustParseResolve(src, MapScope{}, TypeInt).EvalInt(testEnv{})
		return got == eval(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

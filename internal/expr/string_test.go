package expr

import (
	"strings"
	"testing"
)

func TestNodeStrings(t *testing.T) {
	sc := testScope()
	cases := []struct{ src, want string }{
		{"1 + 2 * x", "1 + (2 * x)"},
		{"t <= 5", "t <= 5"},
		{"!(x > 0)", "!(x > 0)"},
		{"arr[x]", "arr[x]"},
		{"arr[1]", "arr[1]"},
		{"x > 0 ? x : -x", "(x > 0) ? x : -x"},
		{"true", "true"},
		{"false", "false"},
		{"x % 2 == 0", "(x % 2) == 0"},
		{"x / 2 != 1", "(x / 2) != 1"},
	}
	for _, c := range cases {
		n := MustParseResolve(c.src, sc, TypeInvalid)
		if got := n.String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestStmtListString(t *testing.T) {
	sc := testScope()
	l := MustParseResolveUpdate("x := 1, t := 0", sc)
	if got := l.String(); got != "x := 1, t := 0" {
		t.Errorf("String = %q", got)
	}
	var empty StmtList
	if empty.String() != "" {
		t.Errorf("empty = %q", empty.String())
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt.String() != "int" || TypeBool.String() != "bool" || TypeInvalid.String() != "invalid" {
		t.Error("type names wrong")
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
		OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "==", OpNE: "!=",
		OpAnd: "&&", OpOr: "||", OpNot: "!",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v = %q, want %q", op, op.String(), want)
		}
	}
}

func TestCondEval(t *testing.T) {
	sc := testScope()
	env := testEnv{vars: []int64{1, 0, 0, 0, 0}, clocks: []int64{0, 0}}
	b := MustParseResolve("x == 1 ? t <= 5 : t <= 3", sc, TypeBool)
	if !b.EvalBool(env) {
		t.Error("cond bool eval wrong")
	}
	i := MustParseResolve("x == 2 ? 10 : 20", sc, TypeInt)
	if i.EvalInt(env) != 20 {
		t.Error("cond int eval wrong")
	}
}

func TestBoolEqualityEval(t *testing.T) {
	sc := testScope()
	env := testEnv{vars: []int64{1, 2, 0, 0, 0}, clocks: []int64{0, 0}}
	n := MustParseResolve("(x > 0) == (y > 0)", sc, TypeBool)
	if !n.EvalBool(env) {
		t.Error("(true)==(true) should hold")
	}
	n2 := MustParseResolve("(x > 0) != (y > 3)", sc, TypeBool)
	if !n2.EvalBool(env) {
		t.Error("(true)!=(false) should hold")
	}
}

func TestWrongTypedEvalPanics(t *testing.T) {
	sc := testScope()
	n := MustParseResolve("x + 1", sc, TypeInt)
	defer func() {
		if r := recover(); r == nil {
			t.Error("EvalBool on int node should panic")
		} else if _, ok := r.(*RuntimeError); !ok {
			t.Errorf("panic value %T", r)
		}
	}()
	n.EvalBool(testEnv{vars: make([]int64, 5), clocks: make([]int64, 2)})
}

func TestResolveErrorFormat(t *testing.T) {
	err := &ResolveError{Name: "x", Msg: "boom"}
	if !strings.Contains(err.Error(), "x") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %q", err)
	}
	err2 := &ResolveError{Msg: "plain"}
	if !strings.Contains(err2.Error(), "plain") {
		t.Errorf("err = %q", err2)
	}
}

func TestDynVarRefString(t *testing.T) {
	sc := testScope()
	n := MustParseResolve("arr[x]", sc, TypeInt)
	d, ok := n.(*DynVarRef)
	if !ok {
		t.Fatalf("type %T", n)
	}
	if d.String() != "arr[x]" {
		t.Errorf("String = %q", d.String())
	}
}

func TestAssignToDynIndex(t *testing.T) {
	sc := testScope()
	upd := MustParseResolveUpdate("arr[x] := 9", sc)
	env := &mutEnv{vars: []int64{2, 0, 0, 0, 0}, clocks: []int64{0, 0}}
	upd.Apply(env)
	if env.vars[4] != 9 { // arr base 2 + index 2
		t.Errorf("arr[2] = %d", env.vars[4])
	}
	// Out-of-range dynamic assignment panics.
	env.vars[0] = 7
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	upd.Apply(env)
}

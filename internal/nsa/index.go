package nsa

import (
	"sort"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// netIndex is the static interpretation index of a network, built once per
// Network on first use and shared by every engine and enumerator over it.
// It pre-classifies each location's outgoing edges by synchronization
// channel and direction, compiles expression guards into closures, and
// inverts guard/invariant read sets into variable→reader and clock→reader
// lists so the incremental engine runtime can re-evaluate only the automata
// a fired transition may have affected.
type netIndex struct {
	// locs[ai][li] describes location li of automaton ai.
	locs [][]locInfo

	// varReaders[v] lists (ascending) the automata with a guard or
	// invariant reading variable v somewhere.
	varReaders [][]int32
	// clockReaders[c] lists the automata with a guard, waker or invariant
	// depending on clock c: they must be re-evaluated when c is reset or its
	// rate changes.
	clockReaders [][]int32

	// writeVars[ai][ei] / writeClocks[ai][ei] are the variables and clocks
	// edge ei of automaton ai may assign; writeUnknown marks edges with an
	// opaque update and no declared footprint (firing them dirties every
	// automaton).
	writeVars    [][][]int32
	writeClocks  [][][]int32
	writeUnknown [][]bool

	// alwaysDirty lists automata with some guard or invariant of unknown
	// footprint; the runtime re-evaluates them on every step.
	alwaysDirty []int32
}

// locInfo is the indexed form of one location of one automaton.
type locInfo struct {
	// edges lists the outgoing edges in ascending edge-index order, with
	// compiled guards.
	edges []edgeInfo
	// inv is the location invariant (nil when trivially true); fastInv is
	// its compiled form when expression-based.
	inv     sa.Invariant
	fastInv *expr.Invariant
	// committed mirrors sa.Location.Committed.
	committed bool
	// clockSensitive is true when some outgoing guard may change truth
	// value under a time advance; the runtime re-evaluates such automata
	// after every delay transition.
	clockSensitive bool
}

// edgeInfo is one pre-classified outgoing edge.
type edgeInfo struct {
	edge int32
	dir  sa.SyncDir
	ch   sa.ChanID // NoChan for internal edges
	// fast is the compiled guard; nil means "evaluate slow via the env".
	fast expr.BoolFn
	slow sa.Guard // nil means trivially true (only when fast is also nil)
	// waker is non-nil when the guard is clock-dependent and can report a
	// wake-up delay (it may return expr.NoBound).
	waker sa.Waker
}

// evalGuard evaluates the edge guard against the raw state arrays, falling
// back to the interface path for opaque guards.
func (e *edgeInfo) evalGuard(vars, clocks []int64, env expr.Env) bool {
	if e.fast != nil {
		return e.fast(vars, clocks)
	}
	return guardHolds(e.slow, env)
}

// index returns the network's interpretation index. Builder.Build constructs
// it eagerly; the lazy fallback covers networks assembled without the builder
// (single-goroutine test helpers only — the fallback is not synchronized).
func (n *Network) index() *netIndex {
	if n.idx == nil {
		n.idx = buildIndex(n)
	}
	return n.idx
}

func buildIndex(n *Network) *netIndex {
	idx := &netIndex{
		locs:         make([][]locInfo, len(n.Automata)),
		varReaders:   make([][]int32, len(n.Vars)),
		clockReaders: make([][]int32, len(n.Clocks)),
		writeVars:    make([][][]int32, len(n.Automata)),
		writeClocks:  make([][][]int32, len(n.Automata)),
		writeUnknown: make([][]bool, len(n.Automata)),
	}
	for ai, a := range n.Automata {
		var readV, readC []int // accumulated read footprint of automaton ai
		unknown := false

		// Per-edge write sets.
		idx.writeVars[ai] = make([][]int32, len(a.Edges))
		idx.writeClocks[ai] = make([][]int32, len(a.Edges))
		idx.writeUnknown[ai] = make([]bool, len(a.Edges))
		for ei := range a.Edges {
			wv, wc, ok := sa.UpdateWrites(a.Edges[ei].Update, nil, nil)
			if !ok {
				idx.writeUnknown[ai][ei] = true
				continue
			}
			idx.writeVars[ai][ei] = sortedUnique32(wv)
			idx.writeClocks[ai][ei] = sortedUnique32(wc)
		}

		// Per-location classified edges and invariant info.
		idx.locs[ai] = make([]locInfo, len(a.Locations))
		for li := range a.Locations {
			loc := &a.Locations[li]
			info := &idx.locs[ai][li]
			info.committed = loc.Committed
			if loc.Invariant != nil {
				info.inv = loc.Invariant
				if fi, ok := loc.Invariant.(*expr.Invariant); ok {
					info.fastInv = fi
					readV, readC = fi.AppendDeps(readV, readC)
				} else {
					unknown = true
					info.clockSensitive = true
				}
			}
			for _, ei := range a.EdgesFrom(sa.LocID(li)) {
				e := &a.Edges[ei]
				ef := edgeInfo{edge: int32(ei), dir: e.Sync.Dir, ch: sa.NoChan}
				if e.Sync.Dir != sa.NoSync {
					ef.ch = e.Sync.Chan
				}
				switch g := e.Guard.(type) {
				case nil:
					// Trivially true.
				case *sa.ExprGuard:
					ef.fast = expr.CompileBool(g.Node)
					ef.slow = g
					before := len(readC)
					readV = expr.Vars(g.Node, readV)
					readC = expr.Clocks(g.Node, readC)
					if len(readC) > before {
						ef.waker = g
						info.clockSensitive = true
					}
				case *sa.GuardFunc:
					ef.slow = g
					before := len(readC)
					v, c, ok := sa.GuardReads(g, readV, readC)
					readV, readC = v, c
					if !ok {
						unknown = true
						info.clockSensitive = true
					} else if len(readC) > before {
						info.clockSensitive = true
					}
					if g.NextEnableF != nil {
						ef.waker = g
						info.clockSensitive = true
					}
				default:
					ef.slow = g
					if w, ok := g.(sa.Waker); ok {
						ef.waker = w
					}
					unknown = true
					info.clockSensitive = true
				}
				info.edges = append(info.edges, ef)
			}
		}

		if unknown {
			idx.alwaysDirty = append(idx.alwaysDirty, int32(ai))
			// An unknown guard can read anything, including clocks: make the
			// automaton clock-sensitive everywhere so delay transitions also
			// re-evaluate it.
			for li := range idx.locs[ai] {
				idx.locs[ai][li].clockSensitive = true
			}
		}
		for _, v := range sortedUnique32(readV) {
			idx.varReaders[v] = append(idx.varReaders[v], int32(ai))
		}
		for _, c := range sortedUnique32(readC) {
			idx.clockReaders[c] = append(idx.clockReaders[c], int32(ai))
		}
	}
	return idx
}

// sortedUnique32 sorts xs, drops duplicates and converts to int32.
func sortedUnique32(xs []int) []int32 {
	if len(xs) == 0 {
		return nil
	}
	sort.Ints(xs)
	out := make([]int32, 0, len(xs))
	for i, x := range xs {
		if i > 0 && x == xs[i-1] {
			continue
		}
		out = append(out, int32(x))
	}
	return out
}

package nsa

import (
	"bytes"
	"log/slog"
	"testing"

	"stopwatchsim/internal/obs"
)

// TestEngineProbeConsistency runs a probed interpretation and checks the
// counters' internal invariants: steps split exactly into actions and
// delays, actions split exactly by synchronization kind, and the indexed
// runtime reported guard and cache activity.
func TestEngineProbeConsistency(t *testing.T) {
	net, done := pingPong(t, 5, false)
	probe := &obs.Probe{}
	eng := NewEngine(net, Options{Horizon: 20, Probe: probe})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := eng.State().Vars[done]; v != 1 {
		t.Fatalf("done = %d, want 1", v)
	}
	c := probe.Snapshot()
	if c.Steps == 0 {
		t.Fatal("probed run recorded zero steps")
	}
	if c.Steps != c.Actions+c.Delays {
		t.Errorf("Steps %d != Actions %d + Delays %d", c.Steps, c.Actions, c.Delays)
	}
	if got := int64(res.Actions); c.Actions != got {
		t.Errorf("probe Actions %d != result Actions %d", c.Actions, got)
	}
	if got := int64(res.Delays); c.Delays != got {
		t.Errorf("probe Delays %d != result Delays %d", c.Delays, got)
	}
	if sum := c.SyncInternal + c.SyncBinary + c.SyncBroadcast; sum != c.Actions {
		t.Errorf("sync kinds sum %d != Actions %d", sum, c.Actions)
	}
	if c.SyncBinary == 0 {
		t.Error("ping-pong run fired no binary syncs")
	}
	if c.GuardEvals == 0 || c.EnabledCalls == 0 {
		t.Errorf("runtime activity missing: guard_evals=%d enabled_calls=%d", c.GuardEvals, c.EnabledCalls)
	}
	if c.GuardCompiled+c.GuardOpaque > c.GuardEvals {
		t.Errorf("guard split %d+%d exceeds total %d", c.GuardCompiled, c.GuardOpaque, c.GuardEvals)
	}
	if c.DirtyMax > 0 && c.DirtyTotal < c.DirtyMax {
		t.Errorf("DirtyTotal %d < DirtyMax %d", c.DirtyTotal, c.DirtyMax)
	}
}

// TestEngineProbeEnumeratorPath checks the naive/checking path counts
// through the Enumerator probe too.
func TestEngineProbeEnumeratorPath(t *testing.T) {
	net, _ := pingPong(t, 3, false)
	probe := &obs.Probe{}
	en := NewEnumerator(net)
	en.Probe = probe
	if cands := en.Enabled(net.InitialState()); cands != nil {
		_ = cands
	}
	c := probe.Snapshot()
	if c.EnabledCalls != 1 {
		t.Errorf("EnabledCalls = %d, want 1", c.EnabledCalls)
	}
	if c.GuardEvals == 0 {
		t.Error("Enumerator counted no guard evaluations")
	}
}

// TestEngineDebugLogReproducesChoice checks the per-step debug log carries
// the chooser seed and chosen candidate index, the reproducibility
// contract for -check-engine divergences.
func TestEngineDebugLogReproducesChoice(t *testing.T) {
	net, _ := pingPong(t, 2, false)
	var buf bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	eng := NewEngine(net, Options{Horizon: 10, Chooser: NewRandomChooser(99), Logger: lg})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("chooser_seed=99")) {
		t.Errorf("debug log missing chooser seed:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte("choice=")) {
		t.Errorf("debug log missing chosen candidate index:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte("msg=fire")) || !bytes.Contains(buf.Bytes(), []byte("msg=delay")) {
		t.Errorf("debug log missing fire/delay records:\n%s", out)
	}
}

// TestEngineNoProbeNoLogger pins that a run with telemetry disabled still
// works and the engine result matches a probed run (instrumentation must
// not perturb semantics).
func TestEngineNoProbeNoLogger(t *testing.T) {
	netA, _ := pingPong(t, 5, false)
	netB, _ := pingPong(t, 5, false)
	probe := &obs.Probe{}
	plain := NewEngine(netA, Options{Horizon: 20})
	probed := NewEngine(netB, Options{Horizon: 20, Probe: probe})
	resPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	resProbed, err := probed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resPlain != resProbed {
		t.Errorf("probed result %+v != plain result %+v", resProbed, resPlain)
	}
}

// Package nsa assembles stopwatch automata into networks (NSA) and
// interprets them: shared bounded integer variables, binary/broadcast/urgent
// channels, committed locations, action and delay transitions, and
// synchronization-event traces.
//
// The same successor computation (EnabledTransitions / Fire / DelayBound /
// Advance) drives both the deterministic simulator (Engine) and the
// exhaustive model checker in package mc, so the paper's Table 1 comparison
// measures exploration strategy, not implementation differences.
package nsa

import (
	"fmt"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// VarDecl declares a global integer variable.
type VarDecl struct {
	Name      string
	Init      int64
	Min, Max  int64 // inclusive domain bounds, used when HasBounds
	HasBounds bool
}

// ClockDecl declares a global clock. All clocks start at zero and advance at
// rate 1 except where stopped by the owning automaton's current location.
type ClockDecl struct {
	Name string
}

// ChanDecl declares a channel.
type ChanDecl struct {
	Name      string
	Broadcast bool
	Urgent    bool
}

// Network is an assembled network of stopwatch automata.
type Network struct {
	Automata []*sa.Automaton
	Vars     []VarDecl
	Clocks   []ClockDecl
	Chans    []ChanDecl

	consts map[string]int64
	scope  expr.Scope

	// idx is the static interpretation index (see index.go), built by
	// Builder.Build and shared by all engines and enumerators over this
	// network.
	idx *netIndex

	// cnet is the flat compiled execution form (see compile.go), built by
	// Builder.Build and shared by all compiled runtimes over this network.
	cnet *compiledNet
}

// Builder allocates the global variable/clock/channel index spaces and
// collects automata. Automata must be constructed against the indices the
// builder hands out.
type Builder struct {
	net    Network
	vars   map[string]int
	clocks map[string]int
	chans  map[string]int
	consts map[string]int64
	arrays map[string]int // name -> length, for Scope lookups of arrays
	err    error
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder {
	return &Builder{
		vars:   make(map[string]int),
		clocks: make(map[string]int),
		chans:  make(map[string]int),
		consts: make(map[string]int64),
		arrays: make(map[string]int),
	}
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *Builder) checkName(name string) {
	if name == "" {
		b.fail(fmt.Errorf("nsa: empty declaration name"))
		return
	}
	_, v := b.vars[name]
	_, c := b.clocks[name]
	_, ch := b.chans[name]
	_, k := b.consts[name]
	if v || c || ch || k {
		b.fail(fmt.Errorf("nsa: duplicate declaration %q", name))
	}
}

// Var declares a scalar variable with initial value init and no bounds.
func (b *Builder) Var(name string, init int64) sa.VarID {
	return b.declareVar(VarDecl{Name: name, Init: init})
}

// BoundedVar declares a scalar variable with an inclusive domain.
func (b *Builder) BoundedVar(name string, init, min, max int64) sa.VarID {
	if init < min || init > max {
		b.fail(fmt.Errorf("nsa: variable %q: initial value %d outside [%d,%d]", name, init, min, max))
	}
	return b.declareVar(VarDecl{Name: name, Init: init, Min: min, Max: max, HasBounds: true})
}

func (b *Builder) declareVar(d VarDecl) sa.VarID {
	b.checkName(d.Name)
	b.vars[d.Name] = len(b.net.Vars)
	b.net.Vars = append(b.net.Vars, d)
	return sa.VarID(len(b.net.Vars) - 1)
}

// VarArray declares n consecutive variables name[0..n-1] with initial value
// init each, returning the index of element 0.
func (b *Builder) VarArray(name string, n int, init int64) sa.VarID {
	b.checkName(name)
	if n <= 0 {
		b.fail(fmt.Errorf("nsa: array %q: non-positive length %d", name, n))
		n = 1
	}
	base := len(b.net.Vars)
	b.vars[name] = base
	b.arrays[name] = n
	for i := 0; i < n; i++ {
		b.net.Vars = append(b.net.Vars, VarDecl{Name: fmt.Sprintf("%s[%d]", name, i), Init: init})
	}
	return sa.VarID(base)
}

// Clock declares a clock.
func (b *Builder) Clock(name string) sa.ClockID {
	b.checkName(name)
	b.clocks[name] = len(b.net.Clocks)
	b.net.Clocks = append(b.net.Clocks, ClockDecl{Name: name})
	return sa.ClockID(len(b.net.Clocks) - 1)
}

// Chan declares a binary channel.
func (b *Builder) Chan(name string) sa.ChanID { return b.declareChan(ChanDecl{Name: name}) }

// BroadcastChan declares a broadcast channel.
func (b *Builder) BroadcastChan(name string) sa.ChanID {
	return b.declareChan(ChanDecl{Name: name, Broadcast: true})
}

// UrgentChan declares an urgent binary channel: no delay may elapse while a
// synchronization on it is enabled.
func (b *Builder) UrgentChan(name string) sa.ChanID {
	return b.declareChan(ChanDecl{Name: name, Urgent: true})
}

// UrgentBroadcastChan declares an urgent broadcast channel.
func (b *Builder) UrgentBroadcastChan(name string) sa.ChanID {
	return b.declareChan(ChanDecl{Name: name, Broadcast: true, Urgent: true})
}

func (b *Builder) declareChan(d ChanDecl) sa.ChanID {
	b.checkName(d.Name)
	b.chans[d.Name] = len(b.net.Chans)
	b.net.Chans = append(b.net.Chans, d)
	return sa.ChanID(len(b.net.Chans) - 1)
}

// Const declares a named integer constant visible to Scope.
func (b *Builder) Const(name string, val int64) {
	b.checkName(name)
	b.consts[name] = val
}

// Add appends an automaton to the network.
func (b *Builder) Add(a *sa.Automaton) *Builder {
	if err := a.Validate(); err != nil {
		b.fail(err)
		return b
	}
	b.net.Automata = append(b.net.Automata, a)
	return b
}

// Scope returns an expr.Scope over the declarations made so far, for
// resolving guard/update/invariant sources during construction.
func (b *Builder) Scope() expr.Scope { return builderScope{b} }

type builderScope struct{ b *Builder }

func (s builderScope) Lookup(name string) (expr.Symbol, bool) {
	if i, ok := s.b.vars[name]; ok {
		return expr.Symbol{Kind: expr.SymVar, Index: i, Len: s.b.arrays[name]}, true
	}
	if i, ok := s.b.clocks[name]; ok {
		return expr.Symbol{Kind: expr.SymClock, Index: i}, true
	}
	if v, ok := s.b.consts[name]; ok {
		return expr.Symbol{Kind: expr.SymConst, Const: v}, true
	}
	return expr.Symbol{}, false
}

// Build finalizes the network, validating cross-references.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	net := b.net
	for _, a := range net.Automata {
		for _, c := range a.Clocks {
			if int(c) < 0 || int(c) >= len(net.Clocks) {
				return nil, fmt.Errorf("nsa: automaton %q owns unknown clock %d", a.Name, c)
			}
		}
		for i, e := range a.Edges {
			if e.Sync.Dir != sa.NoSync {
				if int(e.Sync.Chan) < 0 || int(e.Sync.Chan) >= len(net.Chans) {
					return nil, fmt.Errorf("nsa: automaton %q edge %d: unknown channel %d", a.Name, i, e.Sync.Chan)
				}
			}
		}
	}
	// Every clock must be owned by at most one automaton; unowned clocks run
	// everywhere (e.g. observers' reference clocks).
	owner := make([]int, len(net.Clocks))
	for i := range owner {
		owner[i] = -1
	}
	for ai, a := range net.Automata {
		for _, c := range a.Clocks {
			if owner[c] >= 0 && owner[c] != ai {
				return nil, fmt.Errorf("nsa: clock %q owned by both %q and %q",
					net.Clocks[c].Name, net.Automata[owner[c]].Name, a.Name)
			}
			owner[c] = ai
		}
	}
	net.consts = b.consts
	net.scope = builderScope{b}
	net.idx = buildIndex(&net)
	net.cnet = buildCompiledNet(&net)
	return &net, nil
}

// MustBuild is Build panicking on error.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// Reindex rebuilds the interpretation index and the compiled execution
// form. Build constructs both once; callers that mutate automata afterwards
// (test sabotage helpers) must reindex before interpreting the network again.
func (n *Network) Reindex() {
	n.idx = buildIndex(n)
	n.cnet = buildCompiledNet(n)
}

// Scope resolves names declared in the network.
func (n *Network) Scope() expr.Scope { return n.scope }

// AutomatonIndex returns the index of the automaton with the given name, or
// -1 if absent.
func (n *Network) AutomatonIndex(name string) int {
	for i, a := range n.Automata {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// ChanName returns a printable name for ch.
func (n *Network) ChanName(ch sa.ChanID) string {
	if int(ch) < 0 || int(ch) >= len(n.Chans) {
		return fmt.Sprintf("ch#%d", int(ch))
	}
	return n.Chans[ch].Name
}

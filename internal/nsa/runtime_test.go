package nsa

import (
	"math/rand"
	"strings"
	"testing"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

func TestTimeHeapGenerationInvalidation(t *testing.T) {
	var h timeHeap
	gens := []uint32{0, 0, 0}
	h.push(10, 0, 0)
	h.push(5, 1, 0)
	h.push(7, 2, 0)
	if abs, ok := h.min(gens); !ok || abs != 5 {
		t.Fatalf("min = %d,%v want 5,true", abs, ok)
	}
	// Supersede automaton 1: its entry must be skipped lazily.
	gens[1] = 1
	h.push(9, 1, 1)
	if abs, ok := h.min(gens); !ok || abs != 7 {
		t.Fatalf("min after invalidation = %d,%v want 7,true", abs, ok)
	}
	// Supersede everything: heap drains to empty.
	gens[0], gens[1], gens[2] = 2, 2, 2
	if _, ok := h.min(gens); ok {
		t.Fatal("min on fully stale heap must report empty")
	}
	if len(h.e) != 0 {
		t.Fatalf("lazy deletion left %d entries", len(h.e))
	}
}

func TestTimeHeapCompact(t *testing.T) {
	var h timeHeap
	gens := make([]uint32, 4)
	// Many stale generations of the same automata.
	for g := uint32(0); g < 50; g++ {
		for aut := int32(0); aut < 4; aut++ {
			h.push(int64(100-g), aut, g)
			gens[aut] = g
		}
	}
	h.compact(gens)
	if len(h.e) != 4 {
		t.Fatalf("compact kept %d entries, want 4", len(h.e))
	}
	if abs, ok := h.min(gens); !ok || abs != 51 {
		t.Fatalf("min after compact = %d,%v want 51,true", abs, ok)
	}
}

// stopResumeNet builds a stopwatch scenario: W's clock c runs toward an
// invariant bound c <= 10 with a completion guard c == 10, while driver D
// pauses c (location with Stops) during [3,5). The deadline heap must track
// the expiry moving from t=10 to t=12 across the stop and resume.
func stopResumeNet(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	c := b.Clock("c")
	d := b.Clock("d")
	pause := b.Chan("pause")
	resume := b.Chan("resume")
	sc := b.Scope()

	wb := sa.NewBuilder("W")
	wb.OwnClock(c)
	run := wb.Loc("Run", sa.WithInvariant(mustInv(t, "c <= 10", sc)))
	paused := wb.Loc("Paused", sa.Stops(c))
	done := wb.Loc("Done")
	wb.Init(run)
	wb.Edge(run, done, sa.NewExprGuard(expr.MustParseResolve("c == 10", sc, expr.TypeBool)), sa.None, nil)
	wb.RecvEdge(run, paused, nil, pause, nil)
	wb.RecvEdge(paused, run, nil, resume, nil)

	db := sa.NewBuilder("D")
	db.OwnClock(d)
	l0 := db.Loc("L0", sa.WithInvariant(mustInv(t, "d <= 3", sc)))
	l1 := db.Loc("L1", sa.WithInvariant(mustInv(t, "d <= 5", sc)))
	l2 := db.Loc("L2")
	db.Init(l0)
	db.SendEdge(l0, l1, sa.NewExprGuard(expr.MustParseResolve("d == 3", sc, expr.TypeBool)), pause, nil)
	db.SendEdge(l1, l2, sa.NewExprGuard(expr.MustParseResolve("d == 5", sc, expr.TypeBool)), resume, nil)

	b.Add(wb.MustBuild())
	b.Add(db.MustBuild())
	return b.MustBuild()
}

func TestRuntimeDeadlineHeapStopResume(t *testing.T) {
	net := stopResumeNet(t)
	// CheckEngine verifies the runtime's candidate sets and delay bounds
	// against the naive enumeration at every step.
	eng := NewEngine(net, Options{Horizon: 100, CheckEngine: true})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent {
		t.Errorf("result = %+v, want quiescent", res)
	}
	s := eng.State()
	if s.Time != 12 {
		t.Errorf("final time = %d, want 12 (2 units spent paused)", s.Time)
	}
	if got := net.Automata[0].LocationName(s.Locs[0]); got != "Done" {
		t.Errorf("W ended in %s, want Done", got)
	}
}

// TestRuntimeDelayBoundsStopResume drives the runtime directly and compares
// its delay bounds against the naive DelayBound at each phase of the
// stop/resume schedule.
func TestRuntimeDelayBoundsStopResume(t *testing.T) {
	net := stopResumeNet(t)
	s := net.InitialState()
	rt := newEngineRuntime(net, s, nil)

	check := func(stage string, wantMax int64) {
		t.Helper()
		cands := rt.enabled(nil)
		if len(cands) != 0 {
			t.Fatalf("%s: unexpected candidates %v", stage, cands)
		}
		info := rt.delayBound()
		naive := net.DelayBound(s)
		if info != naive {
			t.Fatalf("%s: runtime delay %+v != naive %+v", stage, info, naive)
		}
		if info.Max != wantMax {
			t.Fatalf("%s: Max = %d, want %d", stage, info.Max, wantMax)
		}
	}
	fire := func(stage string) {
		t.Helper()
		cands := rt.enabled(nil)
		if len(cands) != 1 {
			t.Fatalf("%s: candidates = %v, want exactly one", stage, cands)
		}
		if err := rt.fire(&cands[0]); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
	}
	advance := func(d int64) {
		t.Helper()
		if err := rt.advance(d); err != nil {
			t.Fatal(err)
		}
	}

	check("initial", 3) // D's d <= 3 binds before W's c <= 10
	advance(3)
	fire("pause") // c stops at 3; W's expiry must stretch to NoBound's backstop via D
	check("paused", 2)
	advance(2)
	fire("resume") // c resumes at 3, expiry becomes t=5+(10-3)=12
	check("resumed", 7)
	advance(7)
	fire("complete")
	// delayBound is only meaningful after enabled() has drained the dirty
	// set (the engine always calls them in that order).
	check("final", expr.NoBound)
}

func TestRandomChooserEmptyCandidates(t *testing.T) {
	ch := RandomChooser{Rng: rand.New(rand.NewSource(1))}
	if got := ch.Choose(nil, nil); got != -1 {
		t.Errorf("Choose(empty) = %d, want -1", got)
	}
}

// TestRandomChooserDeadlockDiagnosis: a network that deadlocks must surface
// the structured deadlock error with RandomChooser too (historically the
// chooser panicked before the engine could diagnose the empty set).
func TestRandomChooserDeadlockDiagnosis(t *testing.T) {
	b := NewBuilder()
	ck := b.Clock("t")
	sc := b.Scope()
	ab := sa.NewBuilder("A")
	ab.OwnClock(ck)
	wait := ab.Loc("Wait", sa.WithInvariant(mustInv(t, "t <= 2", sc)))
	ab.Init(wait)
	// No edge discharges the invariant: timelock at t=2.
	b.Add(ab.MustBuild())
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 10, Chooser: RandomChooser{Rng: rand.New(rand.NewSource(7))}})
	_, err := eng.Run()
	var dl *DeadlockError
	if !asDeadlock(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(err.Error(), "invariant bounds delay") {
		t.Errorf("err = %v", err)
	}
}

func asDeadlock(err error, out **DeadlockError) bool {
	if de, ok := err.(*DeadlockError); ok {
		*out = de
		return true
	}
	return false
}

// TestCheckEngineUrgentBroadcast exercises the runtime's urgent and
// broadcast handling (urgent broadcast sender, multi-receiver cartesian
// products, committed relays) under per-step differential checking.
func TestCheckEngineUrgentBroadcast(t *testing.T) {
	b := NewBuilder()
	n1 := b.Var("n1", 0)
	ck := b.Clock("t")
	tick := b.BroadcastChan("tick")
	kick := b.UrgentBroadcastChan("kick")
	sc := b.Scope()

	sb := sa.NewBuilder("S")
	sb.OwnClock(ck)
	l0 := sb.Loc("L0", sa.WithInvariant(mustInv(t, "t <= 4", sc)))
	l1 := sb.Loc("L1", sa.Committed())
	l2 := sb.Loc("L2")
	sb.Init(l0)
	sb.SendEdge(l0, l1, sa.NewExprGuard(expr.MustParseResolve("t == 4", sc, expr.TypeBool)), tick, nil)
	sb.SendEdge(l1, l2, nil, kick, nil)

	mk := func(name string) *sa.Automaton {
		rb := sa.NewBuilder(name)
		idle := rb.Loc("Idle")
		got := rb.Loc("Got")
		fin := rb.Loc("Fin")
		rb.Init(idle)
		rb.RecvEdge(idle, got, nil, tick,
			&sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("n1 := n1 + 1", sc)})
		rb.RecvEdge(got, fin, nil, kick, nil)
		return rb.MustBuild()
	}
	b.Add(sb.MustBuild())
	b.Add(mk("R1"))
	b.Add(mk("R2"))
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 50, CheckEngine: true})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent {
		t.Errorf("result = %+v", res)
	}
	if got := eng.State().Vars[n1]; got != 2 {
		t.Errorf("n1 = %d, want 2 (both receivers moved)", got)
	}
}

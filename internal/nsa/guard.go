package nsa

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// Budget bounds the resources a run or exploration may consume. The zero
// value means "unlimited" for every dimension. Budgets make the engine and
// the model checker safe to expose to arbitrary user-supplied models: no
// input can hang the process (wall time), exhaust memory (states, bytes) or
// spin forever (steps).
type Budget struct {
	// MaxSteps bounds the number of transitions taken: action plus delay
	// transitions for the interpreter, fired transitions for the explorer.
	MaxSteps int64
	// MaxStates bounds the number of distinct states an exploration may
	// expand. Ignored by the single-run interpreter.
	MaxStates int
	// MaxWallTime bounds the real time of the run.
	MaxWallTime time.Duration
	// MaxMemoryBytes bounds the Go heap (runtime.MemStats.HeapAlloc),
	// checked periodically. The check is approximate: allocation between two
	// checkpoints can overshoot the bound.
	MaxMemoryBytes uint64
}

// IsZero reports whether every dimension is unlimited.
func (b Budget) IsZero() bool {
	return b.MaxSteps == 0 && b.MaxStates == 0 && b.MaxWallTime == 0 && b.MaxMemoryBytes == 0
}

// StopReason says which budget dimension stopped a run early.
type StopReason uint8

// Stop reasons.
const (
	StopNone     StopReason = iota
	StopCanceled            // context canceled or deadline exceeded
	StopSteps               // Budget.MaxSteps exhausted
	StopStates              // Budget.MaxStates exhausted
	StopWallTime            // Budget.MaxWallTime exhausted
	StopMemory              // Budget.MaxMemoryBytes exceeded
)

var stopReasonNames = [...]string{
	StopNone:     "none",
	StopCanceled: "canceled",
	StopSteps:    "step budget exhausted",
	StopStates:   "state budget exhausted",
	StopWallTime: "wall-time budget exhausted",
	StopMemory:   "memory budget exceeded",
}

func (r StopReason) String() string {
	if int(r) < len(stopReasonNames) {
		return stopReasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// RunError reports that a run or exploration was stopped by its Budget or
// context before completing. It carries the partial progress made so the
// caller can report or resume: states explored, steps taken, the model time
// reached, and a bounded suffix of the synchronization trace.
type RunError struct {
	// Reason is the budget dimension (or cancellation) that stopped the run.
	Reason StopReason
	// Time is the model time reached when the run stopped.
	Time int64
	// Steps is the number of transitions taken before stopping.
	Steps int64
	// States is the number of states expanded before stopping (explorations
	// only; 0 for single runs).
	States int
	// Trace is the most recent synchronization events before the stop (up
	// to Options.DiagTraceDepth), oldest first.
	Trace []SyncEvent
	// Cause is the context error for StopCanceled, nil otherwise.
	Cause error
}

func (e *RunError) Error() string {
	msg := fmt.Sprintf("nsa: run stopped: %s at model time %d after %d steps", e.Reason, e.Time, e.Steps)
	if e.States > 0 {
		msg += fmt.Sprintf(", %d states explored", e.States)
	}
	if e.Cause != nil {
		msg += " (" + e.Cause.Error() + ")"
	}
	return msg
}

// Unwrap exposes the context error so errors.Is(err, context.Canceled)
// works on cancellation stops.
func (e *RunError) Unwrap() error { return e.Cause }

// DeadlockKind classifies structured progress-failure diagnostics.
type DeadlockKind uint8

// Deadlock kinds.
const (
	// Timelock: neither a delay nor an action transition is enabled before
	// the horizon — time cannot progress and nothing can fire.
	Timelock DeadlockKind = iota
	// Livelock: action transitions keep firing without time progressing
	// (a state recurred at one instant, or the per-instant action cap hit).
	Livelock
)

func (k DeadlockKind) String() string {
	if k == Livelock {
		return "livelock"
	}
	return "time-stop deadlock"
}

// BlockedAutomaton describes one automaton's contribution to a timelock or
// livelock: where it is, which constraint forbids delay, and why each of its
// outgoing edges cannot fire.
type BlockedAutomaton struct {
	// Automaton and Location name the automaton and its current location.
	Automaton string
	Location  string
	// Committed is true when the location is committed (forbids delay).
	Committed bool
	// Invariant is the location invariant that has run out of delay room
	// ("" when the invariant still admits delay or there is none).
	Invariant string
	// UrgentChan names an urgent channel with an enabled half-synchronization
	// from this location ("" if none). Urgency forbids delay.
	UrgentChan string
	// Edges explains, per outgoing edge, why it cannot fire: a failing
	// guard, or a missing synchronization partner.
	Edges []string
}

func (b *BlockedAutomaton) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s in %q", b.Automaton, b.Location)
	var why []string
	if b.Committed {
		why = append(why, "committed")
	}
	if b.Invariant != "" {
		why = append(why, "invariant "+b.Invariant+" forbids delay")
	}
	if b.UrgentChan != "" {
		why = append(why, "urgent channel "+b.UrgentChan+" pending")
	}
	why = append(why, b.Edges...)
	if len(why) > 0 {
		sb.WriteString(" (" + strings.Join(why, "; ") + ")")
	}
	return sb.String()
}

// DeadlockError is the structured diagnostic for timelocks and livelocks:
// which automata block progress, why, and the synchronization-trace prefix
// that led there (a counterexample the user can replay).
type DeadlockError struct {
	Kind DeadlockKind
	// Time is the model time at which progress stopped.
	Time int64
	// Msg is a one-line summary.
	Msg string
	// Blocked lists the automata that prevent progress with their locations
	// and failing constraints.
	Blocked []BlockedAutomaton
	// Trace is the most recent synchronization events before the failure
	// (bounded by Options.DiagTraceDepth), oldest first.
	Trace []SyncEvent
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nsa: %s at time %d: %s", e.Kind, e.Time, e.Msg)
	if len(e.Blocked) > 0 {
		parts := make([]string, len(e.Blocked))
		for i := range e.Blocked {
			parts[i] = e.Blocked[i].String()
		}
		sb.WriteString("; blocked: " + strings.Join(parts, ", "))
	}
	return sb.String()
}

// safeHolds evaluates a guard defensively: an evaluation panic (e.g. a
// division by zero in a diagnostic path) counts as "does not hold" rather
// than tearing down the report builder.
func safeHolds(g sa.Guard, env expr.Env) (holds bool) {
	defer func() {
		if recover() != nil {
			holds = false
		}
	}()
	return g == nil || g.Holds(env)
}

func safeMaxDelay(inv sa.Invariant, env expr.Env, running func(int) bool) (d int64) {
	defer func() {
		if recover() != nil {
			d = 0
		}
	}()
	return inv.MaxDelay(env, running)
}

// BlockedReport inspects a state in which no action transition is enabled
// and explains, per automaton, what forbids progress. Automata that neither
// forbid delay nor have outgoing edges are omitted; when nothing stands out
// every automaton with outgoing edges is reported.
func (n *Network) BlockedReport(s *State) []BlockedAutomaton {
	env := n.Env(s)
	stopped := n.StoppedClocks(s, nil)
	running := func(c int) bool { return !stopped[c] }

	var out, fallback []BlockedAutomaton
	for ai, a := range n.Automata {
		loc := &a.Locations[s.Locs[ai]]
		ba := BlockedAutomaton{Automaton: a.Name, Location: loc.Name, Committed: loc.Committed}
		forbidsDelay := loc.Committed
		if loc.Invariant != nil && safeMaxDelay(loc.Invariant, env, running) <= 0 {
			ba.Invariant = loc.Invariant.String()
			forbidsDelay = true
		}
		for _, ei := range a.EdgesFrom(s.Locs[ai]) {
			e := &a.Edges[ei]
			desc := a.EdgeString(ei)
			if !safeHolds(e.Guard, env) {
				ba.Edges = append(ba.Edges, fmt.Sprintf("edge %s: guard not satisfied", desc))
				continue
			}
			if e.Sync.Dir != sa.NoSync {
				if n.Chans[e.Sync.Chan].Urgent {
					ba.UrgentChan = n.Chans[e.Sync.Chan].Name
					forbidsDelay = true
				}
				ba.Edges = append(ba.Edges, fmt.Sprintf("edge %s: no partner ready on channel %q", desc, n.ChanName(e.Sync.Chan)))
			} else {
				ba.Edges = append(ba.Edges, fmt.Sprintf("edge %s: excluded by a committed location elsewhere", desc))
			}
		}
		if forbidsDelay {
			out = append(out, ba)
		} else if len(ba.Edges) > 0 {
			fallback = append(fallback, ba)
		}
	}
	if len(out) == 0 {
		return fallback
	}
	return out
}

// How often the tracker performs its expensive checks: context and wall
// time every trackerCheckEvery steps, heap size every trackerMemEvery.
const (
	trackerCheckEvery = 256
	trackerMemEvery   = 1 << 16
)

// Tracker enforces a Budget against a context during a run. One Tracker
// instruments one run; create it with Budget.Tracker.
type Tracker struct {
	ctx       context.Context
	b         Budget
	start     time.Time
	steps     int64
	sinceChk  int
	sinceMem  int
	checkCtx  bool
	checkMem  bool
	checkWall bool
}

// Tracker returns a budget tracker for one run under ctx. A nil ctx counts
// as context.Background().
func (b Budget) Tracker(ctx context.Context) *Tracker {
	t := &Tracker{}
	t.init(ctx, b)
	return t
}

// init resets a tracker in place for a new run, so callers embedding one
// (the engine) avoid a per-run allocation.
func (t *Tracker) init(ctx context.Context, b Budget) {
	if ctx == nil {
		ctx = context.Background()
	}
	*t = Tracker{
		ctx:       ctx,
		b:         b,
		start:     time.Now(),
		checkCtx:  ctx.Done() != nil,
		checkMem:  b.MaxMemoryBytes > 0,
		checkWall: b.MaxWallTime > 0,
	}
}

// Steps returns the number of steps recorded so far.
func (t *Tracker) Steps() int64 { return t.steps }

// Step records one unit of work at the given model time and returns a
// non-nil *RunError when the budget is exhausted or the context is done.
// Cheap checks (step count) run on every call; context and wall time every
// trackerCheckEvery calls (and on the first); memory every trackerMemEvery.
func (t *Tracker) Step(modelTime int64) *RunError {
	t.steps++
	if t.b.MaxSteps > 0 && t.steps > t.b.MaxSteps {
		return t.stop(StopSteps, modelTime, nil)
	}
	t.sinceChk--
	if t.sinceChk > 0 {
		return nil
	}
	t.sinceChk = trackerCheckEvery
	if t.checkCtx {
		if err := t.ctx.Err(); err != nil {
			return t.stop(StopCanceled, modelTime, err)
		}
	}
	if t.checkWall && time.Since(t.start) > t.b.MaxWallTime {
		return t.stop(StopWallTime, modelTime, nil)
	}
	if t.checkMem {
		t.sinceMem--
		if t.sinceMem <= 0 {
			t.sinceMem = trackerMemEvery / trackerCheckEvery
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > t.b.MaxMemoryBytes {
				return t.stop(StopMemory, modelTime, nil)
			}
		}
	}
	return nil
}

// States checks the state budget against the given count (explorations).
func (t *Tracker) States(states int, modelTime int64) *RunError {
	if t.b.MaxStates > 0 && states > t.b.MaxStates {
		err := t.stop(StopStates, modelTime, nil)
		err.States = states
		return err
	}
	return nil
}

func (t *Tracker) stop(r StopReason, modelTime int64, cause error) *RunError {
	// The step that tripped the budget was not performed by the caller.
	steps := t.steps
	if r == StopSteps && steps > 0 {
		steps--
	}
	return &RunError{Reason: r, Time: modelTime, Steps: steps, Cause: cause}
}

// traceRing keeps the most recent synchronization events of a run so that
// errors can carry a bounded counterexample prefix without the engine
// retaining the whole trace. Slots and their Parts buffers are reused across
// records and across runs (reset), so steady-state recording is
// allocation-free.
type traceRing struct {
	depth  int
	events []SyncEvent // grown lazily up to depth, slots reused thereafter
	n      int         // valid events, ≤ depth
	next   int         // slot index of the next record
}

// DefaultDiagTraceDepth is the number of trailing synchronization events
// attached to RunError and DeadlockError diagnostics by default.
const DefaultDiagTraceDepth = 64

func newTraceRing(depth int) *traceRing {
	if depth == 0 {
		depth = DefaultDiagTraceDepth
	}
	if depth < 0 {
		depth = 0
	}
	return &traceRing{depth: depth}
}

// reset empties the ring for a new run, keeping the slot buffers.
func (r *traceRing) reset() {
	r.n = 0
	r.next = 0
}

// record stores ev, copying Parts into the slot's reusable buffer: callers
// (the engine) hand in Parts backed by an arena that is overwritten on the
// next step.
func (r *traceRing) record(ev SyncEvent) {
	if r.depth == 0 {
		return
	}
	if r.next == len(r.events) && len(r.events) < r.depth {
		r.events = append(r.events, SyncEvent{})
	}
	slot := &r.events[r.next]
	parts := append(slot.Parts[:0], ev.Parts...)
	*slot = ev
	slot.Parts = parts
	r.next = (r.next + 1) % r.depth
	if r.n < r.depth {
		r.n++
	}
}

// snapshot returns the recorded events oldest-first, with Parts deep-copied
// so the result stays valid as the ring keeps recording.
func (r *traceRing) snapshot() []SyncEvent {
	if r.n == 0 {
		return nil
	}
	out := make([]SyncEvent, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += r.depth
	}
	for i := 0; i < r.n; i++ {
		ev := r.events[(start+i)%r.depth]
		ev.Parts = append([]Part(nil), ev.Parts...)
		out = append(out, ev)
	}
	return out
}

package nsa

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/obs"
)

// Chooser selects which of the enabled transitions to fire. The paper proves
// all choices yield equivalent system traces; the engine defaults to the
// first transition in canonical order, and RandomChooser exists to exercise
// that theorem in tests.
type Chooser interface {
	Choose(s *State, cands []Transition) int
}

// FirstChooser picks the first transition in canonical order. It is the
// deterministic default.
type FirstChooser struct{}

// Choose implements Chooser.
func (FirstChooser) Choose(*State, []Transition) int { return 0 }

// Seeded is implemented by choosers built from a known random seed. The
// engine includes the seed in its per-step debug log, so a divergence
// found under random choice (e.g. by simulate -check-engine) can be
// replayed exactly from the logs alone.
type Seeded interface {
	ChooserSeed() int64
}

// RandomChooser picks a uniformly random enabled transition from a seeded
// source, for determinism testing. Seed is informational: construct with
// NewRandomChooser to keep it in sync with the source, so per-step debug
// logs can name the seed that reproduces the run.
type RandomChooser struct {
	Rng  *rand.Rand
	Seed int64
}

// NewRandomChooser returns a RandomChooser over rand.NewSource(seed) that
// remembers the seed for diagnostics.
func NewRandomChooser(seed int64) RandomChooser {
	return RandomChooser{Rng: rand.New(rand.NewSource(seed)), Seed: seed}
}

// ChooserSeed implements Seeded.
func (c RandomChooser) ChooserSeed() int64 { return c.Seed }

// Choose implements Chooser. With no candidates it returns -1 ("no choice")
// instead of panicking; the engine only consults choosers when at least one
// transition is enabled, but direct callers may not.
func (c RandomChooser) Choose(_ *State, cands []Transition) int {
	if len(cands) == 0 {
		return -1
	}
	return c.Rng.Intn(len(cands))
}

// Listener observes fired transitions. Time is the model time at firing and
// s is the state after the transition; listeners must not mutate it.
// tr.Parts may be backed by a buffer the engine reuses on the next step:
// listeners that retain parts beyond the callback must copy them.
type Listener interface {
	OnTransition(time int64, tr *Transition, net *Network, s *State)
}

// ListenerFunc adapts a function to Listener.
type ListenerFunc func(time int64, tr *Transition, net *Network, s *State)

// OnTransition implements Listener.
func (f ListenerFunc) OnTransition(time int64, tr *Transition, net *Network, s *State) {
	f(time, tr, net, s)
}

// SyncEvent is one recorded synchronization or internal step:
// ⟨channel, participating automata, time⟩ in the paper's terms.
type SyncEvent struct {
	Time  int64
	Kind  TransKind
	Chan  int // -1 for internal transitions
	Parts []Part
}

// SyncTrace records all transitions of a run, the NSA trace of the paper.
type SyncTrace struct {
	Events []SyncEvent

	// parts is a flat arena backing Events[i].Parts: one growing allocation
	// for the whole trace instead of one slice per event. When the arena
	// grows, earlier events keep pointing into the old backing array.
	parts []Part
}

// OnTransition implements Listener.
func (t *SyncTrace) OnTransition(time int64, tr *Transition, _ *Network, _ *State) {
	start := len(t.parts)
	t.parts = append(t.parts, tr.Parts...)
	end := len(t.parts)
	t.Events = append(t.Events, SyncEvent{Time: time, Kind: tr.Kind, Chan: int(tr.Chan), Parts: t.parts[start:end:end]})
}

// Backend selects the interpretation strategy of an Engine.
type Backend uint8

const (
	// BackendEvent is the event-driven runtime (runtime.go): cached enabled
	// sets invalidated through static read/write footprints, deadline heaps.
	// The default.
	BackendEvent Backend = iota
	// BackendCompiled executes the network's flat compiled form
	// (compile.go, compiled.go): expression bytecode, persistent
	// synchronization lists, batched same-instant deadline processing, zero
	// steady-state allocation.
	BackendCompiled
	// BackendNaive re-enumerates every transition from scratch each step
	// through Network.EnabledTransitions / DelayBound. The oracle the other
	// two are checked against.
	BackendNaive
)

func (b Backend) String() string {
	switch b {
	case BackendCompiled:
		return "compiled"
	case BackendNaive:
		return "naive"
	default:
		return "event"
	}
}

// ParseBackend maps the flag spellings "event", "compiled" and "naive" onto
// Backend values.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "event":
		return BackendEvent, nil
	case "compiled":
		return BackendCompiled, nil
	case "naive":
		return BackendNaive, nil
	}
	return BackendEvent, fmt.Errorf("nsa: unknown engine backend %q (want event, compiled or naive)", s)
}

// Options configure a run.
type Options struct {
	// Horizon is the model time at which the run stops (exclusive of
	// further delay; actions at exactly Horizon still fire). Required.
	Horizon int64
	// Chooser resolves nondeterminism; nil means FirstChooser.
	Chooser Chooser
	// Listeners observe fired transitions.
	Listeners []Listener
	// MaxActionsPerInstant bounds action transitions at one time point to
	// detect livelocks; 0 means the default of 10 million. Livelocks are
	// normally caught much earlier by state-recurrence detection, which
	// starts probing after a fraction of this bound.
	MaxActionsPerInstant int
	// Budget bounds the run's resources; the zero value is unlimited.
	// Exhaustion stops the run cleanly with a *RunError carrying partial
	// results.
	Budget Budget
	// DiagTraceDepth is the number of trailing synchronization events kept
	// for error diagnostics (counterexample prefixes). 0 means
	// DefaultDiagTraceDepth; negative disables the recording.
	DiagTraceDepth int
	// Backend selects the interpretation strategy; the zero value is the
	// event-driven runtime.
	Backend Backend
	// Naive is the legacy spelling of Backend: BackendNaive. When set it
	// overrides Backend.
	Naive bool
	// CheckEngine cross-checks the interpretation paths after every step.
	// Under BackendEvent the event-driven candidate list and delay bounds
	// are verified against a fresh naive enumeration; under BackendCompiled
	// the compiled runtime is additionally shadowed by an event-driven
	// runtime over the same state, chaining all three backends. Any
	// divergence fails the run. Ignored under BackendNaive.
	CheckEngine bool
	// Probe, when non-nil, collects hot-path counters (transitions by
	// kind, guard evaluations, enabled-cache effectiveness, deadline-heap
	// activity) during the run. A nil probe costs one predictable branch
	// per step. The probe may be shared across concurrent runs; its
	// counters are atomic.
	Probe *obs.Probe
	// Logger, when non-nil, receives structured engine events. At Debug
	// level every fired transition is logged with the chooser's candidate
	// index (and seed, for Seeded choosers), making nondeterministic runs
	// reproducible from logs alone.
	Logger *slog.Logger
	// Flight, when non-nil, records recent engine events (time advances,
	// fired edges, chooser seed and choices) into a fixed ring for
	// post-mortem dumps. A nil recorder costs one predictable branch per
	// event site; an enabled one never allocates.
	Flight *obs.FlightRecorder
}

// Result summarizes a completed run.
type Result struct {
	// Time is the model time when the run stopped.
	Time int64
	// Actions is the number of action transitions fired.
	Actions int
	// Delays is the number of delay transitions taken.
	Delays int
	// Quiescent is true when the run ended because no further action or
	// bounded delay was possible before the horizon.
	Quiescent bool
}

// Engine interprets a network deterministically from its initial state.
// The zero value is not usable; create one with NewEngine. An Engine is
// reusable: Reset restores the initial state while keeping the runtime
// caches, the budget tracker and the diagnostic ring allocated, so a
// Reset+Run cycle allocates nothing in steady state under BackendCompiled.
type Engine struct {
	net  *Network
	s    *State
	init *State // snapshot for Reset
	opts Options

	// Persistent per-engine scratch, reused across runs.
	rt     *engineRuntime
	crt    *compiledRuntime
	trk    Tracker
	ring   *traceRing
	cands  []Transition
	shadow []Transition
	keyBuf []byte
	tr     Transition // the step's chosen transition (persistent so taking
	// its address for listeners does not force a per-step heap allocation)
}

// NewEngine returns an engine positioned at the network's initial state.
func NewEngine(net *Network, opts Options) *Engine {
	if opts.Chooser == nil {
		opts.Chooser = FirstChooser{}
	}
	if opts.MaxActionsPerInstant == 0 {
		opts.MaxActionsPerInstant = 10_000_000
	}
	if opts.Naive {
		opts.Backend = BackendNaive
	}
	s := net.InitialState()
	return &Engine{net: net, s: s, init: s.Clone(), opts: opts}
}

// State exposes the engine's current state (mutated by Run).
func (e *Engine) State() *State { return e.s }

// Backend reports the engine's interpretation backend.
func (e *Engine) Backend() Backend { return e.opts.Backend }

// Reset restores the engine to the network's initial state in place,
// keeping every allocation (runtime caches, heaps, arenas, the diagnostic
// ring) for the next run.
func (e *Engine) Reset() {
	copy(e.s.Locs, e.init.Locs)
	copy(e.s.Clocks, e.init.Clocks)
	copy(e.s.Vars, e.init.Vars)
	e.s.Time = e.init.Time
	if e.rt != nil {
		e.rt.reset()
	}
	if e.crt != nil {
		e.crt.reset()
	}
	if e.ring != nil {
		e.ring.reset()
	}
}

// SetListeners replaces the engine's listener set for the next run. Most
// Options are fixed at NewEngine, but a persistent engine reused across
// Reset+Run cycles needs a fresh trace-building listener per run; this is
// that one mutable slot. Must not be called while a run is in progress.
func (e *Engine) SetListeners(ls []Listener) { e.opts.Listeners = ls }

// SetBudget replaces the engine's resource budget for the next run — the
// per-run counterpart of SetListeners for persistent engines (the budget
// tracker re-arms from Options at every RunContext). Must not be called
// while a run is in progress.
func (e *Engine) SetBudget(b Budget) { e.opts.Budget = b }

// SetFlight replaces the engine's flight recorder for the next run (nil
// disables). Like SetListeners, this is a per-run mutable slot for
// persistent engines. Must not be called while a run is in progress.
func (e *Engine) SetFlight(f *obs.FlightRecorder) { e.opts.Flight = f }

// SetLogger replaces the engine's logger for the next run (nil disables),
// so a cached engine logs with the current request's attribution. Must
// not be called while a run is in progress.
func (e *Engine) SetLogger(lg *slog.Logger) { e.opts.Logger = lg }

// Run interprets the network until the horizon, quiescence, or an error
// (time-stop deadlock, livelock, or a semantics violation). It is
// RunContext under context.Background().
func (e *Engine) Run() (Result, error) { return e.RunContext(context.Background()) }

// livelockProbe returns the per-instant action count after which the engine
// starts hashing states to detect recurrence (the precise livelock test);
// MaxActionsPerInstant stays as the hard cap for non-recurring livelocks
// (e.g. an unbounded counter growing at one instant).
func livelockProbe(maxActions int) int {
	const probe = 512
	if maxActions/2 < probe {
		return maxActions/2 + 1
	}
	return probe
}

// livelockParticipants names the automata that fired at the current instant
// (from the recent-event ring) with their current locations.
func livelockParticipants(n *Network, s *State, events []SyncEvent) []BlockedAutomaton {
	seen := make(map[int]bool)
	for _, ev := range events {
		if ev.Time != s.Time {
			continue
		}
		for _, p := range ev.Parts {
			seen[p.Aut] = true
		}
	}
	var out []BlockedAutomaton
	for ai, a := range n.Automata {
		if !seen[ai] {
			continue
		}
		out = append(out, BlockedAutomaton{Automaton: a.Name, Location: a.LocationName(s.Locs[ai])})
	}
	return out
}

// RunContext interprets the network until the horizon, quiescence, an
// error, context cancellation or budget exhaustion. Cancellation and
// budget exhaustion return a *RunError carrying the partial Result (also
// returned directly) and a bounded trace prefix; progress failures return a
// *DeadlockError naming the blocked automata.
func (e *Engine) RunContext(ctx context.Context) (res Result, err error) {
	if e.opts.Horizon <= 0 {
		return Result{}, fmt.Errorf("nsa: non-positive horizon %d", e.opts.Horizon)
	}
	e.trk.init(ctx, e.opts.Budget)
	if e.ring == nil {
		e.ring = newTraceRing(e.opts.DiagTraceDepth)
	}
	ring := e.ring
	defer func() {
		// Engine boundary: expression-evaluation panics that escape Fire's
		// per-transition recovery (guard and invariant evaluation inside
		// EnabledTransitions / DelayBound) become structured errors instead
		// of crashing the caller. Non-RuntimeError panics are programmer
		// errors and propagate.
		if r := recover(); r != nil {
			re, ok := r.(*expr.RuntimeError)
			if !ok {
				panic(r)
			}
			res.Time = e.s.Time
			err = &SemanticsError{Time: e.s.Time,
				Msg: fmt.Sprintf("evaluating %s: %v", e.net.LocationString(e.s), re)}
		}
	}()
	probe := e.opts.Probe
	fl := e.opts.Flight
	var lg *slog.Logger
	if e.opts.Logger != nil && e.opts.Logger.Enabled(ctx, slog.LevelDebug) {
		lg = e.opts.Logger
		if sd, ok := e.opts.Chooser.(Seeded); ok {
			lg = lg.With(slog.Int64("chooser_seed", sd.ChooserSeed()))
		}
	}
	if fl != nil {
		if sd, ok := e.opts.Chooser.(Seeded); ok {
			fl.Record(obs.FlightSeed, e.s.Time, sd.ChooserSeed(), 0, "")
		}
	}
	var rt *engineRuntime
	var crt *compiledRuntime
	switch e.opts.Backend {
	case BackendNaive:
	case BackendCompiled:
		if e.crt == nil {
			e.crt = newCompiledRuntime(e.net, e.s, probe)
		}
		crt = e.crt
		defer crt.flushStats()
		if e.opts.CheckEngine {
			// Shadow event-driven runtime over the same State: the compiled
			// runtime mutates, the shadow tracks via afterFire/afterAdvance,
			// and their candidate lists and delay bounds must agree exactly.
			if e.rt == nil {
				e.rt = newEngineRuntime(e.net, e.s, nil)
			}
			rt = e.rt
		}
	default:
		if e.rt == nil {
			e.rt = newEngineRuntime(e.net, e.s, probe)
		}
		rt = e.rt
		defer rt.flushStats()
	}
	// The first-transition fast path: with the deterministic default chooser
	// and no per-step observers that need the full list, the compiled
	// runtime selects the first canonical transition directly instead of
	// materializing every candidate.
	_, isFirst := e.opts.Chooser.(FirstChooser)
	useFirst := crt != nil && !e.opts.CheckEngine && lg == nil && isFirst
	cands := e.cands[:0]
	instant := e.s.Time
	actionsThisInstant := 0
	probeAfter := livelockProbe(e.opts.MaxActionsPerInstant)
	var instantSeen map[string]struct{}
	for {
		haveTr := false
		if useFirst {
			e.tr, haveTr = crt.first()
		} else {
			switch {
			case crt != nil:
				cands = crt.enabled(cands[:0])
				if e.opts.CheckEngine {
					e.shadow = rt.enabled(e.shadow[:0])
					if err := e.compareBackends(cands, e.shadow); err != nil {
						return res, err
					}
					if err := e.checkEnabled(cands); err != nil {
						return res, err
					}
				}
			case rt != nil:
				cands = rt.enabled(cands[:0])
				if e.opts.CheckEngine {
					if err := e.checkEnabled(cands); err != nil {
						return res, err
					}
				}
			default:
				cands = e.net.EnabledTransitions(e.s, cands[:0])
			}
			haveTr = len(cands) > 0
		}
		if haveTr {
			if e.s.Time != instant {
				instant = e.s.Time
				actionsThisInstant = 0
				instantSeen = nil
			}
			actionsThisInstant++
			if actionsThisInstant > e.opts.MaxActionsPerInstant {
				return res, &DeadlockError{Kind: Livelock, Time: e.s.Time,
					Msg:     fmt.Sprintf("more than %d actions at one instant", e.opts.MaxActionsPerInstant),
					Blocked: livelockParticipants(e.net, e.s, ring.snapshot()),
					Trace:   ring.snapshot()}
			}
			if actionsThisInstant >= probeAfter {
				// Recurrence probe: an action-transition cycle that revisits
				// a state at one instant can never make time progress.
				if instantSeen == nil {
					instantSeen = make(map[string]struct{})
				}
				e.keyBuf = e.s.AppendKey(e.keyBuf[:0])
				if _, dup := instantSeen[string(e.keyBuf)]; dup {
					return res, &DeadlockError{Kind: Livelock, Time: e.s.Time,
						Msg:     "state recurs without time progress",
						Blocked: livelockParticipants(e.net, e.s, ring.snapshot()),
						Trace:   ring.snapshot()}
				}
				instantSeen[string(e.keyBuf)] = struct{}{}
			}
			if rerr := e.trk.Step(e.s.Time); rerr != nil {
				rerr.Time = e.s.Time
				rerr.Trace = ring.snapshot()
				res.Time = e.s.Time
				return res, rerr
			}
			idx := 0
			if !useFirst {
				idx = e.opts.Chooser.Choose(e.s, cands)
				if idx < 0 || idx >= len(cands) {
					return res, fmt.Errorf("nsa: chooser returned %d of %d candidates", idx, len(cands))
				}
				e.tr = cands[idx]
			}
			tr := &e.tr
			fireTime := e.s.Time
			var ferr error
			switch {
			case crt != nil:
				ferr = crt.fire(tr)
				if ferr == nil && rt != nil {
					rt.afterFire(tr, crt.oldLocs)
				}
			case rt != nil:
				ferr = rt.fire(tr)
			default:
				ferr = e.net.Fire(e.s, tr)
			}
			if ferr != nil {
				return res, ferr
			}
			res.Actions++
			if probe != nil {
				probe.Steps.Add(1)
				probe.Actions.Add(1)
				switch tr.Kind {
				case Internal:
					probe.SyncInternal.Add(1)
				case BinarySync:
					probe.SyncBinary.Add(1)
				default:
					probe.SyncBroadcast.Add(1)
				}
			}
			if lg != nil {
				lg.LogAttrs(ctx, slog.LevelDebug, "fire",
					slog.Int64("time", fireTime),
					slog.String("kind", tr.Kind.String()),
					slog.Int("chan", int(tr.Chan)),
					slog.Int("choice", idx),
					slog.Int("candidates", len(cands)))
			}
			if fl != nil {
				var aut int64 = -1
				if len(tr.Parts) > 0 {
					aut = int64(tr.Parts[0].Aut)
				}
				fl.Record(obs.FlightEdge, fireTime, int64(tr.Chan), aut, "")
				if !useFirst && len(cands) > 1 {
					fl.Record(obs.FlightChoice, fireTime, int64(idx), int64(len(cands)), "")
				}
			}
			ring.record(SyncEvent{Time: fireTime, Kind: tr.Kind, Chan: int(tr.Chan), Parts: tr.Parts})
			for _, l := range e.opts.Listeners {
				l.OnTransition(fireTime, tr, e.net, e.s)
			}
			continue
		}
		if e.s.Time >= e.opts.Horizon {
			res.Time = e.s.Time
			e.cands = cands
			return res, nil
		}
		var info DelayInfo
		switch {
		case crt != nil:
			info = crt.delayBound()
			if e.opts.CheckEngine {
				if evInfo := rt.delayBound(); evInfo != info {
					return res, fmt.Errorf("nsa: engine check: at time %d delay divergence: compiled %+v, event %+v", e.s.Time, info, evInfo)
				}
				if want := e.net.DelayBound(e.s); want != info {
					return res, fmt.Errorf("nsa: engine check: at time %d delay divergence: optimized %+v, naive %+v", e.s.Time, info, want)
				}
			}
		case rt != nil:
			info = rt.delayBound()
			if e.opts.CheckEngine {
				if want := e.net.DelayBound(e.s); want != info {
					return res, fmt.Errorf("nsa: engine check: at time %d delay divergence: optimized %+v, naive %+v", e.s.Time, info, want)
				}
			}
		default:
			info = e.net.DelayBound(e.s)
		}
		if info.Blocked {
			return res, &DeadlockError{Kind: Timelock, Time: e.s.Time,
				Msg:     "no transition enabled but a committed location or urgent synchronization forbids delay",
				Blocked: e.net.BlockedReport(e.s),
				Trace:   ring.snapshot()}
		}
		d := info.Step()
		if d == expr.NoBound {
			// Nothing will ever happen again: quiescent.
			res.Time = e.s.Time
			res.Quiescent = true
			e.cands = cands
			return res, nil
		}
		if d <= 0 {
			return res, &DeadlockError{Kind: Timelock, Time: e.s.Time,
				Msg:     fmt.Sprintf("invariant bounds delay at %d with no enabled transition", d),
				Blocked: e.net.BlockedReport(e.s),
				Trace:   ring.snapshot()}
		}
		if rerr := e.trk.Step(e.s.Time); rerr != nil {
			rerr.Time = e.s.Time
			rerr.Trace = ring.snapshot()
			res.Time = e.s.Time
			return res, rerr
		}
		if remaining := e.opts.Horizon - e.s.Time; d > remaining {
			d = remaining
		}
		var aerr error
		switch {
		case crt != nil:
			aerr = crt.advance(d)
			if aerr == nil && rt != nil {
				rt.afterAdvance()
			}
		case rt != nil:
			aerr = rt.advance(d)
		default:
			aerr = e.net.Advance(e.s, d)
		}
		if aerr != nil {
			return res, aerr
		}
		res.Delays++
		if probe != nil {
			probe.Steps.Add(1)
			probe.Delays.Add(1)
		}
		if fl != nil {
			fl.Record(obs.FlightInstant, e.s.Time, d, 0, "")
		}
		if lg != nil {
			lg.LogAttrs(ctx, slog.LevelDebug, "delay",
				slog.Int64("time", e.s.Time),
				slog.Int64("delta", d))
		}
	}
}

// compareBackends verifies the compiled and event-driven candidate lists
// agree exactly (CheckEngine under BackendCompiled).
func (e *Engine) compareBackends(compiled, event []Transition) error {
	mismatch := len(compiled) != len(event)
	if !mismatch {
		for i := range compiled {
			if !sameTransition(&compiled[i], &event[i]) {
				mismatch = true
				break
			}
		}
	}
	if !mismatch {
		return nil
	}
	return fmt.Errorf("nsa: engine check: at time %d enabled-set divergence:\ncompiled (%d): %s\nevent    (%d): %s",
		e.s.Time, len(compiled), formatTransitions(e.net, compiled), len(event), formatTransitions(e.net, event))
}

func formatTransitions(n *Network, ts []Transition) string {
	out := ""
	for i := range ts {
		if i > 0 {
			out += "; "
		}
		out += ts[i].String(n)
	}
	return "[" + out + "]"
}

// checkEnabled compares the event-driven runtime's candidate list against a
// fresh naive enumeration of the same state (CheckEngine mode).
func (e *Engine) checkEnabled(cands []Transition) error {
	want := e.net.EnabledTransitions(e.s, nil)
	mismatch := len(want) != len(cands)
	if !mismatch {
		for i := range want {
			if !sameTransition(&want[i], &cands[i]) {
				mismatch = true
				break
			}
		}
	}
	if !mismatch {
		return nil
	}
	format := func(ts []Transition) string {
		out := ""
		for i := range ts {
			if i > 0 {
				out += "; "
			}
			out += ts[i].String(e.net)
		}
		return "[" + out + "]"
	}
	return fmt.Errorf("nsa: engine check: at time %d enabled-set divergence:\noptimized (%d): %s\nnaive     (%d): %s",
		e.s.Time, len(cands), format(cands), len(want), format(want))
}

// sameTransition reports structural equality of two transitions.
func sameTransition(a, b *Transition) bool {
	if a.Kind != b.Kind || a.Chan != b.Chan || len(a.Parts) != len(b.Parts) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	return true
}

// Simulate is a convenience wrapper: build an engine, attach a SyncTrace,
// run, and return the trace alongside the result.
func Simulate(net *Network, horizon int64) (*SyncTrace, Result, error) {
	return SimulateContext(context.Background(), net, horizon, Budget{})
}

// SimulateContext is Simulate with a context and budget. On budget
// exhaustion or cancellation the returned trace holds the prefix produced
// so far and the error is a *RunError.
func SimulateContext(ctx context.Context, net *Network, horizon int64, b Budget) (*SyncTrace, Result, error) {
	tr := &SyncTrace{}
	eng := NewEngine(net, Options{Horizon: horizon, Listeners: []Listener{tr}, Budget: b})
	res, err := eng.RunContext(ctx)
	return tr, res, err
}

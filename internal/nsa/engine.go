package nsa

import (
	"fmt"
	"math/rand"

	"stopwatchsim/internal/expr"
)

// Chooser selects which of the enabled transitions to fire. The paper proves
// all choices yield equivalent system traces; the engine defaults to the
// first transition in canonical order, and RandomChooser exists to exercise
// that theorem in tests.
type Chooser interface {
	Choose(s *State, cands []Transition) int
}

// FirstChooser picks the first transition in canonical order. It is the
// deterministic default.
type FirstChooser struct{}

// Choose implements Chooser.
func (FirstChooser) Choose(*State, []Transition) int { return 0 }

// RandomChooser picks a uniformly random enabled transition from a seeded
// source, for determinism testing.
type RandomChooser struct{ Rng *rand.Rand }

// Choose implements Chooser.
func (c RandomChooser) Choose(_ *State, cands []Transition) int {
	return c.Rng.Intn(len(cands))
}

// Listener observes fired transitions. Time is the model time at firing and
// s is the state after the transition; listeners must not mutate it.
type Listener interface {
	OnTransition(time int64, tr *Transition, net *Network, s *State)
}

// ListenerFunc adapts a function to Listener.
type ListenerFunc func(time int64, tr *Transition, net *Network, s *State)

// OnTransition implements Listener.
func (f ListenerFunc) OnTransition(time int64, tr *Transition, net *Network, s *State) {
	f(time, tr, net, s)
}

// SyncEvent is one recorded synchronization or internal step:
// ⟨channel, participating automata, time⟩ in the paper's terms.
type SyncEvent struct {
	Time  int64
	Kind  TransKind
	Chan  int // -1 for internal transitions
	Parts []Part
}

// SyncTrace records all transitions of a run, the NSA trace of the paper.
type SyncTrace struct {
	Events []SyncEvent
}

// OnTransition implements Listener.
func (t *SyncTrace) OnTransition(time int64, tr *Transition, _ *Network, _ *State) {
	parts := make([]Part, len(tr.Parts))
	copy(parts, tr.Parts)
	t.Events = append(t.Events, SyncEvent{Time: time, Kind: tr.Kind, Chan: int(tr.Chan), Parts: parts})
}

// Options configure a run.
type Options struct {
	// Horizon is the model time at which the run stops (exclusive of
	// further delay; actions at exactly Horizon still fire). Required.
	Horizon int64
	// Chooser resolves nondeterminism; nil means FirstChooser.
	Chooser Chooser
	// Listeners observe fired transitions.
	Listeners []Listener
	// MaxActionsPerInstant bounds action transitions at one time point to
	// detect livelocks; 0 means the default of 10 million.
	MaxActionsPerInstant int
}

// Result summarizes a completed run.
type Result struct {
	// Time is the model time when the run stopped.
	Time int64
	// Actions is the number of action transitions fired.
	Actions int
	// Delays is the number of delay transitions taken.
	Delays int
	// Quiescent is true when the run ended because no further action or
	// bounded delay was possible before the horizon.
	Quiescent bool
}

// Engine interprets a network deterministically from its initial state.
// The zero value is not usable; create one per run with NewEngine.
type Engine struct {
	net  *Network
	s    *State
	opts Options
}

// NewEngine returns an engine positioned at the network's initial state.
func NewEngine(net *Network, opts Options) *Engine {
	if opts.Chooser == nil {
		opts.Chooser = FirstChooser{}
	}
	if opts.MaxActionsPerInstant == 0 {
		opts.MaxActionsPerInstant = 10_000_000
	}
	return &Engine{net: net, s: net.InitialState(), opts: opts}
}

// State exposes the engine's current state (mutated by Run).
func (e *Engine) State() *State { return e.s }

// Run interprets the network until the horizon, quiescence, or an error
// (time-stop deadlock, livelock, or a semantics violation).
func (e *Engine) Run() (Result, error) {
	if e.opts.Horizon <= 0 {
		return Result{}, fmt.Errorf("nsa: non-positive horizon %d", e.opts.Horizon)
	}
	var res Result
	var cands []Transition
	instant := e.s.Time
	actionsThisInstant := 0
	for {
		cands = e.net.EnabledTransitions(e.s, cands[:0])
		if len(cands) > 0 {
			if e.s.Time != instant {
				instant = e.s.Time
				actionsThisInstant = 0
			}
			actionsThisInstant++
			if actionsThisInstant > e.opts.MaxActionsPerInstant {
				return res, &SemanticsError{Time: e.s.Time,
					Msg: fmt.Sprintf("livelock: more than %d actions at one instant", e.opts.MaxActionsPerInstant)}
			}
			idx := e.opts.Chooser.Choose(e.s, cands)
			if idx < 0 || idx >= len(cands) {
				return res, fmt.Errorf("nsa: chooser returned %d of %d candidates", idx, len(cands))
			}
			tr := cands[idx]
			fireTime := e.s.Time
			if err := e.net.Fire(e.s, &tr); err != nil {
				return res, err
			}
			res.Actions++
			for _, l := range e.opts.Listeners {
				l.OnTransition(fireTime, &tr, e.net, e.s)
			}
			continue
		}
		if e.s.Time >= e.opts.Horizon {
			res.Time = e.s.Time
			return res, nil
		}
		info := e.net.DelayBound(e.s)
		if info.Blocked {
			return res, &SemanticsError{Time: e.s.Time,
				Msg: fmt.Sprintf("time-stop deadlock: committed location or urgent sync pending but no transition enabled (%s)", e.net.LocationString(e.s))}
		}
		d := info.Step()
		if d == expr.NoBound {
			// Nothing will ever happen again: quiescent.
			res.Time = e.s.Time
			res.Quiescent = true
			return res, nil
		}
		if d <= 0 {
			return res, &SemanticsError{Time: e.s.Time,
				Msg: fmt.Sprintf("time-stop deadlock: invariant bound %d with no enabled transition (%s)", d, e.net.LocationString(e.s))}
		}
		if remaining := e.opts.Horizon - e.s.Time; d > remaining {
			d = remaining
		}
		if err := e.net.Advance(e.s, d); err != nil {
			return res, err
		}
		res.Delays++
	}
}

// Simulate is a convenience wrapper: build an engine, attach a SyncTrace,
// run, and return the trace alongside the result.
func Simulate(net *Network, horizon int64) (*SyncTrace, Result, error) {
	tr := &SyncTrace{}
	eng := NewEngine(net, Options{Horizon: horizon, Listeners: []Listener{tr}})
	res, err := eng.Run()
	return tr, res, err
}

package nsa

import (
	"slices"

	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/sa"
)

// partsArena is a flat backing store for Transition.Parts slices: one
// growing []Part instead of one allocation per transition. Slices handed out
// use full slice expressions so appends by consumers cannot clobber
// neighboring transitions.
type partsArena struct{ buf []Part }

func (a *partsArena) reset() { a.buf = a.buf[:0] }

func (a *partsArena) one(p Part) []Part {
	start := len(a.buf)
	a.buf = append(a.buf, p)
	return a.buf[start : start+1 : start+1]
}

func (a *partsArena) two(p, q Part) []Part {
	start := len(a.buf)
	a.buf = append(a.buf, p, q)
	return a.buf[start : start+2 : start+2]
}

func (a *partsArena) copyOf(ps []Part) []Part {
	start := len(a.buf)
	a.buf = append(a.buf, ps...)
	end := len(a.buf)
	return a.buf[start:end:end]
}

// chanLists buckets the guard-enabled synchronization halves of one state
// per channel. The per-channel slices are reused across states; touched
// tracks which channels hold entries so reset is proportional to activity,
// not to the channel count.
type chanLists struct {
	sends, recvs [][]half
	touched      []sa.ChanID // channels with at least one half this state
	urgent       []sa.ChanID // the urgent channels among touched
	groups       [][]half    // scratch for broadcast receiver grouping
	combo        []Part      // scratch for broadcast combination expansion
}

func newChanLists(nchans int) *chanLists {
	return &chanLists{sends: make([][]half, nchans), recvs: make([][]half, nchans)}
}

func (c *chanLists) reset() {
	for _, ch := range c.touched {
		c.sends[ch] = c.sends[ch][:0]
		c.recvs[ch] = c.recvs[ch][:0]
	}
	c.touched = c.touched[:0]
	c.urgent = c.urgent[:0]
}

func (c *chanLists) touch(n *Network, ch sa.ChanID) {
	if len(c.sends[ch]) == 0 && len(c.recvs[ch]) == 0 {
		c.touched = append(c.touched, ch)
		if n.Chans[ch].Urgent {
			c.urgent = append(c.urgent, ch)
		}
	}
}

func (c *chanLists) addSend(n *Network, ch sa.ChanID, h half) {
	c.touch(n, ch)
	c.sends[ch] = append(c.sends[ch], h)
}

func (c *chanLists) addRecv(n *Network, ch sa.ChanID, h half) {
	c.touch(n, ch)
	c.recvs[ch] = append(c.recvs[ch], h)
}

// emitSyncs appends the binary and broadcast synchronizations derivable from
// cl, replicating the canonical order of enabledTransitionsRaw exactly:
// binary channels in ascending channel order with sender-major (aut, edge)
// pairs, then broadcast channels with the cartesian product of per-receiver-
// automaton edge choices. Per-channel half lists must be sorted by
// (aut, edge); callers guarantee that by adding halves in ascending automaton
// scan order with edges ascending within an automaton.
func (n *Network) emitSyncs(buf []Transition, s *State, cl *chanLists, committed bool, arena *partsArena) []Transition {
	slices.Sort(cl.touched)
	for _, ch := range cl.touched {
		if n.Chans[ch].Broadcast {
			continue
		}
		for _, snd := range cl.sends[ch] {
			for _, rcv := range cl.recvs[ch] {
				if rcv.aut == snd.aut {
					continue
				}
				if committed && !n.committedAt(s, snd.aut) && !n.committedAt(s, rcv.aut) {
					continue
				}
				buf = append(buf, Transition{
					Kind:  BinarySync,
					Chan:  ch,
					Parts: arena.two(Part{snd.aut, snd.edge}, Part{rcv.aut, rcv.edge}),
				})
			}
		}
	}
	for _, ch := range cl.touched {
		if !n.Chans[ch].Broadcast {
			continue
		}
		for _, snd := range cl.sends[ch] {
			// Group enabled receive edges by automaton, excluding the sender.
			// Groups are contiguous subslices of the sorted receiver list.
			cl.groups = cl.groups[:0]
			committedOK := !committed || n.committedAt(s, snd.aut)
			recvs := cl.recvs[ch]
			for lo := 0; lo < len(recvs); {
				hi := lo + 1
				for hi < len(recvs) && recvs[hi].aut == recvs[lo].aut {
					hi++
				}
				if recvs[lo].aut != snd.aut {
					cl.groups = append(cl.groups, recvs[lo:hi])
					if committed && n.committedAt(s, recvs[lo].aut) {
						committedOK = true
					}
				}
				lo = hi
			}
			if !committedOK {
				continue
			}
			buf = n.emitBroadcastCombos(buf, ch, Part{snd.aut, snd.edge}, cl, arena)
		}
	}
	return buf
}

// emitBroadcastCombos expands the cartesian product of per-automaton receive
// choices in cl.groups, allocating Parts from the arena.
func (n *Network) emitBroadcastCombos(buf []Transition, ch sa.ChanID, snd Part, cl *chanLists, arena *partsArena) []Transition {
	cl.combo = append(cl.combo[:0], snd)
	var rec func(i int)
	rec = func(i int) {
		if i == len(cl.groups) {
			buf = append(buf, Transition{Kind: Broadcast, Chan: ch, Parts: arena.copyOf(cl.combo)})
			return
		}
		for _, h := range cl.groups[i] {
			cl.combo = append(cl.combo, Part{h.aut, h.edge})
			rec(i + 1)
			cl.combo = cl.combo[:len(cl.combo)-1]
		}
	}
	rec(0)
	return buf
}

// Enumerator computes the enabled transitions of arbitrary states of one
// network through the static interpretation index: per-location edges come
// pre-classified by channel and direction with compiled guards, so a call
// costs the enabled halves of the current locations rather than a full
// Sync-label scan with per-state map allocations. Unlike the engine runtime
// it keeps no cross-state caches, so states may be presented in any order —
// this is the model checker's enumeration path.
//
// Returned transitions and their Parts are freshly allocated per call and
// may be retained indefinitely by the caller. An Enumerator is not safe for
// concurrent use.
type Enumerator struct {
	net *Network
	idx *netIndex
	cl  *chanLists
	env stateEnv

	// Probe, when non-nil, counts enabled-set queries and guard
	// evaluations (the exploration analogue of the engine's hot-path
	// probe). Set it before the first Enabled call.
	Probe *obs.Probe
}

// NewEnumerator returns an enumerator over net.
func NewEnumerator(net *Network) *Enumerator {
	return &Enumerator{net: net, idx: net.index(), cl: newChanLists(len(net.Chans))}
}

// Enabled returns the enabled transitions of s in the same canonical order,
// and with the same committed-location and process-priority filters, as
// Network.EnabledTransitions.
func (en *Enumerator) Enabled(s *State) []Transition {
	n := en.net
	en.env.n = n
	en.env.s = s
	committed := n.anyCommitted(s)
	en.cl.reset()
	var arena partsArena // fresh per call: results are retained by callers
	var buf []Transition
	vars, clocks := s.Vars, s.Clocks
	counting := en.Probe != nil
	var evals, fast, opaque int64
	for ai := range n.Automata {
		li := &en.idx.locs[ai][s.Locs[ai]]
		for i := range li.edges {
			e := &li.edges[i]
			if e.dir == sa.NoSync && committed && !li.committed {
				continue
			}
			if counting {
				evals++
				if e.fast != nil {
					fast++
				} else if e.slow != nil {
					opaque++
				}
			}
			switch e.dir {
			case sa.NoSync:
				if e.evalGuard(vars, clocks, &en.env) {
					buf = append(buf, Transition{Kind: Internal, Chan: sa.NoChan, Parts: arena.one(Part{ai, int(e.edge)})})
				}
			case sa.Send:
				if e.evalGuard(vars, clocks, &en.env) {
					en.cl.addSend(n, e.ch, half{ai, int(e.edge)})
				}
			case sa.Recv:
				if e.evalGuard(vars, clocks, &en.env) {
					en.cl.addRecv(n, e.ch, half{ai, int(e.edge)})
				}
			}
		}
	}
	buf = n.emitSyncs(buf, s, en.cl, committed, &arena)
	if p := en.Probe; p != nil {
		p.EnabledCalls.Add(1)
		p.GuardEvals.Add(evals)
		p.GuardCompiled.Add(fast)
		p.GuardOpaque.Add(opaque)
	}
	return n.filterPriority(buf)
}

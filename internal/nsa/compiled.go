package nsa

import (
	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/sa"
)

// compiledRuntime is the compiled interpretation backend: it executes the
// network's flat compiledNet form against a persistent structure-of-arrays
// scratch arena, allocating nothing on the steady-state hot path. Beyond the
// event-driven runtime's dirty tracking it adds three mechanisms:
//
//   - Guards and updates run as inlined comparisons or expression bytecode
//     (compiledNet), not closure chains, with one shared register file.
//   - Enabled-set maintenance and deadline maintenance are split into two
//     dirt planes. Per-channel synchronization half lists are maintained
//     incrementally (sorted surgery on location changes) instead of being
//     rebuilt every step, which makes selecting the first transition in
//     canonical order possible without materializing the candidate list.
//   - Deadline recomputation is deferred and batched per instant: automata
//     dirtied by the actions of one time point recompute their invariant
//     expiry and guard wake-up once, when the instant's delay bound is
//     finally queried, not once per action.
//
// The semantics contract is byte-identical to the naive and event-driven
// paths, including SemanticsError messages; engine CheckEngine mode chains
// all three.
type compiledRuntime struct {
	net *Network
	cn  *compiledNet
	idx *netIndex
	s   *State
	env stateEnv

	regs []int64 // shared bytecode register file (cn.maxRegs)

	// Cached per-automaton enabled sets, valid unless enDirty.
	enInternal [][]int32
	enSend     [][]halfRef
	enRecv     [][]halfRef
	// wakeEdges[ai] indexes the disabled waker edges of ai's current
	// location (positions in cloc.edges), the edges contributing wake-up
	// points.
	wakeEdges [][]int32

	// gen[ai] invalidates heap entries; bumped by recomputeDeadline.
	gen []uint32

	// The enabled dirt plane: recomputed by settle before any query.
	enDirty []bool
	enList  []int32
	// The deadline dirt plane: reconciled by delayBound, at most once per
	// instant.
	dlDirty []bool
	dlList  []int32

	activeInternal autSet // automata with ≥1 enabled internal edge
	clockSens      autSet // automata whose current location is clock-sensitive
	volatileWake   autSet // automata with a disabled volatile-waker edge
	activeCh       autSet // channels with ≥1 enabled half (IDs, not automata)
	// first()'s hot loops iterate these instead of activeCh: activeBin holds
	// binary channels with at least one sender AND one receiver, activeBcast
	// broadcast channels with at least one sender. Both stay sorted
	// (ascending channel ID), preserving the canonical enumeration order.
	activeBin   autSet
	activeBcast autSet

	// cl holds the persistent per-channel half lists, sorted by (aut, edge).
	// Unlike the event runtime the lists are maintained incrementally and
	// never reset between steps; cl.touched is refilled from activeCh when
	// the full candidate enumeration needs it.
	cl    *chanLists
	arena partsArena

	stopCount []int32
	stopped   []bool
	running   func(int) bool

	committedCount int

	expiry timeHeap // invariant expiry deadlines (absolute)
	wakes  timeHeap // guard wake-up points (absolute)

	oldLocs []sa.LocID // scratch for fire

	// Scratch for recomputeEnabled's set comparison.
	scrInt  []int32
	scrSend []halfRef
	scrRecv []halfRef
	scrWake []int32

	probe *obs.Probe
	statGuard, statByte, statSlow, statPush int64
	statDl, statUnchanged, statFirst        int64
}

func newCompiledRuntime(net *Network, s *State, probe *obs.Probe) *compiledRuntime {
	cn := net.compiled()
	na := len(net.Automata)
	r := &compiledRuntime{
		net:        net,
		cn:         cn,
		idx:        net.index(),
		s:          s,
		env:        stateEnv{n: net, s: s},
		regs:       make([]int64, cn.maxRegs),
		enInternal: make([][]int32, na),
		enSend:     make([][]halfRef, na),
		enRecv:     make([][]halfRef, na),
		wakeEdges:  make([][]int32, na),
		gen:        make([]uint32, na),
		enDirty:    make([]bool, na),
		dlDirty:    make([]bool, na),

		activeInternal: newAutSet(na),
		clockSens:      newAutSet(na),
		volatileWake:   newAutSet(na),
		activeCh:       newAutSet(len(net.Chans)),
		activeBin:      newAutSet(len(net.Chans)),
		activeBcast:    newAutSet(len(net.Chans)),

		cl:        newChanLists(len(net.Chans)),
		stopCount: make([]int32, len(net.Clocks)),
		stopped:   make([]bool, len(net.Clocks)),
		probe:     probe,
	}
	r.running = func(c int) bool { return !r.stopped[c] }
	r.seed()
	return r
}

// seed derives all incremental state from the current State and marks both
// dirt planes everywhere, like newEngineRuntime's constructor loop.
func (r *compiledRuntime) seed() {
	for ai := range r.net.Automata {
		loc := int(r.s.Locs[ai])
		c := &r.cn.locs[r.cn.locBase[ai]+int32(loc)]
		if c.committed {
			r.committedCount++
		}
		if c.clockSensitive {
			r.clockSens.insert(int32(ai))
		}
		for _, cl := range r.net.Automata[ai].Locations[loc].Stopped {
			r.stopCount[cl]++
			r.stopped[cl] = true
		}
		r.markEn(int32(ai))
		r.markDl(int32(ai))
	}
}

// reset discards all cached incremental state and re-seeds from the
// runtime's State (restored by the caller), keeping allocations for reuse.
func (r *compiledRuntime) reset() {
	for ai := range r.enDirty {
		r.enInternal[ai] = r.enInternal[ai][:0]
		r.enSend[ai] = r.enSend[ai][:0]
		r.enRecv[ai] = r.enRecv[ai][:0]
		r.wakeEdges[ai] = r.wakeEdges[ai][:0]
		r.enDirty[ai] = false
		r.dlDirty[ai] = false
	}
	r.enList = r.enList[:0]
	r.dlList = r.dlList[:0]
	r.activeInternal.clear()
	r.clockSens.clear()
	r.volatileWake.clear()
	for _, ch := range r.activeCh.list {
		r.cl.sends[ch] = r.cl.sends[ch][:0]
		r.cl.recvs[ch] = r.cl.recvs[ch][:0]
	}
	r.activeCh.clear()
	r.activeBin.clear()
	r.activeBcast.clear()
	r.cl.touched = r.cl.touched[:0]
	r.arena.reset()
	for c := range r.stopCount {
		r.stopCount[c] = 0
		r.stopped[c] = false
	}
	r.committedCount = 0
	r.expiry.e = r.expiry.e[:0]
	r.wakes.e = r.wakes.e[:0]
	r.seed()
}

func (r *compiledRuntime) markEn(ai int32) {
	if !r.enDirty[ai] {
		r.enDirty[ai] = true
		r.enList = append(r.enList, ai)
	}
}

func (r *compiledRuntime) markDl(ai int32) {
	if !r.dlDirty[ai] {
		r.dlDirty[ai] = true
		r.dlList = append(r.dlList, ai)
	}
}

func (r *compiledRuntime) markBoth(ais []int32) {
	for _, ai := range ais {
		r.markEn(ai)
		r.markDl(ai)
	}
}

func (r *compiledRuntime) dirtyAllBoth() {
	for ai := range r.enDirty {
		r.markEn(int32(ai))
		r.markDl(int32(ai))
	}
}

// evalGuard evaluates one pre-classified guard, cheapest tier first.
func (r *compiledRuntime) evalGuard(ce *cedge) bool {
	switch ce.gkind {
	case gTrue:
		return true
	case gVarCmpK:
		return cmpConst(r.s.Vars[ce.gidx], ce.gop, ce.gk)
	case gClockCmpK:
		return cmpConst(r.s.Clocks[ce.gidx], ce.gop, ce.gk)
	case gCmpList:
		for i := ce.gidx; i < ce.gidx+ce.gn; i++ {
			c := &r.cn.cmps[i]
			v := r.s.Vars
			if c.IsClock {
				v = r.s.Clocks
			}
			if !cmpConst(v[c.Idx], c.Op, c.K) {
				return false
			}
		}
		return true
	case gProg:
		return r.cn.progs[ce.gidx].EvalBool(r.s.Vars, r.s.Clocks, r.regs)
	case gClosure:
		return r.cn.fns[ce.gidx](r.s.Vars, r.s.Clocks)
	default: // gOpaque
		return guardHolds(r.cn.slows[ce.gidx], &r.env)
	}
}

func cmpConst(v int64, op expr.Op, k int64) bool {
	switch op {
	case expr.OpLT:
		return v < k
	case expr.OpLE:
		return v <= k
	case expr.OpGT:
		return v > k
	case expr.OpGE:
		return v >= k
	case expr.OpEQ:
		return v == k
	default: // OpNE
		return v != k
	}
}

// settle recomputes the enabled sets of every dirty automaton (plus the
// always-dirty ones). Both query paths (first, enabled) and delayBound call
// it; on a clean plane it is a no-op.
func (r *compiledRuntime) settle() {
	for _, ai := range r.idx.alwaysDirty {
		// Opaque footprints can change anything between steps, including
		// wake points and delay room: keep both planes dirty.
		r.markEn(ai)
		r.markDl(ai)
	}
	nd := len(r.enList)
	for _, ai := range r.enList {
		r.recomputeEnabled(ai)
		r.enDirty[ai] = false
	}
	r.enList = r.enList[:0]
	if p := r.probe; p != nil {
		p.Recomputes.Add(int64(nd))
		p.CacheReuses.Add(int64(len(r.enDirty) - nd))
		p.DirtyTotal.Add(int64(nd))
		p.RaiseDirtyMax(int64(nd))
	}
}

// recomputeEnabled re-evaluates every guard of ai's current location into
// scratch, and only when the result differs from the cached sets performs
// the list surgery (active sets, per-channel half lists) and marks the
// deadline plane. Unchanged results — the common case after a delay dirties
// every clock-sensitive automaton — cost the guard evaluations and one
// comparison, nothing else.
func (r *compiledRuntime) recomputeEnabled(ai int32) {
	c := r.cn.loc(ai, r.s)
	counting := r.probe != nil
	r.scrInt = r.scrInt[:0]
	r.scrSend = r.scrSend[:0]
	r.scrRecv = r.scrRecv[:0]
	r.scrWake = r.scrWake[:0]
	hasVolatile := false
	for i := range c.edges {
		ce := &c.edges[i]
		if counting {
			r.statGuard++
			switch ce.gkind {
			case gVarCmpK, gClockCmpK, gCmpList, gProg:
				r.statByte++
			case gOpaque:
				r.statSlow++
			}
		}
		if r.evalGuard(ce) {
			switch ce.dir {
			case sa.NoSync:
				r.scrInt = append(r.scrInt, ce.edge)
			case sa.Send:
				r.scrSend = append(r.scrSend, halfRef{ce.edge, ce.ch})
			case sa.Recv:
				r.scrRecv = append(r.scrRecv, halfRef{ce.edge, ce.ch})
			}
		} else if ce.waker >= 0 {
			r.scrWake = append(r.scrWake, int32(i))
			if ce.volatileWaker {
				hasVolatile = true
			}
		}
	}

	if eqInt32(r.scrInt, r.enInternal[ai]) && eqHalfRef(r.scrSend, r.enSend[ai]) &&
		eqHalfRef(r.scrRecv, r.enRecv[ai]) && eqInt32(r.scrWake, r.wakeEdges[ai]) {
		r.statUnchanged++
		return
	}

	if wasInt, nowInt := len(r.enInternal[ai]) > 0, len(r.scrInt) > 0; wasInt != nowInt {
		if nowInt {
			r.activeInternal.insert(ai)
		} else {
			r.activeInternal.remove(ai)
		}
	}
	for _, h := range r.enSend[ai] {
		r.cl.sends[h.ch] = removeHalf(r.cl.sends[h.ch], half{int(ai), int(h.edge)})
		r.updateChanIndex(h.ch)
	}
	for _, h := range r.enRecv[ai] {
		r.cl.recvs[h.ch] = removeHalf(r.cl.recvs[h.ch], half{int(ai), int(h.edge)})
		r.updateChanIndex(h.ch)
	}
	r.enInternal[ai] = append(r.enInternal[ai][:0], r.scrInt...)
	r.enSend[ai] = append(r.enSend[ai][:0], r.scrSend...)
	r.enRecv[ai] = append(r.enRecv[ai][:0], r.scrRecv...)
	r.wakeEdges[ai] = append(r.wakeEdges[ai][:0], r.scrWake...)
	for _, h := range r.enSend[ai] {
		r.cl.sends[h.ch] = insertHalf(r.cl.sends[h.ch], half{int(ai), int(h.edge)})
		r.updateChanIndex(h.ch)
	}
	for _, h := range r.enRecv[ai] {
		r.cl.recvs[h.ch] = insertHalf(r.cl.recvs[h.ch], half{int(ai), int(h.edge)})
		r.updateChanIndex(h.ch)
	}
	if hasVolatile {
		r.volatileWake.insert(ai)
	} else {
		r.volatileWake.remove(ai)
	}
	r.markDl(ai)
}

// updateChanIndex reconciles all three channel index sets with the current
// half-list lengths of ch, after any insertHalf/removeHalf surgery.
func (r *compiledRuntime) updateChanIndex(ch sa.ChanID) {
	ns, nr := len(r.cl.sends[ch]), len(r.cl.recvs[ch])
	if ns == 0 && nr == 0 {
		r.activeCh.remove(int32(ch))
	} else {
		r.activeCh.insert(int32(ch))
	}
	if r.cn.broadcast[ch] {
		if ns > 0 {
			r.activeBcast.insert(int32(ch))
		} else {
			r.activeBcast.remove(int32(ch))
		}
		return
	}
	if ns > 0 && nr > 0 {
		r.activeBin.insert(int32(ch))
	} else {
		r.activeBin.remove(int32(ch))
	}
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqHalfRef(a, b []halfRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insertHalf inserts h into a (aut, edge)-sorted list; removeHalf deletes
// it. The lists are per channel and typically hold a handful of halves, so
// linear scans beat binary search plus copy.
func insertHalf(list []half, h half) []half {
	i := len(list)
	for i > 0 && (list[i-1].aut > h.aut || (list[i-1].aut == h.aut && list[i-1].edge > h.edge)) {
		i--
	}
	list = append(list, half{})
	copy(list[i+1:], list[i:])
	list[i] = h
	return list
}

func removeHalf(list []half, h half) []half {
	for i := range list {
		if list[i] == h {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func (r *compiledRuntime) locCommitted(ai int) bool {
	return r.cn.loc(int32(ai), r.s).committed
}

// first returns the first enabled transition in the canonical order of
// EnabledTransitions — after the committed-location and process-priority
// filters — without materializing the candidate list. With uniform
// priorities (the common case) it returns at the first enabled transition
// found; with mixed priorities it keeps the first transition of the
// maximal-priority class, exactly what filterPriority would leave at
// position zero. The returned Parts live in the runtime's arena until the
// next query.
func (r *compiledRuntime) first() (Transition, bool) {
	r.settle()
	r.statFirst++
	if p := r.probe; p != nil {
		p.EnabledCalls.Add(1)
		r.flushStats()
	}
	r.arena.reset()
	committed := r.committedCount > 0
	cn := r.cn
	// filterPriority starts its running maximum at 0, so a transition with
	// negative priority survives only if nothing reaches 0; replicate that
	// by seeding bestPrio with 0 and requiring the first accepted candidate
	// to meet it.
	bestPrio := int32(0)
	have := false
	var best Transition

	take := func(p int32) bool { return p > bestPrio || (!have && p == bestPrio) }

	for _, ai := range r.activeInternal.list {
		if committed && !r.locCommitted(int(ai)) {
			continue
		}
		if p := cn.prio[ai]; take(p) {
			bestPrio, have = p, true
			best = Transition{Kind: Internal, Chan: sa.NoChan,
				Parts: r.arena.one(Part{int(ai), int(r.enInternal[ai][0])})}
			if p == cn.maxPrio {
				return best, true
			}
		}
	}
	for _, chi := range r.activeBin.list {
		ch := sa.ChanID(chi)
		sends, recvs := r.cl.sends[ch], r.cl.recvs[ch]
		for _, snd := range sends {
			for _, rcv := range recvs {
				if rcv.aut == snd.aut {
					continue
				}
				if committed && !r.locCommitted(snd.aut) && !r.locCommitted(rcv.aut) {
					continue
				}
				p := cn.prio[snd.aut]
				if q := cn.prio[rcv.aut]; q > p {
					p = q
				}
				if take(p) {
					bestPrio, have = p, true
					best = Transition{Kind: BinarySync, Chan: ch,
						Parts: r.arena.two(Part{snd.aut, snd.edge}, Part{rcv.aut, rcv.edge})}
					if p == cn.maxPrio {
						return best, true
					}
				}
			}
		}
	}
	for _, chi := range r.activeBcast.list {
		ch := sa.ChanID(chi)
		for _, snd := range r.cl.sends[ch] {
			// The first combination of a broadcast sender takes the first
			// enabled receive edge of each receiver automaton; every
			// combination of one sender shares the same participant set, so
			// the first one carries the class's priority.
			committedOK := !committed || r.locCommitted(snd.aut)
			p := cn.prio[snd.aut]
			r.cl.combo = append(r.cl.combo[:0], Part{snd.aut, snd.edge})
			recvs := r.cl.recvs[ch]
			for lo := 0; lo < len(recvs); {
				aut := recvs[lo].aut
				if aut != snd.aut {
					r.cl.combo = append(r.cl.combo, Part{aut, recvs[lo].edge})
					if q := cn.prio[aut]; q > p {
						p = q
					}
					if committed && r.locCommitted(aut) {
						committedOK = true
					}
				}
				for lo < len(recvs) && recvs[lo].aut == aut {
					lo++
				}
			}
			if !committedOK {
				continue
			}
			if take(p) {
				bestPrio, have = p, true
				best = Transition{Kind: Broadcast, Chan: ch, Parts: r.arena.copyOf(r.cl.combo)}
				if p == cn.maxPrio {
					return best, true
				}
			}
		}
	}
	return best, have
}

// enabled computes the full candidate list in canonical order, for choosers
// that need all options and for CheckEngine. Parts live in the runtime's
// arena until the next query.
func (r *compiledRuntime) enabled(buf []Transition) []Transition {
	r.settle()
	if p := r.probe; p != nil {
		p.EnabledCalls.Add(1)
		r.flushStats()
	}
	r.arena.reset()
	r.cl.touched = r.cl.touched[:0]
	for _, chi := range r.activeCh.list {
		r.cl.touched = append(r.cl.touched, sa.ChanID(chi))
	}
	committed := r.committedCount > 0
	for _, ai := range r.activeInternal.list {
		if committed && !r.locCommitted(int(ai)) {
			continue
		}
		for _, ei := range r.enInternal[ai] {
			buf = append(buf, Transition{Kind: Internal, Chan: sa.NoChan, Parts: r.arena.one(Part{int(ai), int(ei)})})
		}
	}
	buf = r.net.emitSyncs(buf, r.s, r.cl, committed, &r.arena)
	return r.net.filterPriority(buf)
}

// urgentBlocked reports whether a synchronization over an urgent channel is
// enabled, from the persistent half lists.
func (r *compiledRuntime) urgentBlocked() bool {
	for _, chi := range r.cn.urgentChans {
		ch := sa.ChanID(chi)
		if !r.activeCh.member[chi] {
			continue
		}
		if r.cn.broadcast[ch] {
			if len(r.cl.sends[ch]) > 0 {
				return true
			}
			continue
		}
		for _, snd := range r.cl.sends[ch] {
			for _, rcv := range r.cl.recvs[ch] {
				if rcv.aut != snd.aut {
					return true
				}
			}
		}
	}
	return false
}

// delayBound returns the delay information of the current state. This is
// where the instant's deferred deadline work happens: every automaton the
// instant's actions marked deadline-dirty recomputes its invariant expiry
// and guard wake-up once, here, instead of once per action. Wake entries
// computed from conservative NextEnable estimates may surface at or before
// the current time with the guard still disabled; such entries are
// re-derived on the spot (each re-derivation lands strictly in the future
// or drops the entry, so the loop terminates).
func (r *compiledRuntime) delayBound() DelayInfo {
	if r.committedCount > 0 {
		return DelayInfo{Blocked: true}
	}
	r.settle()
	if r.urgentBlocked() {
		return DelayInfo{Blocked: true}
	}
	for _, ai := range r.dlList {
		if r.dlDirty[ai] {
			r.recomputeDeadline(ai)
		}
	}
	r.dlList = r.dlList[:0]
	now := r.s.Time
	for {
		abs, ai, ok := r.wakes.minEntry(r.gen)
		if !ok || abs > now {
			break
		}
		r.recomputeDeadline(ai)
	}
	info := DelayInfo{Max: expr.NoBound, Wake: expr.NoBound}
	if abs, ok := r.expiry.min(r.gen); ok {
		info.Max = abs - now
	}
	if abs, ok := r.wakes.min(r.gen); ok {
		info.Wake = abs - now
	}
	return info
}

// recomputeDeadline refreshes ai's absolute invariant expiry and guard
// wake-up heap entries, invalidating the old ones via the generation bump.
func (r *compiledRuntime) recomputeDeadline(ai int32) {
	r.statDl++
	r.gen[ai]++
	if len(r.expiry.e)+len(r.wakes.e) > 2*len(r.gen)+64 {
		r.expiry.compact(r.gen)
		r.wakes.compact(r.gen)
	}
	c := r.cn.loc(ai, r.s)
	s := r.s
	if c.inv >= 0 {
		ci := &r.cn.invs[c.inv]
		var d int64
		if ci.slow != nil {
			d = ci.slow.MaxDelay(&r.env, r.running)
		} else {
			d = r.atomsMaxDelay(ci.atoms)
		}
		if d != expr.NoBound {
			r.expiry.push(s.Time+d, ai, r.gen[ai])
			r.statPush++
		}
	}
	wake := expr.NoBound
	for _, i := range r.wakeEdges[ai] {
		ce := &c.edges[i]
		if d := r.cn.wakers[ce.waker].NextEnable(&r.env, r.running); d >= 1 && d < wake {
			wake = d
		}
	}
	if wake != expr.NoBound {
		r.wakes.push(s.Time+wake, ai, r.gen[ai])
		r.statPush++
	}
	r.dlDirty[ai] = false
}

// atomsMaxDelay mirrors expr.Invariant.MaxDelayRaw over the flattened atoms,
// with the constant-bound fast path.
func (r *compiledRuntime) atomsMaxDelay(atoms []catom) int64 {
	d := expr.NoBound
	for i := range atoms {
		a := &atoms[i]
		if a.kind == aFree || r.stopped[a.clock] {
			continue
		}
		b := a.k
		if a.kind == aFnBound {
			b = a.boundFn(r.s.Vars, r.s.Clocks)
		}
		room := b - r.s.Clocks[a.clock]
		if a.strict {
			room--
		}
		if room < d {
			d = room
		}
	}
	return d
}

// atomsHold mirrors expr.Invariant.HoldsRaw over the flattened atoms.
func (r *compiledRuntime) atomsHold(atoms []catom) bool {
	for i := range atoms {
		a := &atoms[i]
		if a.kind == aFree {
			if !a.freeFn(r.s.Vars, r.s.Clocks) {
				return false
			}
			continue
		}
		b := a.k
		if a.kind == aFnBound {
			b = a.boundFn(r.s.Vars, r.s.Clocks)
		}
		c := r.s.Clocks[a.clock]
		if a.strict {
			if c >= b {
				return false
			}
		} else if c > b {
			return false
		}
	}
	return true
}

// fire applies tr through the compiled form (bytecode updates, flattened
// invariants) and maintains the caches. Error construction routes through
// the shared Network helpers, so messages are byte-identical to net.Fire's.
func (r *compiledRuntime) fire(tr *Transition) error {
	if err := r.fireApply(tr); err != nil {
		return err
	}
	r.afterFire(tr, r.oldLocs)
	return nil
}

// fireApply performs the state mutation of tr: phase 1 moves every
// participant and runs its update, phase 2 checks every participant's target
// invariant — the same two-phase structure as Network.Fire.
func (r *compiledRuntime) fireApply(tr *Transition) error {
	s := r.s
	r.oldLocs = r.oldLocs[:0]
	for _, p := range tr.Parts {
		r.oldLocs = append(r.oldLocs, s.Locs[p.Aut])
	}
	for _, p := range tr.Parts {
		e := &r.net.Automata[p.Aut].Edges[p.Edge]
		s.Locs[p.Aut] = e.Dst
		if ui := r.cn.updOf[p.Aut][p.Edge]; ui >= 0 {
			if err := r.applyUpdate(tr, p, &r.cn.updates[ui]); err != nil {
				return err
			}
		}
	}
	for _, p := range tr.Parts {
		c := r.cn.loc(int32(p.Aut), s)
		if c.inv < 0 {
			continue
		}
		holds, err := r.invHolds(&r.cn.invs[c.inv], tr, p)
		if err != nil {
			return err
		}
		if !holds {
			return r.net.invariantViolationError(s, tr, p)
		}
	}
	return nil
}

func (r *compiledRuntime) applyUpdate(tr *Transition, p Part, cu *cupdate) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = r.net.convertUpdatePanic(r.s, tr, p, rec)
		}
	}()
	if cu.prog != nil {
		cu.prog.Exec(r.s.Vars, r.s.Clocks, r.regs, r.cn.domains)
	} else {
		cu.slow.Apply(&r.env)
	}
	return nil
}

func (r *compiledRuntime) invHolds(ci *cinv, tr *Transition, p Part) (holds bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			holds = false
			err = r.net.convertInvariantPanic(r.s, tr, p, rec)
		}
	}()
	if ci.slow != nil {
		return ci.slow.Holds(&r.env), nil
	}
	return r.atomsHold(ci.atoms), nil
}

// afterFire maintains the caches for a firing of tr already applied to the
// shared State, dirtying both planes for participants and for readers of
// everything the transition wrote.
func (r *compiledRuntime) afterFire(tr *Transition, oldLocs []sa.LocID) {
	s := r.s
	for i, p := range tr.Parts {
		r.markEn(int32(p.Aut))
		r.markDl(int32(p.Aut))
		if old, now := oldLocs[i], s.Locs[p.Aut]; old != now {
			r.locChanged(p.Aut, old, now)
		}
		if r.idx.writeUnknown[p.Aut][p.Edge] {
			r.dirtyAllBoth()
			continue
		}
		for _, v := range r.idx.writeVars[p.Aut][p.Edge] {
			r.markBoth(r.idx.varReaders[v])
		}
		for _, c := range r.idx.writeClocks[p.Aut][p.Edge] {
			r.markBoth(r.idx.clockReaders[c])
		}
	}
}

// locChanged maintains committed count, stopped-clock counters and the
// clock-sensitive set across a location change, dirtying both planes of the
// readers of any clock whose rate flipped.
func (r *compiledRuntime) locChanged(ai int, old, now sa.LocID) {
	a := r.net.Automata[ai]
	lold, lnew := &a.Locations[old], &a.Locations[now]
	if lold.Committed != lnew.Committed {
		if lnew.Committed {
			r.committedCount++
		} else {
			r.committedCount--
		}
	}
	for _, c := range lold.Stopped {
		r.stopCount[c]--
		if r.stopCount[c] == 0 {
			r.stopped[c] = false
			r.markBoth(r.idx.clockReaders[c])
		}
	}
	for _, c := range lnew.Stopped {
		r.stopCount[c]++
		if r.stopCount[c] == 1 {
			r.stopped[c] = true
			r.markBoth(r.idx.clockReaders[c])
		}
	}
	base := r.cn.locBase[ai]
	so := r.cn.locs[base+int32(old)].clockSensitive
	sn := r.cn.locs[base+int32(now)].clockSensitive
	if so != sn {
		if sn {
			r.clockSens.insert(int32(ai))
		} else {
			r.clockSens.remove(int32(ai))
		}
	}
}

// advance moves time forward by d (admissible per the last delayBound).
// Clock-sensitive automata go enabled-dirty; only automata with volatile
// wakers go deadline-dirty, because expression-guard wake points and
// invariant expiries are stored as absolute times that a uniform advance
// does not move.
func (r *compiledRuntime) advance(d int64) error {
	if len(r.idx.alwaysDirty) > 0 {
		// Opaque guards or invariants present: use the checked path.
		if err := r.net.Advance(r.s, d); err != nil {
			return err
		}
	} else {
		s := r.s
		for c := range s.Clocks {
			if !r.stopped[c] {
				s.Clocks[c] += d
			}
		}
		s.Time += d
	}
	r.afterAdvance()
	return nil
}

func (r *compiledRuntime) afterAdvance() {
	for _, ai := range r.clockSens.list {
		r.markEn(ai)
	}
	for _, ai := range r.volatileWake.list {
		r.markDl(ai)
	}
}

// flushStats drains the accumulated counters into the probe; nil probe is a
// no-op (the stat fields then just grow unread).
func (r *compiledRuntime) flushStats() {
	p := r.probe
	if p == nil {
		return
	}
	if r.statGuard > 0 {
		p.GuardEvals.Add(r.statGuard)
		p.GuardCompiled.Add(r.statGuard - r.statSlow)
		p.GuardBytecode.Add(r.statByte)
		p.GuardOpaque.Add(r.statSlow)
		r.statGuard, r.statByte, r.statSlow = 0, 0, 0
	}
	if r.statPush > 0 {
		p.HeapPushes.Add(r.statPush)
		r.statPush = 0
	}
	if r.statDl > 0 {
		p.DeadlineRecomputes.Add(r.statDl)
		r.statDl = 0
	}
	if r.statUnchanged > 0 {
		p.EnabledUnchanged.Add(r.statUnchanged)
		r.statUnchanged = 0
	}
	if r.statFirst > 0 {
		p.FirstFast.Add(r.statFirst)
		r.statFirst = 0
	}
	if n := r.expiry.pops + r.wakes.pops; n > 0 {
		p.HeapPops.Add(n)
		r.expiry.pops, r.wakes.pops = 0, 0
	}
	if n := r.expiry.stale + r.wakes.stale; n > 0 {
		p.HeapStale.Add(n)
		r.expiry.stale, r.wakes.stale = 0, 0
	}
}

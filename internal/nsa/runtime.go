package nsa

import (
	"sort"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/sa"
)

// halfRef is a cached enabled synchronization half of one automaton: the
// edge index and the channel it synchronizes on.
type halfRef struct {
	edge int32
	ch   sa.ChanID
}

// autSet is a sorted set of automaton indices with O(1) membership tests,
// iterated in ascending order (the canonical enumeration order).
type autSet struct {
	list   []int32
	member []bool
}

func newAutSet(n int) autSet { return autSet{member: make([]bool, n)} }

func (s *autSet) insert(ai int32) {
	if s.member[ai] {
		return
	}
	s.member[ai] = true
	i := sort.Search(len(s.list), func(i int) bool { return s.list[i] >= ai })
	s.list = append(s.list, 0)
	copy(s.list[i+1:], s.list[i:])
	s.list[i] = ai
}

func (s *autSet) remove(ai int32) {
	if !s.member[ai] {
		return
	}
	s.member[ai] = false
	i := sort.Search(len(s.list), func(i int) bool { return s.list[i] >= ai })
	s.list = append(s.list[:i], s.list[i+1:]...)
}

func (s *autSet) clear() {
	for _, ai := range s.list {
		s.member[ai] = false
	}
	s.list = s.list[:0]
}

// heapEntry is a pending deadline of one automaton in absolute model time.
// Entries are invalidated lazily: gen must match the automaton's current
// generation to count.
type heapEntry struct {
	abs int64
	aut int32
	gen uint32
}

// timeHeap is a min-heap of absolute deadlines with generation-based lazy
// deletion: superseded entries stay in the heap until they surface at the
// top (min) or a wholesale compaction removes them. pops and stale count
// those two flavours of lazy deletion for the probe; the runtime drains
// them in flushStats (plain int64s: a heap belongs to one run).
type timeHeap struct {
	e           []heapEntry
	pops, stale int64
}

func (h *timeHeap) push(abs int64, aut int32, gen uint32) {
	h.e = append(h.e, heapEntry{abs, aut, gen})
	i := len(h.e) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.e[p].abs <= h.e[i].abs {
			break
		}
		h.e[p], h.e[i] = h.e[i], h.e[p]
		i = p
	}
}

func (h *timeHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.e) && h.e[l].abs < h.e[m].abs {
			m = l
		}
		if r < len(h.e) && h.e[r].abs < h.e[m].abs {
			m = r
		}
		if m == i {
			return
		}
		h.e[i], h.e[m] = h.e[m], h.e[i]
		i = m
	}
}

func (h *timeHeap) pop() {
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	if last > 0 {
		h.down(0)
	}
}

// min drops stale (superseded-generation) entries from the top and returns
// the smallest valid absolute deadline.
func (h *timeHeap) min(gens []uint32) (int64, bool) {
	for len(h.e) > 0 {
		top := h.e[0]
		if gens[top.aut] == top.gen {
			return top.abs, true
		}
		h.pop()
		h.pops++
	}
	return 0, false
}

// minEntry is min also reporting which automaton owns the top entry, for
// callers that react to a surfaced deadline by recomputing its owner (the
// compiled runtime's stale-wake reconciliation).
func (h *timeHeap) minEntry(gens []uint32) (int64, int32, bool) {
	for len(h.e) > 0 {
		top := h.e[0]
		if gens[top.aut] == top.gen {
			return top.abs, top.aut, true
		}
		h.pop()
		h.pops++
	}
	return 0, 0, false
}

// compact removes stale entries wholesale and re-heapifies. Each automaton
// contributes at most one valid entry per heap, so compaction bounds the heap
// at the automaton count between growth bursts.
func (h *timeHeap) compact(gens []uint32) {
	keep := h.e[:0]
	before := len(h.e)
	for _, en := range h.e {
		if gens[en.aut] == en.gen {
			keep = append(keep, en)
		}
	}
	h.e = keep
	h.stale += int64(before - len(h.e))
	for i := len(h.e)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// engineRuntime is the event-driven interpretation hot path used by Engine.
// It mirrors Network.EnabledTransitions / DelayBound / Fire / Advance but
// re-evaluates, after each step, only the automata the step may have
// affected: transition participants, readers of the variables and clocks the
// transition wrote (per the static write footprints in netIndex), readers of
// clocks whose stopped status flipped, and — after a delay — the automata
// whose current location has a clock-dependent guard. Per-automaton enabled
// edge sets are cached between steps; invariant expiries and guard wake-up
// points live in lazily-invalidated min-heaps keyed by absolute model time.
//
// The runtime owns its State for the duration of a run: all mutations must
// go through fire and advance, or the caches go stale.
type engineRuntime struct {
	net *Network
	idx *netIndex
	s   *State
	env stateEnv

	// Cached per-automaton enabled sets, valid unless dirty.
	enInternal [][]int32   // enabled internal edges, ascending
	enSend     [][]halfRef // enabled send halves, edge-ascending
	enRecv     [][]halfRef // enabled receive halves, edge-ascending

	// gen[ai] is bumped on every recompute of ai, invalidating its heap
	// entries.
	gen []uint32

	isDirty []bool
	dirty   []int32

	activeInternal autSet // automata with ≥1 enabled internal edge
	activeSync     autSet // automata with ≥1 enabled sync half
	clockSens      autSet // automata whose current location is clock-sensitive

	cl    *chanLists
	arena partsArena

	// Incrementally maintained stopped-clock state: stopCount[c] is the
	// number of automata whose current location stops clock c.
	stopCount []int32
	stopped   []bool
	running   func(int) bool

	committedCount int

	expiry timeHeap // invariant expiry deadlines (absolute)
	wakes  timeHeap // guard wake-up points (absolute)

	oldLocs []sa.LocID // scratch for fire

	// probe, when non-nil, receives the hot-path counters. Guard
	// evaluations and heap pushes accumulate in the stat* fields (plain
	// locals of this single-threaded runtime) and are flushed to the
	// atomic probe once per enabled() call, so enabling the probe adds
	// one predictable branch per guard evaluation, not an atomic op.
	probe                                   *obs.Probe
	statGuard, statFast, statSlow, statPush int64
}

func newEngineRuntime(net *Network, s *State, probe *obs.Probe) *engineRuntime {
	na := len(net.Automata)
	r := &engineRuntime{
		net:        net,
		idx:        net.index(),
		s:          s,
		env:        stateEnv{n: net, s: s},
		enInternal: make([][]int32, na),
		enSend:     make([][]halfRef, na),
		enRecv:     make([][]halfRef, na),
		gen:        make([]uint32, na),
		isDirty:    make([]bool, na),

		activeInternal: newAutSet(na),
		activeSync:     newAutSet(na),
		clockSens:      newAutSet(na),

		cl:        newChanLists(len(net.Chans)),
		stopCount: make([]int32, len(net.Clocks)),
		stopped:   make([]bool, len(net.Clocks)),
		probe:     probe,
	}
	r.running = func(c int) bool { return !r.stopped[c] }
	r.seed()
	return r
}

// seed (re)derives all incremental state from the runtime's current State:
// committed count, stopped-clock counters, clock-sensitive set, and marks
// every automaton dirty so the caches rebuild on the next query. Called at
// construction and by reset.
func (r *engineRuntime) seed() {
	for ai := range r.net.Automata {
		loc := int(r.s.Locs[ai])
		li := &r.idx.locs[ai][loc]
		if li.committed {
			r.committedCount++
		}
		if li.clockSensitive {
			r.clockSens.insert(int32(ai))
		}
		for _, c := range r.net.Automata[ai].Locations[loc].Stopped {
			r.stopCount[c]++
			r.stopped[c] = true
		}
		r.markDirty(int32(ai))
	}
}

// reset discards all cached incremental state and re-seeds it from the
// runtime's State (which the caller has restored), keeping every allocation
// for reuse. After reset the runtime behaves as if freshly constructed.
func (r *engineRuntime) reset() {
	for ai := range r.isDirty {
		r.enInternal[ai] = r.enInternal[ai][:0]
		r.enSend[ai] = r.enSend[ai][:0]
		r.enRecv[ai] = r.enRecv[ai][:0]
		r.isDirty[ai] = false
	}
	r.dirty = r.dirty[:0]
	r.activeInternal.clear()
	r.activeSync.clear()
	r.clockSens.clear()
	r.cl.reset()
	r.arena.reset()
	for c := range r.stopCount {
		r.stopCount[c] = 0
		r.stopped[c] = false
	}
	r.committedCount = 0
	r.expiry.e = r.expiry.e[:0]
	r.wakes.e = r.wakes.e[:0]
	r.seed()
}

func (r *engineRuntime) markDirty(ai int32) {
	if !r.isDirty[ai] {
		r.isDirty[ai] = true
		r.dirty = append(r.dirty, ai)
	}
}

func (r *engineRuntime) dirtyList(ais []int32) {
	for _, ai := range ais {
		r.markDirty(ai)
	}
}

func (r *engineRuntime) dirtyAll() {
	for ai := range r.isDirty {
		r.markDirty(int32(ai))
	}
}

// recompute re-evaluates every guard of automaton ai's current location once,
// refreshing its cached enabled sets, its active-set membership, and its heap
// deadlines (invariant expiry and earliest guard wake-up, both absolute).
func (r *engineRuntime) recompute(ai int32) {
	s := r.s
	li := &r.idx.locs[ai][s.Locs[ai]]
	r.gen[ai]++
	if len(r.expiry.e)+len(r.wakes.e) > 2*len(r.gen)+64 {
		r.expiry.compact(r.gen)
		r.wakes.compact(r.gen)
	}

	wasInt := len(r.enInternal[ai]) > 0
	wasSync := len(r.enSend[ai])+len(r.enRecv[ai]) > 0
	r.enInternal[ai] = r.enInternal[ai][:0]
	r.enSend[ai] = r.enSend[ai][:0]
	r.enRecv[ai] = r.enRecv[ai][:0]

	vars, clocks := s.Vars, s.Clocks
	counting := r.probe != nil
	wake := expr.NoBound
	for i := range li.edges {
		e := &li.edges[i]
		if counting {
			r.statGuard++
			if e.fast != nil {
				r.statFast++
			} else if e.slow != nil {
				r.statSlow++
			}
		}
		if e.evalGuard(vars, clocks, &r.env) {
			switch e.dir {
			case sa.NoSync:
				r.enInternal[ai] = append(r.enInternal[ai], e.edge)
			case sa.Send:
				r.enSend[ai] = append(r.enSend[ai], halfRef{e.edge, e.ch})
			case sa.Recv:
				r.enRecv[ai] = append(r.enRecv[ai], halfRef{e.edge, e.ch})
			}
		} else if e.waker != nil {
			if d := e.waker.NextEnable(&r.env, r.running); d >= 1 && d < wake {
				wake = d
			}
		}
	}

	if nowInt := len(r.enInternal[ai]) > 0; nowInt != wasInt {
		if nowInt {
			r.activeInternal.insert(ai)
		} else {
			r.activeInternal.remove(ai)
		}
	}
	if nowSync := len(r.enSend[ai])+len(r.enRecv[ai]) > 0; nowSync != wasSync {
		if nowSync {
			r.activeSync.insert(ai)
		} else {
			r.activeSync.remove(ai)
		}
	}

	if li.inv != nil {
		var d int64
		if li.fastInv != nil {
			d = li.fastInv.MaxDelayRaw(vars, clocks, r.stopped)
		} else {
			d = li.inv.MaxDelay(&r.env, r.running)
		}
		if d != expr.NoBound {
			r.expiry.push(s.Time+d, ai, r.gen[ai])
			if counting {
				r.statPush++
			}
		}
	}
	if wake != expr.NoBound {
		r.wakes.push(s.Time+wake, ai, r.gen[ai])
		if counting {
			r.statPush++
		}
	}
}

// flushStats drains the accumulated guard/heap statistics into the probe.
// Called once per enabled() query and at run end; a nil probe is a no-op.
func (r *engineRuntime) flushStats() {
	p := r.probe
	if p == nil {
		return
	}
	if r.statGuard > 0 {
		p.GuardEvals.Add(r.statGuard)
		p.GuardCompiled.Add(r.statFast)
		p.GuardOpaque.Add(r.statSlow)
		r.statGuard, r.statFast, r.statSlow = 0, 0, 0
	}
	if r.statPush > 0 {
		p.HeapPushes.Add(r.statPush)
		r.statPush = 0
	}
	if n := r.expiry.pops + r.wakes.pops; n > 0 {
		p.HeapPops.Add(n)
		r.expiry.pops, r.wakes.pops = 0, 0
	}
	if n := r.expiry.stale + r.wakes.stale; n > 0 {
		p.HeapStale.Add(n)
		r.expiry.stale, r.wakes.stale = 0, 0
	}
}

// enabled computes the enabled transitions of the current state into buf,
// in the canonical order of Network.EnabledTransitions, re-evaluating only
// dirty automata. Parts are allocated from the runtime's arena and are only
// valid until the next enabled call.
func (r *engineRuntime) enabled(buf []Transition) []Transition {
	for _, ai := range r.idx.alwaysDirty {
		r.markDirty(ai)
	}
	nd := len(r.dirty)
	for _, ai := range r.dirty {
		r.recompute(ai)
		r.isDirty[ai] = false
	}
	r.dirty = r.dirty[:0]
	if p := r.probe; p != nil {
		p.EnabledCalls.Add(1)
		p.Recomputes.Add(int64(nd))
		p.CacheReuses.Add(int64(len(r.isDirty) - nd))
		p.DirtyTotal.Add(int64(nd))
		p.RaiseDirtyMax(int64(nd))
		r.flushStats()
	}

	// Rebuild the per-channel half lists from the cached per-automaton sets.
	// Iterating automata ascending with edge-ascending halves keeps every
	// per-channel list sorted by (aut, edge) — the canonical order.
	r.cl.reset()
	r.arena.reset()
	for _, ai := range r.activeSync.list {
		for _, h := range r.enSend[ai] {
			r.cl.addSend(r.net, h.ch, half{int(ai), int(h.edge)})
		}
		for _, h := range r.enRecv[ai] {
			r.cl.addRecv(r.net, h.ch, half{int(ai), int(h.edge)})
		}
	}

	committed := r.committedCount > 0
	for _, ai := range r.activeInternal.list {
		if committed && !r.idx.locs[ai][r.s.Locs[ai]].committed {
			continue
		}
		for _, ei := range r.enInternal[ai] {
			buf = append(buf, Transition{Kind: Internal, Chan: sa.NoChan, Parts: r.arena.one(Part{int(ai), int(ei)})})
		}
	}
	buf = r.net.emitSyncs(buf, r.s, r.cl, committed, &r.arena)
	return r.net.filterPriority(buf)
}

// fire applies tr through Network.Fire and dirties exactly the automata the
// firing may have affected.
func (r *engineRuntime) fire(tr *Transition) error {
	s := r.s
	r.oldLocs = r.oldLocs[:0]
	for _, p := range tr.Parts {
		r.oldLocs = append(r.oldLocs, s.Locs[p.Aut])
	}
	if err := r.net.Fire(s, tr); err != nil {
		return err
	}
	r.afterFire(tr, r.oldLocs)
	return nil
}

// afterFire performs the cache maintenance for a firing of tr that some
// other party already applied to the shared State. oldLocs holds the
// participants' locations before the firing, in tr.Parts order. It is split
// out of fire so a shadow runtime (CheckEngine over the compiled backend)
// can track a state it does not itself mutate.
func (r *engineRuntime) afterFire(tr *Transition, oldLocs []sa.LocID) {
	s := r.s
	for i, p := range tr.Parts {
		r.markDirty(int32(p.Aut))
		if old, now := oldLocs[i], s.Locs[p.Aut]; old != now {
			r.locChanged(p.Aut, old, now)
		}
		if r.idx.writeUnknown[p.Aut][p.Edge] {
			r.dirtyAll()
			continue
		}
		for _, v := range r.idx.writeVars[p.Aut][p.Edge] {
			r.dirtyList(r.idx.varReaders[v])
		}
		for _, c := range r.idx.writeClocks[p.Aut][p.Edge] {
			r.dirtyList(r.idx.clockReaders[c])
		}
	}
}

// locChanged maintains the committed count, the stopped-clock counters and
// the clock-sensitive set across a location change of automaton ai. Readers
// of a clock whose rate flips are dirtied: their cached wake-ups and expiry
// deadlines assumed the old rate.
func (r *engineRuntime) locChanged(ai int, old, now sa.LocID) {
	a := r.net.Automata[ai]
	lold, lnew := &a.Locations[old], &a.Locations[now]
	if lold.Committed != lnew.Committed {
		if lnew.Committed {
			r.committedCount++
		} else {
			r.committedCount--
		}
	}
	for _, c := range lold.Stopped {
		r.stopCount[c]--
		if r.stopCount[c] == 0 {
			r.stopped[c] = false
			r.dirtyList(r.idx.clockReaders[c])
		}
	}
	for _, c := range lnew.Stopped {
		r.stopCount[c]++
		if r.stopCount[c] == 1 {
			r.stopped[c] = true
			r.dirtyList(r.idx.clockReaders[c])
		}
	}
	so := r.idx.locs[ai][old].clockSensitive
	sn := r.idx.locs[ai][now].clockSensitive
	if so != sn {
		if sn {
			r.clockSens.insert(int32(ai))
		} else {
			r.clockSens.remove(int32(ai))
		}
	}
}

// delayBound returns the delay information of the current state. It must be
// called directly after enabled (the urgent check reads the channel lists
// that call built). Expiry deadlines pushed at earlier times stay exact:
// a uniform advance shrinks every running clock's remaining room equally,
// and every other change (variable writes, clock resets, rate flips,
// location changes) dirties the affected automata through the reader index,
// which refreshes their entries before the next query.
func (r *engineRuntime) delayBound() DelayInfo {
	if r.committedCount > 0 {
		return DelayInfo{Blocked: true}
	}
	if r.urgentBlocked() {
		return DelayInfo{Blocked: true}
	}
	info := DelayInfo{Max: expr.NoBound, Wake: expr.NoBound}
	if abs, ok := r.expiry.min(r.gen); ok {
		info.Max = abs - r.s.Time
	}
	if abs, ok := r.wakes.min(r.gen); ok {
		info.Wake = abs - r.s.Time
	}
	return info
}

// urgentBlocked reports whether a synchronization over an urgent channel is
// enabled, from the channel lists of the last enabled call: an enabled
// sender suffices on broadcast channels, binary channels need a
// cross-automaton sender/receiver pair.
func (r *engineRuntime) urgentBlocked() bool {
	for _, ch := range r.cl.urgent {
		if r.net.Chans[ch].Broadcast {
			if len(r.cl.sends[ch]) > 0 {
				return true
			}
			continue
		}
		for _, snd := range r.cl.sends[ch] {
			for _, rcv := range r.cl.recvs[ch] {
				if rcv.aut != snd.aut {
					return true
				}
			}
		}
	}
	return false
}

// advance moves time forward by d, which must not exceed the last
// delayBound's admissible maximum. Invariants need no re-check then — d ≤ Max
// guarantees every bound still holds — except when some automaton has an
// opaque (non-expression) invariant, where the full checking path runs
// instead. Clock-sensitive automata are dirtied: their guards may have
// changed truth value under the advance.
func (r *engineRuntime) advance(d int64) error {
	if len(r.idx.alwaysDirty) > 0 {
		// Opaque guards or invariants present: use the checked path.
		if err := r.net.Advance(r.s, d); err != nil {
			return err
		}
	} else {
		s := r.s
		for c := range s.Clocks {
			if !r.stopped[c] {
				s.Clocks[c] += d
			}
		}
		s.Time += d
	}
	r.afterAdvance()
	return nil
}

// afterAdvance is advance's cache maintenance, split out so a shadow runtime
// can track an advance some other party applied to the shared State.
func (r *engineRuntime) afterAdvance() {
	for _, ai := range r.clockSens.list {
		r.markDirty(ai)
	}
}

package nsa

import (
	"strconv"
	"strings"
	"testing"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// pingPong builds a two-automaton network: A waits until t==delay (invariant
// t<=delay) and sends on ping; B receives and increments done.
func pingPong(t *testing.T, delay int64, urgent bool) (*Network, sa.VarID) {
	t.Helper()
	b := NewBuilder()
	done := b.Var("done", 0)
	ck := b.Clock("t")
	var ping sa.ChanID
	if urgent {
		ping = b.UrgentChan("ping")
	} else {
		ping = b.Chan("ping")
	}
	sc := b.Scope()

	ab := sa.NewBuilder("A")
	ab.OwnClock(ck)
	var wait sa.LocID
	if urgent {
		wait = ab.Loc("Wait")
	} else {
		wait = ab.Loc("Wait", sa.WithInvariant(mustInv(t, "t <= "+itoa(delay), sc)))
	}
	doneLoc := ab.Loc("Done")
	ab.Init(wait)
	var g sa.Guard
	if !urgent {
		g = sa.NewExprGuard(expr.MustParseResolve("t == "+itoa(delay), sc, expr.TypeBool))
	}
	ab.SendEdge(wait, doneLoc, g, ping, nil)

	bb := sa.NewBuilder("B")
	idle := bb.Loc("Idle")
	got := bb.Loc("Got")
	bb.Init(idle)
	bb.RecvEdge(idle, got, nil, ping, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("done := done + 1", sc)})

	b.Add(ab.MustBuild())
	b.Add(bb.MustBuild())
	return b.MustBuild(), done
}

func mustInv(t *testing.T, src string, sc expr.Scope) *expr.Invariant {
	t.Helper()
	inv, err := expr.ParseInvariant(src, sc)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestBinarySyncAtInvariantBoundary(t *testing.T) {
	net, done := pingPong(t, 7, false)
	trace, res, err := Simulate(net, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(trace.Events))
	}
	ev := trace.Events[0]
	if ev.Time != 7 {
		t.Errorf("sync time = %d, want 7", ev.Time)
	}
	if ev.Kind != BinarySync || net.ChanName(sa.ChanID(ev.Chan)) != "ping" {
		t.Errorf("event = %+v", ev)
	}
	if len(ev.Parts) != 2 || ev.Parts[0].Aut != 0 || ev.Parts[1].Aut != 1 {
		t.Errorf("parts = %v", ev.Parts)
	}
	eng := NewEngine(net, Options{Horizon: 100})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.State().Vars[done]; got != 1 {
		t.Errorf("done = %d, want 1", got)
	}
	// After the sync nothing is left: the run is quiescent, with few delays
	// (a jump to 7, not 7 unit steps).
	if !res.Quiescent {
		t.Error("expected quiescent run")
	}
	if res.Delays > 2 {
		t.Errorf("delays = %d, expected a direct jump", res.Delays)
	}
}

func TestUrgentChannelFiresWithoutDelay(t *testing.T) {
	net, _ := pingPong(t, 0, true)
	trace, res, err := Simulate(net, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 1 || trace.Events[0].Time != 0 {
		t.Fatalf("events = %+v, want one at time 0", trace.Events)
	}
	if !res.Quiescent || res.Time != 0 {
		t.Errorf("result = %+v", res)
	}
}

// TestBroadcastNonBlocking: a broadcast sender fires even when only a subset
// of potential receivers is enabled, and all enabled receivers move.
func TestBroadcastNonBlocking(t *testing.T) {
	b := NewBuilder()
	n1 := b.Var("n1", 0)
	n2 := b.Var("n2", 0)
	gate := b.Var("gate", 0) // receiver 2 enabled only when gate==1
	ch := b.BroadcastChan("bang")
	sc := b.Scope()

	snd := sa.NewBuilder("S")
	s0 := snd.Loc("S0")
	s1 := snd.Loc("S1")
	snd.Init(s0)
	snd.SendEdge(s0, s1, nil, ch, nil)

	mkRecv := func(name, v string, guard string) *sa.Automaton {
		rb := sa.NewBuilder(name)
		r0 := rb.Loc("R0")
		r1 := rb.Loc("R1")
		rb.Init(r0)
		var g sa.Guard
		if guard != "" {
			g = sa.NewExprGuard(expr.MustParseResolve(guard, sc, expr.TypeBool))
		}
		rb.RecvEdge(r0, r1, g, ch, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate(v+" := "+v+" + 1", sc)})
		return rb.MustBuild()
	}

	b.Add(snd.MustBuild())
	b.Add(mkRecv("R1", "n1", ""))
	b.Add(mkRecv("R2", "n2", "gate == 1"))
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 10})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := eng.State()
	if s.Vars[n1] != 1 {
		t.Errorf("n1 = %d, want 1 (enabled receiver participates)", s.Vars[n1])
	}
	if s.Vars[n2] != 0 {
		t.Errorf("n2 = %d, want 0 (disabled receiver left out)", s.Vars[n2])
	}
	_ = gate
}

// TestCommittedPriority: an automaton in a committed location must move
// before time can pass, and other automata cannot take non-committed
// transitions meanwhile.
func TestCommittedPriority(t *testing.T) {
	b := NewBuilder()
	order := b.Var("order", 0) // records who moved first: 1 = committed chain, 2 = other
	sc := b.Scope()

	cb := sa.NewBuilder("C")
	c0 := cb.Loc("C0", sa.Committed())
	c1 := cb.Loc("C1")
	cb.Init(c0)
	cb.Edge(c0, c1, nil, sa.None, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("order := order * 10 + 1", sc)})

	ob := sa.NewBuilder("O")
	o0 := ob.Loc("O0")
	o1 := ob.Loc("O1")
	ob.Init(o0)
	ob.Edge(o0, o1, nil, sa.None, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("order := order * 10 + 2", sc)})

	// Order automata so that O would be chosen first if committed priority
	// were ignored (O has lower automaton index).
	b.Add(ob.MustBuild())
	b.Add(cb.MustBuild())
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 5})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.State().Vars[order]; got != 12 {
		t.Errorf("order = %d, want 12 (committed first)", got)
	}
}

// TestStopwatch: a clock stopped in a location does not advance during
// delays spent there.
func TestStopwatch(t *testing.T) {
	b := NewBuilder()
	snap := b.Var("snap", -1)
	work := b.Clock("w")  // stopwatch under test
	ref := b.Clock("ref") // never stopped
	sc := b.Scope()

	ab := sa.NewBuilder("A")
	ab.OwnClock(work)
	// Phase 1: run 3 ticks with w running, then 4 ticks stopped, then check.
	p1 := ab.Loc("P1", sa.WithInvariant(mustInv(t, "ref <= 3", sc)))
	p2 := ab.Loc("P2", sa.WithInvariant(mustInv(t, "ref <= 7", sc)), sa.Stops(work))
	end := ab.Loc("End")
	ab.Init(p1)
	ab.Edge(p1, p2, sa.NewExprGuard(expr.MustParseResolve("ref == 3", sc, expr.TypeBool)), sa.None, nil)
	ab.Edge(p2, end, sa.NewExprGuard(expr.MustParseResolve("ref == 7", sc, expr.TypeBool)), sa.None,
		&sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("snap := w", sc)})
	b.Add(ab.MustBuild())
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 20})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.State().Vars[snap]; got != 3 {
		t.Errorf("stopwatch value = %d, want 3 (stopped during [3,7])", got)
	}
	// The run is quiescent after End (no invariants, no enabled guards), so
	// the engine stops at time 7 rather than idling to the horizon.
	if got := eng.State().Clocks[ref]; got != 7 {
		t.Errorf("ref clock = %d, want 7", got)
	}
}

func TestTimeStopDeadlock(t *testing.T) {
	b := NewBuilder()
	ck := b.Clock("t")
	ch := b.Chan("never")
	sc := b.Scope()
	ab := sa.NewBuilder("A")
	ab.OwnClock(ck)
	w := ab.Loc("W", sa.WithInvariant(mustInv(t, "t <= 2", sc)))
	d := ab.Loc("D")
	ab.Init(w)
	ab.SendEdge(w, d, nil, ch, nil) // no receiver exists: blocked forever
	b.Add(ab.MustBuild())
	net := b.MustBuild()
	_, _, err := Simulate(net, 10)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want time-stop deadlock", err)
	}
}

func TestCommittedDeadlock(t *testing.T) {
	b := NewBuilder()
	ch := b.Chan("never")
	ab := sa.NewBuilder("A")
	c := ab.Loc("C", sa.Committed())
	d := ab.Loc("D")
	ab.Init(c)
	ab.SendEdge(c, d, nil, ch, nil)
	b.Add(ab.MustBuild())
	net := b.MustBuild()
	_, _, err := Simulate(net, 10)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestDomainViolation(t *testing.T) {
	b := NewBuilder()
	b.BoundedVar("x", 0, 0, 1)
	sc := b.Scope()
	ab := sa.NewBuilder("A")
	l0 := ab.Loc("L0")
	l1 := ab.Loc("L1")
	ab.Init(l0)
	ab.Edge(l0, l1, nil, sa.None, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("x := 5", sc)})
	b.Add(ab.MustBuild())
	net := b.MustBuild()
	_, _, err := Simulate(net, 10)
	if err == nil || !strings.Contains(err.Error(), "domain") {
		t.Errorf("err = %v, want domain violation", err)
	}
}

func TestLivelockDetection(t *testing.T) {
	b := NewBuilder()
	ab := sa.NewBuilder("A")
	l0 := ab.Loc("L0")
	l1 := ab.Loc("L1")
	ab.Init(l0)
	ab.Edge(l0, l1, nil, sa.None, nil)
	ab.Edge(l1, l0, nil, sa.None, nil)
	b.Add(ab.MustBuild())
	net := b.MustBuild()
	eng := NewEngine(net, Options{Horizon: 10, MaxActionsPerInstant: 100})
	_, err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Errorf("err = %v, want livelock", err)
	}
}

func TestHorizonStopsPeriodicModel(t *testing.T) {
	// A self-looping periodic automaton: fires every 5 ticks forever.
	b := NewBuilder()
	n := b.Var("n", 0)
	ck := b.Clock("t")
	sc := b.Scope()
	ab := sa.NewBuilder("A")
	ab.OwnClock(ck)
	w := ab.Loc("W", sa.WithInvariant(mustInv(t, "t <= 5", sc)))
	ab.Init(w)
	ab.Edge(w, w, sa.NewExprGuard(expr.MustParseResolve("t == 5", sc, expr.TypeBool)), sa.None,
		&sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("n := n + 1, t := 0", sc)})
	b.Add(ab.MustBuild())
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 23})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 23 {
		t.Errorf("time = %d, want 23", res.Time)
	}
	if got := eng.State().Vars[n]; got != 4 {
		t.Errorf("n = %d, want 4 (fires at 5,10,15,20)", got)
	}
	if res.Quiescent {
		t.Error("periodic model is not quiescent")
	}
}

func TestBuilderDeclarationsAndErrors(t *testing.T) {
	b := NewBuilder()
	b.Var("x", 1)
	b.Clock("t")
	b.Chan("c")
	b.Const("N", 9)
	arr := b.VarArray("a", 3, 7)
	if arr != 1 {
		t.Errorf("array base = %d, want 1", arr)
	}
	sc := b.Scope()
	if s, ok := sc.Lookup("a"); !ok || s.Len != 3 {
		t.Errorf("array symbol = %+v, %t", s, ok)
	}
	if s, ok := sc.Lookup("N"); !ok || s.Const != 9 {
		t.Errorf("const symbol = %+v, %t", s, ok)
	}
	if _, ok := sc.Lookup("zz"); ok {
		t.Error("zz should not resolve")
	}
	net := b.MustBuild()
	if len(net.Vars) != 4 {
		t.Errorf("vars = %d, want 4", len(net.Vars))
	}
	st := net.InitialState()
	if st.Vars[1] != 7 || st.Vars[3] != 7 {
		t.Errorf("array initial values wrong: %v", st.Vars)
	}

	b2 := NewBuilder()
	b2.Var("x", 0)
	b2.Clock("x")
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate", err)
	}

	b3 := NewBuilder()
	b3.BoundedVar("x", 5, 0, 1)
	if _, err := b3.Build(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("err = %v, want bounds error", err)
	}
}

func TestCloneAndKey(t *testing.T) {
	net, _ := pingPong(t, 3, false)
	s := net.InitialState()
	c := s.Clone()
	c.Vars[0] = 99
	if s.Vars[0] == 99 {
		t.Error("Clone aliases Vars")
	}
	k1 := s.AppendKey(nil)
	k2 := s.Clone().AppendKey(nil)
	if string(k1) != string(k2) {
		t.Error("equal states produced different keys")
	}
	k3 := c.AppendKey(nil)
	if string(k1) == string(k3) {
		t.Error("different states produced equal keys")
	}
}

func TestAutomatonIndex(t *testing.T) {
	net, _ := pingPong(t, 3, false)
	if net.AutomatonIndex("B") != 1 {
		t.Errorf("index of B = %d", net.AutomatonIndex("B"))
	}
	if net.AutomatonIndex("nope") != -1 {
		t.Error("missing automaton should be -1")
	}
}

func TestTransitionString(t *testing.T) {
	net, _ := pingPong(t, 3, false)
	s := net.InitialState()
	s.Clocks[0] = 3
	cands := net.EnabledTransitions(s, nil)
	if len(cands) != 1 {
		t.Fatalf("cands = %d, want 1", len(cands))
	}
	if got := cands[0].String(net); !strings.Contains(got, "ping") {
		t.Errorf("String = %q", got)
	}
}

package nsa

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// ticker builds a network whose single automaton fires one internal
// transition per model tick forever (guard t == 1, reset t, count up), so
// runs are bounded only by the horizon or the budget.
func ticker(t *testing.T) (*Network, sa.VarID) {
	t.Helper()
	b := NewBuilder()
	n := b.Var("n", 0)
	ck := b.Clock("t")
	sc := b.Scope()

	ab := sa.NewBuilder("Tick")
	ab.OwnClock(ck)
	l := ab.Loc("L", sa.WithInvariant(mustInv(t, "t <= 1", sc)))
	ab.Init(l)
	ab.Edge(l, l, sa.NewExprGuard(expr.MustParseResolve("t == 1", sc, expr.TypeBool)), sa.None,
		&sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("t := 0, n := n + 1", sc)})
	b.Add(ab.MustBuild())
	return b.MustBuild(), n
}

func TestBudgetMaxStepsPartialResult(t *testing.T) {
	net, _ := ticker(t)
	eng := NewEngine(net, Options{Horizon: 1_000_000, Budget: Budget{MaxSteps: 100}})
	res, err := eng.RunContext(context.Background())
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if rerr.Reason != StopSteps {
		t.Errorf("reason = %v, want step budget", rerr.Reason)
	}
	if rerr.Steps != 100 {
		t.Errorf("steps = %d, want 100", rerr.Steps)
	}
	if rerr.Time == 0 || rerr.Time != res.Time {
		t.Errorf("RunError.Time = %d, Result.Time = %d; want equal nonzero partial progress",
			rerr.Time, res.Time)
	}
	if len(rerr.Trace) == 0 {
		t.Error("RunError.Trace is empty, want a counterexample prefix")
	}
	// The partial result must still report the work done before the stop.
	if res.Actions == 0 {
		t.Errorf("partial result = %+v, want nonzero actions", res)
	}
}

func TestBudgetTracePrefixBounded(t *testing.T) {
	net, _ := ticker(t)
	eng := NewEngine(net, Options{Horizon: 1_000_000, Budget: Budget{MaxSteps: 500}, DiagTraceDepth: 8})
	_, err := eng.RunContext(context.Background())
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if len(rerr.Trace) != 8 {
		t.Fatalf("trace depth = %d, want 8", len(rerr.Trace))
	}
	for i := 1; i < len(rerr.Trace); i++ {
		if rerr.Trace[i].Time < rerr.Trace[i-1].Time {
			t.Fatalf("trace not oldest-first: %+v", rerr.Trace)
		}
	}
}

func TestBudgetWallTime(t *testing.T) {
	net, _ := ticker(t)
	eng := NewEngine(net, Options{Horizon: 1 << 40, Budget: Budget{MaxWallTime: time.Millisecond}})
	start := time.Now()
	_, err := eng.RunContext(context.Background())
	elapsed := time.Since(start)
	var rerr *RunError
	if !errors.As(err, &rerr) || rerr.Reason != StopWallTime {
		t.Fatalf("err = %v, want wall-time RunError", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("took %v to honour a 1ms wall budget", elapsed)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	net, _ := ticker(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := NewEngine(net, Options{Horizon: 1 << 40})
	_, err := eng.RunContext(ctx)
	var rerr *RunError
	if !errors.As(err, &rerr) || rerr.Reason != StopCanceled {
		t.Fatalf("err = %v, want cancellation RunError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("RunError must unwrap to context.Canceled")
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	net, _ := ticker(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	eng := NewEngine(net, Options{Horizon: 1 << 40})
	start := time.Now()
	_, err := eng.RunContext(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
	var rerr *RunError
	if !errors.As(err, &rerr) || rerr.Reason != StopCanceled {
		t.Fatalf("err = %v, want cancellation RunError", err)
	}
}

// TestTimelockDiagnostic reproduces the classic timelock — an invariant
// expires while the only outgoing edge waits on a channel nobody serves —
// and checks the structured diagnostic names the culprit.
func TestTimelockDiagnostic(t *testing.T) {
	b := NewBuilder()
	ck := b.Clock("t")
	ch := b.Chan("never")
	sc := b.Scope()
	ab := sa.NewBuilder("A")
	ab.OwnClock(ck)
	w := ab.Loc("W", sa.WithInvariant(mustInv(t, "t <= 2", sc)))
	d := ab.Loc("D")
	ab.Init(w)
	ab.SendEdge(w, d, nil, ch, nil)
	b.Add(ab.MustBuild())
	net := b.MustBuild()

	_, _, err := Simulate(net, 10)
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if derr.Kind != Timelock {
		t.Errorf("kind = %v, want timelock", derr.Kind)
	}
	if derr.Time != 2 {
		t.Errorf("time = %d, want 2 (invariant boundary)", derr.Time)
	}
	if len(derr.Blocked) != 1 {
		t.Fatalf("blocked = %+v, want one automaton", derr.Blocked)
	}
	ba := derr.Blocked[0]
	if ba.Automaton != "A" || ba.Location != "W" {
		t.Errorf("blocked automaton = %s in %q, want A in W", ba.Automaton, ba.Location)
	}
	if !strings.Contains(ba.Invariant, "t <= 2") {
		t.Errorf("invariant = %q, want t <= 2", ba.Invariant)
	}
	if len(ba.Edges) == 0 || !strings.Contains(ba.Edges[0], "never") {
		t.Errorf("edges = %v, want the missing partner on channel never named", ba.Edges)
	}
	// The rendered message keeps the historical "deadlock" keyword.
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("message = %q, want 'deadlock'", err)
	}
}

// TestLivelockDiagnostic: two automata exchange a token forever without
// time progressing. The state-recurrence probe must detect the cycle well
// before the per-instant action cap.
func TestLivelockDiagnostic(t *testing.T) {
	b := NewBuilder()
	ping := b.Chan("ping")
	pong := b.Chan("pong")

	ab := sa.NewBuilder("A")
	a0 := ab.Loc("A0")
	a1 := ab.Loc("A1")
	ab.Init(a0)
	ab.SendEdge(a0, a1, nil, ping, nil)
	ab.RecvEdge(a1, a0, nil, pong, nil)
	b.Add(ab.MustBuild())

	bb := sa.NewBuilder("B")
	b0 := bb.Loc("B0")
	b1 := bb.Loc("B1")
	bb.Init(b0)
	bb.RecvEdge(b0, b1, nil, ping, nil)
	bb.SendEdge(b1, b0, nil, pong, nil)
	b.Add(bb.MustBuild())
	net := b.MustBuild()

	_, _, err := Simulate(net, 10)
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if derr.Kind != Livelock {
		t.Errorf("kind = %v, want livelock", derr.Kind)
	}
	if !strings.Contains(err.Error(), "livelock") {
		t.Errorf("message = %q, want 'livelock'", err)
	}
	if len(derr.Trace) == 0 {
		t.Error("livelock diagnostic carries no trace prefix")
	}
	names := make(map[string]bool)
	for _, ba := range derr.Blocked {
		names[ba.Automaton] = true
	}
	if !names["A"] || !names["B"] {
		t.Errorf("blocked = %+v, want both token-passing automata named", derr.Blocked)
	}
}

func TestBudgetZeroIsUnlimited(t *testing.T) {
	net, n := ticker(t)
	eng := NewEngine(net, Options{Horizon: 50, Budget: Budget{}})
	if _, err := eng.RunContext(context.Background()); err != nil {
		t.Fatalf("unlimited budget errored: %v", err)
	}
	if got := eng.State().Vars[n]; got != 50 {
		t.Errorf("ticks = %d, want 50", got)
	}
	if !(Budget{}).IsZero() {
		t.Error("zero budget must report IsZero")
	}
}

func TestTraceRing(t *testing.T) {
	r := newTraceRing(3)
	for i := int64(0); i < 5; i++ {
		r.record(SyncEvent{Time: i})
	}
	got := r.snapshot()
	if len(got) != 3 || got[0].Time != 2 || got[2].Time != 4 {
		t.Errorf("snapshot = %+v, want times 2,3,4", got)
	}
	if newTraceRing(-1).snapshot() != nil {
		t.Error("disabled ring must stay empty")
	}
}

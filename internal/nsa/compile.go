package nsa

import (
	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// compiledNet is the flat, allocation-free execution form of a network: all
// per-location data lives in contiguous slices indexed by dense IDs assigned
// at build time (locBase[ai]+loc addresses a location, small integers
// address guard programs, updates and invariants), guards and updates are
// compiled into expression bytecode where possible with closure and opaque
// fallbacks, and invariants are flattened into atom arrays with a dedicated
// constant-bound fast path. One compiledNet is built per Network by
// Builder.Build and shared, immutably, by every compiledRuntime over it.
type compiledNet struct {
	// locBase[ai] + int(loc) is the dense ID of location loc of automaton
	// ai, indexing locs.
	locBase []int32
	locs    []cloc

	progs   []*expr.Prog    // guard bytecode (gProg)
	cmps    []expr.CmpConst // flattened compare-const conjunctions (gCmpList)
	fns     []expr.BoolFn   // guard closures (gClosure)
	slows   []sa.Guard      // opaque guards (gOpaque), evaluated via the env
	wakers  []sa.Waker     // guard wake-up providers, referenced by cedge.waker
	updates []cupdate      // edge updates, referenced by updOf
	invs    []cinv         // location invariants, referenced by cloc.inv
	domains []expr.VarDomain

	// updOf[ai][ei] indexes updates for edge ei of automaton ai; -1 means no
	// update.
	updOf [][]int32

	prio    []int32 // per-automaton process priority
	maxPrio int32   // highest automaton priority in the network

	broadcast   []bool  // per channel
	urgentChans []int32 // urgent channel IDs, ascending

	// maxRegs is the largest register file any compiled program needs; a
	// runtime allocates one scratch slice of this length for all of them.
	maxRegs int
}

// cguardKind classifies how a guard is evaluated, cheapest first.
type cguardKind uint8

const (
	gTrue      cguardKind = iota // no guard
	gVarCmpK                     // vars[gidx] gop gk, inlined
	gClockCmpK                   // clocks[gidx] gop gk, inlined
	gCmpList                     // conjunction: cmps[gidx : gidx+gn], inlined loop
	gProg                        // bytecode: progs[gidx]
	gClosure                     // closure: fns[gidx]
	gOpaque                      // interface: slows[gidx] via the env
)

// cloc is one location in dense form.
type cloc struct {
	edges          []cedge
	inv            int32 // invs index; -1 when trivially true
	committed      bool
	clockSensitive bool
}

// cedge is one pre-classified outgoing edge.
type cedge struct {
	edge  int32 // edge index within the automaton
	ch    sa.ChanID
	dir   sa.SyncDir
	gkind cguardKind
	gop   expr.Op // comparison operator for gVarCmpK / gClockCmpK
	gidx  int32   // var/clock index, or cmps/progs/fns/slows index, per gkind
	gn    int32   // conjunct count for gCmpList
	gk    int64   // comparison constant for gVarCmpK / gClockCmpK
	// waker indexes wakers when the guard can report a wake-up delay; -1
	// otherwise. volatileWaker marks wakers whose wake-up points are not
	// invariant under time advance (anything but ExprGuard's clock-atom
	// scan), forcing a deadline recompute after every delay transition.
	waker         int32
	volatileWaker bool
}

// cupdate is one edge update: bytecode when provably compilable, the
// interface fallback otherwise.
type cupdate struct {
	prog *expr.Prog
	slow sa.Update
}

// catomKind classifies flattened invariant atoms.
type catomKind uint8

const (
	aConstBound catomKind = iota // clock ≤/< K
	aFnBound                     // clock ≤/< boundFn(vars, clocks)
	aFree                        // clock-free boolean conjunct
)

// catom is one flattened invariant atom.
type catom struct {
	kind    catomKind
	clock   int32
	strict  bool
	k       int64       // aConstBound
	boundFn expr.IntFn  // aFnBound
	freeFn  expr.BoolFn // aFree
}

// cinv is one location invariant: flattened atoms, or the opaque interface
// fallback (slow non-nil, atoms nil).
type cinv struct {
	atoms []catom
	slow  sa.Invariant
}

// compiled returns the network's compiled execution form. Builder.Build
// constructs it eagerly; the lazy fallback covers networks assembled without
// the builder (single-goroutine test helpers only).
func (n *Network) compiled() *compiledNet {
	if n.cnet == nil {
		n.cnet = buildCompiledNet(n)
	}
	return n.cnet
}

func buildCompiledNet(n *Network) *compiledNet {
	cn := &compiledNet{
		locBase:   make([]int32, len(n.Automata)),
		domains:   make([]expr.VarDomain, len(n.Vars)),
		updOf:     make([][]int32, len(n.Automata)),
		prio:      make([]int32, len(n.Automata)),
		broadcast: make([]bool, len(n.Chans)),
	}
	for i, v := range n.Vars {
		cn.domains[i] = expr.VarDomain{Name: v.Name, Min: v.Min, Max: v.Max, Bounded: v.HasBounds}
	}
	for ch, c := range n.Chans {
		cn.broadcast[ch] = c.Broadcast
		if c.Urgent {
			cn.urgentChans = append(cn.urgentChans, int32(ch))
		}
	}
	idx := n.index()
	for ai, a := range n.Automata {
		cn.prio[ai] = int32(a.Priority)
		if ai == 0 || cn.prio[ai] > cn.maxPrio {
			cn.maxPrio = cn.prio[ai]
		}

		cn.updOf[ai] = make([]int32, len(a.Edges))
		for ei := range a.Edges {
			cn.updOf[ai][ei] = cn.addUpdate(a.Edges[ei].Update)
		}

		cn.locBase[ai] = int32(len(cn.locs))
		for li := range a.Locations {
			loc := &a.Locations[li]
			c := cloc{
				inv:            cn.addInvariant(loc.Invariant),
				committed:      loc.Committed,
				clockSensitive: idx.locs[ai][li].clockSensitive,
			}
			for _, ei := range a.EdgesFrom(sa.LocID(li)) {
				c.edges = append(c.edges, cn.compileEdge(a, ei))
			}
			cn.locs = append(cn.locs, c)
		}
	}
	return cn
}

func (cn *compiledNet) trackRegs(p *expr.Prog) {
	if p != nil && p.NumRegs() > cn.maxRegs {
		cn.maxRegs = p.NumRegs()
	}
}

// compileEdge classifies and compiles the guard of edge ei, picking the
// cheapest evaluation tier it can prove correct: inlined var/clock-vs-const
// comparison, bytecode, compiled closure, or the opaque interface path.
func (cn *compiledNet) compileEdge(a *sa.Automaton, ei int) cedge {
	e := &a.Edges[ei]
	ce := cedge{edge: int32(ei), ch: sa.NoChan, waker: -1}
	if e.Sync.Dir != sa.NoSync {
		ce.dir = e.Sync.Dir
		ce.ch = e.Sync.Chan
	}
	switch g := e.Guard.(type) {
	case nil:
		ce.gkind = gTrue
	case *sa.ExprGuard:
		if isClock, idx, op, k, ok := expr.MatchCmpConst(g.Node); ok {
			if isClock {
				ce.gkind = gClockCmpK
			} else {
				ce.gkind = gVarCmpK
			}
			ce.gidx, ce.gop, ce.gk = int32(idx), op, k
		} else if list, ok := expr.MatchCmpList(g.Node, cn.cmps); ok {
			ce.gkind = gCmpList
			ce.gidx = int32(len(cn.cmps))
			ce.gn = int32(len(list) - len(cn.cmps))
			cn.cmps = list
		} else if p := expr.CompileBoolProg(g.Node); p != nil {
			ce.gkind = gProg
			ce.gidx = int32(len(cn.progs))
			cn.progs = append(cn.progs, p)
			cn.trackRegs(p)
		} else {
			ce.gkind = gClosure
			ce.gidx = int32(len(cn.fns))
			cn.fns = append(cn.fns, expr.CompileBool(g.Node))
		}
		if !g.ClockFree() {
			ce.waker = int32(len(cn.wakers))
			cn.wakers = append(cn.wakers, g)
		}
	default:
		ce.gkind = gOpaque
		ce.gidx = int32(len(cn.slows))
		cn.slows = append(cn.slows, g)
		if w, ok := g.(sa.Waker); ok {
			if gf, isFn := g.(*sa.GuardFunc); !isFn || gf.NextEnableF != nil {
				ce.waker = int32(len(cn.wakers))
				cn.wakers = append(cn.wakers, w)
				ce.volatileWaker = true
			}
		}
	}
	return ce
}

// addUpdate compiles an edge update into the updates table, returning its
// index (-1 for no update). ExprUpdate statement lists compile to bytecode
// when provably well-typed; everything else keeps the interface path.
func (cn *compiledNet) addUpdate(u sa.Update) int32 {
	if u == nil {
		return -1
	}
	cu := cupdate{slow: u}
	if eu, ok := u.(*sa.ExprUpdate); ok {
		if p := expr.CompileUpdateProg(eu.Stmts); p != nil {
			cu.prog = p
			cn.trackRegs(p)
		}
	}
	cn.updates = append(cn.updates, cu)
	return int32(len(cn.updates) - 1)
}

// addInvariant flattens a location invariant into the invs table, returning
// its index (-1 for trivially true). Expression invariants flatten to atom
// arrays — constant clock bounds become immediate k comparisons, the common
// case in the component library — and anything else keeps the interface
// fallback.
func (cn *compiledNet) addInvariant(inv sa.Invariant) int32 {
	if inv == nil {
		return -1
	}
	ci := cinv{}
	if fi, ok := inv.(*expr.Invariant); ok {
		atoms := fi.AtomList()
		ci.atoms = make([]catom, 0, len(atoms))
		for _, a := range atoms {
			if a.Clock < 0 {
				ci.atoms = append(ci.atoms, catom{kind: aFree, clock: -1, freeFn: a.FreeFn})
				continue
			}
			ca := catom{kind: aFnBound, clock: int32(a.Clock), strict: a.Strict, boundFn: a.BoundFn}
			if lit, isLit := a.Bound.(*expr.IntLit); isLit {
				ca.kind = aConstBound
				ca.k = lit.Val
			}
			ci.atoms = append(ci.atoms, ca)
		}
		if ci.atoms == nil {
			ci.atoms = []catom{} // non-nil marks "use atoms", even when empty
		}
	} else {
		ci.slow = inv
	}
	cn.invs = append(cn.invs, ci)
	return int32(len(cn.invs) - 1)
}

// loc returns the dense-form location automaton ai occupies in s.
func (cn *compiledNet) loc(ai int32, s *State) *cloc {
	return &cn.locs[cn.locBase[ai]+int32(s.Locs[ai])]
}

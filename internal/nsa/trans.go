package nsa

import (
	"fmt"
	"strconv"
	"strings"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// TransKind classifies action transitions.
type TransKind uint8

// Transition kinds.
const (
	Internal   TransKind = iota // single automaton, no synchronization
	BinarySync                  // sender + receiver on a binary channel
	Broadcast                   // sender + all enabled receivers on a broadcast channel
)

// String names the kind for logs and metric labels.
func (k TransKind) String() string {
	switch k {
	case Internal:
		return "internal"
	case BinarySync:
		return "binary"
	case Broadcast:
		return "broadcast"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Part identifies one participating automaton and the edge it takes.
type Part struct {
	Aut  int
	Edge int
}

// Transition is an enabled action transition. Parts are in firing order:
// the single automaton for Internal; sender then receiver for BinarySync;
// sender then receivers in ascending automaton order for Broadcast.
type Transition struct {
	Kind  TransKind
	Chan  sa.ChanID // NoChan for Internal
	Parts []Part
}

// String renders the transition for diagnostics against net.
func (t *Transition) String(net *Network) string {
	var b strings.Builder
	switch t.Kind {
	case Internal:
		p := t.Parts[0]
		fmt.Fprintf(&b, "%s: %s", net.Automata[p.Aut].Name, net.Automata[p.Aut].EdgeString(p.Edge))
	case BinarySync:
		fmt.Fprintf(&b, "%s: %s ! -> %s", net.ChanName(t.Chan),
			net.Automata[t.Parts[0].Aut].Name, net.Automata[t.Parts[1].Aut].Name)
	case Broadcast:
		fmt.Fprintf(&b, "%s: %s ! ->", net.ChanName(t.Chan), net.Automata[t.Parts[0].Aut].Name)
		for _, p := range t.Parts[1:] {
			fmt.Fprintf(&b, " %s", net.Automata[p.Aut].Name)
		}
	}
	return b.String()
}

func guardHolds(g sa.Guard, env expr.Env) bool {
	return g == nil || g.Holds(env)
}

// half is one side of a potential synchronization: an automaton and the
// enabled edge it would take.
type half struct{ aut, edge int }

// enabledEdge reports whether edge e of automaton ai is enabled in s
// disregarding synchronization availability.
func (n *Network) enabledEdge(env expr.Env, ai, ei int) bool {
	return guardHolds(n.Automata[ai].Edges[ei].Guard, env)
}

// committedAt reports whether automaton ai currently occupies a committed
// location.
func (n *Network) committedAt(s *State, ai int) bool {
	return n.Automata[ai].Locations[s.Locs[ai]].Committed
}

// anyCommitted reports whether any automaton occupies a committed location.
func (n *Network) anyCommitted(s *State) bool {
	for ai := range n.Automata {
		if n.committedAt(s, ai) {
			return true
		}
	}
	return false
}

// EnabledTransitions appends every action transition enabled in s to buf and
// returns it, in a canonical deterministic order: internal transitions by
// (automaton, edge), then binary synchronizations by (sender automaton,
// sender edge, receiver automaton, receiver edge), then broadcasts by
// (sender automaton, sender edge, receiver edge combination). When any
// automaton occupies a committed location, only transitions involving at
// least one committed participant are enabled (the UPPAAL committed rule).
// Of the remaining transitions, only those of the highest process-priority
// class (the maximum sa.Automaton.Priority over participants) are returned.
func (n *Network) EnabledTransitions(s *State, buf []Transition) []Transition {
	return n.filterPriority(n.enabledTransitionsRaw(s, buf))
}

// filterPriority keeps only the transitions of the highest process-priority
// class, in place. It is shared by the naive and the indexed enumeration
// paths so both apply the identical filter.
func (n *Network) filterPriority(buf []Transition) []Transition {
	best := 0
	hasLower := false
	for i := range buf {
		p := n.transPriority(&buf[i])
		if p > best {
			if i > 0 {
				hasLower = true
			}
			best = p
		} else if p < best {
			hasLower = true
		}
	}
	if !hasLower {
		return buf
	}
	out := buf[:0]
	for i := range buf {
		if n.transPriority(&buf[i]) == best {
			out = append(out, buf[i])
		}
	}
	return out
}

// transPriority is the highest participant priority of a transition.
func (n *Network) transPriority(t *Transition) int {
	best := n.Automata[t.Parts[0].Aut].Priority
	for _, p := range t.Parts[1:] {
		if q := n.Automata[p.Aut].Priority; q > best {
			best = q
		}
	}
	return best
}

func (n *Network) enabledTransitionsRaw(s *State, buf []Transition) []Transition {
	env := n.Env(s)
	committed := n.anyCommitted(s)

	// Pre-scan enabled sends and receives per channel.
	var sends, recvs map[sa.ChanID][]half
	for ai, a := range n.Automata {
		for _, ei := range a.EdgesFrom(s.Locs[ai]) {
			e := &a.Edges[ei]
			switch e.Sync.Dir {
			case sa.NoSync:
				if committed && !n.committedAt(s, ai) {
					continue
				}
				if n.enabledEdge(env, ai, ei) {
					buf = append(buf, Transition{Kind: Internal, Chan: sa.NoChan, Parts: []Part{{ai, ei}}})
				}
			case sa.Send:
				if n.enabledEdge(env, ai, ei) {
					if sends == nil {
						sends = make(map[sa.ChanID][]half)
					}
					sends[e.Sync.Chan] = append(sends[e.Sync.Chan], half{ai, ei})
				}
			case sa.Recv:
				if n.enabledEdge(env, ai, ei) {
					if recvs == nil {
						recvs = make(map[sa.ChanID][]half)
					}
					recvs[e.Sync.Chan] = append(recvs[e.Sync.Chan], half{ai, ei})
				}
			}
		}
	}

	// Binary synchronizations, in canonical order.
	for ch := range n.Chans {
		cid := sa.ChanID(ch)
		if n.Chans[ch].Broadcast {
			continue
		}
		for _, snd := range sends[cid] {
			for _, rcv := range recvs[cid] {
				if rcv.aut == snd.aut {
					continue
				}
				if committed && !n.committedAt(s, snd.aut) && !n.committedAt(s, rcv.aut) {
					continue
				}
				buf = append(buf, Transition{
					Kind:  BinarySync,
					Chan:  cid,
					Parts: []Part{{snd.aut, snd.edge}, {rcv.aut, rcv.edge}},
				})
			}
		}
	}

	// Broadcast synchronizations: every automaton with an enabled receiving
	// edge participates; if an automaton has several enabled receiving
	// edges, each choice yields a distinct transition (cartesian product).
	for ch := range n.Chans {
		cid := sa.ChanID(ch)
		if !n.Chans[ch].Broadcast {
			continue
		}
		for _, snd := range sends[cid] {
			// Group enabled receive edges by automaton, excluding the sender.
			var groups [][]half
			committedOK := !committed || n.committedAt(s, snd.aut)
			lastAut := -1
			for _, rcv := range recvs[cid] {
				if rcv.aut == snd.aut {
					continue
				}
				if rcv.aut != lastAut {
					groups = append(groups, nil)
					lastAut = rcv.aut
				}
				groups[len(groups)-1] = append(groups[len(groups)-1], rcv)
				if committed && n.committedAt(s, rcv.aut) {
					committedOK = true
				}
			}
			if !committedOK {
				continue
			}
			buf = appendBroadcastCombos(buf, cid, snd.aut, snd.edge, groups)
		}
	}
	return buf
}

// appendBroadcastCombos expands the cartesian product of per-automaton
// receive-edge choices into transitions.
func appendBroadcastCombos(buf []Transition, ch sa.ChanID, sndAut, sndEdge int, groups [][]half) []Transition {
	parts := make([]Part, 1, 1+len(groups))
	parts[0] = Part{sndAut, sndEdge}
	var rec func(i int)
	rec = func(i int) {
		if i == len(groups) {
			cp := make([]Part, len(parts))
			copy(cp, parts)
			buf = append(buf, Transition{Kind: Broadcast, Chan: ch, Parts: cp})
			return
		}
		for _, h := range groups[i] {
			parts = append(parts, Part{h.aut, h.edge})
			rec(i + 1)
			parts = parts[:len(parts)-1]
		}
	}
	rec(0)
	return buf
}

// SemanticsError reports a violation of model well-formedness detected
// during interpretation (target invariant violated, domain violation,
// expression runtime error). Automaton, Location and Expr localize the
// failure when known; they may be empty.
type SemanticsError struct {
	Time int64
	Msg  string
	// Automaton and Location name where the violation happened ("" when the
	// failure is not attributable to a single automaton).
	Automaton string
	Location  string
	// Expr is the guard/update/invariant source involved, if any.
	Expr string
}

func (e *SemanticsError) Error() string {
	where := ""
	if e.Automaton != "" {
		where = " in automaton " + strconv.Quote(e.Automaton)
		if e.Location != "" {
			where += " location " + strconv.Quote(e.Location)
		}
	}
	return fmt.Sprintf("nsa: at time %d%s: %s", e.Time, where, e.Msg)
}

// convertUpdatePanic turns a panic raised while running the update of
// participant p into the canonical SemanticsError. It is shared by every
// backend (naive Fire, the compiled runtime) so the error text is
// byte-identical regardless of how the update was executed. Panics that are
// not *expr.RuntimeError are programmer errors; they are re-raised with the
// same context attached instead of raw.
func (n *Network) convertUpdatePanic(s *State, tr *Transition, p Part, r any) error {
	a := n.Automata[p.Aut]
	re, ok := r.(*expr.RuntimeError)
	if !ok {
		panic(fmt.Sprintf("nsa: internal panic in update of automaton %q edge %s while firing %s: %v",
			a.Name, a.EdgeString(p.Edge), tr.String(n), r))
	}
	return &SemanticsError{
		Time:      s.Time,
		Automaton: a.Name,
		Location:  a.LocationName(s.Locs[p.Aut]),
		Expr:      re.Expr,
		Msg: fmt.Sprintf("firing %s: update of edge %s: %v",
			tr.String(n), a.EdgeString(p.Edge), re),
	}
}

// convertInvariantPanic turns a panic raised while evaluating the target
// invariant of participant p into the canonical SemanticsError (shared
// across backends like convertUpdatePanic). Non-RuntimeError panics
// propagate raw.
func (n *Network) convertInvariantPanic(s *State, tr *Transition, p Part, r any) error {
	re, ok := r.(*expr.RuntimeError)
	if !ok {
		panic(r)
	}
	a := n.Automata[p.Aut]
	loc := &a.Locations[s.Locs[p.Aut]]
	return &SemanticsError{
		Time:      s.Time,
		Automaton: a.Name,
		Location:  loc.Name,
		Expr:      re.Expr,
		Msg: fmt.Sprintf("firing %s: invariant %s of %q: %v",
			tr.String(n), loc.Invariant, a.Name, re),
	}
}

// invariantViolationError is the canonical error for a transition leaving
// participant p in a location whose invariant does not hold.
func (n *Network) invariantViolationError(s *State, tr *Transition, p Part) *SemanticsError {
	a := n.Automata[p.Aut]
	loc := &a.Locations[s.Locs[p.Aut]]
	return &SemanticsError{
		Time:      s.Time,
		Automaton: a.Name,
		Location:  loc.Name,
		Expr:      loc.Invariant.String(),
		Msg: fmt.Sprintf("transition %s leaves automaton %q in location %q violating invariant %s",
			tr.String(n), a.Name, loc.Name, loc.Invariant),
	}
}

// applyUpdate runs one participant's edge update, converting expression
// runtime panics (domain violations, division by zero, bad array indices)
// into a SemanticsError that names the firing transition, the automaton and
// the edge.
func (n *Network) applyUpdate(env expr.MutableEnv, s *State, tr *Transition, p Part, upd sa.Update) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = n.convertUpdatePanic(s, tr, p, r)
		}
	}()
	upd.Apply(env)
	return nil
}

// Fire applies tr to s in place: participants change locations and updates
// run in firing order (sender first). It returns an error if an update
// violates a variable domain or a participant's target invariant fails
// afterwards, both of which indicate a malformed model.
func (n *Network) Fire(s *State, tr *Transition) (err error) {
	env := n.Env(s)
	for _, p := range tr.Parts {
		e := &n.Automata[p.Aut].Edges[p.Edge]
		s.Locs[p.Aut] = e.Dst
		if e.Update != nil {
			if err := n.applyUpdate(env, s, tr, p, e.Update); err != nil {
				return err
			}
		}
	}
	for _, p := range tr.Parts {
		a := n.Automata[p.Aut]
		loc := &a.Locations[s.Locs[p.Aut]]
		if loc.Invariant == nil {
			continue
		}
		holds, herr := n.holdsGuarded(env, s, tr, p, loc)
		if herr != nil {
			return herr
		}
		if !holds {
			return &SemanticsError{
				Time:      s.Time,
				Automaton: a.Name,
				Location:  loc.Name,
				Expr:      loc.Invariant.String(),
				Msg: fmt.Sprintf("transition %s leaves automaton %q in location %q violating invariant %s",
					tr.String(n), a.Name, loc.Name, loc.Invariant),
			}
		}
	}
	return nil
}

// holdsGuarded evaluates a target-location invariant, converting expression
// runtime panics into a localized SemanticsError.
func (n *Network) holdsGuarded(env expr.Env, s *State, tr *Transition, p Part, loc *sa.Location) (holds bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*expr.RuntimeError)
			if !ok {
				panic(r)
			}
			a := n.Automata[p.Aut]
			err = &SemanticsError{
				Time:      s.Time,
				Automaton: a.Name,
				Location:  loc.Name,
				Expr:      re.Expr,
				Msg: fmt.Sprintf("firing %s: invariant %s of %q: %v",
					tr.String(n), loc.Invariant, a.Name, re),
			}
		}
	}()
	return loc.Invariant.Holds(env), nil
}

// DelayInfo describes the delay options from a state with no pending forced
// action.
type DelayInfo struct {
	// Max is the largest admissible delay (bounded by invariants), or
	// expr.NoBound when invariants allow unbounded delay.
	Max int64
	// Wake is the earliest delay at which a currently disabled
	// clock-dependent guard may become enabled, or expr.NoBound.
	Wake int64
	// Blocked is true when no delay at all is admissible: a committed
	// location is occupied or an urgent synchronization is enabled.
	Blocked bool
}

// Step returns min(Max, Wake): the delay the maximal-progress interpretation
// takes, jumping directly to the next forced event or guard wake-up point.
func (d DelayInfo) Step() int64 {
	if d.Wake < d.Max {
		return d.Wake
	}
	return d.Max
}

// DelayBound computes the admissible delay information in s. The caller is
// expected to have found no enabled transitions it wants to fire first;
// urgency is still reported via Blocked.
func (n *Network) DelayBound(s *State) DelayInfo {
	env := n.Env(s)
	if n.anyCommitted(s) {
		return DelayInfo{Blocked: true}
	}
	if n.urgentEnabled(s, env) {
		return DelayInfo{Blocked: true}
	}
	var stoppedBuf []bool
	stopped := n.StoppedClocks(s, stoppedBuf)
	running := func(c int) bool { return !stopped[c] }

	info := DelayInfo{Max: expr.NoBound, Wake: expr.NoBound}
	for ai, a := range n.Automata {
		loc := &a.Locations[s.Locs[ai]]
		if loc.Invariant != nil {
			if d := loc.Invariant.MaxDelay(env, running); d < info.Max {
				info.Max = d
			}
		}
		// Wake-up points from currently disabled clock-dependent guards.
		for _, ei := range a.EdgesFrom(s.Locs[ai]) {
			g := a.Edges[ei].Guard
			if g == nil || g.Holds(env) {
				continue
			}
			if w, ok := g.(sa.Waker); ok {
				if d := w.NextEnable(env, running); d >= 1 && d < info.Wake {
					info.Wake = d
				}
			}
		}
	}
	return info
}

// urgentEnabled reports whether any synchronization over an urgent channel
// is enabled (sender+receiver for binary channels; an enabled sender suffices
// for broadcast channels).
func (n *Network) urgentEnabled(s *State, env expr.Env) bool {
	type half struct{ aut, edge int }
	var sends, recvs map[sa.ChanID][]half
	for ai, a := range n.Automata {
		for _, ei := range a.EdgesFrom(s.Locs[ai]) {
			e := &a.Edges[ei]
			if e.Sync.Dir == sa.NoSync || !n.Chans[e.Sync.Chan].Urgent {
				continue
			}
			if !n.enabledEdge(env, ai, ei) {
				continue
			}
			if e.Sync.Dir == sa.Send && n.Chans[e.Sync.Chan].Broadcast {
				return true
			}
			if e.Sync.Dir == sa.Send {
				if sends == nil {
					sends = make(map[sa.ChanID][]half)
				}
				sends[e.Sync.Chan] = append(sends[e.Sync.Chan], half{ai, ei})
			} else {
				if recvs == nil {
					recvs = make(map[sa.ChanID][]half)
				}
				recvs[e.Sync.Chan] = append(recvs[e.Sync.Chan], half{ai, ei})
			}
		}
	}
	for ch, ss := range sends {
		for _, snd := range ss {
			for _, rcv := range recvs[ch] {
				if rcv.aut != snd.aut {
					return true
				}
			}
		}
	}
	return false
}

// Advance moves time forward by d: every running clock and the model time
// increase by d. It returns an error when d exceeds an invariant bound
// (callers normally pass DelayBound results, which cannot).
func (n *Network) Advance(s *State, d int64) error {
	if d < 0 {
		return &SemanticsError{Time: s.Time, Msg: fmt.Sprintf("negative delay %d", d)}
	}
	stopped := n.StoppedClocks(s, nil)
	for c := range s.Clocks {
		if !stopped[c] {
			s.Clocks[c] += d
		}
	}
	s.Time += d
	env := n.Env(s)
	for ai, a := range n.Automata {
		loc := &a.Locations[s.Locs[ai]]
		if loc.Invariant != nil && !loc.Invariant.Holds(env) {
			return &SemanticsError{
				Time:      s.Time,
				Automaton: a.Name,
				Location:  loc.Name,
				Expr:      loc.Invariant.String(),
				Msg: fmt.Sprintf("delay %d violates invariant %s of %q in %q",
					d, loc.Invariant, a.Name, loc.Name),
			}
		}
	}
	return nil
}

package nsa

import (
	"math/rand"
	"strings"
	"testing"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

func TestUrgentBroadcastBlocksDelay(t *testing.T) {
	b := NewBuilder()
	n := b.Var("n", 0)
	ck := b.Clock("t")
	ch := b.UrgentBroadcastChan("bang")
	sc := b.Scope()

	// Sender becomes enabled at t==0 (immediately); without urgency the
	// receiver-less broadcast could be delayed arbitrarily (no invariant).
	snd := sa.NewBuilder("S")
	snd.OwnClock(ck)
	s0 := snd.Loc("S0")
	s1 := snd.Loc("S1")
	snd.Init(s0)
	snd.SendEdge(s0, s1, nil, ch,
		&sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("n := t", sc)})
	b.Add(snd.MustBuild())
	net := b.MustBuild()

	eng := NewEngine(net, Options{Horizon: 50})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.State().Vars[n]; got != 0 {
		t.Errorf("broadcast fired at t=%d, want 0 (urgent)", got)
	}
}

func TestListenerFuncAndSyncTraceKinds(t *testing.T) {
	b := NewBuilder()
	b.Var("x", 0)
	bc := b.BroadcastChan("bc")
	bin := b.Chan("bin")
	sc := b.Scope()

	ab := sa.NewBuilder("A")
	a0 := ab.Loc("A0", sa.Committed())
	a1 := ab.Loc("A1", sa.Committed())
	a2 := ab.Loc("A2", sa.Committed())
	a3 := ab.Loc("A3")
	ab.Init(a0)
	ab.Edge(a0, a1, nil, sa.None, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("x := 1", sc)})
	ab.SendEdge(a1, a2, nil, bc, nil)
	ab.SendEdge(a2, a3, nil, bin, nil)
	b.Add(ab.MustBuild())

	rb := sa.NewBuilder("R")
	r0 := rb.Loc("R0")
	r1 := rb.Loc("R1")
	rb.Init(r0)
	rb.RecvEdge(r0, r1, nil, bin, nil)
	b.Add(rb.MustBuild())
	net := b.MustBuild()

	var kinds []TransKind
	lf := ListenerFunc(func(_ int64, tr *Transition, _ *Network, _ *State) {
		kinds = append(kinds, tr.Kind)
	})
	st := &SyncTrace{}
	eng := NewEngine(net, Options{Horizon: 5, Listeners: []Listener{lf, st}})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []TransKind{Internal, Broadcast, BinarySync}
	if len(kinds) != 3 {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if len(st.Events) != 3 || st.Events[0].Chan != -1 {
		t.Errorf("sync trace = %+v", st.Events)
	}
}

func TestChooserOutOfRange(t *testing.T) {
	net, _ := pingPong(t, 0, true)
	bad := chooserFunc(func(s *State, cands []Transition) int { return 99 })
	eng := NewEngine(net, Options{Horizon: 5, Chooser: bad})
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "chooser") {
		t.Errorf("err = %v", err)
	}
}

type chooserFunc func(s *State, cands []Transition) int

func (f chooserFunc) Choose(s *State, cands []Transition) int { return f(s, cands) }

func TestBadHorizon(t *testing.T) {
	net, _ := pingPong(t, 1, false)
	eng := NewEngine(net, Options{})
	if _, err := eng.Run(); err == nil {
		t.Error("zero horizon must error")
	}
	eng2 := NewEngine(net, Options{Horizon: -3})
	if _, err := eng2.Run(); err == nil {
		t.Error("negative horizon must error")
	}
}

func TestAdvanceNegativeDelay(t *testing.T) {
	net, _ := pingPong(t, 1, false)
	s := net.InitialState()
	if err := net.Advance(s, -1); err == nil {
		t.Error("negative delay must error")
	}
}

func TestAdvancePastInvariant(t *testing.T) {
	net, _ := pingPong(t, 3, false)
	s := net.InitialState()
	if err := net.Advance(s, 100); err == nil {
		t.Error("advancing past the invariant bound must error")
	}
}

func TestFireTargetInvariantViolation(t *testing.T) {
	// An edge that jumps into a location whose invariant is already false.
	b := NewBuilder()
	ck := b.Clock("t")
	sc := b.Scope()
	ab := sa.NewBuilder("A")
	ab.OwnClock(ck)
	l0 := ab.Loc("L0", sa.WithInvariant(mustInv(t, "t <= 10", sc)))
	bad := ab.Loc("Bad", sa.WithInvariant(mustInv(t, "t <= 2", sc)))
	ab.Init(l0)
	ab.Edge(l0, bad, sa.NewExprGuard(expr.MustParseResolve("t == 5", sc, expr.TypeBool)), sa.None, nil)
	b.Add(ab.MustBuild())
	net := b.MustBuild()
	_, _, err := Simulate(net, 20)
	if err == nil || !strings.Contains(err.Error(), "violating invariant") {
		t.Errorf("err = %v", err)
	}
}

func TestRandomChooserStillTerminates(t *testing.T) {
	// Random resolution over a committed cascade with several candidates.
	b := NewBuilder()
	b.Var("x", 0)
	sc := b.Scope()
	for i := 0; i < 4; i++ {
		ab := sa.NewBuilder(string(rune('A' + i)))
		l0 := ab.Loc("L0", sa.Committed())
		l1 := ab.Loc("L1")
		ab.Init(l0)
		ab.Edge(l0, l1, nil, sa.None, &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate("x := x + 1", sc)})
		b.Add(ab.MustBuild())
	}
	net := b.MustBuild()
	for seed := int64(0); seed < 10; seed++ {
		eng := NewEngine(net, Options{Horizon: 5, Chooser: RandomChooser{Rng: rand.New(rand.NewSource(seed))}})
		if _, err := eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := eng.State().Vars[0]; got != 4 {
			t.Errorf("seed %d: x = %d, want 4", seed, got)
		}
	}
}

func TestStoppedClocksHelper(t *testing.T) {
	b := NewBuilder()
	c1 := b.Clock("c1")
	c2 := b.Clock("c2")
	ab := sa.NewBuilder("A")
	ab.OwnClock(c1)
	ab.Loc("L0", sa.Stops(c1))
	ab.Init(0)
	b.Add(ab.MustBuild())
	net := b.MustBuild()
	s := net.InitialState()
	stopped := net.StoppedClocks(s, nil)
	if !stopped[c1] || stopped[c2] {
		t.Errorf("stopped = %v", stopped)
	}
	// Reuse with a provided buffer resets it.
	stopped[c2] = true
	stopped = net.StoppedClocks(s, stopped)
	if stopped[c2] {
		t.Error("buffer not reset")
	}
}

func TestClockOwnershipConflict(t *testing.T) {
	b := NewBuilder()
	ck := b.Clock("shared")
	a1 := sa.NewBuilder("A1")
	a1.OwnClock(ck)
	a1.Loc("L")
	a1.Init(0)
	a2 := sa.NewBuilder("A2")
	a2.OwnClock(ck)
	a2.Loc("L")
	a2.Init(0)
	b.Add(a1.MustBuild())
	b.Add(a2.MustBuild())
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "owned by both") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownChannelRejected(t *testing.T) {
	b := NewBuilder()
	ab := sa.NewBuilder("A")
	l := ab.Loc("L")
	ab.Init(l)
	ab.SendEdge(l, l, nil, 7, nil) // channel 7 was never declared
	b.Add(ab.MustBuild())
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown channel") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownClockRejected(t *testing.T) {
	b := NewBuilder()
	ab := sa.NewBuilder("A")
	ab.OwnClock(5)
	ab.Loc("L")
	ab.Init(0)
	b.Add(ab.MustBuild())
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown clock") {
		t.Errorf("err = %v", err)
	}
}

func TestDelayInfoStep(t *testing.T) {
	d := DelayInfo{Max: 10, Wake: 3}
	if d.Step() != 3 {
		t.Errorf("Step = %d", d.Step())
	}
	d = DelayInfo{Max: 2, Wake: expr.NoBound}
	if d.Step() != 2 {
		t.Errorf("Step = %d", d.Step())
	}
}

func TestLocationString(t *testing.T) {
	net, _ := pingPong(t, 1, false)
	s := net.InitialState()
	got := net.LocationString(s)
	if !strings.Contains(got, "A.Wait") || !strings.Contains(got, "B.Idle") {
		t.Errorf("LocationString = %q", got)
	}
}

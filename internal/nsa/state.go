package nsa

import (
	"encoding/binary"
	"fmt"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/sa"
)

// State is a configuration of a network: the location vector, clock and
// variable valuations, and the model time (the special clock that is never
// stopped or reset).
type State struct {
	Locs   []sa.LocID
	Clocks []int64
	Vars   []int64
	Time   int64
}

// InitialState returns the network's initial state: initial locations, all
// clocks zero, variables at their declared initial values, time zero.
func (n *Network) InitialState() *State {
	s := &State{
		Locs:   make([]sa.LocID, len(n.Automata)),
		Clocks: make([]int64, len(n.Clocks)),
		Vars:   make([]int64, len(n.Vars)),
	}
	for i, a := range n.Automata {
		s.Locs[i] = a.Initial
	}
	for i, v := range n.Vars {
		s.Vars[i] = v.Init
	}
	return s
}

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	c := &State{
		Locs:   make([]sa.LocID, len(s.Locs)),
		Clocks: make([]int64, len(s.Clocks)),
		Vars:   make([]int64, len(s.Vars)),
		Time:   s.Time,
	}
	copy(c.Locs, s.Locs)
	copy(c.Clocks, s.Clocks)
	copy(c.Vars, s.Vars)
	return c
}

// AppendKey appends a canonical binary encoding of s to buf and returns the
// result; equal states yield equal keys. Used by the model checker's
// visited set.
func (s *State) AppendKey(buf []byte) []byte {
	var tmp [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	for _, l := range s.Locs {
		put(int64(l))
	}
	for _, c := range s.Clocks {
		put(c)
	}
	for _, v := range s.Vars {
		put(v)
	}
	put(s.Time)
	return buf
}

// Env returns a mutable expression environment over s that enforces the
// network's declared variable bounds. The environment panics with
// *expr.RuntimeError on a domain violation; Engine.Run and the model checker
// convert the panic into an error.
func (n *Network) Env(s *State) expr.MutableEnv {
	return &stateEnv{n: n, s: s}
}

type stateEnv struct {
	n *Network
	s *State
}

func (e *stateEnv) Var(i int) int64   { return e.s.Vars[i] }
func (e *stateEnv) Clock(i int) int64 { return e.s.Clocks[i] }

func (e *stateEnv) SetVar(i int, v int64) {
	d := &e.n.Vars[i]
	if d.HasBounds && (v < d.Min || v > d.Max) {
		panic(expr.DomainError(v, d.Min, d.Max, d.Name))
	}
	e.s.Vars[i] = v
}

func (e *stateEnv) SetClock(i int, v int64) { e.s.Clocks[i] = v }

// StoppedClocks fills stopped (len == #clocks) with true for every clock
// stopped by some automaton's current location, and returns it.
func (n *Network) StoppedClocks(s *State, stopped []bool) []bool {
	if stopped == nil {
		stopped = make([]bool, len(n.Clocks))
	} else {
		for i := range stopped {
			stopped[i] = false
		}
	}
	for ai, a := range n.Automata {
		for _, c := range a.Locations[s.Locs[ai]].Stopped {
			stopped[c] = true
		}
	}
	return stopped
}

// LocationString renders the location vector for diagnostics.
func (n *Network) LocationString(s *State) string {
	out := ""
	for i, a := range n.Automata {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s.%s", a.Name, a.LocationName(s.Locs[i]))
	}
	return out
}

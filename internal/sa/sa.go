// Package sa defines stopwatch automata: finite automata extended with
// bounded integer variables and clocks that can be stopped per location
// (the paper's progress conditions P: L×C → B). An automaton is the unit of
// composition; networks of automata with shared variables and channels are
// assembled and interpreted by package nsa.
//
// Automata reference variables, clocks and channels through global indices
// assigned by the network builder, so a constructed automaton is always tied
// to the network it was built for.
package sa

import (
	"fmt"

	"stopwatchsim/internal/expr"
)

// LocID identifies a location within one automaton (index into Locations).
type LocID int

// ClockID is a global clock index within a network.
type ClockID int

// VarID is a global variable index within a network.
type VarID int

// ChanID is a global channel index within a network.
type ChanID int

// NoChan marks the absence of a synchronization action on an edge.
const NoChan ChanID = -1

// SyncDir is the direction of a synchronization action.
type SyncDir uint8

// Synchronization directions.
const (
	NoSync SyncDir = iota
	Send           // ch!
	Recv           // ch?
)

func (d SyncDir) String() string {
	switch d {
	case Send:
		return "!"
	case Recv:
		return "?"
	default:
		return ""
	}
}

// Sync is an edge's synchronization label.
type Sync struct {
	Chan ChanID
	Dir  SyncDir
}

// None is the empty synchronization label (internal transition).
var None = Sync{Chan: NoChan, Dir: NoSync}

// Guard is an edge guard: a side-effect-free predicate over variables and
// clocks. A nil Guard is trivially true.
//
// Guards that depend on clock values should either be expression-based
// (ExprGuard, which supports enabling-time analysis) or implement Waker;
// otherwise the interpretation engine assumes delay transitions cannot
// enable them (true for all variable-only guards).
type Guard interface {
	Holds(env expr.Env) bool
	String() string
}

// Waker is implemented by clock-dependent guards that can report a lower
// bound on the delay after which they may become enabled. NextEnable returns
// the smallest d ≥ 1 such that the guard could hold after running clocks
// advance by d, or expr.NoBound if delay alone can never enable it. It is
// only consulted when the guard is currently false.
type Waker interface {
	NextEnable(env expr.Env, running func(clock int) bool) int64
}

// Update is an edge update: an action mutating variables and clocks.
// A nil Update is a no-op.
type Update interface {
	Apply(env expr.MutableEnv)
	String() string
}

// Invariant is a location invariant. A nil Invariant is trivially true.
// *expr.Invariant implements it.
type Invariant interface {
	Holds(env expr.Env) bool
	// MaxDelay returns the largest admissible delay with the given running
	// clocks, or expr.NoBound.
	MaxDelay(env expr.Env, running func(clock int) bool) int64
	String() string
}

// Deps declares the variable and clock footprint of an opaque Go function
// (GuardFunc, UpdateFunc). Expression-based guards and updates have their
// footprints extracted from the AST; function-backed ones must declare them
// to let the interpretation engine re-evaluate only what a transition may
// have changed. A nil *Deps means "unknown": the engine then conservatively
// re-evaluates the owning automaton after every step.
type Deps struct {
	Vars   []VarID
	Clocks []ClockID
}

// GuardFunc is a Guard backed by a Go function. F must not depend on clock
// values unless NextEnableF is also provided. Reads, when non-nil, declares
// every variable and clock F (and NextEnableF) may read.
type GuardFunc struct {
	Desc        string
	F           func(env expr.Env) bool
	NextEnableF func(env expr.Env, running func(clock int) bool) int64
	Reads       *Deps
}

// Holds implements Guard.
func (g *GuardFunc) Holds(env expr.Env) bool { return g.F(env) }

// String implements Guard.
func (g *GuardFunc) String() string { return g.Desc }

// NextEnable implements Waker when NextEnableF is set.
func (g *GuardFunc) NextEnable(env expr.Env, running func(clock int) bool) int64 {
	if g.NextEnableF == nil {
		return expr.NoBound
	}
	return g.NextEnableF(env, running)
}

// UpdateFunc is an Update backed by a Go function. Writes, when non-nil,
// declares every variable and clock F may assign.
type UpdateFunc struct {
	Desc   string
	F      func(env expr.MutableEnv)
	Writes *Deps
}

// Apply implements Update.
func (u *UpdateFunc) Apply(env expr.MutableEnv) { u.F(env) }

// String implements Update.
func (u *UpdateFunc) String() string { return u.Desc }

// ExprGuard adapts a resolved boolean expression to Guard, with
// enabling-time analysis for its clock atoms (see Waker).
type ExprGuard struct {
	Node   expr.Node
	clocks []int
}

// NewExprGuard wraps a resolved bool-typed expression.
func NewExprGuard(n expr.Node) *ExprGuard {
	return &ExprGuard{Node: n, clocks: expr.Clocks(n, nil)}
}

// Holds implements Guard.
func (g *ExprGuard) Holds(env expr.Env) bool { return g.Node.EvalBool(env) }

// String implements Guard.
func (g *ExprGuard) String() string { return g.Node.String() }

// ClockFree reports whether the guard references no clocks.
func (g *ExprGuard) ClockFree() bool { return len(g.clocks) == 0 }

// NextEnable implements Waker: it returns the smallest delay d ≥ 1 at which
// the guard expression could flip to true, determined by scanning the delays
// at which any clock atom changes truth value. The result is a sound
// wake-up schedule: the engine re-evaluates the guard after delaying, so a
// conservative (too early) answer only costs time.
func (g *ExprGuard) NextEnable(env expr.Env, running func(clock int) bool) int64 {
	if len(g.clocks) == 0 {
		return expr.NoBound
	}
	best := expr.NoBound
	scan(g.Node, env, running, &best)
	if best < 1 {
		best = 1
	}
	return best
}

// scan records into best the minimal delay ≥ 1 at which some comparison atom
// involving a running clock changes truth value.
func scan(n expr.Node, env expr.Env, running func(clock int) bool, best *int64) {
	switch n := n.(type) {
	case *expr.Unary:
		scan(n.X, env, running, best)
	case *expr.Cond:
		scan(n.C, env, running, best)
		scan(n.A, env, running, best)
		scan(n.B, env, running, best)
	case *expr.Binary:
		switch n.Op {
		case expr.OpAnd, expr.OpOr:
			scan(n.X, env, running, best)
			scan(n.Y, env, running, best)
			return
		case expr.OpLT, expr.OpLE, expr.OpGT, expr.OpGE, expr.OpEQ, expr.OpNE:
			// Atom c ⋈ e or e ⋈ c with clock-free e: truth value changes
			// exactly when the running clock crosses e (or e, e+1 for the
			// strict/equality boundaries); the earliest crossing is at
			// delay e-c or e-c+1.
			cl, bound, ok := clockAtom(n)
			if !ok {
				return
			}
			if !running(cl) {
				return
			}
			c := env.Clock(cl)
			b := bound.EvalInt(env)
			for _, d := range [2]int64{b - c, b - c + 1} {
				if d >= 1 && d < *best {
					*best = d
				}
			}
		}
	}
}

// clockAtom decomposes a comparison with a bare clock on one side and a
// clock-free expression on the other.
func clockAtom(b *expr.Binary) (clock int, bound expr.Node, ok bool) {
	if cr, isC := b.X.(*expr.ClockRef); isC && len(expr.Clocks(b.Y, nil)) == 0 {
		return cr.Index, b.Y, true
	}
	if cr, isC := b.Y.(*expr.ClockRef); isC && len(expr.Clocks(b.X, nil)) == 0 {
		return cr.Index, b.X, true
	}
	return 0, nil, false
}

// GuardReads appends the global variable and clock indices guard g may read
// to vars and clocks. ok is false when the footprint is unknown (an opaque
// guard without a Reads declaration); callers must then assume g reads
// everything.
func GuardReads(g Guard, vars, clocks []int) (v, c []int, ok bool) {
	switch g := g.(type) {
	case nil:
		return vars, clocks, true
	case *ExprGuard:
		return expr.Vars(g.Node, vars), expr.Clocks(g.Node, clocks), true
	case *GuardFunc:
		if g.Reads == nil {
			return vars, clocks, false
		}
		for _, vi := range g.Reads.Vars {
			vars = append(vars, int(vi))
		}
		for _, ci := range g.Reads.Clocks {
			clocks = append(clocks, int(ci))
		}
		return vars, clocks, true
	default:
		return vars, clocks, false
	}
}

// UpdateWrites appends the global variable and clock indices update u may
// assign to vars and clocks. ok is false when the footprint is unknown;
// callers must then assume u writes everything. Assignments through a
// dynamic array index contribute the whole array range.
func UpdateWrites(u Update, vars, clocks []int) (v, c []int, ok bool) {
	switch u := u.(type) {
	case nil:
		return vars, clocks, true
	case *ExprUpdate:
		for _, s := range u.Stmts {
			switch t := s.Target.(type) {
			case *expr.VarRef:
				vars = append(vars, t.Index)
			case *expr.ClockRef:
				clocks = append(clocks, t.Index)
			case *expr.DynVarRef:
				for i := 0; i < t.Len; i++ {
					vars = append(vars, t.Base+i)
				}
			default:
				return vars, clocks, false
			}
		}
		return vars, clocks, true
	case *UpdateFunc:
		if u.Writes == nil {
			return vars, clocks, false
		}
		for _, vi := range u.Writes.Vars {
			vars = append(vars, int(vi))
		}
		for _, ci := range u.Writes.Clocks {
			clocks = append(clocks, int(ci))
		}
		return vars, clocks, true
	default:
		return vars, clocks, false
	}
}

// ExprUpdate adapts a resolved statement list to Update.
type ExprUpdate struct {
	Stmts expr.StmtList
}

// Apply implements Update.
func (u *ExprUpdate) Apply(env expr.MutableEnv) { u.Stmts.Apply(env) }

// String implements Update.
func (u *ExprUpdate) String() string { return u.Stmts.String() }

// Location is an automaton location.
type Location struct {
	Name      string
	Committed bool
	Invariant Invariant // nil means true
	Stopped   []ClockID // clocks whose progress is stopped here
}

// Edge is an action transition between locations.
type Edge struct {
	Src, Dst LocID
	Guard    Guard // nil means true
	Sync     Sync
	Update   Update // nil means no update
}

// Automaton is a stopwatch automaton wired into a network's global variable,
// clock and channel index spaces.
type Automaton struct {
	Name      string
	Locations []Location
	Initial   LocID
	Edges     []Edge

	// Clocks lists the global indices of clocks owned by this automaton
	// (the clocks its progress conditions may stop).
	Clocks []ClockID

	// Priority orders simultaneous transitions across automata (the UPPAAL
	// process-priority mechanism): of all enabled transitions, only those
	// whose highest-priority participant is maximal may fire. The component
	// library gives time-driven automata (tasks, links) priority 1 over the
	// reactive schedulers (0), so releases, kills and deliveries at an
	// instant are processed before scheduling decisions at that instant.
	Priority int

	// edgesFrom[l] lists indices into Edges of edges leaving location l;
	// edgesIndexed is the edge count it was built from, so the index
	// refreshes when edges are added or removed after first use.
	edgesFrom    [][]int
	edgesIndexed int
}

// EdgesFrom returns the indices of edges leaving location l, computing the
// index on first use and recomputing it when the edge count has changed.
func (a *Automaton) EdgesFrom(l LocID) []int {
	if a.edgesFrom == nil || a.edgesIndexed != len(a.Edges) {
		a.edgesFrom = make([][]int, len(a.Locations))
		a.edgesIndexed = len(a.Edges)
		for i, e := range a.Edges {
			a.edgesFrom[e.Src] = append(a.edgesFrom[e.Src], i)
		}
	}
	return a.edgesFrom[l]
}

// LocationName returns a printable name for l.
func (a *Automaton) LocationName(l LocID) string {
	if int(l) < 0 || int(l) >= len(a.Locations) {
		return fmt.Sprintf("loc#%d", int(l))
	}
	if n := a.Locations[l].Name; n != "" {
		return n
	}
	return fmt.Sprintf("loc#%d", int(l))
}

// Validate checks structural well-formedness: location and edge indices in
// range, initial location valid, stopped clocks owned by the automaton and
// sync labels consistent.
func (a *Automaton) Validate() error {
	if len(a.Locations) == 0 {
		return fmt.Errorf("sa: automaton %q has no locations", a.Name)
	}
	if a.Initial < 0 || int(a.Initial) >= len(a.Locations) {
		return fmt.Errorf("sa: automaton %q: initial location %d out of range", a.Name, a.Initial)
	}
	owned := make(map[ClockID]bool, len(a.Clocks))
	for _, c := range a.Clocks {
		owned[c] = true
	}
	for li, l := range a.Locations {
		for _, c := range l.Stopped {
			if !owned[c] {
				return fmt.Errorf("sa: automaton %q location %q stops clock %d it does not own", a.Name, a.LocationName(LocID(li)), c)
			}
		}
	}
	for i, e := range a.Edges {
		if e.Src < 0 || int(e.Src) >= len(a.Locations) || e.Dst < 0 || int(e.Dst) >= len(a.Locations) {
			return fmt.Errorf("sa: automaton %q edge %d: location out of range", a.Name, i)
		}
		switch e.Sync.Dir {
		case NoSync:
			if e.Sync.Chan != NoChan {
				return fmt.Errorf("sa: automaton %q edge %d: channel set without direction", a.Name, i)
			}
		case Send, Recv:
			if e.Sync.Chan == NoChan {
				return fmt.Errorf("sa: automaton %q edge %d: sync direction without channel", a.Name, i)
			}
		default:
			return fmt.Errorf("sa: automaton %q edge %d: bad sync direction %d", a.Name, i, e.Sync.Dir)
		}
	}
	return nil
}

// EdgeString renders edge i for diagnostics.
func (a *Automaton) EdgeString(i int) string {
	e := a.Edges[i]
	s := fmt.Sprintf("%s -> %s", a.LocationName(e.Src), a.LocationName(e.Dst))
	if e.Guard != nil {
		s += fmt.Sprintf(" [%s]", e.Guard)
	}
	if e.Sync.Dir != NoSync {
		s += fmt.Sprintf(" ch%d%s", e.Sync.Chan, e.Sync.Dir)
	}
	if e.Update != nil {
		s += fmt.Sprintf(" {%s}", e.Update)
	}
	return s
}

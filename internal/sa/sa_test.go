package sa

import (
	"strings"
	"testing"

	"stopwatchsim/internal/expr"
)

type env struct {
	vars   []int64
	clocks []int64
}

func (e env) Var(i int) int64   { return e.vars[i] }
func (e env) Clock(i int) int64 { return e.clocks[i] }

func scope() expr.MapScope {
	return expr.MapScope{
		"x": {Kind: expr.SymVar, Index: 0},
		"t": {Kind: expr.SymClock, Index: 0},
		"u": {Kind: expr.SymClock, Index: 1},
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("demo")
	b.OwnClock(0)
	idle := b.Loc("Idle", Stops(0))
	run := b.Loc("Run", WithInvariant(expr.MustCompileInvariant(
		expr.MustParseResolve("t <= 5", scope(), expr.TypeBool))))
	dec := b.Loc("Decide", Committed())
	b.Init(idle)
	b.Edge(idle, dec, nil, None, nil)
	b.SendEdge(dec, run, nil, 0, nil)
	b.RecvEdge(run, idle, NewExprGuard(expr.MustParseResolve("t == 5", scope(), expr.TypeBool)), 1, nil)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Locations) != 3 || len(a.Edges) != 3 {
		t.Fatalf("got %d locations, %d edges", len(a.Locations), len(a.Edges))
	}
	if !a.Locations[dec].Committed {
		t.Error("Decide should be committed")
	}
	if got := a.EdgesFrom(idle); len(got) != 1 || got[0] != 0 {
		t.Errorf("EdgesFrom(Idle) = %v", got)
	}
	if a.LocationName(run) != "Run" {
		t.Errorf("LocationName = %q", a.LocationName(run))
	}
	if a.LocationName(99) != "loc#99" {
		t.Errorf("out-of-range LocationName = %q", a.LocationName(99))
	}
	if s := a.EdgeString(2); !strings.Contains(s, "t == 5") || !strings.Contains(s, "ch1?") {
		t.Errorf("EdgeString = %q", s)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate location", func(t *testing.T) {
		b := NewBuilder("d")
		b.Loc("A")
		b.Loc("A")
		b.Init(0)
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("no initial", func(t *testing.T) {
		b := NewBuilder("d")
		b.Loc("A")
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("double init", func(t *testing.T) {
		b := NewBuilder("d")
		l := b.Loc("A")
		b.Init(l)
		b.Init(l)
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("unowned stopped clock", func(t *testing.T) {
		b := NewBuilder("d")
		l := b.Loc("A", Stops(3))
		b.Init(l)
		if _, err := b.Build(); err == nil {
			t.Error("expected error")
		}
	})
}

func TestValidateEdgeErrors(t *testing.T) {
	a := &Automaton{
		Name:      "bad",
		Locations: []Location{{Name: "A"}},
		Initial:   0,
		Edges:     []Edge{{Src: 0, Dst: 5}},
	}
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
	a.Edges = []Edge{{Src: 0, Dst: 0, Sync: Sync{Chan: 3, Dir: NoSync}}}
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "without direction") {
		t.Errorf("err = %v", err)
	}
	a.Edges = []Edge{{Src: 0, Dst: 0, Sync: Sync{Chan: NoChan, Dir: Send}}}
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "without channel") {
		t.Errorf("err = %v", err)
	}
	a.Edges = nil
	a.Initial = 7
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "initial") {
		t.Errorf("err = %v", err)
	}
	a.Locations = nil
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "no locations") {
		t.Errorf("err = %v", err)
	}
}

func TestExprGuard(t *testing.T) {
	sc := scope()
	g := NewExprGuard(expr.MustParseResolve("x > 0 && t >= 3", sc, expr.TypeBool))
	if g.ClockFree() {
		t.Error("guard references a clock")
	}
	e := env{vars: []int64{1}, clocks: []int64{1, 0}}
	if g.Holds(e) {
		t.Error("guard should be false at t=1")
	}
	all := func(int) bool { return true }
	if d := g.NextEnable(e, all); d != 2 {
		t.Errorf("NextEnable = %d, want 2", d)
	}
	// Stopped clock: never enabled by delay.
	none := func(int) bool { return false }
	if d := g.NextEnable(e, none); d != expr.NoBound {
		t.Errorf("NextEnable (stopped) = %d, want NoBound", d)
	}

	cf := NewExprGuard(expr.MustParseResolve("x > 0", sc, expr.TypeBool))
	if !cf.ClockFree() {
		t.Error("variable-only guard is clock-free")
	}
	if d := cf.NextEnable(e, all); d != expr.NoBound {
		t.Errorf("clock-free NextEnable = %d, want NoBound", d)
	}
}

func TestExprGuardEqualityWake(t *testing.T) {
	sc := scope()
	// t == 7: from t=3 the atom flips at delay 4 (and back off at 5);
	// NextEnable must report 4.
	g := NewExprGuard(expr.MustParseResolve("t == 7", sc, expr.TypeBool))
	e := env{vars: []int64{0}, clocks: []int64{3, 0}}
	if d := g.NextEnable(e, func(int) bool { return true }); d != 4 {
		t.Errorf("NextEnable = %d, want 4", d)
	}
	// Already past: no wake-up.
	e2 := env{vars: []int64{0}, clocks: []int64{9, 0}}
	if d := g.NextEnable(e2, func(int) bool { return true }); d != expr.NoBound {
		t.Errorf("NextEnable past = %d, want NoBound", d)
	}
}

func TestExprGuardUpperBoundWake(t *testing.T) {
	sc := scope()
	// t < 7 is currently false only if t >= 7; delay can't re-enable it,
	// but the scan may still propose crossings; they must all be >= 1 or
	// NoBound — soundness, not precision, is required.
	g := NewExprGuard(expr.MustParseResolve("t < 7", sc, expr.TypeBool))
	e := env{vars: []int64{0}, clocks: []int64{9, 0}}
	if d := g.NextEnable(e, func(int) bool { return true }); d < 1 {
		t.Errorf("NextEnable = %d, want >= 1", d)
	}
}

func TestGuardFunc(t *testing.T) {
	g := &GuardFunc{Desc: "x is even", F: func(e expr.Env) bool { return e.Var(0)%2 == 0 }}
	if !g.Holds(env{vars: []int64{4}}) || g.Holds(env{vars: []int64{3}}) {
		t.Error("GuardFunc misbehaves")
	}
	if g.String() != "x is even" {
		t.Errorf("String = %q", g.String())
	}
	if d := g.NextEnable(env{vars: []int64{3}}, func(int) bool { return true }); d != expr.NoBound {
		t.Errorf("default NextEnable = %d", d)
	}
	g2 := &GuardFunc{Desc: "hint", F: func(expr.Env) bool { return false },
		NextEnableF: func(expr.Env, func(int) bool) int64 { return 42 }}
	if d := g2.NextEnable(env{}, func(int) bool { return true }); d != 42 {
		t.Errorf("hinted NextEnable = %d", d)
	}
}

func TestUpdateFuncAndExprUpdate(t *testing.T) {
	sc := scope()
	u := &ExprUpdate{Stmts: expr.MustParseResolveUpdate("x := x + 1", sc)}
	m := &mutableEnv{vars: []int64{1}, clocks: []int64{0, 0}}
	u.Apply(m)
	if m.vars[0] != 2 {
		t.Errorf("x = %d, want 2", m.vars[0])
	}
	if u.String() != "x := x + 1" {
		t.Errorf("String = %q", u.String())
	}
	uf := &UpdateFunc{Desc: "reset", F: func(e expr.MutableEnv) { e.SetVar(0, 0) }}
	uf.Apply(m)
	if m.vars[0] != 0 {
		t.Errorf("x = %d, want 0", m.vars[0])
	}
}

type mutableEnv struct {
	vars   []int64
	clocks []int64
}

func (e *mutableEnv) Var(i int) int64         { return e.vars[i] }
func (e *mutableEnv) Clock(i int) int64       { return e.clocks[i] }
func (e *mutableEnv) SetVar(i int, v int64)   { e.vars[i] = v }
func (e *mutableEnv) SetClock(i int, v int64) { e.clocks[i] = v }

func TestSyncDirString(t *testing.T) {
	if Send.String() != "!" || Recv.String() != "?" || NoSync.String() != "" {
		t.Error("SyncDir strings wrong")
	}
}

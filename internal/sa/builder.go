package sa

import "fmt"

// Builder constructs an Automaton incrementally. Errors are accumulated and
// reported by Build, so construction code stays linear.
type Builder struct {
	a    Automaton
	locs map[string]LocID
	err  error
}

// NewBuilder returns a builder for an automaton with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{a: Automaton{Name: name, Initial: -1}, locs: make(map[string]LocID)}
}

// OwnClock registers a clock (global index) as owned by the automaton so
// locations may stop it.
func (b *Builder) OwnClock(c ClockID) *Builder {
	b.a.Clocks = append(b.a.Clocks, c)
	return b
}

// Priority sets the automaton's process priority (see Automaton.Priority).
func (b *Builder) Priority(p int) *Builder {
	b.a.Priority = p
	return b
}

// LocOption configures a location added with Loc.
type LocOption func(*Location)

// Committed marks the location committed (no delay may elapse there).
func Committed() LocOption { return func(l *Location) { l.Committed = true } }

// WithInvariant attaches a location invariant.
func WithInvariant(inv Invariant) LocOption {
	return func(l *Location) { l.Invariant = inv }
}

// Stops declares clocks stopped in the location.
func Stops(clocks ...ClockID) LocOption {
	return func(l *Location) { l.Stopped = append(l.Stopped, clocks...) }
}

// Loc adds a location and returns its ID. Duplicate names are an error.
func (b *Builder) Loc(name string, opts ...LocOption) LocID {
	if _, dup := b.locs[name]; dup {
		b.fail(fmt.Errorf("sa: automaton %q: duplicate location %q", b.a.Name, name))
	}
	l := Location{Name: name}
	for _, o := range opts {
		o(&l)
	}
	id := LocID(len(b.a.Locations))
	b.a.Locations = append(b.a.Locations, l)
	b.locs[name] = id
	return id
}

// Init marks l as the initial location.
func (b *Builder) Init(l LocID) *Builder {
	if b.a.Initial >= 0 {
		b.fail(fmt.Errorf("sa: automaton %q: initial location set twice", b.a.Name))
	}
	b.a.Initial = l
	return b
}

// Edge adds an action transition. guard and update may be nil; use None for
// an internal transition.
func (b *Builder) Edge(src, dst LocID, guard Guard, sync Sync, update Update) *Builder {
	b.a.Edges = append(b.a.Edges, Edge{Src: src, Dst: dst, Guard: guard, Sync: sync, Update: update})
	return b
}

// SendEdge adds an edge sending on ch.
func (b *Builder) SendEdge(src, dst LocID, guard Guard, ch ChanID, update Update) *Builder {
	return b.Edge(src, dst, guard, Sync{Chan: ch, Dir: Send}, update)
}

// RecvEdge adds an edge receiving on ch.
func (b *Builder) RecvEdge(src, dst LocID, guard Guard, ch ChanID, update Update) *Builder {
	return b.Edge(src, dst, guard, Sync{Chan: ch, Dir: Recv}, update)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build validates and returns the automaton.
func (b *Builder) Build() (*Automaton, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.a.Initial < 0 {
		return nil, fmt.Errorf("sa: automaton %q: no initial location", b.a.Name)
	}
	a := b.a
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// MustBuild is Build panicking on error, for construction code whose inputs
// are statically known to be valid.
func (b *Builder) MustBuild() *Automaton {
	a, err := b.Build()
	if err != nil {
		panic(err)
	}
	return a
}

package mc

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

func TestBadStatePredicate(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{2}, Period: 5, Deadline: 5},
	})
	m := model.MustBuild(sys)
	// A predicate that triggers once the job variable reaches its final
	// value: reachable, so a witness must be produced.
	jobVar := m.IsReadyVar(config.TaskRef{Part: 0, Task: 0})
	res, err := Explore(m.Net, Options{
		Horizon: m.Horizon,
		BadState: func(s *nsa.State) string {
			if s.Vars[jobVar] == 1 {
				return "job became ready"
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Bad, "ready") {
		t.Errorf("witness = %q", res.Bad)
	}
	if !res.Complete {
		t.Error("exploration should still complete (bad state does not stop it)")
	}
}

func TestCollectTracesBounded(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "A", Priority: 2, WCET: []int64{1}, Period: 4, Deadline: 4},
		{Name: "B", Priority: 1, WCET: []int64{1}, Period: 4, Deadline: 4},
	})
	m := model.MustBuild(sys)
	if _, err := CollectTraces(m, 1); err == nil {
		t.Error("run bound must trigger an error")
	}
	runs, err := CollectTraces(model.MustBuild(sys), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 1 {
		t.Fatal("no runs")
	}
	// Every run contains the same number of events after normalization.
	want := runs[0].Normalize()
	for i, r := range runs[1:] {
		if !want.EqualAsSets(r.Normalize()) {
			t.Fatalf("run %d differs", i+1)
		}
	}
}

func TestExploreDeadlockSurfaces(t *testing.T) {
	// A malformed network: invariant forces action but nothing is enabled.
	// Build directly through nsa to keep the model library clean.
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{1}, Period: 4, Deadline: 4},
	})
	m := model.MustBuild(sys)
	// Sabotage: drop all edges of the core scheduler so its invariant
	// u <= 0 cannot be discharged.
	csIdx := m.Net.AutomatonIndex("CS_c1")
	m.Net.Automata[csIdx].Edges = nil
	m.Net.Reindex()
	_, err := Explore(m.Net, Options{Horizon: m.Horizon})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v", err)
	}
}

package mc

import (
	"context"
	"errors"
	"testing"
	"time"

	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

// bigModel returns a model whose state space is far too large to exhaust
// quickly: the paper's Table 1 configuration with 18 jobs, whose exhaustive
// exploration takes on the order of seconds.
func bigModel(t *testing.T) *model.Model {
	t.Helper()
	return model.MustBuild(gen.Table1Config(18))
}

func TestExploreContextCancelPrompt(t *testing.T) {
	m := bigModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := ExploreContext(ctx, m.Net, Options{Horizon: m.Horizon, MaxStates: 1 << 30})
	elapsed := time.Since(start)
	var rerr *nsa.RunError
	if !errors.As(err, &rerr) || rerr.Reason != nsa.StopCanceled {
		t.Fatalf("err = %v (after %v), want cancellation RunError", err, elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("RunError must unwrap to context.Canceled")
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to stop the exploration", elapsed)
	}
	if res.Complete {
		t.Error("canceled exploration must not claim completeness")
	}
	if res.States == 0 {
		t.Error("partial result reports no explored states")
	}
}

func TestExploreWallTimeBudget(t *testing.T) {
	m := bigModel(t)
	res, err := ExploreContext(context.Background(), m.Net, Options{
		Horizon: m.Horizon, MaxStates: 1 << 30,
		Budget: nsa.Budget{MaxWallTime: 30 * time.Millisecond},
	})
	var rerr *nsa.RunError
	if !errors.As(err, &rerr) || rerr.Reason != nsa.StopWallTime {
		t.Fatalf("err = %v, want wall-time RunError", err)
	}
	if res.Complete {
		t.Error("budget-stopped exploration must not claim completeness")
	}
}

func TestCheckSchedulabilityContextBudget(t *testing.T) {
	m := bigModel(t)
	_, res, err := CheckSchedulabilityContext(context.Background(), m,
		nsa.Budget{MaxStates: 100})
	var rerr *nsa.RunError
	if !errors.As(err, &rerr) || rerr.Reason != nsa.StopStates {
		t.Fatalf("err = %v, want state-budget RunError", err)
	}
	if res.Complete || res.States == 0 {
		t.Errorf("partial result = %+v", res)
	}
	if rerr.States != res.States {
		t.Errorf("RunError.States = %d, result = %d", rerr.States, res.States)
	}
}

package mc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

func oneCore(policy config.Policy, tasks []config.Task) *config.System {
	s := &config.System{
		Name:      "mc-test",
		CoreTypes: []string{"std"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: policy, Tasks: tasks},
		},
	}
	s.Partitions[0].Windows = []config.Window{{Start: 0, End: s.Hyperperiod()}}
	return s
}

func TestCheckSchedulabilityPositive(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "Hi", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
		{Name: "Lo", Priority: 1, WCET: []int64{6}, Period: 10, Deadline: 10},
	})
	m := model.MustBuild(sys)
	ok, res, err := CheckSchedulability(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("should be schedulable; witness %q", res.Bad)
	}
	if !res.Complete || res.States == 0 || res.Leaves == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestCheckSchedulabilityNegative(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{8}, Period: 10, Deadline: 5},
	})
	m := model.MustBuild(sys)
	ok, res, err := CheckSchedulability(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("should be unschedulable")
	}
	if !strings.Contains(res.Bad, "is_failed") {
		t.Errorf("witness = %q", res.Bad)
	}
}

// TestMCAgreesWithSimulator: the exhaustive verdict must match the
// single-run verdict on a batch of small configurations — the paper's core
// claim that one run suffices.
func TestMCAgreesWithSimulator(t *testing.T) {
	cases := []*config.System{
		oneCore(config.FPPS, []config.Task{
			{Name: "A", Priority: 2, WCET: []int64{2}, Period: 6, Deadline: 6},
			{Name: "B", Priority: 1, WCET: []int64{3}, Period: 12, Deadline: 12},
		}),
		oneCore(config.EDF, []config.Task{
			{Name: "A", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 9},
			{Name: "B", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 5},
		}),
		oneCore(config.FPNPS, []config.Task{
			{Name: "A", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
			{Name: "B", Priority: 1, WCET: []int64{6}, Period: 10, Deadline: 10},
		}),
		oneCore(config.FPPS, []config.Task{ // overload: unschedulable
			{Name: "A", Priority: 2, WCET: []int64{4}, Period: 6, Deadline: 6},
			{Name: "B", Priority: 1, WCET: []int64{4}, Period: 6, Deadline: 6},
		}),
	}
	for i, sys := range cases {
		if err := sys.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		m := model.MustBuild(sys)
		tr, _, err := m.Simulate()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		m2 := model.MustBuild(sys)
		ok, _, err := CheckSchedulability(m2, 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if ok != a.Schedulable {
			t.Errorf("case %d: MC says %t, simulator says %t", i, ok, a.Schedulable)
		}
	}
}

// TestAllRunsEquivalent enumerates the complete run tree of a small model
// and checks the determinism theorem: every run's normalized system trace
// is set-equal, and matches the simulator's.
func TestAllRunsEquivalent(t *testing.T) {
	sys := &config.System{
		Name:      "runtree",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 1},
		},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "A", Priority: 2, WCET: []int64{2}, Period: 8, Deadline: 8},
				},
				Windows: []config.Window{{Start: 0, End: 8}}},
			{Name: "P2", Core: 1, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "C", Priority: 1, WCET: []int64{4}, Period: 8, Deadline: 8},
				},
				Windows: []config.Window{{Start: 0, End: 8}}},
		},
		Messages: []config.Message{
			{Name: "m", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 2},
		},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	m := model.MustBuild(sys)
	runs, err := CollectTraces(m, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Fatalf("expected multiple runs, got %d", len(runs))
	}
	ref := runs[0].Normalize()
	for i, r := range runs[1:] {
		n := r.Normalize()
		if !ref.EqualAsSets(n) {
			t.Fatalf("run %d differs:\nref:\n%s\ngot:\n%s", i+1, ref.Format(sys), n.Format(sys))
		}
	}
	simTr, _, err := model.MustBuild(sys).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if !ref.EqualAsSets(simTr.Normalize()) {
		t.Errorf("simulator trace differs from run tree:\nref:\n%s\nsim:\n%s",
			ref.Format(sys), simTr.Normalize().Format(sys))
	}
	t.Logf("run tree size: %d runs", len(runs))
}

// countMonitor counts transitions on a channel and flags more than max.
type countMonitor struct {
	ch  int
	max int64
}

func (c *countMonitor) Name() string  { return "count" }
func (c *countMonitor) Init() []int64 { return []int64{0} }
func (c *countMonitor) Step(ms []int64, _ int64, tr *nsa.Transition, _ *nsa.Network, _ *nsa.State) ([]int64, string) {
	if int(tr.Chan) != c.ch {
		return ms, ""
	}
	n := ms[0] + 1
	if n > c.max {
		return []int64{n}, fmt.Sprintf("channel fired %d times, max %d", n, c.max)
	}
	return []int64{n}, ""
}

func TestMonitorProduct(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{2}, Period: 5, Deadline: 5},
	})
	m := model.MustBuild(sys)
	execCh, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 0})

	// Exactly one EX per job; 1 job over L=5 → max 1 never violated.
	res, err := Explore(m.Net, Options{Horizon: m.Horizon,
		Monitors: []Monitor{&countMonitor{ch: int(execCh), max: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bad != "" {
		t.Errorf("unexpected violation: %s", res.Bad)
	}

	// A bound of zero must be violated and witnessed.
	m2 := model.MustBuild(sys)
	execCh2, _ := m2.TaskChans(config.TaskRef{Part: 0, Task: 0})
	res2, err := Explore(m2.Net, Options{Horizon: m2.Horizon,
		Monitors: []Monitor{&countMonitor{ch: int(execCh2), max: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.Bad, "count:") {
		t.Errorf("witness = %q", res2.Bad)
	}
}

func TestMaxStatesAborts(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "A", Priority: 2, WCET: []int64{2}, Period: 6, Deadline: 6},
		{Name: "B", Priority: 1, WCET: []int64{3}, Period: 12, Deadline: 12},
	})
	m := model.MustBuild(sys)
	res, err := Explore(m.Net, Options{Horizon: m.Horizon, MaxStates: 3})
	var rerr *nsa.RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v, want *nsa.RunError", err)
	}
	if rerr.Reason != nsa.StopStates {
		t.Errorf("reason = %v, want state budget exhausted", rerr.Reason)
	}
	if rerr.States <= 3 {
		t.Errorf("RunError.States = %d, want > 3", rerr.States)
	}
	if res.Complete {
		t.Error("exploration should have been aborted")
	}
	if res.States != rerr.States {
		t.Errorf("partial result states = %d, RunError states = %d", res.States, rerr.States)
	}
}

func TestExploreBadHorizon(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{1}, Period: 5, Deadline: 5},
	})
	m := model.MustBuild(sys)
	if _, err := Explore(m.Net, Options{}); err == nil {
		t.Error("expected horizon error")
	}
}

func TestDedupShrinksSearch(t *testing.T) {
	sys := oneCore(config.FPPS, []config.Task{
		{Name: "A", Priority: 2, WCET: []int64{1}, Period: 4, Deadline: 4},
		{Name: "B", Priority: 1, WCET: []int64{2}, Period: 8, Deadline: 8},
	})
	m := model.MustBuild(sys)
	with, err := Explore(m.Net, Options{Horizon: m.Horizon})
	if err != nil {
		t.Fatal(err)
	}
	m2 := model.MustBuild(sys)
	without, err := Explore(m2.Net, Options{Horizon: m2.Horizon, NoDedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.States > without.States {
		t.Errorf("dedup explored more states (%d) than raw tree (%d)", with.States, without.States)
	}
}

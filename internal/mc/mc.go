// Package mc is the Model Checking baseline the paper compares against
// (Table 1): an exhaustive exploration of all runs of an NSA. It shares the
// successor computation with the simulator in package nsa — every enabled
// action transition is branched on, with visited-state de-duplication —
// so the measured difference against the single-run interpretation is
// purely the cost of considering all interleavings.
//
// Properties are checked two ways: state predicates (BadState) evaluated on
// every reachable state, and Monitors — deterministic observer automata in
// the sense of §3 whose state is carried in the product with the network
// state, so "bad location reachable in some run" is decided exactly.
package mc

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
)

// Monitor is a deterministic observer over synchronization transitions.
// Its state is an int64 vector included in the exploration's product state.
type Monitor interface {
	// Name identifies the monitor in witnesses.
	Name() string
	// Init returns the initial monitor state.
	Init() []int64
	// Step consumes one fired transition (with the post-state s) and
	// returns the successor monitor state; a non-empty bad string reports
	// that the monitor reached its "bad" location.
	Step(ms []int64, time int64, tr *nsa.Transition, net *nsa.Network, s *nsa.State) (next []int64, bad string)
}

// Options configure an exploration.
type Options struct {
	// Horizon bounds model time, like the simulator's horizon. Required.
	Horizon int64
	// BadState, when non-nil, is evaluated on every reachable state; a
	// non-empty string is a violation witness.
	BadState func(s *nsa.State) string
	// Monitors observe every action transition.
	Monitors []Monitor
	// MaxStates aborts the exploration when exceeded (0 = 50 million).
	// Exhaustion returns a *nsa.RunError carrying the partial Result.
	// Budget.MaxStates, when set, takes precedence.
	MaxStates int
	// NoDedup disables visited-state de-duplication, turning the search
	// into a full run-tree walk. Only sensible for tiny models (used by
	// trace-equivalence tests).
	NoDedup bool
	// Budget bounds the exploration's resources (states, transitions, wall
	// time, memory); the zero value leaves only the MaxStates default.
	Budget nsa.Budget
	// Probe, when non-nil, collects hot-path counters (transitions fired
	// by kind, delays, enabled-set queries and guard evaluations through
	// the shared Enumerator). Nil disables probing at one branch per step.
	Probe *obs.Probe
}

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct product states expanded.
	States int
	// Transitions is the number of action transitions fired.
	Transitions int
	// Leaves is the number of terminal states reached (horizon or
	// quiescence).
	Leaves int
	// Bad is the first violation witness found, "" if none.
	Bad string
	// Complete is false when MaxStates aborted the search.
	Complete bool
}

// frame is one level of the lazy depth-first search: the expanded state,
// its monitor states, and the candidate transitions with the index of the
// next one to try. Successors are generated one at a time, so memory is
// bounded by the search depth plus the visited set — not the frontier.
type frame struct {
	s     *nsa.State
	ms    [][]int64
	cands []nsa.Transition
	next  int
}

// Explore walks all maximal-progress runs of net up to the horizon.
// It returns an error for malformed models (time-stop deadlocks, semantics
// violations), mirroring the simulator. The visited set stores 128-bit
// FNV-1a hashes of the product state (network state × monitor states), so
// memory stays proportional to the number of distinct states, not their
// size. It is ExploreContext under context.Background().
func Explore(net *nsa.Network, opts Options) (Result, error) {
	return ExploreContext(context.Background(), net, opts)
}

// ExploreContext is Explore with cancellation and resource budgets. When
// the state cap, a Budget dimension or the context stops the search, the
// partial Result (Complete == false) is returned together with a typed
// *nsa.RunError reporting states explored, transitions fired and the model
// time of the state being expanded. Timelocks found during exploration are
// reported as *nsa.DeadlockError naming the blocked automata.
func ExploreContext(ctx context.Context, net *nsa.Network, opts Options) (res Result, err error) {
	if opts.Horizon <= 0 {
		return Result{}, fmt.Errorf("mc: non-positive horizon %d", opts.Horizon)
	}
	maxStates := opts.MaxStates
	if opts.Budget.MaxStates > 0 {
		maxStates = opts.Budget.MaxStates
	}
	if maxStates == 0 {
		maxStates = 50_000_000
	}
	tracker := opts.Budget.Tracker(ctx)
	var curTime int64 // model time of the state being expanded, for reports
	defer func() {
		// Explorer boundary: expression-evaluation panics escaping Fire's
		// per-transition recovery become structured errors, mirroring the
		// engine. Non-RuntimeError panics are programmer errors.
		if r := recover(); r != nil {
			re, ok := r.(*expr.RuntimeError)
			if !ok {
				panic(r)
			}
			res.Complete = false
			err = &nsa.SemanticsError{Time: curTime, Expr: re.Expr,
				Msg: fmt.Sprintf("during exploration: %v", re)}
		}
	}()
	visited := make(map[[16]byte]struct{})
	var keyBuf []byte
	hasher := fnv.New128a()
	// enum computes enabled transitions through the network's static
	// interpretation index (pre-classified edges, compiled guards); each call
	// returns freshly allocated transitions, which DFS frames retain.
	enum := nsa.NewEnumerator(net)
	enum.Probe = opts.Probe

	seen := func(s *nsa.State, ms [][]int64) bool {
		keyBuf = s.AppendKey(keyBuf[:0])
		for _, m := range ms {
			for _, v := range m {
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], uint64(v))
				keyBuf = append(keyBuf, tmp[:]...)
			}
		}
		hasher.Reset()
		hasher.Write(keyBuf)
		var k [16]byte
		hasher.Sum(k[:0])
		if _, ok := visited[k]; ok {
			return true
		}
		visited[k] = struct{}{}
		return false
	}

	// expand registers a newly reached product state and returns its frame,
	// or nil when it was already visited (or is a terminal leaf).
	expand := func(s *nsa.State, ms [][]int64) (*frame, error) {
		if !opts.NoDedup && seen(s, ms) {
			return nil, nil
		}
		res.States++
		if opts.BadState != nil {
			if bad := opts.BadState(s); bad != "" && res.Bad == "" {
				res.Bad = bad
			}
		}
		cands := enum.Enabled(s)
		if len(cands) > 0 {
			return &frame{s: s, ms: ms, cands: cands}, nil
		}
		// No actions: delay in place until an action becomes enabled, or
		// terminate, exactly like the simulator.
		for {
			curTime = s.Time
			if s.Time >= opts.Horizon {
				res.Leaves++
				return nil, nil
			}
			info := net.DelayBound(s)
			if info.Blocked {
				return nil, &nsa.DeadlockError{Kind: nsa.Timelock, Time: s.Time,
					Msg:     "exploration reached a state where a committed location or urgent synchronization forbids delay with no transition enabled",
					Blocked: net.BlockedReport(s)}
			}
			d := info.Step()
			if d == expr.NoBound {
				res.Leaves++ // quiescent
				return nil, nil
			}
			if d <= 0 {
				return nil, &nsa.DeadlockError{Kind: nsa.Timelock, Time: s.Time,
					Msg:     fmt.Sprintf("exploration reached a state where an invariant bounds delay at %d with no enabled transition", d),
					Blocked: net.BlockedReport(s)}
			}
			if rerr := tracker.Step(s.Time); rerr != nil {
				rerr.States = res.States
				res.Complete = false
				return nil, rerr
			}
			if remaining := opts.Horizon - s.Time; d > remaining {
				d = remaining
			}
			if err := net.Advance(s, d); err != nil {
				return nil, err
			}
			if p := opts.Probe; p != nil {
				p.Steps.Add(1)
				p.Delays.Add(1)
			}
			if !opts.NoDedup && seen(s, ms) {
				return nil, nil
			}
			res.States++
			if opts.BadState != nil {
				if bad := opts.BadState(s); bad != "" && res.Bad == "" {
					res.Bad = bad
				}
			}
			cands = enum.Enabled(s)
			if len(cands) > 0 {
				return &frame{s: s, ms: ms, cands: cands}, nil
			}
		}
	}

	initMs := make([][]int64, len(opts.Monitors))
	for i, m := range opts.Monitors {
		initMs[i] = m.Init()
	}
	root, err := expand(net.InitialState(), initMs)
	if err != nil {
		return res, err
	}
	stack := make([]*frame, 0, 1024)
	if root != nil {
		stack = append(stack, root)
	}

	for len(stack) > 0 {
		top := stack[len(stack)-1]
		curTime = top.s.Time
		if res.States > maxStates {
			res.Complete = false
			rerr := &nsa.RunError{Reason: nsa.StopStates, Time: top.s.Time,
				Steps: tracker.Steps(), States: res.States}
			return res, rerr
		}
		if top.next >= len(top.cands) {
			stack = stack[:len(stack)-1]
			continue
		}
		if rerr := tracker.Step(top.s.Time); rerr != nil {
			rerr.States = res.States
			res.Complete = false
			return res, rerr
		}
		tr := top.cands[top.next]
		top.next++

		succ := top.s.Clone()
		fireTime := succ.Time
		if err := net.Fire(succ, &tr); err != nil {
			return res, err
		}
		res.Transitions++
		if p := opts.Probe; p != nil {
			p.Steps.Add(1)
			p.Actions.Add(1)
			switch tr.Kind {
			case nsa.Internal:
				p.SyncInternal.Add(1)
			case nsa.BinarySync:
				p.SyncBinary.Add(1)
			default:
				p.SyncBroadcast.Add(1)
			}
		}
		ms := top.ms
		if len(opts.Monitors) > 0 {
			ms = make([][]int64, len(opts.Monitors))
			for mi, m := range opts.Monitors {
				next, bad := m.Step(top.ms[mi], fireTime, &tr, net, succ)
				ms[mi] = next
				if bad != "" && res.Bad == "" {
					res.Bad = fmt.Sprintf("%s: %s", m.Name(), bad)
				}
			}
		}
		f, err := expand(succ, ms)
		if err != nil {
			return res, err
		}
		if f != nil {
			stack = append(stack, f)
		}
	}
	res.Complete = true
	return res, nil
}

package mc

import (
	"context"
	"fmt"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

// CheckSchedulability decides the schedulability of a configuration by
// exhaustive exploration: the configuration is schedulable iff no reachable
// state (in any run, up to the hyperperiod) records a deadline failure.
// This is the Model Checking column of Table 1.
func CheckSchedulability(m *model.Model, maxStates int) (bool, Result, error) {
	return CheckSchedulabilityContext(context.Background(), m, nsa.Budget{MaxStates: maxStates})
}

// CheckSchedulabilityContext is CheckSchedulability with cancellation and a
// full resource budget. On budget exhaustion the error is a *nsa.RunError
// and the partial Result (Complete == false) reports the states explored;
// the boolean verdict is only meaningful when err is nil.
func CheckSchedulabilityContext(ctx context.Context, m *model.Model, b nsa.Budget) (bool, Result, error) {
	failed := m.FailedVars()
	bad := func(s *nsa.State) string {
		for _, v := range failed {
			if s.Vars[v] != 0 {
				return fmt.Sprintf("deadline failure recorded in %s", m.Net.Vars[v].Name)
			}
		}
		return ""
	}
	res, err := ExploreContext(ctx, m.Net, Options{
		Horizon:  m.Horizon,
		BadState: bad,
		Budget:   b,
	})
	if err != nil {
		return false, res, err
	}
	return res.Bad == "", res, nil
}

// CollectTraces enumerates the system operation trace of every run of a
// (tiny) model without de-duplication, for verifying the §3 determinism
// theorem against the full run tree. maxRuns bounds the enumeration.
func CollectTraces(m *model.Model, maxRuns int) ([]*trace.Trace, error) {
	var runs []*trace.Trace
	var walk func(s *nsa.State, events []trace.Event) error
	var cands []nsa.Transition

	// Like the simulator's TraceBuilder, FIN events of jobs that never
	// executed are dropped: such jobs have empty subtraces (§2.1).
	leaf := func(events []trace.Event) {
		started := make(map[trace.JobID]bool)
		for _, ev := range events {
			if ev.Type == trace.EX {
				started[ev.Job] = true
			}
		}
		kept := make([]trace.Event, 0, len(events))
		for _, ev := range events {
			if ev.Type == trace.FIN && !started[ev.Job] {
				continue
			}
			kept = append(kept, ev)
		}
		runs = append(runs, &trace.Trace{Events: kept})
	}

	walk = func(s *nsa.State, events []trace.Event) error {
		if len(runs) >= maxRuns {
			return fmt.Errorf("mc: more than %d runs", maxRuns)
		}
		cands = m.Net.EnabledTransitions(s, cands[:0])
		if len(cands) > 0 {
			local := make([]nsa.Transition, len(cands))
			copy(local, cands)
			for i := range local {
				succ := s.Clone()
				fireTime := succ.Time
				tr := local[i]
				if err := m.Net.Fire(succ, &tr); err != nil {
					return err
				}
				evs := events
				if ev, ok := m.SystemEvent(fireTime, &tr, succ); ok {
					evs = append(events[:len(events):len(events)], ev)
				}
				if err := walk(succ, evs); err != nil {
					return err
				}
			}
			return nil
		}
		if s.Time >= m.Horizon {
			leaf(events)
			return nil
		}
		info := m.Net.DelayBound(s)
		if info.Blocked {
			return &nsa.SemanticsError{Time: s.Time, Msg: "deadlock in run tree"}
		}
		d := info.Step()
		if d == expr.NoBound {
			leaf(events) // quiescent
			return nil
		}
		if remaining := m.Horizon - s.Time; d > remaining {
			d = remaining
		}
		if d <= 0 {
			return &nsa.SemanticsError{Time: s.Time, Msg: "time stop in run tree"}
		}
		succ := s.Clone()
		if err := m.Net.Advance(succ, d); err != nil {
			return err
		}
		return walk(succ, events)
	}
	if err := walk(m.Net.InitialState(), nil); err != nil {
		return nil, err
	}
	return runs, nil
}

package jobs

import (
	"errors"
	"log/slog"
	"strings"

	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
)

// The post-mortem path. When a run ends the way runs end in production
// incidents — a timelock/livelock, a watchdog kill, a recovered panic or
// an injected fault — aggregate counters say that it happened but not
// what the engine was doing. The flight recorders do: the worker's ring
// holds the last engine events of the attempt, the pool's shared ring
// the recent service events (fault injections, breaker transitions,
// watchdog fires). recordPostmortem dumps both into a document kept on
// the job (GET /v1/jobs/{id}/postmortem) and persisted to the artifact
// store under kind "postmortem", so the evidence survives the process.

// postmortemKind is the store kind of persisted post-mortem dumps.
const postmortemKind = "postmortem"

// postmortemVersion tags the document schema.
const postmortemVersion = "jobs/postmortem/v1"

// Postmortem causes.
const (
	CauseDeadlock      = "deadlock"
	CauseStuck         = "stuck"
	CausePanic         = "panic"
	CauseInjectedFault = "injected-fault"
)

// Postmortem is the dump written when a run ends in deadlock, watchdog
// kill, panic or injected fault.
type Postmortem struct {
	Version     string `json:"version"`
	Job         string `json:"job"`
	Fingerprint string `json:"fingerprint,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
	Cause       string `json:"cause"`
	Error       string `json:"error"`
	// Engine is the worker ring: the last engine events of the attempt.
	Engine []obs.FlightEvent `json:"engine,omitempty"`
	// Service is the pool's shared ring: recent fault injections, breaker
	// transitions and watchdog fires across the whole service.
	Service []obs.FlightEvent `json:"service,omitempty"`
}

// postmortemCause classifies err into a dump-worthy cause, or "" for
// ordinary failures (validation errors, budget exhaustion, user cancels)
// that need no post-mortem.
func postmortemCause(err error) string {
	if err == nil {
		return ""
	}
	if fault.IsInjected(err) {
		return CauseInjectedFault
	}
	if errors.Is(err, ErrStuck) {
		return CauseStuck
	}
	var derr *nsa.DeadlockError
	if errors.As(err, &derr) {
		return CauseDeadlock
	}
	if strings.HasPrefix(err.Error(), "jobs: worker panic recovered") {
		return CausePanic
	}
	return ""
}

// buildPostmortemLocked assembles the dump for a terminally failing job
// and stamps it onto the registry record, so the job's waiters observe
// PostmortemKey the instant the done channel closes. Callers hold p.mu
// and must call it BEFORE finishLocked. Returns nil when flight
// recording is off or the failure is not dump-worthy.
func (p *Pool) buildPostmortemLocked(jb *Job, err error, efl *obs.FlightRecorder) *Postmortem {
	if p.svcFlight == nil {
		return nil
	}
	cause := postmortemCause(err)
	if cause == "" {
		return nil
	}
	pm := &Postmortem{
		Version:     postmortemVersion,
		Job:         jb.ID,
		Fingerprint: jb.Key,
		Cause:       cause,
		Error:       err.Error(),
		Engine:      efl.Snapshot(),
		Service:     p.svcFlight.Snapshot(),
	}
	if jb.Trace.Valid() {
		pm.TraceID = jb.Trace.TraceString()
	}
	jb.PostmortemKey = jb.ID
	jb.postmortem = pm
	return pm
}

// persistPostmortem counts, logs and best-effort persists a dump built
// by buildPostmortemLocked. Nil-safe; called without p.mu (the write
// fsyncs).
func (p *Pool) persistPostmortem(pm *Postmortem, lg *slog.Logger) {
	if pm == nil {
		return
	}
	p.metrics.postmortem()
	if lg != nil {
		lg.Warn("postmortem recorded", slog.String("cause", pm.Cause),
			slog.Int("engine_events", len(pm.Engine)), slog.Int("service_events", len(pm.Service)))
	}
	if p.store == nil || !p.breaker.Allow() {
		return
	}
	if perr := p.store.Put(postmortemKind, pm.Job, pm); perr != nil {
		p.storeFailure(perr)
		if lg != nil {
			lg.Warn("persisting postmortem failed", "error", perr.Error())
		}
		return
	}
	p.storeSuccess()
}

// Postmortem returns the post-mortem dump of a job: from the registry
// for jobs of this process, falling back to the persistent store for
// jobs of a previous incarnation (the key is the job ID).
func (p *Pool) Postmortem(id string) (*Postmortem, bool) {
	p.mu.Lock()
	jb, ok := p.jobs[id]
	var pm *Postmortem
	if ok {
		pm = jb.postmortem
	}
	p.mu.Unlock()
	if pm != nil {
		return pm, true
	}
	if p.store == nil {
		return nil, false
	}
	var doc Postmortem
	found, err := p.store.Get(postmortemKind, id, &doc)
	if err != nil || !found || doc.Version != postmortemVersion {
		return nil, false
	}
	return &doc, true
}

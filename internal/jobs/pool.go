package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

// Pool errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity — the service's backpressure signal (HTTP 429 upstream).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: pool closed")
	// ErrUnknownJob is returned for job IDs the registry does not hold.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrStuck marks a job the watchdog killed for exceeding the stuck
	// deadline and could not (or may not) requeue.
	ErrStuck = errors.New("jobs: job stuck")
)

// Options configure a Pool. The zero value is usable: GOMAXPROCS workers,
// a queue of 64, a 256-entry cache, unlimited per-job budget.
type Options struct {
	// Workers is the number of concurrent analysis runs; <= 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; <= 0 means 64.
	// A full queue rejects submissions with ErrQueueFull rather than
	// letting latency grow without bound.
	QueueDepth int
	// CacheSize bounds the result cache in entries; 0 means 256, negative
	// disables caching.
	CacheSize int
	// Budget is the default per-job resource budget; jobs submitted with
	// SubmitBudget override it. The pool adds its own cancellation on top.
	Budget nsa.Budget
	// Backend is the engine backend runs use unless the submitted runner
	// pins one itself. The zero value is the event-driven runtime; services
	// wanting the zero-allocation compiled runtime set BackendCompiled.
	// The backend never enters cache keys: by the determinism theorem all
	// backends produce interchangeable outcomes (the three-way differential
	// test enforces it).
	Backend nsa.Backend
	// Tool names the diag reports of failed jobs; "" means "jobs".
	Tool string
	// Logger receives structured job-lifecycle events (queued, started,
	// finished, cache hits); each record carries the job ID and the
	// configuration fingerprint. Nil disables logging.
	Logger *slog.Logger
	// Store, when non-nil, is the persistent second cache tier: completed
	// outcomes are written to it under their content address and looked up
	// on every in-memory miss (memory → disk → compute), so results
	// survive process restarts.
	Store *store.Store
	// Faults is an optional fault injector consulted at the worker sites
	// (run errors, panics, injected latency). Nil — the normal
	// configuration — is a zero-cost no-op. Store-site faults are armed on
	// the store itself via store.Options.Faults.
	Faults *fault.Injector
	// Resilience collects the pool's self-healing counters (retries,
	// breaker trips, watchdog requeues, recovered panics). Nil allocates a
	// private collector; pass one to share it with the campaign engine and
	// the metrics endpoint.
	Resilience *obs.Resilience
	// StuckAfter arms the watchdog: a job running longer than this is
	// presumed wedged, its context canceled and the job requeued (up to
	// MaxRequeues times). <= 0 disables the watchdog.
	StuckAfter time.Duration
	// MaxRequeues bounds watchdog requeues per job; 0 means 1, negative
	// means kill without requeueing.
	MaxRequeues int
	// BreakerThreshold and BreakerCooldown tune the disk-tier circuit
	// breaker: consecutive store failures before the tier degrades to
	// memory-only, and how long before a recovery probe. Zero values take
	// the fault.NewBreaker defaults (5 failures, 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// EngineCache bounds each worker's cache of prepared engines
	// (model.Prepared, one compiled network per entry): repeat runs of a
	// configuration Reset+Run a persistent engine instead of rebuilding it,
	// amortizing the construction cost that dominates short runs. 0 means
	// 4 entries per worker; negative disables reuse entirely.
	EngineCache int
	// Tracer, when non-nil, collects cross-layer spans: submissions carry
	// a TraceContext (SubmitTraced) and the pool records submit, cache-
	// tier, queue, run, store and engine-phase spans under it. Nil — the
	// default — disables tracing at one branch per site.
	Tracer *obs.Tracer
	// FlightDepth arms flight recorders: each worker keeps a ring of the
	// last FlightDepth engine events (reset per attempt) and the pool one
	// shared ring of service events (fault injections, breaker
	// transitions, watchdog fires). A run ending in deadlock, watchdog
	// kill, panic or injected fault dumps both rings into a postmortem
	// document on the job (and the store, when one is configured).
	// 0 disables.
	FlightDepth int
}

// Pool is a bounded worker pool with a job registry and a shared result
// cache. Create one with New; it is safe for concurrent use.
type Pool struct {
	opts    Options
	cache   *Cache
	store   *store.Store
	metrics *Metrics
	queue   chan *Job
	faults  *fault.Injector
	res     *obs.Resilience
	breaker *fault.Breaker // guards the disk tier; nil when no store

	tracer    *obs.Tracer         // nil disables tracing
	svcFlight *obs.FlightRecorder // shared service-event ring; nil disables

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int64
	closed bool
}

// New starts a pool with opts.Workers workers.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 256
	}
	if opts.Tool == "" {
		opts.Tool = "jobs"
	}
	if opts.Resilience == nil {
		opts.Resilience = &obs.Resilience{}
	}
	ctx, stop := context.WithCancel(context.Background())
	p := &Pool{
		opts:    opts,
		cache:   NewCache(opts.CacheSize), // nil when CacheSize < 0
		store:   opts.Store,
		metrics: newMetrics(),
		queue:   make(chan *Job, opts.QueueDepth),
		faults:  opts.Faults,
		res:     opts.Resilience,
		ctx:     ctx,
		stop:    stop,
		jobs:    make(map[string]*Job),
	}
	if p.store != nil {
		p.breaker = fault.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	p.tracer = opts.Tracer
	if opts.FlightDepth > 0 {
		p.svcFlight = obs.NewFlightRecorder(opts.FlightDepth)
		// One hook observes every injected fault — worker sites here and
		// store sites inside the shared injector alike.
		p.faults.OnInject(func(site fault.Site, seq int64) {
			p.svcFlight.RecordWall(obs.FlightFault, seq, 0, string(site))
		})
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	if opts.StuckAfter > 0 {
		p.wg.Add(1)
		go p.watchdog()
	}
	return p
}

// Resilience returns the pool's self-healing counters (never nil).
func (p *Pool) Resilience() *obs.Resilience { return p.res }

// Faults returns the pool's worker-site fault injector, nil when disabled.
func (p *Pool) Faults() *fault.Injector { return p.faults }

// Backend returns the engine backend the pool stamps onto runs that do
// not pin one themselves.
func (p *Pool) Backend() nsa.Backend { return p.opts.Backend }

// Degraded reports whether the disk tier is currently tripped into
// memory-only mode — the /readyz signal.
func (p *Pool) Degraded() bool { return p.breaker.Tripped() }

// Tracer returns the pool's span collector, nil when tracing is disabled.
func (p *Pool) Tracer() *obs.Tracer { return p.tracer }

// ServiceFlight returns the shared service-event flight recorder, nil
// when flight recording is disabled.
func (p *Pool) ServiceFlight() *obs.FlightRecorder { return p.svcFlight }

// DefaultBudget returns the pool's default per-job resource budget, so
// traced submitters (campaign/synth points) can pass it to SubmitTraced.
func (p *Pool) DefaultBudget() nsa.Budget { return p.opts.Budget }

// Submit enqueues r under the pool's default budget.
func (p *Pool) Submit(r Runner) (Job, error) {
	return p.submit(r, p.opts.Budget, obs.TraceContext{})
}

// SubmitBudget enqueues r with a per-job resource budget.
func (p *Pool) SubmitBudget(r Runner, b nsa.Budget) (Job, error) {
	return p.submit(r, b, obs.TraceContext{})
}

// SubmitTraced enqueues r with a per-job budget under an existing trace
// context — the ingress span of an HTTP submission or the per-point span
// of an exploration — so the job's submit, queue, run, store and
// engine-phase spans link into the caller's trace.
func (p *Pool) SubmitTraced(r Runner, b nsa.Budget, tc obs.TraceContext) (Job, error) {
	return p.submit(r, b, tc)
}

// submit enqueues r with budget b. When the runner's key is cached — in
// memory, or on disk when the pool has a persistent store — the job
// completes immediately with the shared outcome and CacheHit set
// (DiskHit additionally for the persistent tier); otherwise it is
// queued, or rejected with ErrQueueFull when the queue is at capacity.
// The returned Job is a snapshot; poll with Get or block with Wait.
func (p *Pool) submit(r Runner, b nsa.Budget, tc obs.TraceContext) (Job, error) {
	// Stamp the pool's engine backend onto runners that didn't pin one.
	// Keys are computed after and without it: backends are outcome-
	// interchangeable, so a cached result answers any backend's run.
	if p.opts.Backend != nsa.BackendEvent {
		switch rr := r.(type) {
		case ConfigRun:
			if rr.Backend == nsa.BackendEvent {
				rr.Backend = p.opts.Backend
				r = rr
			}
		case XTARun:
			if rr.Backend == nsa.BackendEvent {
				rr.Backend = p.opts.Backend
				r = rr
			}
		}
	}
	key := r.Key()
	now := time.Now()
	// The job's anchor span: a child of the caller's (ingress or
	// exploration-point) span, parent of everything the pool records.
	traced := p.tracer != nil && tc.Valid()
	var jtc obs.TraceContext
	if traced {
		jtc = tc.Child()
	}
	// Tiered lookup before the registry lock: the memory cache is its own
	// lock, and the disk read must not stall every other submission.
	out, memHit := p.cache.Get(key)
	var diskHit bool
	if !memHit {
		gs := time.Now()
		if out = p.storeGet(key); out != nil {
			diskHit = true
			p.cache.Put(key, out) // promote to the memory tier
		}
		if traced && p.store != nil {
			detail := "miss"
			if diskHit {
				detail = "hit"
			}
			p.tracer.Record(jtc.Child(), jtc.SpanID, "store.get", detail,
				gs.UnixNano(), time.Since(gs).Nanoseconds())
		}
	}
	tier := "tier=miss"
	switch {
	case memHit:
		tier = "tier=memory"
	case diskHit:
		tier = "tier=disk"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Job{}, ErrClosed
	}
	p.seq++
	jb := &Job{
		ID:        fmt.Sprintf("j%06d", p.seq),
		Key:       key,
		Status:    StatusQueued,
		Submitted: now,
		Trace:     jtc,
		runner:    r,
		budget:    b,
		done:      make(chan struct{}),
	}
	if out != nil {
		jb.Status = StatusDone
		jb.CacheHit = true
		jb.DiskHit = diskHit
		jb.Outcome = out
		jb.Started, jb.Finished = now, now
		close(jb.done)
		p.jobs[jb.ID] = jb
		p.metrics.cacheHit(diskHit)
		if traced {
			p.tracer.Record(jtc, tc.SpanID, "jobs.submit", tier,
				now.UnixNano(), time.Since(now).Nanoseconds())
		}
		if lg := p.jobLogger(jb); lg != nil {
			if diskHit {
				lg.Info("job served from persistent store")
			} else {
				lg.Info("job served from cache")
			}
		}
		return *jb, nil
	}
	select {
	case p.queue <- jb:
	default:
		p.seq-- // job was never registered; reuse the ID
		return Job{}, ErrQueueFull
	}
	p.jobs[jb.ID] = jb
	p.metrics.jobQueued()
	if traced {
		p.tracer.Record(jtc, tc.SpanID, "jobs.submit", tier,
			now.UnixNano(), time.Since(now).Nanoseconds())
	}
	if lg := p.jobLogger(jb); lg != nil {
		lg.Info("job queued")
	}
	return *jb, nil
}

// jobLogger returns the pool logger scoped to one job (job ID,
// configuration fingerprint and — when the job is traced — trace_id
// attrs), or nil when logging is disabled. The same logger rides the run
// context into the store and engine layers, so every line below the pool
// carries the full attribution and `grep trace_id=` reconstructs a
// request end to end.
func (p *Pool) jobLogger(jb *Job) *slog.Logger {
	if p.opts.Logger == nil {
		return nil
	}
	lg := p.opts.Logger.With(slog.String("job", jb.ID), slog.String("fingerprint", jb.Key))
	if jb.Trace.Valid() {
		lg = lg.With(slog.String("trace_id", jb.Trace.TraceString()))
	}
	return lg
}

// Get returns a snapshot of the job with the given ID.
func (p *Pool) Get(id string) (Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	jb, ok := p.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *jb, true
}

// List returns snapshots of all registered jobs in submission order.
func (p *Pool) List() []Job {
	p.mu.Lock()
	out := make([]Job, 0, len(p.jobs))
	for _, jb := range p.jobs {
		out = append(out, *jb)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the terminal snapshot.
func (p *Pool) Wait(ctx context.Context, id string) (Job, error) {
	p.mu.Lock()
	jb, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return Job{}, ErrUnknownJob
	}
	select {
	case <-jb.done:
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
	snap, _ := p.Get(id)
	return snap, nil
}

// Cancel requests cancellation of a job: a queued job is terminated
// immediately; a running job's context is canceled so its interpretation
// stops at the next budget checkpoint with a partial-result RunError. It
// returns false when the job is unknown or already terminal.
func (p *Pool) Cancel(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	jb, ok := p.jobs[id]
	if !ok {
		return false
	}
	switch jb.Status {
	case StatusQueued:
		jb.userCanceled = true
		p.finishLocked(jb, nil, context.Canceled)
		p.metrics.jobCanceledQueued()
		return true
	case StatusRunning:
		// Mark the cancellation as user-requested so the watchdog's requeue
		// path leaves the job alone: a user cancel is terminal.
		jb.userCanceled = true
		jb.cancel()
		return true
	}
	return false
}

// Metrics returns a consistent snapshot of the pool's counters.
func (p *Pool) Metrics() Snapshot {
	s := p.metrics.Snapshot()
	s.Resilience = p.res.Snapshot()
	return s
}

// PhaseLatencies returns windowed per-phase latency histograms merged
// from the RunReports of completed jobs, keyed by phase name.
func (p *Pool) PhaseLatencies() map[string]obs.HistSnapshot { return p.metrics.PhaseLatencies() }

// CacheLen returns the number of cached outcomes.
func (p *Pool) CacheLen() int { return p.cache.Len() }

// Close stops accepting submissions, cancels running jobs, marks queued
// jobs canceled and waits for the workers to exit.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.stop()
	p.wg.Wait()
	// Workers are gone; drain jobs still sitting in the queue.
	for {
		select {
		case jb := <-p.queue:
			p.mu.Lock()
			if jb.Status == StatusQueued {
				p.finishLocked(jb, nil, context.Canceled)
				p.metrics.jobCanceledQueued()
			}
			p.mu.Unlock()
		default:
			return
		}
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	// Each worker owns a small cache of prepared engines, unshared and
	// unlocked; ConfigRun checks engines out through the run context.
	capacity := p.opts.EngineCache
	if capacity == 0 {
		capacity = defaultEngineCache
	}
	ec := newEngineCache(capacity, p.metrics.engineReuse) // nil when capacity < 0
	// Each worker also owns one engine flight recorder, reset per attempt
	// and dumped into a postmortem when the attempt dies badly.
	var efl *obs.FlightRecorder
	if p.opts.FlightDepth > 0 {
		efl = obs.NewFlightRecorder(p.opts.FlightDepth)
	}
	for {
		select {
		case <-p.ctx.Done():
			return
		case jb := <-p.queue:
			p.run(jb, ec, efl)
		}
	}
}

// watchdog periodically sweeps for running jobs past the stuck deadline,
// cancels them and lets run's requeue path give them a fresh attempt.
func (p *Pool) watchdog() {
	defer p.wg.Done()
	interval := p.opts.StuckAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
			p.sweepStuck()
		}
	}
}

// sweepStuck deadlines every running job older than StuckAfter. The
// cancel is issued under the registry lock so it cannot race a requeue
// replacing jb.cancel with a fresh attempt's context.
func (p *Pool) sweepStuck() {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, jb := range p.jobs {
		if jb.Status != StatusRunning || jb.wedged || jb.userCanceled {
			continue
		}
		if now.Sub(jb.Started) <= p.opts.StuckAfter {
			continue
		}
		jb.wedged = true
		jb.cancel()
		p.svcFlight.RecordWall(obs.FlightWatchdog, int64(jb.attempts+1), 0, jb.ID)
		if lg := p.jobLogger(jb); lg != nil {
			lg.Warn("watchdog deadlined stuck job",
				slog.Duration("stuck_after", p.opts.StuckAfter), slog.Int("attempt", jb.attempts+1))
		}
	}
}

// maxRequeues resolves the per-job watchdog requeue budget.
func (p *Pool) maxRequeues() int {
	switch {
	case p.opts.MaxRequeues < 0:
		return 0
	case p.opts.MaxRequeues == 0:
		return 1
	default:
		return p.opts.MaxRequeues
	}
}

// run executes one dequeued job on the calling worker, whose engine
// cache (nil when disabled) and flight recorder (nil when disabled) ride
// along into the run context.
func (p *Pool) run(jb *Job, ec *engineCache, efl *obs.FlightRecorder) {
	p.mu.Lock()
	if jb.Status != StatusQueued { // canceled while queued
		p.mu.Unlock()
		return
	}
	// Re-check the cache at dequeue time: an identical job submitted while
	// this one sat in the queue may have completed in the meantime, so
	// duplicate points of a sweep coalesce onto one run.
	if out, ok := p.cache.Get(jb.Key); ok {
		jb.CacheHit = true
		p.finishLocked(jb, out, nil)
		p.mu.Unlock()
		p.metrics.lateCacheHit()
		if lg := p.jobLogger(jb); lg != nil {
			lg.Info("job served from cache at dequeue")
		}
		return
	}
	jb.Status = StatusRunning
	jb.Started = time.Now()
	started := jb.Started
	ctx, cancel := context.WithCancel(p.ctx)
	jb.cancel = cancel
	runner, budget := jb.runner, jb.budget
	p.mu.Unlock()
	p.metrics.jobDequeued()
	if jb.Key != "" {
		p.metrics.cacheMiss()
	}
	lg := p.jobLogger(jb)
	if lg != nil {
		lg.Info("job started")
	}
	traced := p.tracer != nil && jb.Trace.Valid()
	var rc obs.TraceContext // the attempt's run span
	if traced {
		p.tracer.Record(jb.Trace.Child(), jb.Trace.SpanID, "jobs.queue", "",
			jb.Submitted.UnixNano(), started.Sub(jb.Submitted).Nanoseconds())
		rc = jb.Trace.Child()
	}

	runCtx := withEngineCache(ctx, ec)
	runCtx = obs.CtxWithLogger(runCtx, lg)
	runCtx = obs.WithTrace(runCtx, rc)
	if efl != nil {
		efl.Reset()
		runCtx = obs.WithFlight(runCtx, efl)
	}
	out, err := p.safeRun(runCtx, runner, budget)
	cancel()

	p.mu.Lock()
	if err != nil && jb.wedged && !jb.userCanceled {
		// The watchdog killed this attempt. Requeue while the budget lasts;
		// past it the job fails (not "canceled": nobody asked for it).
		if jb.attempts < p.maxRequeues() {
			select {
			case p.queue <- jb:
				jb.attempts++
				jb.wedged = false
				jb.Status = StatusQueued
				attempt := jb.attempts
				p.mu.Unlock()
				p.metrics.jobRequeued()
				p.res.WatchdogRequeues.Add(1)
				if lg := p.jobLogger(jb); lg != nil {
					lg.Warn("stuck job requeued", slog.Int("attempt", attempt+1))
				}
				return
			default:
				// Queue full: fall through to a terminal failure.
			}
		}
		err = fmt.Errorf("%w: killed by watchdog after %s (%d attempts)", ErrStuck, p.opts.StuckAfter, jb.attempts+1)
	}
	var pm *Postmortem
	if err != nil {
		pm = p.buildPostmortemLocked(jb, err, efl)
	}
	p.finishLocked(jb, out, err)
	if pm != nil && jb.Report != nil {
		jb.Report.Flight = pm.Engine
	}
	st, elapsed := jb.Status, jb.Finished.Sub(jb.Started)
	p.mu.Unlock()
	if traced {
		if out != nil && out.Telemetry != nil {
			// Fold the run's pipeline phases into the trace as children of
			// the run span: the timeline records offsets from the run start.
			base := started.UnixNano()
			for i := range out.Telemetry.Phases {
				ph := &out.Telemetry.Phases[i]
				p.tracer.Record(rc.Child(), rc.SpanID, ph.Name, "engine",
					base+ph.StartNS, ph.DurNS)
			}
		}
		p.tracer.Record(rc, jb.Trace.SpanID, "jobs.run", traceStatus(st),
			started.UnixNano(), elapsed.Nanoseconds())
	}
	if err == nil {
		// Persist the fresh outcome outside the registry lock: the write
		// fsyncs, and nothing in the registry depends on it landing.
		ps := time.Now()
		p.storePut(jb.Key, out, lg)
		if traced && p.store != nil {
			p.tracer.Record(rc.Child(), rc.SpanID, "store.put", "",
				ps.UnixNano(), time.Since(ps).Nanoseconds())
		}
	} else {
		p.persistPostmortem(pm, lg)
	}
	var events int64
	if out != nil {
		events = int64(out.Engine.Actions + out.Engine.Delays)
		p.metrics.recordTelemetry(out.Telemetry)
	}
	p.metrics.jobFinished(st, elapsed, events)
	if lg != nil {
		if err != nil {
			lg.Warn("job finished", slog.String("status", string(st)),
				slog.Duration("elapsed", elapsed), slog.String("error", err.Error()))
		} else {
			lg.Info("job finished", slog.String("status", string(st)),
				slog.Duration("elapsed", elapsed), slog.Int64("events", events))
		}
	}
}

// safeRun executes the runner behind the worker fault sites and a panic
// fence: a panicking run (injected, or an organic defect in an analysis
// pipeline) is converted into a failed job instead of killing the worker
// and, with it, the whole service.
func (p *Pool) safeRun(ctx context.Context, r Runner, b nsa.Budget) (out *Outcome, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p.res.PanicsRecovered.Add(1)
			out = nil
			if perr, ok := rec.(error); ok {
				err = fmt.Errorf("jobs: worker panic recovered: %w", perr)
			} else {
				err = fmt.Errorf("jobs: worker panic recovered: %v", rec)
			}
		}
	}()
	if f := p.faults.Hit(fault.SiteWorkerLatency); f != nil {
		if serr := f.Sleep(ctx); serr != nil {
			return nil, serr
		}
	}
	if f := p.faults.Hit(fault.SiteWorkerRun); f != nil {
		if f.Kind == fault.KindPanic {
			panic(f.Err())
		}
		return nil, f.Err()
	}
	return r.Run(ctx, b)
}

// finishLocked moves jb to its terminal state. Callers hold p.mu.
func (p *Pool) finishLocked(jb *Job, out *Outcome, err error) {
	jb.Finished = time.Now()
	if jb.Started.IsZero() {
		jb.Started = jb.Finished
	}
	switch {
	case err != nil:
		jb.Err = err
		jb.Report = diag.FromError(p.opts.Tool, err, nil)
		jb.Status = StatusFailed
		if wasCanceled(err) {
			jb.Status = StatusCanceled
		}
	default:
		jb.Status = StatusDone
		jb.Outcome = out
		p.cache.Put(jb.Key, out)
	}
	close(jb.done)
}

// traceStatus renders a terminal status as a constant span detail, so
// recording a run span never allocates.
func traceStatus(st Status) string {
	switch st {
	case StatusDone:
		return "status=done"
	case StatusFailed:
		return "status=failed"
	case StatusCanceled:
		return "status=canceled"
	default:
		return ""
	}
}

// wasCanceled reports whether err stems from cancellation rather than a
// defect: a direct context error or a RunError whose stop reason is
// StopCanceled.
func wasCanceled(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var rerr *nsa.RunError
	return errors.As(err, &rerr) && rerr.Reason == nsa.StopCanceled
}

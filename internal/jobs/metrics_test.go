package jobs

import (
	"bytes"
	stdctx "context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"stopwatchsim/internal/obs"
)

// TestMetricsQuantiles feeds the windowed estimator a known latency
// distribution and checks the three exposed quantiles order correctly and
// land near the samples (bucketed estimation, so bounds are loose).
func TestMetricsQuantiles(t *testing.T) {
	m := newMetrics()
	for i := 0; i < 90; i++ {
		m.jobFinished(StatusDone, 2*time.Millisecond, 1)
	}
	for i := 0; i < 10; i++ {
		m.jobFinished(StatusDone, 200*time.Millisecond, 1)
	}
	s := m.Snapshot()
	if s.LatencyP50 <= 0 || s.LatencyP90 <= 0 || s.LatencyP99 <= 0 {
		t.Fatalf("quantiles not populated: %+v", s)
	}
	if !(s.LatencyP50 <= s.LatencyP90 && s.LatencyP90 <= s.LatencyP99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.LatencyP50, s.LatencyP90, s.LatencyP99)
	}
	if s.LatencyP50 > 10*time.Millisecond {
		t.Errorf("p50 = %v, want near 2ms", s.LatencyP50)
	}
	if s.LatencyP99 < 50*time.Millisecond {
		t.Errorf("p99 = %v, want near 200ms", s.LatencyP99)
	}
}

// TestSnapshotJSONHasP90 pins the Snapshot wire contract: all three
// latency keys and the engine counter block.
func TestSnapshotJSONHasP90(t *testing.T) {
	m := newMetrics()
	m.jobFinished(StatusDone, time.Millisecond, 1)
	data, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"latency_p50_ns", "latency_p90_ns", "latency_p99_ns", `"engine"`, `"steps"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("snapshot JSON missing %s:\n%s", key, data)
		}
	}
}

// TestRecordTelemetryAggregates merges two RunReports and checks the
// engine counters sum and the per-phase histograms fill.
func TestRecordTelemetryAggregates(t *testing.T) {
	m := newMetrics()
	m.recordTelemetry(nil) // must not panic
	m.recordTelemetry(&obs.RunReport{
		Phases: []obs.PhaseSpan{
			{Name: obs.PhaseBuild, DurNS: int64(time.Millisecond)},
			{Name: obs.PhaseInterpret, DurNS: int64(5 * time.Millisecond)},
			{Name: obs.PhaseIndex, Depth: 1, DurNS: int64(time.Millisecond)}, // nested: skipped
		},
		Counters: obs.Counters{Steps: 10, Actions: 7, Delays: 3, DirtyMax: 2},
	})
	m.recordTelemetry(&obs.RunReport{
		Phases:   []obs.PhaseSpan{{Name: obs.PhaseBuild, DurNS: int64(2 * time.Millisecond)}},
		Counters: obs.Counters{Steps: 4, Actions: 4, DirtyMax: 5},
	})
	s := m.Snapshot()
	if s.Engine.Steps != 14 || s.Engine.Actions != 11 || s.Engine.Delays != 3 {
		t.Errorf("aggregated counters = %+v", s.Engine)
	}
	if s.Engine.DirtyMax != 5 {
		t.Errorf("DirtyMax = %d, want max-merge 5", s.Engine.DirtyMax)
	}
	phases := m.PhaseLatencies()
	if got := phases[obs.PhaseBuild].Count; got != 2 {
		t.Errorf("build phase observations = %d, want 2", got)
	}
	if got := phases[obs.PhaseInterpret].Count; got != 1 {
		t.Errorf("interpret phase observations = %d, want 1", got)
	}
	if _, ok := phases[obs.PhaseIndex]; ok {
		t.Error("nested (depth>0) span must not feed the phase histograms")
	}
}

// TestPoolAttachesTelemetry runs a real job through the pool and checks
// the outcome carries a RunReport whose counters are internally
// consistent, and that the pool merged them into its metrics.
func TestPoolAttachesTelemetry(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	jb, err := p.Submit(ConfigRun{Sys: testSystem(5)})
	if err != nil {
		t.Fatal(err)
	}
	done, err := p.Wait(stdctx.Background(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Outcome == nil || done.Outcome.Telemetry == nil {
		t.Fatalf("outcome missing telemetry: %+v", done.Outcome)
	}
	run := done.Outcome.Telemetry
	c := run.Counters
	if c.Steps == 0 || c.Steps != c.Actions+c.Delays {
		t.Errorf("inconsistent counters: %+v", c)
	}
	if run.PhaseDur(obs.PhaseInterpret) <= 0 {
		t.Errorf("interpret phase missing: %+v", run.Phases)
	}
	if s := p.Metrics(); s.Engine.Steps != c.Steps {
		t.Errorf("pool aggregate %d != run counters %d", s.Engine.Steps, c.Steps)
	}
}

// TestPoolLoggerCarriesJobAttrs checks every lifecycle record names the
// job and fingerprint.
func TestPoolLoggerCarriesJobAttrs(t *testing.T) {
	var buf bytes.Buffer
	mw := &lockedWriter{buf: &buf}
	lg := slog.New(slog.NewTextHandler(mw, nil))
	p := New(Options{Workers: 1, Logger: lg})
	jb, err := p.Submit(ConfigRun{Sys: testSystem(5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(stdctx.Background(), jb.ID); err != nil {
		t.Fatal(err)
	}
	p.Close()
	out := buf.String()
	for _, want := range []string{"job queued", "job started", "job finished", "job=" + jb.ID, "fingerprint=" + jb.Key} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

// lockedWriter serializes concurrent handler writes in tests.
type lockedWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

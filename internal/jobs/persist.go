package jobs

import (
	"errors"
	"log/slog"
	"time"

	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

// The persistent tier. When a Pool is given a store.Store, completed
// outcomes are written to disk under their content address and looked up
// on every cache miss, so the lookup order becomes memory → disk →
// compute. What persists is a compact outcome document — verdict, analysis
// counts, engine result and telemetry — not the full operation trace:
// verdicts and telemetry are what sweeps, campaigns and restarted services
// need, while traces remain a product of fresh runs (the service's trace
// endpoints say so explicitly for disk-served outcomes).

// outcomeKind is the store kind of persisted outcome documents.
const outcomeKind = "outcome"

// outcomeDocVersion tags the document schema; bump it when the layout
// changes so stale documents read as misses instead of mis-decoding.
const outcomeDocVersion = "jobs/outcome/v1"

// outcomeDoc is the JSON document persisted per completed run.
type outcomeDoc struct {
	Version   string         `json:"version"`
	Verdict   Verdict        `json:"verdict"`
	System    string         `json:"system,omitempty"`
	JobsTotal int            `json:"jobs_total,omitempty"`
	JobsLate  int            `json:"jobs_unschedulable,omitempty"`
	Engine    nsa.Result     `json:"engine"`
	Telemetry *obs.RunReport `json:"telemetry,omitempty"`
	ElapsedNS int64          `json:"elapsed_ns"`
}

// OutcomeSummary carries the analysis counts of an outcome restored from
// the persistent store, where the full trace and Analysis are not
// retained. A non-nil Persisted on an Outcome marks it disk-restored.
type OutcomeSummary struct {
	System    string
	JobsTotal int
	JobsLate  int
}

// docFromOutcome compacts a freshly computed outcome for persistence.
func docFromOutcome(out *Outcome) *outcomeDoc {
	d := &outcomeDoc{
		Version:   outcomeDocVersion,
		Verdict:   out.Verdict,
		Engine:    out.Engine,
		Telemetry: out.Telemetry,
		ElapsedNS: int64(out.Elapsed),
	}
	switch {
	case out.Persisted != nil: // disk hit re-persisted (shouldn't happen, but lossless)
		d.System = out.Persisted.System
		d.JobsTotal = out.Persisted.JobsTotal
		d.JobsLate = out.Persisted.JobsLate
	default:
		if out.Sys != nil {
			d.System = out.Sys.Name
		}
		if out.Analysis != nil {
			d.JobsTotal = len(out.Analysis.Jobs)
			d.JobsLate = len(out.Analysis.Unschedulable)
		}
	}
	return d
}

// outcomeFromDoc inflates a persisted document into a servable Outcome.
func outcomeFromDoc(d *outcomeDoc) *Outcome {
	return &Outcome{
		Verdict:   d.Verdict,
		Engine:    d.Engine,
		Telemetry: d.Telemetry,
		Elapsed:   time.Duration(d.ElapsedNS),
		Persisted: &OutcomeSummary{System: d.System, JobsTotal: d.JobsTotal, JobsLate: d.JobsLate},
	}
}

// storeRetryable filters which store errors are worth retrying:
// everything transient. A closed store or a malformed key will not heal
// with backoff.
func storeRetryable(err error) bool {
	return !errors.Is(err, store.ErrClosed) && !errors.Is(err, store.ErrBadKey)
}

// storeFailure feeds one exhausted (post-retry) store failure to the
// disk-tier breaker, logging the trip into degraded mode.
func (p *Pool) storeFailure(err error) {
	if p.breaker.Failure() {
		p.res.BreakerTrips.Add(1)
		p.res.SetDegraded(true)
		p.svcFlight.RecordWall(obs.FlightBreaker, 1, 0, "trip")
		if p.opts.Logger != nil {
			p.opts.Logger.Warn("store breaker tripped; disk tier degraded to memory-only", "error", err.Error())
		}
	}
}

// storeSuccess feeds one successful store operation to the breaker,
// logging a recovery when it closes a tripped breaker.
func (p *Pool) storeSuccess() {
	if p.breaker.Success() {
		p.res.BreakerResets.Add(1)
		p.res.SetDegraded(false)
		p.svcFlight.RecordWall(obs.FlightBreaker, 0, 0, "reset")
		if p.opts.Logger != nil {
			p.opts.Logger.Info("store breaker reset; disk tier recovered")
		}
	}
}

// storeGet looks key up in the persistent tier. Version-mismatched or
// unreadable documents read as misses — the store's hit was optimistic,
// the outcome will simply be recomputed and re-persisted. Transient
// failures are retried with backoff; exhausted failures count against the
// breaker, and a tripped breaker short-circuits the lookup entirely.
func (p *Pool) storeGet(key string) *Outcome {
	if p.store == nil || key == "" {
		return nil
	}
	if !p.breaker.Allow() {
		p.res.BreakerShortCircuits.Add(1)
		return nil
	}
	var d outcomeDoc
	var ok bool
	retries, err := fault.DefaultStoreRetry.Do(p.ctx, storeRetryable, func() error {
		d = outcomeDoc{}
		var gerr error
		ok, gerr = p.store.Get(outcomeKind, key, &d)
		return gerr
	})
	p.res.StoreRetries.Add(int64(retries))
	if err != nil {
		p.storeFailure(err)
		return nil
	}
	p.storeSuccess()
	if !ok || d.Version != outcomeDocVersion {
		return nil
	}
	return outcomeFromDoc(&d)
}

// storePut persists a freshly computed outcome. Persistence is
// best-effort: a failing disk degrades the service to memory-only
// caching (via retries and then the breaker), it does not fail runs.
// lg, when non-nil, is the job-scoped logger (job/fingerprint/trace_id
// attrs) so store-layer warnings stay attributable to their request.
func (p *Pool) storePut(key string, out *Outcome, lg *slog.Logger) {
	if p.store == nil || key == "" || out == nil {
		return
	}
	if !p.breaker.Allow() {
		p.res.BreakerShortCircuits.Add(1)
		return
	}
	doc := docFromOutcome(out)
	retries, err := fault.DefaultStoreRetry.Do(p.ctx, storeRetryable, func() error {
		return p.store.Put(outcomeKind, key, doc)
	})
	p.res.StoreRetries.Add(int64(retries))
	if err != nil {
		p.storeFailure(err)
		if lg == nil {
			lg = p.opts.Logger
		}
		if lg != nil {
			lg.Warn("persisting outcome failed", "fingerprint", key, "error", err.Error())
		}
		return
	}
	p.storeSuccess()
}

// Store returns the pool's persistent tier, nil when running memory-only.
func (p *Pool) Store() *store.Store { return p.store }

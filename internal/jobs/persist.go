package jobs

import (
	"time"

	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

// The persistent tier. When a Pool is given a store.Store, completed
// outcomes are written to disk under their content address and looked up
// on every cache miss, so the lookup order becomes memory → disk →
// compute. What persists is a compact outcome document — verdict, analysis
// counts, engine result and telemetry — not the full operation trace:
// verdicts and telemetry are what sweeps, campaigns and restarted services
// need, while traces remain a product of fresh runs (the service's trace
// endpoints say so explicitly for disk-served outcomes).

// outcomeKind is the store kind of persisted outcome documents.
const outcomeKind = "outcome"

// outcomeDocVersion tags the document schema; bump it when the layout
// changes so stale documents read as misses instead of mis-decoding.
const outcomeDocVersion = "jobs/outcome/v1"

// outcomeDoc is the JSON document persisted per completed run.
type outcomeDoc struct {
	Version   string         `json:"version"`
	Verdict   Verdict        `json:"verdict"`
	System    string         `json:"system,omitempty"`
	JobsTotal int            `json:"jobs_total,omitempty"`
	JobsLate  int            `json:"jobs_unschedulable,omitempty"`
	Engine    nsa.Result     `json:"engine"`
	Telemetry *obs.RunReport `json:"telemetry,omitempty"`
	ElapsedNS int64          `json:"elapsed_ns"`
}

// OutcomeSummary carries the analysis counts of an outcome restored from
// the persistent store, where the full trace and Analysis are not
// retained. A non-nil Persisted on an Outcome marks it disk-restored.
type OutcomeSummary struct {
	System    string
	JobsTotal int
	JobsLate  int
}

// docFromOutcome compacts a freshly computed outcome for persistence.
func docFromOutcome(out *Outcome) *outcomeDoc {
	d := &outcomeDoc{
		Version:   outcomeDocVersion,
		Verdict:   out.Verdict,
		Engine:    out.Engine,
		Telemetry: out.Telemetry,
		ElapsedNS: int64(out.Elapsed),
	}
	switch {
	case out.Persisted != nil: // disk hit re-persisted (shouldn't happen, but lossless)
		d.System = out.Persisted.System
		d.JobsTotal = out.Persisted.JobsTotal
		d.JobsLate = out.Persisted.JobsLate
	default:
		if out.Sys != nil {
			d.System = out.Sys.Name
		}
		if out.Analysis != nil {
			d.JobsTotal = len(out.Analysis.Jobs)
			d.JobsLate = len(out.Analysis.Unschedulable)
		}
	}
	return d
}

// outcomeFromDoc inflates a persisted document into a servable Outcome.
func outcomeFromDoc(d *outcomeDoc) *Outcome {
	return &Outcome{
		Verdict:   d.Verdict,
		Engine:    d.Engine,
		Telemetry: d.Telemetry,
		Elapsed:   time.Duration(d.ElapsedNS),
		Persisted: &OutcomeSummary{System: d.System, JobsTotal: d.JobsTotal, JobsLate: d.JobsLate},
	}
}

// storeGet looks key up in the persistent tier. Version-mismatched or
// unreadable documents read as misses — the store's hit was optimistic,
// the outcome will simply be recomputed and re-persisted.
func (p *Pool) storeGet(key string) *Outcome {
	if p.store == nil || key == "" {
		return nil
	}
	var d outcomeDoc
	ok, err := p.store.Get(outcomeKind, key, &d)
	if err != nil || !ok || d.Version != outcomeDocVersion {
		return nil
	}
	return outcomeFromDoc(&d)
}

// storePut persists a freshly computed outcome. Persistence is
// best-effort: a full disk degrades the service to memory-only caching,
// it does not fail runs.
func (p *Pool) storePut(key string, out *Outcome) {
	if p.store == nil || key == "" || out == nil {
		return
	}
	if err := p.store.Put(outcomeKind, key, docFromOutcome(out)); err != nil && p.opts.Logger != nil {
		p.opts.Logger.Warn("persisting outcome failed", "fingerprint", key, "error", err.Error())
	}
}

// Store returns the pool's persistent tier, nil when running memory-only.
func (p *Pool) Store() *store.Store { return p.store }

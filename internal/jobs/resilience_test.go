package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/store"
)

// Tests for the pool's self-healing machinery: the stuck-job watchdog,
// the worker panic fence, the injected worker faults, and the disk-tier
// retry + circuit breaker.

// stubbornRunner ignores its context n times before yielding to it —
// the shape of a wedged interpretation loop.
type stubbornRunner struct {
	key     string
	stalls  *int // decremented per attempt; <= 0 behaves
	release chan struct{}
}

func (r stubbornRunner) Key() string { return r.key }

func (r stubbornRunner) Run(ctx context.Context, _ nsa.Budget) (*Outcome, error) {
	*r.stalls--
	if *r.stalls >= 0 {
		<-r.release // wedged: deaf to ctx until externally released
		return nil, ctx.Err()
	}
	return &Outcome{Verdict: VerdictCompleted}, nil
}

func TestWatchdogRequeuesStuckJob(t *testing.T) {
	p := New(Options{Workers: 1, StuckAfter: 30 * time.Millisecond, MaxRequeues: 2})
	defer p.Close()
	stalls := 1
	release := make(chan struct{})
	jb, err := p.Submit(stubbornRunner{key: "", stalls: &stalls, release: release})
	if err != nil {
		t.Fatal(err)
	}
	// The first attempt wedges; the watchdog cancels it, but the runner
	// only returns once released — simulate the wedge clearing.
	time.Sleep(100 * time.Millisecond)
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := p.Wait(ctx, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusDone {
		t.Fatalf("status %s (err %v), want done after requeue", snap.Status, snap.Err)
	}
	if got := p.Resilience().WatchdogRequeues.Load(); got != 1 {
		t.Fatalf("WatchdogRequeues = %d, want 1", got)
	}
	m := p.Metrics()
	if m.Queued != 0 || m.Running != 0 || m.Done != 1 {
		t.Fatalf("metrics after requeue: %+v", m)
	}
}

func TestWatchdogExhaustedRequeuesFailsJob(t *testing.T) {
	p := New(Options{Workers: 1, StuckAfter: 20 * time.Millisecond, MaxRequeues: 1})
	defer p.Close()
	stalls := 5 // never behaves within the requeue budget
	release := make(chan struct{})
	jb, err := p.Submit(stubbornRunner{key: "", stalls: &stalls, release: release})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Let each deadlined attempt return once its context is canceled.
		for i := 0; i < 2; i++ {
			time.Sleep(60 * time.Millisecond)
			release <- struct{}{}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := p.Wait(ctx, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusFailed || !errors.Is(snap.Err, ErrStuck) {
		t.Fatalf("status %s err %v, want failed with ErrStuck", snap.Status, snap.Err)
	}
}

func TestWatchdogLeavesUserCancelAlone(t *testing.T) {
	p := New(Options{Workers: 1, StuckAfter: time.Hour})
	defer p.Close()
	started := make(chan struct{})
	jb, err := p.Submit(funcRunner{run: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !p.Cancel(jb.ID) {
		t.Fatal("cancel refused")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := p.Wait(ctx, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled (not requeued)", snap.Status)
	}
	if got := p.Resilience().WatchdogRequeues.Load(); got != 0 {
		t.Fatalf("user cancel triggered %d requeues", got)
	}
}

func TestWorkerPanicIsContained(t *testing.T) {
	p := New(Options{Workers: 2})
	defer p.Close()
	jb, err := p.Submit(funcRunner{run: func(context.Context) error { panic("analysis blew up") }})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	snap, err := p.Wait(ctx, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusFailed || snap.Err == nil {
		t.Fatalf("status %s err %v, want failed", snap.Status, snap.Err)
	}
	if got := p.Resilience().PanicsRecovered.Load(); got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
	// The worker survived: the pool still runs jobs.
	jb2, err := p.Submit(funcRunner{})
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := p.Wait(ctx, jb2.ID); err != nil || snap.Status != StatusDone {
		t.Fatalf("pool dead after panic: %+v %v", snap, err)
	}
}

func TestInjectedWorkerFaults(t *testing.T) {
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: fault.SiteWorkerRun, Kind: fault.KindPanic, Every: 2, Limit: 1}, // second run panics
	}})
	p := New(Options{Workers: 1, Faults: inj})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	jb1, _ := p.Submit(funcRunner{})
	if snap, err := p.Wait(ctx, jb1.ID); err != nil || snap.Status != StatusDone {
		t.Fatalf("first run: %+v %v", snap, err)
	}
	jb2, _ := p.Submit(funcRunner{})
	snap, err := p.Wait(ctx, jb2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusFailed || !fault.IsInjected(snap.Err) {
		t.Fatalf("injected panic surfaced as %s / %v", snap.Status, snap.Err)
	}
	if p.Resilience().PanicsRecovered.Load() != 1 {
		t.Fatal("injected panic not counted as recovered")
	}
}

func TestDiskTierRetriesTransientFaults(t *testing.T) {
	dir := t.TempDir()
	// One injected journal-sync failure: the first Put attempt fails, the
	// retry succeeds, nothing trips.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: fault.SiteStoreJournalSync, Kind: fault.KindError, Every: 1, Limit: 1},
	}})
	st, err := store.Open(dir, store.Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := New(Options{Workers: 1, Store: st})
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	jb, _ := p.Submit(funcRunner{key: "retry-key"})
	if snap, werr := p.Wait(ctx, jb.ID); werr != nil || snap.Status != StatusDone {
		t.Fatalf("run: %+v %v", snap, werr)
	}
	waitFor(t, func() bool { return p.Resilience().StoreRetries.Load() >= 1 })
	if p.Degraded() {
		t.Fatal("a single transient fault degraded the tier")
	}
	// The retried write landed: a fresh pool on the same store serves it.
	if !st.Has("outcome", "retry-key") {
		t.Fatal("outcome not persisted despite retry")
	}
}

func TestBreakerDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// Enough consecutive journal-sync failures to exhaust every retry of
	// several puts in a row: the breaker trips.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: fault.SiteStoreJournalSync, Kind: fault.KindError, Every: 1, Limit: 6},
	}})
	st, err := store.Open(dir, store.Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := New(Options{Workers: 1, Store: st, BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i, key := range []string{"k1", "k2"} {
		jb, _ := p.Submit(funcRunner{key: key})
		if snap, werr := p.Wait(ctx, jb.ID); werr != nil || snap.Status != StatusDone {
			t.Fatalf("run %d: %+v %v", i, snap, werr)
		}
	}
	// Each put burned 3 attempts (6 injected faults total): two exhausted
	// failures at threshold 2 trip the breaker into degraded mode.
	waitFor(t, func() bool { return p.Degraded() })
	if p.Resilience().BreakerTrips.Load() != 1 {
		t.Fatalf("BreakerTrips = %d", p.Resilience().BreakerTrips.Load())
	}

	// Cooldown elapses; the injector is exhausted, so the next store
	// operation is the half-open probe that heals the tier.
	time.Sleep(30 * time.Millisecond)
	jb, _ := p.Submit(funcRunner{key: "k3"})
	if snap, werr := p.Wait(ctx, jb.ID); werr != nil || snap.Status != StatusDone {
		t.Fatalf("probe run: %+v %v", snap, werr)
	}
	waitFor(t, func() bool { return !p.Degraded() })
	if p.Resilience().BreakerResets.Load() != 1 {
		t.Fatalf("BreakerResets = %d", p.Resilience().BreakerResets.Load())
	}
	if p.Metrics().Resilience.BreakerTrips != 1 {
		t.Fatal("resilience counters missing from the metrics snapshot")
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

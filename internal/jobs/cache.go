package jobs

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe, content-addressed result cache with LRU
// eviction. Keys are canonical content hashes (config.Fingerprint for
// configuration runs), so a hit is sound by construction: the paper's
// deterministic interpretation makes the outcome a pure function of the
// key. A nil *Cache is valid and never hits, which is how caching is
// disabled.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	out *Outcome
}

// NewCache returns a cache bounded to capacity entries; capacity <= 0
// returns nil (caching disabled).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{cap: capacity, m: make(map[string]*list.Element), ll: list.New()}
}

// Get returns the cached outcome for key and marks it recently used.
func (c *Cache) Get(key string) (*Outcome, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Put stores the outcome under key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(key string, out *Outcome) {
	if c == nil || key == "" || out == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).out = out
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

package jobs

import (
	"sync"
	"time"

	"stopwatchsim/internal/obs"
)

// Latency quantiles cover the most recent metricsWindow of runs, tracked
// in metricsSubWindows rotating sub-windows (see obs.Histogram). The old
// fixed-size ring mixed ancient runs with recent ones and sorted a sample
// on every snapshot; the windowed histogram shares its bucket layout with
// the per-phase Prometheus histograms.
const (
	metricsWindow     = 5 * time.Minute
	metricsSubWindows = 5
)

// Metrics aggregates pool activity for the /metrics endpoint: job
// lifecycle counters, cache effectiveness, run-latency quantiles over a
// sliding window of recent runs, aggregate engine hot-path counters, and
// per-phase latency histograms merged from the RunReports of completed
// jobs.
type Metrics struct {
	mu sync.Mutex

	submitted int64
	queued    int64 // gauge
	running   int64 // gauge
	done      int64
	failed    int64
	canceled  int64

	cacheHits   int64
	cacheMisses int64
	storeHits   int64 // cache hits served by the persistent tier

	// engineReuses counts runs served by a worker's prepared-engine cache
	// (Reset+Run on a persistent engine instead of a fresh build).
	engineReuses int64

	// postmortems counts flight-recorder dumps written for runs that
	// ended in deadlock, watchdog kill, panic or injected fault.
	postmortems int64

	// Engine throughput: total synchronization transitions fired over the
	// total wall time spent interpreting.
	events int64
	busy   time.Duration

	runLat *obs.Histogram // windowed run-latency estimator

	// engine accumulates the hot-path counters of every completed run;
	// phases holds one windowed latency histogram per pipeline phase.
	// Both are fed by recordTelemetry from the runs' RunReports.
	engine obs.Probe
	phases map[string]*obs.Histogram
}

func newMetrics() *Metrics {
	return &Metrics{
		runLat: obs.NewHistogram(metricsWindow, metricsSubWindows, nil),
		phases: make(map[string]*obs.Histogram),
	}
}

// Snapshot is a consistent copy of the metrics with derived statistics.
type Snapshot struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// StoreHits counts the subset of CacheHits served by the persistent
	// tier (an in-memory miss that a store lookup satisfied).
	StoreHits int64 `json:"store_hits"`
	// EngineReuses counts runs that Reset+Ran a worker's cached prepared
	// engine instead of rebuilding the network from scratch.
	EngineReuses int64 `json:"engine_reuses"`
	// Postmortems counts flight-recorder dumps written for failed runs.
	Postmortems int64 `json:"postmortems"`

	// LatencyP50/P90/P99 are run-latency quantiles over the recent
	// window, zero until a run completes (or after the window drains).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`

	// EventsPerSec is the aggregate interpretation throughput:
	// synchronization transitions fired per second of engine wall time.
	EventsPerSec float64 `json:"events_per_sec"`

	// Engine is the sum of the hot-path counters of every completed run.
	Engine obs.Counters `json:"engine"`

	// Resilience is the pool's self-healing counters (store retries,
	// breaker activity, watchdog requeues, recovered panics); filled in by
	// Pool.Metrics, not by the Metrics collector itself.
	Resilience obs.ResilienceCounters `json:"resilience"`
}

func (m *Metrics) jobQueued() {
	m.mu.Lock()
	m.submitted++
	m.queued++
	m.mu.Unlock()
}

func (m *Metrics) jobDequeued() {
	m.mu.Lock()
	m.queued--
	m.running++
	m.mu.Unlock()
}

// jobRequeued accounts for a running job the watchdog sent back to the
// queue for a fresh attempt.
func (m *Metrics) jobRequeued() {
	m.mu.Lock()
	m.running--
	m.queued++
	m.mu.Unlock()
}

// jobCanceledQueued accounts for a job canceled before it started running.
func (m *Metrics) jobCanceledQueued() {
	m.mu.Lock()
	m.queued--
	m.canceled++
	m.mu.Unlock()
}

// jobFinished records a terminal transition of a running job. events is the
// number of engine transitions the run fired; elapsed its wall time.
func (m *Metrics) jobFinished(st Status, elapsed time.Duration, events int64) {
	m.mu.Lock()
	m.running--
	switch st {
	case StatusFailed:
		m.failed++
	case StatusCanceled:
		m.canceled++
	default:
		m.done++
	}
	m.events += events
	m.busy += elapsed
	m.mu.Unlock()
	m.runLat.Observe(elapsed)
}

// recordTelemetry merges one run's RunReport into the aggregates: counters
// into the engine probe, phase durations into the per-phase histograms.
// Nil-safe: jobs that failed before producing a report contribute nothing.
func (m *Metrics) recordTelemetry(r *obs.RunReport) {
	if r == nil {
		return
	}
	m.engine.Merge(r.Counters)
	for _, ph := range r.Phases {
		if ph.Depth > 0 {
			continue // top-level phases only; nested spans would double-count
		}
		m.mu.Lock()
		if m.phases == nil {
			m.phases = make(map[string]*obs.Histogram)
		}
		h := m.phases[ph.Name]
		if h == nil {
			h = obs.NewHistogram(metricsWindow, metricsSubWindows, nil)
			m.phases[ph.Name] = h
		}
		m.mu.Unlock()
		h.Observe(time.Duration(ph.DurNS))
	}
}

// PhaseLatencies returns a merged snapshot of every per-phase latency
// histogram, keyed by phase name.
func (m *Metrics) PhaseLatencies() map[string]obs.HistSnapshot {
	m.mu.Lock()
	hs := make(map[string]*obs.Histogram, len(m.phases))
	for name, h := range m.phases {
		hs[name] = h
	}
	m.mu.Unlock()
	out := make(map[string]obs.HistSnapshot, len(hs))
	for name, h := range hs {
		out[name] = h.Snapshot()
	}
	return out
}

// cacheHit accounts for a submission served entirely from the cache;
// disk marks a hit satisfied by the persistent tier.
func (m *Metrics) cacheHit(disk bool) {
	m.mu.Lock()
	m.submitted++
	m.done++
	m.cacheHits++
	if disk {
		m.storeHits++
	}
	m.mu.Unlock()
}

// lateCacheHit accounts for a queued job served from the cache at dequeue
// time (an identical run completed while it waited).
func (m *Metrics) lateCacheHit() {
	m.mu.Lock()
	m.queued--
	m.done++
	m.cacheHits++
	m.mu.Unlock()
}

func (m *Metrics) cacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// engineReuse accounts for a run served by a worker's prepared-engine
// cache.
func (m *Metrics) engineReuse() {
	m.mu.Lock()
	m.engineReuses++
	m.mu.Unlock()
}

// postmortem accounts for one flight-recorder dump.
func (m *Metrics) postmortem() {
	m.mu.Lock()
	m.postmortems++
	m.mu.Unlock()
}

// Snapshot returns a consistent copy with derived quantiles and rates.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Submitted:    m.submitted,
		Queued:       m.queued,
		Running:      m.running,
		Done:         m.done,
		Failed:       m.failed,
		Canceled:     m.canceled,
		CacheHits:    m.cacheHits,
		CacheMisses:  m.cacheMisses,
		StoreHits:    m.storeHits,
		EngineReuses: m.engineReuses,
	}
	if total := m.cacheHits + m.cacheMisses; total > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(total)
	}
	if m.busy > 0 {
		s.EventsPerSec = float64(m.events) / m.busy.Seconds()
	}
	m.mu.Unlock()
	s.LatencyP50 = m.runLat.Quantile(0.50)
	s.LatencyP90 = m.runLat.Quantile(0.90)
	s.LatencyP99 = m.runLat.Quantile(0.99)
	s.Engine = m.engine.Snapshot()
	return s
}

package jobs

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent run latencies the quantile estimator
// retains.
const latencyWindow = 1024

// Metrics aggregates pool activity for the /metrics endpoint: job
// lifecycle counters, cache effectiveness, and run-latency quantiles over
// a sliding window of recent runs.
type Metrics struct {
	mu sync.Mutex

	submitted int64
	queued    int64 // gauge
	running   int64 // gauge
	done      int64
	failed    int64
	canceled  int64

	cacheHits   int64
	cacheMisses int64

	// Engine throughput: total synchronization transitions fired over the
	// total wall time spent interpreting.
	events int64
	busy   time.Duration

	lat  [latencyWindow]time.Duration // ring of recent run latencies
	latN int64                        // total recorded (ring index = latN % window)
}

// Snapshot is a consistent copy of the metrics with derived statistics.
type Snapshot struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// LatencyP50/P99 are run-latency quantiles over the recent window,
	// zero until a run completes.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`

	// EventsPerSec is the aggregate interpretation throughput:
	// synchronization transitions fired per second of engine wall time.
	EventsPerSec float64 `json:"events_per_sec"`
}

func (m *Metrics) jobQueued() {
	m.mu.Lock()
	m.submitted++
	m.queued++
	m.mu.Unlock()
}

func (m *Metrics) jobDequeued() {
	m.mu.Lock()
	m.queued--
	m.running++
	m.mu.Unlock()
}

// jobCanceledQueued accounts for a job canceled before it started running.
func (m *Metrics) jobCanceledQueued() {
	m.mu.Lock()
	m.queued--
	m.canceled++
	m.mu.Unlock()
}

// jobFinished records a terminal transition of a running job. events is the
// number of engine transitions the run fired; elapsed its wall time.
func (m *Metrics) jobFinished(st Status, elapsed time.Duration, events int64) {
	m.mu.Lock()
	m.running--
	switch st {
	case StatusFailed:
		m.failed++
	case StatusCanceled:
		m.canceled++
	default:
		m.done++
	}
	m.events += events
	m.busy += elapsed
	m.lat[m.latN%latencyWindow] = elapsed
	m.latN++
	m.mu.Unlock()
}

// cacheHit accounts for a submission served entirely from the cache.
func (m *Metrics) cacheHit() {
	m.mu.Lock()
	m.submitted++
	m.done++
	m.cacheHits++
	m.mu.Unlock()
}

// lateCacheHit accounts for a queued job served from the cache at dequeue
// time (an identical run completed while it waited).
func (m *Metrics) lateCacheHit() {
	m.mu.Lock()
	m.queued--
	m.done++
	m.cacheHits++
	m.mu.Unlock()
}

func (m *Metrics) cacheMiss() {
	m.mu.Lock()
	m.cacheMisses++
	m.mu.Unlock()
}

// Snapshot returns a consistent copy with derived quantiles and rates.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Submitted:   m.submitted,
		Queued:      m.queued,
		Running:     m.running,
		Done:        m.done,
		Failed:      m.failed,
		Canceled:    m.canceled,
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
	}
	if total := m.cacheHits + m.cacheMisses; total > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(total)
	}
	n := m.latN
	if n > latencyWindow {
		n = latencyWindow
	}
	if n > 0 {
		window := make([]time.Duration, n)
		copy(window, m.lat[:n])
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.LatencyP50 = window[quantileIndex(int(n), 0.50)]
		s.LatencyP99 = window[quantileIndex(int(n), 0.99)]
	}
	if m.busy > 0 {
		s.EventsPerSec = float64(m.events) / m.busy.Seconds()
	}
	return s
}

// quantileIndex maps a quantile q onto an index of a sorted sample of
// size n (nearest-rank, clamped).
func quantileIndex(n int, q float64) int {
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

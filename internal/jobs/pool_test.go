package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
)

// testSystem returns a small schedulable single-core configuration; wcet
// perturbs the low-priority task so distinct arguments yield distinct
// fingerprints.
func testSystem(wcet int64) *config.System {
	return &config.System{
		Name:      "pool-test",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "hi", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
					{Name: "lo", Priority: 1, WCET: []int64{wcet}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 20}},
			},
		},
	}
}

func TestPoolRunsConfigJob(t *testing.T) {
	p := New(Options{Workers: 2})
	defer p.Close()
	jb, err := p.Submit(ConfigRun{Sys: testSystem(9)})
	if err != nil {
		t.Fatal(err)
	}
	if jb.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	got, err := p.Wait(context.Background(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone {
		t.Fatalf("status = %s (err=%v)", got.Status, got.Err)
	}
	if got.Outcome == nil || got.Outcome.Verdict != VerdictSchedulable {
		t.Fatalf("outcome = %+v, want schedulable", got.Outcome)
	}
	if got.Outcome.Analysis == nil || len(got.Outcome.Analysis.Jobs) != 3 {
		t.Fatalf("analysis missing or wrong job count: %+v", got.Outcome.Analysis)
	}
}

func TestPoolCacheHitOnResubmission(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	first, err := p.Submit(ConfigRun{Sys: testSystem(9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	// Same content, independently constructed value.
	second, err := p.Submit(ConfigRun{Sys: testSystem(9)})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Status != StatusDone {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	done, _ := p.Wait(context.Background(), second.ID)
	if done.Outcome == nil || done.Outcome.Verdict != VerdictSchedulable {
		t.Fatalf("cached outcome = %+v", done.Outcome)
	}
	m := p.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	// A different configuration must miss.
	third, err := p.Submit(ConfigRun{Sys: testSystem(8)})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("distinct configuration hit the cache")
	}
}

func TestPoolQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	p := New(Options{Workers: 1, QueueDepth: 1, CacheSize: -1})
	defer p.Close()
	defer close(block)
	// Occupy the worker, then fill the queue.
	if _, err := p.Submit(funcRunner{key: "w", run: func(ctx context.Context) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, p)
	if _, err := p.Submit(funcRunner{key: "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(funcRunner{key: "x"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestPoolCancelQueuedAndRunning(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	p := New(Options{Workers: 1, QueueDepth: 4, CacheSize: -1})
	defer p.Close()

	running, err := p.Submit(funcRunner{key: "r", run: func(ctx context.Context) error {
		close(started)
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := p.Submit(funcRunner{key: "q"})
	if err != nil {
		t.Fatal(err)
	}

	if !p.Cancel(queued.ID) {
		t.Fatal("cancel of queued job refused")
	}
	got, _ := p.Get(queued.ID)
	if got.Status != StatusCanceled {
		t.Fatalf("queued job status = %s, want canceled", got.Status)
	}

	if !p.Cancel(running.ID) {
		t.Fatal("cancel of running job refused")
	}
	got, err = p.Wait(context.Background(), running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusCanceled {
		t.Fatalf("running job status = %s err=%v, want canceled", got.Status, got.Err)
	}
	if p.Cancel(running.ID) {
		t.Fatal("cancel of terminal job accepted")
	}
	if p.Cancel("j999999") {
		t.Fatal("cancel of unknown job accepted")
	}
}

func TestPoolBudgetExhaustionFailsJob(t *testing.T) {
	p := New(Options{Workers: 1, Budget: nsa.Budget{MaxSteps: 1}, Tool: "test"})
	defer p.Close()
	jb, err := p.Submit(ConfigRun{Sys: testSystem(9)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Wait(context.Background(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", got.Status)
	}
	if got.Report == nil || got.Report.Tool != "test" {
		t.Fatalf("report = %+v, want tool=test", got.Report)
	}
	var rerr *nsa.RunError
	if !errors.As(got.Err, &rerr) {
		t.Fatalf("err = %v, want *nsa.RunError", got.Err)
	}
}

func TestPoolWaitContext(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := New(Options{Workers: 1, CacheSize: -1})
	defer p.Close()
	jb, err := p.Submit(funcRunner{key: "slow", run: func(ctx context.Context) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.Wait(ctx, jb.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if _, err := p.Wait(context.Background(), "j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

func TestPoolCloseCancelsQueued(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	p := New(Options{Workers: 1, QueueDepth: 8, CacheSize: -1})
	if _, err := p.Submit(funcRunner{key: "w", run: func(ctx context.Context) error {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, p)
	queued, err := p.Submit(funcRunner{key: "q"})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	got, _ := p.Get(queued.ID)
	if !got.Status.Terminal() {
		t.Fatalf("queued job not terminal after Close: %s", got.Status)
	}
	if _, err := p.Submit(funcRunner{key: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestPoolConcurrentSubmitCancelLookup hammers the registry from many
// goroutines; run with -race it is the pool's data-race probe.
func TestPoolConcurrentSubmitCancelLookup(t *testing.T) {
	p := New(Options{Workers: 4, QueueDepth: 512, CacheSize: 64})
	defer p.Close()
	const n = 48
	var wg sync.WaitGroup
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Eight distinct configurations: plenty of cache collisions.
			jb, err := p.Submit(ConfigRun{Sys: testSystem(int64(2 + i%8))})
			if err != nil {
				if errors.Is(err, ErrQueueFull) {
					return
				}
				t.Error(err)
				return
			}
			ids <- jb.ID
			if i%5 == 0 {
				p.Cancel(jb.ID)
			}
			if _, err := p.Wait(context.Background(), jb.ID); err != nil {
				t.Error(err)
			}
		}(i)
	}
	// Concurrent readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				p.List()
				p.Metrics()
				select {
				case id := <-ids:
					p.Get(id)
				default:
				}
			}
		}()
	}
	wg.Wait()
	for _, jb := range p.List() {
		if !jb.Status.Terminal() {
			got, err := p.Wait(context.Background(), jb.ID)
			if err != nil {
				t.Fatal(err)
			}
			jb = got
		}
		if jb.Status == StatusFailed {
			t.Errorf("job %s failed: %v", jb.ID, jb.Err)
		}
	}
	m := p.Metrics()
	if m.Queued != 0 || m.Running != 0 {
		t.Errorf("gauges not drained: queued=%d running=%d", m.Queued, m.Running)
	}
	if m.Submitted != m.Done+m.Failed+m.Canceled {
		t.Errorf("counter imbalance: %+v", m)
	}
}

func TestXTARun(t *testing.T) {
	const src = `
const int PERIOD = 3;
int count = 0;
chan tick;

process Emitter() {
    clock t;
    state W { t <= PERIOD };
    init W;
    trans W -> W { guard t == PERIOD; sync tick!; assign t := 0; };
}

process Counter() {
    state C;
    init C;
    trans C -> C { sync tick?; assign count := count + 1; };
}

system Emitter(), Counter();
`
	p := New(Options{Workers: 1})
	defer p.Close()
	jb, err := p.Submit(XTARun{Src: src, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Wait(context.Background(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Outcome.Verdict != VerdictCompleted {
		t.Fatalf("status=%s outcome=%+v err=%v", got.Status, got.Outcome, got.Err)
	}
	if len(got.Outcome.Sync) == 0 {
		t.Fatal("no synchronization events rendered")
	}
	// Identical source: cache hit; different horizon: miss.
	again, err := p.Submit(XTARun{Src: src, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("identical XTA run missed the cache")
	}
	other, err := p.Submit(XTARun{Src: src, Horizon: 21})
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Fatal("different horizon hit the cache")
	}
}

// TestPoolParallelism proves the pool genuinely overlaps runs: four
// blocking jobs on four workers must all be in flight at once before any
// is released — the mechanism behind the sweep's wall-clock speedup.
func TestPoolParallelism(t *testing.T) {
	const workers = 4
	p := New(Options{Workers: workers, QueueDepth: workers, CacheSize: -1})
	defer p.Close()
	var mu sync.Mutex
	inflight, peak := 0, 0
	all := make(chan struct{})
	for i := 0; i < workers; i++ {
		_, err := p.Submit(funcRunner{key: fmt.Sprintf("par%d", i), run: func(ctx context.Context) error {
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			if inflight == workers {
				close(all)
			}
			mu.Unlock()
			select {
			case <-all: // released only when every job is running
			case <-ctx.Done():
			}
			mu.Lock()
			inflight--
			mu.Unlock()
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, jb := range p.List() {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		got, err := p.Wait(ctx, jb.ID)
		cancel()
		if err != nil || got.Status != StatusDone {
			t.Fatalf("job %s: status=%s err=%v", jb.ID, got.Status, err)
		}
	}
	if peak != workers {
		t.Fatalf("peak concurrency = %d, want %d", peak, workers)
	}
}

// funcRunner adapts a function to Runner for scheduling-behaviour tests.
type funcRunner struct {
	key string
	run func(ctx context.Context) error
}

func (r funcRunner) Key() string { return r.key }

func (r funcRunner) Run(ctx context.Context, _ nsa.Budget) (*Outcome, error) {
	if r.run != nil {
		if err := r.run(ctx); err != nil {
			return nil, err
		}
	}
	return &Outcome{Verdict: VerdictCompleted}, nil
}

// waitRunning blocks until some job reports running.
func waitRunning(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Metrics().Running > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job started running")
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	out := func(v Verdict) *Outcome { return &Outcome{Verdict: v} }
	c.Put("a", out("1"))
	c.Put("b", out("2"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", out("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// nil cache and empty keys are inert.
	var nilCache *Cache
	nilCache.Put("x", out("4"))
	if _, ok := nilCache.Get("x"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("", out("5"))
	if _, ok := c.Get(""); ok {
		t.Fatal("empty key cached")
	}
}

// TestCacheConcurrent is the cache's -race probe: concurrent Put/Get/Len
// over a small key space with constant eviction.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				if i%3 == 0 {
					c.Put(k, &Outcome{Verdict: VerdictCompleted})
				} else {
					c.Get(k)
				}
				c.Len()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

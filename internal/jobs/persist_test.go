package jobs

import (
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/store"
)

// persistSystem is a small schedulable single-core configuration.
func persistSystem() *config.System {
	return &config.System{
		Name:      "persist",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{{
			Name: "P1", Core: 0, Policy: config.FPPS,
			Tasks: []config.Task{
				{Name: "a", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
				{Name: "b", Priority: 1, WCET: []int64{3}, Period: 20, Deadline: 20},
			},
			Windows: []config.Window{{Start: 0, End: 20}},
		}},
	}
}

// TestPersistentTierAcrossPools is the two-tier contract: a pool computes
// an outcome and persists it; a second pool sharing only the store (fresh,
// empty memory cache — a process restart) serves the same configuration
// from disk without running the engine.
func TestPersistentTierAcrossPools(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sys := persistSystem()
	p1 := New(Options{Workers: 1, Store: st})
	jb, err := p1.Submit(ConfigRun{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	done, err := p1.Wait(t.Context(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || done.CacheHit {
		t.Fatalf("first run: status=%s cacheHit=%v", done.Status, done.CacheHit)
	}
	wantVerdict := done.Outcome.Verdict
	p1.Close()

	if !st.Has("outcome", sys.Fingerprint()) {
		t.Fatal("outcome not persisted under the configuration fingerprint")
	}

	// "Restart": new pool, same store, empty memory cache.
	p2 := New(Options{Workers: 1, Store: st})
	defer p2.Close()
	jb2, err := p2.Submit(ConfigRun{Sys: persistSystem()})
	if err != nil {
		t.Fatal(err)
	}
	if jb2.Status != StatusDone {
		t.Fatalf("disk-tier submission not born done: %s", jb2.Status)
	}
	if !jb2.CacheHit || !jb2.DiskHit {
		t.Fatalf("expected disk hit, got cacheHit=%v diskHit=%v", jb2.CacheHit, jb2.DiskHit)
	}
	out := jb2.Outcome
	if out.Verdict != wantVerdict {
		t.Fatalf("disk-served verdict %s, want %s", out.Verdict, wantVerdict)
	}
	if out.Persisted == nil {
		t.Fatal("disk-served outcome not marked Persisted")
	}
	if out.Persisted.System != "persist" || out.Persisted.JobsTotal == 0 {
		t.Fatalf("persisted summary %+v", out.Persisted)
	}
	if out.Trace != nil || out.Sys != nil {
		t.Fatal("disk-served outcome claims a trace it cannot have")
	}
	if out.Telemetry == nil || out.Telemetry.Counters.Steps == 0 {
		t.Fatal("telemetry lost in persistence round trip")
	}
	m := p2.Metrics()
	if m.StoreHits != 1 || m.CacheHits != 1 {
		t.Fatalf("metrics after disk hit: storeHits=%d cacheHits=%d", m.StoreHits, m.CacheHits)
	}

	// Second submission on the same pool now hits the promoted memory
	// entry, not the disk.
	jb3, err := p2.Submit(ConfigRun{Sys: persistSystem()})
	if err != nil {
		t.Fatal(err)
	}
	if !jb3.CacheHit || jb3.DiskHit {
		t.Fatalf("expected memory hit after promotion, got cacheHit=%v diskHit=%v", jb3.CacheHit, jb3.DiskHit)
	}
}

// TestVersionMismatchReadsAsMiss plants a document with a foreign schema
// version and checks the pool recomputes instead of serving it.
func TestVersionMismatchReadsAsMiss(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sys := persistSystem()
	if err := st.Put(outcomeKind, sys.Fingerprint(), map[string]any{
		"version": "jobs/outcome/v999",
		"verdict": "unschedulable",
	}); err != nil {
		t.Fatal(err)
	}

	p := New(Options{Workers: 1, Store: st})
	defer p.Close()
	jb, err := p.Submit(ConfigRun{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	done, err := p.Wait(t.Context(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.CacheHit || done.DiskHit {
		t.Fatalf("foreign-version document served as a hit: %+v", done)
	}
	if done.Outcome.Verdict != VerdictSchedulable {
		t.Fatalf("recomputed verdict %s", done.Outcome.Verdict)
	}
}

func TestOutcomeDocRoundTrip(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	jb, err := p.Submit(ConfigRun{Sys: persistSystem()})
	if err != nil {
		t.Fatal(err)
	}
	done, err := p.Wait(t.Context(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	out := done.Outcome
	round := outcomeFromDoc(docFromOutcome(out))
	if round.Verdict != out.Verdict {
		t.Fatalf("verdict %s -> %s", out.Verdict, round.Verdict)
	}
	if round.Engine != out.Engine {
		t.Fatalf("engine result %+v -> %+v", out.Engine, round.Engine)
	}
	if round.Elapsed != out.Elapsed {
		t.Fatalf("elapsed %v -> %v", out.Elapsed, round.Elapsed)
	}
	if round.Persisted.JobsTotal != len(out.Analysis.Jobs) ||
		round.Persisted.JobsLate != len(out.Analysis.Unschedulable) {
		t.Fatalf("summary %+v vs analysis %d/%d", round.Persisted,
			len(out.Analysis.Jobs), len(out.Analysis.Unschedulable))
	}
	// Re-compacting a disk-restored outcome must be lossless.
	again := outcomeFromDoc(docFromOutcome(round))
	if *again.Persisted != *round.Persisted || again.Verdict != round.Verdict {
		t.Fatal("re-persisting a restored outcome lost data")
	}
}

package jobs

import (
	"context"

	"stopwatchsim/internal/model"
)

// engineCache is a per-worker LRU of prepared engines (model.Prepared),
// keyed by configuration fingerprint + backend. Workers own their cache
// exclusively — no locking — and hand it to runners through the run
// context; ConfigRun checks out an engine, Reset+Runs it, and returns it
// on success. Checkout semantics (get removes, put re-inserts) mean a
// run that fails or panics simply never returns the engine: whatever
// state the runtime was left in is dropped with it, and the next run of
// that configuration rebuilds from scratch.
type engineCache struct {
	cap    int
	keys   []string // LRU order, most recently used last
	m      map[string]*model.Prepared
	onHit  func()
	reuses int64
}

// defaultEngineCache is the per-worker capacity when Options.EngineCache
// is zero. Small on purpose: each entry holds a full compiled network.
const defaultEngineCache = 4

func newEngineCache(capacity int, onHit func()) *engineCache {
	if capacity <= 0 {
		return nil
	}
	return &engineCache{cap: capacity, m: make(map[string]*model.Prepared, capacity), onHit: onHit}
}

// get checks an engine out of the cache, removing it; nil on miss.
func (c *engineCache) get(key string) *model.Prepared {
	p := c.m[key]
	if p == nil {
		return nil
	}
	delete(c.m, key)
	for i, k := range c.keys {
		if k == key {
			c.keys = append(c.keys[:i], c.keys[i+1:]...)
			break
		}
	}
	c.reuses++
	if c.onHit != nil {
		c.onHit()
	}
	return p
}

// put returns an engine to the cache, evicting the least recently used
// entry past capacity. Re-putting a key replaces the stored engine.
func (c *engineCache) put(key string, p *model.Prepared) {
	if _, ok := c.m[key]; ok {
		c.m[key] = p
		return
	}
	c.m[key] = p
	c.keys = append(c.keys, key)
	if len(c.keys) > c.cap {
		evict := c.keys[0]
		c.keys = c.keys[1:]
		delete(c.m, evict)
	}
}

type engineCacheCtxKey struct{}

// withEngineCache attaches a worker's engine cache to a run context.
func withEngineCache(ctx context.Context, c *engineCache) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, engineCacheCtxKey{}, c)
}

// engineCacheFrom retrieves the worker's engine cache, nil outside a
// pool worker (direct Runner.Run calls keep the one-shot path).
func engineCacheFrom(ctx context.Context) *engineCache {
	c, _ := ctx.Value(engineCacheCtxKey{}).(*engineCache)
	return c
}

// Package jobs is the core of the concurrent analysis service: a bounded
// worker pool executing schedulability runs, a job registry with per-job
// resource budgets and cancellation (the PR 1 guarded-interpretation
// plumbing), and a content-addressed result cache keyed by the canonical
// configuration fingerprint. The paper's central property — one
// deterministic NSA interpretation decides a configuration — is what makes
// the cache sound: a configuration's verdict, trace and statistics are a
// pure function of its content, so identical submissions (across a sweep,
// or across clients of cmd/saserve) can share one completed run.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/diag"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/trace"
	"stopwatchsim/internal/xta"
)

// Status is the lifecycle state of a job.
type Status string

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; a cache hit is born done.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Verdict is the analysis conclusion of a successfully completed run.
type Verdict string

// Verdicts. Configuration runs conclude schedulable or unschedulable; raw
// NSA runs (XTA models have no schedulability criterion) conclude
// completed when the interpretation reaches its horizon cleanly.
const (
	VerdictSchedulable   Verdict = "schedulable"
	VerdictUnschedulable Verdict = "unschedulable"
	VerdictCompleted     Verdict = "completed"
)

// Outcome is the product of a successful run. Once published on a job it
// is immutable and may be shared between jobs through the cache.
type Outcome struct {
	Verdict Verdict

	// Sys, Trace and Analysis are set for configuration runs: the system
	// the run analyzed, its operation trace and the schedulability
	// statistics.
	Sys      *config.System
	Trace    *trace.Trace
	Analysis *trace.Analysis

	// Sync is the rendered synchronization trace of a raw NSA run.
	Sync []diag.TraceEvent

	// Engine summarizes the interpretation (actions, delays, stop time).
	Engine nsa.Result

	// Telemetry is the run's RunReport: per-phase durations plus the
	// engine hot-path counters collected by the run's probe.
	Telemetry *obs.RunReport

	// Persisted is set on outcomes restored from the persistent store,
	// carrying the analysis counts of the original run; the full trace is
	// not retained on disk, so Sys, Trace and Analysis are nil.
	Persisted *OutcomeSummary

	// Elapsed is the wall time the run itself took (excluding queueing).
	Elapsed time.Duration
}

// Runner is one unit of analysis work submitted to a Pool.
type Runner interface {
	// Key is the content address of the work: runs with equal keys produce
	// interchangeable Outcomes. An empty key disables caching for the job.
	Key() string
	// Run executes the work under a context and resource budget. The
	// returned error is classified by internal/diag into the structured
	// report stored on the job.
	Run(ctx context.Context, b nsa.Budget) (*Outcome, error)
}

// ConfigRun is the standard pipeline on a system configuration: build the
// NSA instance (Algorithm 1), interpret one hyperperiod, check the
// schedulability criterion over the trace.
type ConfigRun struct {
	Sys *config.System
	// Backend pins the engine backend for this run; the zero value lets
	// the pool's default apply. Not part of Key: backends are
	// outcome-interchangeable.
	Backend nsa.Backend
}

// Key returns the canonical configuration fingerprint.
func (r ConfigRun) Key() string { return r.Sys.Fingerprint() }

// Run executes the pipeline under a phase timeline and an engine probe;
// the resulting RunReport is attached to the outcome. Inside a pool
// worker the run consults the worker's prepared-engine cache: a repeat
// of a cached configuration Reset+Runs its persistent engine instead of
// rebuilding the network (the build phase then contributes nothing to
// the timeline — truthfully, since no build happened).
func (r ConfigRun) Run(ctx context.Context, b nsa.Budget) (*Outcome, error) {
	start := time.Now()
	tl := obs.NewTimeline()

	var (
		tr    *trace.Trace
		res   nsa.Result
		probe *obs.Probe
	)
	if ec := engineCacheFrom(ctx); ec != nil {
		key := r.Sys.Fingerprint() + "/" + r.Backend.String()
		prep := ec.get(key)
		if prep == nil {
			sp := tl.Start(obs.PhaseBuild)
			var err error
			prep, err = model.Prepare(r.Sys, r.Backend)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		sp := tl.Start(obs.PhaseInterpret)
		var err error
		tr, res, probe, err = prep.Simulate(ctx, b)
		sp.End()
		if err != nil {
			// A failed or canceled run may leave the runtime mid-flight;
			// the checked-out engine is simply not returned, so the next
			// run of this configuration rebuilds cleanly.
			return nil, err
		}
		ec.put(key, prep)
	} else {
		probe = &obs.Probe{}
		sp := tl.Start(obs.PhaseBuild)
		m, err := model.Build(r.Sys)
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = tl.Start(obs.PhaseInterpret)
		tr, res, err = m.SimulateEngine(ctx, nsa.Options{Budget: b, Probe: probe, Backend: r.Backend,
			Logger: obs.LoggerFrom(ctx), Flight: obs.FlightFrom(ctx)})
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	sp := tl.Start(obs.PhaseCheck)
	a, err := trace.Analyze(r.Sys, tr)
	sp.End()
	if err != nil {
		return nil, err
	}
	v := VerdictUnschedulable
	if a.Schedulable {
		v = VerdictSchedulable
	}
	return &Outcome{
		Verdict:   v,
		Sys:       r.Sys,
		Trace:     tr,
		Analysis:  a,
		Engine:    res,
		Telemetry: tl.Report("jobs", probe),
		Elapsed:   time.Since(start),
	}, nil
}

// XTARun compiles a model written in the XTA-like language and interprets
// it to the given horizon, the cmd/xtasim pipeline as a service job.
type XTARun struct {
	Src     string
	Horizon int64
	// Backend pins the engine backend for this run; the zero value lets
	// the pool's default apply. Not part of Key: backends are
	// outcome-interchangeable.
	Backend nsa.Backend
}

// Key hashes the source and horizon; the interpretation is deterministic,
// so equal sources at equal horizons yield interchangeable outcomes.
func (r XTARun) Key() string {
	h := sha256.New()
	var hz [8]byte
	binary.BigEndian.PutUint64(hz[:], uint64(r.Horizon))
	h.Write(hz[:])
	h.Write([]byte(r.Src))
	return "xta-" + hex.EncodeToString(h.Sum(nil))
}

// Run compiles and interprets the model, probed and phase-timed like
// ConfigRun (compilation counts as the build phase).
func (r XTARun) Run(ctx context.Context, b nsa.Budget) (*Outcome, error) {
	start := time.Now()
	tl := obs.NewTimeline()
	probe := &obs.Probe{}
	sp := tl.Start(obs.PhaseBuild)
	m, err := xta.Compile(r.Src)
	sp.End()
	if err != nil {
		return nil, err
	}
	tr := &nsa.SyncTrace{}
	eng := nsa.NewEngine(m.Net, nsa.Options{
		Horizon:   r.Horizon,
		Listeners: []nsa.Listener{tr},
		Budget:    b,
		Probe:     probe,
		Backend:   r.Backend,
		Logger:    obs.LoggerFrom(ctx),
		Flight:    obs.FlightFrom(ctx),
	})
	sp = tl.Start(obs.PhaseInterpret)
	res, err := eng.RunContext(ctx)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tl.Start(obs.PhaseExport)
	sync := diag.RenderTrace(tr.Events, m.Net)
	sp.End()
	return &Outcome{
		Verdict:   VerdictCompleted,
		Sync:      sync,
		Engine:    res,
		Telemetry: tl.Report("jobs", probe),
		Elapsed:   time.Since(start),
	}, nil
}

// Job is the registry record of one submitted run. Values returned by the
// Pool are snapshots: safe to read without synchronization, stale the
// moment they are taken.
type Job struct {
	ID       string
	Key      string
	Status   Status
	CacheHit bool
	// DiskHit marks a cache hit served from the persistent tier rather
	// than the in-memory cache (CacheHit is set in both cases).
	DiskHit bool
	// Trace is the job's anchor span in its request's trace, valid only
	// for jobs submitted through SubmitTraced on a tracing pool.
	Trace obs.TraceContext
	// PostmortemKey names the flight-recorder dump left behind when the
	// run ended in deadlock, watchdog kill, panic or injected fault
	// (retrievable via Pool.Postmortem); empty otherwise.
	PostmortemKey string

	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	// Outcome is set when Status is done. It may be shared with other
	// jobs via the cache; treat it as immutable.
	Outcome *Outcome

	// Err and Report are set when Status is failed or canceled: the raw
	// error and its structured diag classification.
	Err    error
	Report *diag.Report

	runner Runner
	budget nsa.Budget
	cancel context.CancelFunc
	done   chan struct{}

	// Watchdog bookkeeping: attempts counts watchdog requeues so far,
	// wedged marks the current attempt as deadlined, userCanceled
	// distinguishes a user cancel (terminal) from a watchdog kill
	// (requeueable). All guarded by the pool's registry lock.
	attempts     int
	wedged       bool
	userCanceled bool

	// postmortem is the in-process copy of the flight-recorder dump named
	// by PostmortemKey. Guarded by the pool's registry lock.
	postmortem *Postmortem
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

package jobs

import (
	"context"
	"reflect"
	"testing"

	"stopwatchsim/internal/model"
)

// TestPoolEngineReuse drives the per-worker prepared-engine cache through
// the pool with the result cache disabled (so repeat submissions really
// re-run): the second run of a configuration must Reset+Run the cached
// engine — counted in EngineReuses — and produce an outcome identical to
// the first, with a different configuration interleaved between them to
// probe for cross-configuration leakage.
func TestPoolEngineReuse(t *testing.T) {
	p := New(Options{Workers: 1, CacheSize: -1})
	defer p.Close()

	runOne := func(wcet int64) *Outcome {
		t.Helper()
		jb, err := p.Submit(ConfigRun{Sys: testSystem(wcet)})
		if err != nil {
			t.Fatal(err)
		}
		done, err := p.Wait(context.Background(), jb.ID)
		if err != nil {
			t.Fatal(err)
		}
		if done.Status != StatusDone {
			t.Fatalf("job status %s: %v", done.Status, done.Err)
		}
		if done.CacheHit {
			t.Fatal("result cache is disabled yet the job hit it")
		}
		return done.Outcome
	}

	first := runOne(9)
	other := runOne(5) // different fingerprint: must not contaminate the cached engine
	second := runOne(9)
	otherAgain := runOne(5)

	if got := p.Metrics().EngineReuses; got != 2 {
		t.Fatalf("EngineReuses = %d, want 2 (one per repeated configuration)", got)
	}
	for _, pair := range []struct {
		name string
		a, b *Outcome
	}{{"wcet=9", first, second}, {"wcet=5", other, otherAgain}} {
		if pair.a.Verdict != pair.b.Verdict {
			t.Errorf("%s: verdict %s vs %s", pair.name, pair.a.Verdict, pair.b.Verdict)
		}
		if !reflect.DeepEqual(pair.a.Trace.Events, pair.b.Trace.Events) {
			t.Errorf("%s: reused-engine trace diverged from the fresh run", pair.name)
		}
		if pair.a.Engine != pair.b.Engine {
			t.Errorf("%s: engine result %+v vs %+v", pair.name, pair.a.Engine, pair.b.Engine)
		}
		if pair.a.Analysis.Schedulable != pair.b.Analysis.Schedulable {
			t.Errorf("%s: schedulability verdicts diverged", pair.name)
		}
	}
}

// TestPoolEngineReuseDisabled pins the opt-out: EngineCache < 0 keeps
// every run on the one-shot build path.
func TestPoolEngineReuseDisabled(t *testing.T) {
	p := New(Options{Workers: 1, CacheSize: -1, EngineCache: -1})
	defer p.Close()
	for i := 0; i < 2; i++ {
		jb, err := p.Submit(ConfigRun{Sys: testSystem(9)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Wait(context.Background(), jb.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Metrics().EngineReuses; got != 0 {
		t.Fatalf("EngineReuses = %d with reuse disabled, want 0", got)
	}
}

// TestEngineCacheEviction exercises the LRU and checkout semantics
// directly: capacity bounds the entry count, get removes, and a dropped
// (never re-put) engine is gone.
func TestEngineCacheEviction(t *testing.T) {
	hits := 0
	c := newEngineCache(2, func() { hits++ })
	// Empty Prepared sentinels: the cache bookkeeping under test never
	// dereferences its values.
	c.put("a", &model.Prepared{})
	c.put("b", &model.Prepared{})
	c.put("c", &model.Prepared{}) // evicts a
	if _, ok := c.m["a"]; ok {
		t.Fatal("capacity-2 cache kept 3 entries")
	}
	if len(c.keys) != 2 {
		t.Fatalf("keys = %v, want 2 entries", c.keys)
	}
	c.get("b")
	if _, ok := c.m["b"]; ok {
		t.Fatal("get did not check the entry out")
	}
	if hits != 1 {
		t.Fatalf("onHit fired %d times, want 1", hits)
	}
	if c.get("b") != nil || hits != 1 {
		t.Fatal("checked-out entry served again")
	}
	if newEngineCache(-1, nil) != nil || newEngineCache(0, nil) != nil {
		t.Fatal("non-positive capacity must disable the cache")
	}
}

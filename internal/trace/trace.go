// Package trace defines system operation traces — sequences of job
// execution events — and implements the paper's schedulability criterion
// over them: a configuration is schedulable iff every job's execution
// intervals sum to its WCET (§2.1).
package trace

import (
	"fmt"
	"sort"

	"stopwatchsim/internal/config"
)

// EventType is the type of a system operation event.
type EventType uint8

// Event types from the paper: EX marks the start or resumption of a job's
// execution, PR its preemption, FIN its finish (completion or deadline).
const (
	EX EventType = iota
	PR
	FIN
)

var eventNames = [...]string{EX: "EX", PR: "PR", FIN: "FIN"}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// JobID identifies the Job-th job (0-based) of a task.
type JobID struct {
	Part, Task int
	Job        int
}

// Event is one trace event ⟨Type, Src, t⟩.
type Event struct {
	Type EventType
	Job  JobID
	Time int64
}

// Trace is a system operation trace: events appended in the order they were
// generated, with non-decreasing timestamps.
type Trace struct {
	Events []Event
}

// Append records an event.
func (tr *Trace) Append(t EventType, job JobID, time int64) {
	tr.Events = append(tr.Events, Event{Type: t, Job: job, Time: time})
}

// JobStat summarizes one job's behaviour in a trace.
type JobStat struct {
	Job      JobID
	Release  int64 // k·P
	Deadline int64 // k·P + D
	WCET     int64 // required execution time on the bound core

	ExecTime    int64 // Σ executed interval lengths
	Start       int64 // first EX, or -1
	Finish      int64 // FIN, or -1
	Preemptions int
	Completed   bool // finished with ExecTime == WCET within the deadline
}

// ResponseTime returns Finish-Release for completed jobs and -1 otherwise.
func (j *JobStat) ResponseTime() int64 {
	if !j.Completed {
		return -1
	}
	return j.Finish - j.Release
}

// Analysis is the result of checking a trace against the schedulability
// criterion.
type Analysis struct {
	Jobs        []JobStat
	Schedulable bool
	// Unschedulable lists the jobs violating the criterion, in job order.
	Unschedulable []JobID
	// TotalPreemptions across all jobs.
	TotalPreemptions int
}

// StructureError reports a malformed trace (bad event alternation or
// ordering), which indicates a defective model rather than an unschedulable
// configuration.
type StructureError struct {
	Index int
	Msg   string
}

func (e *StructureError) Error() string {
	return fmt.Sprintf("trace: event %d: %s", e.Index, e.Msg)
}

// Analyze checks tr against the schedulability criterion for sys. The trace
// must cover one hyperperiod starting at time 0. It returns an error only
// for structurally invalid traces; an unschedulable configuration is a
// valid result.
func Analyze(sys *config.System, tr *Trace) (*Analysis, error) {
	if err := tr.checkStructure(); err != nil {
		return nil, err
	}
	l := sys.Hyperperiod()

	// Index stats per job.
	idx := make(map[JobID]int)
	a := &Analysis{}
	for pi := range sys.Partitions {
		p := &sys.Partitions[pi]
		for ti := range p.Tasks {
			t := &p.Tasks[ti]
			wcet := sys.WCETOn(config.TaskRef{Part: pi, Task: ti})
			for k := int64(0); k < l/t.Period; k++ {
				job := JobID{Part: pi, Task: ti, Job: int(k)}
				idx[job] = len(a.Jobs)
				a.Jobs = append(a.Jobs, JobStat{
					Job:      job,
					Release:  k * t.Period,
					Deadline: k*t.Period + t.Deadline,
					WCET:     wcet,
					Start:    -1,
					Finish:   -1,
				})
			}
		}
	}

	running := make(map[JobID]int64) // job -> time of last EX
	for i, ev := range tr.Events {
		ji, ok := idx[ev.Job]
		if !ok {
			return nil, &StructureError{Index: i, Msg: fmt.Sprintf("event for unknown job %+v", ev.Job)}
		}
		js := &a.Jobs[ji]
		switch ev.Type {
		case EX:
			if _, r := running[ev.Job]; r {
				return nil, &StructureError{Index: i, Msg: fmt.Sprintf("EX for already executing job %+v", ev.Job)}
			}
			if js.Finish >= 0 {
				return nil, &StructureError{Index: i, Msg: fmt.Sprintf("EX after FIN for job %+v", ev.Job)}
			}
			running[ev.Job] = ev.Time
			if js.Start < 0 {
				js.Start = ev.Time
			}
		case PR:
			st, r := running[ev.Job]
			if !r {
				return nil, &StructureError{Index: i, Msg: fmt.Sprintf("PR for non-executing job %+v", ev.Job)}
			}
			delete(running, ev.Job)
			js.ExecTime += ev.Time - st
			js.Preemptions++
		case FIN:
			if js.Finish >= 0 {
				return nil, &StructureError{Index: i, Msg: fmt.Sprintf("duplicate FIN for job %+v", ev.Job)}
			}
			if st, r := running[ev.Job]; r {
				delete(running, ev.Job)
				js.ExecTime += ev.Time - st
			}
			js.Finish = ev.Time
		}
	}
	if len(running) != 0 {
		return nil, &StructureError{Index: len(tr.Events), Msg: fmt.Sprintf("%d jobs still executing at end of trace", len(running))}
	}

	a.Schedulable = true
	for i := range a.Jobs {
		js := &a.Jobs[i]
		js.Completed = js.Finish >= 0 && js.ExecTime == js.WCET && js.Finish <= js.Deadline
		a.TotalPreemptions += js.Preemptions
		if !js.Completed {
			a.Schedulable = false
			a.Unschedulable = append(a.Unschedulable, js.Job)
		}
	}
	return a, nil
}

// checkStructure validates global event ordering and per-job alternation.
func (tr *Trace) checkStructure() error {
	last := int64(0)
	state := make(map[JobID]uint8) // 0 idle, 1 executing, 2 finished
	for i, ev := range tr.Events {
		if ev.Time < last {
			return &StructureError{Index: i, Msg: fmt.Sprintf("timestamp %d before previous %d", ev.Time, last)}
		}
		last = ev.Time
		switch ev.Type {
		case EX:
			if state[ev.Job] != 0 {
				return &StructureError{Index: i, Msg: fmt.Sprintf("EX while job %+v in state %d", ev.Job, state[ev.Job])}
			}
			state[ev.Job] = 1
		case PR:
			if state[ev.Job] != 1 {
				return &StructureError{Index: i, Msg: fmt.Sprintf("PR while job %+v in state %d", ev.Job, state[ev.Job])}
			}
			state[ev.Job] = 0
		case FIN:
			if state[ev.Job] == 2 {
				return &StructureError{Index: i, Msg: fmt.Sprintf("FIN while job %+v already finished", ev.Job)}
			}
			state[ev.Job] = 2
		default:
			return &StructureError{Index: i, Msg: fmt.Sprintf("unknown event type %d", ev.Type)}
		}
	}
	return nil
}

// TaskStat aggregates response-time statistics of one task over a trace.
type TaskStat struct {
	Task      config.TaskRef
	Jobs      int
	Completed int
	WCRT      int64 // worst-case observed response time, -1 when no job completed
	BCRT      int64 // best-case observed response time, -1 when no job completed
	AvgRT     float64
}

// TaskStats aggregates the analysis per task, in (partition, task) order.
func (a *Analysis) TaskStats() []TaskStat {
	type key struct{ p, t int }
	m := make(map[key]*TaskStat)
	var order []key
	for i := range a.Jobs {
		js := &a.Jobs[i]
		k := key{js.Job.Part, js.Job.Task}
		st, ok := m[k]
		if !ok {
			st = &TaskStat{Task: config.TaskRef{Part: k.p, Task: k.t}, WCRT: -1, BCRT: -1}
			m[k] = st
			order = append(order, k)
		}
		st.Jobs++
		if rt := js.ResponseTime(); rt >= 0 {
			st.Completed++
			if st.WCRT < rt {
				st.WCRT = rt
			}
			if st.BCRT < 0 || rt < st.BCRT {
				st.BCRT = rt
			}
			st.AvgRT += float64(rt)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].p != order[j].p {
			return order[i].p < order[j].p
		}
		return order[i].t < order[j].t
	})
	out := make([]TaskStat, 0, len(order))
	for _, k := range order {
		st := m[k]
		if st.Completed > 0 {
			st.AvgRT /= float64(st.Completed)
		}
		out = append(out, *st)
	}
	return out
}

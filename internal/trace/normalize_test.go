package trace

import (
	"testing"
	"testing/quick"
)

func TestNormalizeZeroWidthExPr(t *testing.T) {
	tr := &Trace{}
	tr.Append(EX, j(0, 0, 0), 5)
	tr.Append(PR, j(0, 0, 0), 5) // zero-width interval: dropped
	tr.Append(EX, j(0, 0, 0), 6)
	tr.Append(FIN, j(0, 0, 0), 8)
	n := tr.Normalize()
	if len(n.Events) != 2 || n.Events[0].Time != 6 || n.Events[1].Type != FIN {
		t.Errorf("normalized = %+v", n.Events)
	}
}

func TestNormalizePrExMerge(t *testing.T) {
	tr := &Trace{}
	tr.Append(EX, j(0, 0, 0), 1)
	tr.Append(PR, j(0, 0, 0), 4)
	tr.Append(EX, j(0, 0, 0), 4) // resumed at the same instant: merged
	tr.Append(FIN, j(0, 0, 0), 7)
	n := tr.Normalize()
	if len(n.Events) != 2 {
		t.Fatalf("normalized = %+v", n.Events)
	}
	if n.Events[0] != (Event{EX, j(0, 0, 0), 1}) || n.Events[1] != (Event{FIN, j(0, 0, 0), 7}) {
		t.Errorf("normalized = %+v", n.Events)
	}
}

func TestNormalizePrFin(t *testing.T) {
	tr := &Trace{}
	tr.Append(EX, j(0, 0, 0), 1)
	tr.Append(PR, j(0, 0, 0), 6)
	tr.Append(FIN, j(0, 0, 0), 6) // preempt right before kill: PR dropped
	n := tr.Normalize()
	if len(n.Events) != 2 || n.Events[1].Type != FIN {
		t.Errorf("normalized = %+v", n.Events)
	}
}

func TestNormalizeCascade(t *testing.T) {
	// EX@3 PR@3 EX@3 PR@5: first pair drops, then PR@3/EX@3... the rules
	// cascade to a single non-degenerate interval.
	tr := &Trace{}
	tr.Append(EX, j(0, 0, 0), 3)
	tr.Append(PR, j(0, 0, 0), 3)
	tr.Append(EX, j(0, 0, 0), 3)
	tr.Append(PR, j(0, 0, 0), 5)
	tr.Append(EX, j(0, 0, 0), 5)
	tr.Append(FIN, j(0, 0, 0), 9)
	n := tr.Normalize()
	if len(n.Events) != 2 {
		t.Fatalf("normalized = %+v", n.Events)
	}
}

func TestNormalizeKeepsDistinctJobsApart(t *testing.T) {
	tr := &Trace{}
	tr.Append(EX, j(0, 0, 0), 5)
	tr.Append(PR, j(0, 1, 0), 5) // different task: must not pair with EX above
	tr.Append(EX, j(0, 1, 0), 5)
	tr.Append(FIN, j(0, 1, 0), 6)
	tr.Append(FIN, j(0, 0, 0), 7)
	// For job (0,1,0): PR@5 then EX@5 are adjacent within the job and merge;
	// but the PR had no preceding EX for that job, so they still merge as a
	// degenerate pair — Normalize only guarantees interval preservation.
	n := tr.Normalize()
	for _, ev := range n.Events {
		if ev.Job == j(0, 0, 0) && ev.Type == PR {
			t.Errorf("job (0,0,0) gained a PR: %+v", n.Events)
		}
	}
}

func TestEqualAndEqualAsSets(t *testing.T) {
	a := &Trace{}
	a.Append(EX, j(0, 0, 0), 0)
	a.Append(EX, j(0, 1, 0), 0)
	b := &Trace{}
	b.Append(EX, j(0, 1, 0), 0)
	b.Append(EX, j(0, 0, 0), 0)
	if a.Equal(b) {
		t.Error("order differs; Equal must be false")
	}
	if !a.EqualAsSets(b) {
		t.Error("same multiset; EqualAsSets must be true")
	}
	c := &Trace{}
	c.Append(EX, j(0, 1, 0), 0)
	if a.EqualAsSets(c) || a.Equal(c) {
		t.Error("different lengths must not compare equal")
	}
	d := &Trace{}
	d.Append(EX, j(0, 1, 0), 0)
	d.Append(EX, j(0, 1, 0), 0)
	if a.EqualAsSets(d) {
		t.Error("different multiplicities must not compare equal")
	}
	if !a.Equal(a) {
		t.Error("Equal must be reflexive")
	}
}

// Property: normalization preserves every job's total executed time and
// finish time, so Analyze verdicts cannot change.
func TestQuickNormalizePreservesExecTime(t *testing.T) {
	type step struct {
		Kind uint8 // 0 run-interval, 1 zero-width bounce
		Dur  uint8
	}
	f := func(steps []step, gap uint8) bool {
		tr := &Trace{}
		time := int64(0)
		execTotal := int64(0)
		running := false
		for _, s := range steps {
			if s.Kind%2 == 0 {
				if running {
					tr.Append(PR, j(0, 0, 0), time)
					running = false
				}
				tr.Append(EX, j(0, 0, 0), time)
				d := int64(s.Dur % 7)
				time += d
				execTotal += d
				tr.Append(PR, j(0, 0, 0), time)
			} else {
				// zero-width bounce
				tr.Append(EX, j(0, 0, 0), time)
				tr.Append(PR, j(0, 0, 0), time)
			}
			time += int64(gap%3) + 1
		}
		tr.Append(EX, j(0, 0, 0), time)
		tr.Append(FIN, j(0, 0, 0), time+2)
		execTotal += 2

		n := tr.Normalize()
		// Re-derive exec time from the normalized trace.
		var got int64
		var start int64 = -1
		for _, ev := range n.Events {
			switch ev.Type {
			case EX:
				if start >= 0 {
					return false // malformed normalization
				}
				start = ev.Time
			case PR, FIN:
				if start < 0 {
					return false
				}
				got += ev.Time - start
				start = -1
			}
		}
		return got == execTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

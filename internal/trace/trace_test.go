package trace

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
)

// oneCore returns a single-core system: P1 has tasks T1 (P=20, D=20, C=5)
// and T2 (P=10, D=10, C=2); full window.
func oneCore() *config.System {
	return &config.System{
		Name:      "one",
		CoreTypes: []string{"std"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "T1", Priority: 1, WCET: []int64{5}, Period: 20, Deadline: 20},
					{Name: "T2", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 20}},
			},
		},
	}
}

func j(p, t, k int) JobID { return JobID{Part: p, Task: t, Job: k} }

// goodTrace builds a schedulable trace for oneCore:
// T2#0 runs [0,2); T1#0 runs [2,7); T2#1 runs [10,12).
func goodTrace() *Trace {
	tr := &Trace{}
	tr.Append(EX, j(0, 1, 0), 0)
	tr.Append(FIN, j(0, 1, 0), 2)
	tr.Append(EX, j(0, 0, 0), 2)
	tr.Append(FIN, j(0, 0, 0), 7)
	tr.Append(EX, j(0, 1, 1), 10)
	tr.Append(FIN, j(0, 1, 1), 12)
	return tr
}

func TestAnalyzeSchedulable(t *testing.T) {
	sys := oneCore()
	a, err := Analyze(sys, goodTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedulable {
		t.Fatalf("should be schedulable: %+v", a.Unschedulable)
	}
	if len(a.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(a.Jobs))
	}
	for _, js := range a.Jobs {
		if !js.Completed {
			t.Errorf("job %+v not completed", js.Job)
		}
	}
}

func TestAnalyzeWithPreemption(t *testing.T) {
	sys := oneCore()
	// T1#0 starts at 0, preempted at 1 by T2#0, resumes at 3, finishes at 7.
	tr := &Trace{}
	tr.Append(EX, j(0, 0, 0), 0)
	tr.Append(PR, j(0, 0, 0), 1)
	tr.Append(EX, j(0, 1, 0), 1)
	tr.Append(FIN, j(0, 1, 0), 3)
	tr.Append(EX, j(0, 0, 0), 3)
	tr.Append(FIN, j(0, 0, 0), 7)
	tr.Append(EX, j(0, 1, 1), 10)
	tr.Append(FIN, j(0, 1, 1), 12)
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedulable {
		t.Fatalf("should be schedulable: %+v", a.Unschedulable)
	}
	js := a.Jobs[0] // T1#0
	if js.ExecTime != 5 || js.Preemptions != 1 || js.Start != 0 || js.Finish != 7 {
		t.Errorf("T1#0 = %+v", js)
	}
	if rt := js.ResponseTime(); rt != 7 {
		t.Errorf("response = %d, want 7", rt)
	}
	if a.TotalPreemptions != 1 {
		t.Errorf("preemptions = %d", a.TotalPreemptions)
	}
}

func TestAnalyzeMissingJob(t *testing.T) {
	sys := oneCore()
	tr := goodTrace()
	tr.Events = tr.Events[:4] // drop T2#1 entirely
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Fatal("missing job must make the trace unschedulable")
	}
	if len(a.Unschedulable) != 1 || a.Unschedulable[0] != j(0, 1, 1) {
		t.Errorf("unschedulable = %+v", a.Unschedulable)
	}
}

func TestAnalyzeShortExecution(t *testing.T) {
	sys := oneCore()
	// T1#0 gets only 3 of its 5 ticks before FIN (deadline kill).
	tr := &Trace{}
	tr.Append(EX, j(0, 1, 0), 0)
	tr.Append(FIN, j(0, 1, 0), 2)
	tr.Append(EX, j(0, 0, 0), 2)
	tr.Append(PR, j(0, 0, 0), 5)
	tr.Append(FIN, j(0, 0, 0), 20)
	tr.Append(EX, j(0, 1, 1), 10)
	tr.Append(FIN, j(0, 1, 1), 12)
	_, err := Analyze(sys, tr)
	if err == nil {
		t.Fatal("expected structure error: FIN after PR at later time with EX missing is fine, but timestamps go backwards here")
	}
}

func TestAnalyzeDeadlineKill(t *testing.T) {
	sys := oneCore()
	tr := &Trace{}
	tr.Append(EX, j(0, 1, 0), 0)
	tr.Append(FIN, j(0, 1, 0), 2)
	tr.Append(EX, j(0, 0, 0), 2)
	tr.Append(PR, j(0, 0, 0), 5) // only 3 ticks executed
	tr.Append(EX, j(0, 1, 1), 10)
	tr.Append(FIN, j(0, 1, 1), 12)
	tr.Append(FIN, j(0, 0, 0), 20) // killed at deadline
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Fatal("short job must be unschedulable")
	}
	if a.Jobs[0].ExecTime != 3 || a.Jobs[0].Completed {
		t.Errorf("T1#0 = %+v", a.Jobs[0])
	}
}

func TestAnalyzeLateCompletion(t *testing.T) {
	sys := oneCore()
	// T2#1 released at 10, deadline 20, finishes at 21 with full exec: late.
	tr := goodTrace()
	tr.Events[5].Time = 21
	tr.Events[4].Time = 19
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Fatal("late job must be unschedulable")
	}
}

func TestStructureErrors(t *testing.T) {
	sys := oneCore()
	cases := []struct {
		name string
		evs  []Event
		sub  string
	}{
		{"double EX", []Event{{EX, j(0, 0, 0), 0}, {EX, j(0, 0, 0), 1}}, "EX while"},
		{"PR without EX", []Event{{PR, j(0, 0, 0), 0}}, "PR while"},
		{"double FIN", []Event{{EX, j(0, 0, 0), 0}, {FIN, j(0, 0, 0), 1}, {FIN, j(0, 0, 0), 2}}, "already finished"},
		{"time reversal", []Event{{EX, j(0, 0, 0), 5}, {FIN, j(0, 0, 0), 1}}, "before previous"},
		{"unknown job", []Event{{EX, j(5, 5, 5), 0}}, "unknown job"},
		{"EX after FIN", []Event{{EX, j(0, 0, 0), 0}, {FIN, j(0, 0, 0), 1}, {EX, j(0, 0, 0), 2}}, "EX while"},
		{"dangling EX", []Event{{EX, j(0, 0, 0), 0}}, "still executing"},
	}
	for _, c := range cases {
		tr := &Trace{Events: c.evs}
		_, err := Analyze(sys, tr)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.sub)
		}
	}
}

func TestUnknownJobOutOfRange(t *testing.T) {
	sys := oneCore()
	tr := &Trace{}
	tr.Append(EX, JobID{Part: 0, Task: 0, Job: 99}, 0) // job index beyond L/P
	tr.Append(FIN, JobID{Part: 0, Task: 0, Job: 99}, 5)
	_, err := Analyze(sys, tr)
	if err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("err = %v", err)
	}
}

func TestTaskStats(t *testing.T) {
	sys := oneCore()
	a, err := Analyze(sys, goodTrace())
	if err != nil {
		t.Fatal(err)
	}
	stats := a.TaskStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %d, want 2", len(stats))
	}
	t1 := stats[0]
	if t1.Jobs != 1 || t1.Completed != 1 || t1.WCRT != 7 || t1.BCRT != 7 {
		t.Errorf("T1 stats = %+v", t1)
	}
	t2 := stats[1]
	if t2.Jobs != 2 || t2.WCRT != 2 || t2.BCRT != 2 || t2.AvgRT != 2 {
		t.Errorf("T2 stats = %+v", t2)
	}
}

func TestGanttAndFormat(t *testing.T) {
	sys := oneCore()
	tr := goodTrace()
	g := Gantt(sys, tr, 1)
	if !strings.Contains(g, "c1") || !strings.Contains(g, "legend") {
		t.Errorf("gantt = %q", g)
	}
	// Column 0-1 must show T2 (glyph B), 2-6 T1 (glyph A), 7 idle.
	line := strings.Split(g, "\n")[1]
	cells := line[strings.Index(line, "|")+1:]
	if cells[0] != 'B' || cells[2] != 'A' || cells[7] != '.' {
		t.Errorf("gantt row = %q", line)
	}

	f := tr.Format(sys)
	if !strings.Contains(f, "EX P1.T2#0") || !strings.Contains(f, "FIN P1.T1#0") {
		t.Errorf("format = %q", f)
	}

	a, _ := Analyze(sys, tr)
	sum := a.Summary(sys)
	if !strings.Contains(sum, "SCHEDULABLE") {
		t.Errorf("summary = %q", sum)
	}

	tr.Events = tr.Events[:4]
	a2, _ := Analyze(sys, tr)
	sum2 := a2.Summary(sys)
	if !strings.Contains(sum2, "NOT SCHEDULABLE") || !strings.Contains(sum2, "violating jobs") {
		t.Errorf("summary2 = %q", sum2)
	}
}

func TestEventTypeString(t *testing.T) {
	if EX.String() != "EX" || PR.String() != "PR" || FIN.String() != "FIN" {
		t.Error("event names wrong")
	}
	if !strings.Contains(EventType(9).String(), "9") {
		t.Error("unknown event name")
	}
}

package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	sys := oneCore()
	tr := goodTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, sys); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 { // header + 6 events
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "time" || recs[1][1] != "EX" || recs[1][3] != "T2" {
		t.Errorf("rows = %v", recs[:2])
	}
	if recs[4][1] != "FIN" || recs[4][0] != "7" {
		t.Errorf("row 4 = %v", recs[4])
	}
}

func TestWriteJSON(t *testing.T) {
	sys := oneCore()
	tr := goodTrace()
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sys, tr, a); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		System      string `json:"system"`
		Hyperperiod int64  `json:"hyperperiod"`
		Schedulable bool   `json:"schedulable"`
		Events      []struct {
			Time  int64  `json:"time"`
			Event string `json:"event"`
			Task  string `json:"task"`
		} `json:"events"`
		Jobs []struct {
			Task      string `json:"task"`
			Response  int64  `json:"response"`
			Completed bool   `json:"completed"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if rep.System != "one" || rep.Hyperperiod != 20 || !rep.Schedulable {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Events) != 6 || rep.Events[0].Event != "EX" || rep.Events[0].Task != "T2" {
		t.Errorf("events = %+v", rep.Events)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if !j.Completed || j.Response < 0 {
			t.Errorf("job = %+v", j)
		}
	}
	if !strings.Contains(buf.String(), "\"preemptions\"") {
		t.Error("missing preemptions field")
	}
}

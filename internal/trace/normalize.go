package trace

// Normalize returns a canonical form of the trace for equivalence
// comparison, per the paper's notion that traces are "equivalent for
// schedulability analysis purposes": zero-effect event patterns arising
// from different interleavings of simultaneous transitions are removed.
// Four rewrite rules are applied per job to a fixpoint:
//
//  1. EX@t directly followed by PR@t (a zero-length executing interval that
//     is preempted) — both dropped;
//  2. PR@t directly followed by EX@t (a preemption undone at the same
//     instant) — both dropped, merging the two intervals;
//  3. PR@t directly followed by FIN@t (a preemption immediately before the
//     job finishes) — the PR dropped;
//  4. a FIN whose job retains no EX (every executing interval was
//     zero-width) — dropped, making the job's subtrace empty like that of
//     a job that never executed.
//
// None of the rules changes any job's set of non-degenerate executing
// intervals, so Analyze yields the same verdict on the normalized trace.
// Events keep their global time order.
func (tr *Trace) Normalize() *Trace {
	// Work on per-job subsequences of indices into Events.
	perJob := make(map[JobID][]int)
	for i, ev := range tr.Events {
		perJob[ev.Job] = append(perJob[ev.Job], i)
	}
	drop := make([]bool, len(tr.Events))
	for _, idxs := range perJob {
		changed := true
		for changed {
			changed = false
			// live view of the job's remaining events
			var live []int
			for _, i := range idxs {
				if !drop[i] {
					live = append(live, i)
				}
			}
			for k := 0; k+1 < len(live); k++ {
				a, b := tr.Events[live[k]], tr.Events[live[k+1]]
				if a.Time != b.Time {
					continue
				}
				switch {
				case a.Type == EX && b.Type == PR:
					drop[live[k]], drop[live[k+1]] = true, true
					changed = true
				case a.Type == PR && b.Type == EX:
					drop[live[k]], drop[live[k+1]] = true, true
					changed = true
				case a.Type == PR && b.Type == FIN:
					drop[live[k]] = true
					changed = true
				}
				if changed {
					break
				}
			}
		}
		// Rule 4: a FIN without any surviving EX.
		hasEX := false
		for _, i := range idxs {
			if !drop[i] && tr.Events[i].Type == EX {
				hasEX = true
				break
			}
		}
		if !hasEX {
			for _, i := range idxs {
				if !drop[i] && tr.Events[i].Type == FIN {
					drop[i] = true
				}
			}
		}
	}
	out := &Trace{}
	for i, ev := range tr.Events {
		if !drop[i] {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// Equal reports whether two traces contain identical event sequences.
func (tr *Trace) Equal(other *Trace) bool {
	if len(tr.Events) != len(other.Events) {
		return false
	}
	for i := range tr.Events {
		if tr.Events[i] != other.Events[i] {
			return false
		}
	}
	return true
}

// EqualAsSets reports whether two traces contain the same multiset of
// events, ignoring order among same-time events. This is the equivalence
// the determinism theorem asserts across interpretation orders.
func (tr *Trace) EqualAsSets(other *Trace) bool {
	if len(tr.Events) != len(other.Events) {
		return false
	}
	count := make(map[Event]int, len(tr.Events))
	for _, ev := range tr.Events {
		count[ev]++
	}
	for _, ev := range other.Events {
		count[ev]--
		if count[ev] < 0 {
			return false
		}
	}
	return true
}

package trace

import (
	"fmt"
	"sort"
	"strings"

	"stopwatchsim/internal/config"
)

// Gantt renders an ASCII chart of the trace: one row per core, one column
// per scale ticks, each cell showing the task executing there (first letter
// rows legend below) or '.' for idle. Intended for examples and debugging,
// not for huge traces.
func Gantt(sys *config.System, tr *Trace, scale int64) string {
	if scale <= 0 {
		scale = 1
	}
	l := sys.Hyperperiod()
	cols := int((l + scale - 1) / scale)

	// Assign a rune to every task, in declaration order: A, B, ... a, b, ...
	glyphs := []rune("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
	type key struct{ p, t int }
	sym := make(map[key]rune)
	var legend []string
	gi := 0
	for pi := range sys.Partitions {
		for ti := range sys.Partitions[pi].Tasks {
			g := rune('?')
			if gi < len(glyphs) {
				g = glyphs[gi]
			}
			gi++
			sym[key{pi, ti}] = g
			legend = append(legend, fmt.Sprintf("%c=%s", g, sys.TaskName(config.TaskRef{Part: pi, Task: ti})))
		}
	}

	rows := make([][]rune, len(sys.Cores))
	for i := range rows {
		rows[i] = []rune(strings.Repeat(".", cols))
	}

	// Replay intervals.
	running := make(map[JobID]int64)
	paint := func(job JobID, from, to int64) {
		core := sys.Partitions[job.Part].Core
		g := sym[key{job.Part, job.Task}]
		for c := from / scale; c*scale < to && int(c) < cols; c++ {
			rows[core][c] = g
		}
	}
	for _, ev := range tr.Events {
		switch ev.Type {
		case EX:
			running[ev.Job] = ev.Time
		case PR, FIN:
			if st, ok := running[ev.Job]; ok {
				paint(ev.Job, st, ev.Time)
				delete(running, ev.Job)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time 0..%d, %d ticks/column\n", l, scale)
	for ci := range sys.Cores {
		fmt.Fprintf(&b, "%-8s |%s|\n", sys.Cores[ci].Name, string(rows[ci]))
	}
	b.WriteString("legend: " + strings.Join(legend, " ") + "\n")
	return b.String()
}

// Format renders the trace as one line per event, for golden tests and the
// command-line tools.
func (tr *Trace) Format(sys *config.System) string {
	var b strings.Builder
	for _, ev := range tr.Events {
		fmt.Fprintf(&b, "%6d %s %s#%d\n", ev.Time, ev.Type,
			sys.TaskName(config.TaskRef{Part: ev.Job.Part, Task: ev.Job.Task}), ev.Job.Job)
	}
	return b.String()
}

// Summary renders a human-readable analysis report.
func (a *Analysis) Summary(sys *config.System) string {
	var b strings.Builder
	verdict := "SCHEDULABLE"
	if !a.Schedulable {
		verdict = "NOT SCHEDULABLE"
	}
	fmt.Fprintf(&b, "%s: %d jobs, %d preemptions\n", verdict, len(a.Jobs), a.TotalPreemptions)
	for _, st := range a.TaskStats() {
		name := sys.TaskName(st.Task)
		if st.Completed == st.Jobs {
			fmt.Fprintf(&b, "  %-20s %3d/%-3d jobs ok, response best/avg/worst = %d/%.1f/%d\n",
				name, st.Completed, st.Jobs, st.BCRT, st.AvgRT, st.WCRT)
		} else {
			fmt.Fprintf(&b, "  %-20s %3d/%-3d jobs ok  ** MISSED **\n", name, st.Completed, st.Jobs)
		}
	}
	if len(a.Unschedulable) > 0 {
		names := make([]string, 0, len(a.Unschedulable))
		for _, j := range a.Unschedulable {
			names = append(names, fmt.Sprintf("%s#%d",
				sys.TaskName(config.TaskRef{Part: j.Part, Task: j.Task}), j.Job))
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  violating jobs: %s\n", strings.Join(names, ", "))
	}
	return b.String()
}

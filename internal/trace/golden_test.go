package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// The golden files pin the exact bytes of the trace export formats — the
// wire contract of cmd/saserve's streaming endpoints (and of cmd/simulate's
// -json/-csv flags). A diff here means the HTTP API changed shape: update
// the goldens deliberately with `go test ./internal/trace -update` and
// treat it as an API change, not a refactor.
func TestGoldenExports(t *testing.T) {
	sys := oneCore()
	tr := goodTrace()
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		render func() ([]byte, error)
	}{
		{"gantt.golden", func() ([]byte, error) {
			return []byte(Gantt(sys, tr, 1)), nil
		}},
		{"format.golden", func() ([]byte, error) {
			return []byte(tr.Format(sys)), nil
		}},
		{"summary.golden", func() ([]byte, error) {
			return []byte(a.Summary(sys)), nil
		}},
		{"report.json.golden", func() ([]byte, error) {
			var buf bytes.Buffer
			err := WriteJSON(&buf, sys, tr, a)
			return buf.Bytes(), err
		}},
		{"trace.csv.golden", func() ([]byte, error) {
			var buf bytes.Buffer
			err := tr.WriteCSV(&buf, sys)
			return buf.Bytes(), err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/trace -update` to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stopwatchsim/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// The golden files pin the exact bytes of the trace export formats — the
// wire contract of cmd/saserve's streaming endpoints (and of cmd/simulate's
// -json/-csv flags). A diff here means the HTTP API changed shape: update
// the goldens deliberately with `go test ./internal/trace -update` and
// treat it as an API change, not a refactor.
func TestGoldenExports(t *testing.T) {
	sys := oneCore()
	tr := goodTrace()
	a, err := Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		render func() ([]byte, error)
	}{
		{"gantt.golden", func() ([]byte, error) {
			return []byte(Gantt(sys, tr, 1)), nil
		}},
		{"format.golden", func() ([]byte, error) {
			return []byte(tr.Format(sys)), nil
		}},
		{"summary.golden", func() ([]byte, error) {
			return []byte(a.Summary(sys)), nil
		}},
		{"report.json.golden", func() ([]byte, error) {
			var buf bytes.Buffer
			err := WriteJSON(&buf, sys, tr, a)
			return buf.Bytes(), err
		}},
		{"trace.csv.golden", func() ([]byte, error) {
			var buf bytes.Buffer
			err := tr.WriteCSV(&buf, sys)
			return buf.Bytes(), err
		}},
		// The RunReport schema is the wire contract of GET
		// /v1/jobs/{id}/report and of the telemetry block embedded in
		// the -report JSON of the CLIs. Pinned from a fixed literal (not
		// a live run) so the bytes are deterministic.
		{"runreport.json.golden", func() ([]byte, error) {
			run := &obs.RunReport{
				Tool: "simulate",
				Phases: []obs.PhaseSpan{
					{Name: obs.PhaseParse, StartNS: 1_000, DurNS: 120_000},
					{Name: obs.PhaseBuild, StartNS: 125_000, DurNS: 480_000},
					{Name: obs.PhaseIndex, Depth: 1, StartNS: 130_000, DurNS: 90_000},
					{Name: obs.PhaseInterpret, StartNS: 610_000, DurNS: 2_400_000},
					{Name: obs.PhaseCheck, StartNS: 3_015_000, DurNS: 55_000},
					{Name: obs.PhaseExport, StartNS: 3_075_000, DurNS: 30_000},
				},
				Counters: obs.Counters{
					Steps: 31, Actions: 26, Delays: 5,
					SyncInternal: 4, SyncBinary: 22, SyncBroadcast: 0,
					GuardEvals: 210, GuardCompiled: 195, GuardOpaque: 15,
					EnabledCalls: 32, Recomputes: 64, CacheReuses: 30,
					DirtyTotal: 64, DirtyMax: 4,
					HeapPushes: 38, HeapPops: 6, HeapStale: 2,
				},
				TotalNS: 3_110_000,
			}
			b, err := json.MarshalIndent(run, "", "  ")
			return append(b, '\n'), err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/trace -update` to create it)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", tc.name, got, want)
			}
		})
	}
}

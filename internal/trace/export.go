package trace

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"stopwatchsim/internal/config"
)

// WriteCSV writes the trace as CSV rows (time, event, partition, task, job)
// with a header, using configured names.
func (tr *Trace) WriteCSV(w io.Writer, sys *config.System) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "event", "partition", "task", "job"}); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		rec := []string{
			strconv.FormatInt(ev.Time, 10),
			ev.Type.String(),
			sys.Partitions[ev.Job.Part].Name,
			sys.Partitions[ev.Job.Part].Tasks[ev.Job.Task].Name,
			strconv.Itoa(ev.Job.Job),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonEvent is the JSON wire form of an event.
type jsonEvent struct {
	Time      int64  `json:"time"`
	Event     string `json:"event"`
	Partition string `json:"partition"`
	Task      string `json:"task"`
	Job       int    `json:"job"`
}

// jsonJob is the JSON wire form of a job statistic.
type jsonJob struct {
	Partition   string `json:"partition"`
	Task        string `json:"task"`
	Job         int    `json:"job"`
	Release     int64  `json:"release"`
	Deadline    int64  `json:"deadline"`
	WCET        int64  `json:"wcet"`
	Start       int64  `json:"start"`
	Finish      int64  `json:"finish"`
	ExecTime    int64  `json:"execTime"`
	Response    int64  `json:"response"`
	Preemptions int    `json:"preemptions"`
	Completed   bool   `json:"completed"`
}

// jsonReport is the JSON wire form of a full analysis report.
type jsonReport struct {
	System      string      `json:"system"`
	Hyperperiod int64       `json:"hyperperiod"`
	Schedulable bool        `json:"schedulable"`
	Events      []jsonEvent `json:"events"`
	Jobs        []jsonJob   `json:"jobs"`
}

// WriteJSON writes the trace and its analysis as one JSON document.
func WriteJSON(w io.Writer, sys *config.System, tr *Trace, a *Analysis) error {
	rep := jsonReport{
		System:      sys.Name,
		Hyperperiod: sys.Hyperperiod(),
		Schedulable: a.Schedulable,
	}
	for _, ev := range tr.Events {
		rep.Events = append(rep.Events, jsonEvent{
			Time:      ev.Time,
			Event:     ev.Type.String(),
			Partition: sys.Partitions[ev.Job.Part].Name,
			Task:      sys.Partitions[ev.Job.Part].Tasks[ev.Job.Task].Name,
			Job:       ev.Job.Job,
		})
	}
	for i := range a.Jobs {
		j := &a.Jobs[i]
		rep.Jobs = append(rep.Jobs, jsonJob{
			Partition:   sys.Partitions[j.Job.Part].Name,
			Task:        sys.Partitions[j.Job.Part].Tasks[j.Job.Task].Name,
			Job:         j.Job.Job,
			Release:     j.Release,
			Deadline:    j.Deadline,
			WCET:        j.WCET,
			Start:       j.Start,
			Finish:      j.Finish,
			ExecTime:    j.ExecTime,
			Response:    j.ResponseTime(),
			Preemptions: j.Preemptions,
			Completed:   j.Completed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

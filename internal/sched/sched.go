// Package sched is the configuration-search substrate of §4 (the paper's
// ref [8] scheduling tool): given a design problem — cores, partitions with
// tasks, and a data-flow graph, but no binding or windows — it searches
// candidate configurations, using the stopwatch-automata model as the
// schedulability test on every iteration, and returns the best schedulable
// configuration found.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

// PartitionSpec is a partition before binding and window assignment.
type PartitionSpec struct {
	Name   string
	Tasks  []config.Task
	Policy config.Policy
}

// Problem is a configuration design problem.
type Problem struct {
	Name       string
	CoreTypes  []string
	Cores      []config.Core
	Partitions []PartitionSpec
	Messages   []config.Message // indices refer to Partitions order
}

// Objective scores a schedulable candidate; lower is better. The default
// maximizes the minimum relative slack across jobs.
type Objective func(sys *config.System, a *trace.Analysis) float64

// MinSlackObjective returns the negated minimum relative laxity
// (deadline − finish)/(deadline − release) over all jobs: configurations
// whose tightest job has more headroom score better (lower).
func MinSlackObjective(sys *config.System, a *trace.Analysis) float64 {
	minSlack := 1.0
	for i := range a.Jobs {
		j := &a.Jobs[i]
		span := float64(j.Deadline - j.Release)
		if span <= 0 {
			continue
		}
		slack := float64(j.Deadline-j.Finish) / span
		if slack < minSlack {
			minSlack = slack
		}
	}
	return -minSlack
}

// Options configure the search.
type Options struct {
	// Candidates bounds the number of bindings tried (default 32).
	Candidates int
	// Seed drives the randomized bindings beyond the deterministic
	// heuristics.
	Seed int64
	// Objective scores schedulable candidates (default MinSlackObjective).
	Objective Objective
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Sys         *config.System
	Analysis    *trace.Analysis
	Score       float64
	Schedulable bool
	// Binding[i] is the core index of partition i.
	Binding []int
}

// Result summarizes a search.
type Result struct {
	Best        *Candidate // nil when nothing schedulable was found
	Tried       int
	Schedulable int
}

// Search runs the configuration search.
func Search(p *Problem, opts Options) (*Result, error) {
	if len(p.Partitions) == 0 || len(p.Cores) == 0 {
		return nil, fmt.Errorf("sched: empty problem")
	}
	if opts.Candidates == 0 {
		opts.Candidates = 32
	}
	if opts.Objective == nil {
		opts.Objective = MinSlackObjective
	}
	r := rand.New(rand.NewSource(opts.Seed))

	res := &Result{}
	seen := make(map[string]bool)
	for _, binding := range candidateBindings(p, opts.Candidates, r) {
		key := fmt.Sprint(binding)
		if seen[key] {
			continue
		}
		seen[key] = true

		sys, err := Realize(p, binding)
		if err != nil {
			continue // infeasible window synthesis; try the next binding
		}
		res.Tried++
		m, err := model.Build(sys)
		if err != nil {
			return nil, fmt.Errorf("sched: building model for %v: %w", binding, err)
		}
		tr, _, err := m.Simulate()
		if err != nil {
			return nil, fmt.Errorf("sched: simulating %v: %w", binding, err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			return nil, fmt.Errorf("sched: analyzing %v: %w", binding, err)
		}
		cand := &Candidate{Sys: sys, Analysis: a, Schedulable: a.Schedulable, Binding: binding}
		if !a.Schedulable {
			continue // discarded, as in the paper's workflow
		}
		res.Schedulable++
		cand.Score = opts.Objective(sys, a)
		if res.Best == nil || cand.Score < res.Best.Score {
			res.Best = cand
		}
	}
	return res, nil
}

// utilization of a partition on a core type.
func specUtil(spec *PartitionSpec, coreType int) float64 {
	u := 0.0
	for i := range spec.Tasks {
		u += float64(spec.Tasks[i].WCET[coreType]) / float64(spec.Tasks[i].Period)
	}
	return u
}

// candidateBindings yields deterministic heuristic bindings (first-fit
// decreasing, worst-fit/balancing, round-robin) followed by random ones.
func candidateBindings(p *Problem, n int, r *rand.Rand) [][]int {
	np, nc := len(p.Partitions), len(p.Cores)
	var out [][]int

	order := make([]int, np)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return specUtil(&p.Partitions[order[a]], 0) > specUtil(&p.Partitions[order[b]], 0)
	})

	// First-fit decreasing by utilization.
	ffd := make([]int, np)
	load := make([]float64, nc)
	for _, pi := range order {
		best := 0
		for c := 1; c < nc; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		// first core that keeps load ≤ 1, else the least-loaded
		chosen := -1
		for c := 0; c < nc; c++ {
			if load[c]+specUtil(&p.Partitions[pi], p.Cores[c].Type) <= 1.0 {
				chosen = c
				break
			}
		}
		if chosen < 0 {
			chosen = best
		}
		ffd[pi] = chosen
		load[chosen] += specUtil(&p.Partitions[pi], p.Cores[chosen].Type)
	}
	out = append(out, ffd)

	// Worst-fit (balance load).
	wf := make([]int, np)
	load = make([]float64, nc)
	for _, pi := range order {
		best := 0
		for c := 1; c < nc; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		wf[pi] = best
		load[best] += specUtil(&p.Partitions[pi], p.Cores[best].Type)
	}
	out = append(out, wf)

	// Round-robin.
	rr := make([]int, np)
	for i := range rr {
		rr[i] = i % nc
	}
	out = append(out, rr)

	for len(out) < n {
		b := make([]int, np)
		for i := range b {
			b[i] = r.Intn(nc)
		}
		out = append(out, b)
	}
	return out[:n]
}

// Realize turns a binding into a full configuration by synthesizing a
// window schedule: each core's timeline is divided into frames of the GCD
// of its partitions' periods, and every frame is split into one window per
// partition with lengths proportional to utilization (each partition gets
// at least one tick). It returns an error when the frame cannot fit the
// demanded window lengths.
func Realize(p *Problem, binding []int) (*config.System, error) {
	sys := &config.System{
		Name:      p.Name,
		CoreTypes: p.CoreTypes,
		Cores:     p.Cores,
		Messages:  p.Messages,
	}
	for i, spec := range p.Partitions {
		sys.Partitions = append(sys.Partitions, config.Partition{
			Name:   spec.Name,
			Tasks:  spec.Tasks,
			Policy: spec.Policy,
			Core:   binding[i],
		})
	}
	l := sys.Hyperperiod()

	for c := range sys.Cores {
		var parts []int
		for pi := range sys.Partitions {
			if sys.Partitions[pi].Core == c {
				parts = append(parts, pi)
			}
		}
		if len(parts) == 0 {
			continue
		}
		frame := int64(0)
		for _, pi := range parts {
			for _, t := range sys.Partitions[pi].Tasks {
				frame = config.GCD(frame, t.Period)
			}
		}
		// Window length per partition: ceil(frame · U) plus an extra tick,
		// clamped so everything fits.
		lens := make([]int64, len(parts))
		var total int64
		for i, pi := range parts {
			u := specUtil(&p.Partitions[pi], sys.Cores[c].Type)
			lens[i] = int64(float64(frame)*u) + 1
			total += lens[i]
		}
		if total > frame {
			return nil, fmt.Errorf("sched: core %d: windows demand %d > frame %d", c, total, frame)
		}
		// Distribute leftover ticks round-robin (more slack per window).
		for left := frame - total; left > 0; left-- {
			lens[int(left)%len(lens)]++
		}
		for f := int64(0); f < l/frame; f++ {
			off := f * frame
			for i, pi := range parts {
				sys.Partitions[pi].Windows = append(sys.Partitions[pi].Windows,
					config.Window{Start: off, End: off + lens[i]})
				off += lens[i]
			}
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

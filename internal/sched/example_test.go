package sched_test

import (
	"fmt"
	"log"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/sched"
)

// Example searches bindings and window schedules for a two-core design
// problem, using the stopwatch-automata model as the schedulability test on
// every candidate — the §4 workflow.
func Example() {
	problem := &sched.Problem{
		Name:      "example",
		CoreTypes: []string{"cpu"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 1},
		},
		Partitions: []sched.PartitionSpec{
			{Name: "A", Policy: config.FPPS, Tasks: []config.Task{
				{Name: "a1", Priority: 1, WCET: []int64{4}, Period: 10, Deadline: 10},
			}},
			{Name: "B", Policy: config.FPPS, Tasks: []config.Task{
				{Name: "b1", Priority: 1, WCET: []int64{4}, Period: 10, Deadline: 10},
			}},
			{Name: "C", Policy: config.EDF, Tasks: []config.Task{
				{Name: "c1", Priority: 1, WCET: []int64{4}, Period: 10, Deadline: 10},
			}},
		},
	}
	res, err := sched.Search(problem, sched.Options{Candidates: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found schedulable: %t\n", res.Best != nil)
	fmt.Printf("best is valid: %t\n", res.Best.Sys.Validate() == nil)
	// Output:
	// found schedulable: true
	// best is valid: true
}

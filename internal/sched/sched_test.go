package sched

import (
	"testing"

	"stopwatchsim/internal/config"
)

func problem() *Problem {
	return &Problem{
		Name:      "design",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []PartitionSpec{
			{Name: "P1", Policy: config.FPPS, Tasks: []config.Task{
				{Name: "A", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
				{Name: "B", Priority: 1, WCET: []int64{3}, Period: 20, Deadline: 20},
			}},
			{Name: "P2", Policy: config.FPPS, Tasks: []config.Task{
				{Name: "C", Priority: 1, WCET: []int64{4}, Period: 10, Deadline: 10},
			}},
			{Name: "P3", Policy: config.EDF, Tasks: []config.Task{
				{Name: "D", Priority: 1, WCET: []int64{2}, Period: 20, Deadline: 20},
			}},
		},
	}
}

func TestSearchFindsSchedulable(t *testing.T) {
	res, err := Search(problem(), Options{Candidates: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatalf("no schedulable configuration found (%d tried, %d schedulable)", res.Tried, res.Schedulable)
	}
	if !res.Best.Schedulable || !res.Best.Analysis.Schedulable {
		t.Error("best candidate not schedulable")
	}
	if err := res.Best.Sys.Validate(); err != nil {
		t.Errorf("best config invalid: %v", err)
	}
	if res.Schedulable == 0 || res.Tried == 0 {
		t.Errorf("result = %+v", res)
	}
	// Score must be the minimum across schedulable candidates by
	// construction; at least verify it is a sensible slack value.
	if res.Best.Score > 0 {
		t.Errorf("best score %f > 0 (negative slack)", res.Best.Score)
	}
}

func TestSearchOverloadedProblem(t *testing.T) {
	p := problem()
	// Make total demand far exceed both cores.
	for i := range p.Partitions {
		for j := range p.Partitions[i].Tasks {
			p.Partitions[i].Tasks[j].WCET = []int64{p.Partitions[i].Tasks[j].Period}
		}
	}
	res, err := Search(p, Options{Candidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Error("overloaded problem cannot have a schedulable configuration")
	}
}

func TestRealizeBindingRespected(t *testing.T) {
	p := problem()
	sys, err := Realize(p, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Partitions[0].Core != 0 || sys.Partitions[1].Core != 1 || sys.Partitions[2].Core != 0 {
		t.Errorf("binding not respected: %+v", sys.Partitions)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// Frame on core 0: gcd(10,20,20) = 10; windows of P1 and P3 tile it.
	if len(sys.Partitions[0].Windows) != int(sys.Hyperperiod()/10) {
		t.Errorf("P1 windows = %d", len(sys.Partitions[0].Windows))
	}
}

func TestRealizeInfeasibleFrame(t *testing.T) {
	p := &Problem{
		Name:      "tight",
		CoreTypes: []string{"std"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []PartitionSpec{
			// Five partitions, frame gcd = 2: five windows of ≥1 tick each
			// cannot fit a 2-tick frame.
			{Name: "P1", Policy: config.FPPS, Tasks: []config.Task{{Name: "A", Priority: 1, WCET: []int64{1}, Period: 2, Deadline: 2}}},
			{Name: "P2", Policy: config.FPPS, Tasks: []config.Task{{Name: "B", Priority: 1, WCET: []int64{1}, Period: 2, Deadline: 2}}},
			{Name: "P3", Policy: config.FPPS, Tasks: []config.Task{{Name: "C", Priority: 1, WCET: []int64{1}, Period: 2, Deadline: 2}}},
			{Name: "P4", Policy: config.FPPS, Tasks: []config.Task{{Name: "D", Priority: 1, WCET: []int64{1}, Period: 2, Deadline: 2}}},
			{Name: "P5", Policy: config.FPPS, Tasks: []config.Task{{Name: "E", Priority: 1, WCET: []int64{1}, Period: 2, Deadline: 2}}},
		},
	}
	if _, err := Realize(p, []int{0, 0, 0, 0, 0}); err == nil {
		t.Error("expected infeasible window synthesis")
	}
}

func TestSearchEmptyProblem(t *testing.T) {
	if _, err := Search(&Problem{}, Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestSearchWithMessages(t *testing.T) {
	p := problem()
	p.Messages = []config.Message{
		{Name: "m", SrcPart: 0, SrcTask: 1, DstPart: 2, DstTask: 0, MemDelay: 1, NetDelay: 2},
	}
	res, err := Search(p, Options{Candidates: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatalf("no schedulable configuration found with data flow (%d tried)", res.Tried)
	}
}

package model

import (
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

// TraceBuilder is an nsa.Listener translating the NSA synchronization trace
// into the system operation trace (§2.1): synchronizations on exec_jk map to
// EX, on preempt_jk to PR, and on finished_j to FIN of the job identified by
// last_finished_j. FIN is emitted only for jobs that have executed at least
// once, matching the paper's definition of a job subtrace (a job with zero
// executing intervals has an empty subtrace).
type TraceBuilder struct {
	m       *Model
	tr      trace.Trace
	started map[trace.JobID]bool
}

// NewTraceBuilder returns a fresh trace builder for the model.
func (m *Model) NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{m: m, started: make(map[trace.JobID]bool)}
}

// OnTransition implements nsa.Listener.
func (b *TraceBuilder) OnTransition(time int64, tr *nsa.Transition, _ *nsa.Network, s *nsa.State) {
	ev, ok := b.m.SystemEvent(time, tr, s)
	if !ok {
		return
	}
	switch ev.Type {
	case trace.EX:
		b.started[ev.Job] = true
	case trace.FIN:
		if !b.started[ev.Job] {
			return // empty subtrace for a job that never executed (§2.1)
		}
	}
	b.tr.Events = append(b.tr.Events, ev)
}

// SystemEvent maps a fired NSA transition to the system operation event it
// represents, if any: exec_jk → EX, preempt_jk → PR, finished_j → FIN of
// the job named by last_finished_j. s must be the post-transition state.
func (m *Model) SystemEvent(time int64, tr *nsa.Transition, s *nsa.State) (trace.Event, bool) {
	if tr.Kind == nsa.Internal {
		return trace.Event{}, false
	}
	info := m.ChanInfos[tr.Chan]
	switch info.Role {
	case RoleExec:
		return trace.Event{Type: trace.EX, Job: m.jobID(info.Task, s), Time: time}, true
	case RolePreempt:
		return trace.Event{Type: trace.PR, Job: m.jobID(info.Task, s), Time: time}, true
	case RoleFinished:
		ti := int(s.Vars[m.parts[info.Part].lastFin])
		ref := config.TaskRef{Part: info.Part, Task: ti}
		return trace.Event{Type: trace.FIN, Job: m.jobID(ref, s), Time: time}, true
	}
	return trace.Event{}, false
}

func (m *Model) jobID(ref config.TaskRef, s *nsa.State) trace.JobID {
	return trace.JobID{Part: ref.Part, Task: ref.Task, Job: m.JobOf(ref, s)}
}

// Trace returns the accumulated system operation trace.
func (b *TraceBuilder) Trace() *trace.Trace { return &b.tr }

package model

import (
	"fmt"
	"sort"

	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// windowEvent is one boundary in a core's merged window timetable.
type windowEvent struct {
	time int64
	wake bool // true for a window start, false for a window end
	part int  // partition index
}

// buildCoreScheduler constructs the CS automaton for core ci (the paper's
// base type CS): a cyclic timetable over the hyperperiod that emits
// wakeup_j! at each window start and sleep_j! at each window end of every
// partition bound to the core. Simultaneous boundaries are ordered sleeps
// first, so one window closes before the next opens.
func (m *Model) buildCoreScheduler(nb *nsa.Builder, ci int) (*sa.Automaton, error) {
	sys := m.Sys
	var events []windowEvent
	for pi := range sys.Partitions {
		if sys.Partitions[pi].Core != ci {
			continue
		}
		for _, w := range sys.Partitions[pi].Windows {
			events = append(events, windowEvent{time: w.Start, wake: true, part: pi})
			events = append(events, windowEvent{time: w.End, wake: false, part: pi})
		}
	}
	sort.Slice(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.time != eb.time {
			return ea.time < eb.time
		}
		if ea.wake != eb.wake {
			return !ea.wake // sleep before wakeup
		}
		return ea.part < eb.part
	})

	u := nb.Clock(fmt.Sprintf("u_%d", ci))
	uName := fmt.Sprintf("u_%d", ci)
	b := sa.NewBuilder(fmt.Sprintf("CS_%s", sys.Cores[ci].Name))
	b.OwnClock(u)

	if len(events) == 0 {
		// A core with no bound partitions idles forever.
		b.Init(b.Loc("Idle"))
		return b.Build()
	}

	// One location per event, chained; the final location waits for the end
	// of the hyperperiod and wraps around, resetting the timetable clock.
	locs := make([]sa.LocID, len(events)+1)
	for i, e := range events {
		kind := "sleep"
		if e.wake {
			kind = "wake"
		}
		locs[i] = b.Loc(fmt.Sprintf("E%d_%s_P%d_at_%d", i, kind, e.part, e.time),
			sa.WithInvariant(exprInv(nb, fmt.Sprintf("%s <= %d", uName, e.time))))
	}
	// The window schedule repeats with period L (the hyperperiod), not the
	// simulation horizon — multi-cycle runs wrap the timetable.
	l := sys.Hyperperiod()
	locs[len(events)] = b.Loc("Wrap",
		sa.WithInvariant(exprInv(nb, fmt.Sprintf("%s <= %d", uName, l))))
	b.Init(locs[0])

	for i, e := range events {
		ch := m.parts[e.part].sleepCh
		if e.wake {
			ch = m.parts[e.part].wakeupCh
		}
		b.SendEdge(locs[i], locs[i+1],
			exprGuard(nb, fmt.Sprintf("%s == %d", uName, e.time)), ch, nil)
	}
	b.Edge(locs[len(events)], locs[0],
		exprGuard(nb, fmt.Sprintf("%s == %d", uName, l)), sa.None,
		exprUpdate(nb, fmt.Sprintf("%s := 0", uName)))

	return b.Build()
}

package model

import (
	"math/rand"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

// switchedSystem: two sender tasks on module 1 feed two receivers on module
// 2 through a shared switch output port, so the second frame queues behind
// the first. Routes: both messages traverse [egress1, switchOut].
func switchedSystem() *config.System {
	return &config.System{
		Name:      "switched",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "TX", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "S1", Priority: 2, WCET: []int64{1}, Period: 40, Deadline: 40},
					{Name: "S2", Priority: 1, WCET: []int64{1}, Period: 40, Deadline: 40},
				},
				Windows: []config.Window{{Start: 0, End: 40}}},
			{Name: "RX", Core: 1, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "R1", Priority: 2, WCET: []int64{2}, Period: 40, Deadline: 40},
					{Name: "R2", Priority: 1, WCET: []int64{2}, Period: 40, Deadline: 40},
				},
				Windows: []config.Window{{Start: 0, End: 40}}},
		},
		Messages: []config.Message{
			{Name: "m1", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, TxTime: 3},
			{Name: "m2", SrcPart: 0, SrcTask: 1, DstPart: 1, DstTask: 1, TxTime: 3},
		},
		Net: &config.Topology{
			Ports: []config.Port{{Name: "egress1"}, {Name: "switchOut"}},
			Routes: [][]int{
				{0, 1},
				{0, 1},
			},
		},
	}
}

func deliveriesOf(t *testing.T, sys *config.System) map[int][]int64 {
	t.Helper()
	m := MustBuild(sys)
	out := make(map[int][]int64)
	rec := nsa.ListenerFunc(func(time int64, tr *nsa.Transition, _ *nsa.Network, _ *nsa.State) {
		if tr.Kind != nsa.Internal && m.ChanInfos[tr.Chan].Role == RoleReceive {
			h := m.ChanInfos[tr.Chan].Link
			out[h] = append(out[h], time)
		}
	})
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Listeners: []nsa.Listener{rec}})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSwitchedNetworkContention(t *testing.T) {
	sys := switchedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// S1 completes at 1, S2 at 2 (priority order). Port egress1: frame m1
	// served [1,4], m2 queued at 2, served [4,7]. Port switchOut: m1
	// [4,7] → delivered at 7; m2 [7,10] → delivered at 10.
	got := deliveriesOf(t, sys)
	if len(got[0]) != 1 || got[0][0] != 7 {
		t.Errorf("m1 deliveries = %v, want [7]", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != 10 {
		t.Errorf("m2 deliveries = %v, want [10] (queued behind m1)", got[1])
	}

	// End to end: receivers start at their delivery instants.
	m := MustBuild(sys)
	tr, _, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	for i := range a.Jobs {
		j := &a.Jobs[i]
		if j.Job.Part == 1 && j.Job.Task == 0 && j.Start != 7 {
			t.Errorf("R1 start = %d, want 7", j.Start)
		}
		if j.Job.Part == 1 && j.Job.Task == 1 && j.Start != 10 {
			t.Errorf("R2 start = %d, want 10", j.Start)
		}
	}
}

func TestSwitchedNetworkNoContentionMatchesLatency(t *testing.T) {
	sys := switchedSystem()
	// Separate the sends so frames never queue: S2 runs much later.
	sys.Partitions[0].Tasks[1].Priority = 1
	sys.Messages[1].TxTime = 3
	sys.Net.Routes[1] = []int{1} // m2 only crosses the switch port
	got := deliveriesOf(t, sys)
	// m2: sent at 2, single hop, switchOut idle → served [2,5], delivered 5.
	if len(got[1]) != 1 || got[1][0] != 5 {
		t.Errorf("m2 deliveries = %v, want [5]", got[1])
	}
	// m1: sent at 1, egress1 [1,4], reaches switchOut at 4 while it serves
	// m2 until 5; m1 then served [5,8] → delivered 8.
	if len(got[0]) != 1 || got[0][0] != 8 {
		t.Errorf("m1 deliveries = %v, want [8]", got[0])
	}
}

func TestSwitchedNetworkDeterminism(t *testing.T) {
	sys := switchedSystem()
	// Same-instant arrivals at the shared port: both senders complete at
	// the same time on different cores.
	sys.Partitions[0].Tasks = sys.Partitions[0].Tasks[:1]
	sys.Messages[0].SrcPart = 0
	sys.Partitions = append(sys.Partitions, config.Partition{
		Name: "TX2", Core: 1, Policy: config.FPPS,
		Tasks:   []config.Task{{Name: "S2b", Priority: 1, WCET: []int64{1}, Period: 40, Deadline: 40}},
		Windows: []config.Window{{Start: 0, End: 20}},
	})
	// Rewire m2 to the new sender and receivers into partition RX.
	sys.Partitions[1].Windows = []config.Window{{Start: 20, End: 40}}
	sys.Messages[1].SrcPart = 2
	sys.Messages[1].SrcTask = 0
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	ref, _, err := MustBuild(sys).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	refNorm := ref.Normalize()
	for seed := int64(1); seed <= 15; seed++ {
		tr, _, err := MustBuild(sys).SimulateWith(nsa.RandomChooser{Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !refNorm.EqualAsSets(tr.Normalize()) {
			t.Fatalf("seed %d: trace differs\nref:\n%s\ngot:\n%s",
				seed, refNorm.Format(sys), tr.Normalize().Format(sys))
		}
	}
}

func TestSwitchedNetworkValidation(t *testing.T) {
	sys := switchedSystem()
	sys.Net.Routes[0] = []int{5}
	if err := sys.Validate(); err == nil {
		t.Error("unknown port must be rejected")
	}
	sys = switchedSystem()
	sys.Messages[0].TxTime = 0
	if err := sys.Validate(); err == nil {
		t.Error("routed message without txTime must be rejected")
	}
	sys = switchedSystem()
	sys.Net.Routes[0] = []int{0, 0}
	if err := sys.Validate(); err == nil {
		t.Error("route visiting a port twice must be rejected")
	}
	sys = switchedSystem()
	sys.Net.Routes = sys.Net.Routes[:1]
	if err := sys.Validate(); err == nil {
		t.Error("route count mismatch must be rejected")
	}
	sys = switchedSystem()
	sys.Net.Ports[1].Name = "egress1"
	if err := sys.Validate(); err == nil {
		t.Error("duplicate port name must be rejected")
	}
}

func TestMixedFixedAndRoutedLinks(t *testing.T) {
	sys := switchedSystem()
	// m2 falls back to a fixed-delay link.
	sys.Net.Routes[1] = nil
	sys.Messages[1].MemDelay = 2
	sys.Messages[1].NetDelay = 2
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	got := deliveriesOf(t, sys)
	// m1 routed: delivered at 7; m2 fixed delay 2 after send at 2 → 4.
	if len(got[0]) != 1 || got[0][0] != 7 {
		t.Errorf("m1 = %v", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != 4 {
		t.Errorf("m2 = %v", got[1])
	}
}

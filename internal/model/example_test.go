package model_test

import (
	"fmt"
	"log"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

// Example builds a minimal configuration, constructs the NSA instance per
// Algorithm 1, interprets it once and checks the schedulability criterion.
func Example() {
	sys := &config.System{
		Name:      "example",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "hi", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
					{Name: "lo", Priority: 1, WCET: []int64{6}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 10}},
			},
		},
	}
	m, err := model.Build(sys)
	if err != nil {
		log.Fatal(err)
	}
	tr, _, err := m.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("automata: %d\n", len(m.Net.Automata))
	fmt.Printf("schedulable: %t\n", a.Schedulable)
	fmt.Printf("preemptions: %d\n", a.TotalPreemptions)
	// Output:
	// automata: 4
	// schedulable: true
	// preemptions: 1
}

// ExampleModel_Simulate shows the event trace the interpretation produces.
func ExampleModel_Simulate() {
	sys := &config.System{
		Name:      "trace-example",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "T", Priority: 1, WCET: []int64{3}, Period: 8, Deadline: 8},
				},
				Windows: []config.Window{{Start: 0, End: 8}},
			},
		},
	}
	m := model.MustBuild(sys)
	tr, _, err := m.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tr.Format(sys))
	// Output:
	//      0 EX P1.T#0
	//      3 FIN P1.T#0
}

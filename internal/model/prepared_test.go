package model

import (
	"context"
	"reflect"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

// preparedSystems returns two structurally different configurations so
// interleaving runs can expose cross-run or cross-config state leakage.
func preparedSystems() (*config.System, *config.System) {
	a := sys1(config.FPPS, []config.Task{
		{Name: "hi", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
		{Name: "lo", Priority: 1, WCET: []int64{9}, Period: 20, Deadline: 20},
	}, []config.Window{{Start: 0, End: 20}})
	b := sys1(config.EDF, []config.Task{
		{Name: "t1", Priority: 1, WCET: []int64{3}, Period: 8, Deadline: 8},
		{Name: "t2", Priority: 1, WCET: []int64{5}, Period: 16, Deadline: 12},
	}, nil)
	return a, b
}

// freshRun is the reference: a one-shot Build + SimulateEngine.
func freshRun(t *testing.T, sys *config.System, backend nsa.Backend) (*trace.Trace, nsa.Result, *trace.Analysis) {
	t.Helper()
	m, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	tr, res, err := m.SimulateEngine(context.Background(), nsa.Options{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res, a
}

// TestPreparedNoStateLeakage is the satellite differential test for
// persistent engine reuse: repeated Reset+Run cycles on a Prepared —
// interleaved with runs of a different configuration on another Prepared
// — must reproduce the one-shot pipeline exactly, trace for trace, on
// every backend. Any state surviving Reset (a stale clock, a half list
// not rewound, a leftover deadline heap entry) diverges here.
func TestPreparedNoStateLeakage(t *testing.T) {
	sysA, sysB := preparedSystems()
	for _, backend := range []nsa.Backend{nsa.BackendEvent, nsa.BackendCompiled, nsa.BackendNaive} {
		t.Run(backend.String(), func(t *testing.T) {
			trA, resA, anA := freshRun(t, sysA, backend)
			trB, resB, anB := freshRun(t, sysB, backend)

			prepA, err := Prepare(sysA, backend)
			if err != nil {
				t.Fatal(err)
			}
			prepB, err := Prepare(sysB, backend)
			if err != nil {
				t.Fatal(err)
			}
			check := func(round int, p *Prepared, sys *config.System, wantTr *trace.Trace, wantRes nsa.Result, wantAn *trace.Analysis) {
				t.Helper()
				tr, res, probe, err := p.Simulate(context.Background(), nsa.Budget{})
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if !reflect.DeepEqual(tr.Events, wantTr.Events) {
					t.Fatalf("round %d: trace diverged from fresh run\nreused:\n%s\nfresh:\n%s",
						round, tr.Format(sys), wantTr.Format(sys))
				}
				if res != wantRes {
					t.Fatalf("round %d: result %+v, want %+v", round, res, wantRes)
				}
				an, err := trace.Analyze(sys, tr)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if an.Schedulable != wantAn.Schedulable || an.TotalPreemptions != wantAn.TotalPreemptions {
					t.Fatalf("round %d: analysis diverged: %+v vs %+v", round, an, wantAn)
				}
				// The probe must reflect this run alone, not accumulate
				// across Reset+Run cycles.
				if got := probe.Snapshot(); got.Actions != int64(res.Actions) || got.Delays != int64(res.Delays) {
					t.Fatalf("round %d: probe %+v does not match result %+v (stale counters?)", round, got, res)
				}
			}
			// Interleave: A, B, A, B, A — every later A/B run rides a Reset.
			for round := 0; round < 3; round++ {
				check(round, prepA, sysA, trA, resA, anA)
				if round < 2 {
					check(round, prepB, sysB, trB, resB, anB)
				}
			}
		})
	}
}

package model

import (
	"context"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/trace"
)

// Prepared is a model bound to a persistent engine: one Build +
// NewEngine, then Reset+Run per simulation. Construction (Algorithm 1
// plus network compilation) dominates short runs — ~32 ms at industrial
// scale against ~150 ms of interpretation, and far worse proportionally
// on small models — so point oracles that re-query the same
// configuration (campaign retries, synthesis vertex sharing, cache-
// disabled differential runs) amortize it here instead of paying it per
// run.
//
// A Prepared is bound to exactly one configuration: parameters are baked
// into the network's guard and invariant constants at build time, so two
// systems differing in any fingerprinted field need two Prepared
// instances. It is not safe for concurrent use; the jobs pool keeps one
// small cache per worker.
type Prepared struct {
	M *Model

	eng   *nsa.Engine
	probe *obs.Probe
	used  bool
}

// Prepare builds the model for sys and constructs its persistent engine
// on the given backend. The engine's probe is allocated once and shared
// across runs (the runtimes capture it at construction); Simulate resets
// it per run.
func Prepare(sys *config.System, backend nsa.Backend) (*Prepared, error) {
	m, err := Build(sys)
	if err != nil {
		return nil, err
	}
	probe := &obs.Probe{}
	eng := nsa.NewEngine(m.Net, nsa.Options{
		Horizon: m.Horizon,
		Backend: backend,
		Probe:   probe,
	})
	return &Prepared{M: m, eng: eng, probe: probe}, nil
}

// Backend reports the engine backend the prepared engine runs on.
func (p *Prepared) Backend() nsa.Backend { return p.eng.Backend() }

// Simulate interprets one hyperperiod on the persistent engine: Reset
// (after the first use), re-arm the probe and per-run options, Run. The
// returned probe is the engine's shared one, zeroed at the start of this
// run — snapshot it before the next Simulate call.
func (p *Prepared) Simulate(ctx context.Context, b nsa.Budget) (*trace.Trace, nsa.Result, *obs.Probe, error) {
	if p.used {
		p.eng.Reset()
	}
	p.used = true
	p.probe.Reset()
	tb := p.M.NewTraceBuilder()
	p.eng.SetListeners([]nsa.Listener{tb})
	p.eng.SetBudget(b)
	// Per-request telemetry rides the context so cached engines pick up
	// the current request's flight recorder and attributed logger.
	p.eng.SetFlight(obs.FlightFrom(ctx))
	p.eng.SetLogger(obs.LoggerFrom(ctx))
	res, err := p.eng.RunContext(ctx)
	return tb.Trace(), res, p.probe, err
}

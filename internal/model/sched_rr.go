package model

import (
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// buildSchedulerRR constructs a round-robin TS implementation — one of the
// "more task scheduler models" the paper's future-work section plans. The
// quantum clock q is itself a stopwatch: it runs only while a job executes
// (the Running location), so window switches do not consume quantum.
//
//	Asleep ─wakeup?→ Dispatch* ─exec_k! (next ready after rr_last)→ Running {q ≤ Q}
//	Running ─(q==Q)→ Rotate* ─preempt_cur!→ Dispatch*            (rotation)
//	Running ─finished?→ RunningFin* ─(cur)→ Dispatch*            (completion/kill)
//	Running ─sleep?→ PreSleep* ─preempt_cur!→ Asleep             (window end)
func (m *Model) buildSchedulerRR(nb *nsa.Builder, pi int) (*sa.Automaton, error) {
	p := &m.Sys.Partitions[pi]
	pv := &m.parts[pi]
	k := len(p.Tasks)
	quantum := p.Quantum
	curID := int(pv.cur)
	lastFinID := int(pv.lastFin)

	rrLast := nb.Var(fmt.Sprintf("rr_last_%d", pi), -1)
	rrLastID := int(rrLast)
	qName := fmt.Sprintf("q_%d", pi)
	q := nb.Clock(qName)

	ready := make([]int, k)
	rt := make([]int, k)
	relDeadline := make([]int64, k)
	for ti := 0; ti < k; ti++ {
		tv := m.tasks[config.TaskRef{Part: pi, Task: ti}]
		ready[ti] = int(tv.isReady)
		rt[ti] = int(tv.rt)
		relDeadline[ti] = p.Tasks[ti].Deadline
	}
	// pick scans cyclically from the task after the last dispatched one,
	// skipping jobs whose deadline has been reached (see policyFor).
	pick := func(env expr.Env) int {
		last := int(env.Var(rrLastID))
		for i := 1; i <= k; i++ {
			ti := (last + i + k) % k
			if env.Var(ready[ti]) == 1 && env.Clock(rt[ti]) < relDeadline[ti] {
				return ti
			}
		}
		return -1
	}
	pickReads := &sa.Deps{Vars: []sa.VarID{sa.VarID(rrLastID)}}
	for ti := 0; ti < k; ti++ {
		pickReads.Vars = append(pickReads.Vars, sa.VarID(ready[ti]))
		pickReads.Clocks = append(pickReads.Clocks, sa.ClockID(rt[ti]))
	}

	b := sa.NewBuilder(fmt.Sprintf("TS_RR_%s", p.Name))
	b.OwnClock(q)

	invQ := exprInv(nb, fmt.Sprintf("%s <= %d", qName, quantum))
	stopQ := sa.Stops(q)
	asleep := b.Loc("Asleep", stopQ)
	dispatch := b.Loc("Dispatch", sa.Committed(), stopQ)
	idle := b.Loc("Idle", stopQ)
	running := b.Loc("Running", sa.WithInvariant(invQ)) // q runs only here
	runningFin := b.Loc("RunningFin", sa.Committed(), stopQ)
	rotate := b.Loc("Rotate", sa.Committed(), stopQ)
	rotateFin := b.Loc("RotateFin", sa.Committed(), stopQ)
	preSleep := b.Loc("PreSleep", sa.Committed(), stopQ)
	preSleepFin := b.Loc("PreSleepFin", sa.Committed(), stopQ)
	b.Init(asleep)

	finDeps := &sa.Deps{Vars: []sa.VarID{sa.VarID(lastFinID), sa.VarID(curID)}}
	curDeps := &sa.Deps{Vars: []sa.VarID{sa.VarID(curID)}}
	gFinCur := &sa.GuardFunc{Desc: fmt.Sprintf("last_finished_%d == cur_%d", pi, pi),
		F:     func(env expr.Env) bool { return env.Var(lastFinID) == env.Var(curID) },
		Reads: finDeps}
	gFinOther := &sa.GuardFunc{Desc: fmt.Sprintf("last_finished_%d != cur_%d", pi, pi),
		F:     func(env expr.Env) bool { return env.Var(lastFinID) != env.Var(curID) },
		Reads: finDeps}
	clearCur := &sa.UpdateFunc{Desc: fmt.Sprintf("cur_%d := -1", pi),
		F:      func(env expr.MutableEnv) { env.SetVar(curID, -1) },
		Writes: curDeps}

	// Asleep.
	b.RecvEdge(asleep, asleep, nil, pv.readyCh, nil)
	b.RecvEdge(asleep, asleep, nil, pv.finishedCh, nil)
	b.RecvEdge(asleep, dispatch, nil, pv.wakeupCh, nil)

	// Dispatch: next ready task in rotation order, quantum reset.
	b.RecvEdge(dispatch, asleep, nil, pv.sleepCh, nil)
	for ti := 0; ti < k; ti++ {
		ti := ti
		g := &sa.GuardFunc{Desc: fmt.Sprintf("rr_pick_%d == %d", pi, ti),
			F:     func(env expr.Env) bool { return pick(env) == ti },
			Reads: pickReads}
		u := &sa.UpdateFunc{Desc: fmt.Sprintf("cur_%d := %d, rr_last_%d := %d, %s := 0", pi, ti, pi, ti, qName),
			F: func(env expr.MutableEnv) {
				env.SetVar(curID, int64(ti))
				env.SetVar(rrLastID, int64(ti))
				env.SetClock(int(q), 0)
			},
			Writes: &sa.Deps{Vars: []sa.VarID{sa.VarID(curID), sa.VarID(rrLastID)}, Clocks: []sa.ClockID{q}}}
		b.SendEdge(dispatch, running, g, m.tasks[config.TaskRef{Part: pi, Task: ti}].execCh, u)
	}
	b.Edge(dispatch, idle,
		&sa.GuardFunc{Desc: fmt.Sprintf("rr_pick_%d == -1", pi),
			F:     func(env expr.Env) bool { return pick(env) < 0 },
			Reads: pickReads},
		sa.None, nil)

	// Idle.
	b.RecvEdge(idle, dispatch, nil, pv.readyCh, nil)
	b.RecvEdge(idle, dispatch, nil, pv.finishedCh, nil)
	b.RecvEdge(idle, asleep, nil, pv.sleepCh, nil)

	// Running: completion/kill, quantum expiry, new arrivals wait, sleep.
	b.RecvEdge(running, runningFin, nil, pv.finishedCh, nil)
	b.Edge(running, rotate, exprGuard(nb, fmt.Sprintf("%s == %d", qName, quantum)), sa.None, nil)
	b.RecvEdge(running, running, nil, pv.readyCh, nil)
	b.RecvEdge(running, preSleep, nil, pv.sleepCh, nil)

	b.Edge(runningFin, dispatch, gFinCur, sa.None, clearCur)
	b.Edge(runningFin, running, gFinOther, sa.None, nil)

	// Rotate: stop the current job (it may complete or be killed at this
	// same instant instead) and re-dispatch.
	b.RecvEdge(rotate, rotateFin, nil, pv.finishedCh, nil)
	for ti := 0; ti < k; ti++ {
		ti := ti
		g := &sa.GuardFunc{Desc: fmt.Sprintf("cur_%d == %d", pi, ti),
			F:     func(env expr.Env) bool { return env.Var(curID) == int64(ti) },
			Reads: curDeps}
		b.SendEdge(rotate, dispatch, g,
			m.tasks[config.TaskRef{Part: pi, Task: ti}].preemptCh, clearCur)
	}
	b.Edge(rotateFin, dispatch, gFinCur, sa.None, clearCur)
	b.Edge(rotateFin, rotate, gFinOther, sa.None, nil)

	// PreSleep, as in the fixed-priority scheduler.
	b.RecvEdge(preSleep, preSleepFin, nil, pv.finishedCh, nil)
	for ti := 0; ti < k; ti++ {
		ti := ti
		g := &sa.GuardFunc{Desc: fmt.Sprintf("cur_%d == %d", pi, ti),
			F:     func(env expr.Env) bool { return env.Var(curID) == int64(ti) },
			Reads: curDeps}
		b.SendEdge(preSleep, asleep, g,
			m.tasks[config.TaskRef{Part: pi, Task: ti}].preemptCh, clearCur)
	}
	b.Edge(preSleepFin, asleep, gFinCur, sa.None, clearCur)
	b.Edge(preSleepFin, preSleep, gFinOther, sa.None, nil)

	return b.Build()
}

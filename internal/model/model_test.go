package model

import (
	"math/rand"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

// sys1 builds a one-core system with one FPPS partition owning the given
// tasks and windows (nil windows = one full-hyperperiod window).
func sys1(policy config.Policy, tasks []config.Task, windows []config.Window) *config.System {
	s := &config.System{
		Name:      "test",
		CoreTypes: []string{"std"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: policy, Tasks: tasks, Windows: windows},
		},
	}
	if windows == nil {
		s.Partitions[0].Windows = []config.Window{{Start: 0, End: s.Hyperperiod()}}
	}
	return s
}

func run(t *testing.T, sys *config.System) (*trace.Trace, *trace.Analysis) {
	t.Helper()
	m, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatalf("analyze: %v\ntrace:\n%s", err, tr.Format(sys))
	}
	return tr, a
}

func wantEvents(t *testing.T, sys *config.System, tr *trace.Trace, want []trace.Event) {
	t.Helper()
	norm := tr.Normalize()
	if len(norm.Events) != len(want) {
		t.Fatalf("got %d events, want %d:\n%s", len(norm.Events), len(want), norm.Format(sys))
	}
	for i, ev := range norm.Events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

func ev(ty trace.EventType, part, task, job int, time int64) trace.Event {
	return trace.Event{Type: ty, Job: trace.JobID{Part: part, Task: task, Job: job}, Time: time}
}

func TestSingleTask(t *testing.T) {
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T1", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 10},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable: %s", a.Summary(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 3),
	})
}

func TestMultipleJobs(t *testing.T) {
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T1", Priority: 1, WCET: []int64{2}, Period: 5, Deadline: 5},
	}, nil)
	sys.Partitions[0].Tasks = append(sys.Partitions[0].Tasks,
		config.Task{Name: "T2", Priority: 0, WCET: []int64{1}, Period: 15, Deadline: 15})
	sys.Partitions[0].Windows = []config.Window{{Start: 0, End: 15}}
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	// T1 jobs at 0,5,10 each run 2 ticks; T2 runs in the gap at 2.
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 2),
		ev(trace.EX, 0, 1, 0, 2),
		ev(trace.FIN, 0, 1, 0, 3),
		ev(trace.EX, 0, 0, 1, 5),
		ev(trace.FIN, 0, 0, 1, 7),
		ev(trace.EX, 0, 0, 2, 10),
		ev(trace.FIN, 0, 0, 2, 12),
	})
}

func TestFPPSPreemption(t *testing.T) {
	sys := sys1(config.FPPS, []config.Task{
		{Name: "Hi", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
		{Name: "Lo", Priority: 1, WCET: []int64{6}, Period: 10, Deadline: 10},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 1),
		ev(trace.EX, 0, 1, 0, 1),
		ev(trace.PR, 0, 1, 0, 5),
		ev(trace.EX, 0, 0, 1, 5),
		ev(trace.FIN, 0, 0, 1, 6),
		ev(trace.EX, 0, 1, 0, 6),
		ev(trace.FIN, 0, 1, 0, 8),
	})
	if a.TotalPreemptions != 1 {
		t.Errorf("preemptions = %d, want 1", a.TotalPreemptions)
	}
}

func TestFPNPSNoPreemption(t *testing.T) {
	sys := sys1(config.FPNPS, []config.Task{
		{Name: "Hi", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
		{Name: "Lo", Priority: 1, WCET: []int64{6}, Period: 10, Deadline: 10},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	for _, e := range tr.Events {
		if e.Type == trace.PR {
			t.Fatalf("FPNPS produced a preemption: %+v", e)
		}
	}
	// Lo runs [1,7] without interruption; Hi#1 (released at 5) waits to 7.
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 1),
		ev(trace.EX, 0, 1, 0, 1),
		ev(trace.FIN, 0, 1, 0, 7),
		ev(trace.EX, 0, 0, 1, 7),
		ev(trace.FIN, 0, 0, 1, 8),
	})
}

func TestEDFBeatsFPPSOnDeadlines(t *testing.T) {
	tasks := []config.Task{
		{Name: "A", Priority: 2, WCET: []int64{3}, Period: 10, Deadline: 9},
		{Name: "B", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 5},
	}
	// FPPS runs A (higher priority) first: B gets only [3,5) of its 3 ticks.
	_, aFPPS := run(t, sys1(config.FPPS, tasks, nil))
	if aFPPS.Schedulable {
		t.Error("FPPS should miss B's deadline")
	}
	// EDF runs B (earlier absolute deadline) first: both fit.
	trEDF, aEDF := run(t, sys1(config.EDF, tasks, nil))
	if !aEDF.Schedulable {
		t.Fatalf("EDF should be schedulable:\n%s", trEDF.Format(sys1(config.EDF, tasks, nil)))
	}
	sys := sys1(config.EDF, tasks, nil)
	wantEvents(t, sys, trEDF, []trace.Event{
		ev(trace.EX, 0, 1, 0, 0),
		ev(trace.FIN, 0, 1, 0, 3),
		ev(trace.EX, 0, 0, 0, 3),
		ev(trace.FIN, 0, 0, 0, 6),
	})
}

func TestEDFPreemptsOnEarlierDeadline(t *testing.T) {
	// Long job started first; a later release with an earlier absolute
	// deadline must preempt it under EDF.
	sys := sys1(config.EDF, []config.Task{
		{Name: "Long", Priority: 1, WCET: []int64{9}, Period: 20, Deadline: 20},
		{Name: "Short", Priority: 1, WCET: []int64{2}, Period: 10, Deadline: 4},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	// t=0: Short (deadline 4) runs first, then Long; at 10 Short#1
	// (deadline 14 < 20) preempts Long, which resumes at 12.
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 1, 0, 0),
		ev(trace.FIN, 0, 1, 0, 2),
		ev(trace.EX, 0, 0, 0, 2),
		ev(trace.PR, 0, 0, 0, 10),
		ev(trace.EX, 0, 1, 1, 10),
		ev(trace.FIN, 0, 1, 1, 12),
		ev(trace.EX, 0, 0, 0, 12),
		ev(trace.FIN, 0, 0, 0, 13),
	})
}

func TestWindowsSuspendExecution(t *testing.T) {
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T1", Priority: 1, WCET: []int64{8}, Period: 20, Deadline: 20},
	}, []config.Window{{Start: 0, End: 5}, {Start: 10, End: 15}})
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.PR, 0, 0, 0, 5),
		ev(trace.EX, 0, 0, 0, 10),
		ev(trace.FIN, 0, 0, 0, 13),
	})
}

func TestDeadlineMiss(t *testing.T) {
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T1", Priority: 1, WCET: []int64{8}, Period: 10, Deadline: 5},
	}, nil)
	tr, a := run(t, sys)
	if a.Schedulable {
		t.Fatalf("should miss:\n%s", tr.Format(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 5), // killed at the deadline
	})
	if a.Jobs[0].ExecTime != 5 {
		t.Errorf("exec time = %d, want 5", a.Jobs[0].ExecTime)
	}
}

func TestStarvedJobNeverStarts(t *testing.T) {
	// Lo never gets the processor: Hi fills every window tick. Lo must have
	// an empty subtrace (no FIN for a job that never executed).
	sys := sys1(config.FPPS, []config.Task{
		{Name: "Hi", Priority: 2, WCET: []int64{10}, Period: 10, Deadline: 10},
		{Name: "Lo", Priority: 1, WCET: []int64{1}, Period: 10, Deadline: 10},
	}, nil)
	tr, a := run(t, sys)
	if a.Schedulable {
		t.Fatal("Lo can never run; configuration must be unschedulable")
	}
	for _, e := range tr.Events {
		if e.Job.Task == 1 {
			t.Errorf("starved job has event %+v", e)
		}
	}
	if a.Jobs[1].ExecTime != 0 || a.Jobs[1].Completed {
		t.Errorf("Lo stats = %+v", a.Jobs[1])
	}
}

// twoModuleFlow builds sender (module 1) → receiver (module 2) over a
// network link with delay 4.
func twoModuleFlow() *config.System {
	return &config.System{
		Name:      "flow",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "PS", Core: 0, Policy: config.FPPS,
				Tasks:   []config.Task{{Name: "S", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 10}},
				Windows: []config.Window{{Start: 0, End: 10}}},
			{Name: "PR", Core: 1, Policy: config.FPPS,
				Tasks:   []config.Task{{Name: "R", Priority: 1, WCET: []int64{2}, Period: 10, Deadline: 10}},
				Windows: []config.Window{{Start: 0, End: 10}}},
		},
		Messages: []config.Message{
			{Name: "m", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 4},
		},
	}
}

func TestDataDependencyWithLinkDelay(t *testing.T) {
	sys := twoModuleFlow()
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	// Receiver start = sender finish (3) + network delay (4) = 7: exactly
	// the whole-model precedence requirement of §3.
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 3),
		ev(trace.EX, 1, 0, 0, 7),
		ev(trace.FIN, 1, 0, 0, 9),
	})
}

func TestDataDependencySameModuleUsesMemoryDelay(t *testing.T) {
	sys := twoModuleFlow()
	sys.Cores[1].Module = 1 // same module: memory delay 1
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	norm := tr.Normalize()
	// Receiver starts at 3 + 1 = 4.
	var rStart int64 = -1
	for _, e := range norm.Events {
		if e.Job.Part == 1 && e.Type == trace.EX {
			rStart = e.Time
			break
		}
	}
	if rStart != 4 {
		t.Errorf("receiver start = %d, want 4:\n%s", rStart, norm.Format(sys))
	}
}

func TestReceiverStarvesWhenSenderMisses(t *testing.T) {
	sys := twoModuleFlow()
	sys.Partitions[0].Tasks[0].WCET = []int64{20} // sender can never finish
	sys.Partitions[0].Tasks[0].Deadline = 10
	tr, a := run(t, sys)
	if a.Schedulable {
		t.Fatalf("should be unschedulable:\n%s", tr.Format(sys))
	}
	// Receiver never became ready: no events for it at all.
	for _, e := range tr.Events {
		if e.Job.Part == 1 {
			t.Errorf("receiver has event %+v without data", e)
		}
	}
}

func TestBuildStructureFollowsAlgorithm1(t *testing.T) {
	sys := twoModuleFlow()
	m, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	// One automaton per task (2), per partition scheduler (2), per core (2),
	// per message (1).
	if got := len(m.Net.Automata); got != 7 {
		t.Fatalf("automata = %d, want 7", got)
	}
	roles := make(map[ChanRole]int)
	for _, info := range m.ChanInfos {
		roles[info.Role]++
	}
	want := map[ChanRole]int{
		RoleReady: 2, RoleFinished: 2, RoleWakeup: 2, RoleSleep: 2,
		RoleExec: 2, RolePreempt: 2, RoleSend: 2, RoleReceive: 1,
	}
	for r, n := range want {
		if roles[r] != n {
			t.Errorf("%s channels = %d, want %d", r, roles[r], n)
		}
	}
	if m.Horizon != 10 {
		t.Errorf("horizon = %d, want 10", m.Horizon)
	}
}

func TestBuildRejectsInvalidConfig(t *testing.T) {
	sys := twoModuleFlow()
	sys.Partitions[0].Tasks[0].Period = 0
	if _, err := Build(sys); err == nil {
		t.Error("expected validation error")
	}
}

// busySystem builds a system exercising preemption, windows, and a data
// dependency simultaneously — used for the determinism property test.
func busySystem() *config.System {
	return &config.System{
		Name:      "busy",
		CoreTypes: []string{"fast", "slow"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 1, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "A", Priority: 3, WCET: []int64{2, 3}, Period: 10, Deadline: 10},
					{Name: "B", Priority: 1, WCET: []int64{7, 9}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 8}, {Start: 12, End: 20}}},
			{Name: "P2", Core: 0, Policy: config.EDF,
				Tasks: []config.Task{
					{Name: "C", Priority: 1, WCET: []int64{2, 4}, Period: 20, Deadline: 12},
				},
				Windows: []config.Window{{Start: 8, End: 12}}},
			{Name: "P3", Core: 1, Policy: config.FPNPS,
				Tasks: []config.Task{
					{Name: "D", Priority: 2, WCET: []int64{2, 2}, Period: 20, Deadline: 20},
					{Name: "E", Priority: 1, WCET: []int64{3, 5}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 20}}},
		},
		Messages: []config.Message{
			{Name: "m1", SrcPart: 0, SrcTask: 1, DstPart: 2, DstTask: 1, MemDelay: 1, NetDelay: 3},
			{Name: "m2", SrcPart: 2, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 2},
		},
	}
}

// TestDeterminismAcrossChoosers is the paper's §3 theorem as a property
// test: every resolution of the NSA's nondeterminism yields the same system
// operation trace (after normalizing zero-effect interleaving patterns).
func TestDeterminismAcrossChoosers(t *testing.T) {
	sys := busySystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := Build(sys)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	refNorm := ref.Normalize()
	refAnalysis, err := trace.Analyze(sys, ref)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 25; seed++ {
		m2 := MustBuild(sys) // fresh network (engine state is per-run anyway)
		tr, _, err := m2.SimulateWith(nsa.RandomChooser{Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		norm := tr.Normalize()
		if !refNorm.EqualAsSets(norm) {
			t.Fatalf("seed %d: trace differs\nref:\n%s\ngot:\n%s",
				seed, refNorm.Format(sys), norm.Format(sys))
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Schedulable != refAnalysis.Schedulable {
			t.Fatalf("seed %d: verdict differs", seed)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	sys := busySystem()
	m := MustBuild(sys)
	tr, _, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	g := trace.Gantt(sys, tr, 1)
	if len(g) == 0 {
		t.Fatal("empty gantt")
	}
}

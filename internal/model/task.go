package model

import (
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// exprGuard compiles an internally generated guard source. The sources are
// produced from validated configurations, so failures are programming errors.
func exprGuard(nb *nsa.Builder, src string) sa.Guard {
	return sa.NewExprGuard(expr.MustParseResolve(src, nb.Scope(), expr.TypeBool))
}

func exprUpdate(nb *nsa.Builder, src string) sa.Update {
	return &sa.ExprUpdate{Stmts: expr.MustParseResolveUpdate(src, nb.Scope())}
}

func exprInv(nb *nsa.Builder, src string) sa.Invariant {
	inv, err := expr.ParseInvariant(src, nb.Scope())
	if err != nil {
		panic(err)
	}
	return inv
}

// buildTask constructs the T automaton for one task (the paper's base type
// T): release every P ticks, optional wait for data from incoming virtual
// links, ready announcement to the scheduler, preemptible execution measured
// by the stopwatch x (running only in the Executing location), completion at
// x == C with a data broadcast, and a deadline kill at rt == D.
//
// The job lifecycle:
//
//	Release* ─(data ready) ready!→ WaitExec ─exec?→ Executing ─(x==C) finished!→ SendData* ─send!→ Done
//	   │                              │  ▲               │(preempt?, x<C)
//	   └─(else)→ WaitData ─ready!─────┘  └───────────────┘
//	WaitData/WaitExec/Executing ─(rt==D) kill→ Done;  Done ─(rt==P)→ Release* or Finished
//
// (* = committed location).
func (m *Model) buildTask(nb *nsa.Builder, ref config.TaskRef) (*sa.Automaton, error) {
	sys := m.Sys
	p := &sys.Partitions[ref.Part]
	task := &p.Tasks[ref.Task]
	tv := m.tasks[ref]
	pv := &m.parts[ref.Part]

	P := task.Period
	D := task.Deadline
	C := sys.WCETOn(ref)
	nJobs := m.Horizon / P
	incoming := sys.IncomingMessages(ref)
	pi, ti := ref.Part, ref.Task
	name := func(base string) string { return fmt.Sprintf("%s_%d_%d", base, pi, ti) }

	if C > D {
		// Validated configurations allow this (the job can simply never
		// finish); the automaton handles it via the deadline kill.
		_ = C
	}

	b := sa.NewBuilder(fmt.Sprintf("T_%s", sys.TaskName(ref)))
	b.OwnClock(tv.x)
	// Time-driven events (releases, kills, completions) precede scheduler
	// reactions at the same instant.
	b.Priority(1)

	rtName := name("rt")
	xName := name("x")
	jobName := name("job")

	invActive := exprInv(nb, fmt.Sprintf("%s <= %d", rtName, D))
	invExec := exprInv(nb, fmt.Sprintf("%s <= %d && %s <= %d", xName, C, rtName, D))
	invDone := exprInv(nb, fmt.Sprintf("%s <= %d", rtName, P))

	stopX := sa.Stops(tv.x)
	release := b.Loc("Release", sa.Committed(), stopX)
	waitData := b.Loc("WaitData", sa.WithInvariant(invActive), stopX)
	waitExec := b.Loc("WaitExec", sa.WithInvariant(invActive), stopX)
	executing := b.Loc("Executing", sa.WithInvariant(invExec)) // x runs only here
	sendData := b.Loc("SendData", sa.Committed(), stopX)
	done := b.Loc("Done", sa.WithInvariant(invDone), stopX)
	finished := b.Loc("Finished", stopX)
	b.Init(release)

	// allDataReady: every incoming link has delivered the message for the
	// current job index (is_data_ready_h >= job+1). Variable-only guard.
	dataReady := func(env expr.Env) bool {
		k := env.Var(int(tv.job))
		for _, h := range incoming {
			if env.Var(int(m.dataReady[h])) < k+1 {
				return false
			}
		}
		return true
	}
	dataDeps := &sa.Deps{Vars: []sa.VarID{tv.job}}
	for _, h := range incoming {
		dataDeps.Vars = append(dataDeps.Vars, m.dataReady[h])
	}
	gData := &sa.GuardFunc{Desc: name("all_data_ready"), F: dataReady, Reads: dataDeps}
	gNoData := &sa.GuardFunc{Desc: "!" + name("all_data_ready"),
		F:     func(env expr.Env) bool { return !dataReady(env) },
		Reads: dataDeps}

	becomeReady := exprUpdate(nb, fmt.Sprintf("is_ready_%d_%d := 1", pi, ti))

	// Release: announce readiness immediately when data is available,
	// otherwise wait for deliveries.
	if len(incoming) == 0 {
		b.SendEdge(release, waitExec, nil, pv.readyCh, becomeReady)
	} else {
		b.SendEdge(release, waitExec, gData, pv.readyCh, becomeReady)
		b.Edge(release, waitData, gNoData, sa.None, nil)

		// WaitData: deadline kill first (a job whose deadline is reached
		// cannot become ready), then the data-ready announcement.
		b.Edge(waitData, done,
			exprGuard(nb, fmt.Sprintf("%s == %d", rtName, D)), sa.None,
			exprUpdate(nb, fmt.Sprintf("is_failed_%d_%d := is_failed_%d_%d + 1", pi, ti, pi, ti)))
		// Participate in delivery broadcasts of every incoming link, per the
		// base type's interface; the readiness guard is re-evaluated after
		// any action regardless.
		for _, h := range incoming {
			b.RecvEdge(waitData, waitData, nil, m.linkReceiveCh[h], nil)
		}
		b.SendEdge(waitData, waitExec, gData, pv.readyCh, becomeReady)
	}

	// WaitExec: dispatched by the scheduler, or killed at the deadline.
	b.RecvEdge(waitExec, executing, nil, tv.execCh,
		exprUpdate(nb, fmt.Sprintf("is_ready_%d_%d := 0", pi, ti)))
	b.SendEdge(waitExec, done,
		exprGuard(nb, fmt.Sprintf("%s == %d", rtName, D)), pv.finishedCh,
		exprUpdate(nb, fmt.Sprintf(
			"is_ready_%d_%d := 0, is_failed_%d_%d := is_failed_%d_%d + 1, last_finished_%d := %d",
			pi, ti, pi, ti, pi, ti, pi, ti)))

	// Executing: completion first (it wins ties with preemption and the
	// deadline), then preemption (only while strictly below the WCET), then
	// the deadline kill.
	b.SendEdge(executing, sendData,
		exprGuard(nb, fmt.Sprintf("%s == %d", xName, C)), pv.finishedCh,
		exprUpdate(nb, fmt.Sprintf("last_finished_%d := %d", pi, ti)))
	b.RecvEdge(executing, waitExec,
		exprGuard(nb, fmt.Sprintf("%s < %d", xName, C)), tv.preemptCh,
		exprUpdate(nb, fmt.Sprintf("is_ready_%d_%d := 1", pi, ti)))
	b.SendEdge(executing, done,
		exprGuard(nb, fmt.Sprintf("%s == %d && %s < %d", rtName, D, xName, C)), pv.finishedCh,
		exprUpdate(nb, fmt.Sprintf(
			"is_failed_%d_%d := is_failed_%d_%d + 1, last_finished_%d := %d",
			pi, ti, pi, ti, pi, ti)))

	// SendData: broadcast completion data to all outgoing virtual links
	// (zero receivers are fine for tasks without outgoing messages).
	b.SendEdge(sendData, done, nil, tv.sendCh, nil)

	// Done: next release (resetting the release clock, execution stopwatch
	// and absolute deadline), or final quiescence after the last job.
	if nJobs > 1 {
		b.Edge(done, release,
			exprGuard(nb, fmt.Sprintf("%s == %d && %s < %d", rtName, P, jobName, nJobs-1)), sa.None,
			exprUpdate(nb, fmt.Sprintf(
				"%s := %s + 1, %s := 0, %s := 0, deadline_%d_%d := %s * %d + %d",
				jobName, jobName, rtName, xName, pi, ti, jobName, P, D)))
	}
	b.Edge(done, finished,
		exprGuard(nb, fmt.Sprintf("%s == %d && %s == %d", rtName, P, jobName, nJobs-1)), sa.None, nil)

	return b.Build()
}

package model

import (
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/trace"
)

// TestTracePeriodicity verifies the paper's premise that the schedule
// "is repeated periodically with a period L": simulating two hyperperiods
// yields a second half identical to the first shifted by L (comparing
// (task, type, time mod L) with job indices shifted by L/P).
func TestTracePeriodicity(t *testing.T) {
	sys := busySystem()
	l := sys.Hyperperiod()
	m, err := BuildCycles(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, res, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != 2*l {
		t.Fatalf("ran to %d, want %d", res.Time, 2*l)
	}
	norm := tr.Normalize()
	var first, second []trace.Event
	for _, ev := range norm.Events {
		// Attribute events by the job's release cycle (events at exactly
		// t = L can belong to either cycle's jobs).
		jobsPerL := int(l / sys.Partitions[ev.Job.Part].Tasks[ev.Job.Task].Period)
		if ev.Job.Job < jobsPerL {
			first = append(first, ev)
		} else {
			ev.Time -= l
			ev.Job.Job -= jobsPerL
			second = append(second, ev)
		}
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("halves differ in size: %d vs %d", len(first), len(second))
	}
	a := &trace.Trace{Events: first}
	b := &trace.Trace{Events: second}
	if !a.EqualAsSets(b) {
		t.Fatalf("second hyperperiod differs from the first:\nfirst:\n%s\nsecond:\n%s",
			a.Format(sys), b.Format(sys))
	}
}

func TestBuildCyclesValidation(t *testing.T) {
	sys := busySystem()
	if _, err := BuildCycles(sys, 0); err == nil {
		t.Error("zero cycles must be rejected")
	}
	m, err := BuildCycles(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Horizon != 3*sys.Hyperperiod() {
		t.Errorf("horizon = %d", m.Horizon)
	}
}

// TestMultiCycleSchedulabilityMatchesSingle: the verdict over one
// hyperperiod predicts the verdict over many (determinism + periodicity).
func TestMultiCycleSchedulabilityMatchesSingle(t *testing.T) {
	sys := busySystem()
	one, _, err := MustBuild(sys).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	aOne, err := trace.Analyze(sys, one)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildCycles(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	// Check every job of both hyperperiods by hand: exec sums and finishes.
	l := sys.Hyperperiod()
	stats := make(map[trace.JobID]int64)
	running := make(map[trace.JobID]int64)
	missing := 0
	for _, ev := range two.Events {
		switch ev.Type {
		case trace.EX:
			running[ev.Job] = ev.Time
		case trace.PR, trace.FIN:
			if st, ok := running[ev.Job]; ok {
				stats[ev.Job] += ev.Time - st
				delete(running, ev.Job)
			}
		}
	}
	for pi := range sys.Partitions {
		for ti := range sys.Partitions[pi].Tasks {
			wcet := sys.WCETOn(config.TaskRef{Part: pi, Task: ti})
			jobs := 2 * l / sys.Partitions[pi].Tasks[ti].Period
			for k := int64(0); k < jobs; k++ {
				if stats[trace.JobID{Part: pi, Task: ti, Job: int(k)}] != wcet {
					missing++
				}
			}
		}
	}
	if aOne.Schedulable != (missing == 0) {
		t.Errorf("single-cycle verdict %t, two-cycle missing=%d", aOne.Schedulable, missing)
	}
}

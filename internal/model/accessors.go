package model

import (
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// FailedVars returns the is_failed variable of every task, in (partition,
// task) order. A state with any non-zero is_failed witnesses a deadline
// miss, so "Σ is_failed == 0 in every reachable state and every run
// completes" is the schedulability criterion as a state property.
func (m *Model) FailedVars() []sa.VarID {
	var out []sa.VarID
	for pi := range m.Sys.Partitions {
		for ti := range m.Sys.Partitions[pi].Tasks {
			out = append(out, m.tasks[config.TaskRef{Part: pi, Task: ti}].isFailed)
		}
	}
	return out
}

// AllJobsDone reports whether every task automaton has reached its final
// location (all jobs of the hyperperiod finished or failed) in s.
func (m *Model) AllJobsDone(s *nsa.State) bool {
	for pi := range m.Sys.Partitions {
		for ti := range m.Sys.Partitions[pi].Tasks {
			name := "T_" + m.Sys.TaskName(config.TaskRef{Part: pi, Task: ti})
			ai := m.Net.AutomatonIndex(name)
			a := m.Net.Automata[ai]
			if a.LocationName(s.Locs[ai]) != "Finished" {
				return false
			}
		}
	}
	return true
}

// IsReadyVar returns the is_ready variable of a task.
func (m *Model) IsReadyVar(ref config.TaskRef) sa.VarID { return m.tasks[ref].isReady }

// FailedVar returns the is_failed variable of a task.
func (m *Model) FailedVar(ref config.TaskRef) sa.VarID { return m.tasks[ref].isFailed }

// CurVar returns the partition scheduler's current-task variable.
func (m *Model) CurVar(pi int) sa.VarID { return m.parts[pi].cur }

// LastFinishedVar returns the partition's last_finished variable, naming the
// task whose job most recently synchronized on finished_j.
func (m *Model) LastFinishedVar(pi int) sa.VarID { return m.parts[pi].lastFin }

// IsCompletion reports whether a FIN observed in post-state s was a proper
// completion (the execution stopwatch reached the WCET) rather than a
// deadline kill.
func (m *Model) IsCompletion(ref config.TaskRef, s *nsa.State) bool {
	return s.Clocks[m.tasks[ref].x] == m.Sys.WCETOn(ref)
}

// SendChan returns the completion broadcast channel of a task.
func (m *Model) SendChan(ref config.TaskRef) sa.ChanID { return m.tasks[ref].sendCh }

// ReceiveChan returns the delivery broadcast channel of message h.
func (m *Model) ReceiveChan(h int) sa.ChanID { return m.linkReceiveCh[h] }

// Package model is the concrete automata library of the paper: parametric
// stopwatch automata for tasks (T), task schedulers (TS: FPPS, FPNPS, EDF),
// core schedulers (CS) and virtual links (L), plus Algorithm 1 — automatic
// construction of an NSA instance from a system configuration — and the
// mapping from NSA synchronization traces to system operation traces.
package model

import (
	"context"
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
	"stopwatchsim/internal/trace"
)

// ChanRole describes what a channel means at the system level.
type ChanRole uint8

// Channel roles in the general NSA.
const (
	RoleNone     ChanRole = iota
	RoleExec              // exec_jk: job execution start/resumption (→ EX)
	RolePreempt           // preempt_jk: job preemption (→ PR)
	RoleReady             // ready_j: ready job arrival at the scheduler
	RoleFinished          // finished_j: job finish by completion or deadline (→ FIN)
	RoleWakeup            // wakeup_j: window start
	RoleSleep             // sleep_j: window end
	RoleSend              // send_jk: job output to its virtual links
	RoleReceive           // receive_h: delivery on virtual link h
)

var roleNames = [...]string{
	RoleNone: "none", RoleExec: "exec", RolePreempt: "preempt", RoleReady: "ready",
	RoleFinished: "finished", RoleWakeup: "wakeup", RoleSleep: "sleep",
	RoleSend: "send", RoleReceive: "receive",
}

func (r ChanRole) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// ChanInfo ties a channel to its role and the system entity it belongs to.
type ChanInfo struct {
	Role ChanRole
	Task config.TaskRef // valid for RoleExec, RolePreempt, RoleSend
	Part int            // valid for RoleReady, RoleFinished, RoleWakeup, RoleSleep
	Link int            // valid for RoleReceive (message index)
}

// taskVars gathers per-task state handles.
type taskVars struct {
	isReady  sa.VarID
	isFailed sa.VarID
	prio     sa.VarID
	deadline sa.VarID
	job      sa.VarID // index of the current job (0-based)
	rt       sa.ClockID
	x        sa.ClockID // execution stopwatch

	execCh    sa.ChanID
	preemptCh sa.ChanID
	sendCh    sa.ChanID
}

// partVars gathers per-partition handles.
type partVars struct {
	readyCh    sa.ChanID
	finishedCh sa.ChanID
	wakeupCh   sa.ChanID
	sleepCh    sa.ChanID
	lastFin    sa.VarID // which task index synced finished last
	cur        sa.VarID // task index currently executing, -1 when none
}

// Model is an NSA instance constructed from a configuration, with the
// bookkeeping needed to interpret its traces at the system level.
type Model struct {
	Sys *config.System
	Net *nsa.Network

	// Horizon is the hyperperiod L: a run over [0, L] covers every job.
	Horizon int64

	// ChanInfos[ch] describes channel ch.
	ChanInfos []ChanInfo

	tasks         map[config.TaskRef]*taskVars
	parts         []partVars
	dataReady     []sa.VarID  // per message
	linkReceiveCh []sa.ChanID // per message
}

// Build runs Algorithm 1: it validates the configuration and constructs the
// NSA instance with one T automaton per task, one TS per partition, one CS
// per core and one L per message. The horizon is one hyperperiod, which
// covers every job; BuildCycles extends it.
func Build(sys *config.System) (*Model, error) {
	return BuildCycles(sys, 1)
}

// BuildCycles builds the model for a horizon of the given number of
// hyperperiods: tasks release cycles·L/P jobs and the window timetable
// wraps every L. One cycle decides schedulability (the schedule repeats
// identically, which TestTracePeriodicity verifies); longer horizons exist
// for studying the repetition itself.
func BuildCycles(sys *config.System, cycles int64) (m *Model, err error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cycles < 1 {
		return nil, fmt.Errorf("model: non-positive cycle count %d", cycles)
	}
	// Construction boundary: the component builders compile internally
	// generated expression sources with Must* helpers, which panic with
	// error values. A validated configuration should never trip them, but a
	// construction bug must surface as a diagnosable error to the caller
	// rather than crash a service. Non-error panics still propagate.
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(error)
			if !ok {
				panic(r)
			}
			m, err = nil, fmt.Errorf("model: internal construction failure for configuration %q: %w", sys.Name, re)
		}
	}()
	m = &Model{
		Sys:     sys,
		Horizon: cycles * sys.Hyperperiod(),
		tasks:   make(map[config.TaskRef]*taskVars),
		parts:   make([]partVars, len(sys.Partitions)),
	}
	nb := nsa.NewBuilder()

	// Declare all variables and channels first (the automata reference them
	// across partition boundaries through the data-flow guards).
	m.dataReady = make([]sa.VarID, len(sys.Messages))
	for h := range sys.Messages {
		m.dataReady[h] = nb.Var(fmt.Sprintf("is_data_ready_%d", h), 0)
	}
	for pi := range sys.Partitions {
		p := &sys.Partitions[pi]
		pv := &m.parts[pi]
		pv.readyCh = nb.Chan(fmt.Sprintf("ready_%d", pi))
		pv.finishedCh = nb.Chan(fmt.Sprintf("finished_%d", pi))
		pv.wakeupCh = nb.Chan(fmt.Sprintf("wakeup_%d", pi))
		pv.sleepCh = nb.Chan(fmt.Sprintf("sleep_%d", pi))
		pv.lastFin = nb.Var(fmt.Sprintf("last_finished_%d", pi), -1)
		pv.cur = nb.Var(fmt.Sprintf("cur_%d", pi), -1)
		for ti := range p.Tasks {
			ref := config.TaskRef{Part: pi, Task: ti}
			tv := &taskVars{}
			tv.isReady = nb.BoundedVar(fmt.Sprintf("is_ready_%d_%d", pi, ti), 0, 0, 1)
			tv.isFailed = nb.Var(fmt.Sprintf("is_failed_%d_%d", pi, ti), 0)
			tv.prio = nb.Var(fmt.Sprintf("prio_%d_%d", pi, ti), int64(p.Tasks[ti].Priority))
			tv.deadline = nb.Var(fmt.Sprintf("deadline_%d_%d", pi, ti), p.Tasks[ti].Deadline)
			tv.job = nb.Var(fmt.Sprintf("job_%d_%d", pi, ti), 0)
			tv.rt = nb.Clock(fmt.Sprintf("rt_%d_%d", pi, ti))
			tv.x = nb.Clock(fmt.Sprintf("x_%d_%d", pi, ti))
			tv.execCh = nb.Chan(fmt.Sprintf("exec_%d_%d", pi, ti))
			tv.preemptCh = nb.Chan(fmt.Sprintf("preempt_%d_%d", pi, ti))
			tv.sendCh = nb.BroadcastChan(fmt.Sprintf("send_%d_%d", pi, ti))
			m.tasks[ref] = tv
		}
	}
	m.linkReceiveCh = make([]sa.ChanID, len(sys.Messages))
	for h := range sys.Messages {
		m.linkReceiveCh[h] = nb.BroadcastChan(fmt.Sprintf("receive_%d", h))
	}

	// Automata, in Algorithm 1 order: per core, the partitions bound to it
	// (tasks then their scheduler), then the core scheduler; finally the
	// virtual links.
	for ci := range sys.Cores {
		for pi := range sys.Partitions {
			if sys.Partitions[pi].Core != ci {
				continue
			}
			for ti := range sys.Partitions[pi].Tasks {
				a, err := m.buildTask(nb, config.TaskRef{Part: pi, Task: ti})
				if err != nil {
					return nil, err
				}
				nb.Add(a)
			}
			a, err := m.buildScheduler(nb, pi)
			if err != nil {
				return nil, err
			}
			nb.Add(a)
		}
		a, err := m.buildCoreScheduler(nb, ci)
		if err != nil {
			return nil, err
		}
		nb.Add(a)
	}
	// Virtual links: fixed-delay automata for unrouted messages, switch
	// port automata (the switched-network extension) for routed ones.
	for h := range sys.Messages {
		if len(sys.RouteOf(h)) > 0 {
			continue
		}
		a, err := m.buildLink(nb, h)
		if err != nil {
			return nil, err
		}
		nb.Add(a)
	}
	if sys.Net != nil {
		now := nb.Clock("now") // never stopped: equals model time
		fwd := make(map[config.PortHop]sa.ChanID)
		for h := range sys.Messages {
			route := sys.RouteOf(h)
			for i := 1; i < len(route); i++ {
				fwd[config.PortHop{Message: h, Hop: i}] =
					nb.Chan(fmt.Sprintf("fwd_%d_%d", h, i))
			}
		}
		for p := range sys.Net.Ports {
			if len(sys.MessagesThroughPort(p)) == 0 {
				continue
			}
			a, err := m.buildPort(nb, p, fwd, now)
			if err != nil {
				return nil, err
			}
			nb.Add(a)
		}
	}

	net, err := nb.Build()
	if err != nil {
		return nil, err
	}
	m.Net = net

	// Channel role table for trace interpretation.
	m.ChanInfos = make([]ChanInfo, len(net.Chans))
	for pi := range sys.Partitions {
		pv := &m.parts[pi]
		m.ChanInfos[pv.readyCh] = ChanInfo{Role: RoleReady, Part: pi}
		m.ChanInfos[pv.finishedCh] = ChanInfo{Role: RoleFinished, Part: pi}
		m.ChanInfos[pv.wakeupCh] = ChanInfo{Role: RoleWakeup, Part: pi}
		m.ChanInfos[pv.sleepCh] = ChanInfo{Role: RoleSleep, Part: pi}
		for ti := range sys.Partitions[pi].Tasks {
			ref := config.TaskRef{Part: pi, Task: ti}
			tv := m.tasks[ref]
			m.ChanInfos[tv.execCh] = ChanInfo{Role: RoleExec, Task: ref}
			m.ChanInfos[tv.preemptCh] = ChanInfo{Role: RolePreempt, Task: ref}
			m.ChanInfos[tv.sendCh] = ChanInfo{Role: RoleSend, Task: ref}
		}
	}
	for h := range sys.Messages {
		m.ChanInfos[m.linkReceiveCh[h]] = ChanInfo{Role: RoleReceive, Link: h}
	}
	return m, nil
}

// MustBuild is Build panicking on error.
func MustBuild(sys *config.System) *Model {
	m, err := Build(sys)
	if err != nil {
		panic(err)
	}
	return m
}

// JobOf returns the current job index of the task in state s.
func (m *Model) JobOf(ref config.TaskRef, s *nsa.State) int {
	return int(s.Vars[m.tasks[ref].job])
}

// DataReadyVar returns the is_data_ready variable of message h.
func (m *Model) DataReadyVar(h int) sa.VarID { return m.dataReady[h] }

// TaskClocks returns the release-relative clock and the execution stopwatch
// of a task, for observers and tests.
func (m *Model) TaskClocks(ref config.TaskRef) (rt, x sa.ClockID) {
	tv := m.tasks[ref]
	return tv.rt, tv.x
}

// TaskChans returns the exec and preempt channels of a task.
func (m *Model) TaskChans(ref config.TaskRef) (exec, preempt sa.ChanID) {
	tv := m.tasks[ref]
	return tv.execCh, tv.preemptCh
}

// PartChans returns the ready, finished, wakeup and sleep channels of a
// partition.
func (m *Model) PartChans(pi int) (ready, finished, wakeup, sleep sa.ChanID) {
	pv := &m.parts[pi]
	return pv.readyCh, pv.finishedCh, pv.wakeupCh, pv.sleepCh
}

// Simulate interprets the model over one hyperperiod with the deterministic
// chooser and returns the system operation trace.
func (m *Model) Simulate() (*trace.Trace, nsa.Result, error) {
	return m.SimulateWith(nil)
}

// SimulateWith interprets the model with the given chooser (nil for the
// deterministic default), returning the system operation trace.
func (m *Model) SimulateWith(ch nsa.Chooser) (*trace.Trace, nsa.Result, error) {
	return m.SimulateContext(context.Background(), ch, nsa.Budget{})
}

// SimulateContext interprets the model under a context and resource budget.
// On cancellation or budget exhaustion the error is a *nsa.RunError and the
// returned trace holds the prefix of system events produced before the
// stop, so callers can report partial progress (jobs completed, model time
// reached).
func (m *Model) SimulateContext(ctx context.Context, ch nsa.Chooser, b nsa.Budget) (*trace.Trace, nsa.Result, error) {
	return m.SimulateEngine(ctx, nsa.Options{Chooser: ch, Budget: b})
}

// SimulateEngine interprets the model with caller-supplied engine options
// (e.g. Naive or CheckEngine for differential validation of the
// event-driven runtime). The model fills in its horizon and appends the
// trace-building listener; the remaining options pass through.
func (m *Model) SimulateEngine(ctx context.Context, opts nsa.Options) (*trace.Trace, nsa.Result, error) {
	tb := m.NewTraceBuilder()
	opts.Horizon = m.Horizon
	opts.Listeners = append(opts.Listeners, tb)
	eng := nsa.NewEngine(m.Net, opts)
	res, err := eng.RunContext(ctx)
	if err != nil {
		return tb.Trace(), res, err
	}
	return tb.Trace(), res, nil
}

package model

import (
	"fmt"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"

	"stopwatchsim/internal/config"
)

// policyLogic abstracts the dispatch/preemption decisions that differ
// between the TS implementations. Decisions read the shared readiness,
// priority, deadline and cur variables plus the per-task response-time
// clocks (the aliveness test compares rt against the relative deadline);
// the read footprints are declared so the event-driven interpreter
// re-evaluates scheduler guards only when one of those inputs changes.
type policyLogic struct {
	// pick returns the task index to dispatch, or -1 when none is ready.
	pick func(env expr.Env) int
	// preempts reports whether some ready task should preempt the current
	// one; nil for non-preemptive policies.
	preempts func(env expr.Env) bool
	// pickReads and preemptsReads are the read footprints of the two
	// decisions (preempts additionally reads cur).
	pickReads     sa.Deps
	preemptsReads sa.Deps
}

// policyFor builds the dispatch/preemption logic for non-RR policies;
// round-robin has its own scheduler shape (see buildSchedulerRR).
func (m *Model) policyFor(pi int) policyLogic {
	p := &m.Sys.Partitions[pi]
	k := len(p.Tasks)
	ready := make([]int, k)
	prio := make([]int, k)
	dl := make([]int, k)
	rt := make([]int, k)
	relDeadline := make([]int64, k)
	for ti := 0; ti < k; ti++ {
		tv := m.tasks[config.TaskRef{Part: pi, Task: ti}]
		ready[ti] = int(tv.isReady)
		prio[ti] = int(tv.prio)
		dl[ti] = int(tv.deadline)
		rt[ti] = int(tv.rt)
		relDeadline[ti] = p.Tasks[ti].Deadline
	}
	cur := int(m.parts[pi].cur)

	// alive: the job is ready and its deadline has not been reached — a job
	// at its deadline "can not be executed anymore" (§1), so the scheduler
	// never dispatches it regardless of how the simultaneous kill and
	// dispatch transitions interleave.
	alive := func(env expr.Env, ti int) bool {
		return env.Var(ready[ti]) == 1 && env.Clock(rt[ti]) < relDeadline[ti]
	}

	// better reports whether ready task a beats ready task b under the
	// policy, with the task index as the deterministic tie-breaker.
	var better func(env expr.Env, a, b int) bool
	switch p.Policy {
	case config.FPPS, config.FPNPS:
		better = func(env expr.Env, a, b int) bool {
			pa, pb := env.Var(prio[a]), env.Var(prio[b])
			return pa > pb || (pa == pb && a < b)
		}
	case config.EDF:
		better = func(env expr.Env, a, b int) bool {
			da, db := env.Var(dl[a]), env.Var(dl[b])
			return da < db || (da == db && a < b)
		}
	}

	pick := func(env expr.Env) int {
		best := -1
		for ti := 0; ti < k; ti++ {
			if !alive(env, ti) {
				continue
			}
			if best < 0 || better(env, ti, best) {
				best = ti
			}
		}
		return best
	}

	logic := policyLogic{pick: pick}
	for ti := 0; ti < k; ti++ {
		logic.pickReads.Vars = append(logic.pickReads.Vars,
			sa.VarID(ready[ti]), sa.VarID(prio[ti]), sa.VarID(dl[ti]))
		logic.pickReads.Clocks = append(logic.pickReads.Clocks, sa.ClockID(rt[ti]))
	}
	logic.preemptsReads = sa.Deps{
		Vars:   append(append([]sa.VarID(nil), logic.pickReads.Vars...), sa.VarID(cur)),
		Clocks: logic.pickReads.Clocks,
	}
	if p.Policy == config.FPPS || p.Policy == config.EDF {
		// Strict preemption test: the challenger must beat the current job
		// without the tie-breaker (equal priority/deadline does not preempt).
		logic.preempts = func(env expr.Env) bool {
			c := int(env.Var(cur))
			if c < 0 {
				return false
			}
			for ti := 0; ti < k; ti++ {
				if ti == c || !alive(env, ti) {
					continue
				}
				switch p.Policy {
				case config.FPPS:
					if env.Var(prio[ti]) > env.Var(prio[c]) {
						return true
					}
				case config.EDF:
					if env.Var(dl[ti]) < env.Var(dl[c]) {
						return true
					}
				}
			}
			return false
		}
	}
	return logic
}

// buildScheduler constructs the TS automaton for partition pi (the paper's
// base type TS), implementing the partition's scheduling policy.
//
// Structure (PreemptCheck exists only for preemptive policies):
//
//	Asleep ─wakeup?→ Dispatch* ─exec_k!→ Running ─ready?→ PreemptCheck* ─preempt_k!→ Dispatch*
//	   ▲                │(none)              │finished?(cur)            │(no better)
//	   └──sleep?────── Idle                  ▼                          ▼
//	                                      Dispatch*                  Running
//	Running ─sleep?→ PreSleep* ─preempt_cur!→ Asleep
//
// (* = committed). Every state accepts finished? so deadline kills are never
// blocked, and Asleep accepts ready? so releases outside windows are heard.
func (m *Model) buildScheduler(nb *nsa.Builder, pi int) (*sa.Automaton, error) {
	if m.Sys.Partitions[pi].Policy == config.RR {
		return m.buildSchedulerRR(nb, pi)
	}
	p := &m.Sys.Partitions[pi]
	pv := &m.parts[pi]
	k := len(p.Tasks)
	logic := m.policyFor(pi)
	curID := int(pv.cur)
	lastFinID := int(pv.lastFin)

	b := sa.NewBuilder(fmt.Sprintf("TS_%s_%s", p.Policy, p.Name))
	asleep := b.Loc("Asleep")
	dispatch := b.Loc("Dispatch", sa.Committed())
	idle := b.Loc("Idle")
	running := b.Loc("Running")
	preSleep := b.Loc("PreSleep", sa.Committed())
	// Relay locations for finished?: the guard of a synchronizing edge is
	// evaluated in the pre-state and cannot see the task's last_finished
	// update on the same transition, so the scheduler first takes the sync
	// unconditionally into a committed relay and routes from there.
	runningFin := b.Loc("RunningFin", sa.Committed())
	preSleepFin := b.Loc("PreSleepFin", sa.Committed())
	var preemptCheck, preemptCheckFin sa.LocID
	preemptive := logic.preempts != nil
	if preemptive {
		preemptCheck = b.Loc("PreemptCheck", sa.Committed())
		preemptCheckFin = b.Loc("PreemptCheckFin", sa.Committed())
	}
	b.Init(asleep)

	finDeps := &sa.Deps{Vars: []sa.VarID{sa.VarID(lastFinID), sa.VarID(curID)}}
	curDeps := &sa.Deps{Vars: []sa.VarID{sa.VarID(curID)}}
	gFinCur := &sa.GuardFunc{Desc: fmt.Sprintf("last_finished_%d == cur_%d", pi, pi),
		F:     func(env expr.Env) bool { return env.Var(lastFinID) == env.Var(curID) },
		Reads: finDeps}
	gFinOther := &sa.GuardFunc{Desc: fmt.Sprintf("last_finished_%d != cur_%d", pi, pi),
		F:     func(env expr.Env) bool { return env.Var(lastFinID) != env.Var(curID) },
		Reads: finDeps}
	clearCur := &sa.UpdateFunc{Desc: fmt.Sprintf("cur_%d := -1", pi),
		F:      func(env expr.MutableEnv) { env.SetVar(curID, -1) },
		Writes: curDeps}

	// Asleep: hear releases and kills, wake on the window start.
	b.RecvEdge(asleep, asleep, nil, pv.readyCh, nil)
	b.RecvEdge(asleep, asleep, nil, pv.finishedCh, nil)
	b.RecvEdge(asleep, dispatch, nil, pv.wakeupCh, nil)

	// Dispatch: pick the best ready task, or idle; a window may end at the
	// very same instant.
	b.RecvEdge(dispatch, asleep, nil, pv.sleepCh, nil)
	for ti := 0; ti < k; ti++ {
		ti := ti
		g := &sa.GuardFunc{Desc: fmt.Sprintf("pick_%d == %d", pi, ti),
			F:     func(env expr.Env) bool { return logic.pick(env) == ti },
			Reads: &logic.pickReads}
		u := &sa.UpdateFunc{Desc: fmt.Sprintf("cur_%d := %d", pi, ti),
			F:      func(env expr.MutableEnv) { env.SetVar(curID, int64(ti)) },
			Writes: curDeps}
		b.SendEdge(dispatch, running, g, m.tasks[config.TaskRef{Part: pi, Task: ti}].execCh, u)
	}
	b.Edge(dispatch, idle,
		&sa.GuardFunc{Desc: fmt.Sprintf("pick_%d == -1", pi),
			F:     func(env expr.Env) bool { return logic.pick(env) < 0 },
			Reads: &logic.pickReads},
		sa.None, nil)

	// Idle: react to releases (and, defensively, kills), sleep on demand.
	b.RecvEdge(idle, dispatch, nil, pv.readyCh, nil)
	b.RecvEdge(idle, dispatch, nil, pv.finishedCh, nil)
	b.RecvEdge(idle, asleep, nil, pv.sleepCh, nil)

	// Running.
	b.RecvEdge(running, runningFin, nil, pv.finishedCh, nil)
	if preemptive {
		b.RecvEdge(running, preemptCheck, nil, pv.readyCh, nil)
	} else {
		b.RecvEdge(running, running, nil, pv.readyCh, nil)
	}
	b.RecvEdge(running, preSleep, nil, pv.sleepCh, nil)

	// RunningFin: the current job finished (re-dispatch) or another queued
	// job was killed at its deadline (keep running).
	b.Edge(runningFin, dispatch, gFinCur, sa.None, clearCur)
	b.Edge(runningFin, running, gFinOther, sa.None, nil)

	if preemptive {
		// PreemptCheck: completion beats preemption (the task refuses
		// preempt? at x == C, and finished? is accepted here), then the
		// preemption proper, then back to Running.
		b.RecvEdge(preemptCheck, preemptCheckFin, nil, pv.finishedCh, nil)
		for ti := 0; ti < k; ti++ {
			ti := ti
			g := &sa.GuardFunc{Desc: fmt.Sprintf("cur_%d == %d && preempts_%d", pi, ti, pi),
				F: func(env expr.Env) bool {
					return env.Var(curID) == int64(ti) && logic.preempts(env)
				},
				Reads: &logic.preemptsReads}
			b.SendEdge(preemptCheck, dispatch, g,
				m.tasks[config.TaskRef{Part: pi, Task: ti}].preemptCh, clearCur)
		}
		b.Edge(preemptCheck, running,
			&sa.GuardFunc{Desc: fmt.Sprintf("!preempts_%d", pi),
				F:     func(env expr.Env) bool { return !logic.preempts(env) },
				Reads: &logic.preemptsReads},
			sa.None, nil)
		b.Edge(preemptCheckFin, dispatch, gFinCur, sa.None, clearCur)
		b.Edge(preemptCheckFin, preemptCheck, gFinOther, sa.None, nil)
	}

	// PreSleep: stop the current job before sleeping; it may complete or be
	// killed at this same instant instead.
	b.RecvEdge(preSleep, preSleepFin, nil, pv.finishedCh, nil)
	for ti := 0; ti < k; ti++ {
		ti := ti
		g := &sa.GuardFunc{Desc: fmt.Sprintf("cur_%d == %d", pi, ti),
			F:     func(env expr.Env) bool { return env.Var(curID) == int64(ti) },
			Reads: curDeps}
		b.SendEdge(preSleep, asleep, g,
			m.tasks[config.TaskRef{Part: pi, Task: ti}].preemptCh, clearCur)
	}
	b.Edge(preSleepFin, asleep, gFinCur, sa.None, clearCur)
	b.Edge(preSleepFin, preSleep, gFinOther, sa.None, nil)

	return b.Build()
}

package model

import (
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// portState bundles the shared-variable handles of one port automaton's
// FIFO: ring buffers of queued message indices and their arrival times,
// head/length counters, the message in service and its transmission time.
type portState struct {
	qmsg  int // base index of the message ring
	qtime int // base index of the arrival-time ring
	head  int
	qlen  int
	cur   int
	txcur int
	cap   int
	now   int // index of the global "now" clock
}

// buildPort constructs the automaton of switch output port p: a FIFO
// serialization point. Frames enqueue from sender-task completion
// broadcasts (first hop) or forward channels from the previous port; the
// port serves one frame at a time for the message's TxTime, then forwards
// it to the next hop or delivers it (is_data_ready++ and the receive
// broadcast). Same-instant arrivals are queued in message-index order, so
// the FIFO content — and with it the whole network — stays deterministic
// under any transition interleaving.
func (m *Model) buildPort(nb *nsa.Builder, p int, fwd map[config.PortHop]sa.ChanID, now sa.ClockID) (*sa.Automaton, error) {
	sys := m.Sys
	hops := sys.MessagesThroughPort(p)
	name := fmt.Sprintf("port_%d", p)

	// Queue capacity: every routed message can have at most L/P frames
	// outstanding simultaneously.
	capacity := 0
	for _, ph := range hops {
		msg := &sys.Messages[ph.Message]
		period := sys.Partitions[msg.SrcPart].Tasks[msg.SrcTask].Period
		capacity += int(m.Horizon / period)
	}
	if capacity < 1 {
		capacity = 1
	}

	ps := &portState{
		qmsg:  int(nb.VarArray(name+"_qmsg", capacity, -1)),
		qtime: int(nb.VarArray(name+"_qtime", capacity, -1)),
		head:  int(nb.Var(name+"_head", 0)),
		qlen:  int(nb.Var(name+"_len", 0)),
		cur:   int(nb.Var(name+"_cur", -1)),
		txcur: int(nb.Var(name+"_txcur", 0)),
		cap:   capacity,
		now:   int(now),
	}
	y := nb.Clock(name + "_y")

	b := sa.NewBuilder(fmt.Sprintf("Port_%s", sys.Net.Ports[p].Name))
	b.OwnClock(y)
	b.Priority(1) // network events are time-driven, like task releases

	idle := b.Loc("Idle", sa.Stops(y))
	busy := b.Loc("Busy", sa.WithInvariant(expr.MustCompileInvariant(
		expr.MustParseResolve(fmt.Sprintf("%s_y <= %s_txcur", name, name), nb.Scope(), expr.TypeBool))))
	b.Init(idle)

	// Input edges: receptive in Idle and Busy alike, so enqueues never
	// block. First-hop inputs come from sender-task send broadcasts (one
	// edge per distinct sender, enqueuing all of that sender's messages
	// entering the network at this port); later hops from forward channels.
	firstHop := make(map[config.TaskRef][]int) // sender -> message indices
	for _, ph := range hops {
		if ph.Hop != 0 {
			continue
		}
		msg := &sys.Messages[ph.Message]
		ref := config.TaskRef{Part: msg.SrcPart, Task: msg.SrcTask}
		firstHop[ref] = append(firstHop[ref], ph.Message)
	}
	// Declared footprints: the FIFO rings as whole ranges, since enqueue and
	// dequeue touch data-dependent slots.
	ring := make([]sa.VarID, 0, 2*capacity)
	for i := 0; i < capacity; i++ {
		ring = append(ring, sa.VarID(ps.qmsg+i), sa.VarID(ps.qtime+i))
	}
	enqueueWrites := &sa.Deps{Vars: append(append([]sa.VarID(nil), ring...), sa.VarID(ps.qlen))}
	addInput := func(loc sa.LocID, ch sa.ChanID, msgs []int, desc string) {
		msgs = append([]int(nil), msgs...)
		u := &sa.UpdateFunc{Desc: desc, F: func(env expr.MutableEnv) {
			for _, h := range msgs {
				ps.enqueue(env, int64(h))
			}
		}, Writes: enqueueWrites}
		b.RecvEdge(loc, loc, nil, ch, u)
	}
	for ti := range sys.Partitions {
		for tj := range sys.Partitions[ti].Tasks {
			ref := config.TaskRef{Part: ti, Task: tj}
			if msgs, ok := firstHop[ref]; ok {
				desc := fmt.Sprintf("%s: enqueue from %s", name, sys.TaskName(ref))
				addInput(idle, m.tasks[ref].sendCh, msgs, desc)
				addInput(busy, m.tasks[ref].sendCh, msgs, desc)
			}
		}
	}
	for _, ph := range hops {
		if ph.Hop == 0 {
			continue
		}
		ch := fwd[ph]
		desc := fmt.Sprintf("%s: enqueue %s (hop %d)", name, sys.Messages[ph.Message].Name, ph.Hop)
		addInput(idle, ch, []int{ph.Message}, desc)
		addInput(busy, ch, []int{ph.Message}, desc)
	}

	// Service start: pop the queue head.
	txOf := make(map[int64]int64)
	for _, ph := range hops {
		txOf[int64(ph.Message)] = sys.Messages[ph.Message].TxTime
	}
	b.Edge(idle, busy,
		&sa.GuardFunc{Desc: name + "_len > 0",
			F:     func(env expr.Env) bool { return env.Var(ps.qlen) > 0 },
			Reads: &sa.Deps{Vars: []sa.VarID{sa.VarID(ps.qlen)}}},
		sa.None,
		&sa.UpdateFunc{Desc: name + ": start service", F: func(env expr.MutableEnv) {
			h := ps.dequeue(env)
			env.SetVar(ps.cur, h)
			env.SetVar(ps.txcur, txOf[h])
			env.SetClock(int(y), 0)
		}, Writes: &sa.Deps{
			Vars: append(append([]sa.VarID(nil), ring...),
				sa.VarID(ps.head), sa.VarID(ps.qlen), sa.VarID(ps.cur), sa.VarID(ps.txcur)),
			Clocks: []sa.ClockID{y},
		}})

	// Service completion: forward to the next hop or deliver.
	clearCur := func(env expr.MutableEnv) { env.SetVar(ps.cur, -1) }
	for _, ph := range hops {
		ph := ph
		route := sys.RouteOf(ph.Message)
		g := &sa.GuardFunc{
			Desc: fmt.Sprintf("%s_y == %s_txcur && %s_cur == %d", name, name, name, ph.Message),
			F: func(env expr.Env) bool {
				return env.Var(ps.cur) == int64(ph.Message) &&
					env.Clock(int(y)) == env.Var(ps.txcur)
			},
			Reads: &sa.Deps{
				Vars:   []sa.VarID{sa.VarID(ps.cur), sa.VarID(ps.txcur)},
				Clocks: []sa.ClockID{y},
			},
			NextEnableF: func(env expr.Env, running func(int) bool) int64 {
				if env.Var(ps.cur) != int64(ph.Message) || !running(int(y)) {
					return expr.NoBound
				}
				if d := env.Var(ps.txcur) - env.Clock(int(y)); d >= 1 {
					return d
				}
				return expr.NoBound
			},
		}
		if ph.Hop == len(route)-1 {
			drID := int(m.dataReady[ph.Message])
			b.SendEdge(busy, idle, g, m.linkReceiveCh[ph.Message],
				&sa.UpdateFunc{Desc: fmt.Sprintf("%s: deliver %s", name, sys.Messages[ph.Message].Name),
					F: func(env expr.MutableEnv) {
						env.SetVar(drID, env.Var(drID)+1)
						clearCur(env)
					},
					Writes: &sa.Deps{Vars: []sa.VarID{sa.VarID(drID), sa.VarID(ps.cur)}}})
		} else {
			next := fwd[config.PortHop{Message: ph.Message, Hop: ph.Hop + 1}]
			b.SendEdge(busy, idle, g, next,
				&sa.UpdateFunc{Desc: fmt.Sprintf("%s: forward %s", name, sys.Messages[ph.Message].Name),
					F:      func(env expr.MutableEnv) { clearCur(env) },
					Writes: &sa.Deps{Vars: []sa.VarID{sa.VarID(ps.cur)}}})
		}
	}
	return b.Build()
}

// enqueue appends message h with the current model time, then restores the
// deterministic order: entries with equal arrival time are sorted by
// message index regardless of the interleaving that delivered them.
func (ps *portState) enqueue(env expr.MutableEnv, h int64) {
	l := env.Var(ps.qlen)
	if int(l) >= ps.cap {
		panic(&expr.RuntimeError{
			Msg:  fmt.Sprintf("port queue overflow (capacity %d)", ps.cap),
			Expr: "port enqueue",
		})
	}
	now := env.Clock(ps.now)
	pos := (env.Var(ps.head) + l) % int64(ps.cap)
	env.SetVar(ps.qmsg+int(pos), h)
	env.SetVar(ps.qtime+int(pos), now)
	env.SetVar(ps.qlen, l+1)
	// Bubble back through the same-time suffix.
	for i := l; i > 0; i-- {
		cur := (env.Var(ps.head) + i) % int64(ps.cap)
		prev := (env.Var(ps.head) + i - 1) % int64(ps.cap)
		if env.Var(ps.qtime+int(prev)) == now && env.Var(ps.qmsg+int(prev)) > env.Var(ps.qmsg+int(cur)) {
			pm, pt := env.Var(ps.qmsg+int(prev)), env.Var(ps.qtime+int(prev))
			env.SetVar(ps.qmsg+int(prev), env.Var(ps.qmsg+int(cur)))
			env.SetVar(ps.qtime+int(prev), env.Var(ps.qtime+int(cur)))
			env.SetVar(ps.qmsg+int(cur), pm)
			env.SetVar(ps.qtime+int(cur), pt)
		} else {
			break
		}
	}
}

// dequeue pops the head message index.
func (ps *portState) dequeue(env expr.MutableEnv) int64 {
	head := env.Var(ps.head)
	h := env.Var(ps.qmsg + int(head))
	env.SetVar(ps.qmsg+int(head), -1)
	env.SetVar(ps.qtime+int(head), -1)
	env.SetVar(ps.head, (head+1)%int64(ps.cap))
	env.SetVar(ps.qlen, env.Var(ps.qlen)-1)
	return h
}

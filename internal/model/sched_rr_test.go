package model

import (
	"math/rand"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

func rrSystem(quantum int64, tasks []config.Task, windows []config.Window) *config.System {
	s := sys1(config.RR, tasks, windows)
	s.Partitions[0].Quantum = quantum
	return s
}

func TestRRTimeSlicing(t *testing.T) {
	// Two equal tasks, quantum 2: execution alternates A,B,A,B.
	sys := rrSystem(2, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{4}, Period: 10, Deadline: 10},
		{Name: "B", Priority: 1, WCET: []int64{4}, Period: 10, Deadline: 10},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.PR, 0, 0, 0, 2),
		ev(trace.EX, 0, 1, 0, 2),
		ev(trace.PR, 0, 1, 0, 4),
		ev(trace.EX, 0, 0, 0, 4),
		ev(trace.FIN, 0, 0, 0, 6),
		ev(trace.EX, 0, 1, 0, 6),
		ev(trace.FIN, 0, 1, 0, 8),
	})
}

func TestRRSingleTaskNoVisibleRotation(t *testing.T) {
	// One task: quantum expiries re-dispatch the same job at the same
	// instants; the normalized trace shows one clean interval.
	sys := rrSystem(2, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{7}, Period: 10, Deadline: 10},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 7),
	})
}

func TestRRQuantumPausesAcrossWindows(t *testing.T) {
	// The quantum clock is a stopwatch: a window switch mid-slice must not
	// consume quantum. Window [0,3] ends one tick into B's slice of 2; B
	// resumes in [5,10] and still gets its remaining quantum tick before
	// rotation back to A... with only B ready after A finishes, rotation is
	// invisible; the observable effect is that B's slice is not forfeited.
	sys := rrSystem(2, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{2}, Period: 10, Deadline: 10},
		{Name: "B", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 10},
	}, []config.Window{{Start: 0, End: 3}, {Start: 5, End: 10}})
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	// A runs [0,2] (quantum 2 → rotate; only B ready... A finished at 2).
	// B runs [2,3], window ends; B resumes [5,7] to finish its slice and
	// then continues (sole ready task) to 8.
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 2),
		ev(trace.EX, 0, 1, 0, 2),
		ev(trace.PR, 0, 1, 0, 3),
		ev(trace.EX, 0, 1, 0, 5),
		ev(trace.FIN, 0, 1, 0, 7),
	})
}

func TestRRFairnessThreeTasks(t *testing.T) {
	sys := rrSystem(1, []config.Task{
		{Name: "A", Priority: 9, WCET: []int64{3}, Period: 12, Deadline: 12},
		{Name: "B", Priority: 1, WCET: []int64{3}, Period: 12, Deadline: 12},
		{Name: "C", Priority: 5, WCET: []int64{3}, Period: 12, Deadline: 12},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	// Quantum 1, cyclic: priorities are ignored; all finish within 9 and
	// each task's finish times are 1 slice apart: A@7, B@8, C@9.
	stats := a.TaskStats()
	if stats[0].WCRT != 7 || stats[1].WCRT != 8 || stats[2].WCRT != 9 {
		t.Errorf("WCRTs = %d,%d,%d want 7,8,9:\n%s",
			stats[0].WCRT, stats[1].WCRT, stats[2].WCRT, tr.Normalize().Format(sys))
	}
}

func TestRRDeterminism(t *testing.T) {
	sys := rrSystem(2, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{4}, Period: 12, Deadline: 12},
		{Name: "B", Priority: 1, WCET: []int64{3}, Period: 6, Deadline: 6},
	}, []config.Window{{Start: 0, End: 5}, {Start: 6, End: 12}})
	ref, _, err := MustBuild(sys).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	refNorm := ref.Normalize()
	for seed := int64(1); seed <= 15; seed++ {
		tr, _, err := MustBuild(sys).SimulateWith(nsa.RandomChooser{Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !refNorm.EqualAsSets(tr.Normalize()) {
			t.Fatalf("seed %d differs:\nref:\n%s\ngot:\n%s",
				seed, refNorm.Format(sys), tr.Normalize().Format(sys))
		}
	}
}

func TestRRRequiresQuantum(t *testing.T) {
	sys := rrSystem(0, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{1}, Period: 4, Deadline: 4},
	}, nil)
	if err := sys.Validate(); err == nil {
		t.Error("quantum 0 must be rejected")
	}
}

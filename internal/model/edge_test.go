package model

import (
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

func TestRepeatedKillWhenWCETExceedsDeadline(t *testing.T) {
	// C > D: every job is killed at its deadline and the next job releases
	// at the period boundary (deadline == period here).
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{8}, Period: 5, Deadline: 5},
		{Name: "Pad", Priority: 0, WCET: []int64{1}, Period: 20, Deadline: 20},
	}, nil)
	tr, a := run(t, sys)
	if a.Schedulable {
		t.Fatal("must be unschedulable")
	}
	// T has 4 jobs, each with EX@5k and FIN@5k+5; all fail.
	var fins []int64
	for _, e := range tr.Normalize().Events {
		if e.Job.Task == 0 && e.Type == trace.FIN {
			fins = append(fins, e.Time)
		}
	}
	want := []int64{5, 10, 15, 20}
	if len(fins) != len(want) {
		t.Fatalf("fins = %v", fins)
	}
	for i := range want {
		if fins[i] != want[i] {
			t.Errorf("fin %d = %d, want %d", i, fins[i], want[i])
		}
	}
	for i := range a.Jobs {
		if a.Jobs[i].Job.Task == 0 && a.Jobs[i].ExecTime != 5 {
			t.Errorf("job %+v exec = %d, want full window 5", a.Jobs[i].Job, a.Jobs[i].ExecTime)
		}
	}
}

func TestCompletionExactlyAtWindowEnd(t *testing.T) {
	// The job reaches x == C at the same instant the window closes; the
	// completion must win (FIN, not a dangling preemption), exercising the
	// scheduler's PreSleep/finished? race handling.
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{5}, Period: 10, Deadline: 10},
	}, []config.Window{{Start: 0, End: 5}})
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	wantEvents(t, sys, tr, []trace.Event{
		ev(trace.EX, 0, 0, 0, 0),
		ev(trace.FIN, 0, 0, 0, 5),
	})
}

func TestReleaseAtWindowEndWaitsForNextWindow(t *testing.T) {
	// Second job releases exactly when the only window has closed; it runs
	// in the next hyperperiod's window... which doesn't exist within L, so
	// it must be killed at its deadline without ever executing.
	sys := sys1(config.FPPS, []config.Task{
		{Name: "T", Priority: 2, WCET: []int64{2}, Period: 5, Deadline: 5},
		{Name: "Pad", Priority: 1, WCET: []int64{1}, Period: 10, Deadline: 10},
	}, []config.Window{{Start: 0, End: 5}})
	tr, a := run(t, sys)
	if a.Schedulable {
		t.Fatal("second job has no window: unschedulable")
	}
	// Job 1 is released exactly at the window-close instant; depending on
	// the interleaving it may be dispatched for a zero-width interval
	// before the partition sleeps, but the normalized subtrace is empty.
	for _, e := range tr.Normalize().Events {
		if e.Job.Job == 1 && e.Job.Task == 0 {
			t.Errorf("job 1 has normalized event %+v", e)
		}
	}
}

func TestFPPSEqualPriorityNoPreemption(t *testing.T) {
	sys := sys1(config.FPPS, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{6}, Period: 10, Deadline: 10},
		{Name: "B", Priority: 1, WCET: []int64{2}, Period: 5, Deadline: 5},
	}, nil)
	tr, a := run(t, sys)
	// A and B released at 0: equal priority, index order → A first.
	// B#0 (deadline 5) gets [6, ...] too late? A runs [0,6], B#0 killed at 5.
	if a.Schedulable {
		t.Fatal("B#0 should miss")
	}
	for _, e := range tr.Events {
		if e.Type == trace.PR {
			t.Errorf("equal priorities must not preempt: %+v", e)
		}
	}
}

func TestEDFEqualDeadlineNoPreemption(t *testing.T) {
	sys := sys1(config.EDF, []config.Task{
		{Name: "A", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 8},
		{Name: "B", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 8},
	}, nil)
	tr, a := run(t, sys)
	if !a.Schedulable {
		t.Fatalf("unschedulable:\n%s", tr.Format(sys))
	}
	for _, e := range tr.Events {
		if e.Type == trace.PR {
			t.Errorf("equal deadlines must not preempt: %+v", e)
		}
	}
	// Index order: A then B.
	norm := tr.Normalize()
	if norm.Events[0].Job.Task != 0 || norm.Events[2].Job.Task != 1 {
		t.Errorf("order = %+v", norm.Events)
	}
}

func TestWCETDependsOnCoreType(t *testing.T) {
	mk := func(coreType int) *config.System {
		return &config.System{
			Name:      "types",
			CoreTypes: []string{"fast", "slow"},
			Cores:     []config.Core{{Name: "c", Type: coreType, Module: 1}},
			Partitions: []config.Partition{
				{Name: "P", Core: 0, Policy: config.FPPS,
					Tasks: []config.Task{
						{Name: "T", Priority: 1, WCET: []int64{3, 9}, Period: 10, Deadline: 10},
					},
					Windows: []config.Window{{Start: 0, End: 10}}},
			},
		}
	}
	_, aFast := run(t, mk(0))
	_, aSlow := run(t, mk(1))
	if got := aFast.Jobs[0].ExecTime; got != 3 {
		t.Errorf("fast exec = %d, want 3", got)
	}
	if got := aSlow.Jobs[0].ExecTime; got != 9 {
		t.Errorf("slow exec = %d, want 9", got)
	}
}

func TestLinkQueueing(t *testing.T) {
	// Transfer delay (8) exceeds the flow period (5): the link must queue
	// back-to-back sends and deliver them in order at start+8 each, where a
	// queued transfer starts at the previous delivery.
	sys := &config.System{
		Name:      "queue",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "PS", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "S", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
					{Name: "Stretch", Priority: 1, WCET: []int64{1}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 20}}},
			{Name: "PR", Core: 1, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "R", Priority: 1, WCET: []int64{1}, Period: 5, Deadline: 5},
				},
				Windows: []config.Window{{Start: 0, End: 20}}},
		},
		Messages: []config.Message{
			{Name: "m", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 8, NetDelay: 8},
		},
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	m := MustBuild(sys)

	// Track delivery broadcasts over the run.
	var deliveries []int64
	rec := nsa.ListenerFunc(func(time int64, tr *nsa.Transition, _ *nsa.Network, _ *nsa.State) {
		if tr.Kind != nsa.Internal && m.ChanInfos[tr.Chan].Role == RoleReceive {
			deliveries = append(deliveries, time)
		}
	})
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Listeners: []nsa.Listener{rec}})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Sends at 1, 6, 11, 16; transfers: [1,9], [9,17], [17,25→beyond L],
	// [queued]. Deliveries inside L=20: 9 and 17.
	want := []int64{9, 17}
	if len(deliveries) != len(want) {
		t.Fatalf("deliveries = %v, want %v", deliveries, want)
	}
	for i := range want {
		if deliveries[i] != want[i] {
			t.Errorf("delivery %d = %d, want %d", i, deliveries[i], want[i])
		}
	}

	// The schedulability analysis still works: receiver jobs 0 and 1 get
	// data only after their deadlines and never execute.
	tr, _, err := MustBuild(sys).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Error("late deliveries must make the receiver unschedulable")
	}
}

package model

import (
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// buildLink constructs the L automaton for message h (the paper's base type
// L): it receives the sender task's completion broadcast, holds the message
// for exactly the worst-case transfer delay (memory or network depending on
// the module placement), then increments is_data_ready_h and broadcasts the
// delivery. Back-to-back sends are queued so no message is lost.
func (m *Model) buildLink(nb *nsa.Builder, h int) (*sa.Automaton, error) {
	msg := &m.Sys.Messages[h]
	delay := m.Sys.Delay(msg)
	sendCh := m.tasks[config.TaskRef{Part: msg.SrcPart, Task: msg.SrcTask}].sendCh
	recvCh := m.linkReceiveCh[h]

	y := nb.Clock(fmt.Sprintf("y_%d", h))
	yName := fmt.Sprintf("y_%d", h)
	pendName := fmt.Sprintf("pend_%d", h)
	nb.Var(pendName, 0)
	drName := fmt.Sprintf("is_data_ready_%d", h)

	b := sa.NewBuilder(fmt.Sprintf("L_%s", msg.Name))
	b.OwnClock(y)
	// Deliveries are time-driven, like task releases.
	b.Priority(1)

	idle := b.Loc("Idle", sa.Stops(y))
	busy := b.Loc("Busy", sa.WithInvariant(exprInv(nb, fmt.Sprintf("%s <= %d", yName, delay))))
	delivered := b.Loc("Delivered", sa.Committed())
	b.Init(idle)

	// A send while idle starts the transfer; a send while transferring is
	// queued.
	b.RecvEdge(idle, busy, nil, sendCh, exprUpdate(nb, fmt.Sprintf("%s := 0", yName)))
	b.RecvEdge(busy, busy, nil, sendCh, exprUpdate(nb, fmt.Sprintf("%s := %s + 1", pendName, pendName)))

	// Delivery after exactly the worst-case delay (the paper's requirement:
	// the transfer delay equals its pessimistic upper bound).
	b.Edge(busy, delivered,
		exprGuard(nb, fmt.Sprintf("%s == %d", yName, delay)), sa.None,
		exprUpdate(nb, fmt.Sprintf("%s := %s + 1", drName, drName)))

	// Announce the delivery; start the next queued transfer if any.
	b.SendEdge(delivered, busy,
		exprGuard(nb, fmt.Sprintf("%s > 0", pendName)), recvCh,
		exprUpdate(nb, fmt.Sprintf("%s := %s - 1, %s := 0", pendName, pendName, yName)))
	b.SendEdge(delivered, idle,
		exprGuard(nb, fmt.Sprintf("%s == 0", pendName)), recvCh, nil)

	return b.Build()
}

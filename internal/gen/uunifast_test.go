package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

func TestUUniFastSumsAndBounds(t *testing.T) {
	f := func(seed int64, nRaw, tRaw uint8) bool {
		n := 1 + int(nRaw%8)
		total := 0.1 + float64(tRaw%90)/100
		rng := rand.New(rand.NewSource(seed))
		u := UUniFast(rng, n, total)
		if len(u) != n {
			return false
		}
		sum := 0.0
		for _, v := range u {
			if v < -1e-9 || v > total+1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationConfigValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := UtilizationConfig(seed, 4, 0.6, []int64{10, 20, 40})
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Rate-monotonic: shorter period ⇒ strictly higher priority class.
		tasks := sys.Partitions[0].Tasks
		for i := range tasks {
			for j := range tasks {
				if tasks[i].Period < tasks[j].Period && tasks[i].Priority <= tasks[j].Priority {
					t.Fatalf("seed %d: priorities not rate-monotonic: %+v", seed, tasks)
				}
			}
		}
	}
}

// TestUtilizationSweepShape: the schedulable fraction must be monotone-ish
// in utilization — near 1 at low load, near 0 when overloaded. This is the
// classic schedulability-curve experiment driven by the simulator.
func TestUtilizationSweepShape(t *testing.T) {
	periods := []int64{10, 20, 40}
	measure := func(target float64) SweepPoint {
		pt := SweepPoint{Utilization: target}
		for seed := int64(0); seed < 25; seed++ {
			sys := UtilizationConfig(seed, 4, target, periods)
			m := model.MustBuild(sys)
			tr, _, err := m.Simulate()
			if err != nil {
				t.Fatal(err)
			}
			a, err := trace.Analyze(sys, tr)
			if err != nil {
				t.Fatal(err)
			}
			pt.Total++
			if a.Schedulable {
				pt.Schedulable++
			}
		}
		return pt
	}
	low := measure(0.4)
	high := measure(1.15)
	if low.Ratio() < 0.9 {
		t.Errorf("U=0.4: ratio %.2f, want ≥ 0.9", low.Ratio())
	}
	if high.Ratio() > 0.2 {
		t.Errorf("U=1.15: ratio %.2f, want ≤ 0.2", high.Ratio())
	}
	if low.Ratio() < high.Ratio() {
		t.Error("ratio must not increase with utilization")
	}
}

package gen

import (
	"testing"

	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
)

// TestTable1ExponentialShape asserts the qualitative result of Table 1: the
// Model Checking state count roughly doubles with every added job on the
// Table 1 configuration family (the paper's measured times grow ×2.1 per
// job), while the configuration stays schedulable throughout.
func TestTable1ExponentialShape(t *testing.T) {
	prev := 0
	for jobs := 5; jobs <= 11; jobs++ {
		sys := Table1Config(jobs)
		m := model.MustBuild(sys)
		ok, res, err := mc.CheckSchedulability(m, 0)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !ok {
			t.Fatalf("jobs=%d: family must be schedulable", jobs)
		}
		if prev > 0 {
			ratio := float64(res.States) / float64(prev)
			if ratio < 1.5 || ratio > 3.0 {
				t.Errorf("jobs=%d: state growth ratio %.2f outside [1.5,3.0]", jobs, ratio)
			}
		}
		prev = res.States
	}
}

package gen

import (
	"errors"
	"testing"

	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
)

// TestRandomAgreementSimVsMC is the paper's central claim on random
// configurations: the single deterministic run decides schedulability
// identically to exhaustive Model Checking.
func TestRandomAgreementSimVsMC(t *testing.T) {
	p := DefaultRandomParams()
	p.Periods = []int64{6, 12} // keep hyperperiods tiny for exhaustiveness
	p.MaxTasks = 2
	p.MaxPartitions = 2
	checked := 0
	for seed := int64(0); seed < 40; seed++ {
		sys := Random(seed, p)
		m := model.MustBuild(sys)
		tr, _, err := m.Simulate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m2 := model.MustBuild(sys)
		ok, res, err := mc.CheckSchedulability(m2, 3_000_000)
		var rerr *nsa.RunError
		if errors.As(err, &rerr) {
			continue // too large to exhaust within the state budget; skip
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Complete {
			continue // too large to exhaust; skip, don't fail
		}
		checked++
		if ok != a.Schedulable {
			t.Fatalf("seed %d: MC=%t simulator=%t (witness %q)", seed, ok, a.Schedulable, res.Bad)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d configurations fully explored", checked)
	}
	t.Logf("agreement on %d random configurations", checked)
}

// TestRandomObserverVerification runs the single-run observer checks on a
// wide batch of random configurations: the component models must satisfy
// every §3 requirement regardless of parameters.
func TestRandomObserverVerification(t *testing.T) {
	p := DefaultRandomParams()
	for seed := int64(100); seed < 160; seed++ {
		sys := Random(seed, p)
		m := model.MustBuild(sys)
		violations, err := observer.VerifyRun(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(violations) != 0 {
			t.Fatalf("seed %d: %v", seed, violations)
		}
	}
}

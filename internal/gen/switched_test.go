package gen

import (
	"errors"
	"math/rand"
	"testing"

	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
)

func TestRandomSwitchedValidAndRunnable(t *testing.T) {
	p := DefaultRandomParams()
	withNet := 0
	for seed := int64(0); seed < 30; seed++ {
		sys := RandomSwitched(seed, p)
		if sys.Net != nil {
			withNet++
		}
		m, err := model.Build(sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, _, err := m.Simulate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := trace.Analyze(sys, tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if withNet < 10 {
		t.Errorf("only %d/30 configs got a network", withNet)
	}
}

// TestRandomSwitchedDeterminism: the switched-network port automata must
// preserve the determinism theorem under random interleavings.
func TestRandomSwitchedDeterminism(t *testing.T) {
	p := DefaultRandomParams()
	for seed := int64(0); seed < 12; seed++ {
		sys := RandomSwitched(seed, p)
		ref, _, err := model.MustBuild(sys).Simulate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refNorm := ref.Normalize()
		for cs := int64(1); cs <= 5; cs++ {
			tr, _, err := model.MustBuild(sys).SimulateWith(
				nsa.RandomChooser{Rng: rand.New(rand.NewSource(cs))})
			if err != nil {
				t.Fatalf("seed %d/%d: %v", seed, cs, err)
			}
			if !refNorm.EqualAsSets(tr.Normalize()) {
				t.Fatalf("seed %d chooser %d: traces differ\nref:\n%s\ngot:\n%s",
					seed, cs, refNorm.Format(sys), tr.Normalize().Format(sys))
			}
		}
	}
}

// TestRandomSwitchedObserversAndMC: observers hold on switched systems and
// the single-run verdict matches exhaustive checking.
func TestRandomSwitchedObserversAndMC(t *testing.T) {
	p := DefaultRandomParams()
	p.Periods = []int64{6, 12}
	p.MaxTasks = 2
	p.MaxPartitions = 2
	checked := 0
	for seed := int64(0); seed < 20; seed++ {
		sys := RandomSwitched(seed, p)
		m := model.MustBuild(sys)
		violations, err := observer.VerifyRun(m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(violations) != 0 {
			t.Fatalf("seed %d: %v", seed, violations)
		}

		tr, _, err := model.MustBuild(sys).Simulate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, res, err := mc.CheckSchedulability(model.MustBuild(sys), 2_000_000)
		var rerr *nsa.RunError
		if errors.As(err, &rerr) {
			continue // too large to exhaust within the state budget; skip
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Complete {
			continue
		}
		checked++
		if ok != a.Schedulable {
			t.Fatalf("seed %d: MC=%t sim=%t", seed, ok, a.Schedulable)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d fully checked", checked)
	}
}

package gen

import (
	"fmt"
	"math"
	"math/rand"

	"stopwatchsim/internal/config"
)

// UUniFast generates n task utilizations summing to total, uniformly
// distributed over the valid simplex (Bini & Buttazzo's UUniFast
// algorithm). The same rng state always yields the same vector.
func UUniFast(rng *rand.Rand, n int, total float64) []float64 {
	u := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1/float64(n-i-1))
		u[i] = sum - next
		sum = next
	}
	u[n-1] = sum
	return u
}

// UtilizationConfig builds a single-core, single-partition FPPS
// configuration of n tasks whose total utilization approximates target:
// utilizations are drawn with UUniFast, periods from the given harmonic
// set, WCETs as round(u·P) clamped to [1, P]. Priorities are
// rate-monotonic. Used for utilization-sweep experiments.
func UtilizationConfig(seed int64, n int, target float64, periods []int64) *config.System {
	rng := rand.New(rand.NewSource(seed))
	utils := UUniFast(rng, n, target)
	sys := &config.System{
		Name:      fmt.Sprintf("util-%d-%.2f", seed, target),
		CoreTypes: []string{"std"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: config.FPPS},
		},
	}
	for i := 0; i < n; i++ {
		p := periods[rng.Intn(len(periods))]
		c := int64(math.Round(utils[i] * float64(p)))
		if c < 1 {
			c = 1
		}
		if c > p {
			c = p
		}
		sys.Partitions[0].Tasks = append(sys.Partitions[0].Tasks, config.Task{
			Name:     fmt.Sprintf("T%d", i),
			Priority: 0, // assigned rate-monotonically below
			WCET:     []int64{c},
			Period:   p,
			Deadline: p,
		})
	}
	// Rate-monotonic priorities: shorter period → higher priority.
	tasks := sys.Partitions[0].Tasks
	for i := range tasks {
		prio := 1
		for j := range tasks {
			if tasks[j].Period > tasks[i].Period {
				prio++
			}
		}
		tasks[i].Priority = prio
	}
	sys.Partitions[0].Windows = []config.Window{{Start: 0, End: sys.Hyperperiod()}}
	return sys
}

// SweepPoint is one measurement of a utilization sweep.
type SweepPoint struct {
	Utilization float64
	Total       int
	Schedulable int
}

// Ratio returns the schedulable fraction.
func (p SweepPoint) Ratio() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Schedulable) / float64(p.Total)
}

// Package gen generates system configurations for experiments and tests:
// the Table 1 family (exponential Model-Checking cost, flat simulation
// cost), the industrial-scale configuration of §4 (~12 500 jobs over the
// hyperperiod), and randomized configurations for property testing.
package gen

import (
	"fmt"
	"math/rand"

	"stopwatchsim/internal/config"
)

// Table1Config builds the configuration family of Table 1, parameterized by
// the total number of jobs. Each task releases exactly one job, all at time
// zero; the tasks are spread over two partitions on two cores, so the
// number of simultaneous independent release/dispatch interleavings — and
// with it the Model Checking state count — grows exponentially with the job
// count, while the single-run interpretation stays linear.
func Table1Config(jobs int) *config.System {
	if jobs < 1 {
		jobs = 1
	}
	const period = 1000
	sys := &config.System{
		Name:      fmt.Sprintf("table1-%d", jobs),
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: config.FPPS,
				Windows: []config.Window{{Start: 0, End: period}}},
			{Name: "P2", Core: 1, Policy: config.FPPS,
				Windows: []config.Window{{Start: 0, End: period}}},
		},
	}
	for i := 0; i < jobs; i++ {
		t := config.Task{
			Name:     fmt.Sprintf("T%d", i+1),
			Priority: jobs - i,
			WCET:     []int64{int64(2 + i%3)},
			Period:   period,
			Deadline: period,
		}
		p := &sys.Partitions[i%2]
		p.Tasks = append(p.Tasks, t)
	}
	// A two-core layout needs both partitions non-empty.
	if len(sys.Partitions[1].Tasks) == 0 {
		sys.Partitions = sys.Partitions[:1]
		sys.Cores = sys.Cores[:1]
	}
	return sys
}

// IndustrialConfig builds a configuration with the scale the paper reports
// for industrial avionics systems: 5 modules (one core each), 6 partitions
// per core, and about 12 500 jobs over the hyperperiod, including
// cross-module data dependencies over network links.
//
// Layout: the hyperperiod is 50 frames of 55 ticks. Each frame gives each
// of the 5 application partitions a 10-tick window (10 tasks × WCET 1,
// period = frame) and a trailing 5-tick window to a housekeeping partition
// with one long-period task. Ten messages connect same-period tasks across
// modules (core 0→1 and 2→3 per partition slot).
func IndustrialConfig() *config.System {
	const (
		cores    = 5
		appParts = 5
		appTasks = 10
		frame    = 55
		frames   = 50
		l        = frame * frames // 2750
		winSize  = 10
		hkWCET   = 100
	)
	sys := &config.System{
		Name:      "industrial-12500",
		CoreTypes: []string{"std"},
	}
	for c := 0; c < cores; c++ {
		sys.Cores = append(sys.Cores, config.Core{
			Name: fmt.Sprintf("core%d", c), Type: 0, Module: c + 1,
		})
	}
	partIdx := make(map[[2]int]int) // (core, slot) -> partition index
	for c := 0; c < cores; c++ {
		for p := 0; p < appParts; p++ {
			part := config.Partition{
				Name: fmt.Sprintf("M%d_P%d", c, p), Core: c, Policy: config.FPPS,
			}
			for t := 0; t < appTasks; t++ {
				part.Tasks = append(part.Tasks, config.Task{
					Name:     fmt.Sprintf("T%d", t),
					Priority: appTasks - t,
					WCET:     []int64{1},
					Period:   frame,
					Deadline: frame,
				})
			}
			for f := 0; f < frames; f++ {
				start := int64(f*frame + p*winSize)
				part.Windows = append(part.Windows, config.Window{
					Start: start, End: start + winSize,
				})
			}
			partIdx[[2]int{c, p}] = len(sys.Partitions)
			sys.Partitions = append(sys.Partitions, part)
		}
		// Housekeeping partition: one long task in the trailing window.
		hk := config.Partition{
			Name: fmt.Sprintf("M%d_HK", c), Core: c, Policy: config.FPPS,
			Tasks: []config.Task{{
				Name: "HK", Priority: 1, WCET: []int64{hkWCET}, Period: l, Deadline: l,
			}},
		}
		for f := 0; f < frames; f++ {
			start := int64(f*frame + appParts*winSize)
			hk.Windows = append(hk.Windows, config.Window{Start: start, End: start + 5})
		}
		sys.Partitions = append(sys.Partitions, hk)
	}
	// Cross-module flows between the highest-priority tasks of matching
	// partition slots (acyclic: core index only increases).
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		for p := 0; p < appParts; p++ {
			src := partIdx[[2]int{pair[0], p}]
			dst := partIdx[[2]int{pair[1], p}]
			sys.Messages = append(sys.Messages, config.Message{
				Name:    fmt.Sprintf("m_%d_%d_p%d", pair[0], pair[1], p),
				SrcPart: src, SrcTask: 0,
				DstPart: dst, DstTask: 0,
				MemDelay: 1, NetDelay: 2,
			})
		}
	}
	return sys
}

// RandomParams bound the Random generator.
type RandomParams struct {
	MaxCores      int     // ≥ 1
	MaxPartitions int     // per system, ≥ 1
	MaxTasks      int     // per partition, ≥ 1
	Periods       []int64 // candidate periods (harmonic sets keep L small)
	MaxUtil       float64 // target utilization cap per core
	Messages      int     // how many data-flow edges to attempt
}

// DefaultRandomParams keep hyperperiods small enough for exhaustive
// cross-checking against the model checker.
func DefaultRandomParams() RandomParams {
	return RandomParams{
		MaxCores:      2,
		MaxPartitions: 3,
		MaxTasks:      3,
		Periods:       []int64{8, 16, 32},
		MaxUtil:       0.9,
		Messages:      2,
	}
}

// Random generates a valid random configuration. The same seed always
// yields the same configuration.
func Random(seed int64, p RandomParams) *config.System {
	r := rand.New(rand.NewSource(seed))
	nc := 1 + r.Intn(p.MaxCores)
	np := nc + r.Intn(p.MaxPartitions*nc-nc+1) // at least one partition per core

	sys := &config.System{
		Name:      fmt.Sprintf("random-%d", seed),
		CoreTypes: []string{"std", "fast"},
	}
	for c := 0; c < nc; c++ {
		sys.Cores = append(sys.Cores, config.Core{
			Name: fmt.Sprintf("c%d", c), Type: r.Intn(2), Module: 1 + r.Intn(2),
		})
	}

	policies := []config.Policy{config.FPPS, config.FPNPS, config.EDF, config.RR}
	// Assign partitions round-robin to cores so every core gets one.
	for pi := 0; pi < np; pi++ {
		core := pi % nc
		part := config.Partition{
			Name:   fmt.Sprintf("P%d", pi),
			Core:   core,
			Policy: policies[r.Intn(len(policies))],
		}
		if part.Policy == config.RR {
			part.Quantum = 1 + r.Int63n(3)
		}
		nt := 1 + r.Intn(p.MaxTasks)
		for t := 0; t < nt; t++ {
			period := p.Periods[r.Intn(len(p.Periods))]
			maxC := period / 4
			if maxC < 1 {
				maxC = 1
			}
			c := 1 + r.Int63n(maxC)
			// Deadline in [C, period].
			d := c + r.Int63n(period-c+1)
			part.Tasks = append(part.Tasks, config.Task{
				Name:     fmt.Sprintf("T%d_%d", pi, t),
				Priority: 1 + r.Intn(8),
				WCET:     []int64{c, maxI64(1, c/2)},
				Period:   period,
				Deadline: d,
			})
		}
		sys.Partitions = append(sys.Partitions, part)
	}

	carveWindows(r, sys)
	addMessages(r, sys, p.Messages)

	if err := sys.Validate(); err != nil {
		// Generation above is constructed to be valid; a failure is a bug.
		panic(fmt.Sprintf("gen: invalid random config (seed %d): %v", seed, err))
	}
	return sys
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// carveWindows splits [0, L) per core into contiguous per-partition slices,
// repeated nothing — a single window per partition keeps hyperperiods
// exhaustively checkable.
func carveWindows(r *rand.Rand, sys *config.System) {
	l := sys.Hyperperiod()
	for c := range sys.Cores {
		var parts []int
		for pi := range sys.Partitions {
			if sys.Partitions[pi].Core == c {
				parts = append(parts, pi)
			}
		}
		if len(parts) == 0 {
			continue
		}
		// Random cut points dividing [0, L) into len(parts) slices.
		span := l / int64(len(parts))
		for i, pi := range parts {
			start := int64(i) * span
			end := start + span
			if i == len(parts)-1 {
				end = l
			}
			// Shrink the window a little sometimes, leaving idle gaps.
			if end-start > 2 && r.Intn(2) == 0 {
				end -= r.Int63n((end - start) / 2)
			}
			sys.Partitions[pi].Windows = []config.Window{{Start: start, End: end}}
		}
	}
}

// RandomSwitched generates a valid random configuration whose messages are
// routed through a small random switched network (1–3 ports, routes of 1–2
// hops), exercising the port automata under arbitrary contention patterns.
func RandomSwitched(seed int64, p RandomParams) *config.System {
	sys := Random(seed, p)
	if len(sys.Messages) == 0 {
		return sys
	}
	r := rand.New(rand.NewSource(seed ^ 0x5eed))
	nPorts := 1 + r.Intn(3)
	top := &config.Topology{}
	for i := 0; i < nPorts; i++ {
		top.Ports = append(top.Ports, config.Port{Name: fmt.Sprintf("sw%d", i)})
	}
	for h := range sys.Messages {
		sys.Messages[h].TxTime = 1 + r.Int63n(3)
		route := []int{r.Intn(nPorts)}
		if nPorts > 1 && r.Intn(2) == 0 {
			next := (route[0] + 1 + r.Intn(nPorts-1)) % nPorts
			route = append(route, next)
		}
		top.Routes = append(top.Routes, route)
	}
	sys.Net = top
	sys.Name = fmt.Sprintf("random-switched-%d", seed)
	if err := sys.Validate(); err != nil {
		panic(fmt.Sprintf("gen: invalid switched config (seed %d): %v", seed, err))
	}
	return sys
}

// addMessages inserts up to n random equal-period edges, keeping the graph
// acyclic by always sending from a lower partition index to a higher one.
func addMessages(r *rand.Rand, sys *config.System, n int) {
	type ref = config.TaskRef
	var all []ref
	for pi := range sys.Partitions {
		for ti := range sys.Partitions[pi].Tasks {
			all = append(all, ref{Part: pi, Task: ti})
		}
	}
	tries := 0
	for len(sys.Messages) < n && tries < 50 {
		tries++
		a := all[r.Intn(len(all))]
		b := all[r.Intn(len(all))]
		if a.Part >= b.Part {
			continue
		}
		pa := sys.Partitions[a.Part].Tasks[a.Task].Period
		pb := sys.Partitions[b.Part].Tasks[b.Task].Period
		if pa != pb {
			continue
		}
		sys.Messages = append(sys.Messages, config.Message{
			Name:    fmt.Sprintf("m%d", len(sys.Messages)),
			SrcPart: a.Part, SrcTask: a.Task,
			DstPart: b.Part, DstTask: b.Task,
			MemDelay: 1 + r.Int63n(2), NetDelay: 1 + r.Int63n(4),
		})
	}
}

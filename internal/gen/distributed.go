package gen

import (
	"fmt"
	"math/rand"

	"stopwatchsim/internal/config"
)

// MultiModule builds a deterministic N-module distributed system shaped
// for compositional analysis: one core and one FPPS partition per
// module, a message chain TX→RX crossing every module boundary, and a
// per-module background load whose period cycles through {5, 8, 9}. The
// chain period is 12, so the global hyperperiod is lcm(5,8,9,12) = 360
// while each module's local hyperperiod is only lcm(base, 12) ∈
// {60, 24, 36} — the gap per-module analysis exploits. Every receiver is
// the strictly lowest-priority task of its FPPS partition, so the
// safe-receiver gate holds by construction; seed perturbs only the
// background-load WCETs, leaving the module structure (and therefore
// every other module's fingerprint) untouched.
func MultiModule(modules int, seed int64) *config.System {
	if modules < 2 {
		modules = 2
	}
	const chainPeriod = 12
	bases := []int64{5, 8, 9}
	// Global hyperperiod over the bases actually used: lcm(5,8,9,12)=360
	// from three modules up, 120 for two.
	l := int64(chainPeriod)
	for m := 0; m < modules && m < len(bases); m++ {
		l = l / config.GCD(l, bases[m]) * bases[m]
	}
	r := rand.New(rand.NewSource(seed))
	sys := &config.System{
		Name:      fmt.Sprintf("multimodule-%d-s%d", modules, seed),
		CoreTypes: []string{"std"},
	}
	for m := 0; m < modules; m++ {
		sys.Cores = append(sys.Cores, config.Core{
			Name: fmt.Sprintf("m%d", m), Type: 0, Module: m + 1,
		})
		part := config.Partition{
			Name:   fmt.Sprintf("M%d", m),
			Core:   m,
			Policy: config.FPPS,
			Tasks: []config.Task{
				// TX drives the outbound chain edge: highest priority and a
				// tight deadline keep the derived contract offset small.
				{Name: "TX", Priority: 10, WCET: []int64{1}, Period: chainPeriod, Deadline: 3},
				// The background load is the only seed-dependent content.
				{Name: "LOAD", Priority: 5, WCET: []int64{1 + r.Int63n(2)},
					Period: bases[m%len(bases)], Deadline: bases[m%len(bases)]},
				// RX receives the inbound chain edge; strictly lowest
				// priority in an FPPS partition (the safe-receiver gate).
				{Name: "RX", Priority: 1, WCET: []int64{1}, Period: chainPeriod, Deadline: chainPeriod},
			},
			Windows: []config.Window{{Start: 0, End: l}},
		}
		sys.Partitions = append(sys.Partitions, part)
	}
	for m := 0; m+1 < modules; m++ {
		sys.Messages = append(sys.Messages, config.Message{
			Name:    fmt.Sprintf("chain%d", m),
			SrcPart: m, SrcTask: 0, // TX of module m
			DstPart: m + 1, DstTask: 2, // RX of module m+1
			NetDelay: 1,
		})
	}
	if err := sys.Validate(); err != nil {
		panic(fmt.Sprintf("gen: invalid multimodule config (modules %d, seed %d): %v", modules, seed, err))
	}
	return sys
}

// RandomDistributed generates a valid random multi-module configuration
// for differential testing of the compositional analyzer: 2–4 modules
// (one core each), FPPS partitions, and cross-module messages always
// sent from a lower module to a higher one (module-acyclic). Receivers
// are demoted to strictly-lowest priority only about half the time, so
// the corpus mixes compositional runs with safe-receiver-gate fallbacks;
// window carving is random, so local schedules mix truncation with pacer
// mode. The same seed always yields the same configuration.
func RandomDistributed(seed int64, p RandomParams) *config.System {
	r := rand.New(rand.NewSource(seed))
	nm := 2 + r.Intn(3)
	periods := p.Periods
	if len(periods) == 0 {
		periods = []int64{6, 12, 24}
	}
	sys := &config.System{
		Name:      fmt.Sprintf("distributed-%d", seed),
		CoreTypes: []string{"std"},
	}
	partModule := make([]int, 0) // module index per partition
	for m := 0; m < nm; m++ {
		sys.Cores = append(sys.Cores, config.Core{
			Name: fmt.Sprintf("c%d", m), Type: 0, Module: m + 1,
		})
		np := 1 + r.Intn(2)
		for pi := 0; pi < np; pi++ {
			part := config.Partition{
				Name:   fmt.Sprintf("M%d_P%d", m, pi),
				Core:   m,
				Policy: config.FPPS,
			}
			nt := 1 + r.Intn(p.MaxTasks)
			for t := 0; t < nt; t++ {
				period := periods[r.Intn(len(periods))]
				c := 1 + r.Int63n(maxI64(1, period/8))
				// Mostly lax deadlines keep a useful fraction of the corpus
				// schedulable; the occasional tight one keeps unschedulable
				// modules (and with them the fallback path) in the mix.
				d := period
				if r.Intn(8) == 0 {
					d = c + r.Int63n(period-c+1)
				}
				part.Tasks = append(part.Tasks, config.Task{
					Name:     fmt.Sprintf("T%d_%d_%d", m, pi, t),
					Priority: 2 + r.Intn(7),
					WCET:     []int64{c},
					Period:   period,
					Deadline: d,
				})
			}
			partModule = append(partModule, m)
			sys.Partitions = append(sys.Partitions, part)
		}
	}
	// TDM frame schedule per core: every frame (the gcd of the candidate
	// periods) is sliced among the core's partitions, so short-period
	// tasks see their partition in every period — one contiguous slice of
	// the whole hyperperiod would starve them outright. Frame-periodic
	// coverage is also what the compositional planner's window truncation
	// thrives on.
	frame := periods[0]
	for _, p := range periods[1:] {
		frame = config.GCD(frame, p)
	}
	l := sys.Hyperperiod()
	for c := range sys.Cores {
		var parts []int
		for pi := range sys.Partitions {
			if sys.Partitions[pi].Core == c {
				parts = append(parts, pi)
			}
		}
		span := frame / int64(len(parts))
		for f := int64(0); f < l/frame; f++ {
			for i, pi := range parts {
				start := f*frame + int64(i)*span
				end := start + span
				if i == len(parts)-1 {
					end = (f + 1) * frame
				}
				sys.Partitions[pi].Windows = append(sys.Partitions[pi].Windows,
					config.Window{Start: start, End: end})
			}
		}
	}

	// Cross-module edges between equal-period tasks, lower module →
	// higher module so the module graph is a DAG.
	tries := 0
	for len(sys.Messages) < p.Messages && tries < 80 {
		tries++
		a, b := r.Intn(len(sys.Partitions)), r.Intn(len(sys.Partitions))
		if partModule[a] >= partModule[b] {
			continue
		}
		st := r.Intn(len(sys.Partitions[a].Tasks))
		dt := r.Intn(len(sys.Partitions[b].Tasks))
		if sys.Partitions[a].Tasks[st].Period != sys.Partitions[b].Tasks[dt].Period {
			continue
		}
		dup := false
		for _, m := range sys.Messages {
			if m.DstPart == b && m.DstTask == dt {
				dup = true // one inbound edge per task keeps the flow graph simple
				break
			}
		}
		if dup {
			continue
		}
		sys.Messages = append(sys.Messages, config.Message{
			Name:    fmt.Sprintf("e%d", len(sys.Messages)),
			SrcPart: a, SrcTask: st,
			DstPart: b, DstTask: dt,
			NetDelay: 1 + r.Int63n(2),
		})
		// Most receivers become safe (strictly lowest priority)
		// with contract-friendly deadlines — the receiver gets its full
		// period and the sender a tight deadline, so a latest-assumed
		// arrival still leaves the receiver room to finish. The rest keep
		// their random parameters and leave the safe-receiver gate (or a
		// locally impossible assumption) to trip the fallback.
		if r.Intn(2) == 0 {
			lowest := true
			for t := range sys.Partitions[b].Tasks {
				if t != dt && sys.Partitions[b].Tasks[t].Priority <= 1 {
					lowest = false
					break
				}
			}
			if lowest {
				rx := &sys.Partitions[b].Tasks[dt]
				rx.Priority = 1
				rx.Deadline = rx.Period
				tx := &sys.Partitions[a].Tasks[st]
				if tight := maxI64(tx.WCET[0], tx.Period/3); tx.Deadline > tight {
					tx.Deadline = tight
				}
			}
		}
	}
	if err := sys.Validate(); err != nil {
		panic(fmt.Sprintf("gen: invalid distributed config (seed %d): %v", seed, err))
	}
	return sys
}

package gen

import (
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

func TestTable1ConfigValid(t *testing.T) {
	for _, jobs := range []int{1, 2, 5, 10, 18} {
		sys := Table1Config(jobs)
		if err := sys.Validate(); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got := sys.JobCount(); got != int64(jobs) {
			t.Errorf("jobs=%d: JobCount = %d", jobs, got)
		}
	}
}

func TestTable1ConfigSchedulable(t *testing.T) {
	sys := Table1Config(12)
	m := model.MustBuild(sys)
	tr, _, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedulable {
		t.Fatalf("Table 1 config must be schedulable:\n%s", a.Summary(sys))
	}
}

func TestIndustrialConfig(t *testing.T) {
	sys := IndustrialConfig()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs := sys.JobCount()
	if jobs < 12000 || jobs > 13000 {
		t.Errorf("jobs = %d, want ~12500", jobs)
	}
	if got := sys.Hyperperiod(); got != 2750 {
		t.Errorf("L = %d, want 2750", got)
	}
	if len(sys.Cores) != 5 {
		t.Errorf("cores = %d", len(sys.Cores))
	}
	if len(sys.Messages) != 10 {
		t.Errorf("messages = %d", len(sys.Messages))
	}
}

func TestIndustrialSchedulable(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial-scale simulation in -short mode")
	}
	sys := IndustrialConfig()
	m := model.MustBuild(sys)
	tr, res, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Schedulable {
		// Show only the summary; the trace would be enormous.
		t.Fatalf("industrial config must be schedulable:\n%s", a.Summary(sys))
	}
	if int64(len(a.Jobs)) != sys.JobCount() {
		t.Errorf("analyzed %d jobs, config has %d", len(a.Jobs), sys.JobCount())
	}
	t.Logf("industrial run: %d actions, %d delays, %d jobs", res.Actions, res.Delays, len(a.Jobs))
}

func TestRandomConfigsValidAndRunnable(t *testing.T) {
	p := DefaultRandomParams()
	for seed := int64(0); seed < 30; seed++ {
		sys := Random(seed, p)
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, err := model.Build(sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr, _, err := m.Simulate()
		if err != nil {
			t.Fatalf("seed %d: simulate: %v", seed, err)
		}
		if _, err := trace.Analyze(sys, tr); err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, tr.Format(sys))
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	p := DefaultRandomParams()
	a := Random(42, p)
	b := Random(42, p)
	if a.Name != b.Name || len(a.Partitions) != len(b.Partitions) || a.Hyperperiod() != b.Hyperperiod() {
		t.Error("same seed produced different configs")
	}
	if len(a.Partitions[0].Tasks) != len(b.Partitions[0].Tasks) {
		t.Error("task sets differ")
	}
}

func TestRandomCoverage(t *testing.T) {
	// Over many seeds the generator must produce all three policies and at
	// least some messages and multi-core systems.
	p := DefaultRandomParams()
	seenPolicy := make(map[config.Policy]bool)
	seenMsg, seenMulti := false, false
	for seed := int64(0); seed < 60; seed++ {
		sys := Random(seed, p)
		for i := range sys.Partitions {
			seenPolicy[sys.Partitions[i].Policy] = true
		}
		if len(sys.Messages) > 0 {
			seenMsg = true
		}
		if len(sys.Cores) > 1 {
			seenMulti = true
		}
	}
	if len(seenPolicy) != 4 || !seenMsg || !seenMulti {
		t.Errorf("coverage: policies=%v msg=%t multi=%t", seenPolicy, seenMsg, seenMulti)
	}
}

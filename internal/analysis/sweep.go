package analysis

import (
	"context"
	"fmt"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/nsa"
)

// SweepPoint is the verdict at one WCET scaling percentage.
type SweepPoint struct {
	Pct         int64         `json:"pct"`
	Schedulable bool          `json:"schedulable"`
	CacheHit    bool          `json:"cache_hit"`
	Elapsed     time.Duration `json:"elapsed_ns"`
}

// SweepWCET evaluates schedulability at every scaling percentage in
// points, fanning the runs across a bounded jobs.Pool with parallel
// workers — the paper's one-interpretation-per-configuration property is
// what lets a sweep parallelize trivially: each point is an independent
// deterministic run. Duplicate points (and any point matching a
// previously cached configuration) are served from the pool's
// content-addressed cache. Results are returned in the order of points.
// The first failed run aborts the sweep with that run's error.
func SweepWCET(ctx context.Context, sys *config.System, points []int64, parallel int, b nsa.Budget) ([]SweepPoint, error) {
	if len(points) == 0 {
		return nil, nil
	}
	for _, pct := range points {
		if pct < 1 {
			return nil, fmt.Errorf("analysis: non-positive scaling point %d", pct)
		}
	}
	pool := jobs.New(jobs.Options{
		Workers:    parallel,
		QueueDepth: len(points),
		Budget:     b,
		Tool:       "sensitivity",
	})
	defer pool.Close()

	ids := make([]string, len(points))
	for i, pct := range points {
		jb, err := pool.Submit(jobs.ConfigRun{Sys: ScaleWCET(sys, pct)})
		if err != nil {
			return nil, fmt.Errorf("analysis: submitting point %d%%: %w", pct, err)
		}
		ids[i] = jb.ID
	}
	out := make([]SweepPoint, len(points))
	for i, id := range ids {
		jb, err := pool.Wait(ctx, id)
		if err != nil {
			return nil, err
		}
		if jb.Err != nil {
			return nil, fmt.Errorf("analysis: point %d%%: %w", points[i], jb.Err)
		}
		out[i] = SweepPoint{
			Pct:         points[i],
			Schedulable: jb.Outcome.Verdict == jobs.VerdictSchedulable,
			CacheHit:    jb.CacheHit,
			Elapsed:     jb.Outcome.Elapsed,
		}
	}
	return out, nil
}

// SweepRange builds the inclusive point grid lo, lo+step, … capped at hi.
func SweepRange(lo, hi, step int64) ([]int64, error) {
	if lo < 1 || hi < lo || step < 1 {
		return nil, fmt.Errorf("analysis: bad sweep range %d:%d:%d", lo, hi, step)
	}
	var pts []int64
	for p := lo; p <= hi; p += step {
		pts = append(pts, p)
	}
	return pts, nil
}

// CriticalFromSweep returns the largest scaling percentage the sweep found
// schedulable, 0 when none is. It assumes (but does not require) the
// monotonicity CriticalScaling relies on; with non-monotone verdicts it
// still reports the largest schedulable point.
func CriticalFromSweep(points []SweepPoint) int64 {
	var best int64
	for _, p := range points {
		if p.Schedulable && p.Pct > best {
			best = p.Pct
		}
	}
	return best
}

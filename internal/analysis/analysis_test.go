package analysis

import (
	"math/rand"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

func TestRTATextbookExample(t *testing.T) {
	// Classic example: T1(C=3,T=7), T2(C=3,T=12), T3(C=5,T=20), priorities
	// rate-monotonic. Known responses: R1=3, R2=6, R3=20.
	tasks := []TaskParams{
		{C: 3, T: 7, D: 7, Priority: 3},
		{C: 3, T: 12, D: 12, Priority: 2},
		{C: 5, T: 20, D: 20, Priority: 1},
	}
	got := ResponseTimesFPPS(tasks)
	want := []int64{3, 6, 20}
	for i, r := range got {
		if !r.Schedulable || r.Response != want[i] {
			t.Errorf("task %d: %+v, want R=%d", i, r, want[i])
		}
	}
}

func TestRTAUnschedulable(t *testing.T) {
	tasks := []TaskParams{
		{C: 5, T: 10, D: 10, Priority: 2},
		{C: 6, T: 10, D: 10, Priority: 1},
	}
	got := ResponseTimesFPPS(tasks)
	if !got[0].Schedulable || got[0].Response != 5 {
		t.Errorf("high-priority task: %+v", got[0])
	}
	if got[1].Schedulable {
		t.Errorf("low-priority task should be unschedulable: %+v", got[1])
	}
}

func TestEDFUtilization(t *testing.T) {
	ok, err := EDFUtilizationTest([]TaskParams{
		{C: 5, T: 10, D: 10}, {C: 5, T: 10, D: 10},
	})
	if err != nil || !ok {
		t.Errorf("U=1.0 exactly must be schedulable: %t %v", ok, err)
	}
	ok, err = EDFUtilizationTest([]TaskParams{
		{C: 5, T: 10, D: 10}, {C: 6, T: 10, D: 10},
	})
	if err != nil || ok {
		t.Errorf("U=1.1 must be unschedulable: %t %v", ok, err)
	}
	if _, err := EDFUtilizationTest([]TaskParams{{C: 1, T: 10, D: 5}}); err == nil {
		t.Error("D != T must be rejected")
	}
}

func singlePartition(policy config.Policy, tasks []config.Task) *config.System {
	s := &config.System{
		Name:      "oracle",
		CoreTypes: []string{"std"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: policy, Tasks: tasks},
		},
	}
	s.Partitions[0].Windows = []config.Window{{Start: 0, End: s.Hyperperiod()}}
	return s
}

func TestApplicable(t *testing.T) {
	s := singlePartition(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{1}, Period: 4, Deadline: 4},
	})
	if !Applicable(s) {
		t.Error("should be applicable")
	}
	if _, err := FromSystem(s); err != nil {
		t.Error(err)
	}
	s.Partitions[0].Windows = []config.Window{{Start: 0, End: 2}}
	if Applicable(s) {
		t.Error("partial window should not be applicable")
	}
	if _, err := FromSystem(s); err == nil {
		t.Error("FromSystem should reject")
	}
}

// TestSimulatorMatchesRTA: on random synchronous fixed-priority task sets,
// the simulator's verdict must equal response-time analysis, and for
// schedulable sets the observed worst response of each task must equal the
// analytic response time (synchronous release is the critical instant).
func TestSimulatorMatchesRTA(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	periods := []int64{8, 16, 32}
	for iter := 0; iter < 60; iter++ {
		n := 1 + r.Intn(4)
		tasks := make([]config.Task, n)
		prios := r.Perm(8)
		for i := 0; i < n; i++ {
			p := periods[r.Intn(len(periods))]
			c := 1 + r.Int63n(p/3)
			tasks[i] = config.Task{
				Name:     names[i],
				Priority: prios[i] + 1, // distinct priorities
				WCET:     []int64{c},
				Period:   p,
				Deadline: p,
			}
		}
		sys := singlePartition(config.FPPS, tasks)
		if err := sys.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		params, err := FromSystem(sys)
		if err != nil {
			t.Fatal(err)
		}
		rta := ResponseTimesFPPS(params)
		rtaOK := true
		for _, rr := range rta {
			rtaOK = rtaOK && rr.Schedulable
		}

		m := model.MustBuild(sys)
		tr, _, err := m.Simulate()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if a.Schedulable != rtaOK {
			t.Fatalf("iter %d: simulator=%t RTA=%t\ntasks=%+v", iter, a.Schedulable, rtaOK, tasks)
		}
		if rtaOK {
			for i, st := range a.TaskStats() {
				if st.WCRT != rta[i].Response {
					t.Errorf("iter %d task %d: simulator WCRT=%d, RTA=%d\ntasks=%+v",
						iter, i, st.WCRT, rta[i].Response, tasks)
				}
			}
		}
	}
}

// TestSimulatorMatchesEDFBound: for random implicit-deadline task sets
// under EDF, the simulator's verdict must match the exact Liu–Layland
// utilization condition.
func TestSimulatorMatchesEDFBound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	periods := []int64{6, 12, 24}
	for iter := 0; iter < 60; iter++ {
		n := 1 + r.Intn(4)
		tasks := make([]config.Task, n)
		for i := 0; i < n; i++ {
			p := periods[r.Intn(len(periods))]
			c := 1 + r.Int63n(p/2)
			tasks[i] = config.Task{
				Name: names[i], Priority: 1,
				WCET: []int64{c}, Period: p, Deadline: p,
			}
		}
		sys := singlePartition(config.EDF, tasks)
		if err := sys.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		params, _ := FromSystem(sys)
		want, err := EDFUtilizationTest(params)
		if err != nil {
			t.Fatal(err)
		}
		m := model.MustBuild(sys)
		tr, _, err := m.Simulate()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		a, err := trace.Analyze(sys, tr)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if a.Schedulable != want {
			t.Fatalf("iter %d: simulator=%t EDF-bound=%t U tasks=%+v",
				iter, a.Schedulable, want, tasks)
		}
	}
}

var names = []string{"A", "B", "C", "D", "E", "F"}

package analysis

import (
	"testing"

	"stopwatchsim/internal/config"
)

func TestScaleWCET(t *testing.T) {
	sys := singlePartition(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{10}, Period: 40, Deadline: 40},
	})
	scaled := ScaleWCET(sys, 150)
	if got := scaled.Partitions[0].Tasks[0].WCET[0]; got != 15 {
		t.Errorf("150%% of 10 = %d", got)
	}
	if sys.Partitions[0].Tasks[0].WCET[0] != 10 {
		t.Error("original mutated")
	}
	tiny := ScaleWCET(sys, 1)
	if got := tiny.Partitions[0].Tasks[0].WCET[0]; got != 1 {
		t.Errorf("clamped WCET = %d, want 1", got)
	}
}

func TestCriticalScalingKnownAnswer(t *testing.T) {
	// One task, C=10, T=D=40, full window: schedulable up to C'=40, i.e.
	// exactly 400%.
	sys := singlePartition(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{10}, Period: 40, Deadline: 40},
	})
	pct, err := CriticalScaling(sys, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pct != 409 { // 409% of 10 truncates to 40; 410% is 41 > deadline
		t.Errorf("critical scaling = %d%%, want 409%%", pct)
	}
}

func TestCriticalScalingTwoTasks(t *testing.T) {
	// U = 0.5: two tasks each C=5, T=D=20. Full utilization at 200%:
	// C'=10 each, exactly fills the hyperperiod; 201% still truncates to
	// 10, and at 210% C'=10.5→10... the first failing percent is where
	// ⌊5·p/100⌋ sums past 20, i.e. p=220 → 11+11=22 fails, p=219 → 10+10.
	sys := singlePartition(config.FPPS, []config.Task{
		{Name: "A", Priority: 2, WCET: []int64{5}, Period: 20, Deadline: 20},
		{Name: "B", Priority: 1, WCET: []int64{5}, Period: 20, Deadline: 20},
	})
	pct, err := CriticalScaling(sys, 400)
	if err != nil {
		t.Fatal(err)
	}
	if pct != 219 {
		t.Errorf("critical scaling = %d%%, want 219%%", pct)
	}
	// Cross-check the boundary both ways.
	if ok, _ := Schedulable(ScaleWCET(sys, 219)); !ok {
		t.Error("219%% must be schedulable")
	}
	if ok, _ := Schedulable(ScaleWCET(sys, 220)); ok {
		t.Error("220%% must be unschedulable")
	}
}

func TestCriticalScalingOverloaded(t *testing.T) {
	sys := singlePartition(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{30}, Period: 20, Deadline: 20},
	})
	// Even at 1% the clamped WCET is 1 ≤ 20: schedulable, so the search
	// finds some small factor; force genuine overload via two tasks.
	sys2 := singlePartition(config.FPPS, []config.Task{
		{Name: "A", Priority: 2, WCET: []int64{100}, Period: 20, Deadline: 20},
		{Name: "B", Priority: 1, WCET: []int64{100}, Period: 20, Deadline: 20},
	})
	_ = sys
	pct, err := CriticalScaling(sys2, 400)
	if err != nil {
		t.Fatal(err)
	}
	// At 1%, both WCETs clamp to 1: schedulable; the factor tops out where
	// ⌊100p/100⌋ pairs exceed the 20-tick frame: p=10 gives 10+10 = 20 ok,
	// p=11 gives 22 > 20.
	if pct != 10 {
		t.Errorf("critical scaling = %d%%, want 10%%", pct)
	}
}

func TestCriticalScalingMaxReached(t *testing.T) {
	sys := singlePartition(config.FPPS, []config.Task{
		{Name: "T", Priority: 1, WCET: []int64{1}, Period: 40, Deadline: 40},
	})
	pct, err := CriticalScaling(sys, 150)
	if err != nil {
		t.Fatal(err)
	}
	if pct != 150 {
		t.Errorf("bounded scaling = %d%%, want the bound 150%%", pct)
	}
	if _, err := CriticalScaling(sys, 0); err == nil {
		t.Error("non-positive bound must error")
	}
}

// Package analysis implements classical analytic schedulability tests used
// to cross-validate the simulator on restricted configurations: exact
// response-time analysis for fixed-priority preemptive scheduling and the
// Liu–Layland utilization bound for EDF. Neither handles windows or data
// dependencies — they apply only to a single partition owning its whole
// core — which is precisely why the paper's trace-based approach exists;
// here they serve as independent oracles in tests.
package analysis

import (
	"fmt"
	"sort"

	"stopwatchsim/internal/config"
)

// TaskParams are the analytic view of one periodic task.
type TaskParams struct {
	C, T, D  int64 // WCET, period, deadline (D ≤ T)
	Priority int
}

// RTAResult is the outcome of response-time analysis for one task.
type RTAResult struct {
	Response    int64 // worst-case response time; valid when Schedulable
	Schedulable bool
}

// ResponseTimesFPPS computes worst-case response times under
// fixed-priority preemptive scheduling with synchronous release, by the
// standard fixpoint iteration R = C_i + Σ_{j∈hp(i)} ⌈R/T_j⌉·C_j.
// Ties in priority are broken by slice order (earlier wins), matching the
// model's dispatch rule. A task whose fixpoint exceeds its deadline (or
// diverges past the LCM bound) is reported unschedulable with Response -1.
func ResponseTimesFPPS(tasks []TaskParams) []RTAResult {
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	// Sort by decreasing priority, stable on input order for ties.
	sort.SliceStable(idx, func(a, b int) bool {
		return tasks[idx[a]].Priority > tasks[idx[b]].Priority
	})
	out := make([]RTAResult, len(tasks))
	for pos, i := range idx {
		t := tasks[i]
		r := t.C
		for {
			next := t.C
			for _, j := range idx[:pos] {
				hj := tasks[j]
				next += ceilDiv(r, hj.T) * hj.C
			}
			if next == r {
				break
			}
			r = next
			if r > t.D {
				break
			}
		}
		if r <= t.D {
			out[i] = RTAResult{Response: r, Schedulable: true}
		} else {
			out[i] = RTAResult{Response: -1}
		}
	}
	return out
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// EDFUtilizationTest applies the Liu–Layland exact condition for preemptive
// EDF with deadlines equal to periods: the task set is schedulable iff
// Σ C/T ≤ 1. It returns an error when some deadline differs from its
// period (the simple bound would not be exact).
func EDFUtilizationTest(tasks []TaskParams) (bool, error) {
	var num, den int64 = 0, 1
	for _, t := range tasks {
		if t.D != t.T {
			return false, fmt.Errorf("analysis: EDF utilization test requires D == T, got D=%d T=%d", t.D, t.T)
		}
		// Accumulate C/T exactly as a rational number.
		num = num*t.T + t.C*den
		den *= t.T
		g := gcd(num, den)
		if g > 1 {
			num /= g
			den /= g
		}
	}
	return num <= den, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Applicable reports whether sys fits the oracle's restrictions: a single
// partition owning its core with one full-hyperperiod window and no data
// dependencies.
func Applicable(sys *config.System) bool {
	if len(sys.Partitions) != 1 || len(sys.Messages) != 0 {
		return false
	}
	p := &sys.Partitions[0]
	l := sys.Hyperperiod()
	if len(p.Windows) != 1 || p.Windows[0].Start != 0 || p.Windows[0].End != l {
		return false
	}
	return true
}

// FromSystem extracts analytic task parameters from the (single) partition
// of an Applicable system.
func FromSystem(sys *config.System) ([]TaskParams, error) {
	if !Applicable(sys) {
		return nil, fmt.Errorf("analysis: system %q outside the oracle's restrictions", sys.Name)
	}
	p := &sys.Partitions[0]
	ct := sys.Cores[p.Core].Type
	out := make([]TaskParams, len(p.Tasks))
	for i := range p.Tasks {
		t := &p.Tasks[i]
		out[i] = TaskParams{C: t.WCET[ct], T: t.Period, D: t.Deadline, Priority: t.Priority}
	}
	return out, nil
}

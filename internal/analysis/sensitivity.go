package analysis

import (
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/trace"
)

// ScaleWCET returns a deep copy of sys with every WCET multiplied by
// pct/100 (rounded down, clamped to ≥ 1).
func ScaleWCET(sys *config.System, pct int64) *config.System {
	out := *sys
	out.Partitions = make([]config.Partition, len(sys.Partitions))
	for i := range sys.Partitions {
		p := sys.Partitions[i]
		tasks := make([]config.Task, len(p.Tasks))
		for j, t := range p.Tasks {
			wcet := make([]int64, len(t.WCET))
			for k, c := range t.WCET {
				scaled := c * pct / 100
				if scaled < 1 {
					scaled = 1
				}
				wcet[k] = scaled
			}
			t.WCET = wcet
			tasks[j] = t
		}
		p.Tasks = tasks
		out.Partitions[i] = p
	}
	return &out
}

// Schedulable builds and simulates sys, returning the criterion verdict.
func Schedulable(sys *config.System) (bool, error) {
	if err := sys.Validate(); err != nil {
		return false, err
	}
	m, err := model.Build(sys)
	if err != nil {
		return false, err
	}
	tr, _, err := m.Simulate()
	if err != nil {
		return false, err
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		return false, err
	}
	return a.Schedulable, nil
}

// CriticalScaling performs the classic sensitivity analysis: the largest
// integer percentage pct in [1, maxPct] such that scaling every WCET by
// pct/100 keeps the configuration schedulable, found by binary search with
// the simulator as the oracle. It returns 0 when even pct=1 is
// unschedulable. Binary search assumes schedulability is monotone in the
// scaling factor, which holds for work-conserving schedulers on a fixed
// window schedule.
func CriticalScaling(sys *config.System, maxPct int64) (int64, error) {
	if maxPct < 1 {
		return 0, fmt.Errorf("analysis: non-positive scaling bound %d", maxPct)
	}
	ok, err := Schedulable(ScaleWCET(sys, 1))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	lo, hi := int64(1), maxPct // invariant: lo schedulable, hi+1 considered unschedulable
	if ok, err = Schedulable(ScaleWCET(sys, maxPct)); err != nil {
		return 0, err
	} else if ok {
		return maxPct, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ok, err := Schedulable(ScaleWCET(sys, mid))
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

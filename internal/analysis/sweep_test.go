package analysis

import (
	"context"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
)

// sweepSystem is schedulable at 100% with headroom that runs out well
// before 400%: hi C=2/P=10 and lo C=9/P=20 on one core.
func sweepSystem() *config.System {
	return &config.System{
		Name:      "sweep",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{
			{
				Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "hi", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
					{Name: "lo", Priority: 1, WCET: []int64{9}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 20}},
			},
		},
	}
}

// TestSweepMatchesSerialOracle checks every sweep point against the
// serial Schedulable oracle, across parallelism degrees.
func TestSweepMatchesSerialOracle(t *testing.T) {
	sys := sweepSystem()
	points, err := SweepRange(40, 180, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, len(points))
	for i, pct := range points {
		ok, err := Schedulable(ScaleWCET(sys, pct))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ok
	}
	for _, parallel := range []int{1, 4} {
		got, err := SweepWCET(context.Background(), sys, points, parallel, nsa.Budget{})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range points {
			if got[i].Pct != points[i] || got[i].Schedulable != want[i] {
				t.Errorf("parallel=%d point %d%%: got %+v, want schedulable=%t",
					parallel, points[i], got[i], want[i])
			}
		}
	}
}

func TestSweepCachesDuplicatePoints(t *testing.T) {
	sys := sweepSystem()
	got, err := SweepWCET(context.Background(), sys, []int64{100, 120, 100}, 1, nsa.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !got[2].CacheHit {
		t.Fatalf("duplicate point did not hit the cache: %+v", got)
	}
	if got[0].CacheHit {
		t.Fatalf("first point reported a cache hit: %+v", got[0])
	}
	if got[0].Schedulable != got[2].Schedulable {
		t.Fatalf("cached verdict diverges: %+v", got)
	}
}

func TestSweepAgreesWithCriticalScaling(t *testing.T) {
	sys := sweepSystem()
	exact, err := CriticalScaling(sys, 400)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SweepRange(1, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := SweepWCET(context.Background(), sys, points, 8, nsa.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if got := CriticalFromSweep(sweep); got != exact {
		t.Fatalf("exhaustive sweep critical point %d%% != binary search %d%%", got, exact)
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	if _, err := SweepWCET(context.Background(), sweepSystem(), []int64{0}, 1, nsa.Budget{}); err == nil {
		t.Fatal("non-positive point accepted")
	}
	if _, err := SweepRange(10, 5, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if pts, err := SweepWCET(context.Background(), sweepSystem(), nil, 1, nsa.Budget{}); err != nil || pts != nil {
		t.Fatalf("empty sweep: %v %v", pts, err)
	}
}

package analysis_test

import (
	"fmt"

	"stopwatchsim/internal/analysis"
)

// ExampleResponseTimesFPPS computes the classic response-time fixpoint for
// a rate-monotonic task set.
func ExampleResponseTimesFPPS() {
	tasks := []analysis.TaskParams{
		{C: 3, T: 7, D: 7, Priority: 3},
		{C: 3, T: 12, D: 12, Priority: 2},
		{C: 5, T: 20, D: 20, Priority: 1},
	}
	for i, r := range analysis.ResponseTimesFPPS(tasks) {
		fmt.Printf("task %d: R=%d schedulable=%t\n", i, r.Response, r.Schedulable)
	}
	// Output:
	// task 0: R=3 schedulable=true
	// task 1: R=6 schedulable=true
	// task 2: R=20 schedulable=true
}

// ExampleEDFUtilizationTest applies the exact Liu–Layland condition.
func ExampleEDFUtilizationTest() {
	ok, _ := analysis.EDFUtilizationTest([]analysis.TaskParams{
		{C: 5, T: 10, D: 10},
		{C: 5, T: 10, D: 10},
	})
	fmt.Println(ok)
	over, _ := analysis.EDFUtilizationTest([]analysis.TaskParams{
		{C: 6, T: 10, D: 10},
		{C: 5, T: 10, D: 10},
	})
	fmt.Println(over)
	// Output:
	// true
	// false
}

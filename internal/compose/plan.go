// Package compose implements compositional assume-guarantee
// schedulability analysis: a multi-module system is partitioned by
// hardware module, each module is analyzed standalone against an
// interface abstraction of its environment, and a composition check
// verifies the interfaces fit together (Han et al., arXiv:1807.11570 and
// arXiv:1803.11050, adapted to this package's stopwatch-automata model).
//
// The decomposition seam is config.Core.Module: tasks of different
// modules never share a core, so the only cross-module coupling is the
// data-flow graph. For every cross-module Message the planner derives an
// interface contract from the sender's task parameters alone — job k of
// the sender is assumed to complete no later than k·Period + Deadline,
// and the message to arrive Delay ticks later (System.Delay, the network
// delay for cross-module edges). Each module then becomes a standalone
// sub-System: its own cores, partitions and intra-module messages, plus
// one environment stub automaton per external sender replaying exactly
// that latest-arrival assumption (a stub task alone on a stub core with
// WCET = sender deadline finishes each job precisely at its assumed
// completion instant, and the retargeted message carries the original
// delay).
//
// Contracts are deliberately parameter-derived (period, deadline, delay
// — never WCET): a module's sub-System, and with it its per-module
// fingerprint, changes only when the module's own content or one of its
// assumed interfaces changes. That is what makes re-analysis
// incremental: moving wcet:P.t re-runs only the module owning P.
//
// The latest-arrival abstraction is sound only for modules whose
// dependent tasks cannot perturb anything else by becoming ready
// earlier. The planner enforces this structurally (the safe-receiver
// gate): every tainted task — a task with an inbound cross-module
// message, or reachable from one through the local data-flow graph —
// must live in a fixed-priority preemptive (FPPS) partition and hold
// strictly the lowest priority there. Such a task runs only in the slack
// of its partition, its completion time is monotone in its ready time,
// and it can never delay a higher-priority task, so the stub run's
// finish times upper-bound every real execution. Systems that violate
// the gate — or couple modules through a routed switched network, or
// form a module-level dependency cycle — fall back to the global product
// with the reason flagged in the result.
package compose

import (
	"fmt"
	"sort"

	"stopwatchsim/internal/config"
)

// Contract is the interface abstraction of one cross-module message:
// the receiver's module assumes job k of the sender completes no later
// than k·Period + LatestOffset and the payload arrives Delay ticks
// after completion; the sender's module must guarantee it.
type Contract struct {
	Message  int    `json:"message"` // index into System.Messages
	Name     string `json:"name"`
	Sender   config.TaskRef
	Receiver config.TaskRef
	// SenderName and ReceiverName are the partition-qualified task names,
	// stable across the sub-System reindexing.
	SenderName   string `json:"sender"`
	ReceiverName string `json:"receiver"`
	SrcModule    int    `json:"src_module"`
	DstModule    int    `json:"dst_module"`

	Period       int64 `json:"period"`
	LatestOffset int64 `json:"latest_offset"` // sender's relative deadline
	Delay        int64 `json:"delay"`         // transfer delay (System.Delay)
}

// Module is one hardware module of the plan: the slice of the global
// system it owns plus the materialized standalone sub-System.
type Module struct {
	ID         int   // config.Core.Module value
	Cores      []int // indices into the global System.Cores
	Partitions []int // indices into the global System.Partitions
	Inbound    []int // contract indices received by this module
	Outbound   []int // contract indices sent by this module

	// Sub is the standalone sub-System: local partitions (reindexed),
	// intra-module messages, and one environment stub per external
	// sender. Fingerprint is Sub's canonical config fingerprint — the
	// per-module content address.
	Sub         *config.System
	Fingerprint string
	// Stubs counts environment stub automata; Pacer marks a module whose
	// window schedule is not periodic in the local hyperperiod, forcing
	// the sub-System to keep the global hyperperiod via a pacer task.
	Stubs int
	Pacer bool

	// partMap maps global partition indices to Sub partition indices,
	// for translating analysis results back to global task names.
	partMap map[int]int
	// plan is the owning plan, for resolving contract indices.
	plan *Plan
}

// Plan is the compositional decomposition of one system.
type Plan struct {
	Sys         *config.System
	Fingerprint string // global config fingerprint
	Modules     []*Module
	Contracts   []Contract
	// Fallback is non-empty when compositional analysis is structurally
	// impossible or unsound for this system; the analyzer then runs the
	// global product and flags the reason.
	Fallback string
}

// NewPlan validates sys and decomposes it by hardware module. A non-nil
// error reports an invalid configuration; a structurally sound but
// non-compositional system returns a plan with Fallback set.
func NewPlan(sys *config.System) (*Plan, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Sys: sys, Fingerprint: sys.Fingerprint()}

	// Group partitions by the module of their bound core.
	byID := make(map[int]*Module)
	var ids []int
	for pi := range sys.Partitions {
		id := sys.Cores[sys.Partitions[pi].Core].Module
		mod, ok := byID[id]
		if !ok {
			mod = &Module{ID: id}
			byID[id] = mod
			ids = append(ids, id)
		}
		mod.Partitions = append(mod.Partitions, pi)
	}
	sort.Ints(ids)
	for _, id := range ids {
		mod := byID[id]
		seen := make(map[int]bool)
		for _, pi := range mod.Partitions {
			if ci := sys.Partitions[pi].Core; !seen[ci] {
				seen[ci] = true
				mod.Cores = append(mod.Cores, ci)
			}
		}
		sort.Ints(mod.Cores)
		mod.plan = p
		p.Modules = append(p.Modules, mod)
	}

	if len(p.Modules) < 2 {
		p.Fallback = "single hardware module: nothing to decompose"
		return p, nil
	}
	if sys.Net != nil {
		p.Fallback = "routed switched-network topology couples modules through port contention"
		return p, nil
	}

	// Derive one contract per cross-module message.
	moduleOf := func(part int) int { return sys.Cores[sys.Partitions[part].Core].Module }
	for i := range sys.Messages {
		m := &sys.Messages[i]
		src, dst := moduleOf(m.SrcPart), moduleOf(m.DstPart)
		if src == dst {
			continue
		}
		sref := config.TaskRef{Part: m.SrcPart, Task: m.SrcTask}
		rref := config.TaskRef{Part: m.DstPart, Task: m.DstTask}
		st := &sys.Partitions[m.SrcPart].Tasks[m.SrcTask]
		ci := len(p.Contracts)
		p.Contracts = append(p.Contracts, Contract{
			Message:      i,
			Name:         m.Name,
			Sender:       sref,
			Receiver:     rref,
			SenderName:   sys.TaskName(sref),
			ReceiverName: sys.TaskName(rref),
			SrcModule:    src,
			DstModule:    dst,
			Period:       st.Period,
			LatestOffset: st.Deadline,
			Delay:        sys.Delay(m),
		})
		byID[src].Outbound = append(byID[src].Outbound, ci)
		byID[dst].Inbound = append(byID[dst].Inbound, ci)
	}

	if cyc := p.moduleCycle(); cyc != "" {
		p.Fallback = "module dependency cycle prevents contract closure: " + cyc
		return p, nil
	}
	if reason := p.safeReceiverGate(); reason != "" {
		p.Fallback = reason
		return p, nil
	}

	for _, mod := range p.Modules {
		if err := p.buildSub(mod); err != nil {
			// A sub-System that fails validation (e.g. a name collision
			// with the env/pacer namespace) is not a caller error: the
			// global product still answers the question.
			p.Fallback = fmt.Sprintf("module %d sub-system not materializable: %v", mod.ID, err)
			return p, nil
		}
	}
	return p, nil
}

// moduleCycle detects a cycle in the module dependency graph (an edge
// per cross-module contract). The task-level graph is acyclic by
// validation, but distinct task chains can still close a loop between
// two modules; the plain topological induction the soundness argument
// rests on then no longer applies, so such systems fall back.
func (p *Plan) moduleCycle() string {
	adj := make(map[int][]int)
	for _, c := range p.Contracts {
		adj[c.SrcModule] = append(adj[c.SrcModule], c.DstModule)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var hit int
	var found bool
	var visit func(id int) bool
	visit = func(id int) bool {
		color[id] = gray
		for _, next := range adj[id] {
			switch color[next] {
			case gray:
				hit, found = next, true
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		color[id] = black
		return false
	}
	var roots []int
	for id := range adj {
		roots = append(roots, id)
	}
	sort.Ints(roots)
	for _, id := range roots {
		if color[id] == white && visit(id) {
			return fmt.Sprintf("through module %d", hit)
		}
	}
	_ = found
	return ""
}

// safeReceiverGate enforces the structural condition that makes the
// latest-arrival abstraction a worst case: every tainted task (reachable
// from a cross-module arrival through the data-flow graph) must be the
// strictly lowest-priority task of an FPPS partition. It returns the
// fallback reason, or "" when the gate holds.
func (p *Plan) safeReceiverGate() string {
	sys := p.Sys
	tainted := make(map[config.TaskRef]bool)
	var queue []config.TaskRef
	for _, c := range p.Contracts {
		if !tainted[c.Receiver] {
			tainted[c.Receiver] = true
			queue = append(queue, c.Receiver)
		}
	}
	adj := make(map[config.TaskRef][]config.TaskRef)
	for i := range sys.Messages {
		m := &sys.Messages[i]
		src := config.TaskRef{Part: m.SrcPart, Task: m.SrcTask}
		adj[src] = append(adj[src], config.TaskRef{Part: m.DstPart, Task: m.DstTask})
	}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, next := range adj[r] {
			if !tainted[next] {
				tainted[next] = true
				queue = append(queue, next)
			}
		}
	}

	refs := make([]config.TaskRef, 0, len(tainted))
	for r := range tainted {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].Part != refs[b].Part {
			return refs[a].Part < refs[b].Part
		}
		return refs[a].Task < refs[b].Task
	})
	for _, r := range refs {
		part := &sys.Partitions[r.Part]
		if part.Policy != config.FPPS {
			return fmt.Sprintf("arrival-sensitive receiver %s: partition policy %s (safe-receiver gate needs FPPS)",
				sys.TaskName(r), part.Policy)
		}
		prio := part.Tasks[r.Task].Priority
		for j := range part.Tasks {
			if j != r.Task && part.Tasks[j].Priority <= prio {
				return fmt.Sprintf("arrival-sensitive receiver %s: priority %d not strictly lowest in partition %s",
					sys.TaskName(r), prio, part.Name)
			}
		}
	}
	return ""
}

// buildSub materializes mod as a standalone sub-System with environment
// stubs, truncating the window schedule to the local hyperperiod when
// the schedule is periodic in it (the usual case, and where the
// compositional step-count win comes from).
func (p *Plan) buildSub(mod *Module) error {
	sys := p.Sys
	sub := &config.System{
		Name:      fmt.Sprintf("%s/module-%d", sys.Name, mod.ID),
		CoreTypes: append([]string(nil), sys.CoreTypes...),
	}
	coreMap := make(map[int]int, len(mod.Cores))
	for _, ci := range mod.Cores {
		coreMap[ci] = len(sub.Cores)
		sub.Cores = append(sub.Cores, sys.Cores[ci])
	}
	mod.partMap = make(map[int]int, len(mod.Partitions))
	for _, pi := range mod.Partitions {
		orig := &sys.Partitions[pi]
		cp := config.Partition{
			Name:    orig.Name,
			Policy:  orig.Policy,
			Core:    coreMap[orig.Core],
			Quantum: orig.Quantum,
			Windows: append([]config.Window(nil), orig.Windows...),
		}
		for _, t := range orig.Tasks {
			t.WCET = append([]int64(nil), t.WCET...)
			cp.Tasks = append(cp.Tasks, t)
		}
		mod.partMap[pi] = len(sub.Partitions)
		sub.Partitions = append(sub.Partitions, cp)
	}

	// Local hyperperiod. Stub periods equal their receivers' periods
	// (messages connect equal-period tasks), so local task periods alone
	// determine it.
	lsub := int64(1)
	for i := range sub.Partitions {
		for j := range sub.Partitions[i].Tasks {
			l, err := config.LCMChecked(lsub, sub.Partitions[i].Tasks[j].Period)
			if err != nil {
				return err
			}
			lsub = l
		}
	}
	lglob := sys.Hyperperiod()

	// Window schedule: execution windows are pure gating (zero-width
	// close/open boundaries preserve accumulated execution), so the
	// schedule truncates to [0, lsub) exactly when every partition's
	// window coverage is lsub-periodic over the global hyperperiod.
	// Otherwise the sub-System keeps the global schedule and a pacer
	// task stretches its hyperperiod back to lglob.
	pacer := false
	if lsub < lglob {
		trunc := make([][]config.Window, len(sub.Partitions))
		for i := range sub.Partitions {
			tw, ok := truncateWindows(sub.Partitions[i].Windows, lsub, lglob)
			if !ok {
				pacer = true
				break
			}
			trunc[i] = tw
		}
		if !pacer {
			for i := range sub.Partitions {
				sub.Partitions[i].Windows = trunc[i]
			}
		}
	}
	horizon := lsub
	if pacer {
		horizon = lglob
	}

	// Intra-module messages, partition indices remapped.
	for i := range sys.Messages {
		m := sys.Messages[i]
		sp, spOK := mod.partMap[m.SrcPart]
		dp, dpOK := mod.partMap[m.DstPart]
		if spOK && dpOK {
			m.SrcPart, m.DstPart = sp, dp
			sub.Messages = append(sub.Messages, m)
		}
	}

	// Environment stubs: one per distinct external sender. The stub task
	// runs alone on its own core (carrying the sender's module ID so the
	// retargeted message keeps its network delay) with WCET = the
	// sender's deadline, so job k finishes exactly at k·Period +
	// LatestOffset — the contract's latest-arrival assumption.
	stubOf := make(map[config.TaskRef]int)
	for _, ci := range mod.Inbound {
		c := &p.Contracts[ci]
		spi, ok := stubOf[c.Sender]
		if !ok {
			srcCore := sys.Cores[sys.Partitions[c.Sender.Part].Core]
			wcet := make([]int64, len(sub.CoreTypes))
			for k := range wcet {
				wcet[k] = c.LatestOffset
			}
			coreIdx := len(sub.Cores)
			sub.Cores = append(sub.Cores, config.Core{
				Name:   "env:" + c.SenderName,
				Type:   srcCore.Type,
				Module: srcCore.Module,
			})
			spi = len(sub.Partitions)
			sub.Partitions = append(sub.Partitions, config.Partition{
				Name:   "env:" + c.SenderName,
				Core:   coreIdx,
				Policy: config.FPPS,
				Tasks: []config.Task{{
					Name:     "stub",
					Priority: 1,
					WCET:     wcet,
					Period:   c.Period,
					Deadline: c.Period,
				}},
				Windows: []config.Window{{Start: 0, End: horizon}},
			})
			stubOf[c.Sender] = spi
			mod.Stubs++
		}
		m := sys.Messages[c.Message]
		sub.Messages = append(sub.Messages, config.Message{
			Name:     m.Name,
			SrcPart:  spi,
			SrcTask:  0,
			DstPart:  mod.partMap[m.DstPart],
			DstTask:  m.DstTask,
			MemDelay: m.MemDelay,
			NetDelay: m.NetDelay,
		})
	}

	if pacer {
		mod.Pacer = true
		wcet := make([]int64, len(sub.CoreTypes))
		for k := range wcet {
			wcet[k] = 1
		}
		coreIdx := len(sub.Cores)
		sub.Cores = append(sub.Cores, config.Core{
			Name:   "env:pacer",
			Type:   0,
			Module: mod.ID,
		})
		sub.Partitions = append(sub.Partitions, config.Partition{
			Name:   "env:pacer",
			Core:   coreIdx,
			Policy: config.FPPS,
			Tasks: []config.Task{{
				Name:     "tick",
				Priority: 1,
				WCET:     wcet,
				Period:   lglob,
				Deadline: lglob,
			}},
			Windows: []config.Window{{Start: 0, End: lglob}},
		})
	}

	if err := sub.Validate(); err != nil {
		return err
	}
	mod.Sub = sub
	mod.Fingerprint = sub.Fingerprint()
	return nil
}

// truncateWindows reduces a window list spanning [0, lglob) to its
// [0, lsub) pattern when the merged coverage is lsub-periodic. The
// returned windows are the merged coverage of the first block.
func truncateWindows(ws []config.Window, lsub, lglob int64) ([]config.Window, bool) {
	// Merge touching windows: coverage, not boundary placement, is what
	// gates execution.
	var cov []config.Window
	for _, w := range ws {
		if n := len(cov); n > 0 && cov[n-1].End >= w.Start {
			if w.End > cov[n-1].End {
				cov[n-1].End = w.End
			}
			continue
		}
		cov = append(cov, w)
	}
	blocks := lglob / lsub
	var first []config.Window
	for b := int64(0); b < blocks; b++ {
		lo, hi := b*lsub, (b+1)*lsub
		var rel []config.Window
		for _, w := range cov {
			s, e := w.Start, w.End
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if s < e {
				rel = append(rel, config.Window{Start: s - lo, End: e - lo})
			}
		}
		if b == 0 {
			first = rel
			continue
		}
		if len(rel) != len(first) {
			return nil, false
		}
		for i := range rel {
			if rel[i] != first[i] {
				return nil, false
			}
		}
	}
	if len(first) == 0 {
		return nil, false
	}
	return first, true
}

package compose

import (
	"testing"

	"stopwatchsim/internal/config"
)

func TestTruncateWindows(t *testing.T) {
	w := func(s, e int64) config.Window { return config.Window{Start: s, End: e} }
	cases := []struct {
		name      string
		in        []config.Window
		lsub, lgl int64
		want      []config.Window
		ok        bool
	}{
		{"full span", []config.Window{w(0, 360)}, 60, 360, []config.Window{w(0, 60)}, true},
		{"periodic pattern", []config.Window{w(0, 5), w(10, 15), w(20, 25), w(30, 35)}, 10, 40,
			[]config.Window{w(0, 5)}, true},
		{"touching windows merge", []config.Window{w(0, 5), w(5, 10), w(10, 20)}, 10, 20,
			[]config.Window{w(0, 10)}, true},
		{"aperiodic", []config.Window{w(0, 5), w(12, 17)}, 10, 20, nil, false},
		{"window crossing a block boundary", []config.Window{w(6, 14)}, 10, 20, nil, false},
		{"empty coverage", nil, 10, 20, nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := truncateWindows(tc.in, tc.lsub, tc.lgl)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if !ok {
				return
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestModuleCycleFallback closes a loop between two modules through two
// disjoint task chains; the task graph stays acyclic but the module
// graph does not, and the plan must fall back.
func TestModuleCycleFallback(t *testing.T) {
	sys := &config.System{
		Name:      "cycle",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c0", Type: 0, Module: 1},
			{Name: "c1", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "A", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "a1", Priority: 2, WCET: []int64{1}, Period: 10, Deadline: 10},
					{Name: "a2", Priority: 1, WCET: []int64{1}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 10}}},
			{Name: "B", Core: 1, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "b1", Priority: 2, WCET: []int64{1}, Period: 10, Deadline: 10},
					{Name: "b2", Priority: 1, WCET: []int64{1}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 10}}},
		},
		Messages: []config.Message{
			{Name: "ab", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 1, NetDelay: 1},
			{Name: "ba", SrcPart: 1, SrcTask: 0, DstPart: 0, DstTask: 1, NetDelay: 1},
		},
	}
	p, err := NewPlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback == "" {
		t.Fatal("module cycle not detected")
	}
}

package compose_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"stopwatchsim/internal/compose"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/store"
)

func newPool(t *testing.T, st *store.Store) *jobs.Pool {
	t.Helper()
	p := jobs.New(jobs.Options{Workers: 2, Backend: nsa.BackendCompiled, Store: st})
	t.Cleanup(p.Close)
	return p
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "store"), store.Options{
		PinnedKinds: []string{compose.StoreKind()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// globalSteps runs the global product on its own pool and returns the
// verdict and engine step count.
func globalSteps(t *testing.T, sys *config.System) (jobs.Verdict, int64) {
	t.Helper()
	pool := newPool(t, nil)
	jb, err := pool.Submit(jobs.ConfigRun{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	jb, err = pool.Wait(context.Background(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jb.Status != jobs.StatusDone {
		t.Fatalf("global run %s: %v", jb.Status, jb.Err)
	}
	return jb.Outcome.Verdict, jb.Outcome.Telemetry.Counters.Steps
}

func TestPlanMultiModule(t *testing.T) {
	sys := gen.MultiModule(4, 1)
	p, err := compose.NewPlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback != "" {
		t.Fatalf("unexpected fallback: %s", p.Fallback)
	}
	if len(p.Modules) != 4 {
		t.Fatalf("modules = %d, want 4", len(p.Modules))
	}
	if len(p.Contracts) != 3 {
		t.Fatalf("contracts = %d, want 3", len(p.Contracts))
	}
	lglob := sys.Hyperperiod()
	for _, mod := range p.Modules {
		if mod.Sub == nil {
			t.Fatalf("module %d: no sub-system", mod.ID)
		}
		if mod.Pacer {
			t.Errorf("module %d: pacer mode, want truncation (full-span windows)", mod.ID)
		}
		if l := mod.Sub.Hyperperiod(); l >= lglob {
			t.Errorf("module %d: local hyperperiod %d not below global %d", mod.ID, l, lglob)
		}
		if mod.Fingerprint == "" {
			t.Errorf("module %d: empty fingerprint", mod.ID)
		}
	}
	// Interior modules see one inbound edge, hence one stub.
	if p.Modules[1].Stubs != 1 {
		t.Errorf("module %d stubs = %d, want 1", p.Modules[1].ID, p.Modules[1].Stubs)
	}
	// Contract parameters come from the sender's task parameters, never
	// its WCET: TX has period 12, deadline 3, and the chain edges carry
	// NetDelay 1.
	for _, c := range p.Contracts {
		if c.Period != 12 || c.LatestOffset != 3 || c.Delay != 1 {
			t.Errorf("contract %s = (P=%d, O=%d, D=%d), want (12, 3, 1)", c.Name, c.Period, c.LatestOffset, c.Delay)
		}
	}
}

// TestPlanIndustrial exercises the safe-receiver gate: the industrial
// configuration's message receivers are the highest-priority tasks of
// their partitions, so the latest-arrival abstraction is unsound for it
// and the plan must fall back.
func TestPlanIndustrial(t *testing.T) {
	p, err := compose.NewPlan(gen.IndustrialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback == "" {
		t.Fatal("industrial config passed the safe-receiver gate; its receivers are high-priority")
	}
	if want := "arrival-sensitive receiver"; !strings.Contains(p.Fallback, want) {
		t.Errorf("fallback %q does not mention %q", p.Fallback, want)
	}
}

func TestPlanSingleModule(t *testing.T) {
	p, err := compose.NewPlan(gen.Table1Config(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback == "" {
		t.Fatal("single-module system should fall back")
	}
}

func TestPlanSwitchedNetworkFallsBack(t *testing.T) {
	var sys *config.System
	for seed := int64(1); seed < 50; seed++ {
		s := gen.RandomSwitched(seed, gen.DefaultRandomParams())
		if s.Net != nil {
			sys = s
			break
		}
	}
	if sys == nil {
		t.Skip("no switched config generated")
	}
	p, err := compose.NewPlan(sys)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fallback == "" {
		t.Fatal("switched-network system should fall back")
	}
}

// TestCompositionalCheaperThanGlobal is the acceptance bar: on a
// 16-module system the per-module analyses must cost fewer total engine
// steps than one global-product interpretation.
func TestCompositionalCheaperThanGlobal(t *testing.T) {
	sys := gen.MultiModule(16, 7)
	a := compose.New(newPool(t, nil), nil, nil)
	res, err := a.Run(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compositional {
		t.Fatalf("fallback (%s), want compositional", res.Fallback)
	}
	if res.Verdict != jobs.VerdictSchedulable {
		t.Fatalf("verdict %s, want schedulable", res.Verdict)
	}
	gv, gs := globalSteps(t, sys)
	if gv != jobs.VerdictSchedulable {
		t.Fatalf("global verdict %s, want schedulable", gv)
	}
	if res.TotalSteps <= 0 || gs <= 0 {
		t.Fatalf("missing step counters: compositional %d, global %d", res.TotalSteps, gs)
	}
	if res.TotalSteps >= gs {
		t.Fatalf("compositional steps %d not below global %d", res.TotalSteps, gs)
	}
	t.Logf("16 modules: compositional %d steps vs global %d steps", res.TotalSteps, gs)
}

// TestIncrementalReanalysis is the other acceptance bar: perturbing one
// module's WCET must re-analyze exactly that module, with every other
// module served from its content-addressed store document.
func TestIncrementalReanalysis(t *testing.T) {
	st := openStore(t)
	sys := gen.MultiModule(8, 3)

	a1 := compose.New(newPool(t, nil), st, nil)
	res1, err := a1.Run(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Compositional || res1.ModulesAnalyzed != 8 || res1.ModulesCached != 0 {
		t.Fatalf("first run: compositional=%v analyzed=%d cached=%d, want true/8/0",
			res1.Compositional, res1.ModulesAnalyzed, res1.ModulesCached)
	}

	// Perturb one module's local content: the background load of module 4
	// (partition 3) gets one more WCET tick. Contracts are parameter-
	// derived, so every other module's fingerprint must be unchanged.
	mod := gen.MultiModule(8, 3)
	mod.Partitions[3].Tasks[1].WCET[0]++

	a2 := compose.New(newPool(t, nil), st, nil)
	res2, err := a2.Run(context.Background(), mod)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Compositional {
		t.Fatalf("second run fell back: %s", res2.Fallback)
	}
	if res2.ModulesAnalyzed != 1 || res2.ModulesCached != 7 {
		t.Fatalf("second run: analyzed=%d cached=%d, want 1/7", res2.ModulesAnalyzed, res2.ModulesCached)
	}
	if res2.ModulesAnalyzed >= len(res2.Modules) {
		t.Fatalf("re-analysis not strictly smaller than module count %d", len(res2.Modules))
	}

	// And a verbatim re-run touches no module at all.
	res3, err := compose.New(newPool(t, nil), st, nil).Run(context.Background(), gen.MultiModule(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res3.ModulesAnalyzed != 0 || res3.ModulesCached != 8 {
		t.Fatalf("verbatim re-run: analyzed=%d cached=%d, want 0/8", res3.ModulesAnalyzed, res3.ModulesCached)
	}
}

// TestDifferentialSoundness checks the analyzer against the global
// product over a corpus of random distributed systems: a compositional
// "schedulable" must imply the global product agrees, and every
// non-compositional result must be flagged with a fallback reason (its
// verdict then is the global verdict by construction).
func TestDifferentialSoundness(t *testing.T) {
	const seeds = 45
	pool := newPool(t, nil)
	a := compose.New(pool, nil, nil)
	ctx := context.Background()
	var compositional, fallbacks int
	for seed := int64(1); seed <= seeds; seed++ {
		// Two deterministic families: free-form random systems (mostly
		// fallbacks of every flavor) and structured chains (compositional
		// by construction), so both paths are exercised at fixed seeds.
		var sys *config.System
		if seed%3 == 0 {
			sys = gen.MultiModule(2+int(seed%5), seed)
		} else {
			sys = gen.RandomDistributed(seed, gen.DefaultRandomParams())
		}
		res, err := a.Run(ctx, sys)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Compositional == (res.Fallback != "") {
			t.Fatalf("seed %d: compositional=%v but fallback=%q", seed, res.Compositional, res.Fallback)
		}
		gv, _ := globalSteps(t, sys)
		if res.Compositional {
			compositional++
			if res.Verdict != jobs.VerdictSchedulable {
				t.Fatalf("seed %d: compositional result with verdict %s", seed, res.Verdict)
			}
			if gv != jobs.VerdictSchedulable {
				t.Fatalf("seed %d: UNSOUND: compositional schedulable, global %s", seed, gv)
			}
		} else {
			fallbacks++
			if res.Verdict != gv {
				t.Fatalf("seed %d: fallback verdict %s disagrees with global %s", seed, res.Verdict, gv)
			}
		}
	}
	t.Logf("%d seeds: %d compositional, %d fallbacks", seeds, compositional, fallbacks)
	if compositional == 0 {
		t.Error("corpus exercised no compositional run")
	}
	if fallbacks == 0 {
		t.Error("corpus exercised no fallback")
	}
}

// TestStatusRoundTrip checks persisted results answer Status lookups.
func TestStatusRoundTrip(t *testing.T) {
	st := openStore(t)
	a := compose.New(newPool(t, nil), st, nil)
	sys := gen.MultiModule(3, 5)
	if _, ok, err := a.Status(sys); err != nil || ok {
		t.Fatalf("Status before Run = (%v, %v), want miss", ok, err)
	}
	res, err := a.Run(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := a.Status(gen.MultiModule(3, 5))
	if err != nil || !ok {
		t.Fatalf("Status after Run = (%v, %v), want hit", ok, err)
	}
	if got.Fingerprint != res.Fingerprint || got.Verdict != res.Verdict {
		t.Fatalf("persisted result (%s, %s) != returned (%s, %s)",
			got.Fingerprint, got.Verdict, res.Fingerprint, res.Verdict)
	}
}

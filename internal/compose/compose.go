package compose

import (
	"stopwatchsim/internal/jobs"
)

// Store document versions and the store kind. Module documents are
// content-addressed by the per-module fingerprint, so a module whose
// sub-System (content + assumed interfaces) is unchanged is answered
// from the store without touching the engine — the incremental
// re-analysis the campaigns and synthesis layers inherit for free.
const (
	storeKind        = "compose"
	moduleDocVersion = "compose/module/v1"
	resultDocVersion = "compose/result/v1"
	moduleKeyPrefix  = "module-"
	resultKeyPrefix  = "result-"
)

// StoreKind returns the artifact-store kind compose documents live
// under; services pin it so checkpointed results survive store GC.
func StoreKind() string { return storeKind }

// ModuleResult is the analysis outcome of one module.
type ModuleResult struct {
	Module      int          `json:"module"`
	System      string       `json:"system"`
	Fingerprint string       `json:"fingerprint"`
	Verdict     jobs.Verdict `json:"verdict"`

	// CacheHit marks results served without a fresh engine run: from a
	// compose/module/v1 document (DocHit), the pool's in-memory result
	// cache, or its persistent tier (DiskHit).
	CacheHit bool `json:"cache_hit"`
	DocHit   bool `json:"doc_hit,omitempty"`
	DiskHit  bool `json:"disk_hit,omitempty"`

	// Steps/Events count the engine work of the module's analysis (as
	// recorded when it first ran; cache hits repeat the recorded cost).
	Steps     int64 `json:"steps"`
	Events    int64 `json:"events"`
	ElapsedNS int64 `json:"elapsed_ns"`

	// Guarantees maps each outbound sender's global task name to its
	// measured worst response time (max Finish − Release over the
	// module run) — the guaranteed output curve checked against every
	// receiver's assumed input curve.
	Guarantees map[string]int64 `json:"guarantees,omitempty"`

	Partitions int  `json:"partitions"`
	Tasks      int  `json:"tasks"`
	Stubs      int  `json:"stubs"`
	Pacer      bool `json:"pacer,omitempty"`
}

// ContractResult is one interface contract with its verification
// outcome: the measured guarantee refined the assumption or not.
type ContractResult struct {
	Contract
	// Guarantee is the sender's measured worst response time;
	// Refined reports Guarantee ≤ LatestOffset.
	Guarantee int64 `json:"guarantee"`
	Refined   bool  `json:"refined"`
}

// Result is the outcome of one compositional analysis.
type Result struct {
	Version     string       `json:"version"`
	System      string       `json:"system"`
	Fingerprint string       `json:"fingerprint"`
	Verdict     jobs.Verdict `json:"verdict"`

	// Compositional is true when the verdict came from the per-module
	// analyses plus the interface refinement check; false when the
	// analysis fell back to the global product, with Fallback naming
	// the reason (arrival-sensitive receiver, module cycle, interface
	// violation, locally unschedulable module, ...).
	Compositional bool   `json:"compositional"`
	Fallback      string `json:"fallback,omitempty"`

	Modules   []ModuleResult   `json:"modules,omitempty"`
	Contracts []ContractResult `json:"contracts,omitempty"`

	// ModulesAnalyzed counts modules answered by a fresh engine run this
	// invocation; ModulesCached those served from the per-module store
	// documents or the pool's cache tiers.
	ModulesAnalyzed int `json:"modules_analyzed"`
	ModulesCached   int `json:"modules_cached"`

	// TotalSteps sums the engine steps of the module analyses;
	// GlobalSteps is the step count of the global-product run when one
	// ran (fallback, or a caller-requested comparison).
	TotalSteps  int64 `json:"total_steps"`
	GlobalSteps int64 `json:"global_steps,omitempty"`

	ElapsedNS int64  `json:"elapsed_ns"`
	Trace     string `json:"trace,omitempty"`
}

// moduleDoc is the persisted form of a ModuleResult, keyed by the
// module fingerprint under the compose store kind.
type moduleDoc struct {
	Version    string           `json:"version"`
	System     string           `json:"system"`
	Module     int              `json:"module"`
	Verdict    jobs.Verdict     `json:"verdict"`
	Steps      int64            `json:"steps"`
	Events     int64            `json:"events"`
	ElapsedNS  int64            `json:"elapsed_ns"`
	Guarantees map[string]int64 `json:"guarantees,omitempty"`
}

// resultDoc is the persisted top-level result, keyed by the global
// fingerprint, serving `compose status` and `compose export`.
type resultDoc struct {
	Result
}

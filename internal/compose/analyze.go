package compose

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

// Metrics are the analyzer's monotonic counters, exposed by cmd/saserve
// as the saserve_compose_* families.
type Metrics struct {
	Runs                atomic.Int64 // compositional analyses started
	Compositional       atomic.Int64 // concluded from the per-module analyses
	Fallbacks           atomic.Int64 // fell back to the global product
	InterfaceViolations atomic.Int64 // fallbacks caused by a failed refinement check
	ModulesAnalyzed     atomic.Int64 // modules answered by a fresh engine run
	ModuleCacheHits     atomic.Int64 // modules served from compose docs or pool cache tiers
	GlobalRuns          atomic.Int64 // global-product runs (fallbacks and comparisons)
}

// MetricsSnapshot is a plain copy of the counters.
type MetricsSnapshot struct {
	Runs                int64 `json:"runs"`
	Compositional       int64 `json:"compositional"`
	Fallbacks           int64 `json:"fallbacks"`
	InterfaceViolations int64 `json:"interface_violations"`
	ModulesAnalyzed     int64 `json:"modules_analyzed"`
	ModuleCacheHits     int64 `json:"module_cache_hits"`
	GlobalRuns          int64 `json:"global_runs"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Runs:                m.Runs.Load(),
		Compositional:       m.Compositional.Load(),
		Fallbacks:           m.Fallbacks.Load(),
		InterfaceViolations: m.InterfaceViolations.Load(),
		ModulesAnalyzed:     m.ModulesAnalyzed.Load(),
		ModuleCacheHits:     m.ModuleCacheHits.Load(),
		GlobalRuns:          m.GlobalRuns.Load(),
	}
}

// Analyzer runs compositional analyses through a jobs pool. Module runs
// go through the pool like any other submission, so they share its cache
// tiers, budgets, backend and resilience machinery; on top of that the
// analyzer keeps its own per-module store documents (compose/module/v1,
// keyed by the module fingerprint) so an unchanged module is answered
// without even constructing a job.
type Analyzer struct {
	pool    *jobs.Pool
	st      *store.Store // nil: no compose-level persistence
	lg      *slog.Logger // nil: silent
	metrics Metrics
}

// New creates an analyzer over pool. st may be nil (no persistence of
// compose documents; pool cache tiers still apply), lg may be nil.
func New(pool *jobs.Pool, st *store.Store, lg *slog.Logger) *Analyzer {
	return &Analyzer{pool: pool, st: st, lg: lg}
}

// Metrics returns a snapshot of the analyzer's counters.
func (a *Analyzer) Metrics() MetricsSnapshot { return a.metrics.Snapshot() }

// Status looks up the persisted result of a previous Run of sys. It
// never computes anything.
func (a *Analyzer) Status(sys *config.System) (*Result, bool, error) {
	if a.st == nil {
		return nil, false, nil
	}
	if err := sys.Validate(); err != nil {
		return nil, false, err
	}
	var doc resultDoc
	ok, err := a.st.Get(storeKind, resultKeyPrefix+sys.Fingerprint(), &doc)
	if err != nil || !ok {
		return nil, false, err
	}
	if doc.Version != resultDocVersion {
		return nil, false, nil
	}
	return &doc.Result, true, nil
}

// Run analyzes sys compositionally: plan, per-module analyses (store
// documents first, the pool's tiers and engine behind them), interface
// refinement check. Structurally non-compositional systems, interface
// violations and locally unschedulable modules fall back to one global-
// product run with the reason flagged on the result. A non-nil error
// reports an invalid configuration or a failed engine run, never an
// unschedulable system.
func (a *Analyzer) Run(ctx context.Context, sys *config.System) (*Result, error) {
	start := time.Now()
	a.metrics.Runs.Add(1)

	tracer := a.pool.Tracer()
	var tc obs.TraceContext
	if tracer != nil {
		tc = obs.NewTrace()
	}

	ps := time.Now()
	plan, err := NewPlan(sys)
	if tracer != nil {
		tracer.Record(tc.Child(), tc.SpanID, obs.PhasePlan, "", ps.UnixNano(), time.Since(ps).Nanoseconds())
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Version:     resultDocVersion,
		System:      sys.Name,
		Fingerprint: plan.Fingerprint,
	}
	if tc.Valid() {
		res.Trace = tc.TraceString()
	}
	if a.lg != nil {
		a.lg.Info("compose run started",
			slog.String("system", sys.Name), slog.String("fingerprint", plan.Fingerprint),
			slog.Int("modules", len(plan.Modules)), slog.Int("contracts", len(plan.Contracts)))
	}

	if plan.Fallback != "" {
		return a.finishGlobal(ctx, plan, res, plan.Fallback, tc, start)
	}

	for _, mod := range plan.Modules {
		mr, err := a.analyzeModule(ctx, mod, tc)
		if err != nil {
			return nil, err
		}
		res.Modules = append(res.Modules, *mr)
		res.TotalSteps += mr.Steps
		if mr.CacheHit {
			res.ModulesCached++
			a.metrics.ModuleCacheHits.Add(1)
		} else {
			res.ModulesAnalyzed++
			a.metrics.ModulesAnalyzed.Add(1)
		}
	}

	// A compositional verdict exists only when every module is
	// schedulable under its assumed interfaces: "module M misses a
	// deadline when arrivals are latest" says nothing sound about the
	// real system, where arrivals may come earlier — the global product
	// answers instead.
	for i := range res.Modules {
		if res.Modules[i].Verdict != jobs.VerdictSchedulable {
			reason := fmt.Sprintf("module %d unschedulable under assumed interfaces", res.Modules[i].Module)
			return a.finishGlobal(ctx, plan, res, reason, tc, start)
		}
	}

	// Refinement check: every guaranteed output curve must refine the
	// assumption the receiving module was analyzed against.
	guarantees := make(map[int]map[string]int64, len(res.Modules))
	for i := range res.Modules {
		guarantees[res.Modules[i].Module] = res.Modules[i].Guarantees
	}
	cs := time.Now()
	violation := ""
	for i := range plan.Contracts {
		c := &plan.Contracts[i]
		g, ok := guarantees[c.SrcModule][c.SenderName]
		if !ok {
			// Schedulable module with no recorded curve (disk-restored
			// outcome): schedulable already bounds every response time by
			// its deadline, which is exactly the assumption.
			g = c.LatestOffset
		}
		cr := ContractResult{Contract: *c, Guarantee: g, Refined: g <= c.LatestOffset}
		res.Contracts = append(res.Contracts, cr)
		if !cr.Refined && violation == "" {
			violation = fmt.Sprintf("interface violation: %s guarantees %d > assumed %d on message %s",
				c.SenderName, g, c.LatestOffset, c.Name)
		}
	}
	if tracer != nil {
		tracer.Record(tc.Child(), tc.SpanID, obs.PhaseCompose, "refinement-check",
			cs.UnixNano(), time.Since(cs).Nanoseconds())
	}
	if violation != "" {
		a.metrics.InterfaceViolations.Add(1)
		return a.finishGlobal(ctx, plan, res, violation, tc, start)
	}

	res.Compositional = true
	res.Verdict = jobs.VerdictSchedulable
	res.ElapsedNS = time.Since(start).Nanoseconds()
	a.metrics.Compositional.Add(1)
	a.persistResult(res)
	if a.lg != nil {
		a.lg.Info("compose run concluded compositionally",
			slog.String("system", sys.Name), slog.String("verdict", string(res.Verdict)),
			slog.Int("analyzed", res.ModulesAnalyzed), slog.Int("cached", res.ModulesCached),
			slog.Int64("total_steps", res.TotalSteps))
	}
	return res, nil
}

// analyzeModule answers one module: compose document, then the pool
// (whose own tiers are memory → disk → engine).
func (a *Analyzer) analyzeModule(ctx context.Context, mod *Module, tc obs.TraceContext) (*ModuleResult, error) {
	mr := &ModuleResult{
		Module:      mod.ID,
		System:      mod.Sub.Name,
		Fingerprint: mod.Fingerprint,
		Partitions:  len(mod.Partitions),
		Tasks:       localTasks(mod),
		Stubs:       mod.Stubs,
		Pacer:       mod.Pacer,
	}
	ms := time.Now()
	tracer := a.pool.Tracer()
	defer func() {
		if tracer != nil {
			detail := "fresh"
			switch {
			case mr.DocHit:
				detail = "doc-hit"
			case mr.CacheHit:
				detail = "pool-hit"
			}
			tracer.Record(tc.Child(), tc.SpanID, obs.PhaseCompose,
				fmt.Sprintf("module=%d %s", mod.ID, detail), ms.UnixNano(), time.Since(ms).Nanoseconds())
		}
	}()

	if a.st != nil {
		var doc moduleDoc
		if ok, err := a.st.Get(storeKind, moduleKeyPrefix+mod.Fingerprint, &doc); err == nil && ok &&
			doc.Version == moduleDocVersion {
			mr.Verdict = doc.Verdict
			mr.CacheHit, mr.DocHit = true, true
			mr.Steps, mr.Events, mr.ElapsedNS = doc.Steps, doc.Events, doc.ElapsedNS
			mr.Guarantees = doc.Guarantees
			return mr, nil
		}
	}

	var jtc obs.TraceContext
	if tracer != nil {
		jtc = tc.Child()
	}
	jb, err := a.pool.SubmitTraced(jobs.ConfigRun{Sys: mod.Sub}, a.pool.DefaultBudget(), jtc)
	if err != nil {
		return nil, fmt.Errorf("compose: module %d: %w", mod.ID, err)
	}
	jb, err = a.pool.Wait(ctx, jb.ID)
	if err != nil {
		return nil, fmt.Errorf("compose: module %d: %w", mod.ID, err)
	}
	if jb.Status != jobs.StatusDone {
		return nil, fmt.Errorf("compose: module %d analysis %s: %w", mod.ID, jb.Status, jb.Err)
	}
	out := jb.Outcome
	mr.Verdict = out.Verdict
	mr.CacheHit, mr.DiskHit = jb.CacheHit, jb.DiskHit
	mr.Events = int64(out.Engine.Actions + out.Engine.Delays)
	mr.ElapsedNS = int64(out.Elapsed)
	if out.Telemetry != nil {
		mr.Steps = out.Telemetry.Counters.Steps
	}
	mr.Guarantees = a.guarantees(mod, out)

	if a.st != nil && !mr.CacheHit {
		doc := moduleDoc{
			Version: moduleDocVersion, System: mod.Sub.Name, Module: mod.ID,
			Verdict: mr.Verdict, Steps: mr.Steps, Events: mr.Events,
			ElapsedNS: mr.ElapsedNS, Guarantees: mr.Guarantees,
		}
		if err := a.st.Put(storeKind, moduleKeyPrefix+mod.Fingerprint, &doc); err != nil && a.lg != nil {
			a.lg.Warn("compose module document not persisted",
				slog.String("fingerprint", mod.Fingerprint), slog.String("error", err.Error()))
		}
	}
	return mr, nil
}

// guarantees extracts the measured worst response time of every outbound
// sender from the module's analysis, keyed by global task name. A
// disk-restored outcome carries no Analysis; nil then means "fall back
// to the assumption", which a schedulable verdict already licenses.
func (a *Analyzer) guarantees(mod *Module, out *jobs.Outcome) map[string]int64 {
	if out.Analysis == nil || len(mod.Outbound) == 0 {
		return nil
	}
	// Sub-partition index → worst response, for outbound sender tasks.
	type key struct{ part, task int }
	want := make(map[key]string) // sub ref → global task name
	for _, ci := range mod.Outbound {
		c := outboundContract(mod, ci)
		if c == nil {
			continue
		}
		want[key{mod.partMap[c.Sender.Part], c.Sender.Task}] = c.SenderName
	}
	worst := make(map[string]int64, len(want))
	for i := range out.Analysis.Jobs {
		js := &out.Analysis.Jobs[i]
		name, ok := want[key{js.Job.Part, js.Job.Task}]
		if !ok {
			continue
		}
		if rt := js.ResponseTime(); rt > worst[name] {
			worst[name] = rt
		}
	}
	return worst
}

// outboundContract resolves a contract index against the plan the module
// belongs to. Modules keep indices, not pointers, so the resolution goes
// through the contract list captured at plan time.
func outboundContract(mod *Module, ci int) *Contract {
	if ci < 0 || ci >= len(mod.plan.Contracts) {
		return nil
	}
	return &mod.plan.Contracts[ci]
}

// finishGlobal concludes res by one global-product run, flagging reason.
func (a *Analyzer) finishGlobal(ctx context.Context, plan *Plan, res *Result, reason string, tc obs.TraceContext, start time.Time) (*Result, error) {
	a.metrics.Fallbacks.Add(1)
	a.metrics.GlobalRuns.Add(1)
	res.Compositional = false
	res.Fallback = reason
	if a.lg != nil {
		a.lg.Info("compose run falling back to global product",
			slog.String("system", plan.Sys.Name), slog.String("reason", reason))
	}
	tracer := a.pool.Tracer()
	var jtc obs.TraceContext
	if tracer != nil {
		jtc = tc.Child()
	}
	gs := time.Now()
	jb, err := a.pool.SubmitTraced(jobs.ConfigRun{Sys: plan.Sys}, a.pool.DefaultBudget(), jtc)
	if err != nil {
		return nil, fmt.Errorf("compose: global product: %w", err)
	}
	jb, err = a.pool.Wait(ctx, jb.ID)
	if err != nil {
		return nil, fmt.Errorf("compose: global product: %w", err)
	}
	if jb.Status != jobs.StatusDone {
		return nil, fmt.Errorf("compose: global product analysis %s: %w", jb.Status, jb.Err)
	}
	res.Verdict = jb.Outcome.Verdict
	if jb.Outcome.Telemetry != nil {
		res.GlobalSteps = jb.Outcome.Telemetry.Counters.Steps
	}
	if tracer != nil {
		tracer.Record(tc.Child(), tc.SpanID, obs.PhaseCompose, "global-fallback",
			gs.UnixNano(), time.Since(gs).Nanoseconds())
	}
	res.ElapsedNS = time.Since(start).Nanoseconds()
	a.persistResult(res)
	return res, nil
}

// persistResult writes the top-level result document; failures are
// logged, not fatal (the result is still returned to the caller).
func (a *Analyzer) persistResult(res *Result) {
	if a.st == nil {
		return
	}
	if err := a.st.Put(storeKind, resultKeyPrefix+res.Fingerprint, &resultDoc{Result: *res}); err != nil && a.lg != nil {
		a.lg.Warn("compose result document not persisted",
			slog.String("fingerprint", res.Fingerprint), slog.String("error", err.Error()))
	}
}

// localTasks counts the module's own tasks (stubs and pacer excluded).
func localTasks(mod *Module) int {
	n := 0
	for _, pi := range mod.Partitions {
		n += len(mod.plan.Sys.Partitions[pi].Tasks)
	}
	return n
}

package xta

import "fmt"

// Parser builds the XTA AST from tokens, capturing expression text spans
// verbatim for the expr package.
type Parser struct {
	sc  *Scanner
	tok Token
}

// Parse parses a complete XTA model.
func Parse(src string) (*File, error) {
	p := &Parser{sc: NewScanner(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p.parseFile()
}

func (p *Parser) next() error {
	t, err := p.sc.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.Line, Col: p.tok.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, p.errf("expected %s, found %s %q", k, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	return t, p.next()
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for {
		switch p.tok.Kind {
		case EOF:
			if len(f.System) == 0 {
				return nil, p.errf("model has no system line")
			}
			return f, nil
		case KWCONST, KWINT, KWCLOCK, KWCHAN, KWBROADCAST, KWURGENT:
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			f.Decls = append(f.Decls, d)
		case KWPROCESS:
			proc, err := p.parseProcess()
			if err != nil {
				return nil, err
			}
			f.Processes = append(f.Processes, proc)
		case KWSYSTEM:
			if err := p.parseSystem(f); err != nil {
				return nil, err
			}
		case IDENT:
			inst, err := p.parseInst()
			if err != nil {
				return nil, err
			}
			f.Insts = append(f.Insts, inst)
		default:
			return nil, p.errf("unexpected %s %q at top level", p.tok.Kind, p.tok.Text)
		}
	}
}

// parseDecl handles const/int/clock/chan declarations (global and local).
func (p *Parser) parseDecl() (Decl, error) {
	d := Decl{Line: p.tok.Line, Col: p.tok.Col}
	switch p.tok.Kind {
	case KWCONST:
		if err := p.next(); err != nil {
			return d, err
		}
		if _, err := p.expect(KWINT); err != nil {
			return d, err
		}
		d.Kind = DeclConst
		name, err := p.expect(IDENT)
		if err != nil {
			return d, err
		}
		d.Name = name.Text
		if _, err := p.expect(ASSIGN); err != nil {
			return d, err
		}
		v, err := p.parseSignedInt()
		if err != nil {
			return d, err
		}
		d.Init, d.HasInit = v, true
		_, err = p.expect(SEMI)
		return d, err
	case KWINT:
		if err := p.next(); err != nil {
			return d, err
		}
		d.Kind = DeclInt
		if p.tok.Kind == LBRACKET { // int[lo,hi]
			if err := p.next(); err != nil {
				return d, err
			}
			lo, err := p.parseSignedInt()
			if err != nil {
				return d, err
			}
			if _, err := p.expect(COMMA); err != nil {
				return d, err
			}
			hi, err := p.parseSignedInt()
			if err != nil {
				return d, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return d, err
			}
			d.Min, d.Max, d.HasBounds = lo, hi, true
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return d, err
		}
		d.Name = name.Text
		if p.tok.Kind == LBRACKET { // array
			if err := p.next(); err != nil {
				return d, err
			}
			n, err := p.expect(INT)
			if err != nil {
				return d, err
			}
			if n.Val <= 0 {
				return d, p.errf("array %q must have positive length", d.Name)
			}
			d.Len = int(n.Val)
			if _, err := p.expect(RBRACKET); err != nil {
				return d, err
			}
		}
		if p.tok.Kind == ASSIGN {
			if err := p.next(); err != nil {
				return d, err
			}
			v, err := p.parseSignedInt()
			if err != nil {
				return d, err
			}
			d.Init, d.HasInit = v, true
		}
		_, err = p.expect(SEMI)
		return d, err
	case KWCLOCK:
		if err := p.next(); err != nil {
			return d, err
		}
		d.Kind = DeclClock
		name, err := p.expect(IDENT)
		if err != nil {
			return d, err
		}
		d.Name = name.Text
		_, err = p.expect(SEMI)
		return d, err
	case KWBROADCAST, KWURGENT, KWCHAN:
		for p.tok.Kind == KWBROADCAST || p.tok.Kind == KWURGENT {
			if p.tok.Kind == KWBROADCAST {
				d.Broadcast = true
			} else {
				d.Urgent = true
			}
			if err := p.next(); err != nil {
				return d, err
			}
		}
		if _, err := p.expect(KWCHAN); err != nil {
			return d, err
		}
		d.Kind = DeclChan
		name, err := p.expect(IDENT)
		if err != nil {
			return d, err
		}
		d.Name = name.Text
		_, err = p.expect(SEMI)
		return d, err
	}
	return d, p.errf("expected declaration")
}

func (p *Parser) parseSignedInt() (int64, error) {
	neg := false
	if p.tok.Kind == MINUS {
		neg = true
		if err := p.next(); err != nil {
			return 0, err
		}
	}
	if p.tok.Kind != INT {
		return 0, p.errf("expected integer, found %s %q", p.tok.Kind, p.tok.Text)
	}
	v := p.tok.Val
	if err := p.next(); err != nil {
		return 0, err
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *Parser) parseProcess() (*Process, error) {
	proc := &Process{Line: p.tok.Line, Col: p.tok.Col, Stopwatch: map[string][]string{}}
	if err := p.next(); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	proc.Name = name.Text
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for p.tok.Kind != RPAREN {
		if _, err := p.expect(KWCONST); err != nil {
			return nil, err
		}
		if _, err := p.expect(KWINT); err != nil {
			return nil, err
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		proc.Params = append(proc.Params, Param{Name: pn.Text})
		if p.tok.Kind == COMMA {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.next(); err != nil { // consume ')'
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	for p.tok.Kind != RBRACE {
		switch p.tok.Kind {
		case KWCONST, KWINT, KWCLOCK:
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			proc.Locals = append(proc.Locals, d)
		case KWCHAN, KWBROADCAST, KWURGENT:
			return nil, p.errf("channels must be declared globally")
		case KWSTATE:
			if err := p.parseStates(proc); err != nil {
				return nil, err
			}
		case KWCOMMIT:
			if err := p.next(); err != nil {
				return nil, err
			}
			for {
				n, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				proc.Committed = append(proc.Committed, n.Text)
				if p.tok.Kind != COMMA {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		case KWSTOPWATCH:
			if err := p.parseStopwatch(proc); err != nil {
				return nil, err
			}
		case KWINIT:
			if err := p.next(); err != nil {
				return nil, err
			}
			n, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if proc.Init != "" {
				return nil, p.errf("init declared twice")
			}
			proc.Init = n.Text
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		case KWTRANS:
			if err := p.parseTrans(proc); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected %s %q in process body", p.tok.Kind, p.tok.Text)
		}
	}
	return proc, p.next() // consume '}'
}

func (p *Parser) parseStates(proc *Process) error {
	if err := p.next(); err != nil {
		return err
	}
	for {
		n, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		st := State{Name: n.Text, Line: n.Line, Col: n.Col}
		if p.tok.Kind == LBRACE {
			// Invariant: capture raw text up to the matching '}'.
			inv, err := p.sc.CaptureUntil('}')
			if err != nil {
				return err
			}
			// The parser's lookahead token was '{'; re-sync past '}'.
			if err := p.next(); err != nil { // now at '}'... consume it
				return err
			}
			if p.tok.Kind != RBRACE {
				return p.errf("internal: expected '}' after invariant")
			}
			if err := p.next(); err != nil {
				return err
			}
			st.Invariant = inv
		}
		proc.States = append(proc.States, st)
		if p.tok.Kind == COMMA {
			if err := p.next(); err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err := p.expect(SEMI)
	return err
}

func (p *Parser) parseStopwatch(proc *Process) error {
	if err := p.next(); err != nil {
		return err
	}
	clock, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if _, err := p.expect(KWIN); err != nil {
		return err
	}
	for {
		st, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		proc.Stopwatch[clock.Text] = append(proc.Stopwatch[clock.Text], st.Text)
		if p.tok.Kind != COMMA {
			break
		}
		if err := p.next(); err != nil {
			return err
		}
	}
	_, err = p.expect(SEMI)
	return err
}

func (p *Parser) parseTrans(proc *Process) error {
	if err := p.next(); err != nil {
		return err
	}
	for {
		src, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(ARROW); err != nil {
			return err
		}
		dst, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		tr := Trans{Src: src.Text, Dst: dst.Text, Line: src.Line, Col: src.Col}
		if _, err := p.expect(LBRACE); err != nil {
			return err
		}
		for p.tok.Kind != RBRACE {
			switch p.tok.Kind {
			case KWGUARD:
				if tr.Guard != "" {
					return p.errf("duplicate guard")
				}
				g, err := p.sc.CaptureUntil(';')
				if err != nil {
					return err
				}
				tr.Guard = g
				if err := p.next(); err != nil { // lookahead was 'guard'; now ';'
					return err
				}
				if p.tok.Kind != SEMI {
					return p.errf("internal: expected ';' after guard")
				}
				if err := p.next(); err != nil {
					return err
				}
			case KWSYNC:
				if tr.SyncChan != "" {
					return p.errf("duplicate sync")
				}
				if err := p.next(); err != nil {
					return err
				}
				ch, err := p.expect(IDENT)
				if err != nil {
					return err
				}
				tr.SyncChan = ch.Text
				switch p.tok.Kind {
				case BANG:
					tr.SyncSend = true
				case QUESTION:
					tr.SyncSend = false
				default:
					return p.errf("expected '!' or '?' after channel name")
				}
				if err := p.next(); err != nil {
					return err
				}
				if _, err := p.expect(SEMI); err != nil {
					return err
				}
			case KWASSIGN:
				if tr.Assign != "" {
					return p.errf("duplicate assign")
				}
				a, err := p.sc.CaptureUntil(';')
				if err != nil {
					return err
				}
				tr.Assign = a
				if err := p.next(); err != nil {
					return err
				}
				if p.tok.Kind != SEMI {
					return p.errf("internal: expected ';' after assign")
				}
				if err := p.next(); err != nil {
					return err
				}
			default:
				return p.errf("unexpected %s %q in transition", p.tok.Kind, p.tok.Text)
			}
		}
		if err := p.next(); err != nil { // consume '}'
			return err
		}
		proc.Trans = append(proc.Trans, tr)
		if p.tok.Kind == COMMA {
			if err := p.next(); err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err := p.expect(SEMI)
	return err
}

// parseInst handles "Name = Template(args);".
func (p *Parser) parseInst() (*Inst, error) {
	name := p.tok
	if err := p.next(); err != nil {
		return nil, err
	}
	inst := &Inst{Name: name.Text, Line: name.Line, Col: name.Col}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	tmpl, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	inst.Template = tmpl.Text
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	inst.Args = args
	_, err = p.expect(SEMI)
	return inst, err
}

// parseArgs parses "(arg, arg, ...)" where each argument is an integer
// literal (possibly negated) or the name of a declared constant.
func (p *Parser) parseArgs() ([]string, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []string
	if p.tok.Kind == RPAREN {
		return args, p.next()
	}
	for {
		switch p.tok.Kind {
		case INT, MINUS:
			v, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			args = append(args, fmt.Sprintf("%d", v))
		case IDENT:
			args = append(args, p.tok.Text)
			if err := p.next(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected integer or constant name, found %s %q", p.tok.Kind, p.tok.Text)
		}
		if p.tok.Kind == COMMA {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return args, nil
	}
}

// parseSystem parses the system line. Commas separate items within a
// priority group; '<' starts the next, higher-priority group (UPPAAL's
// system-line process priorities).
func (p *Parser) parseSystem(f *File) error {
	if err := p.next(); err != nil {
		return err
	}
	group := 0
	for {
		n, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		item := SysItem{Ref: n.Text, Priority: group, Line: n.Line, Col: n.Col}
		if p.tok.Kind == LPAREN {
			item.Direct = true
			args, err := p.parseArgs()
			if err != nil {
				return err
			}
			item.Args = args
		}
		f.System = append(f.System, item)
		switch p.tok.Kind {
		case COMMA:
			if err := p.next(); err != nil {
				return err
			}
			continue
		case LT:
			group++
			if err := p.next(); err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err := p.expect(SEMI)
	return err
}

package xta

import (
	"strings"
	"testing"

	"stopwatchsim/internal/nsa"
)

const pingPongSrc = `
// Two processes synchronizing over a channel at a parameterized time.
const int DELAY = 7;
int done = 0;
chan ping;

process Sender(const int at) {
    clock t;
    state Wait { t <= at }, Sent;
    init Wait;
    trans Wait -> Sent { guard t == at; sync ping!; };
}

process Receiver() {
    state Idle, Got;
    init Idle;
    trans Idle -> Got { sync ping?; assign done := done + 1; };
}

system Sender(DELAY), Receiver();
`

func TestCompilePingPong(t *testing.T) {
	m, err := Compile(pingPongSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Net.Automata) != 2 {
		t.Fatalf("automata = %d", len(m.Net.Automata))
	}
	if m.Instances[0] != "Sender1" || m.Instances[1] != "Receiver1" {
		t.Errorf("instances = %v", m.Instances)
	}
	tr, res, err := nsa.Simulate(m.Net, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Time != 7 {
		t.Fatalf("events = %+v", tr.Events)
	}
	if !res.Quiescent {
		t.Error("expected quiescence")
	}
	st := nsa.NewEngine(m.Net, nsa.Options{Horizon: 100})
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
	if got := st.State().Vars[m.Vars["done"]]; got != 1 {
		t.Errorf("done = %d", got)
	}
}

const stopwatchSrc = `
int snap = -100;

process Stopper() {
    clock w;
    clock ref;
    state P1 { ref <= 3 }, P2 { ref <= 7 }, End;
    stopwatch w in P2, End;
    init P1;
    trans
        P1 -> P2 { guard ref == 3; },
        P2 -> End { guard ref == 7; assign snap := w; };
}

system Stopper();
`

func TestCompileStopwatch(t *testing.T) {
	m, err := Compile(stopwatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 20})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.State().Vars[m.Vars["snap"]]; got != 3 {
		t.Errorf("snap = %d, want 3 (w stopped during [3,7])", got)
	}
	if _, ok := m.Clocks["Stopper1.w"]; !ok {
		t.Error("qualified clock name missing")
	}
}

const committedBroadcastSrc = `
int order = 0;
broadcast chan bang;

process Shout() {
    state S0, S1;
    commit S0;
    init S0;
    trans S0 -> S1 { sync bang!; };
}

process Hear(const int id) {
    state H0, H1;
    init H0;
    trans H0 -> H1 { sync bang?; assign order := order * 10 + id; };
}

system Shout(), Hear(1), Hear(2);
`

func TestCompileBroadcastAndCommit(t *testing.T) {
	m, err := Compile(committedBroadcastSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 5})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Broadcast reaches both hearers in one transition at time 0.
	if got := eng.State().Vars[m.Vars["order"]]; got != 12 {
		t.Errorf("order = %d, want 12", got)
	}
	if res.Time != 0 {
		t.Errorf("time = %d", res.Time)
	}
}

const namedInstSrc = `
const int N = 4;
int total = 0;
urgent chan go;

process Counter(const int inc) {
    int mine = 0;
    state A, B;
    init A;
    trans A -> B { sync go?; assign mine := inc, total := total + inc; };
}

process Kick() {
    state K0, K1, K2;
    init K0;
    trans K0 -> K1 { sync go!; }, K1 -> K2 { sync go!; };
}

C1 = Counter(N);
C2 = Counter(10);
system Kick(), C1, C2;
`

func TestCompileNamedInstancesAndLocals(t *testing.T) {
	m, err := Compile(namedInstSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Instances[1] != "C1" || m.Instances[2] != "C2" {
		t.Errorf("instances = %v", m.Instances)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 10})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := eng.State()
	if got := s.Vars[m.Vars["total"]]; got != 14 {
		t.Errorf("total = %d, want 14", got)
	}
	if got := s.Vars[m.Vars["C1.mine"]]; got != 4 {
		t.Errorf("C1.mine = %d, want 4", got)
	}
	if got := s.Vars[m.Vars["C2.mine"]]; got != 10 {
		t.Errorf("C2.mine = %d, want 10", got)
	}
}

const arrayBoundedSrc = `
int[0,3] level = 1;
int hist[4] = 0;

process Bump() {
    state A { }, B;
    commit A;
    init A;
    trans A -> B { assign hist[level] := 9, level := level + 1; };
}

system Bump();
`

func TestCompileArraysAndBounds(t *testing.T) {
	m, err := Compile(arrayBoundedSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 5})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := eng.State()
	base := int(m.Vars["hist"])
	if s.Vars[base+1] != 9 {
		t.Errorf("hist[1] = %d", s.Vars[base+1])
	}
	if s.Vars[m.Vars["level"]] != 2 {
		t.Errorf("level = %d", s.Vars[m.Vars["level"]])
	}
}

func TestCompileComments(t *testing.T) {
	src := "/* block\ncomment */\n" + pingPongSrc + "// trailing comment\n"
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, sub string }{
		{"no system", "int x;", "no system line"},
		{"bad char", "int x @;", "unexpected character"},
		{"bad decl", "process P() { chan c; }", "declared globally"},
		{"unterminated comment", "/* nope", "unterminated"},
		{"missing semi", "int x = 1", "expected ';'"},
		{"bad array len", "int a[0]; system X;", "positive length"},
		{"bad sync", "process P() { state A; init A; trans A -> A { sync c; }; } system P();", "'!' or '?'"},
		{"dup guard", "process P() { state A; init A; trans A -> A { guard 1 > 0; guard 2 > 0; }; } system P();", "duplicate guard"},
		{"double init", "process P() { state A, B; init A; init B; } system P();", "init declared twice"},
		{"unterminated args", "process P(const int a) { state A; init A; } system P(1", "expected ')'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.sub)
		}
	}
}

func TestElaborateErrors(t *testing.T) {
	cases := []struct{ name, src, sub string }{
		{"unknown process", "system Nope;", "unknown instance"},
		{"unknown direct", "system Nope();", "unknown process"},
		{"arg count", "process P(const int a) { state A; init A; } system P();", "takes 1 parameters"},
		{"bad arg", "process P(const int a) { state A; init A; } system P(zz);", "not an integer or constant"},
		{"unknown chan", "process P() { state A; init A; trans A -> A { sync zz!; }; } system P();", "unknown channel"},
		{"unknown state", "process P() { state A; init A; trans A -> B { }; } system P();", "unknown state"},
		{"bad guard", "process P() { state A; init A; trans A -> A { guard zz > 0; }; } system P();", "undefined name"},
		{"bad invariant", "process P() { clock t; state A { t >= 3 }; init A; } system P();", "upper bound"},
		{"no init", "process P() { state A; } system P();", "no init state"},
		{"bad stopwatch clock", "process P() { state A; stopwatch z in A; init A; } system P();", "not a local clock"},
		{"bad stopwatch state", "process P() { clock t; state A; stopwatch t in Z; init A; } system P();", "unknown state"},
		{"bad commit", "process P() { state A; commit Z; init A; } system P();", "unknown state"},
		{"dup process", "process P() { state A; init A; } process P() { state A; init A; } system P();", "duplicate process"},
		{"dup instance", "process P() { state A; init A; } X = P(); X = P(); system X;", "duplicate instance"},
		{"bad init ref", "process P() { state A; init Z; } system P();", "unknown state"},
		{"bounded array", "int[0,1] a[3]; process P() { state A; init A; } system P();", "bounded arrays"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.sub)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Compile("int x;\nint y @;\nsystem P;")
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Line != 2 {
		t.Errorf("line = %d, want 2", e.Line)
	}
}

const prioritySrc = `
int order = 0;

process Mark(const int id) {
    state A, B;
    commit A;
    init A;
    trans A -> B { assign order := order * 10 + id; };
}

system Mark(1), Mark(2) < Mark(3);
`

// TestSystemPriorities: the '<' groups on the system line map to process
// priorities — the higher group's transition fires first even though its
// automaton comes later in declaration order.
func TestSystemPriorities(t *testing.T) {
	m, err := Compile(prioritySrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Net.Automata[0].Priority != 0 || m.Net.Automata[2].Priority != 1 {
		t.Fatalf("priorities = %d,%d,%d", m.Net.Automata[0].Priority,
			m.Net.Automata[1].Priority, m.Net.Automata[2].Priority)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 5})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eng.State().Vars[m.Vars["order"]]; got != 312 {
		t.Errorf("order = %d, want 312 (Mark(3) first)", got)
	}
}

package xta

import (
	"fmt"
	"strconv"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/sa"
)

// Model is an elaborated XTA file: a ready-to-interpret network plus name
// maps for tests and tooling.
type Model struct {
	Net *nsa.Network
	// Chans maps channel names to their IDs.
	Chans map[string]sa.ChanID
	// Vars maps global variable names (and instance-qualified locals,
	// "Inst.x") to their indices.
	Vars map[string]sa.VarID
	// Clocks likewise for clocks.
	Clocks map[string]sa.ClockID
	// Instances lists the instantiated automata in system order.
	Instances []string
}

// instScope resolves identifiers inside one instance: parameters and locals
// shadow globals.
type instScope struct {
	params map[string]int64
	local  expr.MapScope
	global expr.Scope
}

func (s *instScope) Lookup(name string) (expr.Symbol, bool) {
	if v, ok := s.params[name]; ok {
		return expr.Symbol{Kind: expr.SymConst, Const: v}, true
	}
	if sym, ok := s.local.Lookup(name); ok {
		return sym, true
	}
	return s.global.Lookup(name)
}

// Elaborate compiles a parsed file into a network.
func Elaborate(f *File) (*Model, error) {
	m := &Model{
		Chans:  make(map[string]sa.ChanID),
		Vars:   make(map[string]sa.VarID),
		Clocks: make(map[string]sa.ClockID),
	}
	nb := nsa.NewBuilder()

	// Global declarations.
	procNames := make(map[string]*Process)
	for _, proc := range f.Processes {
		if procNames[proc.Name] != nil {
			return nil, &Error{Line: proc.Line, Col: proc.Col, Msg: fmt.Sprintf("duplicate process %q", proc.Name)}
		}
		procNames[proc.Name] = proc
	}
	consts := make(map[string]int64)
	for _, d := range f.Decls {
		switch d.Kind {
		case DeclConst:
			nb.Const(d.Name, d.Init)
			consts[d.Name] = d.Init
		case DeclInt:
			if err := declareInt(nb, m, "", d); err != nil {
				return nil, err
			}
		case DeclClock:
			m.Clocks[d.Name] = nb.Clock(d.Name)
		case DeclChan:
			var id sa.ChanID
			switch {
			case d.Broadcast && d.Urgent:
				id = nb.UrgentBroadcastChan(d.Name)
			case d.Broadcast:
				id = nb.BroadcastChan(d.Name)
			case d.Urgent:
				id = nb.UrgentChan(d.Name)
			default:
				id = nb.Chan(d.Name)
			}
			m.Chans[d.Name] = id
		}
	}

	// Resolve the system line into (instance name, template, args).
	type instantiation struct {
		name      string
		proc      *Process
		args      []int64
		prio      int
		line, col int
	}
	namedInsts := make(map[string]*Inst)
	for _, in := range f.Insts {
		if namedInsts[in.Name] != nil {
			return nil, &Error{Line: in.Line, Col: in.Col, Msg: fmt.Sprintf("duplicate instance %q", in.Name)}
		}
		namedInsts[in.Name] = in
	}
	evalArg := func(raw string, line, col int) (int64, error) {
		if v, err := strconv.ParseInt(raw, 10, 64); err == nil {
			return v, nil
		}
		if v, ok := consts[raw]; ok {
			return v, nil
		}
		return 0, &Error{Line: line, Col: col, Msg: fmt.Sprintf("argument %q is not an integer or constant", raw)}
	}
	var todo []instantiation
	ordinal := make(map[string]int)
	for _, item := range f.System {
		switch {
		case item.Direct:
			proc := procNames[item.Ref]
			if proc == nil {
				return nil, &Error{Line: item.Line, Col: item.Col, Msg: fmt.Sprintf("unknown process %q", item.Ref)}
			}
			ordinal[item.Ref]++
			inst := instantiation{
				name: fmt.Sprintf("%s%d", item.Ref, ordinal[item.Ref]),
				proc: proc, prio: item.Priority, line: item.Line, col: item.Col,
			}
			for _, a := range item.Args {
				v, err := evalArg(a, item.Line, item.Col)
				if err != nil {
					return nil, err
				}
				inst.args = append(inst.args, v)
			}
			todo = append(todo, inst)
		default:
			named := namedInsts[item.Ref]
			if named == nil {
				return nil, &Error{Line: item.Line, Col: item.Col, Msg: fmt.Sprintf("unknown instance %q", item.Ref)}
			}
			proc := procNames[named.Template]
			if proc == nil {
				return nil, &Error{Line: named.Line, Col: named.Col, Msg: fmt.Sprintf("unknown process %q", named.Template)}
			}
			inst := instantiation{name: named.Name, proc: proc, prio: item.Priority, line: named.Line, col: named.Col}
			for _, a := range named.Args {
				v, err := evalArg(a, named.Line, named.Col)
				if err != nil {
					return nil, err
				}
				inst.args = append(inst.args, v)
			}
			todo = append(todo, inst)
		}
	}

	for _, inst := range todo {
		if err := elaborateInstance(nb, m, inst.name, inst.proc, inst.args, inst.prio, inst.line, inst.col); err != nil {
			return nil, err
		}
		m.Instances = append(m.Instances, inst.name)
	}

	net, err := nb.Build()
	if err != nil {
		return nil, err
	}
	m.Net = net
	return m, nil
}

func declareInt(nb *nsa.Builder, m *Model, prefix string, d Decl) error {
	name := prefix + d.Name
	switch {
	case d.Len > 0:
		if d.HasBounds {
			return &Error{Line: d.Line, Col: d.Col, Msg: "bounded arrays are not supported"}
		}
		m.Vars[name] = nb.VarArray(name, d.Len, d.Init)
	case d.HasBounds:
		m.Vars[name] = nb.BoundedVar(name, d.Init, d.Min, d.Max)
	default:
		m.Vars[name] = nb.Var(name, d.Init)
	}
	return nil
}

func elaborateInstance(nb *nsa.Builder, m *Model, name string, proc *Process, args []int64, prio int, line, col int) error {
	fail := func(l, c int, format string, a ...any) error {
		return &Error{Line: l, Col: c, Msg: fmt.Sprintf("instance %s: %s", name, fmt.Sprintf(format, a...))}
	}
	if len(args) != len(proc.Params) {
		return fail(line, col, "process %s takes %d parameters, got %d", proc.Name, len(proc.Params), len(args))
	}
	scope := &instScope{
		params: make(map[string]int64, len(proc.Params)),
		local:  expr.MapScope{},
		global: nb.Scope(),
	}
	for i, p := range proc.Params {
		scope.params[p.Name] = args[i]
	}

	// Instance-local declarations get globally unique prefixed names but
	// resolve unqualified inside the instance.
	localClocks := make(map[string]sa.ClockID)
	for _, d := range proc.Locals {
		qualified := name + "." + d.Name
		switch d.Kind {
		case DeclConst:
			scope.local[d.Name] = expr.Symbol{Kind: expr.SymConst, Const: d.Init}
		case DeclClock:
			id := nb.Clock(qualified)
			m.Clocks[qualified] = id
			localClocks[d.Name] = id
			scope.local[d.Name] = expr.Symbol{Kind: expr.SymClock, Index: int(id)}
		case DeclInt:
			if err := declareInt(nb, m, name+".", d); err != nil {
				return err
			}
			scope.local[d.Name] = expr.Symbol{
				Kind: expr.SymVar, Index: int(m.Vars[qualified]), Len: d.Len,
			}
		}
	}

	// Stopwatch map: state name -> stopped clock IDs.
	stoppedIn := make(map[string][]sa.ClockID)
	for clock, states := range proc.Stopwatch {
		id, ok := localClocks[clock]
		if !ok {
			return fail(proc.Line, proc.Col, "stopwatch %q is not a local clock", clock)
		}
		for _, st := range states {
			stoppedIn[st] = append(stoppedIn[st], id)
		}
	}
	committed := make(map[string]bool)
	for _, st := range proc.Committed {
		committed[st] = true
	}

	b := sa.NewBuilder(name)
	b.Priority(prio)
	for _, id := range localClocks {
		b.OwnClock(id)
	}
	locs := make(map[string]sa.LocID, len(proc.States))
	for _, st := range proc.States {
		var opts []sa.LocOption
		if committed[st.Name] {
			opts = append(opts, sa.Committed())
		}
		if st.Invariant != "" {
			inv, err := expr.ParseInvariant(st.Invariant, scope)
			if err != nil {
				return fail(st.Line, st.Col, "invariant of %s: %v", st.Name, err)
			}
			opts = append(opts, sa.WithInvariant(inv))
		}
		if stopped := stoppedIn[st.Name]; len(stopped) > 0 {
			opts = append(opts, sa.Stops(stopped...))
		}
		locs[st.Name] = b.Loc(st.Name, opts...)
	}
	for st := range stoppedIn {
		if _, ok := locs[st]; !ok {
			return fail(proc.Line, proc.Col, "stopwatch references unknown state %q", st)
		}
	}
	for _, st := range proc.Committed {
		if _, ok := locs[st]; !ok {
			return fail(proc.Line, proc.Col, "commit references unknown state %q", st)
		}
	}
	if proc.Init == "" {
		return fail(proc.Line, proc.Col, "process %s has no init state", proc.Name)
	}
	initLoc, ok := locs[proc.Init]
	if !ok {
		return fail(proc.Line, proc.Col, "init references unknown state %q", proc.Init)
	}
	b.Init(initLoc)

	for _, tr := range proc.Trans {
		src, ok := locs[tr.Src]
		if !ok {
			return fail(tr.Line, tr.Col, "unknown state %q", tr.Src)
		}
		dst, ok := locs[tr.Dst]
		if !ok {
			return fail(tr.Line, tr.Col, "unknown state %q", tr.Dst)
		}
		var guard sa.Guard
		if tr.Guard != "" {
			n, err := expr.Parse(tr.Guard)
			if err != nil {
				return fail(tr.Line, tr.Col, "guard: %v", err)
			}
			r, err := expr.Resolve(n, scope, expr.TypeBool)
			if err != nil {
				return fail(tr.Line, tr.Col, "guard: %v", err)
			}
			guard = sa.NewExprGuard(r)
		}
		sync := sa.None
		if tr.SyncChan != "" {
			ch, ok := m.Chans[tr.SyncChan]
			if !ok {
				return fail(tr.Line, tr.Col, "unknown channel %q", tr.SyncChan)
			}
			dir := sa.Recv
			if tr.SyncSend {
				dir = sa.Send
			}
			sync = sa.Sync{Chan: ch, Dir: dir}
		}
		var update sa.Update
		if tr.Assign != "" {
			stmts, err := expr.ParseUpdate(tr.Assign)
			if err != nil {
				return fail(tr.Line, tr.Col, "assign: %v", err)
			}
			resolved, err := expr.ResolveUpdate(stmts, scope)
			if err != nil {
				return fail(tr.Line, tr.Col, "assign: %v", err)
			}
			update = &sa.ExprUpdate{Stmts: resolved}
		}
		b.Edge(src, dst, guard, sync, update)
	}

	a, err := b.Build()
	if err != nil {
		return fail(proc.Line, proc.Col, "%v", err)
	}
	nb.Add(a)
	return nil
}

// Compile parses and elaborates XTA source in one step.
func Compile(src string) (*Model, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Elaborate(f)
}

package xta

import "testing"

// FuzzCompile asserts the XTA front end never panics: any input either
// compiles into a network or is rejected with a parse or elaboration
// error. The seeds cover the grammar's surface — declarations, templates,
// parameters, urgency, broadcast, committed locations — plus malformed
// fragments that must fail cleanly.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		`
const int PERIOD = 3;
int count = 0;
chan tick;

process Emitter() {
    clock t;
    state W { t <= PERIOD };
    init W;
    trans W -> W { guard t == PERIOD; sync tick!; assign t := 0; };
}

process Counter() {
    state C;
    init C;
    trans C -> C { sync tick?; assign count := count + 1; };
}

system Emitter(), Counter();
`,
		`
int x[3];
urgent chan go;
broadcast chan all;

process P(const int id) {
    state A, B;
    commit A;
    init A;
    trans A -> B { sync go!; assign x[id] := id; };
    trans B -> A { sync all?; };
}

system P(0), P(1);
`,
		"process P() { state A; init A; }\nsystem P();",
		"process P() { state A; init A; }\nsystem Q();", // unknown template
		"int x = ;",
		"process P( {",
		"chan chan;",
		"system ;",
		"",
		"\x00",
		"process P() { clock c; state A { c <= }; init A; } system P();",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Elaborate(file); err != nil {
			return
		}
	})
}

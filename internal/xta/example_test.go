package xta_test

import (
	"fmt"
	"log"

	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/xta"
)

// Example compiles a small XTA model and interprets it: a periodic emitter
// synchronizing with a counter over a channel.
func Example() {
	const src = `
const int PERIOD = 3;
int count = 0;
chan tick;

process Emitter() {
    clock t;
    state W { t <= PERIOD };
    init W;
    trans W -> W { guard t == PERIOD; sync tick!; assign t := 0; };
}

process Counter() {
    state C;
    init C;
    trans C -> C { sync tick?; assign count := count + 1; };
}

system Emitter(), Counter();
`
	m, err := xta.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: 10})
	if _, err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticks: %d\n", eng.State().Vars[m.Vars["count"]])
	// Output:
	// ticks: 3
}

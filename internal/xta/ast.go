package xta

// File is a parsed XTA model.
type File struct {
	Decls     []Decl
	Processes []*Process
	Insts     []*Inst   // named instantiations: Name = Template(args);
	System    []SysItem // the system line
}

// DeclKind enumerates global/local declaration kinds.
type DeclKind uint8

// Declaration kinds.
const (
	DeclConst DeclKind = iota
	DeclInt
	DeclClock
	DeclChan
)

// Decl is a declaration. For DeclInt: Len > 0 means an array, HasBounds
// selects a domain [Min,Max]. For DeclChan: Broadcast/Urgent qualify it.
// Init is the initial value (consts require it; ints default to 0).
type Decl struct {
	Kind      DeclKind
	Name      string
	Init      int64
	HasInit   bool
	Min, Max  int64
	HasBounds bool
	Len       int // array length, 0 for scalars
	Broadcast bool
	Urgent    bool
	Line, Col int
}

// Param is a process template parameter (a compile-time integer constant).
type Param struct {
	Name string
}

// State is a declared location with an optional raw invariant expression.
type State struct {
	Name      string
	Invariant string // raw expression text, "" if none
	Line, Col int
}

// Trans is one edge of a template.
type Trans struct {
	Src, Dst  string
	Guard     string // raw expression text, "" if none
	SyncChan  string // "" for internal transitions
	SyncSend  bool   // true for ch!, false for ch?
	Assign    string // raw statement-list text, "" if none
	Line, Col int
}

// Process is a parametric automaton template.
type Process struct {
	Name      string
	Params    []Param
	Locals    []Decl // clocks, ints and consts
	States    []State
	Committed []string            // state names marked commit
	Stopwatch map[string][]string // clock name -> state names it is stopped in
	Init      string
	Trans     []Trans
	Line, Col int
}

// Inst is a named instantiation: Name = Template(args).
type Inst struct {
	Name      string
	Template  string
	Args      []string // raw constant expressions
	Line, Col int
}

// SysItem is one entry on the system line: either a named instance
// reference or a direct Template(args) instantiation. Priority is the
// item's process-priority group: "system A, B < C;" gives A and B group 0
// and C group 1 (higher fires first at simultaneous instants), following
// UPPAAL's system-line priorities.
type SysItem struct {
	Ref       string   // named instance, or template name when Direct
	Direct    bool     // true for Template(args) inline
	Args      []string // raw constant expressions for Direct items
	Priority  int
	Line, Col int
}

// Package xta implements a textual automata language in the style of
// UPPAAL's XTA format, extended with a stopwatch declaration. It plays the
// role of the paper's "translator from UPPAAL to C++ automata
// representation": models written in the language are compiled into
// sa/nsa structures and interpreted by the same engine as the built-in
// component library.
//
// A model consists of global declarations, parametric process templates and
// a system instantiation line:
//
//	const int N = 2;
//	int x = 0;
//	int[0,10] bounded = 1;
//	int arr[3] = 0;
//	clock g;
//	chan go; broadcast chan bang; urgent chan now;
//
//	process Worker(const int id, const int limit) {
//	    clock t;
//	    int count = 0;
//	    state Idle { t <= limit }, Run, Done;
//	    commit Run;
//	    stopwatch t in Done;
//	    init Idle;
//	    trans
//	        Idle -> Run  { guard t == limit; sync go?; assign count := count + 1; },
//	        Run  -> Done { sync bang!; assign x := x + id; };
//	}
//
//	W1 = Worker(1, 5);
//	system W1, Worker(2, 7);
//
// Guards, invariants and assignments use the expression language of package
// expr. Process parameters are compile-time integer constants substituted
// at instantiation.
package xta

import "fmt"

// Kind enumerates scanner token kinds.
type Kind uint8

// Token kinds. Keywords get their own kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	ASSIGN   // =
	ARROW    // ->
	BANG     // !
	QUESTION // ?
	MINUS    // - (only in constant positions; expressions are captured raw)
	LT       // < (priority separator on the system line)
	// keywords
	KWCONST
	KWINT
	KWCLOCK
	KWCHAN
	KWBROADCAST
	KWURGENT
	KWPROCESS
	KWSTATE
	KWCOMMIT
	KWINIT
	KWTRANS
	KWGUARD
	KWSYNC
	KWASSIGN
	KWSYSTEM
	KWSTOPWATCH
	KWIN
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "integer",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LBRACKET: "'['", RBRACKET: "']'", COMMA: "','", SEMI: "';'",
	ASSIGN: "'='", ARROW: "'->'", BANG: "'!'", QUESTION: "'?'", MINUS: "'-'", LT: "'<'",
	KWCONST: "'const'", KWINT: "'int'", KWCLOCK: "'clock'", KWCHAN: "'chan'",
	KWBROADCAST: "'broadcast'", KWURGENT: "'urgent'", KWPROCESS: "'process'",
	KWSTATE: "'state'", KWCOMMIT: "'commit'", KWINIT: "'init'", KWTRANS: "'trans'",
	KWGUARD: "'guard'", KWSYNC: "'sync'", KWASSIGN: "'assign'", KWSYSTEM: "'system'",
	KWSTOPWATCH: "'stopwatch'", KWIN: "'in'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"const": KWCONST, "int": KWINT, "clock": KWCLOCK, "chan": KWCHAN,
	"broadcast": KWBROADCAST, "urgent": KWURGENT, "process": KWPROCESS,
	"state": KWSTATE, "commit": KWCOMMIT, "init": KWINIT, "trans": KWTRANS,
	"guard": KWGUARD, "sync": KWSYNC, "assign": KWASSIGN, "system": KWSYSTEM,
	"stopwatch": KWSTOPWATCH, "in": KWIN,
}

// Token is one scanner token.
type Token struct {
	Kind Kind
	Text string
	Val  int64
	Line int
	Col  int
}

// Error is an XTA front-end error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("xta:%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Scanner tokenizes XTA source. Comments: // to end of line and /* ... */.
type Scanner struct {
	src  string
	pos  int
	line int
	col  int
}

// NewScanner returns a scanner over src.
func NewScanner(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

func (s *Scanner) errf(format string, args ...any) error {
	return &Error{Line: s.line, Col: s.col, Msg: fmt.Sprintf(format, args...)}
}

func (s *Scanner) advance() byte {
	c := s.src[s.pos]
	s.pos++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) skipSpaceAndComments() error {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			s.advance()
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '/':
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.advance()
			}
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '*':
			s.advance()
			s.advance()
			closed := false
			for s.pos+1 < len(s.src) {
				if s.src[s.pos] == '*' && s.src[s.pos+1] == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				return s.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (s *Scanner) Next() (Token, error) {
	if err := s.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: s.line, Col: s.col}
	if s.pos >= len(s.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := s.src[s.pos]
	switch {
	case isDigit(c):
		start := s.pos
		var v int64
		for s.pos < len(s.src) && isDigit(s.src[s.pos]) {
			v = v*10 + int64(s.src[s.pos]-'0')
			s.advance()
		}
		tok.Kind, tok.Val, tok.Text = INT, v, s.src[start:s.pos]
		return tok, nil
	case isIdentStart(c):
		start := s.pos
		for s.pos < len(s.src) && isIdentCont(s.src[s.pos]) {
			s.advance()
		}
		tok.Text = s.src[start:s.pos]
		if k, ok := keywords[tok.Text]; ok {
			tok.Kind = k
		} else {
			tok.Kind = IDENT
		}
		return tok, nil
	}
	s.advance()
	switch c {
	case '(':
		tok.Kind = LPAREN
	case ')':
		tok.Kind = RPAREN
	case '{':
		tok.Kind = LBRACE
	case '}':
		tok.Kind = RBRACE
	case '[':
		tok.Kind = LBRACKET
	case ']':
		tok.Kind = RBRACKET
	case ',':
		tok.Kind = COMMA
	case ';':
		tok.Kind = SEMI
	case '=':
		tok.Kind = ASSIGN
	case '!':
		tok.Kind = BANG
	case '?':
		tok.Kind = QUESTION
	case '<':
		tok.Kind = LT
	case '-':
		if s.pos < len(s.src) && s.src[s.pos] == '>' {
			s.advance()
			tok.Kind = ARROW
			tok.Text = "->"
			return tok, nil
		}
		tok.Kind = MINUS
		tok.Text = "-"
		return tok, nil
	default:
		return Token{}, s.errf("unexpected character %q", c)
	}
	tok.Text = string(c)
	return tok, nil
}

// CaptureUntil returns the raw source text from the current position up to
// (not including) the first occurrence of stop at brace/bracket/paren
// nesting level zero, consuming it. Used to hand expression text to the
// expr parser verbatim.
func (s *Scanner) CaptureUntil(stop byte) (string, error) {
	if err := s.skipSpaceAndComments(); err != nil {
		return "", err
	}
	start := s.pos
	depth := 0
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if depth == 0 && c == stop {
			return s.src[start:s.pos], nil
		}
		switch c {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			if depth == 0 && c != stop {
				return "", s.errf("unbalanced %q while scanning expression", c)
			}
			depth--
		}
		s.advance()
	}
	return "", s.errf("expected %q before end of file", stop)
}

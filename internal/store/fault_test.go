package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stopwatchsim/internal/fault"
)

// These tests drive the store through its fault-injection sites and check
// the containment invariants: a failed append self-repairs the journal
// tail, a torn object write leaves only sweepable residue, and injected
// read errors surface classified without corrupting state.

func injector(rules ...fault.Rule) *fault.Injector {
	return fault.New(fault.Plan{Seed: 1, Rules: rules})
}

func TestInjectedJournalAppendSelfRepairs(t *testing.T) {
	dir := t.TempDir()
	inj := injector(fault.Rule{Site: fault.SiteStoreJournalAppend, Kind: fault.KindShortWrite, Every: 2, Limit: 1})
	s := mustOpen(t, dir, Options{Faults: inj})
	if err := s.Put("outcome", "first", doc{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Second append tears: half a frame lands, then the store rolls the
	// tail back to the end of the first record.
	err := s.Put("outcome", "torn", doc{N: 2})
	if !fault.IsInjected(err) || !fault.IsShortWrite(err) {
		t.Fatalf("want injected short write, got %v", err)
	}
	if st := s.Stats(); st.JournalRepairs != 1 {
		t.Fatalf("JournalRepairs = %d, want 1", st.JournalRepairs)
	}
	if s.Has("outcome", "torn") {
		t.Fatal("failed put visible in index")
	}
	// The repaired journal accepts further appends on a clean boundary.
	if err := s.Put("outcome", "second", doc{N: 3}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen without faults: exactly the acknowledged records survive and
	// no torn bytes were left for recovery to truncate.
	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.RecoveredRecords != 2 || st.TruncatedBytes != 0 {
		t.Fatalf("recovery after self-repair: %+v", st)
	}
	if !s2.Has("outcome", "first") || !s2.Has("outcome", "second") || s2.Has("outcome", "torn") {
		t.Fatal("index after self-repair wrong")
	}
}

func TestInjectedJournalSyncRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := injector(fault.Rule{Site: fault.SiteStoreJournalSync, Kind: fault.KindError, Every: 2, Limit: 1})
	s := mustOpen(t, dir, Options{Faults: inj})
	if err := s.Put("outcome", "first", doc{N: 1}); err != nil {
		t.Fatal(err)
	}
	// The frame was written but the fsync "failed": the store cannot know
	// whether it is durable, so it rolls the file back to stay in step
	// with the index (which never saw the mutation).
	if err := s.Put("outcome", "unsynced", doc{N: 2}); !fault.IsInjected(err) {
		t.Fatalf("want injected error, got %v", err)
	}
	if st := s.Stats(); st.JournalRepairs != 1 {
		t.Fatalf("JournalRepairs = %d, want 1", st.JournalRepairs)
	}
	if err := s.Put("outcome", "second", doc{N: 3}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.RecoveredRecords != 2 || st.TruncatedBytes != 0 {
		t.Fatalf("recovery stats %+v", st)
	}
	if s2.Has("outcome", "unsynced") {
		t.Fatal("rolled-back record resurfaced")
	}
}

func TestInjectedObjectWriteLeavesSweepableOrphan(t *testing.T) {
	dir := t.TempDir()
	inj := injector(fault.Rule{Site: fault.SiteStoreObjectWrite, Kind: fault.KindShortWrite, Every: 1, Limit: 1})
	s := mustOpen(t, dir, Options{Faults: inj})
	if err := s.Put("outcome", "torn", doc{N: 1}); !fault.IsShortWrite(err) {
		t.Fatalf("want injected short write, got %v", err)
	}
	// The torn temp file stays behind, exactly like a crash mid-write.
	var temps int
	filepath.WalkDir(filepath.Join(dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			temps++
		}
		return nil
	})
	if temps != 1 {
		t.Fatalf("found %d torn temp files, want 1", temps)
	}
	// Rule limit exhausted: the retried put goes through.
	if err := s.Put("outcome", "torn", doc{N: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.OrphansSwept != 1 {
		t.Fatalf("swept %d orphans, want 1 (the torn temp)", st.OrphansSwept)
	}
	var got doc
	if ok, err := s2.Get("outcome", "torn", &got); !ok || err != nil || got.N != 2 {
		t.Fatalf("ok=%v err=%v got=%+v", ok, err, got)
	}
}

func TestInjectedReadErrorIsTransient(t *testing.T) {
	dir := t.TempDir()
	inj := injector(fault.Rule{Site: fault.SiteStoreRead, Kind: fault.KindError, Every: 1, Limit: 1})
	s := mustOpen(t, dir, Options{Faults: inj})
	if err := s.Put("outcome", "key", doc{N: 7}); err != nil {
		t.Fatal(err)
	}
	var got doc
	if _, err := s.Get("outcome", "key", &got); !fault.IsInjected(err) {
		t.Fatalf("want injected read error, got %v", err)
	}
	if ok, err := s.Get("outcome", "key", &got); !ok || err != nil || got.N != 7 {
		t.Fatalf("retried read: ok=%v err=%v got=%+v", ok, err, got)
	}
}

func TestInjectedRecoveryReadFailsOpen(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3)
	inj := injector(fault.Rule{Site: fault.SiteStoreRecoveryRead, Kind: fault.KindError, Every: 2})
	if _, err := Open(dir, Options{Faults: inj}); !fault.IsInjected(err) {
		t.Fatalf("Open with failing recovery reads: err=%v, want injected", err)
	}
	// An I/O error during recovery must not have truncated good records.
	s := mustOpen(t, dir, Options{})
	if st := s.Stats(); st.RecoveredRecords != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("post-failure recovery stats %+v", st)
	}
}

// TestJournalRecoveryProperty is the property-based recovery test: random
// put/delete histories, the tail corrupted in random ways (truncation,
// byte flips near the end, garbage appends), then reopened. Two
// invariants must hold in every case:
//
//  1. Recovery never returns a corrupt object — every surviving key
//     decodes to some version actually written for that key.
//  2. The journal is always re-appendable — a put after recovery persists
//     across one more reopen.
func TestJournalRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	const iterations = 40
	for iter := 0; iter < iterations; iter++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Random history over a small key space so overwrites and deletes
		// are common; remember every version ever written per key.
		written := make(map[string]map[int]bool)
		ops := 5 + rng.Intn(40)
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("key%02d", rng.Intn(8))
			if rng.Intn(5) == 0 {
				if err := s.Delete("outcome", key); err != nil {
					t.Fatal(err)
				}
				continue
			}
			version := rng.Intn(1 << 20)
			if err := s.Put("outcome", key, doc{Verdict: key, N: version}); err != nil {
				t.Fatal(err)
			}
			if written[key] == nil {
				written[key] = make(map[int]bool)
			}
			written[key][version] = true
		}
		s.Close()

		// Corrupt the tail.
		journal := filepath.Join(dir, journalName)
		fi, err := os.Stat(journal)
		if err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(3) {
		case 0: // torn tail: drop a random suffix
			if fi.Size() > 0 {
				cut := int64(rng.Intn(int(fi.Size()))) + 1
				if err := os.Truncate(journal, fi.Size()-cut); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // bit rot near the end: flip bytes in the last ~64
			f, err := os.OpenFile(journal, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			span := int64(64)
			if span > fi.Size() {
				span = fi.Size()
			}
			for flips := 1 + rng.Intn(4); flips > 0 && span > 0; flips-- {
				off := fi.Size() - 1 - int64(rng.Intn(int(span)))
				f.WriteAt([]byte{byte(rng.Intn(256))}, off)
			}
			f.Close()
		case 2: // garbage appended past the last valid frame
			f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			junk := make([]byte, 1+rng.Intn(40))
			rng.Read(junk)
			f.Write(junk)
			f.Close()
		}

		// Invariant 1: everything recovered decodes to a written version.
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("iter %d: reopen after corruption: %v", iter, err)
		}
		for _, key := range s2.Keys("outcome") {
			var got doc
			ok, err := s2.Get("outcome", key, &got)
			if err != nil || !ok {
				t.Fatalf("iter %d: recovered key %s unreadable: ok=%v err=%v", iter, key, ok, err)
			}
			if got.Verdict != key || !written[key][got.N] {
				t.Fatalf("iter %d: key %s recovered corrupt value %+v", iter, key, got)
			}
		}

		// Invariant 2: the journal accepts appends and they stick.
		if err := s2.Put("outcome", "postcrash", doc{Verdict: "postcrash", N: iter}); err != nil {
			t.Fatalf("iter %d: post-recovery put: %v", iter, err)
		}
		s2.Close()
		s3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("iter %d: final reopen: %v", iter, err)
		}
		var got doc
		if ok, err := s3.Get("outcome", "postcrash", &got); !ok || err != nil || got.N != iter {
			t.Fatalf("iter %d: post-recovery append lost: ok=%v err=%v got=%+v", iter, ok, err, got)
		}
		s3.Close()
	}
}

// The disabled fault path must not add allocations to Has, the store's
// cheapest hot-path probe, nor fail any operation.
func TestNilFaultsZeroOverhead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("outcome", "key", doc{N: 1}); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(500, func() {
		if !s.Has("outcome", "key") {
			t.Fatal("lost key")
		}
	}); n != 0 {
		t.Fatalf("Has allocates %.1f with faults disabled", n)
	}
}

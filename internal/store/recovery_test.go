package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The recovery tests simulate the crash modes the journal design promises
// to survive: a torn tail (partial final record), a corrupted final
// record, and garbage appended past the last valid frame. In every case
// reopening must recover exactly the fully acknowledged prefix and leave
// the journal ready for further appends.

// writeStore creates a store with n outcomes and returns the journal path.
func writeStore(t *testing.T, dir string, n int) string {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put("outcome", fmt.Sprintf("key%02d", i), doc{Verdict: "schedulable", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, journalName)
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	journal := writeStore(t, dir, 4)
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 3 bytes off the final record, as if the machine died mid-append.
	if err := os.Truncate(journal, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.RecoveredRecords != 3 {
		t.Fatalf("recovered %d records, want 3", st.RecoveredRecords)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("no bytes reported truncated")
	}
	if s.Has("outcome", "key03") {
		t.Fatal("torn record's key present after recovery")
	}
	if !s.Has("outcome", "key02") {
		t.Fatal("intact record lost in recovery")
	}
	// The torn object file is now an orphan and must have been swept.
	if st.OrphansSwept != 1 {
		t.Fatalf("swept %d orphans, want 1 (the torn record's object)", st.OrphansSwept)
	}

	// The journal must be clean for further appends: write, reopen, read.
	if err := s.Put("outcome", "after-crash", doc{N: 99}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	var got doc
	if ok, err := s2.Get("outcome", "after-crash", &got); !ok || err != nil || got.N != 99 {
		t.Fatalf("post-recovery append lost: ok=%v err=%v got=%+v", ok, err, got)
	}
	if n := s2.Stats().Objects; n != 4 {
		t.Fatalf("store holds %d objects, want 4", n)
	}
}

func TestRecoveryDropsCorruptedTailRecord(t *testing.T) {
	dir := t.TempDir()
	journal := writeStore(t, dir, 4)
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the final record's payload: the frame is intact
	// but the CRC no longer matches.
	f, err := os.OpenFile(journal, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.RecoveredRecords != 3 {
		t.Fatalf("recovered %d records, want 3", st.RecoveredRecords)
	}
	if s.Has("outcome", "key03") {
		t.Fatal("corrupt record's key present after recovery")
	}
	if !s.Has("outcome", "key00") || !s.Has("outcome", "key01") || !s.Has("outcome", "key02") {
		t.Fatal("intact prefix lost in recovery")
	}
}

func TestRecoveryIgnoresGarbageTail(t *testing.T) {
	dir := t.TempDir()
	journal := writeStore(t, dir, 2)
	// Append garbage that decodes to an absurd record length.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	s := mustOpen(t, dir, Options{})
	if st := s.Stats(); st.RecoveredRecords != 2 || st.TruncatedBytes != 9 {
		t.Fatalf("recovery stats %+v, want 2 records and 9 truncated bytes", st)
	}
	if !s.Has("outcome", "key00") || !s.Has("outcome", "key01") {
		t.Fatal("valid prefix lost")
	}
}

func TestRecoveryEmptyAndHeaderOnlyJournal(t *testing.T) {
	// Truncating to an empty journal (crash before the first append).
	dir := t.TempDir()
	writeStore(t, dir, 1)
	if err := os.Truncate(filepath.Join(dir, journalName), 0); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if st := s.Stats(); st.Objects != 0 || st.OrphansSwept != 1 {
		t.Fatalf("empty-journal recovery stats %+v, want 0 objects and 1 orphan swept", st)
	}
	s.Close()

	// A journal holding only a partial header.
	dir2 := t.TempDir()
	writeStore(t, dir2, 1)
	if err := os.Truncate(filepath.Join(dir2, journalName), 5); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir2, Options{})
	if st := s2.Stats(); st.Objects != 0 || st.TruncatedBytes != 5 {
		t.Fatalf("header-only recovery stats %+v", st)
	}
}

// TestCompaction checks that a journal bloated by overwrites is rewritten
// on open to hold only the live records.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 10 keys overwritten 20 times each: 200 records, 190 dead.
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			if err := s.Put("outcome", fmt.Sprintf("key%02d", i), doc{N: round}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()
	before, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	after, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("journal not compacted: %d -> %d bytes", before.Size(), after.Size())
	}
	for i := 0; i < 10; i++ {
		var got doc
		key := fmt.Sprintf("key%02d", i)
		if ok, err := s2.Get("outcome", key, &got); !ok || err != nil || got.N != 19 {
			t.Fatalf("%s after compaction: ok=%v err=%v got=%+v", key, ok, err, got)
		}
	}
	s2.Close()

	// The compacted journal replays cleanly.
	s3 := mustOpen(t, dir, Options{})
	if st := s3.Stats(); st.Objects != 10 || st.RecoveredRecords != 10 {
		t.Fatalf("replay of compacted journal: %+v", st)
	}
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

type doc struct {
	Verdict string `json:"verdict"`
	N       int    `json:"n"`
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put("outcome", fmt.Sprintf("key%02d", i), doc{Verdict: "schedulable", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got doc
	ok, err := s.Get("outcome", "key03", &got)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got.N != 3 {
		t.Fatalf("got %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Objects != 5 {
		t.Fatalf("reopened store holds %d objects, want 5", st.Objects)
	}
	if st.RecoveredRecords != 5 {
		t.Fatalf("recovered %d records, want 5", st.RecoveredRecords)
	}
	got = doc{}
	ok, err = s2.Get("outcome", "key04", &got)
	if err != nil || !ok || got.N != 4 {
		t.Fatalf("Get after reopen: ok=%v err=%v got=%+v", ok, err, got)
	}
	if keys := s2.Keys("outcome"); len(keys) != 5 || keys[0] != "key00" || keys[4] != "key04" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestOverwriteKeepsOneObject(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("outcome", "k1", doc{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("outcome", "k1", doc{N: 2}); err != nil {
		t.Fatal(err)
	}
	var got doc
	if ok, err := s.Get("outcome", "k1", &got); !ok || err != nil || got.N != 2 {
		t.Fatalf("Get: ok=%v err=%v got=%+v", ok, err, got)
	}
	if st := s.Stats(); st.Objects != 1 {
		t.Fatalf("overwrite left %d objects, want 1", st.Objects)
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("outcome", "gone", doc{N: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("outcome", "gone"); err != nil {
		t.Fatal(err)
	}
	if s.Has("outcome", "gone") {
		t.Fatal("deleted key still present")
	}
	if err := s.Delete("outcome", "never-there"); err != nil {
		t.Fatalf("deleting absent key: %v", err)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	if s2.Has("outcome", "gone") {
		t.Fatal("deleted key resurrected on reopen")
	}
}

func TestMissIsNotAnError(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	var got doc
	ok, err := s.Get("outcome", "absent", &got)
	if err != nil {
		t.Fatalf("miss returned error: %v", err)
	}
	if ok {
		t.Fatal("miss reported present")
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
}

func TestBadKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, key := range []string{"", "a/b", "..", ".hidden", "sp ace", "semi;colon"} {
		if err := s.Put("outcome", key, doc{}); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
	if err := s.Put("outcome", "fine-Key_1.v2", doc{}); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
}

// TestGCRespectsBoundAndPins fills a size-bounded store and checks that
// the oldest unpinned objects are evicted while pinned kinds survive.
func TestGCRespectsBoundAndPins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MaxBytes: 256, PinnedKinds: []string{"campaign"}})
	if err := s.Put("campaign", "state", doc{Verdict: "running", N: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put("outcome", fmt.Sprintf("o%02d", i), doc{Verdict: "schedulable", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the bound")
	}
	if !s.Has("campaign", "state") {
		t.Fatal("pinned campaign state evicted")
	}
	if s.Has("outcome", "o00") {
		t.Fatal("oldest unpinned object survived GC")
	}
	if !s.Has("outcome", "o19") {
		t.Fatal("newest object evicted")
	}

	// The bound holds across a reopen too (recovery re-accounts sizes).
	s.Close()
	s2 := mustOpen(t, dir, Options{MaxBytes: 256, PinnedKinds: []string{"campaign"}})
	if !s2.Has("campaign", "state") {
		t.Fatal("pinned state lost across reopen")
	}
}

func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("outcome", "live", doc{N: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash between object write and journal append: an object
	// file exists that no journal record references.
	orphan := filepath.Join(dir, objectsDir, "outcome", "or", "orphan.json")
	if err := os.MkdirAll(filepath.Dir(orphan), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(orphan, []byte(`{"n":9}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if st := s2.Stats(); st.OrphansSwept != 1 {
		t.Fatalf("swept %d orphans, want 1", st.OrphansSwept)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan object still on disk")
	}
	if !s2.Has("outcome", "live") {
		t.Fatal("live object swept")
	}
}

func TestLockExcludesSecondProcessAndStealsStale(t *testing.T) {
	dir := t.TempDir()

	// A live foreign pid holds the lock: Open must refuse. Pid 1 (init) is
	// always alive and never this test.
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded despite live lock holder")
	}

	// A dead pid's lock is stale: Open steals it. Pick an extremely
	// unlikely-to-exist pid.
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open did not steal stale lock: %v", err)
	}
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, lockName)); !os.IsNotExist(err) {
		t.Fatal("Close did not release the lock")
	}
}

// TestConcurrentAccess exercises the store under parallel readers and
// writers (run with -race in CI).
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("g%d-%02d", g, i)
				if err := s.Put("outcome", key, doc{N: i}); err != nil {
					t.Errorf("Put %s: %v", key, err)
					return
				}
				var got doc
				if ok, err := s.Get("outcome", key, &got); !ok || err != nil || got.N != i {
					t.Errorf("Get %s: ok=%v err=%v got=%+v", key, ok, err, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Objects != 80 {
		t.Fatalf("store holds %d objects, want 80", st.Objects)
	}
}

func TestStatsSnapshotIsCopy(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	a := s.Stats()
	s.Put("outcome", "k1", doc{})
	b := s.Stats()
	if reflect.DeepEqual(a, b) {
		t.Fatal("stats did not change after Put")
	}
	if b.Puts != a.Puts+1 {
		t.Fatalf("puts %d -> %d", a.Puts, b.Puts)
	}
}

// Package store is a crash-safe, content-addressed artifact store on the
// local filesystem: the persistent second tier under the analysis
// service's in-memory result cache, and the checkpoint substrate of the
// campaign engine. The paper's determinism is what makes it sound — an
// outcome is a pure function of the configuration fingerprint — so the
// store only has to guarantee that what it says it holds, it actually
// holds, across crashes:
//
//   - Objects are JSON documents written with the classic atomic pattern:
//     temp file in the destination directory, write, fsync, rename, fsync
//     the directory. A crash leaves either the old object, the new object,
//     or an orphan temp file — never a torn visible object.
//   - The index is an append-only journal of checksummed, length-prefixed
//     records, fsynced per append. A crash can only tear the tail;
//     recovery-on-open truncates the torn tail and drops index entries
//     whose object file is missing, so the surviving index is exactly the
//     set of fully persisted objects.
//   - An object write lands before its journal record, so every index
//     entry refers to a complete object; orphaned objects (crash between
//     the two steps) are swept on open.
//
// The store is size-bounded: when the unpinned payload exceeds
// Options.MaxBytes the oldest unpinned objects are garbage-collected.
// Kinds listed in Options.PinnedKinds (campaign checkpoints) are exempt.
package store

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"stopwatchsim/internal/fault"
)

// Errors returned by the store.
var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrBadKey is returned for keys that are empty or not filesystem-safe.
	ErrBadKey = errors.New("store: bad key")
	// ErrLocked is returned by Open when another live process holds the
	// store directory.
	ErrLocked = errors.New("store: directory locked by another process")
)

// Options configure a Store. The zero value is usable: unbounded size, no
// pinned kinds.
type Options struct {
	// MaxBytes bounds the total payload bytes of unpinned objects; when a
	// Put pushes the total past the bound, the oldest unpinned objects are
	// evicted until it fits. <= 0 means unbounded.
	MaxBytes int64
	// PinnedKinds lists kinds exempt from GC (campaign checkpoints must
	// survive however many outcomes flow through).
	PinnedKinds []string
	// Faults is an optional fault injector consulted at the store's I/O
	// sites (object write/sync, journal append/sync, reads, recovery
	// reads). Nil — the normal configuration — is a zero-cost no-op.
	Faults *fault.Injector
}

// Stats are the store's monotonic counters and current gauges, exposed by
// cmd/saserve as the saserve_store_* metric families.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Deletes   int64 `json:"deletes"`
	Evictions int64 `json:"evictions"`

	// Recovery-on-open results: journal records replayed, bytes truncated
	// from a torn tail, index entries dropped for missing objects, orphan
	// object files swept.
	RecoveredRecords int64 `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes"`
	DroppedEntries   int64 `json:"dropped_entries"`
	OrphansSwept     int64 `json:"orphans_swept"`

	// JournalRepairs counts in-place tail rollbacks after a failed append:
	// the journal was truncated back to the last acknowledged record so the
	// failure could not bury a torn frame mid-file.
	JournalRepairs int64 `json:"journal_repairs"`

	// Gauges.
	Objects int   `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

// entry is one live index record.
type entry struct {
	kind, key string
	file      string // object path relative to the store root
	size      int64
	pinned    bool
	elem      *list.Element // position in age order (front = oldest)
}

// Store is a content-addressed artifact store rooted at one directory.
// Safe for concurrent use by one process; cross-process exclusion is
// enforced with a liveness-checked lock file.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	journal  *os.File
	index    map[string]*entry // kind + "\x00" + key
	order    *list.List        // *entry, oldest at front
	unpinned int64             // payload bytes subject to the bound
	total    int64             // payload bytes of all live objects
	live     int               // live journal records
	dead     int               // superseded/deleted journal records
	goodEnd  int64             // journal offset just past the last acked record
	badTail  bool              // a failed append left torn bytes past goodEnd
	stats    Stats
	closed   bool
}

// Open opens (creating if needed) the store rooted at dir, replays the
// journal, truncates any torn tail, reconciles the index against the
// object files on disk, sweeps orphans, and compacts the journal when it
// has accumulated more dead records than live ones.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if err := acquireLock(dir); err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]*entry),
		order: list.New(),
	}
	if err := s.recover(); err != nil {
		releaseLock(dir)
		return nil, err
	}
	return s, nil
}

const (
	objectsDir  = "objects"
	journalName = "journal"
	lockName    = "lock"
)

// pinned reports whether kind is exempt from GC.
func (s *Store) pinned(kind string) bool {
	for _, k := range s.opts.PinnedKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// validKey reports whether k is non-empty and filesystem-safe.
func validKey(k string) bool {
	if k == "" || len(k) > 256 {
		return false
	}
	for _, r := range k {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(k, ".")
}

// objectPath returns the object file path for (kind, key) relative to the
// store root, sharding by the first two key characters to keep directory
// fanout bounded.
func objectPath(kind, key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(objectsDir, kind, shard, key+".json")
}

func indexKey(kind, key string) string { return kind + "\x00" + key }

// Put stores v (JSON-marshaled) under (kind, key), atomically replacing
// any previous object, journaling the update with an fsync, and then
// garbage-collecting oldest unpinned objects if the size bound is
// exceeded.
func (s *Store) Put(kind, key string, v any) error {
	if !validKey(kind) || !validKey(key) {
		return fmt.Errorf("%w: %q/%q", ErrBadKey, kind, key)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding %s/%s: %w", kind, key, err)
	}
	rel := objectPath(kind, key)
	if err := s.writeObject(rel, payload); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendRecord(journalRec{Op: opPut, Kind: kind, Key: key, File: rel, Size: int64(len(payload))}); err != nil {
		return err
	}
	ik := indexKey(kind, key)
	if old := s.index[ik]; old != nil {
		s.accountRemove(old)
		s.order.Remove(old.elem)
		s.dead++
		s.live--
	}
	e := &entry{kind: kind, key: key, file: rel, size: int64(len(payload)), pinned: s.pinned(kind)}
	e.elem = s.order.PushBack(e)
	s.index[ik] = e
	s.accountAdd(e)
	s.live++
	s.stats.Puts++
	return s.gcLocked()
}

// Get unmarshals the object stored under (kind, key) into v and reports
// whether it was present. A missing object is not an error.
func (s *Store) Get(kind, key string, v any) (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	e, ok := s.index[indexKey(kind, key)]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return false, nil
	}
	s.stats.Hits++
	file := filepath.Join(s.dir, e.file)
	s.mu.Unlock()

	if ferr := s.opts.Faults.Fail(fault.SiteStoreRead); ferr != nil {
		return false, fmt.Errorf("store: reading %s/%s: %w", kind, key, ferr)
	}
	payload, err := os.ReadFile(file)
	if err != nil {
		return false, fmt.Errorf("store: reading %s/%s: %w", kind, key, err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return false, fmt.Errorf("store: decoding %s/%s: %w", kind, key, err)
	}
	return true, nil
}

// Has reports whether (kind, key) is present without touching the object
// or the hit/miss counters.
func (s *Store) Has(kind, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[indexKey(kind, key)]
	return ok
}

// Keys returns the keys of every live object of the given kind, sorted.
func (s *Store) Keys(kind string) []string {
	s.mu.Lock()
	var out []string
	for _, e := range s.index {
		if e.kind == kind {
			out = append(out, e.key)
		}
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Delete removes (kind, key); deleting an absent object is a no-op.
func (s *Store) Delete(kind, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, ok := s.index[indexKey(kind, key)]
	if !ok {
		return nil
	}
	if err := s.appendRecord(journalRec{Op: opDel, Kind: kind, Key: key}); err != nil {
		return err
	}
	s.removeLocked(e)
	s.stats.Deletes++
	return nil
}

// removeLocked drops e from the index and deletes its object file.
func (s *Store) removeLocked(e *entry) {
	delete(s.index, indexKey(e.kind, e.key))
	s.order.Remove(e.elem)
	s.accountRemove(e)
	s.dead += 2 // the put record and the del record are both dead weight
	s.live--
	os.Remove(filepath.Join(s.dir, e.file))
}

func (s *Store) accountAdd(e *entry) {
	s.total += e.size
	if !e.pinned {
		s.unpinned += e.size
	}
}

func (s *Store) accountRemove(e *entry) {
	s.total -= e.size
	if !e.pinned {
		s.unpinned -= e.size
	}
}

// gcLocked evicts oldest unpinned objects until the unpinned payload fits
// the bound. Eviction records are journaled (one fsync for the batch).
func (s *Store) gcLocked() error {
	if s.opts.MaxBytes <= 0 || s.unpinned <= s.opts.MaxBytes {
		return nil
	}
	for el := s.order.Front(); el != nil && s.unpinned > s.opts.MaxBytes; {
		e := el.Value.(*entry)
		el = el.Next()
		if e.pinned {
			continue
		}
		if err := s.appendRecord(journalRec{Op: opDel, Kind: e.kind, Key: e.key}); err != nil {
			return err
		}
		s.removeLocked(e)
		s.stats.Evictions++
	}
	return nil
}

// Stats returns a snapshot of the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Objects = len(s.index)
	st.Bytes = s.total
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close syncs and closes the journal and releases the directory lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.journal != nil {
		if serr := s.journal.Sync(); serr != nil {
			err = serr
		}
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	releaseLock(s.dir)
	return err
}

// writeObject atomically writes payload to rel (relative to the store
// root): temp file in the same directory, fsync, rename, fsync directory.
func (s *Store) writeObject(rel string, payload []byte) error {
	abs := filepath.Join(s.dir, rel)
	parent := filepath.Dir(abs)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", parent, err)
	}
	tmp, err := os.CreateTemp(parent, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file in %s: %w", parent, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if f := s.opts.Faults.Hit(fault.SiteStoreObjectWrite); f != nil {
		if f.Kind == fault.KindShortWrite {
			// Simulate a crash mid-write: half the payload lands and the
			// torn temp file is left behind for recovery to sweep.
			tmp.Write(payload[:len(payload)/2])
			tmp.Close()
		} else {
			cleanup()
		}
		return fmt.Errorf("store: writing %s: %w", rel, f.Err())
	}
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return fmt.Errorf("store: writing %s: %w", rel, err)
	}
	if err := s.opts.Faults.Fail(fault.SiteStoreObjectSync); err != nil {
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", rel, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: syncing %s: %w", rel, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: closing %s: %w", rel, err)
	}
	if err := os.Rename(tmpName, abs); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing %s: %w", rel, err)
	}
	return syncDir(parent)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: opening dir %s: %w", path, err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("store: syncing dir %s: %w", path, err)
	}
	return nil
}

// acquireLock takes the store directory's single-process lock. A lock file
// left by a dead process (SIGKILL mid-campaign is the expected crash mode)
// is detected by probing the recorded pid and stolen.
func acquireLock(dir string) error {
	path := filepath.Join(dir, lockName)
	for tries := 0; tries < 2; tries++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Sync()
			f.Close()
			return nil
		}
		if !os.IsExist(err) {
			return fmt.Errorf("store: creating lock: %w", err)
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // holder released between our attempts
			}
			return fmt.Errorf("store: reading lock: %w", rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr == nil && pid > 0 && pid != os.Getpid() && processAlive(pid) {
			return fmt.Errorf("%w (pid %d)", ErrLocked, pid)
		}
		// Holder is dead (or the file is garbage): steal the lock.
		os.Remove(path)
	}
	return fmt.Errorf("%w (lock contention)", ErrLocked)
}

func releaseLock(dir string) { os.Remove(filepath.Join(dir, lockName)) }

// processAlive probes pid with signal 0.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"stopwatchsim/internal/fault"
)

// The journal is the store's append-only index: one checksummed record per
// mutation. Each record is framed as
//
//	[4 bytes big-endian payload length][4 bytes CRC-32 (IEEE) of payload][payload JSON]
//
// and fsynced after every append. Because appends are the only writes, a
// crash can corrupt at most the final record; recovery reads records until
// the first short read, oversized length, or checksum mismatch and
// truncates the file there, so the journal is always a prefix of fully
// acknowledged mutations.

// Journal operations.
const (
	opPut = "put"
	opDel = "del"
)

// maxRecordLen bounds a record payload; a larger length field is treated
// as a torn tail rather than an allocation request.
const maxRecordLen = 1 << 20

// journalRec is the JSON payload of one journal record.
type journalRec struct {
	Op   string `json:"op"`
	Kind string `json:"kind"`
	Key  string `json:"key"`
	File string `json:"file,omitempty"`
	Size int64  `json:"size,omitempty"`
}

// appendRecord frames, appends and fsyncs one record. Callers hold s.mu.
//
// A failed append must not poison the journal: whatever bytes the failure
// left behind sit past goodEnd, and if a later append were written after
// them the torn frame would be buried mid-file — replay stops at the
// first bad frame, so everything appended afterwards would silently
// vanish on the next open. Instead the tail is rolled back to goodEnd
// (self-repair) before the journal is used again.
func (s *Store) appendRecord(rec journalRec) error {
	if s.badTail {
		if err := s.repairTailLocked(); err != nil {
			return fmt.Errorf("store: journal tail unrepaired: %w", err)
		}
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	frame := append(hdr[:], payload...)
	if f := s.opts.Faults.Hit(fault.SiteStoreJournalAppend); f != nil {
		if f.Kind == fault.KindShortWrite {
			// Simulate a torn append: half the frame reaches the file.
			s.journal.Write(frame[:len(frame)/2])
		}
		s.failTailLocked()
		return fmt.Errorf("store: appending journal record: %w", f.Err())
	}
	if _, err := s.journal.Write(frame); err != nil {
		s.failTailLocked()
		return fmt.Errorf("store: appending journal record: %w", err)
	}
	serr := s.opts.Faults.Fail(fault.SiteStoreJournalSync)
	if serr == nil {
		serr = s.journal.Sync()
	}
	if serr != nil {
		// The frame may or may not have reached disk; since the caller will
		// not apply the mutation, roll the file back to the last
		// acknowledged record so append and index stay in step.
		s.failTailLocked()
		return fmt.Errorf("store: syncing journal: %w", serr)
	}
	s.goodEnd += int64(len(frame))
	return nil
}

// failTailLocked marks the journal tail torn and attempts an immediate
// in-place repair. If the repair itself fails the flag stays set and the
// next append retries it before writing anything.
func (s *Store) failTailLocked() {
	s.badTail = true
	s.repairTailLocked()
}

// repairTailLocked rolls the journal back to the last acknowledged
// record: truncate to goodEnd, reposition the write offset, and fsync so
// the rollback is durable. Callers hold s.mu.
func (s *Store) repairTailLocked() error {
	if err := s.journal.Truncate(s.goodEnd); err != nil {
		return fmt.Errorf("truncating to %d: %w", s.goodEnd, err)
	}
	if _, err := s.journal.Seek(s.goodEnd, io.SeekStart); err != nil {
		return fmt.Errorf("seeking to %d: %w", s.goodEnd, err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("syncing repaired journal: %w", err)
	}
	s.badTail = false
	s.stats.JournalRepairs++
	return nil
}

// recover replays the journal into the in-memory index, truncating any
// torn tail, dropping entries whose object file is missing, sweeping
// orphaned object files, and compacting the journal when dead records
// outnumber live ones.
func (s *Store) recover() error {
	path := filepath.Join(s.dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	s.journal = f

	good, err := s.replay(f)
	if err != nil {
		f.Close()
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat journal: %w", err)
	}
	if fi.Size() > good {
		// Torn tail: drop the partial record so the next append starts at
		// a clean frame boundary.
		s.stats.TruncatedBytes = fi.Size() - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: syncing truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking journal end: %w", err)
	}
	s.goodEnd = good

	s.reconcile()
	s.sweepOrphans()

	if s.dead > s.live && s.dead > 64 {
		// Compaction is an optimization; if it fails (a dying disk, or fault
		// injection at the journal sites) the uncompacted journal is still a
		// valid prefix of acknowledged mutations, so open anyway.
		s.compact()
	}
	return nil
}

// replay reads records from the journal into the index and returns the
// offset of the last fully valid record. Truncation decisions are the
// caller's; replay never fails on a torn tail.
func (s *Store) replay(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seeking journal: %w", err)
	}
	r := newByteCounter(f)
	var good int64
	var hdr [8]byte
	for {
		if err := s.opts.Faults.Fail(fault.SiteStoreRecoveryRead); err != nil {
			// An I/O error is not a torn tail: truncating here would discard
			// acknowledged records, so refuse to open instead.
			return good, fmt.Errorf("store: reading journal during recovery: %w", err)
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return good, nil // clean EOF or torn header: stop at last good record
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecordLen {
			return good, nil // absurd length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // checksum mismatch: corrupt tail
		}
		var rec journalRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return good, nil // framing valid but payload not ours: treat as corrupt tail
		}
		good = r.n
		s.stats.RecoveredRecords++
		s.applyRecord(rec)
	}
}

// applyRecord folds one replayed record into the index.
func (s *Store) applyRecord(rec journalRec) {
	ik := indexKey(rec.Kind, rec.Key)
	switch rec.Op {
	case opPut:
		if old := s.index[ik]; old != nil {
			s.accountRemove(old)
			s.order.Remove(old.elem)
			s.dead++
			s.live--
		}
		e := &entry{kind: rec.Kind, key: rec.Key, file: rec.File, size: rec.Size, pinned: s.pinned(rec.Kind)}
		e.elem = s.order.PushBack(e)
		s.index[ik] = e
		s.accountAdd(e)
		s.live++
	case opDel:
		if e := s.index[ik]; e != nil {
			delete(s.index, ik)
			s.order.Remove(e.elem)
			s.accountRemove(e)
			s.dead += 2
			s.live--
		} else {
			s.dead++
		}
	default:
		s.dead++ // unknown op from a future version: ignore but count as garbage
	}
}

// reconcile drops index entries whose object file is missing — the journal
// record survived a crash that the (earlier) object write did not reach
// disk for, which cannot happen in the normal order but can after manual
// tampering or partial restores.
func (s *Store) reconcile() {
	for ik, e := range s.index {
		if _, err := os.Stat(filepath.Join(s.dir, e.file)); err != nil {
			delete(s.index, ik)
			s.order.Remove(e.elem)
			s.accountRemove(e)
			s.dead++
			s.live--
			s.stats.DroppedEntries++
		}
	}
}

// sweepOrphans removes object files (and stray temp files) not referenced
// by the index: the residue of a crash between the object write and its
// journal append.
func (s *Store) sweepOrphans() {
	referenced := make(map[string]bool, len(s.index))
	for _, e := range s.index {
		referenced[filepath.Join(s.dir, e.file)] = true
	}
	root := filepath.Join(s.dir, objectsDir)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if !referenced[path] {
			if os.Remove(path) == nil {
				s.stats.OrphansSwept++
			}
		}
		return nil
	})
}

// compact rewrites the journal to contain exactly the live index, using
// the same atomic write-then-rename pattern as objects. Callers run it
// from Open only, before the store is visible to other goroutines.
func (s *Store) compact() error {
	tmpPath := filepath.Join(s.dir, journalName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating compacted journal: %w", err)
	}
	old := s.journal
	oldGood := s.goodEnd
	s.journal = tmp
	s.goodEnd = 0
	restore := func() {
		tmp.Close()
		os.Remove(tmpPath)
		s.journal = old
		s.goodEnd = oldGood
		s.badTail = false // the torn tail (if any) died with the temp file
	}
	// Re-append every live record in age order; appendRecord syncs each,
	// which is acceptable at compaction frequency (once per open, at most).
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if err := s.appendRecord(journalRec{Op: opPut, Kind: e.kind, Key: e.key, File: e.file, Size: e.size}); err != nil {
			restore()
			return err
		}
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, journalName)); err != nil {
		restore()
		return fmt.Errorf("store: publishing compacted journal: %w", err)
	}
	old.Close()
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.dead = 0
	return nil
}

// byteCounter counts bytes consumed from the underlying reader so replay
// knows the offset of the last fully valid record.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}
